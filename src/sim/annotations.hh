/**
 * @file
 * Clang Thread Safety Analysis vocabulary (DESIGN.md §10). The
 * macros expand to Clang's capability attributes when the compiler
 * supports them and to nothing elsewhere (GCC builds see plain
 * C++), so the locking rules of every concurrent component are
 * checked at compile time under
 * `-Wthread-safety -Werror=thread-safety` (wired into the
 * STARNUMA_WERROR configuration for Clang) without constraining the
 * production toolchain.
 *
 * libstdc++'s std::mutex is not itself annotated as a capability,
 * so the checked lock types live in sim/sync.hh: starnuma::Mutex
 * (a STARNUMA_CAPABILITY wrapper over std::mutex), the RAII
 * starnuma::MutexLock, and starnuma::CondVar. Annotate data with
 * STARNUMA_GUARDED_BY(mu), functions that must be entered with the
 * lock held with STARNUMA_REQUIRES(mu), and lock-management
 * functions with STARNUMA_ACQUIRE/STARNUMA_RELEASE.
 *
 * This header is the only place in the tree allowed to mention the
 * raw attributes; everything else uses the STARNUMA_* spellings.
 */

#ifndef STARNUMA_SIM_ANNOTATIONS_HH
#define STARNUMA_SIM_ANNOTATIONS_HH

#if defined(__clang__) && defined(__has_attribute)
#define STARNUMA_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define STARNUMA_THREAD_ANNOTATION(x) // no-op outside Clang
#endif

/** Marks a type as a lockable capability (e.g. a mutex wrapper). */
#define STARNUMA_CAPABILITY(name) \
    STARNUMA_THREAD_ANNOTATION(capability(name))

/** Marks an RAII type that acquires in its ctor, releases in its
 *  dtor (e.g. MutexLock). */
#define STARNUMA_SCOPED_CAPABILITY \
    STARNUMA_THREAD_ANNOTATION(scoped_lockable)

/** Data member readable/writable only while @p x is held. */
#define STARNUMA_GUARDED_BY(x) \
    STARNUMA_THREAD_ANNOTATION(guarded_by(x))

/** Pointer member whose *pointee* is guarded by @p x. */
#define STARNUMA_PT_GUARDED_BY(x) \
    STARNUMA_THREAD_ANNOTATION(pt_guarded_by(x))

/** Function that must be called with the capabilities held. */
#define STARNUMA_REQUIRES(...) \
    STARNUMA_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Function that acquires the capabilities and returns holding
 *  them. */
#define STARNUMA_ACQUIRE(...) \
    STARNUMA_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function that releases the capabilities before returning. */
#define STARNUMA_RELEASE(...) \
    STARNUMA_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Function that acquires the capabilities when it returns
 *  @p result. */
#define STARNUMA_TRY_ACQUIRE(result, ...) \
    STARNUMA_THREAD_ANNOTATION( \
        try_acquire_capability(result, __VA_ARGS__))

/** Function that must be called with the capabilities NOT held. */
#define STARNUMA_EXCLUDES(...) \
    STARNUMA_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/**
 * Opt a function out of the analysis. Reserved for the rare spot
 * the checker cannot model (none in the tree today); every use must
 * carry a comment explaining why the discipline holds anyway.
 */
#define STARNUMA_NO_THREAD_SAFETY_ANALYSIS \
    STARNUMA_THREAD_ANNOTATION(no_thread_safety_analysis)

/**
 * Outline a rarely-taken slow path (amortized container growth,
 * arena chaining) into its own cold symbol: `cold` moves it out of
 * the hot text and `noinline` keeps its allocation calls out of the
 * caller's symbol, so scripts/check_hotpath_syms.sh can assert at
 * the binary level that the hot-path symbols themselves contain no
 * allocation (DESIGN.md §13). GCC and Clang both support it.
 */
#if defined(__GNUC__) || defined(__clang__)
#define STARNUMA_COLD_PATH __attribute__((cold, noinline))
#else
#define STARNUMA_COLD_PATH
#endif

#endif // STARNUMA_SIM_ANNOTATIONS_HH
