#include "workloads/graph.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace starnuma
{
namespace workloads
{

CsrGraph
CsrGraph::kronecker(int scale, int avg_degree, Rng &rng)
{
    sn_assert(scale > 0 && scale < 31, "bad graph scale %d", scale);
    std::uint32_t n = 1u << scale;
    std::uint64_t edges =
        static_cast<std::uint64_t>(n) * avg_degree / 2;

    // R-MAT edge sampling: descend the adjacency-matrix quadrants.
    std::vector<std::pair<std::uint32_t, std::uint32_t>> edge_list;
    edge_list.reserve(edges);
    while (edge_list.size() < edges) {
        std::uint32_t u = 0, v = 0;
        for (int bit = 0; bit < scale; ++bit) {
            double r = rng.uniform();
            int quadrant;
            if (r < 0.57)
                quadrant = 0; // a
            else if (r < 0.76)
                quadrant = 1; // b
            else if (r < 0.95)
                quadrant = 2; // c
            else
                quadrant = 3; // d
            u = (u << 1) | (quadrant >> 1);
            v = (v << 1) | (quadrant & 1);
        }
        if (u != v)
            edge_list.emplace_back(u, v);
    }

    // Symmetrize into CSR with sorted adjacency.
    std::vector<std::uint64_t> degree_count(n + 1, 0);
    for (auto [u, v] : edge_list) {
        ++degree_count[u + 1];
        ++degree_count[v + 1];
    }
    CsrGraph g;
    g.vertices = n;
    g.offsets.assign(n + 1, 0);
    for (std::uint32_t v = 0; v < n; ++v)
        g.offsets[v + 1] = g.offsets[v] + degree_count[v + 1];
    g.neighbors.assign(g.offsets[n], 0);

    std::vector<std::uint64_t> cursor(g.offsets.begin(),
                                      g.offsets.end() - 1);
    for (auto [u, v] : edge_list) {
        g.neighbors[cursor[u]++] = v;
        g.neighbors[cursor[v]++] = u;
    }
    for (std::uint32_t v = 0; v < n; ++v)
        std::sort(g.neighbors.begin() + g.offsets[v],
                  g.neighbors.begin() + g.offsets[v + 1]);
    return g;
}

} // namespace workloads
} // namespace starnuma
