/**
 * @file
 * Small-scale golden-number regression fixture. The pipeline is
 * deterministic (per-task RNG streams, canonical parallel merge),
 * so model output at a fixed scale is exactly reproducible; these
 * tests pin the Table III single-socket / 16-socket baselines and
 * the Fig 8 speedup ordering at a miniature scale. A perf PR that
 * silently changes model output — not just its speed — fails here
 * and must update the goldens deliberately.
 *
 * Golden values were produced by this harness at the pinned scale;
 * the tolerance only absorbs compiler/codegen noise (different
 * optimization or sanitizer builds), not model changes.
 */

#include <gtest/gtest.h>

#include <vector>

#include "driver/sweep.hh"

namespace starnuma
{
namespace
{

/** The pinned miniature scale: 2 phases of 100k instructions. */
SimScale
goldenScale()
{
    SimScale s;
    s.phases = 2;
    s.phaseInstructions = 100000;
    return s;
}

/** Absolute tolerance for pinned IPC values (codegen noise only). */
constexpr double ipcTol = 1e-6;

struct Golden
{
    const char *workload;
    double ipcSingleSocket; ///< Table III "IPC (1s)" reference
    double ipcBaseline16;   ///< Table III 16-socket baseline
    double llcMpki;         ///< Table III MPKI (baseline 16-socket)
};

/** Golden model output at goldenScale(), in Fig 8 workload order. */
const Golden goldens[] = {
    {"bfs", 0.961706592062, 0.45625574023, 14.1818181818},
    {"tc", 1.48119394447, 1.08469606068, 7.75172413793},
    {"tpcc", 0.257033455928, 0.0292076020516, 94.6323529412},
    {"fmi", 0.426062493343, 0.0724383714576, 55.3382352941},
};

TEST(Golden, Table3BaselinesPinned)
{
    SimScale s = goldenScale();

    std::vector<driver::SweepJob> jobs;
    for (const Golden &g : goldens) {
        jobs.push_back({g.workload, driver::SystemSetup::baseline(),
                        s, /*singleSocket=*/false});
        jobs.push_back({g.workload, driver::SystemSetup::baseline(),
                        s, /*singleSocket=*/true});
    }
    auto results = driver::runSweep(jobs);

    for (std::size_t i = 0; i < std::size(goldens); ++i) {
        const Golden &g = goldens[i];
        const auto &multi = results[2 * i].metrics;
        const auto &single = results[2 * i + 1].metrics;
        SCOPED_TRACE(g.workload);
        EXPECT_NEAR(single.ipc, g.ipcSingleSocket, ipcTol);
        EXPECT_NEAR(multi.ipc, g.ipcBaseline16, ipcTol);
        EXPECT_NEAR(multi.llcMpki, g.llcMpki, 1e-4);
        // The NUMA gap Table III illustrates: single-socket local
        // execution is strictly faster than 16-socket NUMA.
        EXPECT_GT(single.ipc, multi.ipc);
    }
}

TEST(Golden, Fig8SpeedupOrderingPinned)
{
    SimScale s = goldenScale();

    std::vector<std::string> ws;
    for (const Golden &g : goldens)
        ws.push_back(g.workload);
    auto results = driver::runSweep(driver::crossJobs(
        ws,
        {driver::SystemSetup::baseline(),
         driver::SystemSetup::starnuma()},
        s));

    for (std::size_t i = 0; i < ws.size(); ++i) {
        const auto &base = results[2 * i].metrics;
        const auto &star = results[2 * i + 1].metrics;
        SCOPED_TRACE(ws[i]);
        double speedup = star.speedupOver(base);
        // StarNUMA must stay >= baseline on the sharing-heavy
        // workloads; at this miniature scale BFS's two phases leave
        // little room to migrate, so it is allowed to break even.
        if (ws[i] == "bfs")
            EXPECT_GE(speedup, 0.999);
        else
            EXPECT_GE(speedup, 1.0);
    }

    // The pinned ordering at this scale: TC gains the most, then
    // TPCC, then FMI (§V-A's sharing-driven ranking).
    double sp_tc =
        results[3].metrics.speedupOver(results[2].metrics);
    double sp_tpcc =
        results[5].metrics.speedupOver(results[4].metrics);
    double sp_fmi =
        results[7].metrics.speedupOver(results[6].metrics);
    EXPECT_GT(sp_tc, sp_tpcc);
    EXPECT_GT(sp_tpcc, sp_fmi);
}

} // anonymous namespace
} // namespace starnuma
