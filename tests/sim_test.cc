/**
 * @file
 * Unit tests for the simulation substrate: types/unit conversion,
 * the event queue, deterministic RNG, stats, and table formatting.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/scale.hh"
#include "sim/stats.hh"
#include "sim/table.hh"
#include "sim/types.hh"

namespace starnuma
{
namespace
{

TEST(Types, NsToCyclesAtPaperClock)
{
    // 2.4 GHz: 1 ns = 2.4 cycles.
    EXPECT_EQ(nsToCycles(0.0), Cycles(0));
    EXPECT_EQ(nsToCycles(10.0), Cycles(24));
    EXPECT_EQ(nsToCycles(80.0), Cycles(192));
    EXPECT_EQ(nsToCycles(130.0), Cycles(312));
    EXPECT_EQ(nsToCycles(360.0), Cycles(864));
    EXPECT_EQ(nsToCycles(180.0), Cycles(432));
}

TEST(Types, CyclesToNsRoundTrips)
{
    for (double ns : {50.0, 80.0, 100.0, 280.0, 360.0})
        EXPECT_NEAR(cyclesToNs(nsToCycles(ns)), ns, 0.25);
}

TEST(Types, SerializationCycles)
{
    // 64B at 3 GB/s: 21.33 ns = 51.2 cycles.
    EXPECT_EQ(serializationCycles(64, 3.0), Cycles(51));
    // 72B data message at 6 GB/s (CXL scaled): 12 ns = 28.8 cycles.
    EXPECT_EQ(serializationCycles(72, 6.0), Cycles(29));
}

TEST(Types, AddressHelpers)
{
    EXPECT_EQ(blockAddr(0x12345), 0x12340u);
    EXPECT_EQ(pageAddr(0x12345), 0x12000u);
    EXPECT_EQ(pageNumber(0x12345), PageNum(0x12));
    EXPECT_EQ(blockAddr(0x1000), 0x1000u);
}

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(Cycles(30), [&] { order.push_back(3); });
    q.schedule(Cycles(10), [&] { order.push_back(1); });
    q.schedule(Cycles(20), [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.executed(), 3u);
}

TEST(EventQueue, SameCycleEventsAreFifo)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        q.schedule(Cycles(5), [&order, i] { order.push_back(i); });
    q.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CallbackMaySchedule)
{
    EventQueue q;
    int fired = 0;
    q.schedule(Cycles(1), [&] {
        ++fired;
        q.scheduleAfter(Cycles(4), [&] { ++fired; });
    });
    q.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(q.now(), Cycles(5));
}

TEST(EventQueue, RunRespectsLimit)
{
    EventQueue q;
    int fired = 0;
    q.schedule(Cycles(10), [&] { ++fired; });
    q.schedule(Cycles(100), [&] { ++fired; });
    EXPECT_EQ(q.run(Cycles(50)), 1u);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(q.pending(), 1u);
    q.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, EmptyRunAdvancesToLimit)
{
    EventQueue q;
    q.run(Cycles(1000));
    EXPECT_EQ(q.now(), Cycles(1000));
}

TEST(EventQueue, StepExecutesOne)
{
    EventQueue q;
    int fired = 0;
    q.schedule(Cycles(1), [&] { ++fired; });
    q.schedule(Cycles(2), [&] { ++fired; });
    EXPECT_TRUE(q.step());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(q.step());
    EXPECT_FALSE(q.step());
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next32(), b.next32());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next32() == b.next32());
    EXPECT_LT(same, 3);
}

TEST(Rng, Range32Bounds)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.range32(17), 17u);
    EXPECT_EQ(r.range32(0), 0u);
    EXPECT_EQ(r.range32(1), 0u);
}

TEST(Rng, Range64Inclusive)
{
    Rng r(9);
    for (int i = 0; i < 1000; ++i) {
        auto v = r.range64(10, 20);
        EXPECT_GE(v, 10u);
        EXPECT_LE(v, 20u);
    }
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, SkewedFavorsLowIndices)
{
    Rng r(13);
    std::uint64_t low = 0, total = 20000;
    for (std::uint64_t i = 0; i < total; ++i)
        low += (r.skewed(1000, 3.0) < 100);
    // With theta=3, ~46% of mass lands in the first 10% of indices.
    EXPECT_GT(static_cast<double>(low) / static_cast<double>(total),
              0.30);
}

TEST(Rng, ShufflePreservesElements)
{
    Rng r(17);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto sorted = v;
    r.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, sorted);
}

TEST(Stats, MeanBasics)
{
    stats::Mean m;
    EXPECT_DOUBLE_EQ(m.mean(), 0.0);
    m.sample(10);
    m.sample(20);
    m.sample(30);
    EXPECT_DOUBLE_EQ(m.mean(), 20.0);
    EXPECT_DOUBLE_EQ(m.min(), 10.0);
    EXPECT_DOUBLE_EQ(m.max(), 30.0);
    EXPECT_EQ(m.count(), 3u);
    m.reset();
    EXPECT_EQ(m.count(), 0u);
}

TEST(Stats, HistogramBucketsAndOverflow)
{
    stats::Histogram h(4, 10.0);
    h.sample(5);
    h.sample(15);
    h.sample(15);
    h.sample(99); // overflow
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 2u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.total(), 4u);
    EXPECT_DOUBLE_EQ(h.fraction(1), 0.5);
}

TEST(Stats, HistogramWeightedSamples)
{
    stats::Histogram h(4, 1.0);
    h.sample(0, 10);
    h.sample(2, 30);
    EXPECT_EQ(h.total(), 40u);
    EXPECT_DOUBLE_EQ(h.fraction(2), 0.75);
}

TEST(Stats, HistogramQuantile)
{
    stats::Histogram h(10, 1.0);
    for (int i = 0; i < 10; ++i)
        h.sample(i);
    EXPECT_NEAR(h.quantile(0.5), 5.0, 1.0);
    EXPECT_NEAR(h.quantile(0.9), 9.0, 1.0);
}

TEST(Stats, Geomean)
{
    EXPECT_DOUBLE_EQ(stats::geomean({4.0, 1.0}), 2.0);
    EXPECT_NEAR(stats::geomean({1.2, 1.5, 2.0}), 1.5326, 1e-3);
    EXPECT_DOUBLE_EQ(stats::geomean({}), 0.0);
}

TEST(Table, FormatsAligned)
{
    TextTable t({"Workload", "Speedup"});
    t.addRow({"BFS", TextTable::num(1.7, 2)});
    t.addRow({"TC", TextTable::num(1.63, 2)});
    std::string s = t.str();
    EXPECT_NE(s.find("Workload"), std::string::npos);
    EXPECT_NE(s.find("1.70"), std::string::npos);
    EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(Table, PctFormatting)
{
    EXPECT_EQ(TextTable::pct(0.48), "48.0%");
    EXPECT_EQ(TextTable::pct(1.0, 0), "100%");
}

TEST(Scale, DerivedQuantities)
{
    SimScale s = SimScale::sc1();
    EXPECT_EQ(s.threads(), 64);
    EXPECT_EQ(s.chassis(), 4);
    EXPECT_EQ(s.detailInstructions(), 40000u);
}

TEST(Scale, Sc2TriplesDetail)
{
    EXPECT_DOUBLE_EQ(SimScale::sc2().detailFraction, 0.30);
    EXPECT_EQ(SimScale::sc2().detailInstructions(),
              3 * SimScale::sc1().detailInstructions());
}

TEST(Scale, Sc3DoublesThreads)
{
    EXPECT_EQ(SimScale::sc3().threads(),
              2 * SimScale::sc1().threads());
}

} // anonymous namespace
} // namespace starnuma
