#!/bin/sh
# Smoke-test the observability pipeline end to end: build, run one
# traced fast-mode experiment sweep (the Fig. 8 bench), and assert
# that both artifacts exist and parse —
#   stats.json  deterministic stats snapshot (STARNUMA_STATS_OUT)
#   trace.json  Chrome trace with phase duration events, migration
#               instants, and link-utilization counters
#               (STARNUMA_TRACE_OUT)
# Artifacts land in ${STARNUMA_OBS_DIR:-obs_out}/.
set -e
cd "$(dirname "$0")/.."

if [ ! -d build ]; then
    cmake -B build -G Ninja
fi
cmake --build build --target bench_fig08_main_results

out=${STARNUMA_OBS_DIR:-obs_out}
mkdir -p "$out"

STARNUMA_BENCH_FAST=1 \
STARNUMA_STATS_OUT="$out/stats.json" \
STARNUMA_TRACE_OUT="$out/trace.json" \
    ./build/bench/bench_fig08_main_results >/dev/null

python3 - "$out/stats.json" "$out/trace.json" <<'EOF'
import json
import sys

stats_path, trace_path = sys.argv[1], sys.argv[2]
stats = json.load(open(stats_path))
assert stats, "stats snapshot is empty"

trace = json.load(open(trace_path))["traceEvents"]
for e in trace:
    assert "ph" in e and "pid" in e and "name" in e, e
phases = {e["ph"] for e in trace}
assert "X" in phases, "no duration events"
migrations = [e for e in trace
              if e["ph"] == "i" and e["name"] == "migration"]
assert migrations, "no migration instant events"
link = [e for e in trace
        if e["ph"] == "C" and e["name"].endswith(".linkUtil")]
assert link, "no link-utilization counters"
print("observability OK: %d stats, %d trace events "
      "(%d migration instants, %d link-util samples)"
      % (len(stats), len(trace), len(migrations), len(link)))
EOF
echo "artifacts in $out/"
