# Empty dependencies file for starnuma_trace.
# This may be replaced when dependencies are built.
