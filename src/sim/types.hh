/**
 * @file
 * Fundamental scalar types and unit helpers shared by every StarNUMA
 * module. The simulation's unit of time is one core clock cycle at
 * 2.4 GHz (Table I); helpers convert between nanoseconds and cycles.
 */

#ifndef STARNUMA_SIM_TYPES_HH
#define STARNUMA_SIM_TYPES_HH

#include <cstdint>

namespace starnuma
{

/** Simulated physical or virtual byte address. */
using Addr = std::uint64_t;

/** Simulation time, in core clock cycles (2.4 GHz). */
using Cycles = std::uint64_t;

/** Signed cycle delta, for latency arithmetic that may go negative. */
using CycleDelta = std::int64_t;

/** Identifier of a CPU socket (0..N-1); the pool gets its own id. */
using NodeId = std::int32_t;

/** Identifier of a logical hardware thread across the whole system. */
using ThreadId = std::int32_t;

/** Core clock frequency assumed throughout (Table I). */
constexpr double clockGHz = 2.4;

/** Cache block size in bytes. */
constexpr Addr blockBytes = 64;

/** Small (base) page size in bytes. */
constexpr Addr pageBytes = 4096;

/** Convert a latency in nanoseconds to core clock cycles (rounded). */
constexpr Cycles
nsToCycles(double ns)
{
    return static_cast<Cycles>(ns * clockGHz + 0.5);
}

/** Convert core clock cycles back to nanoseconds. */
constexpr double
cyclesToNs(Cycles cycles)
{
    return static_cast<double>(cycles) / clockGHz;
}

/**
 * Cycles needed to serialize @p bytes over a link of @p gbps GB/s
 * (per direction). 1 GB/s == 1e9 bytes/s; at 2.4e9 cycles/s a byte
 * takes 2.4 / gbps cycles.
 */
constexpr Cycles
serializationCycles(Addr bytes, double gbps)
{
    return static_cast<Cycles>(
        static_cast<double>(bytes) * clockGHz / gbps + 0.5);
}

/** Address of the cache block containing @p addr. */
constexpr Addr
blockAddr(Addr addr)
{
    return addr & ~(blockBytes - 1);
}

/** Address of the page containing @p addr. */
constexpr Addr
pageAddr(Addr addr)
{
    return addr & ~(pageBytes - 1);
}

/** Page number (page-granular index) of @p addr. */
constexpr Addr
pageNumber(Addr addr)
{
    return addr / pageBytes;
}

} // namespace starnuma

#endif // STARNUMA_SIM_TYPES_HH
