# Empty compiler generated dependencies file for bench_fig14_sim_configs.
# This may be replaced when dependencies are built.
