// Fixture: D8 clean — RAII locking. lock_guard/scoped_lock (and
// starnuma::MutexLock in the real tree) release on every exit path;
// nothing here may be flagged.

#include <mutex>

namespace fixture
{

int
raiiLocking(std::mutex &mu, std::mutex &other, int &value)
{
    {
        std::lock_guard<std::mutex> guard(mu);
        ++value;
    }
    std::scoped_lock both(mu, other);
    return value;
}

} // namespace fixture
