// Fixture: D4 — include-guard naming. The guard below should be
// STARNUMA_CORE_D4_BAD_GUARD_HH, so the #ifndef line is flagged.

#ifndef WRONG_GUARD_NAME_H // expect-lint: D4
#define WRONG_GUARD_NAME_H

namespace fixture
{
}

#endif // WRONG_GUARD_NAME_H
