
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/driver/experiment.cc" "src/CMakeFiles/starnuma_driver.dir/driver/experiment.cc.o" "gcc" "src/CMakeFiles/starnuma_driver.dir/driver/experiment.cc.o.d"
  "/root/repo/src/driver/metrics.cc" "src/CMakeFiles/starnuma_driver.dir/driver/metrics.cc.o" "gcc" "src/CMakeFiles/starnuma_driver.dir/driver/metrics.cc.o.d"
  "/root/repo/src/driver/system_setup.cc" "src/CMakeFiles/starnuma_driver.dir/driver/system_setup.cc.o" "gcc" "src/CMakeFiles/starnuma_driver.dir/driver/system_setup.cc.o.d"
  "/root/repo/src/driver/timing_sim.cc" "src/CMakeFiles/starnuma_driver.dir/driver/timing_sim.cc.o" "gcc" "src/CMakeFiles/starnuma_driver.dir/driver/timing_sim.cc.o.d"
  "/root/repo/src/driver/trace_sim.cc" "src/CMakeFiles/starnuma_driver.dir/driver/trace_sim.cc.o" "gcc" "src/CMakeFiles/starnuma_driver.dir/driver/trace_sim.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/starnuma_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/starnuma_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/starnuma_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/starnuma_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/starnuma_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/starnuma_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/starnuma_analytic.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
