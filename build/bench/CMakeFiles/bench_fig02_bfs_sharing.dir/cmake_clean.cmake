file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_bfs_sharing.dir/bench_fig02_bfs_sharing.cc.o"
  "CMakeFiles/bench_fig02_bfs_sharing.dir/bench_fig02_bfs_sharing.cc.o.d"
  "CMakeFiles/bench_fig02_bfs_sharing.dir/bench_util.cc.o"
  "CMakeFiles/bench_fig02_bfs_sharing.dir/bench_util.cc.o.d"
  "bench_fig02_bfs_sharing"
  "bench_fig02_bfs_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_bfs_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
