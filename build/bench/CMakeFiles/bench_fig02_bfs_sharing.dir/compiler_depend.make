# Empty compiler generated dependencies file for bench_fig02_bfs_sharing.
# This may be replaced when dependencies are built.
