#include "sim/rng.hh"

#include <cmath>

namespace starnuma
{

std::uint64_t
taskSeed(std::initializer_list<std::string_view> parts,
         std::uint64_t index)
{
    // FNV-1a, with a 0xff separator per part so {"ab","c"} and
    // {"a","bc"} map to different streams.
    std::uint64_t h = 14695981039346656037ULL;
    auto mix = [&h](unsigned char byte) {
        h ^= byte;
        h *= 1099511628211ULL;
    };
    for (std::string_view part : parts) {
        for (char c : part)
            mix(static_cast<unsigned char>(c));
        mix(0xff);
    }
    for (int i = 0; i < 8; ++i)
        mix(static_cast<unsigned char>(index >> (8 * i)));

    // splitmix64 finalizer: spreads FNV's weak low bits.
    h += 0x9e3779b97f4a7c15ULL;
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
    return h ^ (h >> 31);
}

Rng::Rng(std::uint64_t seed, std::uint64_t stream)
    : state(0), inc((stream << 1) | 1)
{
    next32();
    state += seed;
    next32();
}

std::uint32_t
Rng::next32()
{
    std::uint64_t old = state;
    state = old * 6364136223846793005ULL + inc;
    std::uint32_t xorshifted =
        static_cast<std::uint32_t>(((old >> 18) ^ old) >> 27);
    std::uint32_t rot = static_cast<std::uint32_t>(old >> 59);
    return (xorshifted >> rot) | (xorshifted << ((-rot) & 31));
}

std::uint64_t
Rng::next64()
{
    return (static_cast<std::uint64_t>(next32()) << 32) | next32();
}

std::uint32_t
Rng::range32(std::uint32_t bound)
{
    if (bound == 0)
        return 0;
    // Rejection sampling to remove modulo bias.
    std::uint32_t threshold = (-bound) % bound;
    for (;;) {
        std::uint32_t r = next32();
        if (r >= threshold)
            return r % bound;
    }
}

double
Rng::uniform()
{
    return next32() * (1.0 / 4294967296.0);
}

std::uint32_t
Rng::skewed(std::uint32_t n, double theta)
{
    // Inverse-CDF of a bounded Pareto-like distribution: cheap
    // approximation of Zipf popularity adequate for workload skew.
    double u = uniform();
    double x = std::pow(u, theta) * n;
    auto idx = static_cast<std::uint32_t>(x);
    return idx >= n ? n - 1 : idx;
}

} // namespace starnuma
