/**
 * @file
 * Minimal discrete-event simulation kernel. The timing simulation
 * (driver/timing_sim) advances a single EventQueue; components
 * schedule std::function callbacks at absolute cycle times.
 */

#ifndef STARNUMA_SIM_EVENT_QUEUE_HH
#define STARNUMA_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/types.hh"

namespace starnuma
{

/**
 * Time-ordered event queue with FIFO ordering among same-cycle
 * events (stable via a monotonically increasing sequence number).
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() : now_(), nextSeq(0), executed_(0) {}

    /** Current simulation time in cycles. */
    Cycles now() const { return now_; }

    /** Number of events executed so far. */
    std::uint64_t executed() const { return executed_; }

    /** True when no events remain. */
    bool empty() const { return events.empty(); }

    /** Number of pending events. */
    std::size_t pending() const { return events.size(); }

    /** Schedule @p cb at absolute time @p when (>= now). */
    void schedule(Cycles when, Callback cb);

    /** Schedule @p cb @p delta cycles from now. */
    void
    scheduleAfter(Cycles delta, Callback cb)
    {
        schedule(now_ + delta, std::move(cb));
    }

    /**
     * Run until the queue drains or time exceeds @p limit.
     * @return the number of events executed by this call.
     */
    std::uint64_t run(Cycles limit = Cycles::max());

    /** Execute exactly one event, if any. @return true if one ran. */
    bool step();

  private:
    struct Event
    {
        Cycles when;
        std::uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> events;
    Cycles now_;
    std::uint64_t nextSeq;
    std::uint64_t executed_;
};

} // namespace starnuma

#endif // STARNUMA_SIM_EVENT_QUEUE_HH
