/**
 * @file
 * The baseline system's migration policy (§IV-C): the paper favors
 * the baseline by granting it zero-cost, per-socket knowledge of
 * every access to every 4 KB page in each migration phase. Each
 * phase, the hottest pages move to their majority-accessor socket
 * (the migration cost itself is still modeled, like StarNUMA's).
 */

#ifndef STARNUMA_CORE_PERFECT_POLICY_HH
#define STARNUMA_CORE_PERFECT_POLICY_HH

#include <cstdint>
#include <vector>

#include "core/page_stats.hh"
#include "mem/page_map.hh"
#include "sim/types.hh"

namespace starnuma
{
namespace core
{

/** One page-granular migration decision. */
struct PageMigration
{
    PageNum page;
    NodeId from;
    NodeId to;
};

/** Zero-cost perfect-knowledge page migration for the baseline. */
class PerfectPagePolicy
{
  public:
    /**
     * @param migration_limit_pages per-phase page budget (matches
     *        the StarNUMA configuration it is compared against).
     * @param min_accesses ignore pages colder than this.
     */
    PerfectPagePolicy(int sockets,
                      std::uint32_t migration_limit_pages,
                      std::uint32_t min_accesses = 4);

    /**
     * Switch the access-count table to flat storage over
     * [base, base + pages) (see PageAccessStats::preallocate).
     */
    void
    preallocate(PageNum base, std::size_t pages)
    {
        stats.preallocate(base, pages);
    }

    /** Zero-cost access knowledge feed (@p count accesses). */
    // lint: hot-path one count per replayed record batch (baseline)
    void
    recordAccess(PageNum page, NodeId socket,
                 std::uint32_t count = 1)
    {
        stats.record(page, socket, count);
    }

    /**
     * End-of-phase decision: move the hottest mis-placed pages to
     * their majority socket, hottest first, up to the limit.
     * Applies the moves to @p pages and resets the phase's stats.
     */
    std::vector<PageMigration> decidePhase(mem::PageMap &pages);

    std::uint64_t migratedPages() const { return migrated_; }

  private:
    PageAccessStats stats;
    std::uint32_t limit;
    std::uint32_t minAccesses;
    std::uint64_t migrated_;
};

} // namespace core
} // namespace starnuma

#endif // STARNUMA_CORE_PERFECT_POLICY_HH
