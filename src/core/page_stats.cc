#include "core/page_stats.hh"

#include "sim/annotations.hh"
#include "sim/logging.hh"

namespace starnuma
{
namespace core
{

namespace
{

/** Counter blocks per arena chunk (chunks chain on exhaustion). */
constexpr std::size_t blocksPerArena = 64 * 1024;

} // anonymous namespace

PageAccessStats::PageAccessStats(int sockets) : sockets_(sockets)
{
    sn_assert(sockets > 0, "need at least one socket");
}

// lint: cold-path arena chaining amortized over ~64k blocks; the
// bump allocation itself is the hot case and allocates nothing.
STARNUMA_COLD_PATH std::uint32_t *
PageAccessStats::newBlock()
{
    std::size_t bytes = sizeof(std::uint32_t) *
                        static_cast<std::size_t>(sockets_);
    if (!arenas.empty()) {
        auto *p =
            arenas.back().allocArray<std::uint32_t>(sockets_);
        if (p)
            return p;
    }
    // Exhausted (or first use): chain a fresh fixed-size arena.
    arenas.emplace_back(blocksPerArena * bytes);
    auto *p = arenas.back().allocArray<std::uint32_t>(sockets_);
    sn_assert(p != nullptr, "fresh arena must fit one block");
    return p;
}

// lint: cold-path one-time setup before the replay loop
void
PageAccessStats::preallocate(PageNum base, std::size_t pages)
{
    sn_assert(pageCounts.empty() && flat.empty(),
              "preallocate before recording any access");
    if (pages == 0)
        return;
    flatBase = base;
    flat.assign(pages, nullptr);
    order.reserve(pages);
}

void
PageAccessStats::reset()
{
    pageCounts.clear();
    for (PageNum page : order)
        flat[page.value() - flatBase.value()] = nullptr;
    order.clear();
    for (Arena &a : arenas)
        a.reset();
}

const std::uint32_t *
PageAccessStats::findBlock(PageNum page) const
{
    if (flat.empty()) {
        auto it = pageCounts.find(page);
        return it == pageCounts.end() ? nullptr : it->second;
    }
    std::uint64_t slot = page.value() - flatBase.value();
    return slot < flat.size() ? flat[slot] : nullptr;
}

std::uint64_t
PageAccessStats::totalAccesses(PageNum page) const
{
    const std::uint32_t *block = findBlock(page);
    if (!block)
        return 0;
    std::uint64_t total = 0;
    for (int s = 0; s < sockets_; ++s)
        total += block[s];
    return total;
}

int
PageAccessStats::sharers(PageNum page) const
{
    const std::uint32_t *block = findBlock(page);
    if (!block)
        return 0;
    int n = 0;
    for (int s = 0; s < sockets_; ++s)
        n += (block[s] > 0);
    return n;
}

NodeId
PageAccessStats::majoritySocket(PageNum page) const
{
    const std::uint32_t *block = findBlock(page);
    if (!block)
        return -1;
    NodeId best = 0;
    for (int s = 1; s < sockets_; ++s)
        if (block[s] > block[best])
            best = s;
    return block[best] > 0 ? best : -1;
}

} // namespace core
} // namespace starnuma
