# Empty dependencies file for bench_fig13_tc_sharing.
# This may be replaced when dependencies are built.
