/**
 * @file
 * gem5-style status and error reporting. fatal() is for user error
 * (bad configuration), panic() for internal invariant violations.
 */

#ifndef STARNUMA_SIM_LOGGING_HH
#define STARNUMA_SIM_LOGGING_HH

#include <cstdarg>
#include <string>

namespace starnuma
{

/** Print an informational message to stderr ("info: ..."). */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a warning to stderr ("warn: ..."). */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Terminate with exit(1): the simulation cannot continue due to a
 * condition that is the user's fault (bad configuration, invalid
 * arguments) rather than a simulator bug.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Abort: something happened that should never happen regardless of
 * user input, i.e., an actual simulator bug.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Backend for sn_assert: reports the condition, then the message. */
[[noreturn]] void panicAssert(const char *cond, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

/** panic() unless @p cond holds. Use for internal invariants. */
#define sn_assert(cond, ...)                                          \
    do {                                                              \
        if (!(cond))                                                  \
            ::starnuma::panicAssert(#cond, __VA_ARGS__);              \
    } while (0)

} // namespace starnuma

#endif // STARNUMA_SIM_LOGGING_HH
