file(REMOVE_RECURSE
  "libstarnuma_sim.a"
)
