#include "driver/trace_sim.hh"

#include <algorithm>
#include <cstdio>

#include "core/oracle.hh"
#include "core/region_tracker.hh"
#include "core/tlb_annex.hh"
#include "core/tlb_directory.hh"
#include "mem/page_map.hh"
#include "sim/logging.hh"
#include "sim/obs/obs.hh"
#include "sim/rng.hh"

namespace starnuma
{
namespace driver
{

std::uint64_t
Checkpoint::migratedPages(int pages_per_region) const
{
    return regionMigrations.size() *
               static_cast<std::uint64_t>(pages_per_region) +
           pageMigrations.size();
}

TraceSim::TraceSim(const SystemSetup &system_setup,
                   const SimScale &sim_scale)
    : setup(system_setup), scale(sim_scale)
{
    sn_assert(scale.sockets == setup.sys.sockets,
              "scale/system socket mismatch (%d vs %d)",
              scale.sockets, setup.sys.sockets);
}

NodeId
TraceSim::socketOf(ThreadId t) const
{
    return t / scale.coresPerSocket;
}

TraceSimResult
TraceSim::run(const trace::WorkloadTrace &trace)
{
    sn_assert(trace.threads == scale.threads(),
              "trace captured for %d threads, scale expects %d",
              trace.threads, scale.threads());
    TraceSimResult result =
        setup.placement == Placement::StaticOracle
            ? runStaticOracle(trace)
            : runDynamic(trace);
    if (setup.replicateReadOnly)
        result.replication = core::planReplication(
            trace, scale.coresPerSocket, setup.sys.sockets,
            setup.replication);
    return result;
}

namespace
{

/** Snapshot a PageMap into a checkpoint's plain map. */
std::unordered_map<PageNum, NodeId>
snapshot(const mem::PageMap &pm)
{
    std::unordered_map<PageNum, NodeId> out;
    out.reserve(pm.totalPages());
    pm.forEach([&](PageNum page, NodeId home) { out[page] = home; });
    return out;
}

} // anonymous namespace

TraceSimResult
TraceSim::runDynamic(const trace::WorkloadTrace &trace)
{
    const bool star = setup.sys.hasPool;
    const int nodes = setup.sys.sockets + (star ? 1 : 0);

    TraceSimResult result;
    result.footprintPages = trace.footprintBytes / pageBytes;
    result.poolCapacityPages =
        star ? static_cast<std::uint64_t>(
                   static_cast<double>(result.footprintPages) *
                   setup.sys.poolCapacityFraction)
             : 0;

    mem::PageMap pm(nodes);
    for (const auto &ft : trace.firstTouches)
        pm.touch(ft.page, socketOf(ft.thread));

    // Scale the per-phase migration budget to the footprint so the
    // modeled migration traffic stays proportional to the shrunken
    // phase length (the paper tunes an absolute limit per workload
    // at its own scale, §IV-C).
    core::MigrationConfig mig_cfg = setup.migration;
    if (mig_cfg.scaleLimitToFootprint) {
        mig_cfg.migrationLimitPages =
            static_cast<std::uint32_t>(std::max<std::uint64_t>(
                64, static_cast<std::uint64_t>(
                        static_cast<double>(
                            result.footprintPages) *
                        mig_cfg.migrationLimitFraction)));
    }

    // StarNUMA machinery: shared metadata region, per-core TLB
    // annexes, Algorithm 1 engine.
    core::RegionTracker tracker(mig_cfg.counterBits,
                                setup.sys.sockets,
                                setup.regionBytes);
    std::vector<core::TlbAnnex> tlbs;
    // Per-task RNG stream: the engine's tie-break generator is
    // seeded from the task identity (workload, config), never shared
    // between experiments, so concurrent sweep entries draw the same
    // sequences they would serially.
    core::MigrationEngine engine(mig_cfg, setup.sys.sockets, star,
                                 setup.regionBytes,
                                 taskSeed({trace.workload,
                                           setup.name}));
    core::TlbDirectory tlb_dir(trace.threads);
    if (star) {
        tlbs.reserve(trace.threads);
        for (ThreadId t = 0; t < trace.threads; ++t) {
            tlbs.emplace_back(core::TlbConfig{}, tracker,
                              socketOf(t));
            tlbs.back().attachDirectory(&tlb_dir, t);
        }
    }

    // Baseline machinery: zero-cost perfect page knowledge, same
    // migration budget as StarNUMA gets.
    core::PerfectPagePolicy perfect(setup.sys.sockets,
                                    mig_cfg.migrationLimitPages);

    std::vector<std::size_t> cursor(trace.threads, 0);
    std::vector<core::RegionMigration> pending_regions;
    std::vector<core::PageMigration> pending_pages;

    for (int phase = 0; phase < scale.phases; ++phase) {
        Checkpoint cp;
        cp.pageHome = snapshot(pm);
        cp.regionMigrations = std::move(pending_regions);
        cp.pageMigrations = std::move(pending_pages);
        pending_regions.clear();
        pending_pages.clear();

        std::uint64_t phase_end =
            static_cast<std::uint64_t>(phase + 1) *
            scale.phaseInstructions;

        if (star) {
            // Marker bits are set once per migration phase so hot,
            // never-evicted TLB entries still report (§III-D1).
            for (auto &tlb : tlbs)
                tlb.setMarkers();
        }

        for (ThreadId t = 0; t < trace.threads; ++t) {
            const auto &recs = trace.perThread[t];
            NodeId socket = socketOf(t);
            std::size_t &i = cursor[t];
            while (i < recs.size() && recs[i].instr <= phase_end) {
                PageNum page = pageNumber(recs[i].vaddr());
                pm.touch(page, socket);
                if (star)
                    tlbs[t].recordAccess(recs[i].vaddr());
                else
                    perfect.recordAccess(page, socket);
                ++i;
            }
        }

        if (star) {
            for (auto &tlb : tlbs)
                tlb.flushAll();
            pending_regions = engine.decidePhase(
                tracker, pm, result.poolCapacityPages, phase + 1);
            // DiDi-style shootdowns: each migrated page only
            // interrupts the cores whose TLBs hold it (§III-D3).
            int ppr = tracker.pagesPerRegion();
            for (const auto &m : pending_regions) {
                PageNum first = tracker.firstPage(m.region);
                for (int p = 0; p < ppr; ++p) {
                    PageNum page = first + PageNum(p);
                    core::TlbHolderMask mask =
                        tlb_dir.holders(page);
                    tlb_dir.shootdown(page);
                    for (ThreadId t = 0; t < trace.threads; ++t)
                        if (mask.test(t))
                            tlbs[t].shootdown(page);
                }
            }
        } else {
            pending_pages = perfect.decidePhase(pm);
        }
        result.checkpoints.push_back(std::move(cp));
    }

    result.migratedRegions = engine.migratedRegions();
    result.migratedPagesTotal =
        engine.migratedRegions() * tracker.pagesPerRegion() +
        perfect.migratedPages();
    result.poolMigrationFraction = engine.poolMigrationFraction();
    result.victimEvictions = engine.victimEvictions();
    result.pingPongSuppressed = engine.pingPongSuppressed();
    if (star) {
        result.pagesInPool = pm.pagesAt(setup.sys.poolNode());
        result.tlbShootdownsSent = tlb_dir.shootdownsSent();
        result.tlbShootdownsSaved = tlb_dir.shootdownsSaved();
    }
    if (obs::StatsSink::global().enabled()) {
        obs::Registry reg;
        engine.registerStats(reg, "engine");
        if (star)
            tlb_dir.registerStats(reg, "tlbDirectory");
        result.stats = reg.snapshot();
    }
    return result;
}

TraceSimResult
TraceSim::runStaticOracle(const trace::WorkloadTrace &trace)
{
    const bool star = setup.sys.hasPool;
    const int nodes = setup.sys.sockets + (star ? 1 : 0);

    TraceSimResult result;
    result.footprintPages = trace.footprintBytes / pageBytes;
    result.poolCapacityPages =
        star ? static_cast<std::uint64_t>(
                   static_cast<double>(result.footprintPages) *
                   setup.sys.poolCapacityFraction)
             : 0;

    // A priori knowledge: feed the whole run into the oracle.
    core::OraclePlacement oracle(setup.sys.sockets);
    for (ThreadId t = 0; t < trace.threads; ++t)
        for (const auto &r : trace.perThread[t])
            oracle.recordAccess(pageNumber(r.vaddr()), socketOf(t));

    mem::PageMap pm(nodes);
    // Pages only touched during setup fall back to first touch.
    for (const auto &ft : trace.firstTouches)
        pm.touch(ft.page, socketOf(ft.thread));
    oracle.place(pm, star, result.poolCapacityPages,
                 setup.migration.poolSharerThreshold);

    auto map = snapshot(pm);
    for (int phase = 0; phase < scale.phases; ++phase) {
        Checkpoint cp;
        cp.pageHome = map;
        result.checkpoints.push_back(std::move(cp));
    }
    if (star)
        result.pagesInPool = pm.pagesAt(setup.sys.poolNode());
    return result;
}

namespace
{

constexpr std::uint64_t checkpointMagic = 0x53544152434b5031ULL;

bool
put(std::FILE *f, const void *p, std::size_t n)
{
    if (n == 0)
        return true; // empty vectors have a null data()
    return std::fwrite(p, 1, n, f) == n;
}

bool
get(std::FILE *f, void *p, std::size_t n)
{
    if (n == 0)
        return true;
    return std::fread(p, 1, n, f) == n;
}

} // anonymous namespace

bool
TraceSimResult::save(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    bool ok = put(f, &checkpointMagic, 8);
    std::uint64_t scalars[] = {
        checkpoints.size(),   poolCapacityPages,
        footprintPages,       migratedRegions,
        migratedPagesTotal,   victimEvictions,
        pingPongSuppressed,   pagesInPool};
    ok = ok && put(f, scalars, sizeof(scalars));
    ok = ok && put(f, &poolMigrationFraction, 8);
    for (const Checkpoint &cp : checkpoints) {
        std::uint64_t n = cp.pageHome.size();
        ok = ok && put(f, &n, 8);
        // Serialize in page order so saved results are
        // byte-identical across runs (hash order is not).
        std::vector<PageNum> sorted_pages;
        sorted_pages.reserve(cp.pageHome.size());
        for (const auto &[page, home] :
             cp.pageHome) // lint: order-independent
            sorted_pages.push_back(page);
        std::sort(sorted_pages.begin(), sorted_pages.end());
        for (PageNum page : sorted_pages) {
            std::int64_t h = cp.pageHome.at(page);
            ok = ok && put(f, &page, 8) && put(f, &h, 8);
        }
        n = cp.regionMigrations.size();
        ok = ok && put(f, &n, 8);
        ok = ok && put(f, cp.regionMigrations.data(),
                       n * sizeof(core::RegionMigration));
        n = cp.pageMigrations.size();
        ok = ok && put(f, &n, 8);
        ok = ok && put(f, cp.pageMigrations.data(),
                       n * sizeof(core::PageMigration));
    }
    std::uint64_t n_rep = replication.replicated.size();
    ok = ok && put(f, &n_rep, 8);
    std::vector<PageNum> sorted_rep(replication.replicated.begin(),
                                    replication.replicated.end());
    std::sort(sorted_rep.begin(), sorted_rep.end());
    for (PageNum page : sorted_rep)
        ok = ok && put(f, &page, 8);
    ok = ok && put(f, &replication.capacityOverhead, 8);
    std::fclose(f);
    return ok;
}

bool
TraceSimResult::load(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    std::uint64_t magic = 0;
    bool ok = get(f, &magic, 8) && magic == checkpointMagic;
    std::uint64_t scalars[8] = {};
    ok = ok && get(f, scalars, sizeof(scalars));
    ok = ok && get(f, &poolMigrationFraction, 8);
    if (ok) {
        poolCapacityPages = scalars[1];
        footprintPages = scalars[2];
        migratedRegions = scalars[3];
        migratedPagesTotal = scalars[4];
        victimEvictions = scalars[5];
        pingPongSuppressed = scalars[6];
        pagesInPool = scalars[7];
        checkpoints.assign(scalars[0], {});
    }
    for (Checkpoint &cp : checkpoints) {
        if (!ok)
            break;
        std::uint64_t n = 0;
        ok = ok && get(f, &n, 8);
        cp.pageHome.reserve(n);
        for (std::uint64_t i = 0; ok && i < n; ++i) {
            PageNum page;
            std::int64_t h = 0;
            ok = get(f, &page, 8) && get(f, &h, 8);
            cp.pageHome[page] = static_cast<NodeId>(h);
        }
        ok = ok && get(f, &n, 8);
        if (ok) {
            cp.regionMigrations.resize(n);
            ok = get(f, cp.regionMigrations.data(),
                     n * sizeof(core::RegionMigration));
        }
        ok = ok && get(f, &n, 8);
        if (ok) {
            cp.pageMigrations.resize(n);
            ok = get(f, cp.pageMigrations.data(),
                     n * sizeof(core::PageMigration));
        }
    }
    std::uint64_t n_rep = 0;
    ok = ok && get(f, &n_rep, 8);
    replication.replicated.clear();
    for (std::uint64_t i = 0; ok && i < n_rep; ++i) {
        PageNum page;
        ok = get(f, &page, 8);
        replication.replicated.insert(page);
    }
    ok = ok && get(f, &replication.capacityOverhead, 8);
    std::fclose(f);
    return ok;
}

} // namespace driver
} // namespace starnuma
