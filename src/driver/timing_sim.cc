#include "driver/timing_sim.hh"

#include <algorithm>
#include <array>
#include <cstdio>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "core/replication.hh"
#include "core/shootdown.hh"
#include "mem/cache.hh"
#include "mem/directory.hh"
#include "mem/dram.hh"
#include "mem/page_map.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/obs/obs.hh"
#include "sim/obs/timeseries.hh"
#include "sim/obs/trace_session.hh"
#include "sim/parallel.hh"
#include "sim/stats.hh"
#include "topology/topology.hh"

namespace starnuma
{
namespace driver
{

namespace
{

/** Cycles between light-core pacing updates. */
constexpr Cycles pacerPeriod{20000};

/** Every Nth miss issues a tracker-metadata update write (§IV-C:
 *  "we model the additional memory traffic required for tracker
 *  updates"); approximates the PTW's annex flush rate. */
constexpr std::uint64_t metadataWritePeriod = 32;

/** Page data is streamed in chunks of this many blocks. */
constexpr int migrationChunkBlocks = 4;

/** Stream/counter names per topology::LinkType index. */
constexpr const char *linkTypeNames[3] = {"upi", "numalink", "cxl"};

/** Zero-padded snapshot prefix of one phase ("phase03."). */
std::string
phasePrefix(int phase)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "phase%02d.", phase);
    return buf;
}

/**
 * Hardware state that persists across the run's phases: caches and
 * directory stay warm (the phases of one workload run on the same
 * machine); link and DRAM queue occupancy is reset per phase since
 * checkpoints are far apart in time.
 */
struct MachineState
{
    MachineState(const SystemSetup &setup, const SimScale &scale,
                 const CoreModel &core)
        : topo(setup.sys), directory(setup.sys.sockets),
          pages(setup.sys.sockets + (setup.sys.hasPool ? 1 : 0))
    {
        mem::CacheConfig llc_cfg{
            static_cast<Addr>(scale.coresPerSocket) *
                core.llcBytesPerCore,
            16};
        mem::DramConfig dram_cfg;
        dram_cfg.accessNs = setup.sys.dramNs;
        for (int s = 0; s < setup.sys.sockets; ++s) {
            llcs.emplace_back(llc_cfg);
            mcs.emplace_back(setup.sys.channelsPerSocket, dram_cfg);
        }
        if (setup.sys.hasPool)
            mcs.emplace_back(setup.sys.poolChannels, dram_cfg);
    }

    void
    newPhase(const Checkpoint &checkpoint)
    {
        topo.resetContention();
        for (auto &mc : mcs)
            mc.resetContention();
        // Rebuilds a map (FlatMap iterates in insertion order).
        for (const auto &[page, home] : checkpoint.pageHome)
            pages.setHome(page, home);
        migrating.clear();
    }

    /** Register the machine's component stats (links, LLCs, DRAM,
     *  directory) into @p r. */
    // lint: cold-path stats export, once per run when observing
    void
    registerStats(obs::Registry &r) const
    {
        topo.registerStats(r, "topo");
        directory.registerStats(r, "directory");
        int sockets = static_cast<int>(llcs.size());
        for (int s = 0; s < sockets; ++s) {
            std::string node = "socket" + std::to_string(s);
            llcs[s].registerStats(r, node + ".llc");
            mcs[s].registerStats(r, node + ".dram");
        }
        if (static_cast<int>(mcs.size()) > sockets)
            mcs[sockets].registerStats(r, "pool.dram");
    }

    topology::Topology topo;
    std::vector<mem::Cache> llcs;
    std::vector<mem::MemoryController> mcs;
    mem::Directory directory;
    mem::PageMap pages;
    FlatMap<PageNum, Cycles> migrating;
    // Mutable copy of the §V-F replication set: a write to a
    // replicated page de-replicates it for the rest of the run.
    FlatSet<PageNum> replicated;
};

/**
 * One phase's event-driven simulation. Every resource (link
 * direction, DRAM bank/bus) is claimed by an event executing at the
 * moment the request actually reaches it, so the fluid queues see
 * arrivals in true time order.
 */
class PhaseSim
{
  public:
    PhaseSim(const SystemSetup &setup, const SimScale &scale,
             const TimingOptions &options, const CoreModel &core,
             const trace::WorkloadTrace &trace,
             const Checkpoint &checkpoint, int phase,
             MachineState &machine);

    void run();

    /** Fold this phase's post-warmup stats into @p m. */
    void accumulate(RunMetrics &m) const;

    /** Register this phase's post-warmup stats into @p r. */
    void registerStats(obs::Registry &r) const;

    /** Simulated cycles this phase covered. */
    Cycles horizon() const { return endCycle; }

    /** This phase's per-epoch telemetry (DESIGN.md §14): link
     *  utilization and DRAM request rate per pacer epoch, sampled
     *  on the simulated clock. The pid-2 trace counter events
     *  re-emit these samples, so the two channels cannot drift. */
    const obs::TimeSeries &timeseries() const { return series; }

  private:
    struct Outstanding
    {
        std::uint64_t instr;
        Cycles done;
        bool complete = false;
    };

    struct CoreState
    {
        ThreadId thread = 0;
        NodeId socket = 0;
        bool detailed = false;
        std::size_t idx = 0; ///< next record
        std::size_t end = 0;
        std::uint64_t lastInstr = 0;
        Cycles readyTime; ///< compute-pacing issue point
        bool blocked = false; ///< stalled on oldest outstanding
        bool issuePending = false; ///< an issue event is scheduled
        bool done = false;
        Cycles doneCycle;
        Cycles warmupCycle;
        bool warmupCrossed = false;
        std::deque<Outstanding> pending;
    };

    // --- core actors ---
    void scheduleIssue(CoreState &c, Cycles when);
    void issueNext(CoreState &c);
    void onComplete(CoreState &c, std::uint64_t instr, Cycles done,
                    AccessType type, bool count_stats,
                    Cycles issued);
    bool frontBlocks(const CoreState &c,
                     std::uint64_t next_instr) const;
    void finishCore(CoreState &c);
    void pace();
    void sampleEpoch(bool emit_trace);
    bool allDetailedDone() const;

    // --- memory system (asynchronous request path) ---
    /** Start a miss's journey; completion is an event at 'done'. */
    void startMiss(CoreState &c, Addr vaddr, bool write,
                   std::uint64_t instr, bool count_stats);
    void missAfterStall(CoreState &c, Addr vaddr, bool write,
                        std::uint64_t instr, bool count_stats,
                        Cycles issued);
    void finishMiss(CoreState &c, std::uint64_t instr,
                    AccessType type, bool count_stats,
                    Cycles issued, Cycles done);

    void applyMigration(Cycles t, PageNum first_page, int pages_n,
                        NodeId from, NodeId to);

    const SystemSetup &setup;
    const SimScale &scale;
    const TimingOptions &options;
    const CoreModel &core;
    const trace::WorkloadTrace &trace;

    std::uint64_t windowStart;
    std::uint64_t windowEnd;
    std::uint64_t warmupInstr;

    EventQueue q;
    MachineState &machine;
    topology::Topology &topo;
    std::vector<mem::Cache> &llcs;
    std::vector<mem::MemoryController> &mcs;
    mem::Directory &directory;
    mem::PageMap &pages;
    FlatMap<PageNum, Cycles> &migrating;
    std::vector<CoreState> cores;
    int phase_;
    double lightCpi;
    std::uint64_t lastPaceInstr = 0;
    Cycles lastPaceCycle;
    std::uint64_t missCount = 0;
    bool stop = false;

    // Simulated-timeline epoch telemetry: the deterministic series
    // is the single source; trace counter events re-emit from it.
    static constexpr obs::TimeSeries::StreamId noStream = ~0u;
    obs::TimeSeries series;
    std::array<obs::TimeSeries::StreamId, 3> linkStream{};
    obs::TimeSeries::StreamId dramStream = noStream;
    std::array<std::uint64_t, 3> lastLinkBusy{};
    std::uint64_t lastDramRequests = 0;
    Cycles lastTraceCycle;

    // Post-warmup statistics.
    std::uint64_t statInstructions = 0;
    Cycles statCycles;
    std::uint64_t statLlcHits = 0;
    std::uint64_t statDetailedMisses = 0;
    std::array<std::uint64_t, accessTypes> statMix{};
    std::array<stats::Mean, accessTypes> statTypeLatency;
    stats::Mean statLatency;
    stats::Mean statMigStall;
    std::uint64_t statShootdownPages = 0;
    std::uint64_t statCoherence0 = 0;
    Cycles endCycle;
};

// lint: cold-path one-time per-phase construction; telemetry
// stream registration happens here, not on the access path
PhaseSim::PhaseSim(const SystemSetup &system_setup,
                   const SimScale &sim_scale,
                   const TimingOptions &timing_options,
                   const CoreModel &core_model,
                   const trace::WorkloadTrace &workload_trace,
                   const Checkpoint &checkpoint, int phase,
                   MachineState &machine_state)
    : setup(system_setup), scale(sim_scale),
      options(timing_options), core(core_model),
      trace(workload_trace), machine(machine_state),
      topo(machine.topo),
      llcs(machine.llcs), mcs(machine.mcs),
      directory(machine.directory), pages(machine.pages),
      migrating(machine.migrating), phase_(phase),
      lightCpi(core.baseCpi * 2)
{
    machine.newPhase(checkpoint);
    statCoherence0 = directory.transactions();

    windowStart = static_cast<std::uint64_t>(phase) *
                  scale.phaseInstructions;
    windowEnd = windowStart + scale.detailInstructions();
    warmupInstr =
        windowStart +
        static_cast<std::uint64_t>(
            static_cast<double>(scale.detailInstructions()) *
            scale.warmupFraction);

    // Cores; the detailed socket is socket 0.
    int threads = options.singleSocketLocal ? scale.coresPerSocket
                                            : scale.threads();
    cores.resize(threads);
    for (ThreadId t = 0; t < threads; ++t) {
        CoreState &c = cores[t];
        c.thread = t;
        c.socket = t / scale.coresPerSocket;
        c.detailed = (c.socket == 0);
        const auto &recs = trace.perThread[t];
        auto below = [](const trace::MemRecord &r, std::uint64_t v) {
            return r.instr < v;
        };
        c.idx = std::lower_bound(recs.begin(), recs.end(),
                                 windowStart, below) -
                recs.begin();
        c.end = std::lower_bound(recs.begin(), recs.end(), windowEnd,
                                 below) -
                recs.begin();
        c.lastInstr = windowStart;
    }

    // Telemetry streams: one linkUtil stream per link type present
    // in the topology, plus the aggregate DRAM request rate. The
    // reserve covers a generous-CPI estimate of the phase's pacer
    // epochs so steady-state sampling rarely reallocates (regrowth
    // past it is amortized and off the per-record path anyway).
    std::size_t epochs_est =
        static_cast<std::size_t>(
            static_cast<double>(scale.detailInstructions()) * 4.0 /
            static_cast<double>(pacerPeriod.value())) +
        2;
    linkStream.fill(noStream);
    std::array<int, 3> link_types{};
    for (const auto &link : topo.links())
        ++link_types[static_cast<int>(link.type())];
    for (int k = 0; k < 3; ++k) {
        if (!link_types[k])
            continue;
        linkStream[k] = series.addStream(
            std::string("linkUtil.") + linkTypeNames[k], epochs_est);
    }
    dramStream = series.addStream("dram.requests", epochs_est);

    // Modeled migrations: the window covers the first
    // detailFraction of the phase, so that share of the phase's
    // migrations is modeled (§IV-C) — additionally capped so the
    // modeled page-data streams cannot occupy more than ~10% of a
    // route's time in the window (the remaining migrations still
    // take effect through the checkpoint's page map, exactly like
    // the 90% outside the window).
    int ppr = pagesPerRegion(setup.regionBytes);
    Cycles window_est(
        static_cast<double>(scale.detailInstructions()) *
        core.baseCpi * 4);
    Cycles page_stream = serializationCycles(
        pageBytes + (pageBytes / blockBytes) * 8, 3.0);
    std::size_t page_budget = std::max<std::size_t>(
        2, window_est / (page_stream * 10));

    std::size_t n_regions = std::min<std::size_t>(
        static_cast<std::size_t>(
            static_cast<double>(
                checkpoint.regionMigrations.size()) *
                scale.detailFraction +
            0.999),
        std::max<std::size_t>(1, page_budget / ppr));
    std::size_t n_pages = std::min<std::size_t>(
        static_cast<std::size_t>(
            static_cast<double>(checkpoint.pageMigrations.size()) *
                scale.detailFraction +
            0.999),
        page_budget);
    if (checkpoint.regionMigrations.empty())
        n_regions = 0;
    if (checkpoint.pageMigrations.empty())
        n_pages = 0;

    std::size_t n_migrations = n_regions + n_pages;
    Cycles spacing =
        n_migrations ? std::max(Cycles(2000),
                                window_est / (n_migrations + 1))
                     : window_est;
    Cycles when = spacing;
    for (std::size_t i = 0; i < n_regions; ++i) {
        const auto &m = checkpoint.regionMigrations[i];
        PageNum first = regionFirstPage(m.region, setup.regionBytes);
        q.schedule(when, [this, first, ppr, m] {
            applyMigration(q.now(), first, ppr, m.from, m.to);
        });
        when += spacing;
    }
    when = spacing + Cycles(1);
    for (std::size_t i = 0; i < n_pages; ++i) {
        const auto &m = checkpoint.pageMigrations[i];
        q.schedule(when, [this, m] {
            applyMigration(q.now(), m.page, 1, m.from, m.to);
        });
        when += spacing;
    }
}

void
PhaseSim::applyMigration(Cycles t, PageNum first_page, int pages_n,
                         NodeId from, NodeId to)
{
    // Shootdowns and the page-map update happen up front; the data
    // streams over the interconnect chunk by chunk, and accesses to
    // a page stall until its last chunk has arrived (§IV-C).
    Addr chunk_bytes =
        migrationChunkBlocks * (blockBytes + 8);
    int chunks_per_page =
        static_cast<int>(pageBytes / blockBytes) /
        migrationChunkBlocks;
    Cycles chunk_gap = serializationCycles(
        chunk_bytes, std::min({setup.sys.upiGbps,
                               setup.sys.numalinkGbps,
                               setup.sys.cxlGbps}));

    Cycles chunk_time = t;
    for (int p = 0; p < pages_n; ++p) {
        PageNum page = first_page + PageNum(p);
        if (pages.home(page) == mem::invalidNode)
            continue;
        pages.setHome(page, to);
        ++statShootdownPages;
        if (options.softwareShootdowns) {
            // Conventional shootdown: every core takes an IPI and
            // enters the kernel for every migrated page [64].
            core::ShootdownModel model;
            for (CoreState &cs : cores)
                cs.readyTime = std::max(cs.readyTime, t) +
                               model.softwareCostPerCore;
        }
        Addr byte = pageBase(page);
        for (auto &llc : llcs)
            llc.invalidatePage(byte);
        for (Addr b = byte; b < byte + pageBytes; b += blockBytes)
            for (NodeId s = 0; s < setup.sys.sockets; ++s)
                directory.evict(b, s);

        for (int ch = 0; ch < chunks_per_page; ++ch) {
            chunk_time += chunk_gap;
            bool last = (ch == chunks_per_page - 1);
            q.schedule(chunk_time,
                       [this, from, to, chunk_bytes, page, last] {
                           Cycles arr = topo.send(from, to, q.now(),
                                                  chunk_bytes);
                           if (last)
                               migrating[page] = arr;
                       });
        }
        // Conservative availability estimate until the last chunk
        // lands (replaced by the actual arrival above).
        migrating[page] =
            chunk_time + topo.unloadedOneWay(from, to);
    }
}

// --- memory system ---

void
PhaseSim::finishMiss(CoreState &c, std::uint64_t instr,
                     AccessType type, bool count_stats,
                     Cycles issued, Cycles done)
{
    if (count_stats) {
        ++statMix[static_cast<int>(type)];
        statLatency.sample(
            static_cast<double>((done - issued).value()));
        statTypeLatency[static_cast<int>(type)].sample(
            static_cast<double>((done - issued).value()));
        if (c.detailed)
            ++statDetailedMisses;
    }
    onComplete(c, instr, done, type, count_stats, issued);
}

void
PhaseSim::startMiss(CoreState &c, Addr vaddr, bool write,
                    std::uint64_t instr, bool count_stats)
{
    Cycles t = q.now();
    PageNum page = pageNumber(vaddr);

    // Stall while the page's migration is in flight.
    auto mig = migrating.find(page);
    if (mig != migrating.end()) {
        if (mig->second > t) {
            Cycles resume = mig->second;
            statMigStall.sample(
                static_cast<double>((resume - t).value()));
            q.schedule(resume, [this, &c, vaddr, write, instr,
                                count_stats, t] {
                missAfterStall(c, vaddr, write, instr, count_stats,
                               t);
            });
            return;
        }
        migrating.erase(mig);
    }
    missAfterStall(c, vaddr, write, instr, count_stats, t);
}

void
PhaseSim::missAfterStall(CoreState &c, Addr vaddr, bool write,
                         std::uint64_t instr, bool count_stats,
                         Cycles issued)
{
    Cycles t = q.now();
    NodeId s = c.socket;
    Addr block = blockAddr(vaddr);
    PageNum page = pageNumber(vaddr);

    NodeId home =
        options.singleSocketLocal ? s : pages.touch(page, s);

    // §V-F replication: reads of a replicated page hit the local
    // replica; a write invalidates every replica (broadcast) and
    // de-replicates the page.
    if (!machine.replicated.empty()) {
        if (machine.replicated.contains(page)) {
            if (write) {
                machine.replicated.erase(page);
                for (NodeId x = 0; x < setup.sys.sockets; ++x) {
                    if (x == s)
                        continue;
                    topo.send(s, x, t, topology::ctrlBytes);
                    llcs[x].invalidatePage(pageBase(page));
                }
            } else {
                home = s;
            }
        }
    }

    auto coh = directory.access(block, s, write, home);
    if (coh.invalidatedMask) {
        for (NodeId x = 0; x < setup.sys.sockets; ++x)
            if (coh.invalidatedMask & (1ULL << x))
                llcs[x].invalidate(block);
    }

    Cycles on_chip = nsToCycles(setup.sys.onChipNs);

    if (coh.blockTransfer && coh.owner != s) {
        if (coh.viaPool) {
            // 4-hop R -> H(pool) -> O -> H -> R (Fig 4).
            NodeId pool = topo.poolNode();
            NodeId owner = coh.owner;
            Cycles t1 = topo.send(s, pool, t, topology::ctrlBytes);
            q.schedule(t1, [this, &c, pool, owner, s, block, instr,
                            count_stats, issued, on_chip] {
                Cycles t1m =
                    mcs[pool].access(q.now() + on_chip, block);
                q.schedule(t1m, [this, &c, pool, owner, s, instr,
                                 count_stats, issued] {
                    Cycles t2 = topo.send(pool, owner, q.now(),
                                          topology::ctrlBytes);
                    q.schedule(t2, [this, &c, pool, owner, s, instr,
                                    count_stats, issued] {
                        Cycles t3 =
                            topo.send(owner, pool, q.now(),
                                      topology::dataBytes);
                        q.schedule(t3, [this, &c, pool, s, instr,
                                        count_stats, issued] {
                            Cycles done =
                                topo.send(pool, s, q.now(),
                                          topology::dataBytes);
                            q.schedule(done, [this, &c, instr,
                                              count_stats, issued] {
                                finishMiss(c, instr,
                                           AccessType::BtPool,
                                           count_stats, issued,
                                           q.now());
                            });
                        });
                    });
                });
            });
        } else {
            // 3-hop R -> H -> O -> R.
            NodeId owner = coh.owner;
            Cycles t1 = topo.send(s, home, t, topology::ctrlBytes);
            q.schedule(t1, [this, &c, home, owner, s, block, instr,
                            count_stats, issued, on_chip] {
                Cycles t1m =
                    mcs[home].access(q.now() + on_chip, block);
                q.schedule(t1m, [this, &c, home, owner, s, instr,
                                 count_stats, issued] {
                    Cycles t2 = topo.send(home, owner, q.now(),
                                          topology::ctrlBytes);
                    q.schedule(t2, [this, &c, owner, s, instr,
                                    count_stats, issued] {
                        Cycles done =
                            topo.send(owner, s, q.now(),
                                      topology::dataBytes);
                        q.schedule(done, [this, &c, instr,
                                          count_stats, issued] {
                            finishMiss(c, instr,
                                       AccessType::BtSocket,
                                       count_stats, issued,
                                       q.now());
                        });
                    });
                });
            });
        }
        return;
    }

    if (topo.classify(s, home) == topology::AccessClass::Local) {
        Cycles done = mcs[s].access(t + on_chip, block);
        q.schedule(done, [this, &c, instr, count_stats, issued] {
            finishMiss(c, instr, AccessType::Local, count_stats,
                       issued, q.now());
        });
        return;
    }

    AccessType type;
    switch (topo.classify(s, home)) {
      case topology::AccessClass::OneHop:
        type = AccessType::OneHop;
        break;
      case topology::AccessClass::TwoHop:
        type = AccessType::TwoHop;
        break;
      default:
        type = AccessType::Pool;
        break;
    }
    Cycles t1 = topo.send(s, home, t, topology::ctrlBytes);
    q.schedule(t1, [this, &c, home, s, block, instr, count_stats,
                    issued, on_chip, type] {
        Cycles t2 = mcs[home].access(q.now() + on_chip, block);
        q.schedule(t2, [this, &c, home, s, instr, count_stats,
                        issued, type] {
            Cycles done =
                topo.send(home, s, q.now(), topology::dataBytes);
            q.schedule(done,
                       [this, &c, instr, count_stats, issued, type] {
                           finishMiss(c, instr, type, count_stats,
                                      issued, q.now());
                       });
        });
    });
}

// --- core actors ---

bool
PhaseSim::frontBlocks(const CoreState &c,
                      std::uint64_t next_instr) const
{
    if (c.pending.empty())
        return false;
    const Outstanding &front = c.pending.front();
    if (front.complete)
        return false;
    if (c.pending.size() >= static_cast<std::size_t>(core.mshrs))
        return true;
    if (c.detailed &&
        front.instr + static_cast<std::uint64_t>(core.robEntries) <=
            next_instr)
        return true;
    return false;
}

void
PhaseSim::scheduleIssue(CoreState &c, Cycles when)
{
    if (c.issuePending || c.done)
        return;
    c.issuePending = true;
    q.schedule(std::max(when, q.now()), [this, &c] {
        c.issuePending = false;
        issueNext(c);
    });
}

void
PhaseSim::issueNext(CoreState &c)
{
    if (c.done)
        return;
    // Retire completed misses off the front.
    while (!c.pending.empty() && c.pending.front().complete)
        c.pending.pop_front();

    if (c.idx >= c.end) {
        if (c.pending.empty())
            finishCore(c);
        else
            c.blocked = true; // resume on completion
        return;
    }

    const trace::MemRecord &r = trace.perThread[c.thread][c.idx];
    if (frontBlocks(c, r.instr)) {
        c.blocked = true;
        return;
    }
    Cycles t = q.now();
    if (t < c.readyTime) {
        scheduleIssue(c, c.readyTime);
        return;
    }

    if (c.detailed && !c.warmupCrossed && r.instr >= warmupInstr) {
        c.warmupCrossed = true;
        c.warmupCycle = t;
    }
    bool count_stats = r.instr >= warmupInstr;

    // LLC lookup happens inline; only misses travel.
    NodeId s = c.socket;
    auto look = llcs[s].access(r.vaddr(), r.isWrite());
    ++c.idx;
    std::uint64_t this_instr = r.instr;

    // Compute-pace the next issue.
    std::uint64_t next_instr =
        c.idx < c.end ? trace.perThread[c.thread][c.idx].instr
                      : windowEnd;
    std::uint64_t gap =
        next_instr > this_instr ? next_instr - this_instr : 1;
    double cpi = c.detailed ? core.baseCpi : lightCpi;
    c.readyTime =
        t + std::max(Cycles(1),
                     Cycles(static_cast<double>(gap) * cpi));
    c.lastInstr = this_instr;

    if (look.hit) {
        if (count_stats)
            ++statLlcHits;
        c.readyTime += c.detailed ? core.llcHitLatency : Cycles();
        scheduleIssue(c, c.readyTime);
        return;
    }

    ++missCount;
    // Victim handling: directory + writeback traffic.
    if (look.evicted) {
        directory.evict(look.victim, s);
        if (look.victimDirty) {
            NodeId vh = options.singleSocketLocal
                            ? s
                            : pages.home(pageNumber(look.victim));
            if (vh == s) {
                mcs[s].access(t, look.victim);
            } else if (vh != mem::invalidNode) {
                Cycles arr =
                    topo.send(s, vh, t, topology::dataBytes);
                Addr victim = look.victim;
                q.schedule(arr, [this, vh, victim] {
                    mcs[vh].access(q.now(), victim);
                });
            }
        }
    }
    // Tracker metadata update traffic (StarNUMA only).
    if (setup.sys.hasPool && (missCount % metadataWritePeriod) == 0)
        mcs[s].access(t, blockAddr(r.vaddr()) ^ 0x3c3cc3c3);

    c.pending.push_back({this_instr, Cycles(), false});
    startMiss(c, r.vaddr(), r.isWrite(), this_instr, count_stats);
    scheduleIssue(c, c.readyTime);
}

void
PhaseSim::onComplete(CoreState &c, std::uint64_t instr, Cycles done,
                     AccessType, bool, Cycles)
{
    for (auto &o : c.pending) {
        if (!o.complete && o.instr == instr) {
            o.complete = true;
            o.done = done;
            break;
        }
    }
    while (!c.pending.empty() && c.pending.front().complete)
        c.pending.pop_front();
    if (c.blocked) {
        c.blocked = false;
        scheduleIssue(c, std::max(q.now(), c.readyTime));
    }
}

void
PhaseSim::finishCore(CoreState &c)
{
    Cycles t = std::max(q.now(), c.readyTime);
    c.pending.clear();
    if (c.lastInstr < windowEnd) {
        t += Cycles(static_cast<double>(windowEnd - c.lastInstr) *
                    (c.detailed ? core.baseCpi : lightCpi));
        c.lastInstr = windowEnd;
    }
    c.done = true;
    c.doneCycle = t;
    if (allDetailedDone())
        stop = true;
}

void
PhaseSim::pace()
{
    // Regulate light-core injection with the detailed socket's
    // measured IPC over the last interval (§IV-B).
    std::uint64_t instr = 0;
    int n = 0;
    for (const CoreState &c : cores) {
        if (!c.detailed)
            continue;
        instr += std::min(c.lastInstr, windowEnd) - windowStart;
        ++n;
    }
    Cycles now = q.now();
    if (instr > lastPaceInstr && now > lastPaceCycle) {
        double cpi =
            static_cast<double>((now - lastPaceCycle).value()) * n /
            static_cast<double>(instr - lastPaceInstr);
        lightCpi = std::clamp(cpi, core.baseCpi, 500.0);
        lastPaceInstr = instr;
        lastPaceCycle = now;
    }
    // One sampling point feeds both telemetry channels (DESIGN.md
    // §14): the deterministic series, and the trace counters that
    // re-emit from it.
    const bool tracing = obs::TraceSession::global().enabled();
    if (tracing || obs::TimeSeriesSink::global().enabled())
        sampleEpoch(tracing);
    if (!stop)
        q.scheduleAfter(pacerPeriod, [this] { pace(); });
}

// lint: cold-path pacer-epoch telemetry; only invoked when a trace
// session or time-series sink is enabled (see pace() gates)
void
PhaseSim::sampleEpoch(bool emit_trace)
{
    // Per-pacer-epoch samples on the simulated timeline. Busy
    // cycles are cumulative, so each epoch's utilization is the
    // delta over the epoch. Samples land in the deterministic
    // series first; the pid-2 counter events (one tid per phase,
    // ts = simulated time in us) then re-emit the series' last
    // values, so the trace file and the deterministic export share
    // one source by construction.
    Cycles now = q.now();
    if (now <= lastTraceCycle)
        return;
    double dt =
        static_cast<double>((now - lastTraceCycle).value());
    using topology::Dir;
    std::array<std::uint64_t, 3> busy{};
    std::array<int, 3> cnt{};
    for (const auto &link : topo.links()) {
        int k = static_cast<int>(link.type());
        for (Dir d : {Dir::Forward, Dir::Backward}) {
            busy[k] += link.busyCycles(d).value();
            ++cnt[k];
        }
    }
    std::uint64_t t = now.value();
    for (int k = 0; k < 3; ++k) {
        if (linkStream[k] == noStream)
            continue;
        series.sample(linkStream[k], t,
                      static_cast<double>(busy[k] - lastLinkBusy[k]) /
                          (dt * cnt[k]));
        lastLinkBusy[k] = busy[k];
    }
    std::uint64_t req = 0;
    for (const auto &mc : mcs)
        req += mc.requests();
    series.sample(dramStream, t,
                  static_cast<double>(req - lastDramRequests));
    lastDramRequests = req;
    lastTraceCycle = now;

    if (!emit_trace)
        return;
    obs::TraceSession &tr = obs::TraceSession::global();
    std::string tag = "phase" + std::to_string(phase_);
    double ts_us = cyclesToNs(now) / 1000.0;
    obs::TraceArgs util;
    for (int k = 0; k < 3; ++k) {
        if (linkStream[k] == noStream)
            continue;
        util.add(linkTypeNames[k], series.lastValue(linkStream[k]));
    }
    tr.counterEvent(tag + ".linkUtil", ts_us, obs::tracePidSim,
                    phase_, util.str());
    obs::TraceArgs dram;
    dram.add("requests", series.lastValue(dramStream));
    tr.counterEvent(tag + ".dram", ts_us, obs::tracePidSim, phase_,
                    dram.str());
}

bool
PhaseSim::allDetailedDone() const
{
    for (const CoreState &c : cores)
        if (c.detailed && !c.done)
            return false;
    return true;
}

void
PhaseSim::run()
{
    for (CoreState &c : cores) {
        if (c.idx >= c.end) {
            if (c.detailed)
                finishCore(c); // pure-compute window
            else
                c.done = true;
            continue;
        }
        const trace::MemRecord &r = trace.perThread[c.thread][c.idx];
        double cpi = c.detailed ? core.baseCpi : lightCpi;
        c.readyTime = Cycles(
            static_cast<double>(r.instr - windowStart) * cpi);
        scheduleIssue(c, c.readyTime);
    }
    q.scheduleAfter(Cycles(2000), [this] { pace(); });

    stop = allDetailedDone();
    // Hard ceiling to bound runaway phases.
    Cycles limit(static_cast<double>(scale.detailInstructions()) *
                 2000.0);
    while (!stop && !q.empty() && q.now() < limit)
        q.step();

    for (CoreState &c : cores) {
        if (!c.detailed)
            continue;
        if (!c.done)
            finishCore(c);
        Cycles start = c.warmupCrossed ? c.warmupCycle : Cycles();
        std::uint64_t instr0 =
            c.warmupCrossed ? warmupInstr : windowStart;
        statInstructions += windowEnd - instr0;
        statCycles +=
            c.doneCycle > start ? c.doneCycle - start : Cycles(1);
    }
    statCoherence0 = directory.transactions() - statCoherence0;
    endCycle = q.now();
}

void
PhaseSim::accumulate(RunMetrics &m) const
{
    m.instructions += statInstructions;
    m.cycles += statCycles;
    m.llcHits += statLlcHits;
    std::uint64_t misses = 0;
    for (int i = 0; i < accessTypes; ++i)
        misses += statMix[i];
    double prev_sum =
        m.amatCycles * static_cast<double>(m.memAccesses);
    m.memAccesses += misses;
    m.amatCycles =
        m.memAccesses ? (prev_sum + statLatency.sum()) /
                            static_cast<double>(m.memAccesses)
                      : 0.0;
    for (int i = 0; i < accessTypes; ++i)
        m.mix[i] += static_cast<double>(statMix[i]); // raw counts
    m.coherenceTransactions += statCoherence0;
    m.blockTransfers +=
        statMix[static_cast<int>(AccessType::BtSocket)] +
        statMix[static_cast<int>(AccessType::BtPool)];
    m.shootdownPages += statShootdownPages;
    m.detailedMisses += statDetailedMisses;
    for (int i = 0; i < accessTypes; ++i)
        m.typeLatency[i] += statTypeLatency[i].sum(); // raw sums
    m.migrationStallCycles += statMigStall.sum();
}

// lint: cold-path stats export, once per run when observing
void
PhaseSim::registerStats(obs::Registry &r) const
{
    r.addCounter("instructions", &statInstructions);
    r.addCounterFn("cycles",
                   [this] { return statCycles.value(); });
    r.addCounter("llcHits", &statLlcHits);
    r.addCounter("detailedMisses", &statDetailedMisses);
    r.addCounter("shootdownPages", &statShootdownPages);
    r.addCounter("coherenceTransactions", &statCoherence0);
    r.addCounterFn("horizonCycles",
                   [this] { return endCycle.value(); });
    r.addMean("latencyCycles", &statLatency);
    r.addMean("migrationStallCycles", &statMigStall);
    for (int i = 0; i < accessTypes; ++i) {
        std::string t =
            accessTypeName(static_cast<AccessType>(i));
        r.addCounter("mix." + t, &statMix[i]);
        r.addMean("typeLatencyCycles." + t, &statTypeLatency[i]);
    }
}

} // anonymous namespace

TimingSim::TimingSim(const SystemSetup &system_setup,
                     const SimScale &sim_scale,
                     TimingOptions timing_options)
    : setup(system_setup), scale(sim_scale),
      options(timing_options)
{
}

RunMetrics
TimingSim::run(const trace::WorkloadTrace &trace,
               const TraceSimResult &placement)
{
    RunMetrics m;
    stats_ = obs::Snapshot();
    timeseries_ = obs::TimeSeries();
    Cycles total_horizon;
    std::unique_ptr<MachineState> shared_machine;
    std::unique_ptr<MachineState> last_machine;

    if (options.independentPhases) {
        // §IV-A3 literally: N independent timing simulations, one
        // per phase, fanned out over the fixed-size worker pool.
        // Each phase owns its machine state and event queue, and the
        // accumulation below walks the phases in canonical order, so
        // the merged metrics are bitwise-identical for any pool size.
        std::vector<std::unique_ptr<MachineState>> machines;
        std::vector<std::unique_ptr<PhaseSim>> sims;
        for (int phase = 0; phase < scale.phases; ++phase) {
            machines.push_back(std::make_unique<MachineState>(
                setup, scale, core));
            machines.back()->replicated =
                placement.replication.replicated;
            sims.push_back(std::make_unique<PhaseSim>(
                setup, scale, options, core, trace,
                placement.checkpoints[phase], phase,
                *machines.back()));
        }
        ThreadPool::global().parallelFor(
            sims.size(), [&sims](std::size_t i) {
                obs::TraceSpan span(
                    "phase " + std::to_string(i), "timing",
                    obs::TraceArgs()
                        .add("phase", static_cast<int>(i))
                        .str());
                sims[i]->run();
            });
        // Phase order is canonical here, so the merged snapshot and
        // series are identical for any pool size.
        const bool collect = obs::StatsSink::global().enabled();
        const bool collect_ts =
            obs::TimeSeriesSink::global().enabled();
        for (std::size_t i = 0; i < sims.size(); ++i) {
            sims[i]->accumulate(m);
            total_horizon += sims[i]->horizon();
            if (collect) {
                obs::Registry reg;
                sims[i]->registerStats(reg);
                stats_.merge(phasePrefix(static_cast<int>(i)),
                             reg.snapshot());
            }
            if (collect_ts)
                timeseries_.merge(phasePrefix(static_cast<int>(i)),
                                  sims[i]->timeseries());
        }
        last_machine = std::move(machines.back());
    } else {
        shared_machine = std::make_unique<MachineState>(
            setup, scale, core);
        shared_machine->replicated =
            placement.replication.replicated;
        const bool collect = obs::StatsSink::global().enabled();
        const bool collect_ts =
            obs::TimeSeriesSink::global().enabled();
        for (int phase = 0; phase < scale.phases; ++phase) {
            PhaseSim sim(setup, scale, options, core, trace,
                         placement.checkpoints[phase], phase,
                         *shared_machine);
            {
                obs::TraceSpan span(
                    "phase " + std::to_string(phase), "timing",
                    obs::TraceArgs().add("phase", phase).str());
                sim.run();
            }
            sim.accumulate(m);
            total_horizon += sim.horizon();
            if (collect) {
                obs::Registry reg;
                sim.registerStats(reg);
                stats_.merge(phasePrefix(phase), reg.snapshot());
            }
            if (collect_ts)
                timeseries_.merge(phasePrefix(phase),
                                  sim.timeseries());
        }
    }
    MachineState &machine =
        options.independentPhases ? *last_machine
                                  : *shared_machine;

    // Component-level stats of the surviving machine (independent
    // phases: the last phase's machine; sequential: cumulative).
    if (obs::StatsSink::global().enabled()) {
        obs::Registry reg;
        machine.registerStats(reg);
        stats_.merge("machine.", reg.snapshot());
    }

    // Interconnect diagnostics (final phase's occupancy over the
    // mean phase horizon).
    {
        using topology::Dir;
        using topology::LinkType;
        double uti[3] = {0, 0, 0};
        int cnt[3] = {0, 0, 0};
        double max_util = 0;
        stats::Mean queue;
        Cycles horizon = total_horizon != Cycles()
                             ? total_horizon / scale.phases
                             : Cycles(1);
        for (const auto &link : machine.topo.links()) {
            for (Dir d : {Dir::Forward, Dir::Backward}) {
                double u = link.utilization(d, horizon);
                int k = static_cast<int>(link.type());
                uti[k] += u;
                ++cnt[k];
                max_util = std::max(max_util, u);
                queue.sample(link.meanQueueDelay(d));
            }
        }
        if (cnt[0])
            m.upiUtilization = uti[0] / cnt[0];
        if (cnt[1])
            m.numalinkUtilization = uti[1] / cnt[1];
        if (cnt[2])
            m.cxlUtilization = uti[2] / cnt[2];
        m.maxLinkUtilization = max_util;
        m.meanLinkQueueNs = cyclesToNs(queue.mean());
        double dq = 0;
        std::uint64_t dn = 0;
        for (const auto &mc : machine.mcs) {
            dq += mc.meanQueueDelay() *
                  static_cast<double>(mc.requests());
            dn += mc.requests();
        }
        m.meanDramQueueNs =
            dn ? cyclesToNs(dq / static_cast<double>(dn)) : 0;
    }

    m.ipc = m.cycles != Cycles()
                ? static_cast<double>(m.instructions) /
                      static_cast<double>(m.cycles.value())
                : 0.0;
    std::uint64_t misses = m.memAccesses;
    if (misses) {
        double unloaded = 0;
        for (int i = 0; i < accessTypes; ++i) {
            double count = m.mix[i];
            double frac = count / static_cast<double>(misses);
            m.mix[i] = frac;
            m.typeLatency[i] = count ? m.typeLatency[i] / count : 0;
            unloaded +=
                frac * static_cast<double>(
                           nsToCycles(unloadedLatencyNs(
                                          static_cast<AccessType>(i)))
                               .value());
        }
        m.unloadedAmatCycles = unloaded;
        m.migrationStallCycles /= static_cast<double>(misses);
    }
    // Per-core LLC MPKI measured on the detailed socket (Table III).
    m.llcMpki =
        m.instructions
            ? 1000.0 * static_cast<double>(m.detailedMisses) /
                  static_cast<double>(m.instructions)
            : 0.0;
    m.migratedPages = placement.migratedPagesTotal;
    m.poolMigrationFraction = placement.poolMigrationFraction;
    return m;
}

} // namespace driver
} // namespace starnuma
