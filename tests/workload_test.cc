/**
 * @file
 * Workload tests: graph generation, kernel correctness (the
 * algorithms compute real answers), capture integration (every
 * workload reaches its instruction target and produces the access
 * structure the paper relies on — e.g., POA stays thread-private
 * while BFS shares widely).
 */

#include <gtest/gtest.h>

#include <set>

#include "trace/profile.hh"
#include "workloads/gap.hh"
#include "workloads/genomics.hh"
#include "workloads/graph.hh"
#include "workloads/kvstore.hh"
#include "workloads/tpcc.hh"
#include "workloads/workload.hh"

namespace starnuma
{
namespace workloads
{
namespace
{

/** 8-thread scale that keeps workload tests quick. */
SimScale
testScale()
{
    SimScale s;
    s.sockets = 4;
    s.socketsPerChassis = 2;
    s.coresPerSocket = 2;
    s.phases = 1;
    s.phaseInstructions = 30000;
    return s;
}

// --- Graph generation ---

TEST(CsrGraph, KroneckerShape)
{
    Rng rng(1);
    CsrGraph g = CsrGraph::kronecker(10, 8, rng);
    EXPECT_EQ(g.vertices, 1024u);
    // Undirected: directed edge count = 2 * edges = n * degree.
    EXPECT_EQ(g.directedEdges(), 1024u * 8);
    EXPECT_EQ(g.offsets.size(), 1025u);
    EXPECT_EQ(g.offsets.back(), g.directedEdges());
}

TEST(CsrGraph, AdjacencySortedAndSymmetric)
{
    Rng rng(2);
    CsrGraph g = CsrGraph::kronecker(9, 6, rng);
    for (std::uint32_t v = 0; v < g.vertices; ++v)
        for (std::uint64_t e = g.offsets[v] + 1; e < g.offsets[v + 1];
             ++e)
            EXPECT_LE(g.neighbors[e - 1], g.neighbors[e]);
    // Spot-check symmetry: u in adj(v) iff v in adj(u).
    for (std::uint32_t v = 0; v < 64; ++v) {
        for (std::uint64_t e = g.offsets[v]; e < g.offsets[v + 1];
             ++e) {
            std::uint32_t u = g.neighbors[e];
            bool found = std::binary_search(
                g.neighbors.begin() + g.offsets[u],
                g.neighbors.begin() + g.offsets[u + 1], v);
            EXPECT_TRUE(found) << v << "<->" << u;
        }
    }
}

TEST(CsrGraph, SkewedDegreeDistribution)
{
    Rng rng(3);
    CsrGraph g = CsrGraph::kronecker(12, 16, rng);
    std::uint64_t max_degree = 0;
    for (std::uint32_t v = 0; v < g.vertices; ++v)
        max_degree = std::max(max_degree, g.degree(v));
    // R-MAT hubs: the max degree far exceeds the average.
    EXPECT_GT(max_degree, 10u * 16);
}

TEST(CsrGraph, DeterministicForSeed)
{
    Rng a(7), b(7);
    CsrGraph g1 = CsrGraph::kronecker(8, 4, a);
    CsrGraph g2 = CsrGraph::kronecker(8, 4, b);
    EXPECT_EQ(g1.neighbors, g2.neighbors);
}

// --- Capture integration for every workload ---

/** Small instances so tests stay fast. */
std::unique_ptr<Workload>
makeSmall(const std::string &name)
{
    if (name == "bfs")
        return std::make_unique<Bfs>(1, 12, 8);
    if (name == "cc")
        return std::make_unique<ConnectedComponents>(1, 12, 8);
    if (name == "sssp")
        return std::make_unique<Sssp>(1, 12, 8);
    if (name == "tc")
        return std::make_unique<TriangleCount>(1, 12, 8);
    if (name == "masstree")
        return std::make_unique<KvStore>(1, 1u << 14);
    if (name == "tpcc")
        return std::make_unique<Tpcc>(1, 8, 4, 60, 500);
    if (name == "fmi")
        return std::make_unique<Fmi>(1, 1u << 15);
    if (name == "poa")
        return std::make_unique<Poa>(1, 200, 400);
    return makeWorkload(name);
}

class WorkloadCapture
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadCapture, ReachesInstructionTargetOnEveryThread)
{
    SimScale s = testScale();
    auto w = makeSmall(GetParam());
    auto t = w->capture(s);
    EXPECT_EQ(t.threads, s.threads());
    EXPECT_EQ(t.workload, GetParam());
    EXPECT_GT(t.footprintBytes, 0u);
    EXPECT_GT(t.totalRecords(), 100u);
    for (int th = 0; th < t.threads; ++th) {
        // Monotone instruction stamps within each thread.
        std::uint64_t last = 0;
        for (const auto &r : t.perThread[th]) {
            EXPECT_GE(r.instr, last);
            last = r.instr;
        }
        EXPECT_LE(last, s.phaseInstructions + 300000);
    }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadCapture,
                         ::testing::ValuesIn(workloadNames()));

TEST(WorkloadRegistry, NamesRoundTrip)
{
    auto names = workloadNames();
    EXPECT_EQ(names.size(), 8u);
    for (const auto &n : names)
        EXPECT_EQ(makeWorkload(n)->name(), n);
}

TEST(WorkloadRegistry, FirstTouchesCoverFootprint)
{
    SimScale s = testScale();
    auto t = makeSmall("bfs")->capture(s);
    // Partitioned setup should first-touch from many threads.
    std::set<ThreadId> touchers;
    for (const auto &ft : t.firstTouches)
        touchers.insert(ft.thread);
    EXPECT_GT(touchers.size(), 4u);
}

// --- Kernel correctness ---

TEST(KvStore, LookupsReturnLoadedValues)
{
    KvStore kv(1, 4096);
    SimScale s = testScale();
    trace::CaptureContext ctx(s.threads());
    ctx.beginSetup();
    kv.setup(ctx, s);
    ctx.endSetup();
    std::uint64_t v = 0;
    ASSERT_TRUE(kv.lookupValue(0, &v));
    EXPECT_EQ(v, 1u);
    ASSERT_TRUE(kv.lookupValue(4095, &v));
    EXPECT_EQ(v, 4095u * 3 + 1);
    EXPECT_FALSE(kv.lookupValue(4096, &v));
    EXPECT_GE(kv.treeDepth(), 3);
}

TEST(KvStore, StepsUpdateValues)
{
    KvStore kv(1, 1024);
    SimScale s = testScale();
    trace::CaptureContext ctx(s.threads());
    ctx.beginSetup();
    kv.setup(ctx, s);
    ctx.endSetup();
    for (int i = 0; i < 2000; ++i)
        kv.step(i % s.threads(), ctx);
    // Some writes must have changed values from the loaded form.
    int changed = 0;
    for (std::uint64_t k = 0; k < 1024; ++k) {
        std::uint64_t v = 0;
        ASSERT_TRUE(kv.lookupValue(k, &v));
        changed += (v != k * 3 + 1);
    }
    EXPECT_GT(changed, 100);
}

TEST(Tpcc, TransactionsCommitAndBalance)
{
    Tpcc tpcc(1, 8, 4, 60, 500);
    SimScale s = testScale();
    trace::CaptureContext ctx(s.threads());
    ctx.beginSetup();
    tpcc.setup(ctx, s);
    ctx.endSetup();
    for (int i = 0; i < 4000; ++i)
        tpcc.step(i % s.threads(), ctx);
    EXPECT_GT(tpcc.committedNewOrders(), 500u);
    EXPECT_GT(tpcc.committedPayments(), 500u);
    double ytd = 0;
    for (int wh = 0; wh < 8; ++wh)
        ytd += tpcc.warehouseYtd(wh);
    EXPECT_GT(ytd, 0.0); // payments accumulated
}

TEST(Fmi, CountFindsPlantedPatterns)
{
    Fmi fmi(1, 1u << 14);
    SimScale s = testScale();
    trace::CaptureContext ctx(s.threads());
    ctx.beginSetup();
    fmi.setup(ctx, s);
    ctx.endSetup();
    // Any substring of the text must be found at least once; a
    // pattern absent from ACGT space must not match.
    EXPECT_GE(fmi.count(std::string{0, 1, 2}), 0u);
    EXPECT_GT(fmi.count(std::string{1}), 1000u); // single char
}

TEST(Poa, AlignmentsProgress)
{
    Poa poa(1, 100, 200);
    SimScale s = testScale();
    trace::CaptureContext ctx(s.threads());
    ctx.beginSetup();
    poa.setup(ctx, s);
    ctx.endSetup();
    for (int i = 0; i < 3000; ++i)
        for (ThreadId t = 0; t < s.threads(); ++t)
            poa.step(t, ctx);
    for (ThreadId t = 0; t < s.threads(); ++t)
        EXPECT_GT(poa.alignmentsDone(t), 0u);
}

// --- Access-structure properties the paper relies on ---

TEST(AccessStructure, PoaIsThreadPrivate)
{
    SimScale s = testScale();
    auto t = makeSmall("poa")->capture(s);
    trace::SharingProfile p(t, s.coresPerSocket, s.sockets);
    // Every page touched by exactly one socket: POA is the
    // NUMA-insensitive control (§V-A).
    EXPECT_GT(p.pageFraction(1), 0.99);
}

TEST(AccessStructure, BfsSharesWidely)
{
    SimScale s = testScale();
    s.phaseInstructions = 150000; // enough sweeps to mix sharers
    auto t = makeSmall("bfs")->capture(s);
    trace::SharingProfile p(t, s.coresPerSocket, s.sockets);
    // Accesses concentrate on shared pages (Fig 2's vagabond
    // concentration): most accesses leave the private bucket.
    EXPECT_GT(p.accessesAbove(1), 0.5);
    EXPECT_GT(p.accessFraction(s.sockets), 0.05);
}

TEST(AccessStructure, TcIsMostlyReadOnlyShared)
{
    SimScale s = testScale();
    auto t = makeSmall("tc")->capture(s);
    trace::SharingProfile p(t, s.coresPerSocket, s.sockets);
    // Fig 13: TC's widely shared pages are read-only (the CSR).
    EXPECT_LT(p.readWriteAccessFraction(s.sockets), 0.2);
    EXPECT_GT(p.accessesAbove(1), 0.5);
}

TEST(AccessStructure, TpccIsMostlyPartitioned)
{
    SimScale s = testScale();
    auto t = makeSmall("tpcc")->capture(s);
    trace::SharingProfile p(t, s.coresPerSocket, s.sockets);
    // Home-warehouse affinity keeps most pages narrow; the item
    // table and remote touches create a shared tail.
    EXPECT_GT(p.pageFraction(1), 0.3);
    EXPECT_GT(p.accessesAbove(1), 0.05);
}

} // anonymous namespace
} // namespace workloads
} // namespace starnuma
