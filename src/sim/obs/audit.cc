#include "sim/obs/audit.hh"

#include <cstdio>
#include <cstdlib>

#include "sim/logging.hh"
#include "sim/obs/registry.hh"

namespace starnuma
{
namespace obs
{

namespace
{

bool
writeWholeFile(const std::string &path, const std::string &content)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    bool ok = std::fwrite(content.data(), 1, content.size(), f) ==
              content.size();
    return std::fclose(f) == 0 && ok;
}

bool
endsWith(const std::string &s, const char *suffix)
{
    std::string suf(suffix);
    return s.size() >= suf.size() &&
           s.compare(s.size() - suf.size(), suf.size(), suf) == 0;
}

} // anonymous namespace

const char *
auditBranchName(AuditBranch b)
{
    switch (b) {
      case AuditBranch::ToPool:             return "toPool";
      case AuditBranch::ToSharer:           return "toSharer";
      case AuditBranch::AlreadyPlaced:      return "alreadyPlaced";
      case AuditBranch::SamePlacement:      return "samePlacement";
      case AuditBranch::PingPongSuppressed:
        return "pingPongSuppressed";
      case AuditBranch::NoRoomBackoff:      return "noRoomBackoff";
      case AuditBranch::VictimEviction:     return "victimEviction";
    }
    panic("unknown audit branch %d", static_cast<int>(b));
}

const char *
auditBranchReason(AuditBranch b)
{
    switch (b) {
      case AuditBranch::ToPool:
        return "sharers reached the pool threshold";
      case AuditBranch::ToSharer:
        return "hot region placed at a random sharer";
      case AuditBranch::AlreadyPlaced:
        return "current home already a sharer";
      case AuditBranch::SamePlacement:
        return "chosen destination equals current home";
      case AuditBranch::PingPongSuppressed:
        return "migrations exceeded a quarter of the phase count";
      case AuditBranch::NoRoomBackoff:
        return "no pool resident was cold enough to evict";
      case AuditBranch::VictimEviction:
        return "lowest-numbered cold pool resident";
    }
    panic("unknown audit branch %d", static_cast<int>(b));
}

const char *
auditCsvHeader()
{
    return "run,seq,phase,branch,region,page,sharers,accesses,"
           "hiThreshold,loThreshold,candidates,from,to,reason";
}

// lint: cold-path per-decision bookkeeping, once per Algorithm 1
// evaluation inside the already-cold decidePhase
void
AuditLog::append(const AuditRecord &r)
{
    recs.push_back(r);
}

namespace
{

/** The shared per-record field serialization (CSV cell order). */
void
appendFields(std::string &out, const AuditRecord &r,
             const char *sep, bool quoted_reason)
{
    out += formatCount(r.phase);
    out += sep;
    out += auditBranchName(r.branch);
    out += sep;
    out += formatCount(r.region);
    out += sep;
    out += formatCount(r.page);
    out += sep;
    out += formatCount(r.sharers);
    out += sep;
    out += formatCount(r.accesses);
    out += sep;
    out += formatCount(r.hiThreshold);
    out += sep;
    out += formatCount(r.loThreshold);
    out += sep;
    out += formatCount(r.candidates);
    out += sep;
    out += std::to_string(r.from);
    out += sep;
    out += std::to_string(r.to);
    out += sep;
    if (quoted_reason)
        out += "\"";
    out += auditBranchReason(r.branch);
    if (quoted_reason)
        out += "\"";
}

} // anonymous namespace

std::string
AuditLog::csvRows(const std::string &run) const
{
    std::string out;
    for (std::size_t i = 0; i < recs.size(); ++i) {
        out += run + "," + formatCount(i) + ",";
        appendFields(out, recs[i], ",", true);
        out += "\n";
    }
    return out;
}

std::string
AuditLog::jsonArray() const
{
    static const char *keys[] = {
        "phase",       "branch",     "region", "page",
        "sharers",     "accesses",   "hiThreshold",
        "loThreshold", "candidates", "from",   "to",
        "reason",
    };
    std::string out = "[";
    for (std::size_t i = 0; i < recs.size(); ++i) {
        const AuditRecord &r = recs[i];
        // Field values in the same order as appendFields; strings
        // are quoted by hand so the two serializations cannot
        // diverge on content, only on framing.
        std::string vals[12] = {
            formatCount(r.phase),
            "\"" + std::string(auditBranchName(r.branch)) + "\"",
            formatCount(r.region),
            formatCount(r.page),
            formatCount(r.sharers),
            formatCount(r.accesses),
            formatCount(r.hiThreshold),
            formatCount(r.loThreshold),
            formatCount(r.candidates),
            std::to_string(r.from),
            std::to_string(r.to),
            "\"" +
                jsonEscape(auditBranchReason(r.branch)) +
                "\"",
        };
        out += i ? ",\n   " : "\n   ";
        out += "{";
        for (int k = 0; k < 12; ++k) {
            if (k)
                out += ", ";
            out += "\"" + std::string(keys[k]) + "\": " + vals[k];
        }
        out += "}";
    }
    out += recs.empty() ? "]" : "\n  ]";
    return out;
}

AuditSink &
AuditSink::global()
{
    // Leaky singleton, same shutdown contract as StatsSink.
    static AuditSink *sink = [] {
        auto *s = new AuditSink();
        if (const char *path = std::getenv("STARNUMA_AUDIT_OUT")) {
            if (path[0] != '\0') {
                s->start(path);
                std::atexit([] { AuditSink::global().write(); });
            }
        }
        return s;
    }();
    return *sink;
}

void
AuditSink::start(const std::string &path)
{
    MutexLock lock(mu);
    path_ = path;
    byRun.clear();
    enabled_.store(true, std::memory_order_relaxed);
}

void
AuditSink::stop()
{
    MutexLock lock(mu);
    enabled_.store(false, std::memory_order_relaxed);
    path_.clear();
    byRun.clear();
}

void
AuditSink::add(const std::string &run, const AuditLog &log)
{
    if (!enabled())
        return;
    MutexLock lock(mu);
    // Double-check under the lock (see StatsSink::add).
    if (!enabled_.load(std::memory_order_relaxed))
        return;
    AuditLog &slot = byRun[run];
    for (const AuditRecord &r : log.records())
        slot.append(r);
}

// lint: cold-path sink introspection, tests and report tooling only
std::size_t
AuditSink::size() const
{
    MutexLock lock(mu);
    std::size_t n = 0;
    for (const auto &[run, log] : byRun)
        n += log.size();
    return n;
}

std::string
AuditSink::collectCsv() const
{
    MutexLock lock(mu);
    std::string out = std::string(auditCsvHeader()) + "\n";
    for (const auto &[run, log] : byRun)
        out += log.csvRows(run);
    return out;
}

std::string
AuditSink::collectJson() const
{
    MutexLock lock(mu);
    std::string out = "{";
    bool first = true;
    for (const auto &[run, log] : byRun) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "  \"" + jsonEscape(run) +
               "\": " + log.jsonArray();
    }
    out += first ? "}\n" : "\n}\n";
    return out;
}

bool
AuditSink::writeTo(const std::string &path) const
{
    return writeWholeFile(path, endsWith(path, ".json")
                                    ? collectJson()
                                    : collectCsv());
}

bool
AuditSink::write() const
{
    std::string path;
    {
        MutexLock lock(mu);
        if (!enabled_.load(std::memory_order_relaxed) ||
            path_.empty())
            return true;
        path = path_;
    }
    return writeTo(path);
}

} // namespace obs
} // namespace starnuma
