# Empty dependencies file for starnuma_mem.
# This may be replaced when dependencies are built.
