#include "sim/stats.hh"

#include <cmath>

#include "sim/logging.hh"

namespace starnuma
{
namespace stats
{

Histogram::Histogram(std::size_t buckets, double bucket_width)
    : counts(buckets, 0), width(bucket_width), total_(0),
      overflow_(0)
{
    sn_assert(buckets > 0 && bucket_width > 0,
              "bad histogram shape");
}

void
Histogram::sample(double v, std::uint64_t weight)
{
    if (v < 0)
        v = 0;
    auto idx = static_cast<std::size_t>(v / width);
    if (idx >= counts.size())
        overflow_ += weight;
    else
        counts[idx] += weight;
    total_ += weight;
}

void
Histogram::reset()
{
    for (auto &c : counts)
        c = 0;
    total_ = 0;
    overflow_ = 0;
}

double
Histogram::fraction(std::size_t i) const
{
    return total_ ? static_cast<double>(counts.at(i)) /
                        static_cast<double>(total_)
                  : 0.0;
}

double
Histogram::quantile(double q) const
{
    if (total_ == 0)
        return 0.0;
    auto target = static_cast<std::uint64_t>(
        q * static_cast<double>(total_));
    std::uint64_t running = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        running += counts[i];
        if (running >= target)
            return static_cast<double>(i + 1) * width;
    }
    return static_cast<double>(counts.size()) * width;
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values) {
        sn_assert(v > 0, "geomean of non-positive value");
        log_sum += std::log(v);
    }
    return std::exp(log_sum /
                    static_cast<double>(values.size()));
}

} // namespace stats
} // namespace starnuma
