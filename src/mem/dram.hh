/**
 * @file
 * DDR5 channel model with bank-level parallelism and a shared data
 * bus, at the detail Table II calls for: each memory node (socket or
 * pool) owns one MemoryController with one or more channels; every
 * channel has N banks each occupied for a row-cycle per access, plus
 * a fluid-queue data bus serializing one block per access.
 */

#ifndef STARNUMA_MEM_DRAM_HH
#define STARNUMA_MEM_DRAM_HH

#include <cstdint>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace starnuma
{

namespace obs
{
class Registry;
} // namespace obs

namespace mem
{

/** Timing/geometry parameters of one DRAM channel. */
struct DramConfig
{
    /** Unloaded device access latency, end to end (ns). */
    double accessNs = 50.0;

    /** Bank busy (row cycle) time per row-miss access (ns). */
    double bankBusyNs = 40.0;

    /** Bank busy time when the access hits the open row (ns). */
    double rowHitNs = 8.0;

    /** DRAM row size in bytes (row-buffer granularity). */
    Addr rowBytes = 2048;

    /** Per-channel data bus bandwidth (GB/s). */
    double busGbps = 38.4;

    /** Banks per channel (DDR5: 32). */
    int banks = 32;
};

/** One DDR channel: banks + data bus. */
class DramChannel
{
  public:
    explicit DramChannel(const DramConfig &config);

    /**
     * Service a block access to @p addr issued at @p now.
     * @return the cycle the block's data is fully delivered.
     */
    Cycles access(Cycles now, Addr addr);

    /** Unloaded latency of one access, cycles. */
    Cycles unloadedLatency() const;

    void resetContention();

    std::uint64_t requests() const { return requests_; }
    std::uint64_t rowHits() const { return rowHits_; }
    double meanQueueDelay() const { return queueDelay.mean(); }

    /** Register request/rowHit counters and the queue-delay mean. */
    void registerStats(obs::Registry &r,
                       const std::string &prefix) const;

  private:
    DramConfig cfg;
    Cycles bankBusy;
    Cycles rowHitBusy;
    Cycles deviceLatency; ///< access latency minus bus serialization
    Cycles busSer;
    std::vector<Cycles> bankFree;
    std::vector<Addr> openRow;
    Cycles busFree;
    std::uint64_t requests_;
    std::uint64_t rowHits_;
    stats::Mean queueDelay;
};

/**
 * A node's memory controller: one or more channels, block-
 * interleaved.
 */
class MemoryController
{
  public:
    MemoryController(int channels, const DramConfig &config);

    /** Service an access; picks the channel by block interleaving. */
    Cycles access(Cycles now, Addr addr);

    Cycles unloadedLatency() const;
    void resetContention();

    int channels() const { return static_cast<int>(chans.size()); }
    std::uint64_t requests() const;
    double meanQueueDelay() const;

    /** Register per-channel stats under prefix.chNN. */
    void registerStats(obs::Registry &r,
                       const std::string &prefix) const;

  private:
    std::vector<DramChannel> chans;
};

} // namespace mem
} // namespace starnuma

#endif // STARNUMA_MEM_DRAM_HH
