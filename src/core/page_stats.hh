/**
 * @file
 * Per-page, per-socket access counting. This is the "zero-cost
 * per-socket knowledge of all accesses to every 4KB page" the paper
 * grants the baseline's migration policy (§IV-C), and the input to
 * the oracular static placement of §V-B. It is deliberately *not*
 * hardware-feasible — that is the point of the comparison with
 * StarNUMA's region-granular T_i trackers.
 */

#ifndef STARNUMA_CORE_PAGE_STATS_HH
#define STARNUMA_CORE_PAGE_STATS_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"

namespace starnuma
{
namespace core
{

/** Exact per-socket access counts for every touched page. */
class PageAccessStats
{
  public:
    explicit PageAccessStats(int sockets);

    /** Count one access to page number @p page by @p socket. */
    void record(PageNum page, NodeId socket);

    /** Total accesses to @p page across sockets. */
    std::uint64_t totalAccesses(PageNum page) const;

    /** Number of distinct sockets that accessed @p page. */
    int sharers(PageNum page) const;

    /** Socket with the most accesses to @p page (-1 if untouched). */
    NodeId majoritySocket(PageNum page) const;

    /** Pages with at least one access. */
    std::size_t touchedPages() const { return pageCounts.size(); }

    int sockets() const { return sockets_; }

    /** Visit (page, per-socket counts) for every touched page. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        // lint: order-independent — both policies sort their
        // candidate lists (heat, then page) before deciding.
        for (const auto &[page, c] : pageCounts) // lint: order-independent
            fn(page, c);
    }

    void reset() { pageCounts.clear(); }

  private:
    int sockets_;
    std::unordered_map<PageNum, std::vector<std::uint32_t>> pageCounts;
};

} // namespace core
} // namespace starnuma

#endif // STARNUMA_CORE_PAGE_STATS_HH
