// Fixture: Store::putObject is an artifact sink (DESIGN.md §16) —
// bytes persisted in the content-addressed store are replayed as
// artifacts on every later hit, so a nondeterministic payload is a
// determinism-contract violation the moment it is written. The
// violating writer folds a wall-clock stamp into the payload; the
// passing writer persists only values derived from its inputs, and
// a reviewed host-profiling stamp uses the `taint-ok` escape.
// Never compiled; consumed by starnuma_taint.py --self-test.

namespace starnuma
{

struct Store;

// Wall-clock stamp folded into the persisted payload: a warm fetch
// would replay a different byte image than a recompute produces.
// lint: cold-path fixture scaffolding
void
d12StampedPut(Store &store, const std::string &key)
{
    auto stamp = static_cast<unsigned long>(
        std::chrono::steady_clock::now().time_since_epoch().count());
    store.putObject(key, {static_cast<std::uint8_t>(stamp & 0xFF)}); // expect-lint: D12
}

// Clean writer: every persisted byte is a function of the inputs.
// lint: cold-path fixture scaffolding
void
d12DerivedPut(Store &store, const std::string &key,
              std::uint64_t value)
{
    std::vector<std::uint8_t> payload;
    payload.push_back(static_cast<std::uint8_t>(value & 0xFF));
    store.putObject(key, payload);
}

// Reviewed escape: a host-profiling side channel stored next to the
// artifact bytes, never replayed into a deterministic output.
// lint: cold-path fixture scaffolding
void
d12ReviewedPut(Store &store, const std::string &key)
{
    auto stamp = static_cast<unsigned long>(
        std::chrono::steady_clock::now().time_since_epoch().count());
    std::vector<std::uint8_t> payload;
    payload.push_back(static_cast<std::uint8_t>(stamp & 0xFF));
    // lint: taint-ok fixture: profiling sidecar, reviewed
    store.putObject(key, payload);
}

} // namespace starnuma
