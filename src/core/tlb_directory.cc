#include "core/tlb_directory.hh"

#include <bit>

#include "sim/logging.hh"
#include "sim/obs/registry.hh"

namespace starnuma
{
namespace core
{

int
TlbHolderMask::count() const
{
    int n = 0;
    for (auto w : words)
        n += std::popcount(w);
    return n;
}

TlbDirectory::TlbDirectory(int n_cores) : cores(n_cores)
{
    sn_assert(cores > 0 && cores <= 256,
              "TLB directory bit-set supports up to 256 cores");
}

// lint: cold-path one-time setup before the replay loop
void
TlbDirectory::preallocate(PageNum base, std::size_t pages)
{
    sn_assert(map.empty() && flat.empty(),
              "preallocate before tracking any translation");
    if (pages == 0)
        return;
    flatBase = base;
    flat.assign(pages, TlbHolderMask{});
}

// lint: hot-path queried per migrated page during shootdowns
TlbHolderMask
TlbDirectory::holders(PageNum page) const
{
    if (flat.empty()) {
        auto it = map.find(page);
        return it == map.end() ? TlbHolderMask{} : it->second;
    }
    std::uint64_t slot = page.value() - flatBase.value();
    return slot < flat.size() ? flat[slot] : TlbHolderMask{};
}

int
TlbDirectory::holderCount(PageNum page) const
{
    return holders(page).count();
}

// lint: hot-path one shootdown per migrated page
int
TlbDirectory::shootdown(PageNum page)
{
    int targeted = holderCount(page);
    if (flat.empty()) {
        map.erase(page);
    } else if (targeted > 0) {
        flat[flatSlot(page)] = TlbHolderMask{};
        --flatTracked;
    }
    sent_ += targeted;
    saved_ += cores - targeted;
    return targeted;
}

void
TlbDirectory::saveState(std::vector<std::uint8_t> &out) const
{
    bool flat_mode = !flat.empty();
    putVarint(out, flat_mode ? 1 : 0);
    if (flat_mode) {
        putVarint(out, flatBase.value());
        putVarint(out, flat.size());
    }
    putVarint(out, sent_);
    putVarint(out, saved_);
    putVarint(out, trackedPages());
    std::int64_t prev = 0;
    auto emit = [&](PageNum page, const TlbHolderMask &m) {
        std::int64_t v = static_cast<std::int64_t>(page.value());
        putVarint(out, zigzag(v - prev));
        prev = v;
        for (std::uint64_t w : m.words)
            putVarint(out, w);
    };
    if (flat_mode) {
        for (std::size_t slot = 0; slot < flat.size(); ++slot)
            if (flat[slot].any())
                emit(PageNum(flatBase.value() + slot), flat[slot]);
    } else {
        for (const auto &[page, mask] : map)
            emit(page, mask);
    }
}

bool
TlbDirectory::loadState(ByteReader &r)
{
    if (!map.empty() || !flat.empty())
        return false;
    std::uint64_t flat_mode = 0, sent = 0, saved = 0, n = 0;
    if (!r.getVarint(flat_mode) || flat_mode > 1)
        return false;
    if (flat_mode) {
        std::uint64_t base = 0, pages = 0;
        if (!r.getVarint(base) || !r.getVarint(pages))
            return false;
        preallocate(PageNum(base),
                    static_cast<std::size_t>(pages));
    }
    if (!r.getVarint(sent) || !r.getVarint(saved) ||
        !r.getVarint(n) || n > r.remaining())
        return false;
    std::int64_t prev = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
        std::uint64_t delta = 0;
        if (!r.getVarint(delta))
            return false;
        prev += unzigzag(delta);
        PageNum page(static_cast<std::uint64_t>(prev));
        TlbHolderMask m;
        for (std::uint64_t &w : m.words)
            if (!r.getVarint(w))
                return false;
        if (!m.any())
            return false;
        if (flat_mode) {
            std::uint64_t slot = page.value() - flatBase.value();
            if (slot >= flat.size() || flat[slot].any())
                return false;
            flat[slot] = m;
            ++flatTracked;
        } else {
            if (!map.try_emplace(page, m).second)
                return false;
        }
    }
    sent_ = sent;
    saved_ = saved;
    return true;
}

double
TlbDirectory::savingsRatio()
const
{
    std::uint64_t total = sent_ + saved_;
    return total ? static_cast<double>(saved_) / static_cast<double>(total)
                 : 0.0;
}

// lint: cold-path stats export, once per run when observing
void
TlbDirectory::registerStats(obs::Registry &r,
                            const std::string &prefix) const
{
    r.addCounter(prefix + ".shootdownsSent", &sent_);
    r.addCounter(prefix + ".shootdownsSaved", &saved_);
    r.addGaugeFn(prefix + ".savingsRatio",
                 [this] { return savingsRatio(); });
    r.addCounterFn(prefix + ".trackedPages",
                   [this] { return trackedPages(); });
}

} // namespace core
} // namespace starnuma
