#!/bin/sh
# Export the headline bench results (Fig. 8 speedups, Table III
# IPC/MPKI, step-B replay throughput) as machine-readable JSON:
# runs the benches in STARNUMA_BENCH_FAST mode with --bench-json
# and merges the parts into BENCH_results.json at the repository
# root. The replay.replay_instr_per_sec entry is what the optional
# `bench` CI stage (scripts/run_ci.sh) guards against regression.
set -e
cd "$(dirname "$0")/.."

if [ ! -d build ]; then
    cmake -B build -G Ninja
fi
cmake --build build --target bench_fig08_main_results \
    bench_table3_workloads bench_replay_throughput \
    bench_sweep_incremental

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

STARNUMA_BENCH_FAST=1 ./build/bench/bench_fig08_main_results \
    --bench-json="$tmp/fig08.json" >/dev/null
STARNUMA_BENCH_FAST=1 ./build/bench/bench_table3_workloads \
    --bench-json="$tmp/table3.json" >/dev/null
# Replay throughput is wall-clock sensitive; measure best-of-3 so
# the committed baseline is the same statistic the CI bench guard
# (scripts/run_ci.sh) later measures — interference only ever
# lowers throughput, so the max over repeats is the honest value.
for i in 1 2 3; do
    STARNUMA_BENCH_FAST=1 ./build/bench/bench_replay_throughput \
        --bench-json="$tmp/replay$i.json" >/dev/null
done
# Incremental sweep: one cold-then-warm pass against a scratch store
# (the sweep.* wall-clock metrics get the same loose replay-class
# tolerance in bench_history.py, so a single measurement suffices).
STARNUMA_CACHE_DIR="$tmp/sweep_cache" STARNUMA_BENCH_FAST=1 \
    ./build/bench/bench_sweep_incremental \
    --bench-json="$tmp/sweep.json" >/dev/null

python3 - "$tmp/fig08.json" "$tmp/table3.json" \
    "$tmp"/replay[123].json "$tmp/sweep.json" <<'EOF'
import json
import os
import re
import sys

merged = {"schema": "starnuma-bench-v1", "fast_mode": True,
          "results": {}, "wall_time_s": 0.0,
          "wall_time_per_bench_s": {}}
for path in sys.argv[1:]:
    with open(path) as fh:
        part = json.load(fh)
    assert part["schema"] == "starnuma-bench-v1", part["schema"]
    merged["fast_mode"] = bool(part["fast_mode"])
    for key, val in part["results"].items():
        if key.startswith("replay.") and key in merged["results"]:
            val = max(val, merged["results"][key])
        merged["results"][key] = val
    merged["wall_time_s"] += part["wall_time_s"]
    # Per-bench wall time: replay repeats fold into one entry.
    bench = os.path.basename(path).rsplit(".", 1)[0]
    bench = re.sub(r"^(replay)\d+$", r"\1", bench)
    per = merged["wall_time_per_bench_s"]
    per[bench] = round(per.get(bench, 0.0) + part["wall_time_s"], 3)
merged["results"] = dict(sorted(merged["results"].items()))
merged["wall_time_s"] = round(merged["wall_time_s"], 3)
merged["wall_time_per_bench_s"] = dict(
    sorted(merged["wall_time_per_bench_s"].items()))
with open("BENCH_results.json", "w") as fh:
    json.dump(merged, fh, indent=2)
    fh.write("\n")
print("BENCH_results.json: %d results" % len(merged["results"]))
EOF
