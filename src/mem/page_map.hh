/**
 * @file
 * Page-to-home-node mapping with first-touch initial placement
 * (§IV-C) and migration support. Pages are keyed by page number.
 * The map also tracks per-node page counts so capacity policies
 * (pool limit, victim selection) can query occupancy cheaply.
 */

#ifndef STARNUMA_MEM_PAGE_MAP_HH
#define STARNUMA_MEM_PAGE_MAP_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"

namespace starnuma
{
namespace mem
{

/** Home node returned for pages that were never touched. */
constexpr NodeId invalidNode = -1;

/** Page table mapping page numbers to home nodes. */
class PageMap
{
  public:
    /** @param nodes addressable home nodes (sockets + pool). */
    explicit PageMap(int nodes);

    /** Home of page @p page, or invalidNode if unmapped. */
    NodeId home(PageNum page) const;

    /**
     * First-touch lookup: maps the page to @p toucher's socket on
     * first access, then sticks.
     * @return the (possibly just-assigned) home node.
     */
    NodeId touch(PageNum page, NodeId toucher);

    /** Force page @p page to live on node @p node (migration). */
    void setHome(PageNum page, NodeId node);

    /** Number of mapped pages homed at @p node. */
    std::uint64_t pagesAt(NodeId node) const;

    /** Total mapped pages. */
    std::uint64_t totalPages() const { return map.size(); }

    /** Pages whose initial placement came from first touch. */
    std::uint64_t firstTouchPages() const { return firstTouch; }

    /** Visit every (page, home) entry. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        // lint: order-independent — callers rebuild maps or
        // sort what they collect before it affects results.
        for (const auto &[page, node] : map) // lint: order-independent
            fn(page, node);
    }

  private:
    std::unordered_map<PageNum, NodeId> map;
    std::vector<std::uint64_t> counts;
    std::uint64_t firstTouch;
};

} // namespace mem
} // namespace starnuma

#endif // STARNUMA_MEM_PAGE_MAP_HH
