#include "mem/page_map.hh"

#include "sim/logging.hh"

namespace starnuma
{
namespace mem
{

PageMap::PageMap(int nodes) : counts(nodes, 0), firstTouch(0)
{
    sn_assert(nodes > 0, "page map needs at least one node");
}

// lint: cold-path one-time setup before the replay loop
void
PageMap::preallocate(PageNum base, std::uint64_t pages)
{
    sn_assert(map.empty() && flat.empty(),
              "preallocate before mapping any page");
    if (pages == 0)
        return;
    flatBase = base;
    flat.assign(pages, invalidNode);
    order.reserve(pages);
}

NodeId
PageMap::touchMapped(PageNum page, NodeId toucher)
{
    auto [it, inserted] = map.try_emplace(page, toucher);
    if (inserted) {
        sn_assert(toucher >= 0 &&
                      static_cast<std::size_t>(toucher) < counts.size(),
                  "first-touch by unknown node %d", toucher);
        ++counts[toucher];
        ++firstTouch;
    }
    return it->second;
}

void
PageMap::setHome(PageNum page, NodeId node)
{
    sn_assert(node >= 0 &&
                  static_cast<std::size_t>(node) < counts.size(),
              "migrating page to unknown node %d", node);
    if (flat.empty()) {
        auto it = map.find(page);
        if (it == map.end()) {
            map.emplace(page, node);
        } else {
            --counts[it->second];
            it->second = node;
        }
    } else {
        NodeId &h = flat[flatSlot(page)];
        if (h == invalidNode)
            order.push_back(page);
        else
            --counts[h];
        h = node;
    }
    ++counts[node];
}

std::uint64_t
PageMap::pagesAt(NodeId node) const
{
    sn_assert(node >= 0 &&
                  static_cast<std::size_t>(node) < counts.size(),
              "pagesAt of unknown node %d", node);
    return counts[node];
}

} // namespace mem
} // namespace starnuma
