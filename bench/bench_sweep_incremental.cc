/**
 * @file
 * Incremental sweep engine (DESIGN.md §16): the same full sweep —
 * every bench workload crossed with both system setups — run cold
 * against an empty artifact store and then warm against the objects
 * the cold pass persisted. Records the cells-per-second rate of each
 * pass, the warm/cold speedup (the ISSUE's `sweep.warm_speedup`
 * acceptance metric), the warm pass's result-tier hit rate, and a
 * byte-identity bit comparing every warm artifact against its cold
 * counterpart. The cache directory is scratch space owned by this
 * bench (emptied via Store::trim(0) before the cold pass), so runs
 * are self-contained and repeatable.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "driver/artifact_cache.hh"
#include "driver/metrics.hh"
#include "sim/table.hh"

using namespace starnuma;

namespace
{

struct SweepTiming
{
    double coldSecs = 0;
    double warmSecs = 0;
    double cells = 0;
    double hitRate = 0;
    bool warmEqualsCold = false;
};

SweepTiming measured;

/** Wall seconds of one full sweep over @p jobs. */
double
timedSweep(const std::vector<driver::SweepJob> &jobs,
           std::vector<driver::ExperimentResult> &results)
{
    using clock = std::chrono::steady_clock;
    auto t0 = clock::now();
    results = driver::runSweep(jobs);
    auto t1 = clock::now();
    benchmark::DoNotOptimize(results.size());
    return std::chrono::duration<double>(t1 - t0).count();
}

/** Bitwise equality of two sweep result sets: exact metric bytes
 *  plus the serialized step-B placement artifact. */
bool
sweepEquals(const std::vector<driver::ExperimentResult> &a,
            const std::vector<driver::ExperimentResult> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (driver::metricsSnapshot(a[i].metrics).values() !=
            driver::metricsSnapshot(b[i].metrics).values())
            return false;
        if (a[i].placement.serialize() !=
            b[i].placement.serialize())
            return false;
    }
    return true;
}

void
BM_SweepIncremental(benchmark::State &state)
{
    SimScale scale = benchutil::benchScale();
    std::vector<driver::SweepJob> jobs = driver::crossJobs(
        benchutil::benchWorkloads(),
        {driver::SystemSetup::baseline(),
         driver::SystemSetup::starnuma()},
        scale);

    driver::ArtifactCache &cache = driver::ArtifactCache::global();
    const char *env = std::getenv("STARNUMA_CACHE_DIR");
    std::string dir = (env != nullptr && *env != '\0' &&
                       std::string(env) != "0" &&
                       std::string(env) != "off")
                          ? std::string(env)
                          : std::string(".sweep_cache_bench");
    cache.enable(dir);
    cache.store()->trim(0); // empty store: a true cold pass

    for (auto _ : state) {
        cache.resetCounters();
        std::vector<driver::ExperimentResult> cold;
        measured.coldSecs = timedSweep(jobs, cold);

        cache.resetCounters();
        std::vector<driver::ExperimentResult> warm;
        measured.warmSecs = timedSweep(jobs, warm);

        std::uint64_t hits = cache.resultHits();
        std::uint64_t misses = cache.resultMisses();
        measured.cells = static_cast<double>(jobs.size());
        measured.hitRate =
            hits + misses > 0
                ? static_cast<double>(hits) /
                      static_cast<double>(hits + misses)
                : 0.0;
        measured.warmEqualsCold = sweepEquals(cold, warm);
    }
    cache.disable();

    state.counters["cold_secs"] = measured.coldSecs;
    state.counters["warm_secs"] = measured.warmSecs;
    state.counters["hit_rate"] = measured.hitRate;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    benchutil::initBench(&argc, argv);

    benchmark::RegisterBenchmark("SweepIncremental",
                                 BM_SweepIncremental)
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
    int rc = benchutil::runBenchmarks(argc, argv);

    double cold_rate =
        measured.cells / std::max(measured.coldSecs, 1e-9);
    double warm_rate =
        measured.cells / std::max(measured.warmSecs, 1e-9);
    double speedup = measured.coldSecs /
                     std::max(measured.warmSecs, 1e-9);
    benchutil::recordResult("sweep.cold_cells_per_sec", cold_rate);
    benchutil::recordResult("sweep.warm_cells_per_sec", warm_rate);
    benchutil::recordResult("sweep.warm_speedup", speedup);
    benchutil::recordResult("sweep.cache_hit_rate",
                            measured.hitRate);
    benchutil::recordResult("sweep.warm_equals_cold",
                            measured.warmEqualsCold ? 1.0 : 0.0);

    TextTable t({"pass", "wall s", "cells/s"});
    t.addRow({"cold", TextTable::num(measured.coldSecs, 3),
              TextTable::num(cold_rate, 1)});
    t.addRow({"warm", TextTable::num(measured.warmSecs, 3),
              TextTable::num(warm_rate, 1)});
    t.addRow({"speedup", TextTable::num(speedup, 1) + "x",
              "hit rate " + TextTable::num(measured.hitRate, 2)});
    t.addRow({"byte-identical",
              measured.warmEqualsCold ? "yes" : "NO", ""});
    benchutil::printSection(
        "Incremental sweep: cold vs warm artifact-cache pass",
        t.str());
    return rc;
}
