#include "driver/trace_sim.hh"

#include <algorithm>
#include <bit>
#include <cstdio>

#include "core/oracle.hh"
#include "core/region_tracker.hh"
#include "core/tlb_annex.hh"
#include "core/tlb_directory.hh"
#include "mem/page_map.hh"
#include "sim/annotations.hh"
#include "sim/logging.hh"
#include "sim/obs/audit.hh"
#include "sim/obs/obs.hh"
#include "sim/obs/timeseries.hh"
#include "sim/rng.hh"
#include "trace/columnar.hh"

namespace starnuma
{
namespace driver
{

std::uint64_t
Checkpoint::migratedPages(int pages_per_region) const
{
    return regionMigrations.size() *
               static_cast<std::uint64_t>(pages_per_region) +
           pageMigrations.size();
}

TraceSim::TraceSim(const SystemSetup &system_setup,
                   const SimScale &sim_scale)
    : setup(system_setup), scale(sim_scale)
{
    sn_assert(scale.sockets == setup.sys.sockets,
              "scale/system socket mismatch (%d vs %d)",
              scale.sockets, setup.sys.sockets);
}

NodeId
TraceSim::socketOf(ThreadId t) const
{
    return t / scale.coresPerSocket;
}

// lint: hot-path root of the whole replay: everything reachable
// from here runs per record unless explicitly marked cold.
TraceSimResult
TraceSim::run(const trace::WorkloadTrace &trace,
              const PhaseStateHooks *hooks)
{
    sn_assert(trace.threads == scale.threads(),
              "trace captured for %d threads, scale expects %d",
              trace.threads, scale.threads());
    // Resume/capture envelope (DESIGN.md §16): only pooled dynamic
    // runs serialize cleanly, and only with the telemetry sinks off
    // (their streams are not part of the state image).
    // lint: cold-path once-per-run telemetry-sink gate
    const bool ts_on = obs::TimeSeriesSink::global().enabled();
    // lint: cold-path once-per-run telemetry-sink gate
    const bool audit_on = obs::AuditSink::global().enabled();
    if (!setup.sys.hasPool || ts_on || audit_on)
        hooks = nullptr;
    TraceSimResult result =
        setup.placement == Placement::StaticOracle
            ? runStaticOracle(trace)
            : runDynamic(trace, hooks);
    if (setup.replicateReadOnly)
        result.replication = core::planReplication(
            trace, scale.coresPerSocket, setup.sys.sockets,
            setup.replication);
    return result;
}

namespace
{

/** Snapshot a PageMap into a checkpoint's plain map. */
// lint: cold-path one full-map copy per phase checkpoint
FlatMap<PageNum, NodeId>
snapshot(const mem::PageMap &pm)
{
    FlatMap<PageNum, NodeId> out;
    out.reserve(pm.totalPages());
    pm.forEach([&](PageNum page, NodeId home) { out[page] = home; });
    return out;
}

/**
 * Page span [lo, hi] over every page the replay will touch (records
 * and first touches). Captured traces bump-allocate their address
 * space, so the span is dense and the hot-path tables can switch to
 * flat array storage over it. Capture and the columnar decoder
 * stamp the span on the trace; hand-built traces leave it unknown
 * and pay one linear scan here.
 * @return false for an empty trace.
 */
bool
pageSpan(const trace::WorkloadTrace &trace, PageNum &lo,
         PageNum &hi)
{
    if (trace.maxPage.value() != 0 ||
        trace.minPage.value() != 0) {
        lo = trace.minPage;
        hi = trace.maxPage;
        return true;
    }
    std::uint64_t min = ~std::uint64_t(0);
    std::uint64_t max = 0;
    for (const auto &ft : trace.firstTouches) {
        min = std::min(min, ft.page.value());
        max = std::max(max, ft.page.value());
    }
    for (const auto &recs : trace.perThread) {
        for (const auto &r : recs) {
            std::uint64_t p = pageNumber(r.vaddr()).value();
            min = std::min(min, p);
            max = std::max(max, p);
        }
    }
    if (min > max)
        return false;
    lo = PageNum(min);
    hi = PageNum(max);
    return true;
}

/**
 * Stream handles and delta state of the replay's per-phase
 * telemetry (DESIGN.md §14). An aggregate with no user constructor
 * so declaring one stays off the hot path; all real work happens in
 * the cold helpers below, sampled once per migration phase with the
 * phase number as timestamp.
 */
struct ReplayTelemetry
{
    obs::TimeSeries::StreamId poolPages = 0;
    obs::TimeSeries::StreamId tlbMisses = 0;
    obs::TimeSeries::StreamId tlbMissRate = 0;
    obs::TimeSeries::StreamId migratedPages = 0;
    obs::TimeSeries::StreamId shootdowns = 0;
    std::uint64_t lastMisses = 0;
    std::uint64_t lastAccesses = 0;
    std::uint64_t lastShootdowns = 0;
};

// lint: cold-path telemetry stream registration, once per run when
// the TimeSeriesSink is enabled
STARNUMA_COLD_PATH void
initReplayTelemetry(ReplayTelemetry &t, obs::TimeSeries &series,
                    bool star, int phases)
{
    std::size_t cap = static_cast<std::size_t>(phases);
    t.migratedPages = series.addStream("migratedPages", cap);
    if (!star)
        return;
    t.poolPages = series.addStream("poolPages", cap);
    t.tlbMisses = series.addStream("tlbMisses", cap);
    t.tlbMissRate = series.addStream("tlbMissRate", cap);
    t.shootdowns = series.addStream("shootdownsSent", cap);
}

// lint: cold-path once-per-phase telemetry sample, behind the
// per-run sink gate
STARNUMA_COLD_PATH void
sampleReplayPhase(ReplayTelemetry &t, obs::TimeSeries &series,
                  std::uint64_t phase, std::uint64_t regions_moved,
                  std::uint64_t pages_moved, bool star,
                  const core::RegionTracker &tracker,
                  const mem::PageMap &pm, NodeId pool_node,
                  const std::vector<core::TlbAnnex> &tlbs,
                  const core::TlbDirectory &tlb_dir)
{
    std::uint64_t migrated =
        regions_moved *
            static_cast<std::uint64_t>(tracker.pagesPerRegion()) +
        pages_moved;
    series.sample(t.migratedPages, phase,
                  static_cast<double>(migrated));
    if (!star)
        return;
    series.sample(t.poolPages, phase,
                  static_cast<double>(pm.pagesAt(pool_node)));
    std::uint64_t misses = 0, accesses = 0;
    for (const core::TlbAnnex &tlb : tlbs) {
        misses += tlb.tlbMisses();
        accesses += tlb.tlbMisses() + tlb.tlbHits();
    }
    std::uint64_t dm = misses - t.lastMisses;
    std::uint64_t da = accesses - t.lastAccesses;
    series.sample(t.tlbMisses, phase, static_cast<double>(dm));
    series.sample(t.tlbMissRate, phase,
                  da ? static_cast<double>(dm) /
                           static_cast<double>(da)
                     : 0.0);
    t.lastMisses = misses;
    t.lastAccesses = accesses;
    std::uint64_t sent = tlb_dir.shootdownsSent();
    series.sample(t.shootdowns, phase,
                  static_cast<double>(sent - t.lastShootdowns));
    t.lastShootdowns = sent;
}

// Checkpoint artifact format v2 ("STARCKP2"): varint/delta coded
// with the sim/bytes.hh primitives. Collections are written in
// sorted page order so artifacts stay byte-identical across runs.
// The same encoders serve TraceSimResult::save()/load() and the
// incremental sweep engine's per-phase resume snapshots
// (DESIGN.md §16).
constexpr std::uint64_t checkpointMagic = 0x53544152434b5032ULL;

// Fixed 8-byte little-endian doubles (not the varint encoding of
// sim/bytes.hh): format v2 predates the cache and its byte stream
// must not change.
void
putDouble(std::vector<std::uint8_t> &out, double v)
{
    std::uint64_t bits = std::bit_cast<std::uint64_t>(v);
    for (int i = 0; i < 8; ++i)
        out.push_back(
            static_cast<std::uint8_t>(bits >> (8 * i)));
}

bool
getDouble(trace::ByteReader &r, double &v)
{
    std::uint64_t bits = 0;
    if (!r.getU64(bits))
        return false;
    v = std::bit_cast<double>(bits);
    return true;
}

PageNum
pageOf(const std::pair<PageNum, NodeId> &kv)
{
    return kv.first;
}

PageNum
pageOf(PageNum page)
{
    return page;
}

/** Sorted copy of the pages in a flat page set/map. */
template <typename Pages>
std::vector<PageNum>
sortedPages(const Pages &source)
{
    std::vector<PageNum> out;
    out.reserve(source.size());
    for (const auto &entry : source)
        out.push_back(pageOf(entry));
    std::sort(out.begin(), out.end());
    return out;
}

void
putPageHome(std::vector<std::uint8_t> &buf,
            const FlatMap<PageNum, NodeId> &home)
{
    putVarint(buf, home.size());
    std::vector<PageNum> sorted = sortedPages(home);
    std::uint64_t prev = 0;
    for (PageNum page : sorted) {
        putVarint(buf, page.value() - prev);
        prev = page.value();
        putVarint(buf, zigzag(home.at(page)));
    }
}

bool
getPageHome(trace::ByteReader &r, FlatMap<PageNum, NodeId> &home)
{
    std::uint64_t n = 0;
    if (!r.getVarint(n) || n > r.remaining())
        return false;
    home.reserve(n);
    std::uint64_t page = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
        std::uint64_t delta = 0, node = 0;
        if (!r.getVarint(delta) || !r.getVarint(node))
            return false;
        page += delta;
        home[PageNum(page)] =
            static_cast<NodeId>(trace::unzigzag(node));
    }
    return true;
}

void
putRegionMigrations(std::vector<std::uint8_t> &buf,
                    const std::vector<core::RegionMigration> &ms)
{
    putVarint(buf, ms.size());
    std::uint64_t prev_region = 0;
    for (const core::RegionMigration &m : ms) {
        putVarint(buf, zigzag(static_cast<std::int64_t>(
                           m.region - prev_region)));
        prev_region = m.region;
        putVarint(buf, zigzag(m.from));
        putVarint(buf, zigzag(m.to));
        buf.push_back(m.victimEviction ? 1 : 0);
    }
}

// lint: cold-path resume-state / checkpoint-artifact decode,
// bounded by stored counts, never per replay record
bool
getRegionMigrations(trace::ByteReader &r,
                    std::vector<core::RegionMigration> &ms)
{
    std::uint64_t n = 0;
    if (!r.getVarint(n) || n > r.remaining())
        return false;
    ms.reserve(n);
    std::uint64_t region = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
        std::uint64_t delta = 0, from = 0, to = 0;
        std::uint8_t victim = 0;
        if (!r.getVarint(delta) || !r.getVarint(from) ||
            !r.getVarint(to) || !r.getBytes(&victim, 1))
            return false;
        region +=
            static_cast<std::uint64_t>(trace::unzigzag(delta));
        ms.push_back({region,
                      static_cast<NodeId>(trace::unzigzag(from)),
                      static_cast<NodeId>(trace::unzigzag(to)),
                      victim != 0});
    }
    return true;
}

void
putPageMigrations(std::vector<std::uint8_t> &buf,
                  const std::vector<core::PageMigration> &ms)
{
    putVarint(buf, ms.size());
    std::uint64_t prev_page = 0;
    for (const core::PageMigration &m : ms) {
        putVarint(buf, zigzag(static_cast<std::int64_t>(
                           m.page.value() - prev_page)));
        prev_page = m.page.value();
        putVarint(buf, zigzag(m.from));
        putVarint(buf, zigzag(m.to));
    }
}

// lint: cold-path resume-state / checkpoint-artifact decode,
// bounded by stored counts, never per replay record
bool
getPageMigrations(trace::ByteReader &r,
                  std::vector<core::PageMigration> &ms)
{
    std::uint64_t n = 0;
    if (!r.getVarint(n) || n > r.remaining())
        return false;
    ms.reserve(n);
    std::uint64_t page = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
        std::uint64_t delta = 0, from = 0, to = 0;
        if (!r.getVarint(delta) || !r.getVarint(from) ||
            !r.getVarint(to))
            return false;
        page += static_cast<std::uint64_t>(trace::unzigzag(delta));
        ms.push_back({PageNum(page),
                      static_cast<NodeId>(trace::unzigzag(from)),
                      static_cast<NodeId>(trace::unzigzag(to))});
    }
    return true;
}

void
encodeCheckpoint(std::vector<std::uint8_t> &buf,
                 const Checkpoint &cp)
{
    putPageHome(buf, cp.pageHome);
    putRegionMigrations(buf, cp.regionMigrations);
    putPageMigrations(buf, cp.pageMigrations);
}

bool
decodeCheckpoint(trace::ByteReader &r, Checkpoint &cp)
{
    return getPageHome(r, cp.pageHome) &&
           getRegionMigrations(r, cp.regionMigrations) &&
           getPageMigrations(r, cp.pageMigrations);
}

/**
 * Serialize the replay's full mutable state at the top of migration
 * phase @p phase: page homes, per-thread replay cursors, the
 * pending migrations decided by phase-1, the Algorithm-1 engine, the
 * DiDi directory, every TLB annex, and the checkpoints already
 * emitted. Restoring this image and replaying the remaining phases
 * yields artifacts byte-identical to a cold run (Golden.WarmEqualsCold).
 */
// lint: cold-path once-per-phase resume snapshot
// lint: artifact-root step_b_state
STARNUMA_COLD_PATH void
encodeResumeState(std::vector<std::uint8_t> &out, int phase,
                  const mem::PageMap &pm,
                  const std::vector<std::size_t> &cursor,
                  const std::vector<core::RegionMigration> &pending_regions,
                  const std::vector<core::PageMigration> &pending_pages,
                  const core::MigrationEngine &engine,
                  const core::TlbDirectory &tlb_dir,
                  const std::vector<core::TlbAnnex> &tlbs,
                  const std::vector<Checkpoint> &checkpoints)
{
    putVarint(out, checkpointMagic);
    putVarint(out, static_cast<std::uint64_t>(phase));
    pm.saveState(out);
    putVarint(out, cursor.size());
    for (std::size_t c : cursor)
        putVarint(out, c);
    putRegionMigrations(out, pending_regions);
    putPageMigrations(out, pending_pages);
    engine.saveState(out);
    tlb_dir.saveState(out);
    putVarint(out, tlbs.size());
    for (const core::TlbAnnex &tlb : tlbs)
        tlb.saveState(out);
    putVarint(out, checkpoints.size());
    for (const Checkpoint &cp : checkpoints)
        encodeCheckpoint(out, cp);
}

} // anonymous namespace

TraceSimResult
TraceSim::runDynamic(const trace::WorkloadTrace &trace,
                     const PhaseStateHooks *hooks)
{
    TraceSimResult result;
    if (runDynamicImpl(trace, hooks, result))
        return result;
    // The resume image failed validation (stale, truncated or
    // corrupted store object): demote to a clean cold run — never
    // a wrong artifact (DESIGN.md §16).
    result = TraceSimResult();
    PhaseStateHooks cold;
    if (hooks)
        cold.onPhaseState = hooks->onPhaseState;
    bool ok =
        runDynamicImpl(trace, hooks ? &cold : nullptr, result);
    sn_assert(ok, "cold replay cannot fail");
    return result;
}

// lint: artifact-root step_b_checkpoint
bool
TraceSim::runDynamicImpl(const trace::WorkloadTrace &trace,
                         const PhaseStateHooks *hooks,
                         TraceSimResult &result)
{
    const bool star = setup.sys.hasPool;
    const int nodes = setup.sys.sockets + (star ? 1 : 0);

    result.footprintPages = pagesIn(trace.footprintBytes);
    result.poolCapacityPages =
        star ? static_cast<std::uint64_t>(
                   static_cast<double>(result.footprintPages) *
                   setup.sys.poolCapacityFraction)
             : 0;

    // Captured traces cover one dense page range; give every
    // page/region table flat array storage over it (identical
    // behavior, array indexing instead of hashing on the hot path).
    // Sparse hand-built traces keep the FlatMap storage.
    PageNum spanLo{0}, spanHi{0};
    std::uint64_t spanPages = 0;
    if (pageSpan(trace, spanLo, spanHi)) {
        std::uint64_t span = spanHi.value() - spanLo.value() + 1;
        if (span <= result.footprintPages + 1024)
            spanPages = span;
    }

    mem::PageMap pm(nodes);

    // Scale the per-phase migration budget to the footprint so the
    // modeled migration traffic stays proportional to the shrunken
    // phase length (the paper tunes an absolute limit per workload
    // at its own scale, §IV-C).
    core::MigrationConfig mig_cfg = setup.migration;
    if (mig_cfg.scaleLimitToFootprint) {
        mig_cfg.migrationLimitPages =
            static_cast<std::uint32_t>(std::max<std::uint64_t>(
                64, static_cast<std::uint64_t>(
                        static_cast<double>(
                            result.footprintPages) *
                        mig_cfg.migrationLimitFraction)));
    }

    // StarNUMA machinery: shared metadata region, per-core TLB
    // annexes, Algorithm 1 engine. The tracker is reset at every
    // phase boundary (scanAndReset), so a fresh preallocated one is
    // bit-equivalent on resume and carries no serialized state.
    core::RegionTracker tracker(mig_cfg.counterBits,
                                setup.sys.sockets,
                                setup.regionBytes);
    if (spanPages > 0) {
        core::RegionId first = tracker.regionOf(pageBase(spanLo));
        core::RegionId last = tracker.regionOf(pageBase(spanHi));
        tracker.preallocate(first, last - first + 1);
    }
    std::vector<core::TlbAnnex> tlbs;
    // Per-task RNG stream: the engine's tie-break generator is
    // seeded from the task identity (workload, config), never shared
    // between experiments, so concurrent sweep entries draw the same
    // sequences they would serially.
    core::MigrationEngine engine(mig_cfg, setup.sys.sockets, star,
                                 setup.regionBytes,
                                 taskSeed({trace.workload,
                                           setup.name}));
    core::TlbDirectory tlb_dir(trace.threads);
    if (star) {
        // lint: cold-path per-run TLB construction, before replay
        tlbs.reserve(trace.threads);
        for (ThreadId t = 0; t < trace.threads; ++t) {
            // lint: cold-path per-run TLB construction
            tlbs.emplace_back(core::TlbConfig{}, tracker,
                              socketOf(t));
            tlbs.back().attachDirectory(&tlb_dir, t);
        }
    }

    // Baseline machinery: zero-cost perfect page knowledge, same
    // migration budget as StarNUMA gets.
    core::PerfectPagePolicy perfect(setup.sys.sockets,
                                    mig_cfg.migrationLimitPages);
    if (!star && spanPages > 0)
        perfect.preallocate(spanLo, spanPages);

    std::vector<std::size_t> cursor(trace.threads, 0);
    std::vector<core::RegionMigration> pending_regions;
    std::vector<core::PageMigration> pending_pages;

    // Mid-run policy schedule (DESIGN.md §16): entries replace the
    // engine's limit/threshold knobs at the top of their phase.
    // Knob values are derived config, not serialized state, so on
    // resume the prefix fromPhase < start_phase is re-applied below.
    // lint: cold-path once-per-phase policy application
    auto applyPolicy = [&](const PhasePolicy &pp) {
        std::uint32_t limit = mig_cfg.migrationLimitPages;
        if (mig_cfg.scaleLimitToFootprint)
            limit = static_cast<std::uint32_t>(
                std::max<std::uint64_t>(
                    64,
                    static_cast<std::uint64_t>(
                        static_cast<double>(
                            result.footprintPages) *
                        pp.migrationLimitFraction)));
        engine.reconfigure(limit, pp.poolSharerThreshold);
    };

    const bool resuming = star && hooks && hooks->resumeState &&
                          hooks->resumePhase > 0 &&
                          hooks->resumePhase < scale.phases;
    int start_phase = 0;
    if (resuming) {
        // lint: cold-path once-per-run resume restore; every field
        // is validated and any mismatch demotes to a cold run.
        trace::ByteReader r(hooks->resumeState->data(),
                            hooks->resumeState->size());
        std::uint64_t magic = 0, k = 0, n = 0;
        if (!r.getVarint(magic) || magic != checkpointMagic ||
            !r.getVarint(k) ||
            k != static_cast<std::uint64_t>(hooks->resumePhase) ||
            !pm.loadState(r) || !r.getVarint(n) ||
            n != cursor.size())
            return false;
        for (std::size_t t = 0; t < cursor.size(); ++t) {
            std::uint64_t c = 0;
            if (!r.getVarint(c) || c > trace.perThread[t].size())
                return false;
            cursor[t] = static_cast<std::size_t>(c);
        }
        if (!getRegionMigrations(r, pending_regions) ||
            !getPageMigrations(r, pending_pages) ||
            !engine.loadState(r) || !tlb_dir.loadState(r) ||
            !r.getVarint(n) || n != tlbs.size())
            return false;
        for (core::TlbAnnex &tlb : tlbs)
            if (!tlb.loadState(r))
                return false;
        if (!r.getVarint(n) ||
            n != static_cast<std::uint64_t>(hooks->resumePhase))
            return false;
        // lint: cold-path once-per-run resume restore
        result.checkpoints.assign(
            static_cast<std::size_t>(n), {});
        for (Checkpoint &cp : result.checkpoints)
            if (!decodeCheckpoint(r, cp))
                return false;
        if (r.remaining() != 0)
            return false;
        start_phase = hooks->resumePhase;
        result.resumedFromPhase = start_phase;
        for (const PhasePolicy &pp : setup.phasePolicies)
            if (pp.fromPhase < start_phase)
                applyPolicy(pp);
    } else {
        if (spanPages > 0) {
            pm.preallocate(spanLo, spanPages);
            if (star)
                tlb_dir.preallocate(spanLo, spanPages);
        }
        for (const auto &ft : trace.firstTouches)
            pm.touch(ft.page, socketOf(ft.thread));
    }

    // lint: cold-path once-per-run telemetry gate behind one
    // relaxed load; off in benchmarked replay.
    const bool sample_ts = obs::TimeSeriesSink::global().enabled();
    ReplayTelemetry telemetry;
    if (sample_ts)
        initReplayTelemetry(telemetry, result.timeseries, star,
                            scale.phases);

    const bool emit_state = star && hooks && hooks->onPhaseState;

    for (int phase = start_phase; phase < scale.phases; ++phase) {
        if (emit_state && phase > start_phase) {
            // lint: cold-path once-per-phase resume snapshot,
            // emitted before this phase's policy entries apply (the
            // image depends only on the prefix fromPhase < phase).
            std::vector<std::uint8_t> state;
            encodeResumeState(state, phase, pm, cursor,
                              pending_regions, pending_pages,
                              engine, tlb_dir, tlbs,
                              result.checkpoints);
            hooks->onPhaseState(phase, state);
        }
        // lint: cold-path once-per-phase policy schedule scan
        for (const PhasePolicy &pp : setup.phasePolicies)
            if (pp.fromPhase == phase)
                applyPolicy(pp);
        Checkpoint cp;
        cp.pageHome = snapshot(pm);
        cp.regionMigrations = std::move(pending_regions);
        cp.pageMigrations = std::move(pending_pages);
        pending_regions.clear();
        pending_pages.clear();

        std::uint64_t phase_end =
            static_cast<std::uint64_t>(phase + 1) *
            scale.phaseInstructions;

        if (star) {
            // Marker bits are set once per migration phase so hot,
            // never-evicted TLB entries still report (§III-D1).
            for (auto &tlb : tlbs)
                tlb.setMarkers();
        }

        for (ThreadId t = 0; t < trace.threads; ++t) {
            const auto &recs = trace.perThread[t];
            NodeId socket = socketOf(t);
            std::size_t &i = cursor[t];
            while (i < recs.size() && recs[i].instr <= phase_end) {
                PageNum page = pageNumber(recs[i].vaddr());
                // Consecutive records to the same page replay as
                // one batch: the page is mapped and TLB-resident
                // after the first access, so the remainder are
                // pure counter updates (identical results).
                std::size_t j = i + 1;
                while (j < recs.size() &&
                       recs[j].instr <= phase_end &&
                       pageNumber(recs[j].vaddr()) == page)
                    ++j;
                std::uint64_t run = j - i;
                pm.touch(page, socket);
                if (star)
                    tlbs[t].recordAccessRun(recs[i].vaddr(), run);
                else
                    perfect.recordAccess(
                        page, socket,
                        static_cast<std::uint32_t>(run));
                i = j;
            }
        }

        if (star) {
            for (auto &tlb : tlbs)
                tlb.flushAll();
            pending_regions = engine.decidePhase(
                tracker, pm, result.poolCapacityPages, phase + 1);
            // DiDi-style shootdowns: each migrated page only
            // interrupts the cores whose TLBs hold it (§III-D3).
            int ppr = tracker.pagesPerRegion();
            for (const auto &m : pending_regions) {
                PageNum first = tracker.firstPage(m.region);
                for (int p = 0; p < ppr; ++p) {
                    PageNum page = first + PageNum(p);
                    core::TlbHolderMask mask =
                        tlb_dir.holders(page);
                    tlb_dir.shootdown(page);
                    for (ThreadId t = 0; t < trace.threads; ++t)
                        if (mask.test(t))
                            tlbs[t].shootdown(page);
                }
            }
        } else {
            pending_pages = perfect.decidePhase(pm);
        }
        if (sample_ts)
            sampleReplayPhase(telemetry, result.timeseries,
                              static_cast<std::uint64_t>(phase + 1),
                              pending_regions.size(),
                              pending_pages.size(), star, tracker,
                              pm, setup.sys.poolNode(), tlbs,
                              tlb_dir);
        // lint: cold-path one checkpoint per phase
        result.checkpoints.push_back(std::move(cp));
    }

    result.migratedRegions = engine.migratedRegions();
    result.migratedPagesTotal =
        engine.migratedRegions() * tracker.pagesPerRegion() +
        perfect.migratedPages();
    result.poolMigrationFraction = engine.poolMigrationFraction();
    result.victimEvictions = engine.victimEvictions();
    result.pingPongSuppressed = engine.pingPongSuppressed();
    if (star) {
        result.pagesInPool = pm.pagesAt(setup.sys.poolNode());
        result.tlbShootdownsSent = tlb_dir.shootdownsSent();
        result.tlbShootdownsSaved = tlb_dir.shootdownsSaved();
    }
    // lint: cold-path once-per-run stats export behind one relaxed
    // load; off in benchmarked replay.
    if (obs::StatsSink::global().enabled()) {
        obs::Registry reg;
        engine.registerStats(reg, "engine");
        if (star)
            tlb_dir.registerStats(reg, "tlbDirectory");
        result.stats = reg.snapshot();
    }
    // lint: cold-path once-per-run audit export behind one relaxed
    // load; off in benchmarked replay.
    if (obs::AuditSink::global().enabled())
        result.audit = engine.audit();
    return true;
}

// lint: artifact-root step_b_checkpoint
TraceSimResult
TraceSim::runStaticOracle(const trace::WorkloadTrace &trace)
{
    const bool star = setup.sys.hasPool;
    const int nodes = setup.sys.sockets + (star ? 1 : 0);

    TraceSimResult result;
    result.footprintPages = pagesIn(trace.footprintBytes);
    result.poolCapacityPages =
        star ? static_cast<std::uint64_t>(
                   static_cast<double>(result.footprintPages) *
                   setup.sys.poolCapacityFraction)
             : 0;

    PageNum spanLo{0}, spanHi{0};
    std::uint64_t spanPages = 0;
    if (pageSpan(trace, spanLo, spanHi)) {
        std::uint64_t span = spanHi.value() - spanLo.value() + 1;
        if (span <= result.footprintPages + 1024)
            spanPages = span;
    }

    // A priori knowledge: feed the whole run into the oracle.
    core::OraclePlacement oracle(setup.sys.sockets);
    if (spanPages > 0)
        oracle.preallocate(spanLo, spanPages);
    for (ThreadId t = 0; t < trace.threads; ++t) {
        const auto &recs = trace.perThread[t];
        NodeId socket = socketOf(t);
        for (std::size_t i = 0; i < recs.size();) {
            PageNum page = pageNumber(recs[i].vaddr());
            std::size_t j = i + 1;
            while (j < recs.size() &&
                   pageNumber(recs[j].vaddr()) == page)
                ++j;
            oracle.recordAccess(
                page, socket, static_cast<std::uint32_t>(j - i));
            i = j;
        }
    }

    mem::PageMap pm(nodes);
    if (spanPages > 0)
        pm.preallocate(spanLo, spanPages);
    // Pages only touched during setup fall back to first touch.
    for (const auto &ft : trace.firstTouches)
        pm.touch(ft.page, socketOf(ft.thread));
    oracle.place(pm, star, result.poolCapacityPages,
                 setup.migration.poolSharerThreshold);

    auto map = snapshot(pm);
    for (int phase = 0; phase < scale.phases; ++phase) {
        Checkpoint cp;
        cp.pageHome = map;
        // lint: cold-path one checkpoint per phase
        result.checkpoints.push_back(std::move(cp));
    }
    if (star)
        result.pagesInPool = pm.pagesAt(setup.sys.poolNode());
    return result;
}

// lint: artifact-root step_b_checkpoint
bool
TraceSimResult::save(const std::string &path) const
{
    std::vector<std::uint8_t> buf = serialize();

    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    bool ok =
        std::fwrite(buf.data(), 1, buf.size(), f) == buf.size();
    std::fclose(f);
    return ok;
}

// lint: artifact-root step_b_checkpoint
std::vector<std::uint8_t>
TraceSimResult::serialize() const
{
    std::vector<std::uint8_t> buf;
    putVarint(buf, checkpointMagic);
    putVarint(buf, checkpoints.size());
    putVarint(buf, poolCapacityPages);
    putVarint(buf, footprintPages);
    putVarint(buf, migratedRegions);
    putVarint(buf, migratedPagesTotal);
    putVarint(buf, victimEvictions);
    putVarint(buf, pingPongSuppressed);
    putVarint(buf, pagesInPool);
    putDouble(buf, poolMigrationFraction);
    for (const Checkpoint &cp : checkpoints)
        encodeCheckpoint(buf, cp);
    putVarint(buf, replication.replicated.size());
    std::vector<PageNum> rep =
        sortedPages(replication.replicated);
    std::uint64_t prev = 0;
    for (PageNum page : rep) {
        putVarint(buf, page.value() - prev);
        prev = page.value();
    }
    putDouble(buf, replication.capacityOverhead);
    return buf;
}

bool
TraceSimResult::load(const std::string &path)
{
    std::vector<std::uint8_t> buf;
    if (!trace::readFileBytes(path, buf))
        return false;
    ByteReader r(buf.data(), buf.size());
    return deserialize(r) && r.remaining() == 0;
}

// lint: cold-path artifact decode, once per load
bool
TraceSimResult::deserialize(ByteReader &r)
{
    std::uint64_t magic = 0, n_cp = 0;
    if (!r.getVarint(magic) || magic != checkpointMagic ||
        !r.getVarint(n_cp))
        return false;
    std::uint64_t scalars[7] = {};
    for (std::uint64_t &s : scalars)
        if (!r.getVarint(s))
            return false;
    poolCapacityPages = scalars[0];
    footprintPages = scalars[1];
    migratedRegions = scalars[2];
    migratedPagesTotal = scalars[3];
    victimEvictions = scalars[4];
    pingPongSuppressed = scalars[5];
    pagesInPool = scalars[6];
    if (!getDouble(r, poolMigrationFraction))
        return false;
    if (n_cp > r.remaining())
        return false; // implausible count: refuse to allocate
    checkpoints.assign(n_cp, {});
    for (Checkpoint &cp : checkpoints)
        if (!decodeCheckpoint(r, cp))
            return false;
    std::uint64_t n_rep = 0;
    if (!r.getVarint(n_rep) || n_rep > r.remaining())
        return false;
    replication.replicated.clear();
    std::uint64_t page = 0;
    for (std::uint64_t i = 0; i < n_rep; ++i) {
        std::uint64_t delta = 0;
        if (!r.getVarint(delta))
            return false;
        page += delta;
        replication.replicated.insert(PageNum(page));
    }
    return getDouble(r, replication.capacityOverhead);
}

} // namespace driver
} // namespace starnuma
