file(REMOVE_RECURSE
  "libstarnuma_core.a"
)
