/**
 * @file
 * Simulation-scale knobs (§IV-A/§IV-D of the paper, scaled down for
 * laptop-class runs). The paper's methodology records one-billion-
 * instruction phases and simulates the first 10% of each in timing
 * detail; we keep the structure but shrink the per-thread instruction
 * volume. Fig 14's SC2/SC3 configurations are variations of this
 * struct.
 */

#ifndef STARNUMA_SIM_SCALE_HH
#define STARNUMA_SIM_SCALE_HH

#include <cstdint>

namespace starnuma
{

/** Scale parameters for the three-step methodology. */
struct SimScale
{
    /** Sockets in the system (paper: 16). */
    int sockets = 16;

    /** Sockets per chassis (paper: 4). */
    int socketsPerChassis = 4;

    /** Simulated cores per socket (Table II: 4). */
    int coresPerSocket = 4;

    /** Number of billion-instruction phases (paper: 5-10). */
    int phases = 5;

    /** Instructions per thread per phase (paper: 1e9). */
    std::uint64_t phaseInstructions = 400000;

    /**
     * Fraction of each phase simulated in timing detail
     * (paper: 100M of 1B = 10%).
     */
    double detailFraction = 0.10;

    /**
     * Warm-up instructions per thread before stats collection in each
     * timing window (paper: 10-20M of 100M; we keep the same 15%).
     */
    double warmupFraction = 0.15;

    /** Total logical threads (one per simulated core). */
    int
    threads() const
    {
        return sockets * coresPerSocket;
    }

    /** Chassis count. */
    int
    chassis() const
    {
        return sockets / socketsPerChassis;
    }

    /** Instructions per thread covered by one timing window. */
    std::uint64_t
    detailInstructions() const
    {
        return static_cast<std::uint64_t>(
            static_cast<double>(phaseInstructions) *
            detailFraction);
    }

    /** Default configuration (SC1 in Fig 14). */
    static SimScale sc1() { return SimScale{}; }

    /** SC2: 3x more detailed instructions per phase. */
    static SimScale
    sc2()
    {
        SimScale s;
        s.detailFraction = 0.30;
        return s;
    }

    /** SC3: doubled system scale (8 cores/socket, 128 threads). */
    static SimScale
    sc3()
    {
        SimScale s;
        s.coresPerSocket = 8;
        return s;
    }

    /** Quick configuration for unit tests. */
    static SimScale
    tiny()
    {
        SimScale s;
        s.phases = 2;
        s.phaseInstructions = 40000;
        return s;
    }
};

} // namespace starnuma

#endif // STARNUMA_SIM_SCALE_HH
