
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/link.cc" "src/CMakeFiles/starnuma_topology.dir/topology/link.cc.o" "gcc" "src/CMakeFiles/starnuma_topology.dir/topology/link.cc.o.d"
  "/root/repo/src/topology/system_config.cc" "src/CMakeFiles/starnuma_topology.dir/topology/system_config.cc.o" "gcc" "src/CMakeFiles/starnuma_topology.dir/topology/system_config.cc.o.d"
  "/root/repo/src/topology/topology.cc" "src/CMakeFiles/starnuma_topology.dir/topology/topology.cc.o" "gcc" "src/CMakeFiles/starnuma_topology.dir/topology/topology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/starnuma_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
