#!/usr/bin/env bash
# Build and run the tier-1 test suite under ThreadSanitizer and
# ASan+UBSan. The parallel experiment engine (sim/parallel.hh and
# everything fanned out over it) must be clean under both; CI runs
# this script on every change to the driver or pool.
#
# Usage: scripts/run_sanitizers.sh [thread|address ...]
#   (default: both)
set -euo pipefail

cd "$(dirname "$0")/.."

sanitizers=("$@")
if [ ${#sanitizers[@]} -eq 0 ]; then
    sanitizers=(thread address)
fi

for san in "${sanitizers[@]}"; do
    build="build-${san}san"
    echo "=== ${san} sanitizer: configuring ${build} ==="
    cmake -B "${build}" -S . \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DSTARNUMA_SANITIZE="${san}"
    cmake --build "${build}" -j "$(nproc)"

    echo "=== ${san} sanitizer: ctest ==="
    # halt_on_error makes ctest report sanitizer findings as
    # failures instead of burying them in the log.
    case "${san}" in
      thread)
        export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1"
        ;;
      address)
        export ASAN_OPTIONS="halt_on_error=1 detect_leaks=0"
        export UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1"
        ;;
    esac
    ctest --test-dir "${build}" --output-on-failure -j "$(nproc)"
done

echo "=== all sanitizer runs clean ==="
