file(REMOVE_RECURSE
  "CMakeFiles/starnuma_trace.dir/trace/capture.cc.o"
  "CMakeFiles/starnuma_trace.dir/trace/capture.cc.o.d"
  "CMakeFiles/starnuma_trace.dir/trace/profile.cc.o"
  "CMakeFiles/starnuma_trace.dir/trace/profile.cc.o.d"
  "CMakeFiles/starnuma_trace.dir/trace/trace.cc.o"
  "CMakeFiles/starnuma_trace.dir/trace/trace.cc.o.d"
  "libstarnuma_trace.a"
  "libstarnuma_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starnuma_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
