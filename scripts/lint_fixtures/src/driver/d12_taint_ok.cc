// Fixture: D12 escape hatches and allowed patterns — the same flow
// shapes as d12_taint_flow.cc, each neutralized the sanctioned way:
// a reviewed `// lint: taint-ok` on the sink line, the same escape
// on the source line (killing every downstream flow), and a
// documented STARNUMA_* getenv gate, which is recorded in the
// artifact manifest instead of tainting. Must stay clean.
// Never compiled; consumed by starnuma_taint.py --self-test.

namespace starnuma
{

struct TimeSeries;

// Escape on the sink line: the emission is reviewed (a host-side
// diagnostics channel, not a deterministic artifact).
// lint: cold-path fixture scaffolding
void
d12EscapedSink(TimeSeries &series, int stream)
{
    const char *home = getenv("HOME");
    double v = static_cast<double>(home != nullptr);
    // lint: taint-ok fixture: host-diagnostics channel, reviewed
    series.sample(stream, 0, v);
}

// Escape on the source line: every flow from this read is dead at
// birth, so the downstream emission needs no annotation.
unsigned long
d12ReviewedNow()
{
    // lint: taint-ok fixture: wall-clock is the measured quantity
    auto now = std::chrono::steady_clock::now();
    return static_cast<unsigned long>(
        now.time_since_epoch().count());
}

// lint: cold-path fixture scaffolding
void
d12EmitReviewed(TimeSeries &series, int stream)
{
    series.sample(stream, 0,
                  static_cast<double>(d12ReviewedNow()));
}

// A STARNUMA_* getenv line is a documented configuration gate, not
// a taint source; the analyzer records the variable name in the
// artifact input manifest.
int
d12GateThreads()
{
    const char *v = getenv("STARNUMA_FIXTURE_THREADS");
    return v != nullptr ? 1 : 0;
}

} // namespace starnuma
