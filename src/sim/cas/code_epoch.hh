/**
 * @file
 * Build-time code-epoch hashes for the artifact cache keys
 * (DESIGN.md §16). Each artifact's epoch is the FNV-1a-128 digest
 * of its source-file closure as recorded in
 * scripts/artifact_inputs.json (the D13 manifest), so any edit to
 * code that can influence the artifact's bytes changes the epoch
 * and invalidates every cached object derived from it.
 *
 * The implementation is generated into the build tree by
 * scripts/gen_code_epoch.py; when the generator cannot run (no
 * Python at build time) a stub returns "unknown" and the cache
 * layer disables itself rather than risk stale hits.
 */

#ifndef STARNUMA_SIM_CAS_CODE_EPOCH_HH
#define STARNUMA_SIM_CAS_CODE_EPOCH_HH

#include <string>

namespace starnuma
{
namespace cas
{

/**
 * Epoch digest for @p artifact — "step_a_trace",
 * "step_b_checkpoint", or "pipeline" (the whole-src closure used
 * for end-to-end experiment results). Unknown names and generator
 * failure both return "unknown".
 */
std::string codeEpoch(const std::string &artifact);

} // namespace cas
} // namespace starnuma

#endif // STARNUMA_SIM_CAS_CODE_EPOCH_HH
