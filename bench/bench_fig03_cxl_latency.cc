/**
 * @file
 * Fig 3 reproduction: the CXL memory pool access latency breakdown
 * (25 ns per CXL port roundtrip, 20 ns retimer, 10 ns flight, 20 ns
 * MHD internals -> 100 ns overhead; 180 ns end to end), plus the
 * §II-C first-order AMAT estimate the breakdown feeds (160 ns
 * baseline -> 112 ns with the pool).
 */

#include <benchmark/benchmark.h>

#include "analytic/amat.hh"
#include "bench_util.hh"
#include "sim/table.hh"

using namespace starnuma;

namespace
{

void
BM_Fig3_CxlBreakdown(benchmark::State &state)
{
    auto cfg = topology::SystemConfig::starnuma16();
    double total = 0;
    for (auto _ : state) {
        total = analytic::poolAccessLatencyNs(cfg);
        benchmark::DoNotOptimize(total);
    }
    state.counters["pool_ns"] = total;
}
BENCHMARK(BM_Fig3_CxlBreakdown)->Iterations(1);

} // anonymous namespace

int
main(int argc, char **argv)
{
    benchutil::initBench(&argc, argv);
    int rc = benchutil::runBenchmarks(argc, argv);

    for (auto cfg : {topology::SystemConfig::starnuma16(),
                     topology::SystemConfig::starnumaSwitched()}) {
        TextTable t({"component", "roundtrip ns"});
        double sum = 0;
        for (const auto &part : analytic::cxlLatencyBreakdown(cfg)) {
            t.addRow({part.name, TextTable::num(part.ns, 0)});
            sum += part.ns;
        }
        t.addRow({"total CXL overhead", TextTable::num(sum, 0)});
        t.addRow({"+ on-processor + DRAM",
                  TextTable::num(cfg.localNs(), 0)});
        t.addRow({"end-to-end pool access",
                  TextTable::num(analytic::poolAccessLatencyNs(cfg),
                                 0)});
        benchutil::printSection(
            "Fig 3: pool access latency breakdown (" + cfg.name +
                ")",
            t.str());
    }

    auto cfg = topology::SystemConfig::starnuma16();
    TextTable e({"placement", "first-order AMAT ns", "paper"});
    e.addRow({"baseline (36% fully shared)",
              TextTable::num(
                  analytic::firstOrderAmatNs(cfg, 0.36, false), 0),
              "160"});
    e.addRow({"pool for inter-chassis share",
              TextTable::num(
                  analytic::firstOrderAmatNs(cfg, 0.36, true), 0),
              "112"});
    benchutil::printSection("Sec II-C first-order AMAT estimate",
                            e.str());
    return rc;
}
