// Fixture: D6 — include cycle. This header and d6_cycle_b.hh
// include each other; the cycle must be reported exactly once,
// anchored at this file (the lexicographically-first member of the
// cycle). There is deliberately no escape hatch for cycles.

#ifndef STARNUMA_SIM_D6_CYCLE_A_HH
#define STARNUMA_SIM_D6_CYCLE_A_HH

#include "sim/d6_cycle_b.hh" // expect-lint: D6

namespace fixture
{

struct CycleA
{
    int placeholder = 0;
};

} // namespace fixture

#endif // STARNUMA_SIM_D6_CYCLE_A_HH
