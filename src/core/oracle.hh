/**
 * @file
 * Oracular static initial placement (§V-B): using a priori
 * knowledge of the workload's entire access pattern, place every
 * page once, before execution, with no runtime migration. On the
 * baseline, each page goes to its majority-accessor socket; on
 * StarNUMA, the hottest widely shared pages additionally go to the
 * pool, up to its capacity.
 */

#ifndef STARNUMA_CORE_ORACLE_HH
#define STARNUMA_CORE_ORACLE_HH

#include <cstdint>

#include "core/page_stats.hh"
#include "mem/page_map.hh"
#include "sim/types.hh"

namespace starnuma
{
namespace core
{

/** Builds a static placement from whole-run access statistics. */
class OraclePlacement
{
  public:
    explicit OraclePlacement(int sockets) : stats(sockets) {}

    /**
     * Switch the access-count table to flat storage over
     * [base, base + pages) (see PageAccessStats::preallocate).
     */
    void
    preallocate(PageNum base, std::size_t pages)
    {
        stats.preallocate(base, pages);
    }

    /** Whole-run access knowledge feed (all phases). */
    // lint: hot-path one count per replayed record batch (oracle)
    void
    recordAccess(PageNum page, NodeId socket,
                 std::uint32_t count = 1)
    {
        stats.record(page, socket, count);
    }

    /**
     * Write the placement into @p pages (replacing any existing
     * mapping for touched pages).
     *
     * @param use_pool place widely shared pages in the pool.
     * @param pool_capacity_pages pool space limit.
     * @param pool_sharer_threshold sharing degree for pool
     *        placement (paper: 8).
     * @return number of pages placed in the pool.
     */
    std::uint64_t place(mem::PageMap &pages, bool use_pool,
                        std::uint64_t pool_capacity_pages,
                        int pool_sharer_threshold = 8);

    const PageAccessStats &accessStats() const { return stats; }

  private:
    PageAccessStats stats;
};

} // namespace core
} // namespace starnuma

#endif // STARNUMA_CORE_ORACLE_HH
