#!/usr/bin/env python3
"""Audit and garbage-collection tool for the content-addressed
artifact store (DESIGN.md §16, src/sim/cas/store.cc).

The store needs no C++ toolchain to audit: every object file embeds
its key text, and the hash is FNV-1a-128 (bit-exact Python twin in
gen_code_epoch.py). Commands:

    ls <dir>                 one line per object: kind, payload
                             bytes, workload, key hash
    verify <dir>             full integrity check of every object
                             (header, embedded key, filename, payload
                             hash) plus key-schema validation against
                             scripts/artifact_inputs.json and
                             code-epoch staleness detection
    gc <dir> --max-bytes N   evict oldest-modification-time objects
                             until total size <= N (0 empties)
    gc <dir> --drop-stale    also evict objects whose code.epoch no
                             longer matches the current tree
    --self-test              exercise the parser/verifier against
                             fixture objects written by this script

Exit status: 0 clean, 1 findings (corrupt/invalid objects), 2 usage.
"""

import argparse
import json
import os
import shutil
import struct
import sys
import tempfile

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from gen_code_epoch import FNV_OFFSET, fnv1a128, hex128, epochs

MAGIC = b"STARCAS1"
HEADER = struct.Struct("<8sQQQQQ")  # magic, version, klen, plen, hi, lo
VERSION = 1

# Which code-epoch entry guards each artifact kind. step_b_state
# deliberately keys by the *step_b_checkpoint* closure (the whole
# replay loop), the conservative superset of the state encoder's own
# files; experiment_result keys by the whole-tree "pipeline" epoch.
KIND_EPOCH = {
    "step_a_trace": "step_a_trace",
    "step_b_checkpoint": "step_b_checkpoint",
    "step_b_state": "step_b_checkpoint",
    "experiment_result": "pipeline",
}


class Finding(Exception):
    pass


def parse_object(path):
    """Header + key text + payload of one .cas file.
    Raises Finding on any structural problem."""
    try:
        with open(path, "rb") as fh:
            blob = fh.read()
    except OSError as e:
        raise Finding("unreadable: %s" % e)
    if len(blob) < HEADER.size:
        raise Finding("truncated header (%d bytes)" % len(blob))
    magic, version, klen, plen, hi, lo = HEADER.unpack_from(blob)
    if magic != MAGIC:
        raise Finding("bad magic %r" % magic)
    if version != VERSION:
        raise Finding("unsupported version %d" % version)
    if len(blob) != HEADER.size + klen + plen:
        raise Finding("size mismatch: header says %d, file has %d"
                      % (HEADER.size + klen + plen, len(blob)))
    key = blob[HEADER.size:HEADER.size + klen]
    payload = blob[HEADER.size + klen:]
    try:
        key_text = key.decode("utf-8")
    except UnicodeDecodeError:
        raise Finding("key text is not UTF-8")
    return key_text, payload, (hi << 64) | lo


def key_fields(key_text):
    """The canonical multi-line "field=value" key as a dict."""
    fields = {}
    for line in key_text.splitlines():
        if not line:
            continue
        if "=" not in line:
            raise Finding("malformed key line %r" % line)
        name, value = line.split("=", 1)
        if name in fields:
            raise Finding("duplicate key field %r" % name)
        fields[name] = value
    return fields


def list_objects(store_dir):
    """Sorted absolute paths of every .cas object."""
    objects = os.path.join(store_dir, "objects")
    out = []
    if not os.path.isdir(objects):
        return out
    for shard in sorted(os.listdir(objects)):
        sub = os.path.join(objects, shard)
        if not os.path.isdir(sub):
            continue
        for name in sorted(os.listdir(sub)):
            if name.endswith(".cas"):
                out.append(os.path.join(sub, name))
    return out


def load_manifest(root):
    path = os.path.join(root, "scripts", "artifact_inputs.json")
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def validate_key(fields, manifest):
    """Key text vs the declared-input schema: the object's kind must
    be a manifest artifact, every declared cache-key field must be
    present, and nothing undeclared may leak in (extra fields would
    mean the producer keys on inputs the analyzer never audited)."""
    kind = fields.get("kind")
    if kind is None:
        raise Finding("key has no 'kind' field")
    art = manifest.get("artifacts", {}).get(kind)
    if art is None:
        raise Finding("unknown artifact kind %r" % kind)
    declared = set(art.get("cache_key", []))
    present = set(fields) - {"kind"}
    env = {f for f in present if f.startswith("env.")}
    missing = declared - present
    if missing:
        raise Finding("kind %s: missing declared key fields %s"
                      % (kind, sorted(missing)))
    extra = present - declared - env
    if extra:
        raise Finding("kind %s: undeclared key fields %s"
                      % (kind, sorted(extra)))
    return kind


def object_is_stale(fields, kind, epoch_table):
    """True when the object's code.epoch no longer matches the
    current source tree (safe to keep — it can only miss — but GC
    fodder)."""
    want = epoch_table.get(KIND_EPOCH.get(kind, ""), None)
    have = fields.get("code.epoch")
    return have is not None and want is not None and have != want


def cmd_ls(args, root):
    rows = []
    for path in list_objects(args.store):
        try:
            key_text, payload, _ = parse_object(path)
            fields = key_fields(key_text)
            rows.append((fields.get("kind", "?"), len(payload),
                         fields.get("workload.name", "-"),
                         os.path.basename(path)[:16]))
        except Finding as e:
            rows.append(("CORRUPT", 0, str(e),
                         os.path.basename(path)[:16]))
    for kind, size, workload, name in rows:
        print("%-18s %10d  %-12s %s" % (kind, size, workload, name))
    print("%d object(s)" % len(rows))
    return 0


def cmd_verify(args, root):
    manifest = load_manifest(root)
    epoch_table = epochs(root, os.path.join(
        root, "scripts", "artifact_inputs.json"))
    bad = stale = ok = 0
    for path in list_objects(args.store):
        rel = os.path.relpath(path, args.store)
        try:
            key_text, payload, stored_hash = parse_object(path)
            if fnv1a128(payload) != stored_hash:
                raise Finding("payload hash mismatch")
            name_hex = os.path.basename(path)[:-len(".cas")]
            if hex128(fnv1a128(key_text.encode("utf-8"))) != \
                    name_hex:
                raise Finding("filename does not hash the "
                              "embedded key")
            fields = key_fields(key_text)
            kind = validate_key(fields, manifest)
            if object_is_stale(fields, kind, epoch_table):
                stale += 1
                print("STALE   %s (code.epoch behind the tree)"
                      % rel)
            else:
                ok += 1
        except Finding as e:
            bad += 1
            print("INVALID %s: %s" % (rel, e))
    print("cas-verify: %d ok, %d stale, %d invalid"
          % (ok, stale, bad))
    return 1 if bad else 0


def cmd_gc(args, root):
    entries = []
    for path in list_objects(args.store):
        st = os.stat(path)
        entries.append((st.st_mtime, st.st_size, path))
    entries.sort()  # oldest first
    total = sum(e[1] for e in entries)
    removed = 0

    if args.drop_stale:
        manifest = load_manifest(root)
        epoch_table = epochs(root, os.path.join(
            root, "scripts", "artifact_inputs.json"))
        kept = []
        for mtime, size, path in entries:
            try:
                key_text, _, _ = parse_object(path)
                fields = key_fields(key_text)
                kind = validate_key(fields, manifest)
                if object_is_stale(fields, kind, epoch_table):
                    raise Finding("stale")
                kept.append((mtime, size, path))
            except Finding:
                os.remove(path)
                total -= size
                removed += 1
        entries = kept

    if args.max_bytes is not None:
        while entries and total > args.max_bytes:
            _, size, path = entries.pop(0)
            os.remove(path)
            total -= size
            removed += 1
    print("cas-gc: removed %d object(s), %d byte(s) remain"
          % (removed, total))
    return 0


def write_object(store_dir, key_text, payload):
    """Python twin of Store::putObject, for the self-test."""
    key = key_text.encode("utf-8")
    h = fnv1a128(payload)
    name = hex128(fnv1a128(key))
    shard = os.path.join(store_dir, "objects", name[:2])
    os.makedirs(shard, exist_ok=True)
    path = os.path.join(shard, name + ".cas")
    blob = HEADER.pack(MAGIC, VERSION, len(key), len(payload),
                       (h >> 64) & ((1 << 64) - 1),
                       h & ((1 << 64) - 1)) + key + payload
    with open(path, "wb") as fh:
        fh.write(blob)
    return path


def self_test(root):
    manifest = load_manifest(root)
    epoch_table = epochs(root, os.path.join(
        root, "scripts", "artifact_inputs.json"))
    art = manifest["artifacts"]["step_a_trace"]
    fields = {"kind": "step_a_trace"}
    for f in art["cache_key"]:
        fields[f] = "x"
    fields["code.epoch"] = epoch_table["step_a_trace"]
    key_text = "".join("%s=%s\n" % kv for kv in fields.items())
    payload = b"\x01\x02\x03payload"

    tmp = tempfile.mkdtemp(prefix="cas_selftest_")
    failures = []

    def expect(cond, what):
        if not cond:
            failures.append(what)

    try:
        path = write_object(tmp, key_text, payload)
        kt, pl, h = parse_object(path)
        expect(kt == key_text and pl == payload, "round-trip")
        expect(fnv1a128(pl) == h, "payload hash")
        expect(validate_key(key_fields(kt), manifest) ==
               "step_a_trace", "schema validation")
        expect(not object_is_stale(key_fields(kt), "step_a_trace",
                                   epoch_table), "fresh epoch")

        # A stale epoch is detected but is not corruption.
        stale_fields = dict(fields, **{"code.epoch": "0" * 32})
        expect(object_is_stale(stale_fields, "step_a_trace",
                               epoch_table), "stale epoch detected")

        # An undeclared key field must fail validation.
        bad_fields = dict(fields, **{"wallclock.start": "12:00"})
        try:
            validate_key(bad_fields, manifest)
            expect(False, "undeclared field accepted")
        except Finding:
            pass

        # Flip one payload byte: hash mismatch.
        with open(path, "r+b") as fh:
            fh.seek(-1, os.SEEK_END)
            last = fh.read(1)
            fh.seek(-1, os.SEEK_END)
            fh.write(bytes([last[0] ^ 0xFF]))
        _, pl, h = parse_object(path)
        expect(fnv1a128(pl) != h, "corruption detected")

        # Truncate mid-payload: structural finding.
        with open(path, "r+b") as fh:
            fh.truncate(HEADER.size + len(key_text) + 1)
        try:
            parse_object(path)
            expect(False, "truncation accepted")
        except Finding:
            pass

        # GC to zero empties the store.
        ns = argparse.Namespace(store=tmp, max_bytes=0,
                                drop_stale=False)
        cmd_gc(ns, root)
        expect(list_objects(tmp) == [], "gc empties")
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

    if failures:
        print("cas-tool self-test FAILED: %s" % ", ".join(failures))
        return 1
    print("cas-tool self-test passed")
    return 0


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    ap.add_argument("--self-test", action="store_true")
    sub = ap.add_subparsers(dest="cmd")
    p_ls = sub.add_parser("ls")
    p_ls.add_argument("store")
    p_vf = sub.add_parser("verify")
    p_vf.add_argument("store")
    p_gc = sub.add_parser("gc")
    p_gc.add_argument("store")
    p_gc.add_argument("--max-bytes", type=int, default=None)
    p_gc.add_argument("--drop-stale", action="store_true")
    args = ap.parse_args(argv)

    if args.self_test:
        return self_test(args.root)
    if args.cmd == "ls":
        return cmd_ls(args, args.root)
    if args.cmd == "verify":
        return cmd_verify(args, args.root)
    if args.cmd == "gc":
        return cmd_gc(args, args.root)
    ap.print_help()
    return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
