file(REMOVE_RECURSE
  "CMakeFiles/starnuma_analytic.dir/analytic/amat.cc.o"
  "CMakeFiles/starnuma_analytic.dir/analytic/amat.cc.o.d"
  "libstarnuma_analytic.a"
  "libstarnuma_analytic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starnuma_analytic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
