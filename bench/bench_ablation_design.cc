/**
 * @file
 * Design-space ablations for the knobs §III-D calls out:
 *  - tracker counter width (T0 / T4 / T16), extending Fig 8a's
 *    T16-vs-T0 comparison across the full T_i family;
 *  - region size (§III-D4's precision-vs-overhead trade-off);
 *  - hardware-assisted vs conventional software TLB shootdowns
 *    (§III-D3's motivation for adopting DiDi-style support);
 *  - the literal random(sharers) destination of Algorithm 1 vs the
 *    stay-at-a-sharer refinement (DESIGN.md deviation).
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"
#include "driver/timing_sim.hh"
#include "sim/table.hh"

using namespace starnuma;
using benchutil::benchScale;

namespace
{

std::vector<std::string>
ablationWorkloads()
{
    if (benchutil::fastMode())
        return {"bfs"};
    return {"bfs", "sssp", "masstree"};
}

double
speedupWith(const std::string &workload,
            const driver::SystemSetup &setup,
            driver::TimingOptions options = {})
{
    SimScale scale = benchScale();
    const auto &trace = driver::workloadTrace(workload, scale);
    driver::TraceSim tsim(setup, scale);
    auto placement = tsim.run(trace);
    driver::TimingSim timing(setup, scale, options);
    auto m = timing.run(trace, placement);
    const auto &base = benchutil::cachedRun(
        workload, driver::SystemSetup::baseline(), scale);
    return m.speedupOver(base.metrics);
}

void
BM_Ablation(benchmark::State &state, const std::string &workload)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(benchutil::speedupOverBaseline(
            workload, driver::SystemSetup::starnuma(),
            benchScale()));
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    benchutil::initBench(&argc, argv);
    for (const auto &w : ablationWorkloads())
        benchmark::RegisterBenchmark(("Ablation/" + w).c_str(),
                                     BM_Ablation, w)
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    int rc = benchutil::runBenchmarks(argc, argv);

    // 1) Tracker width sweep.
    {
        TextTable t({"workload", "T0", "T4", "T16"});
        for (const auto &w : ablationWorkloads()) {
            std::vector<std::string> row{w};
            for (int bits : {0, 4, 16}) {
                driver::SystemSetup s =
                    driver::SystemSetup::starnuma();
                s.name = "starnuma-t" + std::to_string(bits);
                s.migration.counterBits = bits;
                row.push_back(
                    TextTable::num(speedupWith(w, s), 2) + "x");
            }
            t.addRow(row);
        }
        benchutil::printSection(
            "Ablation: tracker counter width T_i", t.str());
    }

    // 2) Region size sweep (§III-D4).
    {
        TextTable t({"workload", "4 KB", "16 KB", "64 KB",
                     "256 KB"});
        for (const auto &w : ablationWorkloads()) {
            std::vector<std::string> row{w};
            for (Addr kb : {4, 16, 64, 256}) {
                driver::SystemSetup s =
                    driver::SystemSetup::starnuma();
                s.name = "starnuma-r" + std::to_string(kb);
                s.regionBytes = kb * 1024;
                row.push_back(
                    TextTable::num(speedupWith(w, s), 2) + "x");
            }
            t.addRow(row);
        }
        benchutil::printSection(
            "Ablation: region size (precision vs metadata "
            "overhead, Sec III-D4)",
            t.str());
    }

    // 3) Hardware vs software TLB shootdowns (§III-D3).
    {
        TextTable t({"workload", "hardware (DiDi-style)",
                     "software (IPI every core)"});
        for (const auto &w : ablationWorkloads()) {
            driver::SystemSetup s = driver::SystemSetup::starnuma();
            driver::TimingOptions sw;
            sw.softwareShootdowns = true;
            t.addRow({w,
                      TextTable::num(speedupWith(w, s), 2) + "x",
                      TextTable::num(speedupWith(w, s, sw), 2) +
                          "x"});
        }
        benchutil::printSection(
            "Ablation: TLB shootdown support (Sec III-D3 — "
            "software shootdowns erode the gains)",
            t.str());
    }

    // 4) Literal Algorithm 1 destination vs stay-at-a-sharer.
    {
        TextTable t({"workload", "stay-at-a-sharer (default)",
                     "literal random(sharers)"});
        for (const auto &w : ablationWorkloads()) {
            driver::SystemSetup lit = driver::SystemSetup::starnuma();
            lit.name = "starnuma-literal";
            lit.migration.randomSharerReshuffle = true;
            t.addRow(
                {w,
                 TextTable::num(
                     speedupWith(w, driver::SystemSetup::starnuma()),
                     2) + "x",
                 TextTable::num(speedupWith(w, lit), 2) + "x"});
        }
        benchutil::printSection(
            "Ablation: narrow-region destination policy", t.str());
    }
    return rc;
}
