/**
 * @file
 * Differential test harness for the flat hash containers
 * (sim/flat_map.hh): every operation of a long randomized sequence
 * is mirrored against the std::unordered_map/set oracle and the two
 * containers are cross-checked, plus directed cases for the edges
 * the fuzz loop reaches rarely — tombstone churn, rehash during
 * iteration-order checks, erase(iterator) validity, and the
 * insertion-order contract lint rule D1 relies on.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "sim/flat_map.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace starnuma
{
namespace
{

using Oracle = std::unordered_map<std::uint64_t, std::uint64_t>;
using Flat = FlatMap<std::uint64_t, std::uint64_t>;

/** Full cross-check: same size, same pairs, both directions. */
void
expectEqual(const Flat &flat, const Oracle &oracle)
{
    ASSERT_EQ(flat.size(), oracle.size());
    for (const auto &[k, v] : oracle) {
        auto it = flat.find(k);
        ASSERT_NE(it, flat.end()) << "oracle key " << k
                                  << " missing from FlatMap";
        EXPECT_EQ(it->second, v) << "value mismatch for key " << k;
    }
    std::size_t seen = 0;
    for (const auto &[k, v] : flat) {
        auto it = oracle.find(k);
        ASSERT_NE(it, oracle.end())
            << "FlatMap key " << k << " missing from oracle";
        EXPECT_EQ(it->second, v);
        ++seen;
    }
    EXPECT_EQ(seen, flat.size());
}

/**
 * ~1e6 randomized operations mirrored against the oracle. Narrow
 * key ranges force collisions, erase/re-insert cycles, and
 * tombstone-triggered rebuilds; periodic full cross-checks catch
 * any divergence close to the operation that caused it.
 */
TEST(FlatMapDifferential, RandomizedOpsMatchUnorderedMap)
{
    struct Band
    {
        std::uint64_t range; // key space width
        std::uint64_t base;  // key space offset
    };
    // Dense-from-zero (page-number-like), offset dense, and sparse
    // 64-bit keys exercise different probe patterns.
    const Band bands[] = {
        {512, 0},
        {4096, 0x10000000 / 4096},
        {~std::uint64_t(0), 0},
    };
    for (const Band &band : bands) {
        Rng rng(taskSeed({"flat_map_diff"}, band.range));
        Flat flat;
        Oracle oracle;
        const int ops = 350000;
        for (int op = 0; op < ops; ++op) {
            std::uint64_t key =
                band.base + (band.range == ~std::uint64_t(0)
                                 ? rng.next64()
                                 : rng.next64() % band.range);
            switch (rng.range32(10)) {
            case 0:
            case 1:
            case 2: { // try_emplace
                auto [fit, finserted] =
                    flat.try_emplace(key, op);
                auto [oit, oinserted] = oracle.try_emplace(
                    key, static_cast<std::uint64_t>(op));
                EXPECT_EQ(finserted, oinserted);
                EXPECT_EQ(fit->second, oit->second);
                break;
            }
            case 3: { // operator[] (insert or overwrite)
                flat[key] = op;
                oracle[key] = op;
                break;
            }
            case 4: { // insert (pair)
                auto f = flat.insert(
                    {key, static_cast<std::uint64_t>(op)});
                auto o = oracle.insert(
                    {key, static_cast<std::uint64_t>(op)});
                EXPECT_EQ(f.second, o.second);
                break;
            }
            case 5:
            case 6: { // erase by key
                EXPECT_EQ(flat.erase(key), oracle.erase(key));
                break;
            }
            case 7: { // find + contains + count
                auto fit = flat.find(key);
                auto oit = oracle.find(key);
                EXPECT_EQ(fit == flat.end(),
                          oit == oracle.end());
                if (oit != oracle.end()) {
                    EXPECT_EQ(fit->second, oit->second);
                }
                EXPECT_EQ(flat.contains(key),
                          oracle.count(key) == 1);
                EXPECT_EQ(flat.count(key), oracle.count(key));
                break;
            }
            case 8: { // at() on a key known to exist
                if (!oracle.empty()) {
                    std::uint64_t k = oracle.begin()->first;
                    EXPECT_EQ(flat.at(k), oracle.at(k));
                }
                break;
            }
            case 9: { // rare structural ops
                if (rng.range32(1000) == 0) {
                    flat.clear();
                    oracle.clear();
                } else if (rng.range32(100) == 0) {
                    flat.reserve(flat.size() +
                                 rng.range32(1000));
                }
                break;
            }
            }
            EXPECT_EQ(flat.size(), oracle.size());
            EXPECT_EQ(flat.empty(), oracle.empty());
            if (op % 25000 == 0)
                expectEqual(flat, oracle);
        }
        expectEqual(flat, oracle);
    }
}

/** FlatSet mirrored against std::unordered_set. */
TEST(FlatMapDifferential, RandomizedSetOpsMatchUnorderedSet)
{
    Rng rng(taskSeed({"flat_set_diff"}));
    FlatSet<std::uint64_t> flat;
    std::unordered_set<std::uint64_t> oracle;
    for (int op = 0; op < 200000; ++op) {
        std::uint64_t key = rng.next64() % 2048;
        switch (rng.range32(4)) {
        case 0:
        case 1: {
            auto [it, inserted] = flat.insert(key);
            EXPECT_EQ(inserted, oracle.insert(key).second);
            EXPECT_EQ(*it, key);
            break;
        }
        case 2:
            EXPECT_EQ(flat.erase(key), oracle.erase(key));
            break;
        case 3:
            EXPECT_EQ(flat.contains(key),
                      oracle.count(key) == 1);
            EXPECT_EQ(flat.find(key) == flat.end(),
                      oracle.find(key) == oracle.end());
            break;
        }
        EXPECT_EQ(flat.size(), oracle.size());
    }
    for (std::uint64_t k : flat)
        EXPECT_TRUE(oracle.count(k) == 1);
    for (std::uint64_t k : oracle)
        EXPECT_TRUE(flat.contains(k));
}

/** Strong-type keys (the map's primary use) behave identically. */
TEST(FlatMapDifferential, StrongTypedKeys)
{
    FlatMap<PageNum, int> flat;
    std::unordered_map<std::uint64_t, int> oracle;
    Rng rng(taskSeed({"flat_map_strong"}));
    for (int op = 0; op < 50000; ++op) {
        std::uint64_t raw = rng.next64() % 1024;
        if (rng.range32(3) == 0) {
            EXPECT_EQ(flat.erase(PageNum(raw)),
                      oracle.erase(raw));
        } else {
            flat[PageNum(raw)] = op;
            oracle[raw] = op;
        }
    }
    ASSERT_EQ(flat.size(), oracle.size());
    for (const auto &[k, v] : oracle)
        EXPECT_EQ(flat.at(PageNum(k)), v);
}

// --- Insertion-order contract (what lint rule D1 relies on) ---

TEST(FlatMapOrder, IterationFollowsInsertionOrder)
{
    FlatMap<std::uint64_t, int> m;
    std::vector<std::uint64_t> inserted;
    Rng rng(taskSeed({"flat_map_order"}));
    while (inserted.size() < 1000) {
        std::uint64_t k = rng.next64();
        if (m.try_emplace(k, 0).second)
            inserted.push_back(k);
    }
    std::size_t i = 0;
    for (const auto &[k, v] : m)
        EXPECT_EQ(k, inserted[i++]);
    EXPECT_EQ(i, inserted.size());
}

TEST(FlatMapOrder, OrderSurvivesEraseAndRehash)
{
    FlatMap<std::uint64_t, int> m;
    // Insert 0..999, erase the odd keys, then insert 1000..1999:
    // the growth rebuild drops tombstones but must preserve the
    // relative order of survivors.
    for (std::uint64_t k = 0; k < 1000; ++k)
        m.try_emplace(k, 1);
    for (std::uint64_t k = 1; k < 1000; k += 2)
        m.erase(k);
    for (std::uint64_t k = 1000; k < 2000; ++k)
        m.try_emplace(k, 2);
    std::vector<std::uint64_t> expect;
    for (std::uint64_t k = 0; k < 1000; k += 2)
        expect.push_back(k);
    for (std::uint64_t k = 1000; k < 2000; ++k)
        expect.push_back(k);
    std::size_t i = 0;
    for (const auto &[k, v] : m) {
        ASSERT_LT(i, expect.size());
        EXPECT_EQ(k, expect[i++]);
    }
    EXPECT_EQ(i, expect.size());
}

TEST(FlatMapOrder, ReinsertedKeyMovesToEnd)
{
    FlatMap<std::uint64_t, int> m;
    m.try_emplace(1, 1);
    m.try_emplace(2, 2);
    m.try_emplace(3, 3);
    m.erase(std::uint64_t(1));
    m.try_emplace(1, 10); // re-insert: now youngest
    std::vector<std::uint64_t> keys;
    for (const auto &[k, v] : m)
        keys.push_back(k);
    EXPECT_EQ(keys, (std::vector<std::uint64_t>{2, 3, 1}));
}

// --- Tombstone / erase mechanics ---

TEST(FlatMapTombstones, ChurnOnSmallKeySetStaysCorrect)
{
    // Insert/erase cycles over a tiny key set never let live_
    // grow, so only the tombstone rule can trigger rebuilds.
    FlatMap<std::uint64_t, int> m;
    Rng rng(taskSeed({"flat_map_churn"}));
    std::unordered_map<std::uint64_t, int> oracle;
    for (int round = 0; round < 20000; ++round) {
        std::uint64_t k = rng.next64() % 8;
        if (oracle.count(k)) {
            EXPECT_EQ(m.erase(k), 1u);
            oracle.erase(k);
        } else {
            EXPECT_TRUE(m.try_emplace(k, round).second);
            oracle[k] = round;
        }
        ASSERT_EQ(m.size(), oracle.size());
    }
    for (const auto &[k, v] : oracle)
        EXPECT_EQ(m.at(k), v);
}

TEST(FlatMapTombstones, EraseIteratorReturnsNextLiveEntry)
{
    FlatMap<std::uint64_t, int> m;
    for (std::uint64_t k = 0; k < 100; ++k)
        m.try_emplace(k, static_cast<int>(k));
    // Erase every key divisible by 3 via iterators.
    for (auto it = m.begin(); it != m.end();) {
        if (it->first % 3 == 0)
            it = m.erase(it);
        else
            ++it;
    }
    EXPECT_EQ(m.size(), 66u);
    std::uint64_t prev = 0;
    for (const auto &[k, v] : m) {
        EXPECT_NE(k % 3, 0u);
        EXPECT_GE(k, prev); // ascending: insertion order kept
        prev = k;
    }
}

TEST(FlatMapTombstones, EraseAllThenReuse)
{
    FlatMap<std::uint64_t, int> m;
    for (int cycle = 0; cycle < 50; ++cycle) {
        for (std::uint64_t k = 0; k < 64; ++k)
            m.try_emplace(k, cycle);
        EXPECT_EQ(m.size(), 64u);
        for (std::uint64_t k = 0; k < 64; ++k)
            EXPECT_EQ(m.erase(k), 1u);
        EXPECT_TRUE(m.empty());
        EXPECT_EQ(m.begin(), m.end());
    }
}

// --- Equality (order-insensitive, used by tests on results) ---

TEST(FlatMapEquality, OrderInsensitiveComparison)
{
    FlatMap<std::uint64_t, int> a, b;
    a.try_emplace(1, 10);
    a.try_emplace(2, 20);
    b.try_emplace(2, 20);
    b.try_emplace(1, 10);
    EXPECT_EQ(a, b);
    b[1] = 11;
    EXPECT_NE(a, b);
    b[1] = 10;
    b.try_emplace(3, 30);
    EXPECT_NE(a, b);

    FlatSet<int> s1, s2;
    s1.insert(1);
    s1.insert(2);
    s2.insert(2);
    s2.insert(1);
    EXPECT_EQ(s1, s2);
    s2.insert(3);
    EXPECT_NE(s1, s2);
}

} // anonymous namespace
} // namespace starnuma
