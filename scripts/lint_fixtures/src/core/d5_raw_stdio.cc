// D5 fixture: raw stdio in library code must route through
// sim/logging (diagnostics) or sim/table / sim/obs (output).

#include <cstdio>
#include <iostream>

void
bad_raw_stdio(const char *msg)
{
    std::printf("%s\n", msg);          // expect-lint: D5
    fprintf(stderr, "note: %s\n", msg); // expect-lint: D5
    std::cout << msg << "\n";          // expect-lint: D5
}

void
fine_buffer_formatting(char *buf, unsigned long n, const char *msg)
{
    // snprintf/vsnprintf format into buffers, not onto streams;
    // the \b in the rule's regex keeps them from matching.
    std::snprintf(buf, n, "%s", msg);
}
