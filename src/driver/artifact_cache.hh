/**
 * @file
 * Process-wide handle on the persistent artifact store plus the
 * cache-tier counters of the incremental sweep engine (DESIGN.md
 * §16). Off by default; enabled by STARNUMA_CACHE_DIR (read once,
 * ""/"0"/"off" keep it disabled, mirroring STARNUMA_TRACE_DIR's
 * gate) or explicitly via enable() from benches and tests.
 *
 * Thread safety: the store pointer is published under a Mutex and
 * held by shared_ptr so concurrent sweep entries can keep using a
 * store across a disable(); counters are relaxed atomics (pure
 * event counts, read only after the sweep's join barrier).
 */

#ifndef STARNUMA_DRIVER_ARTIFACT_CACHE_HH
#define STARNUMA_DRIVER_ARTIFACT_CACHE_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "sim/cas/store.hh"
#include "sim/sync.hh"

namespace starnuma
{

namespace obs
{
class Registry;
class Snapshot;
} // namespace obs

namespace driver
{

/** Which cache tier served (or missed) a request. */
class ArtifactCache
{
  public:
    static ArtifactCache &global();

    /**
     * The active store, or nullptr when caching is disabled. The
     * first call consults STARNUMA_CACHE_DIR.
     */
    std::shared_ptr<cas::Store> store();

    /** Point the cache at @p dir (benches, tests). */
    void enable(const std::string &dir);

    /** Drop the store; subsequent runs are uncached. */
    void disable();

    bool enabled() { return store() != nullptr; }

    // --- cache-tier event counters ---
    // step-A traces
    void noteTraceHit() { bump(traceHits_); }
    void noteTraceMiss() { bump(traceMisses_); }
    // full experiment-result bundles
    void noteResultHit() { bump(resultHits_); }
    void noteResultMiss() { bump(resultMisses_); }
    // differential re-simulation from a stored phase state
    void notePartialHit(std::uint64_t phases_skipped)
    {
        bump(partialHits_);
        phasesSkipped_.fetch_add(phases_skipped,
                                 std::memory_order_relaxed);
    }
    void noteBytesRead(std::uint64_t n)
    {
        bytesRead_.fetch_add(n, std::memory_order_relaxed);
    }
    void noteBytesWritten(std::uint64_t n)
    {
        bytesWritten_.fetch_add(n, std::memory_order_relaxed);
    }

    /**
     * Wall time attributed to a tier ("hit" time is spent loading
     * and verifying stored artifacts, "miss" time recomputing).
     * Host-profiling channel only — never part of deterministic
     * artifacts (same contract as the thread-pool uptime gauges).
     */
    void noteHitNanos(std::uint64_t n)
    {
        hitNanos_.fetch_add(n, std::memory_order_relaxed);
    }
    void noteMissNanos(std::uint64_t n)
    {
        missNanos_.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t traceHits() const { return get(traceHits_); }
    std::uint64_t traceMisses() const { return get(traceMisses_); }
    std::uint64_t resultHits() const { return get(resultHits_); }
    std::uint64_t resultMisses() const
    {
        return get(resultMisses_);
    }
    std::uint64_t partialHits() const { return get(partialHits_); }
    std::uint64_t phasesSkipped() const
    {
        return get(phasesSkipped_);
    }
    std::uint64_t bytesRead() const { return get(bytesRead_); }
    std::uint64_t bytesWritten() const
    {
        return get(bytesWritten_);
    }
    std::uint64_t hitNanos() const { return get(hitNanos_); }
    std::uint64_t missNanos() const { return get(missNanos_); }

    /** Zero every counter (benches isolate cold/warm passes). */
    void resetCounters();

    /**
     * Register every counter under @p prefix (hit/miss/partial
     * counts, bytes, tier seconds) so starnuma_report.py can
     * attribute sweep time to cache tiers.
     */
    void registerStats(obs::Registry &r,
                       const std::string &prefix) const;

  private:
    ArtifactCache() = default;

    static void bump(std::atomic<std::uint64_t> &c)
    {
        c.fetch_add(1, std::memory_order_relaxed);
    }
    static std::uint64_t get(const std::atomic<std::uint64_t> &c)
    {
        return c.load(std::memory_order_relaxed);
    }

    Mutex mu;
    bool initialized STARNUMA_GUARDED_BY(mu) = false;
    std::shared_ptr<cas::Store> store_ STARNUMA_GUARDED_BY(mu);

    std::atomic<std::uint64_t> traceHits_{0};
    std::atomic<std::uint64_t> traceMisses_{0};
    std::atomic<std::uint64_t> resultHits_{0};
    std::atomic<std::uint64_t> resultMisses_{0};
    std::atomic<std::uint64_t> partialHits_{0};
    std::atomic<std::uint64_t> phasesSkipped_{0};
    std::atomic<std::uint64_t> bytesRead_{0};
    std::atomic<std::uint64_t> bytesWritten_{0};
    std::atomic<std::uint64_t> hitNanos_{0};
    std::atomic<std::uint64_t> missNanos_{0};
};

/**
 * Snapshot of the cache counters for the "sweep.cache." stats
 * subtree (driver/sweep.cc adds it while the StatsSink observes a
 * cache-enabled sweep).
 */
obs::Snapshot sweepCacheSnapshot();

/**
 * Monotonic nanoseconds for cache-tier time attribution. Like the
 * thread pool's uptime gauges this is a host-profiling channel
 * only: the values feed noteHitNanos/noteMissNanos and never enter
 * deterministic simulation artifacts.
 */
std::uint64_t cacheNowNanos();

} // namespace driver
} // namespace starnuma

#endif // STARNUMA_DRIVER_ARTIFACT_CACHE_HH
