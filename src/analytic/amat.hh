/**
 * @file
 * Closed-form latency analytics: the first-order AMAT estimate of
 * §II-C, the CXL pool latency breakdown of Fig 3, and the average
 * 3-hop vs 4-hop block-transfer latencies of §III-C / Fig 4,
 * derived from the topology's unloaded link latencies.
 */

#ifndef STARNUMA_ANALYTIC_AMAT_HH
#define STARNUMA_ANALYTIC_AMAT_HH

#include <string>
#include <vector>

#include "topology/topology.hh"

namespace starnuma
{
namespace analytic
{

/** One component of the Fig 3 latency breakdown. */
struct LatencyComponent
{
    std::string name;
    double ns;
};

/** Fig 3: the CXL memory pool access latency breakdown. */
std::vector<LatencyComponent> cxlLatencyBreakdown(
    const topology::SystemConfig &config);

/** Total pool access latency (sums the Fig 3 components + DRAM). */
double poolAccessLatencyNs(const topology::SystemConfig &config);

/**
 * §III-C: average unloaded 3-hop block-transfer network latency
 * over all (R, H, O) socket combinations with R, H, O pairwise
 * distinct (paper: 333 ns on the 16-socket system).
 */
double averageThreeHopNs(const topology::Topology &topo);

/**
 * §III-C: the 4-hop via-pool transfer's network latency — two
 * roundtrips over two CXL links (paper: 200 ns).
 */
double fourHopViaPoolNs(const topology::Topology &topo);

/**
 * §II-C's worked example: AMAT when @p shared_fraction of accesses
 * target pages shared by all sockets (uniformly distributed across
 * sockets) and the rest are local. With @p pooled true the widely
 * shared accesses go to the pool instead.
 */
double firstOrderAmatNs(const topology::SystemConfig &config,
                        double shared_fraction, bool pooled);

} // namespace analytic
} // namespace starnuma

#endif // STARNUMA_ANALYTIC_AMAT_HH
