file(REMOVE_RECURSE
  "CMakeFiles/bench_sec5f_replication.dir/bench_sec5f_replication.cc.o"
  "CMakeFiles/bench_sec5f_replication.dir/bench_sec5f_replication.cc.o.d"
  "CMakeFiles/bench_sec5f_replication.dir/bench_util.cc.o"
  "CMakeFiles/bench_sec5f_replication.dir/bench_util.cc.o.d"
  "bench_sec5f_replication"
  "bench_sec5f_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec5f_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
