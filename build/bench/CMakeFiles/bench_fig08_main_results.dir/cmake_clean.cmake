file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_main_results.dir/bench_fig08_main_results.cc.o"
  "CMakeFiles/bench_fig08_main_results.dir/bench_fig08_main_results.cc.o.d"
  "CMakeFiles/bench_fig08_main_results.dir/bench_util.cc.o"
  "CMakeFiles/bench_fig08_main_results.dir/bench_util.cc.o.d"
  "bench_fig08_main_results"
  "bench_fig08_main_results.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_main_results.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
