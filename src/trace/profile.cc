#include "trace/profile.hh"

#include <bit>

#include "sim/flat_map.hh"
#include "sim/logging.hh"

namespace starnuma
{
namespace trace
{

SharingProfile::SharingProfile(const WorkloadTrace &trace,
                               int cores_per_socket, int sockets)
    : sockets_(sockets), totalPages_(0), totalAccesses_(0),
      pagesByDegree(sockets + 1, 0), accessesByDegree(sockets + 1, 0),
      rwPagesByDegree(sockets + 1, 0),
      rwAccessesByDegree(sockets + 1, 0)
{
    sn_assert(cores_per_socket > 0 && sockets > 0 && sockets <= 64,
              "bad sharing profile shape");

    struct PageInfo
    {
        std::uint64_t sharerMask = 0;
        std::uint64_t accesses = 0;
        bool written = false;
    };
    FlatMap<PageNum, PageInfo> pages;

    for (int t = 0; t < trace.threads; ++t) {
        NodeId socket = t / cores_per_socket;
        sn_assert(socket < sockets, "thread %d beyond socket count",
                  t);
        for (const MemRecord &r : trace.perThread[t]) {
            PageInfo &p = pages[pageNumber(r.vaddr())];
            p.sharerMask |= 1ULL << socket;
            ++p.accesses;
            p.written |= r.isWrite();
        }
    }

    for (PageNum wp : trace.writtenPages) {
        auto it = pages.find(wp);
        if (it != pages.end())
            it->second.written = true;
    }

    for (const auto &[page, p] : pages) {
        int degree = std::popcount(p.sharerMask);
        ++pagesByDegree[degree];
        accessesByDegree[degree] += p.accesses;
        totalAccesses_ += p.accesses;
        if (p.written) {
            ++rwPagesByDegree[degree];
            rwAccessesByDegree[degree] += p.accesses;
        }
    }
    totalPages_ = pages.size();
}

double
SharingProfile::pageFraction(int degree) const
{
    if (degree < 1 || degree > sockets_ || totalPages_ == 0)
        return 0.0;
    return static_cast<double>(pagesByDegree[degree]) /
           static_cast<double>(totalPages_);
}

double
SharingProfile::accessFraction(int degree) const
{
    if (degree < 1 || degree > sockets_ || totalAccesses_ == 0)
        return 0.0;
    return static_cast<double>(accessesByDegree[degree]) /
           static_cast<double>(totalAccesses_);
}

double
SharingProfile::pagesWithAtMost(int degree) const
{
    double f = 0;
    for (int d = 1; d <= degree && d <= sockets_; ++d)
        f += pageFraction(d);
    return f;
}

double
SharingProfile::accessesAbove(int degree) const
{
    double f = 0;
    for (int d = degree + 1; d <= sockets_; ++d)
        f += accessFraction(d);
    return f;
}

double
SharingProfile::readWriteAccessFraction(int degree) const
{
    if (degree < 1 || degree > sockets_ ||
        accessesByDegree[degree] == 0)
        return 0.0;
    return static_cast<double>(rwAccessesByDegree[degree]) /
           static_cast<double>(accessesByDegree[degree]);
}

double
SharingProfile::readWritePageFraction(int degree) const
{
    if (degree < 1 || degree > sockets_ ||
        pagesByDegree[degree] == 0)
        return 0.0;
    return static_cast<double>(rwPagesByDegree[degree]) /
           static_cast<double>(pagesByDegree[degree]);
}

double
SharingProfile::interChassisFraction(int sockets,
                                     int sockets_per_chassis)
{
    // Uniformly distributed accesses from any socket: the share of
    // other-chassis targets among all sockets.
    return static_cast<double>(sockets - sockets_per_chassis) /
           sockets;
}

} // namespace trace
} // namespace starnuma
