/**
 * @file
 * Columnar binary trace format v2 (DESIGN.md §12). Step-A captures
 * are stored SoA: per thread, three parallel columns — delta-
 * encoded varint instruction counts, zigzag-delta varint addresses,
 * and a packed write-flag bitmap — instead of v1's array of 16-byte
 * records. Deltas between consecutive accesses of one thread are
 * small (instruction counts are nondecreasing, addresses exhibit
 * spatial locality), so the varints land in one or two bytes and
 * the cache files shrink several-fold.
 *
 * The decoder is fully bounds-checked: truncated files, corrupt
 * varints, impossible counts, and unknown versions all return
 * failure — never undefined behaviour (fuzzed in
 * tests/columnar_trace_test.cc under ASan).
 *
 * The varint primitives are exposed because the step-B checkpoint
 * serialization (driver/trace_sim.cc) shares them.
 */

#ifndef STARNUMA_TRACE_COLUMNAR_HH
#define STARNUMA_TRACE_COLUMNAR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.hh"

namespace starnuma
{
namespace trace
{

/** LEB128 append of @p v to @p out (1-10 bytes). */
inline void
putVarint(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(v));
}

/** Map signed to unsigned so small magnitudes stay small. */
inline std::uint64_t
zigzag(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t
unzigzag(std::uint64_t v)
{
    return static_cast<std::int64_t>(v >> 1) ^
           -static_cast<std::int64_t>(v & 1);
}

/** Bounds-checked cursor over an encoded byte buffer. */
class ByteReader
{
  public:
    ByteReader(const std::uint8_t *data, std::size_t size)
        : p(data), end(data + size)
    {
    }

    std::size_t remaining() const
    {
        return static_cast<std::size_t>(end - p);
    }

    /** @return false on truncation or an over-long varint. */
    bool
    getVarint(std::uint64_t &v)
    {
        v = 0;
        for (int shift = 0; shift < 64; shift += 7) {
            if (p == end)
                return false;
            std::uint8_t byte = *p++;
            v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
            if (!(byte & 0x80))
                return true;
        }
        return false; // > 10 bytes: corrupt
    }

    /** Fixed-width little-endian u64 (the v1 trace and checkpoint
     *  headers use fixed fields). @return false on truncation. */
    bool
    getU64(std::uint64_t &v)
    {
        if (remaining() < 8)
            return false;
        v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
        p += 8;
        return true;
    }

    bool
    getBytes(void *dst, std::size_t n)
    {
        if (remaining() < n)
            return false;
        std::uint8_t *out = static_cast<std::uint8_t *>(dst);
        for (std::size_t i = 0; i < n; ++i)
            out[i] = p[i];
        p += n;
        return true;
    }

  private:
    const std::uint8_t *p;
    const std::uint8_t *end;
};

/** Serialize @p t into the columnar v2 byte layout. */
std::vector<std::uint8_t> encodeColumnar(const WorkloadTrace &t);

/**
 * Decode a columnar v2 buffer into @p out.
 * @return false on any structural error (and @p out is unspecified).
 */
bool decodeColumnar(const std::uint8_t *data, std::size_t size,
                    WorkloadTrace &out);

/** encodeColumnar to a file. @return false on IO error. */
bool saveColumnar(const WorkloadTrace &t, const std::string &path);

/**
 * Slurp a whole file into @p out. The single raw-read site shared
 * by every decode path: one bulk transfer into an owned buffer,
 * after which all parsing goes through the ByteReader cursor.
 * @return false on IO error (and @p out is unspecified).
 */
bool readFileBytes(const std::string &path,
                   std::vector<std::uint8_t> &out);

/** Read + decodeColumnar a file. @return false on error. */
bool loadColumnar(WorkloadTrace &t, const std::string &path);

} // namespace trace
} // namespace starnuma

#endif // STARNUMA_TRACE_COLUMNAR_HH
