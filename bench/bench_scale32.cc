/**
 * @file
 * §III-B scaling study: StarNUMA at 32 sockets. Beyond 16 sockets
 * the pool needs a CXL switch (+90 ns roundtrip, 270 ns end-to-end
 * pool access). The latency gap to a 2-hop access shrinks, but the
 * pool's second advantage — extra bandwidth for heavily shared
 * pages — remains, so speedups persist at the larger scale.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"
#include "driver/timing_sim.hh"
#include "sim/table.hh"

using namespace starnuma;

namespace
{

std::vector<std::string>
scaleWorkloads()
{
    if (benchutil::fastMode())
        return {"bfs"};
    return {"bfs", "cc", "masstree"};
}

SimScale
scale32()
{
    SimScale s = benchutil::benchScale();
    s.sockets = 32; // 8 chassis x 4 sockets, 128 threads
    return s;
}

double
speedup32(const std::string &workload)
{
    SimScale s = scale32();
    driver::SystemSetup base;
    base.name = "baseline-32";
    base.sys = topology::SystemConfig::baseline32();
    base.migration.poolEnabled = false;
    driver::SystemSetup star;
    star.name = "starnuma-32";
    star.sys = topology::SystemConfig::starnuma32();

    const auto &b = benchutil::cachedRun(workload, base, s);
    const auto &r = benchutil::cachedRun(workload, star, s);
    return r.metrics.speedupOver(b.metrics);
}

void
BM_Scale32(benchmark::State &state, const std::string &workload)
{
    double sp = 0;
    for (auto _ : state) {
        sp = speedup32(workload);
        benchmark::DoNotOptimize(sp);
    }
    state.counters["speedup_32s"] = sp;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    benchutil::initBench(&argc, argv);
    for (const auto &w : scaleWorkloads())
        benchmark::RegisterBenchmark(("Scale32/" + w).c_str(),
                                     BM_Scale32, w)
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    int rc = benchutil::runBenchmarks(argc, argv);

    TextTable t({"workload", "16 sockets (180 ns pool)",
                 "32 sockets (270 ns switched pool)"});
    for (const auto &w : scaleWorkloads())
        t.addRow({w,
                  TextTable::num(benchutil::speedupOverBaseline(
                                     w,
                                     driver::SystemSetup::starnuma(),
                                     benchutil::benchScale()),
                                 2) + "x",
                  TextTable::num(speedup32(w), 2) + "x"});
    benchutil::printSection(
        "Sec III-B: StarNUMA speedup at 16 vs 32 sockets", t.str());
    return rc;
}
