/**
 * @file
 * Domain example: graph analytics on big NUMA iron. Characterizes
 * a GAP kernel's page-sharing structure (the Fig 2 analysis), then
 * shows how the vagabond pages it reveals translate into memory
 * pool placement and speedup — the paper's motivating use case.
 *
 *   ./example_graph_analytics [kernel]   (default: bfs)
 *
 * Kernels: bfs cc sssp tc
 */

#include <cstdio>
#include <string>

#include "driver/experiment.hh"
#include "sim/table.hh"
#include "trace/profile.hh"
#include "workloads/workload.hh"

using namespace starnuma;

int
main(int argc, char **argv)
{
    std::string kernel = argc > 1 ? argv[1] : "bfs";

    SimScale scale = SimScale::sc1();
    scale.phases = 4; // one less phase than the benches: quicker

    std::printf("tracing GAP kernel '%s' on a Kronecker graph...\n",
                kernel.c_str());
    const auto &trace = driver::workloadTrace(kernel, scale);
    trace::SharingProfile profile(trace, scale.coresPerSocket,
                                  scale.sockets);

    TextTable p({"sharing degree", "pages", "accesses"});
    for (int d : {1, 2, 4, 8, 12, 16})
        p.addRow({std::to_string(d),
                  TextTable::pct(profile.pageFraction(d)),
                  TextTable::pct(profile.accessFraction(d))});
    std::printf("\npage sharing profile (%llu pages, %.1f MB):\n%s",
                static_cast<unsigned long long>(
                    profile.totalPages()),
                static_cast<double>(trace.footprintBytes) / 1048576.0,
                p.str().c_str());
    std::printf(
        "accesses to pages shared by >8 sockets (vagabond "
        "candidates): %.0f%%\n\n",
        100 * profile.accessesAbove(8));

    auto base = driver::runExperiment(
        kernel, driver::SystemSetup::baseline(), scale);
    auto star = driver::runExperiment(
        kernel, driver::SystemSetup::starnuma(), scale);

    std::printf("baseline: IPC %.3f, AMAT %.0f ns (%.0f%% 2-hop)\n",
                base.metrics.ipc, base.metrics.amatNs(),
                100 * base.metrics.mix[2]);
    std::printf(
        "starnuma: IPC %.3f, AMAT %.0f ns (%.0f%% pool, %.0f%% of "
        "migrations to pool)\n",
        star.metrics.ipc, star.metrics.amatNs(),
        100 * star.metrics.mix[3],
        100 * star.placement.poolMigrationFraction);
    std::printf("speedup: %.2fx\n",
                star.metrics.speedupOver(base.metrics));
    return 0;
}
