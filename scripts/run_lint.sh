#!/usr/bin/env bash
# Run every static check (DESIGN.md §8) and exit nonzero on any
# finding:
#
#   1. scripts/starnuma_lint.py      determinism & style rules D1-D5
#      (plus its fixture self-test),
#   2. the STARNUMA_WERROR build     -Wshadow -Wconversion
#      -Wdouble-promotion as hard errors, and
#   3. clang-tidy (if installed)     bugprone-*/performance-* over
#      the exported compile_commands.json.
#
# Usage: scripts/run_lint.sh
set -euo pipefail

cd "$(dirname "$0")/.."

fail=0

echo "=== starnuma_lint: determinism rules D1-D5 ==="
python3 scripts/starnuma_lint.py --self-test || fail=1
python3 scripts/starnuma_lint.py || fail=1

echo "=== STARNUMA_WERROR build ==="
cmake -B build-werror -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DSTARNUMA_WERROR=ON >/dev/null
cmake --build build-werror -j "$(nproc)" || fail=1

if command -v clang-tidy >/dev/null 2>&1; then
    echo "=== clang-tidy (bugprone-*, performance-*) ==="
    # The WERROR tree just configured above exports the compilation
    # database; run over the library sources (tests inherit via
    # headers through HeaderFilterRegex).
    mapfile -t srcs < <(find src -name '*.cc' | sort)
    if command -v run-clang-tidy >/dev/null 2>&1; then
        run-clang-tidy -quiet -p build-werror "${srcs[@]}" || fail=1
    else
        clang-tidy -quiet -p build-werror "${srcs[@]}" || fail=1
    fi
else
    echo "=== clang-tidy not installed; skipping (gate is" \
         "advisory on machines without LLVM) ==="
fi

if [ "${fail}" -ne 0 ]; then
    echo "=== lint FAILED ==="
    exit 1
fi
echo "=== all lint checks clean ==="
