/**
 * @file
 * Deterministic per-epoch metric streams (DESIGN.md §14). A
 * TimeSeries is a per-owner set of named streams sampled on the
 * *simulated* clock — per pacer epoch in the timing simulation, per
 * migration phase in the trace replay — stored in flat columnar
 * buffers (one timestamp column and one value column per stream,
 * capacity reserved at registration) so sampling never allocates.
 * Exports are byte-stable: streams sort lexicographically, samples
 * keep their append order (simulated time is deterministic), and
 * numbers go through the shared shortest-round-trip formatter, so
 * artifacts are byte-identical for any STARNUMA_THREADS.
 *
 * The process-wide aggregation point is TimeSeriesSink, the exact
 * analogue of obs::StatsSink: experiments merge their series in
 * under a "<workload>.<setup>." prefix, every emission site is
 * gated on one relaxed atomic load, and the merged artifact is
 * written as sorted-key JSON (or CSV) at exit when
 * STARNUMA_TIMESERIES_OUT is set (bench flag: --timeseries-out).
 */

#ifndef STARNUMA_SIM_OBS_TIMESERIES_HH
#define STARNUMA_SIM_OBS_TIMESERIES_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/annotations.hh"
#include "sim/sync.hh"

namespace starnuma
{
namespace obs
{

/**
 * A set of named per-epoch metric streams with columnar storage.
 * Single-threaded per owner (one per phase machine, one per
 * trace-sim run), like obs::Registry; cross-experiment aggregation
 * goes through TimeSeriesSink.
 */
class TimeSeries
{
  public:
    /** Index of a registered stream; valid for this object only. */
    using StreamId = std::uint32_t;

    /**
     * Register a stream under a dotted path and reserve room for
     * @p capacity samples (sampling beyond it still works, it just
     * pays an amortized regrowth). Panics on a duplicate or
     * malformed path — stream registration is a programming
     * interface, exactly like Registry::add.
     */
    StreamId addStream(const std::string &path,
                       std::size_t capacity = 0);

    /** Append one (t, value) sample. @p t is the stream's simulated
     *  timestamp: cycles in the timing sim, phase number in the
     *  trace sim. */
    // lint: cold-path per-epoch sampling point, off the per-record
    // path by construction (pacer epochs / phase boundaries)
    STARNUMA_COLD_PATH void sample(StreamId stream, std::uint64_t t,
                                   double value);

    std::size_t streams() const { return cols.size(); }
    bool empty() const;

    /** Samples appended to @p stream so far. */
    std::size_t samples(StreamId stream) const;

    /** The last value appended to @p stream (0.0 when empty): the
     *  single source the trace counter events re-emit from. */
    double lastValue(StreamId stream) const;

    /** Copy every stream of @p other in under @p prefix. */
    void merge(const std::string &prefix, const TimeSeries &other);

    /**
     * "stream,t,value" CSV with a header row; streams sorted by
     * path, samples in append order.
     */
    std::string csv() const;

    /**
     * One JSON object, keys sorted: each stream maps to
     * {"t": [...], "v": [...]} column arrays.
     */
    std::string json() const;

  private:
    struct Column
    {
        std::string path;
        std::vector<std::uint64_t> ts;
        std::vector<double> vals;
    };

    const Column *find(const std::string &path) const;

    /** Columns in registration order; exports sort by path. */
    std::vector<Column> cols;
};

/**
 * Aggregates deterministic time series across every experiment of
 * the process. Thread safe: concurrent sweep entries merge their
 * series under distinct prefixes and exports sort by stream path,
 * so the written artifact is independent of completion order.
 */
class TimeSeriesSink
{
  public:
    /** The process-wide sink. First use auto-starts it when
     *  STARNUMA_TIMESERIES_OUT is set (an atexit hook then writes
     *  the file on shutdown). */
    static TimeSeriesSink &global();

    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Enable collection; write() targets @p path ("" = explicit
     *  writeTo only). */
    void start(const std::string &path);

    /** Disable and drop everything collected so far. */
    void stop();

    /** Merge @p series in under @p prefix (no-op when disabled). */
    void add(const std::string &prefix, const TimeSeries &series);

    /** Copy of everything collected so far. */
    TimeSeries collect() const;

    /**
     * Write the collected series to @p path: JSON, or CSV when the
     * path ends in ".csv". @return false on IO error.
     */
    bool writeTo(const std::string &path) const;

    /** writeTo the configured path; true when nothing to do. */
    bool write() const;

  private:
    TimeSeriesSink() = default;

    mutable Mutex mu;
    // Same contract as StatsSink::enabled_: a pure emission gate
    // read with one relaxed load per would-be emission; all data it
    // gates is accessed under mu, and add() re-checks under the
    // lock so a series never lands in a sink stop() already
    // cleared.
    std::atomic<bool> enabled_{false};
    std::string path_ STARNUMA_GUARDED_BY(mu);
    TimeSeries merged STARNUMA_GUARDED_BY(mu);
};

} // namespace obs
} // namespace starnuma

#endif // STARNUMA_SIM_OBS_TIMESERIES_HH
