/**
 * @file
 * Canonical cache-key texts for the content-addressed artifact
 * store (DESIGN.md §16). Each artifact kind's key is a multi-line
 * "field=value" text whose field names follow the manifest schema
 * of scripts/artifact_inputs.json (starnuma-artifact-inputs-v1):
 * the declared workload/scale/setup inputs, the policy-schedule
 * prefix, the code-epoch hash of the generating file closure, and
 * one line per declared STARNUMA_* environment gate. Env gates that
 * are byte-invariant by contract (pool size, trace cache location)
 * record the literal value "invariant" so warm hits work across
 * STARNUMA_THREADS settings. scripts/cas_tool.py re-parses these
 * texts and validates the field vocabulary against the manifest.
 */

#ifndef STARNUMA_DRIVER_ARTIFACT_KEY_HH
#define STARNUMA_DRIVER_ARTIFACT_KEY_HH

#include <string>

#include "driver/system_setup.hh"
#include "sim/cas/hash.hh"
#include "sim/scale.hh"

namespace starnuma
{
namespace driver
{

/** Key text of the step-A columnar trace bytes for a workload. */
std::string traceKeyText(const std::string &workload,
                         const SimScale &scale);

/**
 * Key text of the step-B resume-state image at the top of
 * migration phase @p phase. Keyed by the policy-schedule *prefix*
 * (entries with fromPhase < phase): two setups that diverge only
 * from phase k onward share every state image up to k, which is
 * exactly what lets the incremental sweep engine resume the
 * divergent cell from phase k.
 */
std::string stateKeyText(const std::string &workload,
                         const SystemSetup &setup,
                         const SimScale &scale,
                         const cas::Hash128 &trace_content,
                         int phase);

/**
 * Key text of a full experiment-result bundle (metrics + step-B
 * checkpoints + stats snapshots). @p stats_enabled is the
 * obs::StatsSink bit: a bundle cached without registry snapshots
 * must not satisfy a run that needs them.
 */
std::string resultKeyText(const std::string &workload,
                          const SystemSetup &setup,
                          const SimScale &scale,
                          const cas::Hash128 &trace_content,
                          bool stats_enabled);

} // namespace driver
} // namespace starnuma

#endif // STARNUMA_DRIVER_ARTIFACT_KEY_HH
