// Fixture: D5 allowed-stdio list — clean. src/sim/obs/ is an
// exporter directory (stats, time series, audit sinks write their
// artifacts here), so raw stdio is allowed and none of these lines
// may produce a finding. Deliberately no expect-lint markers: any
// D5 report from this file fails the self-test as UNEXPECTED.

#include <cstdio>

void
fine_obs_exporter_stdio(const char *path, const char *row)
{
    std::printf("%s\n", row);
    std::fprintf(stderr, "obs: wrote %s\n", path);
}
