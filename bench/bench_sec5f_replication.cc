/**
 * @file
 * §V-F reproduction: page replication versus memory pooling.
 * Evaluates the baseline augmented with idealized read-only page
 * replication (a-priori read/write knowledge, free maintenance)
 * against StarNUMA's pool, reporting speedup and the replication
 * capacity overhead. The paper's argument: replication only works
 * for read-only vagabond pages that are hot *and* small — BFS's
 * shared pages are read-write (nothing to replicate), TC's are
 * read-only but cover most of the dataset (capacity-prohibitive).
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"
#include "sim/table.hh"

using namespace starnuma;
using benchutil::benchScale;
using benchutil::cachedRun;

namespace
{

void
BM_Replication(benchmark::State &state,
               const std::string &workload)
{
    SimScale scale = benchScale();
    for (auto _ : state)
        benchmark::DoNotOptimize(benchutil::speedupOverBaseline(
            workload, driver::SystemSetup::baselineReplication(),
            scale));
    const auto &rep =
        cachedRun(workload,
                  driver::SystemSetup::baselineReplication(), scale)
            .placement.replication;
    state.counters["speedup"] = benchutil::speedupOverBaseline(
        workload, driver::SystemSetup::baselineReplication(),
        scale);
    state.counters["capacity_overhead"] = rep.capacityOverhead;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    benchutil::initBench(&argc, argv);
    for (const auto &w : benchutil::benchWorkloads())
        benchmark::RegisterBenchmark(("Sec5F/" + w).c_str(),
                                     BM_Replication, w)
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    int rc = benchutil::runBenchmarks(argc, argv);

    SimScale scale = benchScale();
    TextTable t({"workload", "replication speedup",
                 "starnuma speedup", "replica capacity overhead",
                 "RW pages rejected", "capacity rejected"});
    for (const auto &w : benchutil::benchWorkloads()) {
        const auto &run = cachedRun(
            w, driver::SystemSetup::baselineReplication(), scale);
        const auto &rep = run.placement.replication;
        t.addRow({w,
                  TextTable::num(benchutil::speedupOverBaseline(
                                     w,
                                     driver::SystemSetup::
                                         baselineReplication(),
                                     scale),
                                 2) + "x",
                  TextTable::num(benchutil::speedupOverBaseline(
                                     w,
                                     driver::SystemSetup::starnuma(),
                                     scale),
                                 2) + "x",
                  TextTable::num(rep.capacityOverhead, 2) + "x",
                  std::to_string(rep.rejectedReadWrite),
                  std::to_string(rep.rejectedCapacity)});
    }
    benchutil::printSection(
        "Sec V-F: idealized read-only replication vs StarNUMA's "
        "pool (replication budget: 2x footprint)",
        t.str());
    return rc;
}
