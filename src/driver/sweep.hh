/**
 * @file
 * Parallel experiment sweeps: fan whole (workload, system, scale)
 * pipelines out across sim/parallel.hh's worker pool, the way the
 * paper's evaluation runs its dozens of independent configuration
 * pipelines (§IV, §V). Each entry is an independent runExperiment
 * call; the memoized trace cache guarantees one capture per
 * (workload, scale) no matter how many entries share it, and
 * results return in the caller's entry order — so a sweep's output
 * is bitwise-identical to running the same entries serially.
 *
 * Locking contract (DESIGN.md §10): this layer owns no mutex. All
 * cross-thread state lives behind ThreadPool's annotated Mutex
 * (sim/parallel.hh) and experiment.cc's trace-memo Mutex; runSweep
 * writes each out[i] from exactly one pool task and reads them only
 * after the parallelFor barrier, which is the happens-before edge.
 */

#ifndef STARNUMA_DRIVER_SWEEP_HH
#define STARNUMA_DRIVER_SWEEP_HH

#include <string>
#include <vector>

#include "driver/experiment.hh"
#include "driver/system_setup.hh"
#include "sim/scale.hh"

namespace starnuma
{
namespace driver
{

/** One entry of a sweep: a full three-step pipeline to run. */
struct SweepJob
{
    std::string workload;
    SystemSetup setup;
    SimScale scale = SimScale::sc1();

    /**
     * Run the Table III "single-socket execution with local memory"
     * reference instead of the full system described by setup.
     */
    bool singleSocket = false;
};

/**
 * Run every job across the worker pool; out[i] is job i's result
 * (for singleSocket jobs only .metrics is populated). Deterministic:
 * the result vector does not depend on the pool size or schedule.
 */
std::vector<ExperimentResult> runSweep(
    const std::vector<SweepJob> &jobs);

/** All (workload, setup) combinations at one scale, row-major in
 *  workload order. */
std::vector<SweepJob> crossJobs(
    const std::vector<std::string> &workloads,
    const std::vector<SystemSetup> &setups, const SimScale &scale);

} // namespace driver
} // namespace starnuma

#endif // STARNUMA_DRIVER_SWEEP_HH
