/**
 * @file
 * Process-wide observability switchboard. Two independent channels,
 * both off by default and zero-overhead when disabled (every
 * emission site is guarded by one relaxed atomic load):
 *
 *  - StatsSink: the deterministic, simulation-domain channel.
 *    Experiments contribute obs::Snapshot content under a
 *    "<workload>.<setup>." prefix; the merged result is written as
 *    sorted-key JSON (or CSV) that is byte-identical for any
 *    STARNUMA_THREADS. Activated by STARNUMA_STATS_OUT=<path> or
 *    programmatically (tests, bench --stats-out).
 *
 *  - TraceSession (sim/obs/trace_session.hh): the wall-clock host
 *    channel (Chrome trace_event JSON). Wall-clock readings are
 *    confined to that file and never feed simulation results.
 *
 * The split matters: thread-pool self-profiling is genuinely
 * schedule-dependent, so it is exposed through a Registry built on
 * demand (ThreadPool::registerStats) and lands in the trace file,
 * never in the deterministic stats artifact.
 */

#ifndef STARNUMA_SIM_OBS_OBS_HH
#define STARNUMA_SIM_OBS_OBS_HH

#include <atomic>
#include <string>

#include "sim/annotations.hh"
#include "sim/obs/registry.hh"
#include "sim/sync.hh"

namespace starnuma
{
namespace obs
{

/**
 * Aggregates deterministic stats snapshots across every experiment
 * of the process. Thread safe: concurrent sweep entries add their
 * snapshots under distinct prefixes, and the merged map is sorted
 * by key, so the written artifact is independent of completion
 * order.
 */
class StatsSink
{
  public:
    /**
     * The process-wide sink. First use auto-starts it when
     * STARNUMA_STATS_OUT is set (an atexit hook then writes the
     * file on shutdown).
     */
    static StatsSink &global();

    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Enable collection; write() targets @p path ("" = explicit
     *  writeTo only). */
    void start(const std::string &path);

    /** Disable and drop everything collected so far. */
    void stop();

    /** Merge @p s in under @p prefix (no-op when disabled). */
    void add(const std::string &prefix, const Snapshot &s);

    /** Copy of everything collected so far. */
    Snapshot collect() const;

    /** The collected snapshot as sorted-key JSON. */
    std::string collectJson() const;

    /**
     * Write the collected snapshot to @p path: JSON, or CSV when
     * the path ends in ".csv". @return false on IO error.
     */
    bool writeTo(const std::string &path) const;

    /** writeTo the configured path; true when nothing to do. */
    bool write() const;

  private:
    StatsSink() = default;

    mutable Mutex mu;
    // Relaxed is load-bearing here: enabled_ is only the emission
    // gate ("is anyone collecting?"), checked once per would-be
    // emission — the zero-overhead-when-disabled contract. It never
    // publishes data; every access to the data it gates (path_,
    // merged) happens under mu, whose acquire/release provides the
    // ordering. A start()/stop() racing an add() can at worst admit
    // or drop that one snapshot, which toggling mid-run means
    // anyway; add() re-checks under the lock so a snapshot never
    // lands in a sink that stop() already cleared.
    std::atomic<bool> enabled_{false};
    std::string path_ STARNUMA_GUARDED_BY(mu);
    Snapshot merged STARNUMA_GUARDED_BY(mu);
};

/**
 * True when any host-side channel wants wall-clock readings
 * (thread-pool busy-time clocks). One relaxed load per check.
 */
bool hostProfilingEnabled();

} // namespace obs
} // namespace starnuma

#endif // STARNUMA_SIM_OBS_OBS_HH
