#include "bench_util.hh"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <map>

#include "workloads/workload.hh"

namespace starnuma
{
namespace benchutil
{

void
printSection(const std::string &title, const std::string &body)
{
    std::printf("\n=== %s ===\n%s\n", title.c_str(), body.c_str());
    std::fflush(stdout);
}

bool
fastMode()
{
    const char *v = std::getenv("STARNUMA_BENCH_FAST");
    return v != nullptr && v[0] != '\0' && v[0] != '0';
}

SimScale
benchScale()
{
    SimScale s = SimScale::sc1();
    if (fastMode()) {
        s.phases = 2;
        s.phaseInstructions = 100000;
    }
    return s;
}

namespace
{

std::string
scaleKey(const SimScale &s)
{
    return std::to_string(s.threads()) + ":" +
           std::to_string(s.phases) + ":" +
           std::to_string(s.phaseInstructions) + ":" +
           std::to_string(s.detailFraction);
}

std::string
runKey(const std::string &workload,
       const driver::SystemSetup &setup, const SimScale &scale)
{
    return workload + "/" + setup.name + "/" + scaleKey(scale) +
           "/r" + std::to_string(setup.regionBytes);
}

std::map<std::string, driver::ExperimentResult> &
runMemo()
{
    static std::map<std::string, driver::ExperimentResult> memo;
    return memo;
}

std::map<std::string, driver::RunMetrics> &
singleSocketMemo()
{
    static std::map<std::string, driver::RunMetrics> memo;
    return memo;
}

} // anonymous namespace

void
prewarm(const std::vector<driver::SweepJob> &jobs)
{
    std::vector<driver::ExperimentResult> results =
        driver::runSweep(jobs);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const driver::SweepJob &job = jobs[i];
        if (job.singleSocket)
            singleSocketMemo().emplace(
                job.workload + "/" + scaleKey(job.scale),
                std::move(results[i].metrics));
        else
            runMemo().emplace(
                runKey(job.workload, job.setup, job.scale),
                std::move(results[i]));
    }
}

const driver::ExperimentResult &
cachedRun(const std::string &workload,
          const driver::SystemSetup &setup, const SimScale &scale)
{
    auto &memo = runMemo();
    std::string key = runKey(workload, setup, scale);
    auto it = memo.find(key);
    if (it == memo.end())
        it = memo.emplace(key, driver::runExperiment(
                                   workload, setup, scale))
                 .first;
    return it->second;
}

const driver::RunMetrics &
cachedSingleSocket(const std::string &workload,
                   const SimScale &scale)
{
    auto &memo = singleSocketMemo();
    std::string key = workload + "/" + scaleKey(scale);
    auto it = memo.find(key);
    if (it == memo.end())
        it = memo.emplace(key,
                          driver::runSingleSocket(workload, scale))
                 .first;
    return it->second;
}

double
speedupOverBaseline(const std::string &workload,
                    const driver::SystemSetup &setup,
                    const SimScale &scale)
{
    const auto &base = cachedRun(
        workload, driver::SystemSetup::baseline(), scale);
    const auto &run = cachedRun(workload, setup, scale);
    return run.metrics.speedupOver(base.metrics);
}

std::vector<std::string>
benchWorkloads()
{
    if (fastMode())
        return {"bfs", "tc", "poa"};
    return workloads::workloadNames();
}

int
runBenchmarks(int argc, char **argv)
{
    ::benchmark::Initialize(&argc, argv);
    if (::benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    ::benchmark::RunSpecifiedBenchmarks();
    ::benchmark::Shutdown();
    return 0;
}

} // namespace benchutil
} // namespace starnuma
