#include "driver/metrics.hh"

namespace starnuma
{
namespace driver
{

const char *
accessTypeName(AccessType t)
{
    switch (t) {
      case AccessType::Local:    return "local";
      case AccessType::OneHop:   return "1-hop";
      case AccessType::TwoHop:   return "2-hop";
      case AccessType::Pool:     return "pool";
      case AccessType::BtSocket: return "BT_Socket";
      case AccessType::BtPool:   return "BT_Pool";
      default:                   return "?";
    }
}

obs::Snapshot
metricsSnapshot(const RunMetrics &m)
{
    obs::Snapshot s;
    s.setCount("instructions", m.instructions);
    s.setCount("cycles", m.cycles.value());
    s.set("ipc", m.ipc);
    s.setCount("memAccesses", m.memAccesses);
    s.setCount("llcHits", m.llcHits);
    s.setCount("detailedMisses", m.detailedMisses);
    s.set("llcMpki", m.llcMpki);
    s.set("amatNs", m.amatNs());
    s.set("unloadedAmatNs", m.unloadedAmatNs());
    s.set("migrationStallCycles", m.migrationStallCycles);
    for (int i = 0; i < accessTypes; ++i) {
        std::string t = accessTypeName(static_cast<AccessType>(i));
        s.set("mix." + t, m.mix[i]);
        s.set("typeLatencyCycles." + t, m.typeLatency[i]);
    }
    s.set("upiUtilization", m.upiUtilization);
    s.set("numalinkUtilization", m.numalinkUtilization);
    s.set("cxlUtilization", m.cxlUtilization);
    s.set("maxLinkUtilization", m.maxLinkUtilization);
    s.set("meanLinkQueueNs", m.meanLinkQueueNs);
    s.set("meanDramQueueNs", m.meanDramQueueNs);
    s.setCount("migratedPages", m.migratedPages);
    s.set("poolMigrationFraction", m.poolMigrationFraction);
    s.setCount("coherenceTransactions", m.coherenceTransactions);
    s.setCount("blockTransfers", m.blockTransfers);
    s.setCount("shootdownPages", m.shootdownPages);
    return s;
}

double
unloadedLatencyNs(AccessType t)
{
    // §V-A's analytic constants: local/1-hop/2-hop/pool plus block
    // transfers at network traversal + 80 ns memory & directory.
    switch (t) {
      case AccessType::Local:    return 80.0;
      case AccessType::OneHop:   return 130.0;
      case AccessType::TwoHop:   return 360.0;
      case AccessType::Pool:     return 180.0;
      case AccessType::BtSocket: return 413.0;
      case AccessType::BtPool:   return 280.0;
      default:                   return 0.0;
    }
}

} // namespace driver
} // namespace starnuma
