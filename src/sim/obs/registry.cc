#include "sim/obs/registry.hh"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "sim/logging.hh"

namespace starnuma
{
namespace obs
{

std::string
formatCount(std::uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
    return buf;
}

std::string
formatNumber(double v)
{
    // Whole numbers (the common case for counters folded through
    // doubles) print without a fraction; the magnitude bound keeps
    // the integral check exact.
    if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
        v > -1e15 && v < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f", v);
        return buf;
    }
    // Shortest precision that round-trips the exact double. strtod
    // of our own snprintf output is deterministic for a given bit
    // pattern, so the chosen form is too.
    char buf[64];
    for (int prec = 15; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
        if (std::strtod(buf, nullptr) == v)
            break;
    }
    return buf;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
Snapshot::set(const std::string &path, double v)
{
    vals[path] = formatNumber(v);
}

void
Snapshot::setCount(const std::string &path, std::uint64_t v)
{
    vals[path] = formatCount(v);
}

void
Snapshot::merge(const std::string &prefix, const Snapshot &other)
{
    for (const auto &[k, v] : other.vals)
        vals[prefix + k] = v;
}

std::string
Snapshot::get(const std::string &path) const
{
    auto it = vals.find(path);
    return it == vals.end() ? std::string() : it->second;
}

std::string
Snapshot::json() const
{
    std::string out = "{";
    bool first = true;
    for (const auto &[k, v] : vals) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "  \"" + jsonEscape(k) + "\": " + v;
    }
    out += vals.empty() ? "}\n" : "\n}\n";
    return out;
}

std::string
Snapshot::csv() const
{
    std::string out = "stat,value\n";
    for (const auto &[k, v] : vals)
        out += k + "," + v + "\n";
    return out;
}

bool
validStatPath(const std::string &path)
{
    if (path.empty())
        return false;
    for (char c : path) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                  c == '-' || c == '/';
        if (!ok)
            return false;
    }
    return true;
}

void
Registry::add(const std::string &path, Producer p)
{
    sn_assert(validStatPath(path),
              "invalid stats path '%s' (allowed: [A-Za-z0-9._/-])",
              path.c_str());
    auto [it, inserted] = entries.emplace(path, std::move(p));
    (void)it;
    sn_assert(inserted, "duplicate stats path '%s'", path.c_str());
}

void
Registry::addCounter(const std::string &path, const std::uint64_t *v)
{
    add(path, [v](const std::string &p, Snapshot &s) {
        s.setCount(p, *v);
    });
}

void
Registry::addCounterFn(const std::string &path, CountFn fn)
{
    add(path, [fn](const std::string &p, Snapshot &s) {
        s.setCount(p, fn());
    });
}

void
Registry::addGauge(const std::string &path, const double *v)
{
    add(path,
        [v](const std::string &p, Snapshot &s) { s.set(p, *v); });
}

void
Registry::addGaugeFn(const std::string &path, GaugeFn fn)
{
    add(path,
        [fn](const std::string &p, Snapshot &s) { s.set(p, fn()); });
}

void
Registry::addMean(const std::string &path, const stats::Mean *m)
{
    add(path, [m](const std::string &p, Snapshot &s) {
        s.setCount(p + ".count", m->count());
        s.set(p + ".sum", m->sum());
        s.set(p + ".mean", m->mean());
        s.set(p + ".min", m->min());
        s.set(p + ".max", m->max());
    });
}

void
Registry::addHistogram(const std::string &path,
                       const stats::Histogram *h)
{
    add(path, [h](const std::string &p, Snapshot &s) {
        s.setCount(p + ".total", h->total());
        s.setCount(p + ".overflow", h->overflow());
        s.set(p + ".p50", h->quantile(0.50));
        s.set(p + ".p99", h->quantile(0.99));
        for (std::size_t i = 0; i < h->buckets(); ++i) {
            char buf[32];
            std::snprintf(buf, sizeof(buf), ".bucket%02zu", i);
            s.setCount(p + buf, h->bucket(i));
        }
    });
}

// lint: cold-path stats export, once per run when observing
Snapshot
Registry::snapshot() const
{
    Snapshot s;
    // lint: order-independent (std::map, and Snapshot sorts by key)
    for (const auto &[path, producer] : entries)
        producer(path, s);
    return s;
}

} // namespace obs
} // namespace starnuma
