/**
 * @file
 * Fig 11 reproduction: the bandwidth-provisioning study. Four
 * configurations over the baseline: Baseline ISO-BW (coherent
 * links augmented to match the pool's aggregate bandwidth),
 * Baseline 2xBW (every coherent link doubled — impractical
 * overprovisioning), StarNUMA, and StarNUMA Half-BW (x4 CXL
 * links). Paper conclusions: StarNUMA beats even 2xBW by 12% on
 * average, ISO-BW trails StarNUMA by 40%, and Half-BW still beats
 * ISO-BW — brute-force bandwidth is neither necessary nor
 * sufficient.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"
#include "sim/stats.hh"
#include "sim/table.hh"

using namespace starnuma;
using benchutil::benchScale;

namespace
{

const std::vector<driver::SystemSetup> &
configs()
{
    static std::vector<driver::SystemSetup> v{
        driver::SystemSetup::baselineIsoBW(),
        driver::SystemSetup::baseline2xBW(),
        driver::SystemSetup::starnuma(),
        driver::SystemSetup::starnumaHalfBW()};
    return v;
}

void
BM_Fig11_Workload(benchmark::State &state,
                  const std::string &workload)
{
    SimScale scale = benchScale();
    for (auto _ : state)
        for (const auto &cfg : configs())
            benchmark::DoNotOptimize(benchutil::speedupOverBaseline(
                workload, cfg, scale));
    for (const auto &cfg : configs())
        state.counters[cfg.name] = benchutil::speedupOverBaseline(
            workload, cfg, scale);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    benchutil::initBench(&argc, argv);
    for (const auto &w : benchutil::benchWorkloads())
        benchmark::RegisterBenchmark(("Fig11/" + w).c_str(),
                                     BM_Fig11_Workload, w)
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    int rc = benchutil::runBenchmarks(argc, argv);

    SimScale scale = benchScale();
    std::vector<std::string> header{"workload"};
    for (const auto &cfg : configs())
        header.push_back(cfg.name);
    TextTable t(header);
    std::vector<std::vector<double>> cols(configs().size());
    for (const auto &w : benchutil::benchWorkloads()) {
        std::vector<std::string> row{w};
        for (std::size_t i = 0; i < configs().size(); ++i) {
            double s = benchutil::speedupOverBaseline(
                w, configs()[i], scale);
            cols[i].push_back(s);
            row.push_back(TextTable::num(s, 2) + "x");
        }
        t.addRow(row);
    }
    std::vector<std::string> gm{"geomean"};
    for (auto &col : cols)
        gm.push_back(TextTable::num(stats::geomean(col), 2) + "x");
    t.addRow(gm);
    benchutil::printSection(
        "Fig 11: speedup over baseline per link-bandwidth "
        "configuration (paper: ISO-BW 1.14x; StarNUMA beats 2xBW "
        "by 12%)",
        t.str());
    return rc;
}
