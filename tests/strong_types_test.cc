/**
 * @file
 * Unit tests for the tagged-integer strong types (DESIGN.md §8):
 * arithmetic, ordering, hashing, and the ns/cycle conversion
 * round-trips at boundary values.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <sstream>
#include <type_traits>
#include <unordered_map>
#include <unordered_set>

#include "sim/types.hh"

namespace starnuma
{
namespace
{

TEST(StrongTypes, DefaultConstructionIsZero)
{
    Cycles c;
    PageNum p;
    CycleDelta d;
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(p.value(), 0u);
    EXPECT_EQ(d.value(), 0);
}

TEST(StrongTypes, SameTagArithmetic)
{
    Cycles a(100), b(40);
    EXPECT_EQ(a + b, Cycles(140));
    EXPECT_EQ(a - b, Cycles(60));
    EXPECT_EQ(a % b, Cycles(20));
    a += b;
    EXPECT_EQ(a, Cycles(140));
    a -= Cycles(40);
    EXPECT_EQ(a, Cycles(100));
    ++a;
    EXPECT_EQ(a, Cycles(101));
    a--;
    EXPECT_EQ(a, Cycles(100));
}

TEST(StrongTypes, SameTagDivisionDropsTheTag)
{
    // Cycles / Cycles is a dimensionless ratio, not a Cycles value.
    auto ratio = Cycles(1000) / Cycles(250);
    static_assert(std::is_same_v<decltype(ratio), std::uint64_t>);
    EXPECT_EQ(ratio, 4u);
}

TEST(StrongTypes, ScalingByDimensionlessFactorKeepsTheTag)
{
    EXPECT_EQ(Cycles(100) * 3, Cycles(300));
    EXPECT_EQ(3 * Cycles(100), Cycles(300));
    EXPECT_EQ(Cycles(100) / 4, Cycles(25));
    // Floating-point scaling goes through a double intermediate.
    Cycles scaled_up = Cycles(100) * 2.5;
    Cycles scaled_down = Cycles(100) / 2.5;
    EXPECT_EQ(scaled_up, Cycles(250));
    EXPECT_EQ(scaled_down, Cycles(40));
}

TEST(StrongTypes, Ordering)
{
    EXPECT_LT(Cycles(1), Cycles(2));
    EXPECT_LE(Cycles(2), Cycles(2));
    EXPECT_GT(PageNum(9), PageNum(3));
    EXPECT_GE(PageNum(3), PageNum(3));
    EXPECT_NE(Cycles(1), Cycles(2));
    EXPECT_EQ(std::max(Cycles(5), Cycles(7)), Cycles(7));
}

TEST(StrongTypes, MinMaxMatchRepresentationLimits)
{
    EXPECT_EQ(Cycles::max().value(),
              std::numeric_limits<std::uint64_t>::max());
    EXPECT_EQ(Cycles::min().value(), 0u);
    EXPECT_EQ(CycleDelta::min().value(),
              std::numeric_limits<std::int64_t>::min());
}

TEST(StrongTypes, HashingMatchesRepresentation)
{
    EXPECT_EQ(std::hash<PageNum>()(PageNum(42)),
              std::hash<std::uint64_t>()(42u));

    std::unordered_set<PageNum> pages;
    pages.insert(PageNum(1));
    pages.insert(PageNum(1));
    pages.insert(PageNum(2));
    EXPECT_EQ(pages.size(), 2u);
    EXPECT_TRUE(pages.count(PageNum(2)));

    std::unordered_map<PageNum, int> homes;
    homes[PageNum(7)] = 3;
    EXPECT_EQ(homes.at(PageNum(7)), 3);
}

TEST(StrongTypes, StreamOutput)
{
    std::ostringstream os;
    os << Cycles(1234) << " " << CycleDelta(-5);
    EXPECT_EQ(os.str(), "1234 -5");
}

TEST(StrongTypes, CycleDeltaArithmetic)
{
    EXPECT_EQ(cycleDelta(Cycles(10), Cycles(30)), CycleDelta(-20));
    EXPECT_EQ(advance(Cycles(30), CycleDelta(-20)), Cycles(10));
    EXPECT_EQ(advance(Cycles(10), CycleDelta(20)), Cycles(30));
}

TEST(StrongTypes, PageNumberRoundTrip)
{
    EXPECT_EQ(pageNumber(0), PageNum(0));
    EXPECT_EQ(pageNumber(pageBytes - 1), PageNum(0));
    EXPECT_EQ(pageNumber(pageBytes), PageNum(1));
    // pageBase inverts pageNumber on page-aligned addresses.
    for (Addr a : {Addr(0), pageBytes, 37 * pageBytes}) {
        EXPECT_EQ(pageBase(pageNumber(a)), a);
    }
    // The largest representable page round-trips too.
    Addr top = ~Addr(0) & ~(pageBytes - 1);
    EXPECT_EQ(pageBase(pageNumber(top)), top);
}

TEST(StrongTypes, NsToCyclesRoundTripAtBoundaries)
{
    // 2.4 GHz: 1 ns is 2.4 cycles, rounded to nearest.
    EXPECT_EQ(nsToCycles(0.0), Cycles(0));
    EXPECT_EQ(nsToCycles(1.0), Cycles(2));
    EXPECT_EQ(nsToCycles(10.0), Cycles(24));
    EXPECT_EQ(nsToCycles(0.2), Cycles(0)); // 0.48 rounds down
    EXPECT_EQ(nsToCycles(0.3), Cycles(1)); // 0.72 rounds up

    // ns -> cycles -> ns is exact whenever ns * 2.4 is integral.
    for (double ns : {0.0, 5.0, 50.0, 250.0, 1e6}) {
        EXPECT_DOUBLE_EQ(cyclesToNs(nsToCycles(ns)), ns);
    }
    // Otherwise the error is bounded by half a cycle.
    for (double ns : {0.1, 1.3, 99.9, 12345.6}) {
        double back = cyclesToNs(nsToCycles(ns));
        EXPECT_NEAR(back, ns, 0.5 / clockGHz);
    }
}

TEST(StrongTypes, CyclesToNsDoubleOverloadKeepsFractions)
{
    // The double overload must not truncate fractional cycle counts
    // (means of distributions); 1.2 cycles is exactly 0.5 ns.
    EXPECT_DOUBLE_EQ(cyclesToNs(1.2), 0.5);
    EXPECT_DOUBLE_EQ(cyclesToNs(0.0), 0.0);
}

TEST(StrongTypes, SerializationCyclesBoundaries)
{
    EXPECT_EQ(serializationCycles(0, 3.0), Cycles(0));
    // 1 byte at 2.4 GB/s: exactly one cycle.
    EXPECT_EQ(serializationCycles(1, 2.4), Cycles(1));
    // A 4 KiB page at 3 GB/s: 4096 * 0.8 = 3276.8 -> 3277.
    EXPECT_EQ(serializationCycles(pageBytes, 3.0), Cycles(3277));
}

} // namespace
} // namespace starnuma
