/**
 * @file
 * Chrome trace_event / Perfetto-compatible tracing. A TraceSession
 * buffers pre-serialized JSON events and writes one
 * {"traceEvents":[...]} file (open it in https://ui.perfetto.dev or
 * chrome://tracing). Three timelines, kept apart by pid:
 *
 *  pid 1 "host":      wall-clock duration events ("ph":"X") for
 *                     experiments, phases, and pool tasks, one tid
 *                     per pool worker (tid 0 = the calling thread);
 *                     plus instant events ("ph":"i") for each
 *                     migration decision.
 *  pid 2 "simulated": counter events ("ph":"C") sampled on the
 *                     simulated clock (ts = simulated ns), one tid
 *                     per phase — link utilization and DRAM queue
 *                     depth per pacer epoch.
 *
 * Off by default; every emission site guards on enabled() (a
 * relaxed atomic load), so a build without STARNUMA_TRACE_OUT pays
 * one branch per would-be event. Timestamps are wall clock only
 * inside this file — they never reach simulation results.
 */

#ifndef STARNUMA_SIM_OBS_TRACE_SESSION_HH
#define STARNUMA_SIM_OBS_TRACE_SESSION_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/annotations.hh"
#include "sim/sync.hh"

namespace starnuma
{
namespace obs
{

/** Trace pids: host wall-clock timeline vs simulated-clock
 *  timeline. */
constexpr int tracePidHost = 1;
constexpr int tracePidSim = 2;

/** Incremental builder for a trace event's "args" object. */
class TraceArgs
{
  public:
    TraceArgs &add(const char *key, std::uint64_t v);
    TraceArgs &add(const char *key, std::int64_t v);
    TraceArgs &add(const char *key, int v);
    TraceArgs &add(const char *key, double v);
    TraceArgs &add(const char *key, const std::string &v);

    /** Append @p value verbatim (must already be valid JSON). */
    TraceArgs &addRaw(const char *key, const std::string &value);

    /** The assembled {"k":v,...} object ("{}" when empty). */
    std::string str() const;

  private:
    std::string body;
};

/** The process-wide trace buffer. */
class TraceSession
{
  public:
    /**
     * First use auto-starts the session when STARNUMA_TRACE_OUT is
     * set (an atexit hook writes the file on shutdown).
     */
    static TraceSession &global();

    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Enable tracing; write() targets @p path ("" = explicit
     *  writeTo only). Clears any buffered events. */
    void start(const std::string &path);

    /** Disable and drop buffered events. */
    void stop();

    /** Microseconds of wall clock since start(). */
    double nowUs() const;

    /** Host-timeline tid of the calling thread (pool worker + 1,
     *  0 for any non-pool thread). */
    static int hostTid();

    // --- emission (callers should pre-check enabled()) ---

    /** Complete duration event ("ph":"X") on the host timeline. */
    void completeEvent(const std::string &name, const char *cat,
                       double ts_us, double dur_us, int tid,
                       const std::string &args = "");

    /** Thread-scoped instant event ("ph":"i") at @p ts_us. */
    void instantEvent(const std::string &name, const char *cat,
                      double ts_us, int pid, int tid,
                      const std::string &args = "");

    /** Instant event on the host timeline, now, current worker. */
    void instantNow(const std::string &name, const char *cat,
                    const std::string &args = "");

    /** Counter event ("ph":"C"); series live in @p args. */
    void counterEvent(const std::string &name, double ts_us,
                      int pid, int tid, const std::string &args);

    /** Metadata event naming a process or thread. */
    void nameProcess(int pid, const std::string &name);
    void nameThread(int pid, int tid, const std::string &name);

    /** Events buffered so far. */
    std::size_t eventCount() const;

    /**
     * Write {"traceEvents":[...]} to @p path, appending a final
     * thread-pool profile counter when the pool exists.
     * @return false on IO error.
     */
    bool writeTo(const std::string &path);

    /** writeTo the configured path; true when nothing to do. */
    bool write();

  private:
    TraceSession() = default;

    void push(std::string event);
    void appendPoolProfile();

    mutable Mutex mu;
    // Same relaxed-gate pattern as StatsSink::enabled_ (obs.hh):
    // one relaxed load per would-be event; the buffer and path are
    // protected by mu, and push() re-checks under the lock.
    std::atomic<bool> enabled_{false};
    std::string path_ STARNUMA_GUARDED_BY(mu);
    // Written by start() and read lock-free by every nowUs() call;
    // relaxed is fine because timestamps are host-domain
    // diagnostics: a racing start() can only skew the very first
    // spans' timestamps, never simulation results.
    std::atomic<std::uint64_t> epochNs{0};
    std::vector<std::string> events STARNUMA_GUARDED_BY(mu);
};

/**
 * RAII duration span on the host timeline. Construction and
 * destruction cost one branch each when tracing is off.
 */
class TraceSpan
{
  public:
    TraceSpan(std::string name, const char *cat,
              std::string args = "");
    ~TraceSpan();

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

  private:
    std::string name_;
    const char *cat_;
    std::string args_;
    double startUs = 0;
    bool active = false;
};

} // namespace obs
} // namespace starnuma

#endif // STARNUMA_SIM_OBS_TRACE_SESSION_HH
