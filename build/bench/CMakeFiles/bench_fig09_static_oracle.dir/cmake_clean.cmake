file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_static_oracle.dir/bench_fig09_static_oracle.cc.o"
  "CMakeFiles/bench_fig09_static_oracle.dir/bench_fig09_static_oracle.cc.o.d"
  "CMakeFiles/bench_fig09_static_oracle.dir/bench_util.cc.o"
  "CMakeFiles/bench_fig09_static_oracle.dir/bench_util.cc.o.d"
  "bench_fig09_static_oracle"
  "bench_fig09_static_oracle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_static_oracle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
