/**
 * @file
 * Fig 13 reproduction: TC's page sharing-degree and access
 * distributions — the other end of the workload spectrum from
 * BFS (Fig 2). TC's widely shared pages are read-only (the CSR),
 * so replication would be coherence-free but capacity-prohibitive:
 * the paper measures 60%/80% of the dataset touched by 16/8+
 * sockets. Also prints §V-F's replication-vs-pooling comparison
 * quantities for both TC and BFS.
 */

#include <benchmark/benchmark.h>

#include <map>

#include "bench_util.hh"
#include "sim/table.hh"
#include "trace/profile.hh"
#include "workloads/workload.hh"

using namespace starnuma;

namespace
{

const trace::SharingProfile &
profileOf(const std::string &workload)
{
    static SimScale scale = benchutil::benchScale();
    static std::map<std::string, trace::SharingProfile> memo;
    auto it = memo.find(workload);
    if (it == memo.end()) {
        auto trace = workloads::captureWorkload(workload, scale);
        it = memo.emplace(workload,
                          trace::SharingProfile(
                              trace, scale.coresPerSocket,
                              scale.sockets))
                 .first;
    }
    return it->second;
}

void
BM_Fig13_TcSharingProfile(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(profileOf("tc").totalPages());
    const auto &p = profileOf("tc");
    state.counters["pages_deg16"] = p.pageFraction(16);
    state.counters["pages_8plus"] = 1.0 - p.pagesWithAtMost(7);
    state.counters["rw_at_16"] = p.readWriteAccessFraction(16);
}
BENCHMARK(BM_Fig13_TcSharingProfile)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

} // anonymous namespace

int
main(int argc, char **argv)
{
    benchutil::initBench(&argc, argv);
    int rc = benchutil::runBenchmarks(argc, argv);
    const auto &p = profileOf("tc");

    TextTable t({"sharers", "pages", "accesses", "RW accesses"});
    for (int d = 1; d <= p.sockets(); ++d) {
        if (p.pageFraction(d) < 0.001 && p.accessFraction(d) < 0.001)
            continue;
        t.addRow({std::to_string(d),
                  TextTable::pct(p.pageFraction(d)),
                  TextTable::pct(p.accessFraction(d)),
                  TextTable::pct(p.readWriteAccessFraction(d))});
    }
    benchutil::printSection(
        "Fig 13: TC page sharing degree and access distributions",
        t.str());

    const auto &bfs = profileOf("bfs");
    TextTable s({"quantity", "TC", "BFS", "paper (TC)"});
    s.addRow({"pages touched by 16 sockets",
              TextTable::pct(p.pageFraction(16)),
              TextTable::pct(bfs.pageFraction(16)), "60%"});
    s.addRow({"pages touched by 8+ sockets",
              TextTable::pct(1.0 - p.pagesWithAtMost(7)),
              TextTable::pct(1.0 - bfs.pagesWithAtMost(7)), "80%"});
    s.addRow({"RW share of accesses to 16-sharer pages",
              TextTable::pct(p.readWriteAccessFraction(16)),
              TextTable::pct(bfs.readWriteAccessFraction(16)),
              "~0% (read-only)"});
    benchutil::printSection(
        "Sec V-F: replication vs pooling — TC is read-only shared "
        "but capacity-heavy; BFS is read-write shared",
        s.str());
    return rc;
}
