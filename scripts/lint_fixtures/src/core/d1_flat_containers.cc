// Fixture: D1 — FlatMap/FlatSet (sim/flat_map.hh) iterate in
// insertion order, so loops over them need no annotation. The name
// 'hotness' is deliberately shared with d1_unordered_iteration.cc's
// unordered member: the per-file flat declaration must win over the
// globally-collected unordered name. A name declared both flat AND
// unordered in the same file stays flagged (conservative).

#include <unordered_map>

namespace fixture
{

template <typename K, typename V> struct FlatMap
{
    const V *begin() const { return nullptr; }
    const V *end() const { return nullptr; }
};
template <typename K> struct FlatSet
{
    const K *begin() const { return nullptr; }
    const K *end() const { return nullptr; }
};

struct FlatState
{
    FlatMap<int, int> hotness;
    FlatSet<int> residents;
};

int
sumFlat(const FlatState &s)
{
    int sum = 0;
    for (const auto &v : s.hotness) // flat: no finding
        sum += v;
    for (int r : s.residents) // flat: no finding
        sum += r;
    return sum;
}

int
sumFlatAlias()
{
    // Same name declared flat here and unordered below: the
    // exemption must not apply anywhere in this file.
    FlatMap<int, int> mixed;
    int sum = 0;
    for (const auto &v : mixed) // expect-lint: D1
        sum += v;
    return sum;
}

int
sumUnorderedAlias()
{
    std::unordered_map<int, int> mixed;
    int sum = 0;
    for (const auto &[k, v] : mixed) // expect-lint: D1
        sum += v;
    return sum;
}

} // namespace fixture
