#include "topology/link.hh"

#include <algorithm>

#include "sim/obs/registry.hh"

namespace starnuma
{
namespace topology
{

Link::Link(LinkType type, double bandwidth_gbps,
           Cycles one_way_latency, std::string name)
    : linkType(type), gbps(bandwidth_gbps),
      propLatency(one_way_latency), name_(std::move(name))
{
}

Cycles
Link::transfer(Dir dir, Cycles now, Addr bytes)
{
    Direction &d = side(dir);
    Cycles start = std::max(now, d.nextFree);
    Cycles ser = serializationCycles(bytes, gbps);
    d.queueDelay.sample(static_cast<double>((start - now).value()));
    d.nextFree = start + ser;
    d.bytes += bytes;
    d.busy += ser;
    return start + ser + propLatency;
}

void
Link::resetContention()
{
    for (auto &d : dirs) {
        d.nextFree = Cycles();
        d.bytes = 0;
        d.busy = Cycles();
        d.queueDelay.reset();
    }
}

std::uint64_t
Link::bytesMoved(Dir dir) const
{
    return side(dir).bytes;
}

Cycles
Link::busyCycles(Dir dir) const
{
    return side(dir).busy;
}

double
Link::meanQueueDelay(Dir dir) const
{
    return side(dir).queueDelay.mean();
}

double
Link::utilization(Dir dir, Cycles horizon) const
{
    if (horizon == Cycles())
        return 0.0;
    return static_cast<double>(side(dir).busy.value()) /
           static_cast<double>(horizon.value());
}

// lint: cold-path stats export, once per run when observing
void
Link::registerStats(obs::Registry &r,
                    const std::string &prefix) const
{
    const char *dirName[2] = {"fwd", "bwd"};
    for (int d = 0; d < 2; ++d) {
        const Direction &s = dirs[d];
        std::string p = prefix + "." + dirName[d];
        r.addCounter(p + ".bytes", &s.bytes);
        r.addCounterFn(p + ".busyCycles",
                       [&s] { return s.busy.value(); });
        r.addMean(p + ".queueDelay", &s.queueDelay);
    }
}

} // namespace topology
} // namespace starnuma
