/**
 * @file
 * Small-scale golden-number regression fixture. The pipeline is
 * deterministic (per-task RNG streams, canonical parallel merge),
 * so model output at a fixed scale is exactly reproducible; these
 * tests pin the Table III single-socket / 16-socket baselines and
 * the Fig 8 speedup ordering at a miniature scale. A perf PR that
 * silently changes model output — not just its speed — fails here
 * and must update the goldens deliberately.
 *
 * Golden values were produced by this harness at the pinned scale;
 * the tolerance only absorbs compiler/codegen noise (different
 * optimization or sanitizer builds), not model changes.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "driver/sweep.hh"
#include "driver/trace_sim.hh"
#include "sim/obs/obs.hh"
#include "sim/parallel.hh"
#include "workloads/workload.hh"

namespace starnuma
{
namespace
{

/** The pinned miniature scale: 2 phases of 100k instructions. */
SimScale
goldenScale()
{
    SimScale s;
    s.phases = 2;
    s.phaseInstructions = 100000;
    return s;
}

/** Absolute tolerance for pinned IPC values (codegen noise only). */
constexpr double ipcTol = 1e-6;

struct Golden
{
    const char *workload;
    double ipcSingleSocket; ///< Table III "IPC (1s)" reference
    double ipcBaseline16;   ///< Table III 16-socket baseline
    double llcMpki;         ///< Table III MPKI (baseline 16-socket)
};

/** Golden model output at goldenScale(), in Fig 8 workload order. */
const Golden goldens[] = {
    {"bfs", 0.961706592062, 0.45625574023, 14.1818181818},
    {"tc", 1.48119394447, 1.08469606068, 7.75172413793},
    {"tpcc", 0.257033455928, 0.0292076020516, 94.6323529412},
    {"fmi", 0.426062493343, 0.0724383714576, 55.3382352941},
};

TEST(Golden, Table3BaselinesPinned)
{
    SimScale s = goldenScale();

    std::vector<driver::SweepJob> jobs;
    for (const Golden &g : goldens) {
        jobs.push_back({g.workload, driver::SystemSetup::baseline(),
                        s, /*singleSocket=*/false});
        jobs.push_back({g.workload, driver::SystemSetup::baseline(),
                        s, /*singleSocket=*/true});
    }
    auto results = driver::runSweep(jobs);

    for (std::size_t i = 0; i < std::size(goldens); ++i) {
        const Golden &g = goldens[i];
        const auto &multi = results[2 * i].metrics;
        const auto &single = results[2 * i + 1].metrics;
        SCOPED_TRACE(g.workload);
        EXPECT_NEAR(single.ipc, g.ipcSingleSocket, ipcTol);
        EXPECT_NEAR(multi.ipc, g.ipcBaseline16, ipcTol);
        EXPECT_NEAR(multi.llcMpki, g.llcMpki, 1e-4);
        // The NUMA gap Table III illustrates: single-socket local
        // execution is strictly faster than 16-socket NUMA.
        EXPECT_GT(single.ipc, multi.ipc);
    }
}

TEST(Golden, Fig8SpeedupOrderingPinned)
{
    SimScale s = goldenScale();

    std::vector<std::string> ws;
    for (const Golden &g : goldens)
        ws.push_back(g.workload);
    auto results = driver::runSweep(driver::crossJobs(
        ws,
        {driver::SystemSetup::baseline(),
         driver::SystemSetup::starnuma()},
        s));

    for (std::size_t i = 0; i < ws.size(); ++i) {
        const auto &base = results[2 * i].metrics;
        const auto &star = results[2 * i + 1].metrics;
        SCOPED_TRACE(ws[i]);
        double speedup = star.speedupOver(base);
        // StarNUMA must stay >= baseline on the sharing-heavy
        // workloads; at this miniature scale BFS's two phases leave
        // little room to migrate, so it is allowed to break even.
        if (ws[i] == "bfs")
            EXPECT_GE(speedup, 0.999);
        else
            EXPECT_GE(speedup, 1.0);
    }

    // The pinned ordering at this scale: TC gains the most, then
    // TPCC, then FMI (§V-A's sharing-driven ranking).
    double sp_tc =
        results[3].metrics.speedupOver(results[2].metrics);
    double sp_tpcc =
        results[5].metrics.speedupOver(results[4].metrics);
    double sp_fmi =
        results[7].metrics.speedupOver(results[6].metrics);
    EXPECT_GT(sp_tc, sp_tpcc);
    EXPECT_GT(sp_tpcc, sp_fmi);
}

// --- Byte-stability of every exported artifact across pool sizes ---

std::string
fileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

/**
 * The step-B checkpoint file and the stats JSON/CSV exports must be
 * byte-identical whether the pool runs 1, 4, or 8 worker threads —
 * the determinism contract the flat-table replay path (DESIGN.md
 * §12) and the canonical merge order both feed. A single changed
 * byte here means some code path let thread scheduling leak into
 * model output or artifact layout.
 */
TEST(Golden, ArtifactsByteIdenticalAcrossPoolSizes)
{
    SimScale s = SimScale::tiny();
    // A real capture (not a synthetic trace) so replay takes the
    // dense flat-table path that production runs use.
    auto trace = workloads::makeWorkload("tc")->capture(s);
    obs::StatsSink &sink = obs::StatsSink::global();
    std::string ckpt_path =
        testing::TempDir() + "golden_ckpt.bin";

    struct Artifacts
    {
        std::string checkpoints;
        std::string json;
        std::string csv;
    };
    // TraceSim keeps a reference to the setup: it must outlive sim.
    driver::SystemSetup setup = driver::SystemSetup::starnuma();
    auto run = [&](int pool_size) {
        ThreadPool::setGlobalThreads(pool_size);
        sink.start("");
        driver::TraceSim sim(setup, s);
        auto result = sim.run(trace);
        Artifacts a;
        a.json = sink.collectJson();
        a.csv = sink.collect().csv();
        sink.stop();
        EXPECT_TRUE(result.save(ckpt_path));
        a.checkpoints = fileBytes(ckpt_path);
        return a;
    };

    Artifacts serial = run(1);
    EXPECT_GT(serial.checkpoints.size(), 0u);
    EXPECT_GT(serial.json.size(), 2u);
    EXPECT_GT(serial.csv.size(), serial.json.empty() ? 0u : 10u);
    for (int pool_size : {4, 8}) {
        SCOPED_TRACE("pool=" + std::to_string(pool_size));
        Artifacts a = run(pool_size);
        EXPECT_EQ(a.checkpoints, serial.checkpoints);
        EXPECT_EQ(a.json, serial.json);
        EXPECT_EQ(a.csv, serial.csv);
    }
    ThreadPool::setGlobalThreads(0);
    std::remove(ckpt_path.c_str());
}

} // anonymous namespace
} // namespace starnuma
