#!/usr/bin/env python3
"""starnuma-taint: interprocedural determinism-taint and cache-key
purity analyzer (DESIGN.md §15). Built on the shared tokenizer,
function indexer and name-based call graph in starnuma_lint_core.py;
clang-free like the rest of the D-rule family.

Rules
-----
D12 Nondeterminism taint. Values originating at a taint source must
    not reach an artifact sink. Sources: wall-clock reads
    (``steady_clock``/``system_clock``/``clock_gettime``/...)
    outside the trusted ``src/sim/obs/`` layer, thread ids,
    pointer-to-integer ``reinterpret_cast``, ``getenv`` outside a
    documented ``STARNUMA_*`` gate line, host RNG outside
    ``src/sim/rng.*``, and iteration over a non-Flat unordered
    container not annotated ``// lint: order-independent``. Sinks:
    the checkpoint/trace serializers (``putVarint``/``putDouble``/
    ``encodeColumnar``/``saveColumnar``), ``obs::Registry``/
    ``TimeSeries``/``AuditLog`` emission and the ``StatsSink``/
    ``TimeSeriesSink``/``AuditSink``/``Snapshot`` aggregation
    methods, bench-JSON ``recordResult``, and member stores into the
    artifact structs (``TraceSimResult``/``Checkpoint``/
    ``WorkloadTrace``/``AuditRecord``). Taint propagates over the
    call graph through assignments, returns, call arguments and
    class members; findings report the full source -> fn -> ... ->
    sink chain. Escape: ``// lint: taint-ok <reason>`` on the source
    or the sink line.

D13 Cache-key purity. Functions annotated ``// lint: artifact-root
    <name>`` are the writers of artifact <name> (``step_a_trace``,
    ``step_b_checkpoint``); every function reachable from a root may
    read only declared inputs — anything in the D12 source
    vocabulary found in reachable code is an undeclared input.
    ``getenv`` of a ``STARNUMA_*`` variable is a documented gate: it
    is allowed and recorded in the artifact's manifest instead. The
    per-artifact input manifest (``scripts/artifact_inputs.json``)
    is the cache-key schema for ROADMAP item 5 and is pinned by a
    ctest golden (``--check-manifest``). Escape: ``// lint:
    declared-input <reason>`` (a reviewed legitimate input) or
    ``// lint: taint-ok <reason>`` (reviewed: does not influence
    artifact bytes) on the line.

D14 Sink-registration discipline. Every stats/time-series/audit
    emission site (``Registry::add*``, ``TimeSeries::sample``/
    ``addStream``, ``AuditLog::append``) outside ``src/sim/obs/``
    must sit in a function that is a cold root — annotated
    ``// lint: cold-path``, carrying ``STARNUMA_COLD_PATH``, or
    named ``registerStats`` — or is reachable from one, so no
    hot-path emission can be added unguarded. Escape: ``// lint:
    sink-ok <reason>`` on the emission line.

The engine is deliberately over-approximate (name-based call graph,
statement-level flow granularity, per-class member smearing); the
escape annotations carry the reviewed exceptions, and
scripts/check_hotpath_syms.sh backstops the artifact paths at the
binary level.

Usage
-----
    starnuma_taint.py [paths...]      # default: src bench (repo root)
    starnuma_taint.py --self-test     # run against scripts/lint_fixtures
    starnuma_taint.py --write-manifest [PATH]
    starnuma_taint.py --check-manifest [PATH]
    starnuma_taint.py --dump-reach    # list artifact-reachable functions

Exit status: 0 when clean, 1 on findings/manifest drift, 2 on usage
errors.
"""

import json
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import starnuma_lint_core as core  # noqa: E402

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

RULES = ("D12", "D13", "D14")

TAINT_OK = "lint: taint-ok"
DECLARED_INPUT = "lint: declared-input"
SINK_OK = "lint: sink-ok"
COLD_ANNOTATION = "lint: cold-path"
ORDER_ANNOTATION = "lint: order-independent"
COLD_ATTRIBUTE = "STARNUMA_COLD_PATH"
ARTIFACT_ROOT_RE = re.compile(r"lint:\s*artifact-root\s+([A-Za-z_]\w*)")
ENV_NAME_RE = re.compile(r"STARNUMA_\w+")

MANIFEST_DEFAULT = os.path.join(REPO_ROOT, "scripts",
                                "artifact_inputs.json")
MANIFEST_SCHEMA = "starnuma-artifact-inputs-v1"

# --- D12/D13 source vocabulary --------------------------------------

# Wall-clock reads. src/sim/obs/ is the one place host time is
# legitimate (Chrome-trace timestamps, wall-time stats channels).
WALLCLOCK = frozenset((
    "steady_clock", "system_clock", "high_resolution_clock",
    "clock_gettime", "gettimeofday",
))
THREAD_ID = frozenset(("get_id", "pthread_self", "gettid"))
# Host randomness; src/sim/rng.* is the seeded facility the repo
# funnels all randomness through (D2) and is exempt.
HOST_RNG_CALLS = frozenset(("rand", "srand"))
HOST_RNG_TYPES = frozenset((
    "random_device", "mt19937", "mt19937_64", "minstd_rand",
    "minstd_rand0", "default_random_engine",
))
GETENV = frozenset(("getenv", "secure_getenv"))
# reinterpret_cast to one of these launders an address into an
# integer — pointer values differ run to run under ASLR.
INT_CAST_TYPES = frozenset((
    "uintptr_t", "intptr_t", "uint64_t", "int64_t", "uint32_t",
    "size_t", "ptrdiff_t",
))

OBS_DIR = "src/sim/obs/"

UNORDERED_DECL = re.compile(r"\bunordered_(?:map|set|multimap|"
                            r"multiset)\s*<")
FLAT_DECL = re.compile(r"\bFlat(?:Map|Set)\s*<")
RANGE_FOR = re.compile(
    r"\bfor\s*\(([^;()]*?):\s*&?\s*([A-Za-z_][\w.\->]*)\s*\)")

# --- D12 sink vocabulary --------------------------------------------

# method name -> receiver classes it is a sink on (receivers are
# matched through a tree-wide declared-variable-name table, so
# stats::Mean::sample does not alias TimeSeries::sample).
METHOD_SINKS = {
    "sample": ("TimeSeries",),
    "addStream": ("TimeSeries",),
    "append": ("AuditLog",),
    "addCounter": ("Registry",),
    "addCounterFn": ("Registry",),
    "addGauge": ("Registry",),
    "addGaugeFn": ("Registry",),
    "addMean": ("Registry",),
    "addHistogram": ("Registry",),
    "add": ("StatsSink", "TimeSeriesSink", "AuditSink"),
    "set": ("Snapshot",),
    "setCount": ("Snapshot",),
    "setFormatted": ("Snapshot",),
    # Writes into the content-addressed artifact store persist
    # artifact bytes (DESIGN.md §16).
    "putObject": ("Store",),
}
# Free/utility functions that serialize artifact bytes directly.
BARE_SINKS = frozenset((
    "recordResult", "putVarint", "putDouble", "encodeColumnar",
    "saveColumnar",
))
# Member stores into these structs become artifact bytes.
SINK_STORE_CLASSES = ("TraceSimResult", "Checkpoint",
                      "WorkloadTrace", "AuditRecord")

# --- D14 emission vocabulary (registration-gated subset: the
# aggregation Sinks' own add() runs behind enabled() gates and is
# not the hazard) ----------------------------------------------------

EMISSION_METHODS = {
    "sample": ("TimeSeries",),
    "addStream": ("TimeSeries",),
    "append": ("AuditLog",),
    "addCounter": ("Registry",),
    "addCounterFn": ("Registry",),
    "addGauge": ("Registry",),
    "addGaugeFn": ("Registry",),
    "addMean": ("Registry",),
    "addHistogram": ("Registry",),
}

RECEIVER_CLASSES = sorted(
    {c for v in METHOD_SINKS.values() for c in v} |
    {c for v in EMISSION_METHODS.values() for c in v} |
    set(SINK_STORE_CLASSES))

# Declared-input schema for ROADMAP item 5's cache keys: every byte
# of the artifact must be a function of these fields (plus the
# declared_env gates the analyzer discovers).
CACHE_KEYS = {
    "step_a_trace": [
        "workload.name",
        "workload.parameters",
        "scale",
        "trace.format_version",
        "code.epoch",
    ],
    "step_b_checkpoint": [
        "trace.content",
        "setup.topology",
        "setup.policy",
        "scale",
        "rng.seed",
        "checkpoint.format_version",
    ],
    # Per-phase resume snapshots of the incremental sweep engine
    # (DESIGN.md §16): keyed by the policy-schedule *prefix* applied
    # before the snapshot phase, so cells that diverge at phase k
    # share every state object below k.
    "step_b_state": [
        "phase",
        "workload.name",
        "trace.content",
        "setup.topology",
        "setup.policy",
        "policy.prefix",
        "scale",
        "rng.seed",
        "checkpoint.format_version",
        "code.epoch",
    ],
    # Full experiment-result bundles ("STARRES1"): metrics + the
    # embedded step-B artifact + the stats snapshots.
    "experiment_result": [
        "workload.name",
        "trace.content",
        "setup.topology",
        "setup.policy",
        "policy.schedule",
        "scale",
        "rng.seed",
        "obs.stats",
        "checkpoint.format_version",
        "result.format_version",
        "code.epoch",
    ],
    # The key-derivation functions themselves (driver/artifact_key.cc)
    # are artifact roots so D12 proves the keys read only declared,
    # deterministic inputs; they have no key of their own.
    "cache_key": [],
}

_DECL_NON_NAMES = frozenset((
    "const", "constexpr", "final", "override", "operator", "public",
    "private", "protected", "return", "new",
))


def rng_exempt(rel):
    base = os.path.basename(rel)
    return rel.startswith("src/sim/") and base.startswith("rng.")


def trusted(rel):
    """The obs implementation layer and the seeded RNG facility are
    trusted kernels: sources inside them are legitimate, and taint
    is not propagated through their bodies."""
    return rel.startswith(OBS_DIR) or rng_exempt(rel)


def class_of(f):
    return f.qualname.rsplit("::", 1)[0] if "::" in f.qualname \
        else None


class Flow:
    """One taint flow: the source occurrence plus the function chain
    it travelled (first discovery wins, so chains are stable and the
    fixpoint terminates on key growth alone)."""

    __slots__ = ("kind", "rel", "line", "chain")

    def __init__(self, kind, rel, line, chain):
        self.kind = kind
        self.rel = rel
        self.line = line
        self.chain = chain


def extend(flow, qualname):
    if qualname in flow.chain:
        return flow
    return Flow(flow.kind, flow.rel, flow.line,
                flow.chain + (qualname,))


def merge(dst, src, via=None):
    """Add @p src flows into @p dst (first-wins per source id);
    returns whether anything new appeared."""
    changed = False
    for fid, fl in src.items():
        if fid not in dst:
            dst[fid] = extend(fl, via) if via else fl
            changed = True
    return changed


class Analyzer:
    def __init__(self, tree):
        self.tree = tree
        self.graph = core.CallGraph(tree)
        self.decl = self._build_decl_table()
        self.params = {}       # id(f) -> [param name or None]
        self.stmts = {}        # id(f) -> [(tok_start, tok_end)]
        self.edges = {}        # id(f) -> [FunctionDef]
        self.has_source = {}   # id(f) -> bool
        self.range_sites = {}  # rel -> [(line, varname)]
        self.fn_param = {}     # id(f) -> {pname: {src_id: Flow}}
        self.fn_ret = {}       # id(f) -> {src_id: Flow}
        self.member = {}       # "Cls::name" -> {src_id: Flow}
        self.env_gates = {}    # (rel, line) -> (env_name, f)
        self.findings = []
        self.seen = set()
        self.artifacts = {}    # name -> {"roots", "reach", "env",
                               #          "escapes"}
        self.n_cold_roots = 0
        self._prepare()

    # --- one-time prep ----------------------------------------------

    def _build_decl_table(self):
        """var_classes: declared-name -> set of class names it is
        declared with, covering every class the call graph knows
        plus the sink receiver classes (handles both ``Cls x`` and
        ``Cls<T...> x`` forms). self.decl derives the per-sink-class
        view from it."""
        classes = set(RECEIVER_CLASSES)
        for sf in self.tree.values():
            for f in sf.funcs:
                c = class_of(f)
                if c:
                    classes.add(c)
        rx = re.compile(r"\b(%s)\b"
                        % "|".join(re.escape(c)
                                   for c in sorted(classes)))
        name_re = re.compile(r"\s*[&*]?\s*&?\s*([A-Za-z_]\w*)")
        self.var_classes = {}
        for sf in self.tree.values():
            code = "\n".join(sf.code_lines)
            n = len(code)
            for m in rx.finditer(code):
                cls = m.group(1)
                i = m.end()
                while i < n and code[i] in " \t\n":
                    i += 1
                if i < n and code[i] == "<":
                    depth = 0
                    while i < n:
                        if code[i] == "<":
                            depth += 1
                        elif code[i] == ">":
                            depth -= 1
                            if depth == 0:
                                break
                        i += 1
                    i += 1
                elif i < n and code[i] == ":":
                    continue  # Cls::... is a use, not a declaration
                dm = name_re.match(code, i)
                if dm:
                    name = dm.group(1)
                    if name not in _DECL_NON_NAMES and \
                            name not in core.NON_CALL_KEYWORDS:
                        self.var_classes.setdefault(
                            name, set()).add(cls)
        table = {cls: set() for cls in RECEIVER_CLASSES}
        for name, owners in self.var_classes.items():
            for cls in owners:
                if cls in table:
                    table[cls].add(name)
        return table

    def _resolve(self, name, qual, recv):
        """Call resolution: class-qualified exact match first; for
        ``obj.method(...)`` calls, restrict same-name candidates to
        classes that declare a variable named ``obj`` (falling back
        to the full over-approximate candidate set when the
        receiver's type is unknown)."""
        if qual:
            return self.graph.resolve(name, qual)
        cands = self.graph.resolve(name, None)
        if recv and len(cands) > 1:
            owners = self.var_classes.get(recv)
            if owners:
                filt = [f for f in cands if class_of(f) in owners]
                if filt:
                    return filt
        return cands

    def _prepare(self):
        for rel in sorted(self.tree):
            sf = self.tree[rel]
            self.range_sites[rel] = self._find_range_sites(sf)
            for f in sf.funcs:
                self.params[id(f)] = core.param_names(sf.toks, f)
                self.stmts[id(f)] = self._segment(sf, f)
                self.edges[id(f)] = self._call_edges(sf, f)
                self.has_source[id(f)] = self._scan_sources(sf, f)

    def _find_range_sites(self, sf):
        """(line, loop_var) for every range-for over a non-Flat
        unordered container not annotated order-independent."""
        code = "\n".join(sf.code_lines)
        unordered = core.collect_decl_names(code, UNORDERED_DECL) - \
            core.collect_decl_names(code, FLAT_DECL)
        sites = []
        if not unordered:
            return sites
        for idx, line_code in enumerate(sf.code_lines):
            window = " ".join(sf.code_lines[idx:idx + 2])
            m = RANGE_FOR.search(window)
            if not m or m.start() > len(line_code):
                continue
            container = re.split(r"[.\->\[]", m.group(2))[0]
            if container not in unordered:
                continue
            if core.line_annotated(sf, idx + 1, ORDER_ANNOTATION):
                continue
            for var in re.findall(r"[A-Za-z_]\w*", m.group(1)):
                if var not in core.NON_CALL_KEYWORDS:
                    sites.append((idx + 1, var))
        return sites

    def _segment(self, sf, f):
        """Statement token ranges: split the body at ';'/'{'/'}'
        outside parentheses (so a lambda passed as a call argument
        stays inside the call's statement and its captures reach the
        sink check)."""
        toks = sf.toks
        out = []
        start = f.body_start
        depth = 0
        j = f.body_start
        while j < f.body_end:
            t = toks[j].text
            if t == "(":
                depth += 1
            elif t == ")":
                depth = max(0, depth - 1)
            elif depth == 0 and t in (";", "{", "}"):
                if j > start:
                    out.append((start, j))
                start = j + 1
            j += 1
        if f.body_end > start:
            out.append((start, f.body_end))
        return out

    def _call_edges(self, sf, f):
        """Outgoing call targets (resolved calls + constructor
        mentions), for the D13/D14 reachability walks."""
        toks = sf.toks
        out = []
        seen = set()
        j = f.body_start
        while j < f.body_end:
            t = toks[j].text
            if core.is_ident(t):
                nxt = toks[j + 1].text if j + 1 < f.body_end else ""
                prv = toks[j - 1].text if j > 0 else ""
                targets = ()
                if nxt == "(" and t not in core.NON_CALL_KEYWORDS:
                    qual, recv = self._call_context(toks, j)
                    targets = self._resolve(t, qual, recv)
                elif nxt != "(" and t in self.graph.ctor_classes:
                    targets = self.graph.ctor_classes[t]
                for tgt in targets:
                    if id(tgt) not in seen:
                        seen.add(id(tgt))
                        out.append(tgt)
            j += 1
        return out

    # --- source classification --------------------------------------

    def _source_kind(self, sf, f, j, honor_escape=True):
        """Source description for the token at @p j, or None.
        Records STARNUMA_* getenv gates as a side effect. With
        @p honor_escape a `// lint: taint-ok` line reads as no
        source; D13 passes False so reviewed escapes still land in
        the manifest."""
        toks = sf.toks
        t = toks[j].text
        rel = sf.rel
        if rel.startswith(OBS_DIR):
            return None
        line = toks[j].line
        nxt = toks[j + 1].text if j + 1 < len(toks) else ""
        kind = None
        if t in WALLCLOCK:
            kind = "wall-clock read ('%s')" % t
        elif t in THREAD_ID and nxt == "(":
            kind = "thread-id read ('%s')" % t
        elif t in HOST_RNG_CALLS and nxt == "(" and \
                not rng_exempt(rel):
            kind = "host RNG ('%s')" % t
        elif t in HOST_RNG_TYPES and not rng_exempt(rel):
            kind = "host RNG ('%s')" % t
        elif t in GETENV and nxt == "(":
            raw = sf.raw_lines[line - 1] \
                if line <= len(sf.raw_lines) else ""
            gate = ENV_NAME_RE.search(raw)
            if gate:
                self.env_gates[(rel, line)] = (gate.group(0), f)
                return None
            kind = "environment read ('%s')" % t
        elif t == "reinterpret_cast" and nxt == "<":
            k = j + 2
            depth = 1
            while k < len(toks) and depth:
                tt = toks[k].text
                if tt == "<":
                    depth += 1
                elif tt == ">":
                    depth -= 1
                elif depth == 1 and tt in INT_CAST_TYPES:
                    kind = ("pointer-to-integer cast "
                            "('reinterpret_cast<%s>')" % tt)
                k += 1
        if kind and honor_escape and \
                core.line_annotated(sf, line, TAINT_OK):
            return None
        return kind

    def _scan_sources(self, sf, f):
        found = False
        j = f.body_start
        while j < f.body_end:
            if core.is_ident(sf.toks[j].text) and \
                    self._source_kind(sf, f, j):
                found = True
            j += 1
        if any(f.body_open_line <= line <= f.body_close_line
               for line, _ in self.range_sites[sf.rel]):
            found = True
        return found

    # --- D12 dataflow -----------------------------------------------

    def _call_context(self, toks, j):
        """(qual, receiver) for the call at token @p j."""
        prv = toks[j - 1].text if j > 0 else ""
        if prv == "::" and j >= 2 and core.is_ident(toks[j - 2].text):
            return toks[j - 2].text, None
        if prv in (".", "->") and j >= 2 and \
                core.is_ident(toks[j - 2].text):
            return None, toks[j - 2].text
        return None, None

    def _split_args(self, toks, a, b):
        """Argument token ranges of a call whose '(' is at a-1 and
        whose matching ')' is at b."""
        args = []
        start = a
        depth = 0
        j = a
        while j < b:
            t = toks[j].text
            if t in ("(", "[", "{"):
                depth += 1
            elif t in (")", "]", "}"):
                depth -= 1
            elif t == "," and depth == 0:
                args.append((start, j))
                start = j + 1
            j += 1
        if b > start:
            args.append((start, b))
        return args

    def _slice_flows(self, sf, f, a, b, env):
        """Taint flows carried by the expression tokens [a, b)."""
        toks = sf.toks
        out = {}
        cls = class_of(f)
        j = a
        while j < b:
            t = toks[j].text
            if not core.is_ident(t):
                j += 1
                continue
            line = toks[j].line
            nxt = toks[j + 1].text if j + 1 < b else ""
            prv = toks[j - 1].text if j > a else ""
            kind = self._source_kind(sf, f, j)
            if kind:
                fid = (kind, sf.rel, line)
                out.setdefault(
                    fid, Flow(kind, sf.rel, line, (f.qualname,)))
            elif nxt == "(" and t not in core.NON_CALL_KEYWORDS:
                qual, recv = self._call_context(toks, j)
                for tgt in self._resolve(t, qual, recv):
                    if trusted(tgt.file_key):
                        continue
                    merge(out, self.fn_ret.get(id(tgt), {}),
                          via=f.qualname)
            elif prv not in (".", "->", "::"):
                if t in env:
                    merge(out, env[t])
                elif cls:
                    merge(out, self.member.get(
                        "%s::%s" % (cls, t), {}), via=f.qualname)
            elif prv in (".", "->") and j >= 2 and \
                    toks[j - 2].text == "this" and cls:
                merge(out, self.member.get(
                    "%s::%s" % (cls, t), {}), via=f.qualname)
            j += 1
        return out

    def _find_assign(self, toks, a, b):
        """Token index of the statement's top-level assignment '=',
        or None. Skips ==/!=/<=/>= and template/paren nesting."""
        depth = 0
        j = a
        while j < b:
            t = toks[j].text
            if t in ("(", "[", "{"):
                depth += 1
            elif t in (")", "]", "}"):
                depth -= 1
            elif t == "=" and depth == 0:
                prv = toks[j - 1].text if j > a else ""
                nxt = toks[j + 1].text if j + 1 < b else ""
                if prv not in ("=", "!", "<", ">") and nxt != "=":
                    return j
            j += 1
        return None

    def _lhs_target(self, toks, a, eq):
        """(field, obj) for the assignment target ending at @p eq:
        obj is the '.'/'->' base (or None for a plain identifier),
        with index groups skipped."""
        end = eq
        while end - 1 > a and toks[end - 1].text in (
                "+", "-", "*", "/", "%", "&", "|", "^", "<", ">"):
            end -= 1
        k = end - 1
        depth = 0
        while k >= a:
            t = toks[k].text
            if t == "]":
                depth += 1
            elif t == "[":
                depth -= 1
            elif depth == 0 and core.is_ident(t):
                break
            elif depth == 0 and t == ")":
                return None, None
            k -= 1
        if k < a or not core.is_ident(toks[k].text):
            return None, None
        field = toks[k].text
        obj = None
        if k - 1 >= a and toks[k - 1].text in (".", "->"):
            m = k - 2
            depth = 0
            while m >= a:
                t = toks[m].text
                if t == "]":
                    depth += 1
                elif t == "[":
                    depth -= 1
                elif depth == 0 and core.is_ident(t):
                    break
                elif depth == 0 and t == ")":
                    return field, None
                m -= 1
            if m >= a and core.is_ident(toks[m].text):
                obj = toks[m].text
        return field, obj

    def _report_d12(self, sf, line, sink_desc, flows):
        if sf.rel.startswith(OBS_DIR):
            return
        if core.line_annotated(sf, line, TAINT_OK):
            return
        for fid in sorted(flows):
            key = (sf.rel, line, fid)
            if key in self.seen:
                continue
            self.seen.add(key)
            fl = flows[fid]
            self.findings.append(core.Finding(
                "D12", sf.rel, line,
                "%s at %s:%d reaches artifact sink %s (flow: %s); "
                "fix the flow or annotate '// %s <reason>' on the "
                "source or sink line"
                % (fl.kind, fl.rel, fl.line, sink_desc,
                   " -> ".join(fl.chain), TAINT_OK)))

    def _pass_function(self, sf, f, report):
        toks = sf.toks
        cls = class_of(f)
        env = {}
        for p, flows in self.fn_param.get(id(f), {}).items():
            env[p] = dict(flows)
        for line, var in self.range_sites[sf.rel]:
            if f.body_open_line <= line <= f.body_close_line:
                kind = "unordered-container iteration"
                fid = (kind, sf.rel, line)
                env.setdefault(var, {}).setdefault(
                    fid, Flow(kind, sf.rel, line, (f.qualname,)))
        changed = False
        rounds = 2 + (1 if report else 0)
        for rnd in range(rounds):
            reporting = report and rnd == rounds - 1
            for a, b in self.stmts[id(f)]:
                # Assignment.
                eq = self._find_assign(toks, a, b)
                if eq is not None:
                    rhs = self._slice_flows(sf, f, eq + 1, b, env)
                    if rhs:
                        field, obj = self._lhs_target(toks, a, eq)
                        if field and obj is None:
                            dst = env.setdefault(field, {})
                            merge(dst, rhs)
                            if cls and field not in \
                                    self.params.get(id(f), ()):
                                changed |= merge(
                                    self.member.setdefault(
                                        "%s::%s" % (cls, field), {}),
                                    rhs)
                        elif field and obj == "this" and cls:
                            changed |= merge(
                                self.member.setdefault(
                                    "%s::%s" % (cls, field), {}),
                                rhs)
                        elif field and obj:
                            merge(env.setdefault(obj, {}), rhs)
                            if reporting:
                                stores = [
                                    c for c in SINK_STORE_CLASSES
                                    if obj in self.decl[c]]
                                if stores:
                                    self._report_d12(
                                        sf, toks[eq].line,
                                        "%s member store '%s.%s'"
                                        % (stores[0], obj, field),
                                        rhs)
                # Return.
                if toks[a].text == "return":
                    rf = self._slice_flows(sf, f, a + 1, b, env)
                    if rf:
                        changed |= merge(
                            self.fn_ret.setdefault(id(f), {}), rf)
                # Calls: argument -> parameter edges, sink checks.
                j = a
                while j < b:
                    t = toks[j].text
                    if not (core.is_ident(t) and j + 1 < b and
                            toks[j + 1].text == "(" and
                            t not in core.NON_CALL_KEYWORDS):
                        j += 1
                        continue
                    close = core._match_paren(toks, j + 1) - 1
                    args = self._split_args(
                        toks, j + 2, min(close, f.body_end))
                    argflows = [
                        self._slice_flows(sf, f, s, e, env)
                        for s, e in args]
                    qual, recv = self._call_context(toks, j)
                    for tgt in self._resolve(t, qual, recv):
                        if trusted(tgt.file_key):
                            continue
                        ps = self.params.get(id(tgt))
                        if ps is None:
                            continue
                        store = self.fn_param.setdefault(
                            id(tgt), {})
                        for k, fl in enumerate(argflows):
                            if not fl or k >= len(ps) or \
                                    ps[k] is None:
                                continue
                            changed |= merge(
                                store.setdefault(ps[k], {}), fl,
                                via=tgt.qualname)
                    if reporting:
                        sink = None
                        if t in BARE_SINKS and recv is None:
                            sink = "%s()" % t
                        elif recv is not None and \
                                t in METHOD_SINKS:
                            for c in METHOD_SINKS[t]:
                                if recv in self.decl[c]:
                                    sink = "%s::%s (via '%s')" \
                                        % (c, t, recv)
                                    break
                        if sink:
                            tainted = {}
                            for fl in argflows:
                                merge(tainted, fl)
                            if tainted:
                                self._report_d12(
                                    sf, toks[j].line, sink, tainted)
                    j += 1
        return changed

    def run_taint(self):
        order = [(rel, f) for rel in sorted(self.tree)
                 for f in self.tree[rel].funcs
                 if not trusted(rel)]
        for _ in range(20):
            changed = False
            for rel, f in order:
                if not self._maybe_tainted(f):
                    continue
                changed |= self._pass_function(
                    self.tree[rel], f, report=False)
            if not changed:
                break
        for rel, f in order:
            if self._maybe_tainted(f):
                self._pass_function(self.tree[rel], f, report=True)

    def _maybe_tainted(self, f):
        if self.has_source.get(id(f)) or self.fn_param.get(id(f)):
            return True
        cls = class_of(f)
        if cls and any(k.startswith(cls + "::")
                       for k in self.member):
            return True
        return any(self.fn_ret.get(id(t))
                   for t in self.edges[id(f)])

    # --- D13: artifact purity + manifest ----------------------------

    def _artifact_names(self, sf, f):
        lo = max(0, f.decl_line - 1)
        hi = min(f.body_open_line, len(sf.raw_lines))
        names = []
        for j in range(lo, hi):
            names += ARTIFACT_ROOT_RE.findall(sf.raw_lines[j])
        k = lo - 1
        while k >= 0:
            stripped = sf.raw_lines[k].strip()
            if not (stripped.startswith("//") or
                    stripped.startswith("*") or
                    stripped.startswith("/*") or stripped == ""):
                break
            names += ARTIFACT_ROOT_RE.findall(sf.raw_lines[k])
            k -= 1
        return names

    def _bfs(self, roots):
        visited = {}
        work = []
        for r in roots:
            visited[id(r)] = r
            work.append(r)
        while work:
            f = work.pop(0)
            for tgt in self.edges[id(f)]:
                if id(tgt) in visited:
                    continue
                if tgt.file_key.startswith(OBS_DIR) or \
                        rng_exempt(tgt.file_key):
                    continue
                visited[id(tgt)] = tgt
                work.append(tgt)
        return visited

    def check_d13(self):
        roots = {}
        for rel in sorted(self.tree):
            sf = self.tree[rel]
            for f in sf.funcs:
                for name in self._artifact_names(sf, f):
                    roots.setdefault(name, []).append(f)
        seen = set()
        for name in sorted(roots):
            reach = self._bfs(roots[name])
            env = set()
            escapes = set()
            for f in sorted(reach.values(),
                            key=lambda f: (f.file_key, f.name_line)):
                sf = self.tree[f.file_key]
                self._scan_impure(sf, f, name, env, escapes, seen)
            self.artifacts[name] = {
                "roots": roots[name],
                "reach": reach,
                "env": env,
                "escapes": escapes,
            }
        return len(roots)

    def _scan_impure(self, sf, f, artifact, env, escapes, seen):
        toks = sf.toks
        j = f.body_start
        while j < f.body_end:
            t = toks[j].text
            if core.is_ident(t):
                line = toks[j].line
                gate = self.env_gates.get((sf.rel, line))
                if gate is not None and t in GETENV:
                    env.add(gate[0])
                else:
                    kind = self._source_kind(sf, f, j,
                                             honor_escape=False)
                    if kind:
                        if core.line_annotated(
                                sf, line, DECLARED_INPUT) or \
                                core.line_annotated(sf, line,
                                                    TAINT_OK):
                            escapes.add("%s:%d" % (sf.rel, line))
                        elif (sf.rel, line, kind) not in seen:
                            seen.add((sf.rel, line, kind))
                            self.findings.append(core.Finding(
                                "D13", sf.rel, line,
                                "'%s' is reachable from artifact "
                                "'%s' roots but reads an undeclared "
                                "input: %s; artifact bytes must be "
                                "a function of the declared cache "
                                "key only — remove it or annotate "
                                "'// %s <reason>' (or '// %s "
                                "<reason>' if reviewed as "
                                "non-flowing)"
                                % (f.qualname, artifact, kind,
                                   DECLARED_INPUT, TAINT_OK)))
            j += 1

    def manifest(self):
        arts = {}
        for name in sorted(self.artifacts):
            a = self.artifacts[name]
            arts[name] = {
                "cache_key": CACHE_KEYS.get(name, []),
                "declared_env": sorted(a["env"]),
                "escapes": sorted(a["escapes"]),
                "files": sorted({f.file_key
                                 for f in a["reach"].values()}),
                "reachable_functions": len(a["reach"]),
                "roots": sorted(f.qualname for f in a["roots"]),
            }
        doc = {"schema": MANIFEST_SCHEMA, "artifacts": arts}
        return json.dumps(doc, indent=2, sort_keys=True) + "\n"

    # --- D14: sink-registration discipline --------------------------

    def check_d14(self):
        cold = []
        for rel in sorted(self.tree):
            sf = self.tree[rel]
            for f in sf.funcs:
                if f.name == "registerStats" or \
                        core.func_annotated(sf, f, COLD_ANNOTATION) \
                        or core.func_annotated(sf, f,
                                               COLD_ATTRIBUTE):
                    cold.append(f)
        self.n_cold_roots = len(cold)
        reach = self._bfs(cold)
        for rel in sorted(self.tree):
            if rel.startswith(OBS_DIR):
                continue
            sf = self.tree[rel]
            for f in sf.funcs:
                if id(f) in reach:
                    continue
                self._scan_emissions(sf, f)
        return len(cold)

    def _scan_emissions(self, sf, f):
        toks = sf.toks
        j = f.body_start
        while j < f.body_end:
            t = toks[j].text
            if core.is_ident(t) and t in EMISSION_METHODS and \
                    j + 1 < f.body_end and toks[j + 1].text == "(":
                _, recv = self._call_context(toks, j)
                hit = None
                if recv is not None:
                    for c in EMISSION_METHODS[t]:
                        if recv in self.decl[c]:
                            hit = c
                            break
                line = toks[j].line
                if hit and not core.line_annotated(sf, line,
                                                   SINK_OK):
                    self.findings.append(core.Finding(
                        "D14", sf.rel, line,
                        "%s::%s emission in '%s', which is neither "
                        "a cold-annotated root (// %s, %s, or "
                        "registerStats) nor reachable from one; "
                        "move it behind a registered root or "
                        "annotate '// %s <reason>'"
                        % (hit, t, f.qualname, COLD_ANNOTATION,
                           COLD_ATTRIBUTE, SINK_OK)))
            j += 1


def analyze(paths, root):
    tree = core.load_tree(paths, root)
    an = Analyzer(tree)
    an.run_taint()
    n_art = an.check_d13()
    an.check_d14()
    an.findings.sort(key=lambda f: (f.path, f.line, f.rule,
                                    f.message))
    return an, n_art


def self_test():
    """Fixtures mark expected findings with `expect-lint: D<n>`; the
    analyzer must report exactly the expected (file, line, rule) set
    for its rules D12-D14 and nothing else."""
    fixture_dir = os.path.join(REPO_ROOT, "scripts", "lint_fixtures")
    expected = set()
    for path in core.iter_source_files([fixture_dir]):
        with open(path, encoding="utf-8") as fh:
            for idx, text in enumerate(fh):
                for rule in re.findall(r"expect-lint:\s*(D\d+)\b",
                                       text):
                    if rule in RULES:
                        expected.add(
                            (core.relpath(path, fixture_dir),
                             idx + 1, rule))
    an, _ = analyze([fixture_dir], fixture_dir)
    got = {(f.path, f.line, f.rule) for f in an.findings}
    ok = True
    for miss in sorted(expected - got):
        print("taint self-test: MISSED expected finding "
              "%s:%d [%s]" % miss)
        ok = False
    for extra in sorted(got - expected):
        print("taint self-test: UNEXPECTED finding %s:%d [%s]"
              % extra)
        ok = False
    print("taint self-test: %d expected findings, %d reported, %s"
          % (len(expected), len(got), "OK" if ok else "FAIL"))
    return 0 if ok and expected else 1


def main(argv):
    if "--self-test" in argv:
        return self_test()
    write_manifest = "--write-manifest" in argv
    check_manifest = "--check-manifest" in argv
    dump_reach = "--dump-reach" in argv
    paths = [a for a in argv if not a.startswith("-")]
    manifest_path = MANIFEST_DEFAULT
    if paths and paths[-1].endswith(".json"):
        manifest_path = paths.pop()
    if not paths:
        paths = [os.path.join(REPO_ROOT, "src"),
                 os.path.join(REPO_ROOT, "bench")]
    bad = [p for p in paths if not os.path.exists(p)]
    if bad:
        print("starnuma-taint: no such path: %s" % ", ".join(bad),
              file=sys.stderr)
        return 2
    an, n_art = analyze(paths, REPO_ROOT)
    for f in an.findings:
        print(f)
    print("starnuma-taint: artifacts=%d cold-roots=%d" %
          (n_art, an.n_cold_roots))
    print("starnuma-taint: rule counts: " +
          " ".join("%s=%d" % (r, sum(1 for f in an.findings
                                     if f.rule == r))
                   for r in RULES))
    if dump_reach:
        for name in sorted(an.artifacts):
            for f in sorted(an.artifacts[name]["reach"].values(),
                            key=lambda f: (f.file_key, f.name_line)):
                print("reach[%s]: %s (%s:%d)"
                      % (name, f.qualname, f.file_key, f.name_line))
    rc = 0
    if n_art == 0:
        print("starnuma-taint: ERROR: no '// lint: artifact-root' "
              "functions found — the purity audit is vacuous "
              "(annotations deleted?)", file=sys.stderr)
        rc = 1
    if an.n_cold_roots == 0:
        print("starnuma-taint: ERROR: no cold-annotated/"
              "registerStats roots found — the sink audit is "
              "vacuous (annotations deleted?)", file=sys.stderr)
        rc = 1
    if write_manifest:
        with open(manifest_path, "w", encoding="utf-8") as fh:
            fh.write(an.manifest())
        print("starnuma-taint: wrote %s"
              % core.relpath(manifest_path, REPO_ROOT))
    elif check_manifest:
        want = an.manifest()
        try:
            with open(manifest_path, encoding="utf-8") as fh:
                have = fh.read()
        except OSError:
            have = None
        if have != want:
            print("starnuma-taint: MANIFEST DRIFT: %s does not "
                  "match the analyzed tree; regenerate with "
                  "--write-manifest and review the diff"
                  % core.relpath(manifest_path, REPO_ROOT),
                  file=sys.stderr)
            rc = 1
        else:
            print("starnuma-taint: manifest matches (%s)"
                  % core.relpath(manifest_path, REPO_ROOT))
    if an.findings:
        print("starnuma-taint: %d finding(s)" % len(an.findings))
        return 1
    if rc == 0:
        print("starnuma-taint: clean")
    return rc


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
