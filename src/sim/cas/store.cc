#include "sim/cas/store.hh"

#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "sim/bytes.hh"

namespace starnuma
{
namespace cas
{
namespace
{

constexpr char MAGIC[8] = {'S', 'T', 'A', 'R', 'C', 'A', 'S', '1'};
constexpr std::uint64_t FORMAT_VERSION = 1;
// Header: magic + version + keyLen + payloadLen + hash.hi + hash.lo.
constexpr std::size_t HEADER_BYTES = 8 + 5 * 8;
// Key texts are short field=value blocks; anything larger is corrupt.
constexpr std::uint64_t MAX_KEY_BYTES = 1 << 20;

bool
ensureDir(const std::string &path)
{
    struct ::stat st;
    if (::stat(path.c_str(), &st) == 0)
        return S_ISDIR(st.st_mode);
    return ::mkdir(path.c_str(), 0755) == 0 ||
           (::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode));
}

bool
readWholeFile(const std::string &path, std::vector<std::uint8_t> &out)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    std::fseek(f, 0, SEEK_END);
    long len = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    if (len < 0) {
        std::fclose(f);
        return false;
    }
    out.assign(static_cast<std::size_t>(len), 0);
    bool ok =
        out.empty() ||
        // lint: raw-read the one bulk transfer into the owned
        // buffer; all parsing then goes through ByteReader.
        std::fread(out.data(), 1, out.size(), f) == out.size();
    std::fclose(f);
    return ok;
}

/**
 * Parse + verify one encoded object. On success fills @p keyText
 * and @p payload. Every failure mode (bad magic, unknown version,
 * truncation, trailing garbage, hash mismatch) returns false.
 */
bool
decodeObject(const std::vector<std::uint8_t> &bytes,
             std::string &keyText, std::vector<std::uint8_t> &payload)
{
    if (bytes.size() < HEADER_BYTES)
        return false;
    ByteReader r(bytes.data(), bytes.size());
    char magic[8];
    if (!r.getBytes(magic, 8) || std::memcmp(magic, MAGIC, 8) != 0)
        return false;
    std::uint64_t version = 0, keyLen = 0, payloadLen = 0;
    Hash128 stored;
    if (!r.getU64(version) || version != FORMAT_VERSION)
        return false;
    if (!r.getU64(keyLen) || !r.getU64(payloadLen) ||
        !r.getU64(stored.hi) || !r.getU64(stored.lo))
        return false;
    if (keyLen > MAX_KEY_BYTES || keyLen > r.remaining())
        return false;
    keyText.assign(static_cast<std::size_t>(keyLen), '\0');
    if (!r.getBytes(keyText.data(), keyText.size()))
        return false;
    if (payloadLen != r.remaining())
        return false;
    payload.assign(static_cast<std::size_t>(payloadLen), 0);
    if (!payload.empty() &&
        !r.getBytes(payload.data(), payload.size()))
        return false;
    return hashBytes(payload) == stored;
}

} // namespace

Store::Store(std::string dir) : dir_(std::move(dir))
{
    ensureDir(dir_);
    ensureDir(dir_ + "/objects");
}

std::string
Store::objectPath(const std::string &keyText) const
{
    std::string hex = hashString(keyText).hex();
    return dir_ + "/objects/" + hex.substr(0, 2) + "/" + hex +
           ".cas";
}

bool
Store::putObject(const std::string &keyText,
                 const std::vector<std::uint8_t> &payload)
{
    std::string path = objectPath(keyText);
    std::string shard = path.substr(0, path.rfind('/'));
    if (!ensureDir(dir_) || !ensureDir(dir_ + "/objects") ||
        !ensureDir(shard))
        return false;

    std::vector<std::uint8_t> bytes;
    bytes.reserve(HEADER_BYTES + keyText.size() + payload.size());
    bytes.insert(bytes.end(), MAGIC, MAGIC + 8);
    putU64(bytes, FORMAT_VERSION);
    putU64(bytes, keyText.size());
    putU64(bytes, payload.size());
    Hash128 content = hashBytes(payload);
    putU64(bytes, content.hi);
    putU64(bytes, content.lo);
    bytes.insert(bytes.end(), keyText.begin(), keyText.end());
    bytes.insert(bytes.end(), payload.begin(), payload.end());

    std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f)
        return false;
    bool ok = std::fwrite(bytes.data(), 1, bytes.size(), f) ==
              bytes.size();
    ok = std::fclose(f) == 0 && ok;
    if (!ok) {
        ::remove(tmp.c_str());
        return false;
    }
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        ::remove(tmp.c_str());
        return false;
    }
    return true;
}

bool
Store::fetchObject(const std::string &keyText,
                   std::vector<std::uint8_t> &payload)
{
    std::vector<std::uint8_t> bytes;
    if (!readWholeFile(objectPath(keyText), bytes))
        return false;
    std::string storedKey;
    if (!decodeObject(bytes, storedKey, payload))
        return false;
    // Embedded key text must match byte for byte: a 128-bit key-hash
    // collision demotes to a miss instead of serving a wrong object.
    return storedKey == keyText;
}

bool
Store::containsObject(const std::string &keyText) const
{
    struct ::stat st;
    return ::stat(objectPath(keyText).c_str(), &st) == 0 &&
           S_ISREG(st.st_mode);
}

std::vector<std::string>
Store::listObjects() const
{
    std::vector<std::string> out;
    std::string objects = dir_ + "/objects";
    DIR *top = ::opendir(objects.c_str());
    if (!top)
        return out;
    while (struct dirent *shard = ::readdir(top)) {
        if (shard->d_name[0] == '.')
            continue;
        std::string sub = objects + "/" + shard->d_name;
        DIR *inner = ::opendir(sub.c_str());
        if (!inner)
            continue;
        while (struct dirent *obj = ::readdir(inner)) {
            std::string name = obj->d_name;
            if (name.size() > 4 &&
                name.compare(name.size() - 4, 4, ".cas") == 0)
                out.push_back(std::string("objects/") +
                              shard->d_name + "/" + name);
        }
        ::closedir(inner);
    }
    ::closedir(top);
    std::sort(out.begin(), out.end());
    return out;
}

std::uint64_t
Store::trim(std::uint64_t maxBytes)
{
    struct Entry {
        std::string rel;
        std::uint64_t size;
        std::int64_t mtime;
    };
    std::vector<Entry> entries;
    std::uint64_t total = 0;
    for (const std::string &rel : listObjects()) {
        struct ::stat st;
        if (::stat((dir_ + "/" + rel).c_str(), &st) != 0)
            continue;
        entries.push_back({rel,
                           static_cast<std::uint64_t>(st.st_size),
                           static_cast<std::int64_t>(st.st_mtime)});
        total += static_cast<std::uint64_t>(st.st_size);
    }
    // Oldest first; relative path breaks mtime ties so eviction
    // order is stable on coarse-granularity filesystems.
    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  if (a.mtime != b.mtime)
                      return a.mtime < b.mtime;
                  return a.rel < b.rel;
              });
    std::uint64_t removed = 0;
    for (const Entry &e : entries) {
        if (total <= maxBytes)
            break;
        if (::remove((dir_ + "/" + e.rel).c_str()) == 0) {
            total -= e.size;
            removed += e.size;
        }
    }
    return removed;
}

bool
Store::verifyObject(const std::string &path)
{
    std::vector<std::uint8_t> bytes, payload;
    std::string keyText;
    return readWholeFile(path, bytes) &&
           decodeObject(bytes, keyText, payload);
}

} // namespace cas
} // namespace starnuma
