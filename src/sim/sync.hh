/**
 * @file
 * Capability-annotated synchronization primitives (DESIGN.md §10).
 * libstdc++'s std::mutex carries no thread-safety attributes, so
 * Clang's analysis cannot track it; these thin wrappers restore the
 * annotations without changing the runtime primitives underneath:
 *
 *  - Mutex:     std::mutex annotated as a STARNUMA_CAPABILITY.
 *  - MutexLock: the RAII guard (lint rule D8 requires RAII locking
 *               everywhere outside sim/parallel.*).
 *  - CondVar:   std::condition_variable_any over Mutex, with wait()
 *               annotated STARNUMA_REQUIRES(m) — held on entry,
 *               held again on return, exactly what the analysis
 *               needs to reason about the wait loop.
 *
 * This file and sim/parallel.* are the only places allowed to call
 * .lock()/.unlock() directly (lint rule D8); everything else locks
 * through MutexLock.
 */

#ifndef STARNUMA_SIM_SYNC_HH
#define STARNUMA_SIM_SYNC_HH

#include <condition_variable>
#include <mutex>

#include "sim/annotations.hh"

namespace starnuma
{

/** std::mutex, visible to Clang's thread-safety analysis. */
class STARNUMA_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void
    lock() STARNUMA_ACQUIRE()
    {
        mu_.lock();
    }

    void
    unlock() STARNUMA_RELEASE()
    {
        mu_.unlock();
    }

    bool
    try_lock() STARNUMA_TRY_ACQUIRE(true)
    {
        return mu_.try_lock();
    }

  private:
    friend class CondVar;
    std::mutex mu_;
};

/** RAII lock over Mutex (the D8-sanctioned way to take one). */
class STARNUMA_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &m) STARNUMA_ACQUIRE(m) : mu_(m)
    {
        mu_.lock();
    }

    ~MutexLock() STARNUMA_RELEASE() { mu_.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &mu_;
};

/**
 * Condition variable usable with Mutex. Internally synchronized:
 * notify may be called with or without the mutex held.
 */
class CondVar
{
  public:
    /**
     * Atomically release @p m and block; @p m is held again when
     * wait returns. From the analysis' point of view the capability
     * is required on entry and still held on exit, so callers keep
     * their REQUIRES obligations intact across the wait.
     */
    void
    wait(Mutex &m) STARNUMA_REQUIRES(m)
    {
        cv_.wait(m);
    }

    void notify_one() { cv_.notify_one(); }
    void notify_all() { cv_.notify_all(); }

  private:
    std::condition_variable_any cv_;
};

} // namespace starnuma

#endif // STARNUMA_SIM_SYNC_HH
