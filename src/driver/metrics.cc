#include "driver/metrics.hh"

namespace starnuma
{
namespace driver
{

const char *
accessTypeName(AccessType t)
{
    switch (t) {
      case AccessType::Local:    return "local";
      case AccessType::OneHop:   return "1-hop";
      case AccessType::TwoHop:   return "2-hop";
      case AccessType::Pool:     return "pool";
      case AccessType::BtSocket: return "BT_Socket";
      case AccessType::BtPool:   return "BT_Pool";
      default:                   return "?";
    }
}

double
unloadedLatencyNs(AccessType t)
{
    // §V-A's analytic constants: local/1-hop/2-hop/pool plus block
    // transfers at network traversal + 80 ns memory & directory.
    switch (t) {
      case AccessType::Local:    return 80.0;
      case AccessType::OneHop:   return 130.0;
      case AccessType::TwoHop:   return 360.0;
      case AccessType::Pool:     return 180.0;
      case AccessType::BtSocket: return 413.0;
      case AccessType::BtPool:   return 280.0;
      default:                   return 0.0;
    }
}

} // namespace driver
} // namespace starnuma
