/**
 * @file
 * Fixed-size work-queue thread pool with deterministic fan-out
 * helpers. Experiments, per-phase timing simulations, and sweep
 * entries are independent tasks: parallelFor() hands indexed work
 * items to the pool and the calling thread, and parallelMap()
 * collects results in canonical index order, so the merged output
 * of a parallel run is bitwise-identical to a serial one. The
 * calling thread always participates in executing its own batch,
 * which makes nested fan-outs (a sweep entry that itself
 * parallelizes its phases) deadlock-free on a fixed-size pool.
 *
 * The process-wide pool size comes from STARNUMA_THREADS (default:
 * the hardware concurrency).
 */

#ifndef STARNUMA_SIM_PARALLEL_HH
#define STARNUMA_SIM_PARALLEL_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/annotations.hh"
#include "sim/sync.hh"

namespace starnuma
{

namespace obs
{
class Registry;
} // namespace obs

/** Work-queue executor over a fixed set of worker threads. */
class ThreadPool
{
  public:
    /** @param threads worker count; 0 means defaultThreads(). */
    explicit ThreadPool(int threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads (callers add one more). */
    int size() const { return static_cast<int>(workers.size()); }

    /** STARNUMA_THREADS when set, else hardware concurrency. */
    static int defaultThreads();

    /** The process-wide shared pool. */
    static ThreadPool &global();

    /**
     * The process-wide pool, or nullptr when no call has created it
     * yet. Lets shutdown-time observers (the trace writer) read the
     * pool profile without instantiating workers as a side effect.
     */
    static ThreadPool *globalIfCreated();

    /**
     * Pool-worker index of the calling thread: 0..size()-1 on a
     * worker, -1 on any other thread (including callers executing
     * their own parallelFor batch).
     */
    static int currentWorker();

    /**
     * Replace the process-wide pool with one of @p threads workers
     * (0 restores the default size). Must only be called while no
     * tasks are in flight; intended for tests that compare pool
     * sizes.
     */
    static void setGlobalThreads(int threads);

    /**
     * Run fn(0) .. fn(n-1), each call exactly once, distributed
     * over the workers and the calling thread; returns when all n
     * calls have finished. Tasks must be independent of each other
     * (and of execution order); any determinism requirement is then
     * met by construction regardless of the pool size.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn);

    /**
     * Deterministic fan-out: out[i] = fn(i) with out in canonical
     * index order, however the calls were scheduled.
     */
    template <typename T, typename F>
    std::vector<T>
    parallelMap(std::size_t n, F &&fn)
    {
        std::vector<T> out(n);
        parallelFor(n, [&](std::size_t i) { out[i] = fn(i); });
        return out;
    }

    /** Enqueue a single task; the future carries its result. */
    template <typename F>
    auto
    submit(F &&f) -> std::future<std::invoke_result_t<std::decay_t<F>>>
    {
        using R = std::invoke_result_t<std::decay_t<F>>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(f));
        std::future<R> fut = task->get_future();
        auto batch = std::make_shared<Batch>();
        batch->fn = [task](std::size_t) { (*task)(); };
        batch->n = 1;
        enqueue(batch);
        return fut;
    }

    // --- self-profiling (DESIGN.md §9) ---

    /** Accumulated execution profile of one claimant slot. */
    struct WorkerProfile
    {
        std::uint64_t tasks = 0;  ///< indexed calls executed
        std::uint64_t busyNs = 0; ///< wall time inside those calls
                                  ///< (0 unless profiling enabled)
    };

    /**
     * Per-claimant profile: index 0 aggregates every caller thread
     * participating in its own batch, index w+1 is pool worker w.
     * Task counts are always maintained (one relaxed increment per
     * task); busy wall-time is only clocked while
     * obs::hostProfilingEnabled() — the zero-overhead-when-disabled
     * contract.
     */
    std::vector<WorkerProfile> profile() const;

    /** Largest batch-queue length observed at enqueue time. */
    std::uint64_t peakQueueDepth() const;

    /** Batches handed to the queue since construction. */
    std::uint64_t batchesEnqueued() const;

    /** Wall nanoseconds since the pool was constructed. */
    std::uint64_t upNs() const;

    /**
     * Register the pool profile under @p prefix: per-slot task
     * counts, busy time, and busy fraction of the pool's uptime,
     * plus queue-depth diagnostics. Host-domain (schedule-
     * dependent) data: lands in the trace artifact, never in the
     * deterministic stats file.
     */
    void registerStats(obs::Registry &r,
                       const std::string &prefix) const;

  private:
    /** One indexed fan-out: claim next, run fn(next), count done. */
    struct Batch
    {
        std::function<void(std::size_t)> fn;
        std::size_t n = 0;
        std::size_t next = 0; ///< first unclaimed index (under mu)
        std::size_t done = 0; ///< finished calls (under mu)
    };

    /**
     * Lock-free profile slot (one writer thread per slot, any
     * number of profile() readers). Relaxed ordering is sufficient
     * and load-bearing for the zero-overhead contract: each atomic
     * is an independent monotone counter, nothing is published
     * *through* it, and readers only want an eventually-consistent
     * snapshot for diagnostics.
     */
    struct ProfileSlot
    {
        std::atomic<std::uint64_t> tasks{0};
        std::atomic<std::uint64_t> busyNs{0};
    };

    void enqueue(const std::shared_ptr<Batch> &batch);
    void workerLoop();

    /** Run fn(i), charging task count and (when profiling) busy
     *  wall-time to @p slot. */
    void runTask(const std::shared_ptr<Batch> &batch, std::size_t i,
                 ProfileSlot &slot);

    /** Drop fully-claimed batches off the queue front. */
    bool haveWork() STARNUMA_REQUIRES(mu);

    mutable Mutex mu;
    CondVar workCv; ///< workers: work available (waits on mu)
    CondVar doneCv; ///< waiters: some batch finished (waits on mu)
    std::deque<std::shared_ptr<Batch>> queue STARNUMA_GUARDED_BY(mu);
    // lint: lock-free — written only by the constructor (before any
    // worker can observe it) and joined by the destructor after
    // every worker has exited; immutable in between.
    std::vector<std::thread> workers;
    bool stopping STARNUMA_GUARDED_BY(mu) = false;

    // lint: lock-free — the pointer is set once in the constructor;
    // the ProfileSlot atomics inside carry their own (relaxed)
    // synchronization.
    std::unique_ptr<ProfileSlot[]> slots; ///< [0]=callers, [w+1]=w
    std::uint64_t peakQueue STARNUMA_GUARDED_BY(mu) = 0;
    std::uint64_t enqueued STARNUMA_GUARDED_BY(mu) = 0;
    // lint: lock-free — constant after the constructor returns.
    std::uint64_t startNs = 0; ///< steady-clock pool birth time
};

} // namespace starnuma

#endif // STARNUMA_SIM_PARALLEL_HH
