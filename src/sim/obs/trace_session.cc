#include "sim/obs/trace_session.hh"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "sim/obs/registry.hh"
#include "sim/parallel.hh"

namespace starnuma
{
namespace obs
{

namespace
{

std::uint64_t
steadyNowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

std::string
fmtUs(double us)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.3f", us);
    return buf;
}

} // anonymous namespace

TraceArgs &
TraceArgs::addRaw(const char *key, const std::string &value)
{
    if (!body.empty())
        body += ',';
    body += '"';
    body += jsonEscape(key);
    body += "\":";
    body += value;
    return *this;
}

TraceArgs &
TraceArgs::add(const char *key, std::uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
    return addRaw(key, buf);
}

TraceArgs &
TraceArgs::add(const char *key, std::int64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64, v);
    return addRaw(key, buf);
}

TraceArgs &
TraceArgs::add(const char *key, int v)
{
    return add(key, static_cast<std::int64_t>(v));
}

TraceArgs &
TraceArgs::add(const char *key, double v)
{
    return addRaw(key, formatNumber(v));
}

TraceArgs &
TraceArgs::add(const char *key, const std::string &v)
{
    std::string quoted;
    quoted += '"';
    quoted += jsonEscape(v);
    quoted += '"';
    return addRaw(key, quoted);
}

std::string
TraceArgs::str() const
{
    return "{" + body + "}";
}

TraceSession &
TraceSession::global()
{
    // Leaky singleton (see StatsSink::global for the rationale).
    static TraceSession *session = [] {
        auto *s = new TraceSession();
        if (const char *path = std::getenv("STARNUMA_TRACE_OUT")) {
            if (path[0] != '\0') {
                s->start(path);
                std::atexit([] { TraceSession::global().write(); });
            }
        }
        return s;
    }();
    return *session;
}

void
TraceSession::start(const std::string &path)
{
    MutexLock lock(mu);
    path_ = path;
    events.clear();
    epochNs.store(steadyNowNs(), std::memory_order_relaxed);
    enabled_.store(true, std::memory_order_relaxed);
    events.push_back(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
        "\"args\":{\"name\":\"host (wall clock)\"}}");
    events.push_back(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,"
        "\"args\":{\"name\":\"simulated (ns timeline)\"}}");
}

void
TraceSession::stop()
{
    MutexLock lock(mu);
    enabled_.store(false, std::memory_order_relaxed);
    path_.clear();
    events.clear();
}

double
TraceSession::nowUs() const
{
    return static_cast<double>(
               steadyNowNs() -
               epochNs.load(std::memory_order_relaxed)) /
           1000.0;
}

int
TraceSession::hostTid()
{
    return ThreadPool::currentWorker() + 1;
}

void
TraceSession::push(std::string event)
{
    MutexLock lock(mu);
    if (!enabled_.load(std::memory_order_relaxed))
        return;
    events.push_back(std::move(event));
}

void
TraceSession::completeEvent(const std::string &name,
                            const char *cat, double ts_us,
                            double dur_us, int tid,
                            const std::string &args)
{
    std::string e = "{\"name\":\"" + jsonEscape(name) +
                    "\",\"cat\":\"" + jsonEscape(cat) +
                    "\",\"ph\":\"X\",\"ts\":" + fmtUs(ts_us) +
                    ",\"dur\":" + fmtUs(dur_us) +
                    ",\"pid\":1,\"tid\":" + std::to_string(tid);
    if (!args.empty())
        e += ",\"args\":" + args;
    e += "}";
    push(std::move(e));
}

void
TraceSession::instantEvent(const std::string &name, const char *cat,
                           double ts_us, int pid, int tid,
                           const std::string &args)
{
    std::string e = "{\"name\":\"" + jsonEscape(name) +
                    "\",\"cat\":\"" + jsonEscape(cat) +
                    "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" +
                    fmtUs(ts_us) +
                    ",\"pid\":" + std::to_string(pid) +
                    ",\"tid\":" + std::to_string(tid);
    if (!args.empty())
        e += ",\"args\":" + args;
    e += "}";
    push(std::move(e));
}

void
TraceSession::instantNow(const std::string &name, const char *cat,
                         const std::string &args)
{
    instantEvent(name, cat, nowUs(), tracePidHost, hostTid(), args);
}

void
TraceSession::counterEvent(const std::string &name, double ts_us,
                           int pid, int tid,
                           const std::string &args)
{
    push("{\"name\":\"" + jsonEscape(name) +
         "\",\"ph\":\"C\",\"ts\":" + fmtUs(ts_us) +
         ",\"pid\":" + std::to_string(pid) +
         ",\"tid\":" + std::to_string(tid) + ",\"args\":" + args +
         "}");
}

void
TraceSession::nameProcess(int pid, const std::string &name)
{
    push("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" +
         std::to_string(pid) + ",\"args\":{\"name\":\"" +
         jsonEscape(name) + "\"}}");
}

void
TraceSession::nameThread(int pid, int tid, const std::string &name)
{
    push("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" +
         std::to_string(pid) + ",\"tid\":" + std::to_string(tid) +
         ",\"args\":{\"name\":\"" + jsonEscape(name) + "\"}}");
}

std::size_t
TraceSession::eventCount() const
{
    MutexLock lock(mu);
    return events.size();
}

void
TraceSession::appendPoolProfile()
{
    ThreadPool *pool = ThreadPool::globalIfCreated();
    if (!pool)
        return;
    Registry reg;
    pool->registerStats(reg, "pool");
    // Snapshot values are already valid JSON numbers; emit them as
    // one final counter so the pool's busy fractions and task
    // counts land next to the spans they summarize.
    Snapshot snap = reg.snapshot();
    std::string args = "{";
    bool first = true;
    for (const auto &[k, v] : snap.values()) {
        if (!first)
            args += ',';
        first = false;
        args += '"';
        args += jsonEscape(k);
        args += "\":";
        args += v;
    }
    args += '}';
    counterEvent("poolProfile", nowUs(), tracePidHost, 0, args);
    for (int w = 0; w <= pool->size(); ++w)
        nameThread(tracePidHost, w,
                   w == 0 ? "caller" :
                            "worker " + std::to_string(w - 1));
}

bool
TraceSession::writeTo(const std::string &path)
{
    appendPoolProfile();
    std::string out = "{\"traceEvents\":[\n";
    {
        MutexLock lock(mu);
        for (std::size_t i = 0; i < events.size(); ++i) {
            out += events[i];
            out += i + 1 < events.size() ? ",\n" : "\n";
        }
    }
    out += "],\n\"displayTimeUnit\":\"ms\"}\n";
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    bool ok =
        std::fwrite(out.data(), 1, out.size(), f) == out.size();
    return std::fclose(f) == 0 && ok;
}

bool
TraceSession::write()
{
    std::string path;
    {
        MutexLock lock(mu);
        if (!enabled_.load(std::memory_order_relaxed) ||
            path_.empty())
            return true;
        path = path_;
    }
    return writeTo(path);
}

TraceSpan::TraceSpan(std::string name, const char *cat,
                     std::string args)
    : name_(std::move(name)), cat_(cat), args_(std::move(args))
{
    TraceSession &s = TraceSession::global();
    if (!s.enabled())
        return;
    active = true;
    startUs = s.nowUs();
}

TraceSpan::~TraceSpan()
{
    if (!active)
        return;
    TraceSession &s = TraceSession::global();
    if (!s.enabled())
        return;
    double end = s.nowUs();
    s.completeEvent(name_, cat_, startUs, end - startUs,
                    TraceSession::hostTid(), args_);
}

} // namespace obs
} // namespace starnuma
