#ifndef STARNUMA_CORE_D11_RAW_UINT_HH
#define STARNUMA_CORE_D11_RAW_UINT_HH

// Fixture: D11 strong-type boundaries — violations. A public header
// under src/core/ passes raw uint64_t where PageNum/Cycles exist,
// and does Addr->page arithmetic outside the geometry helpers.

#include <cstdint>

namespace starnuma
{

struct FixtureRawRecord
{
    std::uint64_t next_page; // expect-lint: D11
    std::uint64_t stall_cycles; // expect-lint: D11
};

inline std::uint64_t
fixtureRawPageOf(std::uint64_t addr, std::uint64_t pageBytes)
{
    return addr / pageBytes; // expect-lint: D11
}

} // namespace starnuma

#endif // STARNUMA_CORE_D11_RAW_UINT_HH
