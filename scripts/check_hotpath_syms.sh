#!/usr/bin/env bash
# Binary backstop for the D9 hot-path discipline (DESIGN.md §13)
# and the D12 artifact-determinism discipline (DESIGN.md §15).
#
# The source-level analyzer (scripts/starnuma_hotpath.py) reasons
# over names and can be fooled by calls through function pointers,
# operator call sites, or std:: methods it cannot see into. The
# disassembly cannot: this script objdump-disassembles the built
# test binary (which links every library) and verifies that no
# hot-path symbol's main body contains a direct call to the
# allocator, the exception machinery, or pthread mutex locking.
#
# Scope notes:
#   * GCC's `[clone .cold]` sections are excluded — they hold the
#     outlined sn_assert/panic paths, which are [[noreturn]]
#     invariant failures and allowed on the hot path (D9's
#     NORETURN_OK set).
#   * TraceSim::runDynamic/runStaticOracle and decodeColumnar are
#     covered by the analyzer but not checked here: their phase
#     setup, checkpoint snapshots, and output sizing are line-level
#     cold-path escapes that stay lexically inside the function, so
#     their bodies legitimately contain allocator calls.
#   * Indirect calls (`call *%rax`) carry no symbol and cannot be
#     checked; the analyzer's over-approximation covers those.
#
# Second audit: artifact-writer symbols (the serializers behind
# scripts/artifact_inputs.json) must not TRANSITIVELY call the
# nondeterminism family — wall-clock reads, host RNG, environment
# reads. Unlike the hot-path audit this one follows direct call
# edges through the whole binary (BFS over the disassembly), since
# a clock read two frames below the serializer corrupts the
# artifact just the same.
#
# Usage: scripts/check_hotpath_syms.sh [build-dir]   (default: build)
#
# Exit status: 0 clean, 1 on banned calls or a missing manifest
# symbol (a rename silently voiding the check must fail loudly).
set -uo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${1:-build}
BIN="${BUILD_DIR}/tests/starnuma_tests"

if [ ! -x "${BIN}" ]; then
    echo "check-hotpath-syms: ${BIN} missing; building it" >&2
    cmake -B "${BUILD_DIR}" -S . >/dev/null &&
        cmake --build "${BUILD_DIR}" -j "$(nproc)" \
              --target starnuma_tests >/dev/null || exit 1
fi

if ! command -v objdump >/dev/null 2>&1; then
    echo "check-hotpath-syms: objdump not installed; skipping" \
         "(binary backstop is advisory without binutils)" >&2
    exit 0
fi

# The disassembly goes through a file: the heredoc below owns
# python's stdin, so piping objdump into it would be silently lost.
DIS=$(mktemp) || exit 1
trap 'rm -f "${DIS}"' EXIT
objdump -d -C "${BIN}" > "${DIS}" || exit 1

python3 - "${BIN}" "${DIS}" <<'EOF'
import re
import sys

# Demangled-name regexes of the hot-path symbols to audit. Every
# entry must match at least one main-body symbol in the binary.
MANIFEST = [
    r"starnuma::driver::TraceSim::run\(",
    r"starnuma::core::TlbAnnex::recordAccess\(",
    r"starnuma::core::TlbAnnex::recordAccessRun\(",
    r"starnuma::core::TlbDirectory::evict\(",
    r"starnuma::core::TlbDirectory::shootdown\(",
    r"starnuma::core::RegionTracker::record\(",
    r"starnuma::core::PageAccessStats::record\(",
    r"starnuma::mem::PageMap::touch\(",
]

# A call target starting with any of these is a hot-path violation.
BANNED_PREFIXES = (
    "operator new",
    "__cxa_throw",
    "__cxa_rethrow",
    "__cxa_allocate_exception",
    "pthread_mutex_lock",
    "pthread_mutex_trylock",
    "malloc",
    "calloc",
    "realloc",
    "aligned_alloc",
    "strdup",
)

SYM_HEAD = re.compile(r"^[0-9a-f]+ <(.+)>:$")
CALL_TARGET = re.compile(r"\bcall\w*\s+[0-9a-f]+\s+<([^>]+)>")

bodies = {}
cur = None
for line in open(sys.argv[2]):
    m = SYM_HEAD.match(line)
    if m:
        cur = m.group(1)
        bodies.setdefault(cur, [])
        continue
    if cur is not None and line.strip():
        bodies[cur].append(line.rstrip("\n"))

fail = False
checked = 0
for pat in MANIFEST:
    rx = re.compile(pat)
    syms = [s for s in bodies
            if rx.search(s) and "[clone" not in s]
    if not syms:
        print("check-hotpath-syms: FAIL: no symbol matches /%s/ in "
              "%s (renamed? add the new name to the manifest)"
            % (pat, sys.argv[1]))
        fail = True
        continue
    for sym in sorted(syms):
        checked += 1
        for insn in bodies[sym]:
            m = CALL_TARGET.search(insn)
            if not m:
                continue
            target = m.group(1)
            for banned in BANNED_PREFIXES:
                if target.startswith(banned):
                    print("check-hotpath-syms: FAIL: hot symbol\n"
                          "    %s\n  calls banned target\n    %s"
                          % (sym, target))
                    fail = True
                    break

print("check-hotpath-syms: %d hot symbols audited across %d "
      "manifest entries: %s"
      % (checked, len(MANIFEST), "FAIL" if fail else "clean"))

# ---- Artifact-writer determinism audit (transitive) ----------------

# Demangled-name regexes of artifact serializer entry points. Every
# entry must match at least one defined symbol.
ARTIFACT_MANIFEST = [
    r"starnuma::driver::TraceSimResult::save\(",
    r"starnuma::trace::WorkloadTrace::save\(",
    r"starnuma::trace::encodeColumnar\(",
    r"starnuma::trace::saveColumnar\(",
]

# Base call-target names (before '(' or '@') that make an artifact
# nondeterministic when reached from a serializer.
ARTIFACT_BANNED = frozenset((
    "clock_gettime", "gettimeofday", "time", "clock",
    "getenv", "secure_getenv",
    "rand", "srand", "random", "srandom", "rand_r", "drand48",
    "pthread_self", "gettid",
))
# Demangled prefixes banned outright (any std::chrono clock read).
ARTIFACT_BANNED_PREFIXES = (
    "std::chrono::_V2::steady_clock::now",
    "std::chrono::_V2::system_clock::now",
    "std::chrono::steady_clock::now",
    "std::chrono::system_clock::now",
)


def base_name(target):
    """'getenv@plt' -> 'getenv'; 'f(int)' -> 'f'."""
    return re.split(r"[@(]", target, 1)[0].strip()


# Direct call edges per defined symbol (main bodies and clones both
# count: a .cold outlined path still executes).
edges = {}
for sym, insns in bodies.items():
    outs = set()
    for insn in insns:
        m = CALL_TARGET.search(insn)
        if m:
            outs.add(m.group(1))
    edges[sym] = outs

afail = False
aroots = 0
for pat in ARTIFACT_MANIFEST:
    rx = re.compile(pat)
    roots = [s for s in bodies if rx.search(s)]
    if not roots:
        print("check-hotpath-syms: FAIL: no artifact symbol matches "
              "/%s/ in %s (renamed? update ARTIFACT_MANIFEST)"
              % (pat, sys.argv[1]))
        afail = True
        continue
    aroots += len(roots)
    for root in sorted(roots):
        # BFS with parent pointers so a hit reports its witness path.
        parent = {root: None}
        queue = [root]
        while queue:
            sym = queue.pop(0)
            for target in sorted(edges.get(sym, ())):
                hit = (base_name(target) in ARTIFACT_BANNED or
                       target.startswith(ARTIFACT_BANNED_PREFIXES))
                if hit:
                    chain = [target, sym]
                    p = parent[sym]
                    while p is not None:
                        chain.append(p)
                        p = parent[p]
                    print("check-hotpath-syms: FAIL: artifact writer"
                          " reaches nondeterministic call:\n    "
                          + "\n    -> ".join(reversed(chain)))
                    afail = True
                if target in bodies and target not in parent:
                    parent[target] = sym
                    queue.append(target)

print("check-hotpath-syms: %d artifact writer symbols audited "
      "across %d manifest entries: %s"
      % (aroots, len(ARTIFACT_MANIFEST),
         "FAIL" if afail else "clean"))
sys.exit(1 if (fail or afail) else 0)
EOF
