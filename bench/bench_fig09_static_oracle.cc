/**
 * @file
 * Fig 9 reproduction: static initial placement with oracular
 * a-priori knowledge (no runtime migration) on both architectures,
 * normalized to the baseline with dynamic migration. The paper's
 * headline observation: the baseline with static oracular placement
 * gains nothing over dynamic migration — the baseline
 * architecturally lacks a good location for vagabond pages — while
 * StarNUMA's static placement slightly beats its dynamic variant.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"
#include "sim/table.hh"

using namespace starnuma;
using benchutil::benchScale;
using benchutil::cachedRun;

namespace
{

void
BM_Fig9_Workload(benchmark::State &state,
                 const std::string &workload)
{
    SimScale scale = benchScale();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cachedRun(workload,
                      driver::SystemSetup::baselineStatic(), scale)
                .metrics.ipc);
        benchmark::DoNotOptimize(
            cachedRun(workload,
                      driver::SystemSetup::starnumaStatic(), scale)
                .metrics.ipc);
    }
    state.counters["baseline_static"] =
        benchutil::speedupOverBaseline(
            workload, driver::SystemSetup::baselineStatic(), scale);
    state.counters["starnuma_static"] =
        benchutil::speedupOverBaseline(
            workload, driver::SystemSetup::starnumaStatic(), scale);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    benchutil::initBench(&argc, argv);
    for (const auto &w : benchutil::benchWorkloads())
        benchmark::RegisterBenchmark(("Fig9/" + w).c_str(),
                                     BM_Fig9_Workload, w)
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    int rc = benchutil::runBenchmarks(argc, argv);

    SimScale scale = benchScale();
    TextTable t({"workload", "baseline static", "starnuma static",
                 "starnuma dynamic"});
    for (const auto &w : benchutil::benchWorkloads()) {
        t.addRow(
            {w,
             TextTable::num(benchutil::speedupOverBaseline(
                                w,
                                driver::SystemSetup::
                                    baselineStatic(),
                                scale),
                            2) + "x",
             TextTable::num(benchutil::speedupOverBaseline(
                                w,
                                driver::SystemSetup::
                                    starnumaStatic(),
                                scale),
                            2) + "x",
             TextTable::num(
                 benchutil::speedupOverBaseline(
                     w, driver::SystemSetup::starnuma(), scale),
                 2) + "x"});
    }
    benchutil::printSection(
        "Fig 9: oracular static placement, normalized to baseline "
        "with dynamic migration",
        t.str());
    return rc;
}
