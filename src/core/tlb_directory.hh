/**
 * @file
 * The shared TLB directory StarNUMA adopts from DiDi [64]
 * (§III-D3): a structure that tracks which cores currently cache a
 * translation of each page, so a migration's TLB shootdowns are
 * sent only to the cores that actually hold the entry, and victim
 * cores handle the invalidation entirely in hardware. Without it,
 * every migrated page interrupts every core in the system.
 *
 * The directory is maintained alongside the per-core TlbAnnex
 * instances during trace simulation; its hit statistics quantify
 * how many IPIs the hardware support eliminates.
 */

#ifndef STARNUMA_CORE_TLB_DIRECTORY_HH
#define STARNUMA_CORE_TLB_DIRECTORY_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/bytes.hh"
#include "sim/flat_map.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace starnuma
{

namespace obs
{
class Registry;
} // namespace obs

namespace core
{

/** Holder bit-set: up to 256 cores (4 x 64-bit words). */
struct TlbHolderMask
{
    std::array<std::uint64_t, 4> words{};

    void set(int core) { words[core >> 6] |= 1ULL << (core & 63); }
    void clear(int core)
    {
        words[core >> 6] &= ~(1ULL << (core & 63));
    }
    bool
    test(int core) const
    {
        return words[core >> 6] & (1ULL << (core & 63));
    }
    bool
    any() const
    {
        return words[0] | words[1] | words[2] | words[3];
    }
    int count() const;
};

/** Full-map directory over TLB-resident translations. */
class TlbDirectory
{
  public:
    explicit TlbDirectory(int cores);

    /**
     * Switch to flat-table storage over page numbers
     * [base, base + pages). Must be called while no translation is
     * tracked; every page filled afterwards must fall in the range.
     */
    void preallocate(PageNum base, std::size_t pages);

    /** Core @p core filled a TLB entry for page number @p page. */
    // lint: hot-path one fill per TLB miss
    void
    fill(PageNum page, int core)
    {
        sn_assert(core >= 0 && core < cores,
                  "fill by unknown core %d", core);
        if (flat.empty()) {
            map[page].set(core);
        } else {
            TlbHolderMask &m = flat[flatSlot(page)];
            if (!m.any())
                ++flatTracked;
            m.set(core);
        }
    }

    /** Core @p core evicted its TLB entry for @p page. */
    // lint: hot-path one eviction per TLB replacement
    void
    evict(PageNum page, int core)
    {
        if (flat.empty()) {
            auto it = map.find(page);
            if (it == map.end())
                return;
            it->second.clear(core);
            if (!it->second.any())
                map.erase(it);
        } else {
            TlbHolderMask &m = flat[flatSlot(page)];
            if (!m.any())
                return;
            m.clear(core);
            if (!m.any())
                --flatTracked;
        }
    }

    /** Holder set of cores currently caching @p page. */
    TlbHolderMask holders(PageNum page) const;

    /** Number of cores currently caching @p page. */
    int holderCount(PageNum page) const;

    /**
     * Shoot down @p page: clears the page's entry and returns how
     * many cores actually needed an invalidation — the number of
     * shootdown messages DiDi sends, versus @p totalCores IPIs for
     * a conventional software shootdown.
     */
    int shootdown(PageNum page);

    /** Pages with at least one holder. */
    std::size_t
    trackedPages() const
    {
        return flat.empty() ? map.size() : flatTracked;
    }

    // Cumulative statistics.
    std::uint64_t shootdownsSent() const { return sent_; }
    std::uint64_t shootdownsSaved() const { return saved_; }

    /**
     * Fraction of per-core invalidations avoided relative to
     * broadcasting to all cores.
     */
    double savingsRatio() const;

    /** Register shootdown counters and the savings ratio. */
    void registerStats(obs::Registry &r,
                       const std::string &prefix) const;

    /**
     * Append the directory state (mode, holder masks, counters) to
     * @p out for the incremental sweep engine's per-phase resume
     * snapshots (DESIGN.md §16).
     */
    void saveState(std::vector<std::uint8_t> &out) const;

    /**
     * Restore a saveState() image into this freshly-constructed
     * directory (same core count, nothing tracked yet).
     * @return false on malformed input.
     */
    bool loadState(ByteReader &r);

  private:
    /** Flat-mode slot of @p page (panics when out of range). */
    std::size_t
    flatSlot(PageNum page) const
    {
        std::uint64_t slot = page.value() - flatBase.value();
        sn_assert(slot < flat.size(),
                  "page outside the preallocated range");
        return static_cast<std::size_t>(slot);
    }

    int cores;
    FlatMap<PageNum, TlbHolderMask> map;
    std::vector<TlbHolderMask> flat; // flat mode: mask per slot
    PageNum flatBase{0};
    std::size_t flatTracked = 0;
    std::uint64_t sent_ = 0;
    std::uint64_t saved_ = 0;
};

} // namespace core
} // namespace starnuma

#endif // STARNUMA_CORE_TLB_DIRECTORY_HH
