/**
 * @file
 * Tests for the §V-F replication alternative: candidate selection
 * (read-only, widely shared, hottest-first under a capacity
 * budget), the timing integration (reads become local; a write
 * de-replicates), and the software-shootdown ablation option.
 */

#include <gtest/gtest.h>

#include "core/replication.hh"
#include "driver/experiment.hh"
#include "driver/timing_sim.hh"
#include "driver/trace_sim.hh"

namespace starnuma
{
namespace
{

/** 4 sockets x 2 cores test scale. */
SimScale
tinyScale()
{
    SimScale s;
    s.sockets = 16;
    s.socketsPerChassis = 4;
    s.coresPerSocket = 4;
    s.phases = 2;
    s.phaseInstructions = 20000;
    return s;
}

/**
 * Trace with one read-only page shared by all sockets, one
 * read-write page shared by all sockets, and private pages.
 */
trace::WorkloadTrace
replicationTrace(const SimScale &scale, int ro_pages = 1)
{
    trace::WorkloadTrace t;
    t.threads = scale.threads();
    t.instructionsPerThread =
        static_cast<std::uint64_t>(scale.phases) *
        scale.phaseInstructions;
    t.perThread.resize(t.threads);
    Addr ro_base = 0x10000000;
    Addr rw_base = ro_base + ro_pages * pageBytes;
    Addr priv_base = rw_base + pageBytes;
    t.footprintBytes = (ro_pages + 1 + t.threads) * pageBytes;
    for (ThreadId th = 0; th < t.threads; ++th) {
        t.firstTouches.push_back(
            {pageNumber(priv_base) + PageNum(th), th});
        std::uint64_t instr = 50;
        for (int i = 0; i < 300; ++i) {
            t.perThread[th].emplace_back(
                instr, ro_base + (i % ro_pages) * pageBytes +
                           (i % 64) * blockBytes,
                false);
            instr += 40;
            t.perThread[th].emplace_back(
                instr, rw_base + (i % 64) * blockBytes, i % 8 == 0);
            instr += 40;
        }
    }
    t.writtenPages.push_back(pageNumber(rw_base));
    return t;
}

TEST(Replication, SelectsReadOnlySharedPagesOnly)
{
    SimScale s = tinyScale();
    auto trace = replicationTrace(s);
    core::ReplicationConfig cfg;
    auto plan = core::planReplication(trace, s.coresPerSocket,
                                      s.sockets, cfg);
    EXPECT_TRUE(plan.isReplicated(pageNumber(0x10000000)));
    EXPECT_FALSE(
        plan.isReplicated(pageNumber(0x10000000 + pageBytes)));
    EXPECT_EQ(plan.rejectedReadWrite, 1u);
    EXPECT_GT(plan.capacityOverhead, 0.0);
}

TEST(Replication, CapacityBudgetLimitsReplicas)
{
    SimScale s = tinyScale();
    // 64 read-only shared pages, but a budget of ~0.2x footprint.
    auto trace = replicationTrace(s, 64);
    core::ReplicationConfig cfg;
    cfg.capacityBudget = 0.2;
    auto plan = core::planReplication(trace, s.coresPerSocket,
                                      s.sockets, cfg);
    EXPECT_GT(plan.rejectedCapacity, 0u);
    EXPECT_LE(plan.capacityOverhead, cfg.capacityBudget + 1e-9);
    EXPECT_GT(plan.replicated.size(), 0u);
}

TEST(Replication, SharerThresholdFiltersNarrowPages)
{
    SimScale s = tinyScale();
    auto trace = replicationTrace(s);
    core::ReplicationConfig cfg;
    cfg.sharerThreshold = 64; // impossible: more than sockets
    auto plan = core::planReplication(trace, s.coresPerSocket,
                                      s.sockets, cfg);
    EXPECT_TRUE(plan.replicated.empty());
}

TEST(Replication, TimingMakesReplicatedReadsLocal)
{
    SimScale s = tinyScale();
    auto trace = replicationTrace(s);
    driver::SystemSetup plain = driver::SystemSetup::baseline();
    driver::SystemSetup repl =
        driver::SystemSetup::baselineReplication();

    driver::TraceSim plain_t(plain, s);
    auto plain_p = plain_t.run(trace);
    driver::TimingSim plain_sim(plain, s);
    auto plain_m = plain_sim.run(trace, plain_p);

    driver::TraceSim repl_t(repl, s);
    auto repl_p = repl_t.run(trace);
    EXPECT_FALSE(repl_p.replication.replicated.empty());
    driver::TimingSim repl_sim(repl, s);
    auto repl_m = repl_sim.run(trace, repl_p);

    // Reads of the replicated page are local now.
    EXPECT_GT(repl_m.mix[static_cast<int>(
                  driver::AccessType::Local)],
              plain_m.mix[static_cast<int>(
                  driver::AccessType::Local)]);
}

TEST(Replication, EndToEndFmiBenefits)
{
    // FMI's index is read-only and shared by everyone: the ideal
    // replication case (until capacity is charged).
    SimScale s;
    s.phases = 2;
    s.phaseInstructions = 100000;
    auto base = driver::runExperiment(
        "fmi", driver::SystemSetup::baseline(), s);
    auto repl = driver::runExperiment(
        "fmi", driver::SystemSetup::baselineReplication(), s);
    EXPECT_GT(repl.placement.replication.replicated.size(), 0u);
    EXPECT_GE(repl.metrics.speedupOver(base.metrics), 1.0);
    EXPECT_GT(repl.metrics.mix[static_cast<int>(
                  driver::AccessType::Local)],
              base.metrics.mix[static_cast<int>(
                  driver::AccessType::Local)]);
}

TEST(SoftwareShootdowns, ErodePerformance)
{
    SimScale s;
    s.phases = 3;
    s.phaseInstructions = 100000;
    const auto &trace = driver::workloadTrace("bfs", s);
    driver::SystemSetup star = driver::SystemSetup::starnuma();
    driver::TraceSim tsim(star, s);
    auto placement = tsim.run(trace);

    driver::TimingSim hw(star, s);
    auto hw_m = hw.run(trace, placement);

    driver::TimingOptions opt;
    opt.softwareShootdowns = true;
    driver::TimingSim sw(star, s, opt);
    auto sw_m = sw.run(trace, placement);

    // IPIs on every core per migrated page must not help, and
    // normally hurt (§III-D3).
    EXPECT_LE(sw_m.ipc, hw_m.ipc * 1.02);
}

} // anonymous namespace
} // namespace starnuma
