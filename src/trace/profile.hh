/**
 * @file
 * Page access-pattern characterization (Figs 2 and 13): the
 * distribution of page sharing degree, the distribution of overall
 * accesses across sharing degrees, and the read-write vs read-only
 * split per degree. These are the measurements that motivate
 * vagabond-page pooling (§II-B) and the replication discussion
 * (§V-F).
 */

#ifndef STARNUMA_TRACE_PROFILE_HH
#define STARNUMA_TRACE_PROFILE_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"
#include "trace/trace.hh"

namespace starnuma
{
namespace trace
{

/** Sharing-degree distributions of one workload trace. */
class SharingProfile
{
  public:
    /**
     * Build from a trace; threads map to sockets as
     * thread / @p cores_per_socket.
     */
    SharingProfile(const WorkloadTrace &trace, int cores_per_socket,
                   int sockets);

    int sockets() const { return sockets_; }
    std::uint64_t totalPages() const { return totalPages_; }
    std::uint64_t totalAccesses() const { return totalAccesses_; }

    /** Fraction of pages with exactly @p degree sharers. */
    double pageFraction(int degree) const;

    /** Fraction of accesses to pages with exactly @p degree. */
    double accessFraction(int degree) const;

    /** Fraction of pages with at most @p degree sharers. */
    double pagesWithAtMost(int degree) const;

    /** Fraction of accesses to pages with more than @p degree. */
    double accessesAbove(int degree) const;

    /**
     * Of the accesses to pages with exactly @p degree sharers, the
     * fraction that target read-write pages.
     */
    double readWriteAccessFraction(int degree) const;

    /** Fraction of pages with exactly @p degree that are RW. */
    double readWritePageFraction(int degree) const;

    /**
     * §II-B's estimate: assuming accesses to widely shared pages
     * distribute uniformly across sockets, the fraction of them
     * that cross chassis (12 of 16 sockets are remote chassis).
     */
    static double interChassisFraction(int sockets,
                                       int sockets_per_chassis);

  private:
    int sockets_;
    std::uint64_t totalPages_;
    std::uint64_t totalAccesses_;
    // Index 0 unused; degrees 1..sockets.
    std::vector<std::uint64_t> pagesByDegree;
    std::vector<std::uint64_t> accessesByDegree;
    std::vector<std::uint64_t> rwPagesByDegree;
    std::vector<std::uint64_t> rwAccessesByDegree;
};

} // namespace trace
} // namespace starnuma

#endif // STARNUMA_TRACE_PROFILE_HH
