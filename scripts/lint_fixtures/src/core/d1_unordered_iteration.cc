// Fixture: D1 — unordered-container iteration in a result-affecting
// directory. Every marked line must be flagged; the annotated and
// vector-based loops must not be.

#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fixture
{

struct State
{
    std::unordered_map<int, int> hotness;
    std::unordered_set<int> residents;
    std::vector<int> order;
};

int
sumAll(const State &s)
{
    int sum = 0;
    for (const auto &[k, v] : s.hotness) // expect-lint: D1
        sum += v;
    for (int r : s.residents) // expect-lint: D1
        sum += r;
    // Commutative sum; iteration order cannot affect the result.
    for (const auto &[k, v] : s.hotness) // lint: order-independent
        sum += v;
    for (int r : s.order) // ordered container: no finding
        sum += r;
    return sum;
}

} // namespace fixture
