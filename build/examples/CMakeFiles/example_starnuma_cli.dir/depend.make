# Empty dependencies file for example_starnuma_cli.
# This may be replaced when dependencies are built.
