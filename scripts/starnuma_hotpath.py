#!/usr/bin/env python3
"""starnuma-hotpath: interprocedural hot-path discipline analyzer
(DESIGN.md §13). C++-aware but clang-free: built on the shared
tokenizer/function indexer in starnuma_lint_core.py.

Rules
-----
D9  Hot-path discipline. Functions annotated ``// lint: hot-path``
    are roots of a call-graph reachability walk; no function
    reachable from a root may allocate (``new``, the malloc family,
    growing ``std::`` container methods, hash containers,
    ``std::string`` construction), throw, take a mutex, or call
    logging. ``sn_assert``/``panic``/``panicAssert``/``fatal`` are
    allowed: they are [[noreturn]] invariant failures, not part of
    the steady-state path. Escape hatch: ``// lint: cold-path`` with
    a reason — on a function's declaration it stops the walk there
    (setup/per-phase code); on a single line it exempts exactly that
    line (amortized growth edges whose capacity is reserved up
    front).

    The call graph is name-based and over-approximate: a call
    resolves to every indexed definition of that simple name
    (qualified calls ``X::f`` prefer definitions of class X).
    Virtual calls therefore resolve to all same-name overriders.
    Known blind spots — documented in DESIGN.md §13 and backstopped
    by scripts/check_hotpath_syms.sh at the binary level: calls
    through function pointers, operator-overload call sites (the
    FlatMap/FlatSet operators are themselves annotated roots for
    exactly this reason), and std:: methods that share a name with
    an indexed function.

D10 Decoder bounds discipline. In ``src/trace/`` and the
    checkpoint/trace decode paths of ``src/driver/trace_sim.cc``,
    functions whose name says they parse external bytes
    (decode/load/read/get/parse) may not do raw pointer arithmetic
    on byte buffers, ``memcpy``/``fread`` from them, or
    ``reinterpret_cast`` — all cursor movement goes through the
    checked ``ByteReader`` helpers (which are themselves exempt:
    they are the trusted kernel the rule funnels everything into).
    Escape hatch: ``// lint: raw-read`` with a reason (e.g. the one
    whole-file slurp into an owned buffer).

D11 Strong-type boundaries. Public headers under ``src/core/`` and
    ``src/mem/`` may not pass raw ``uint64_t`` where the strong
    types exist: parameters/members with page-like names
    (``page``, ``*_page``, ``*Page``) must be ``PageNum``;
    cycle-like names (``cycles``, ``*_cycles``, ``*Cycles``,
    ``latency``) must be ``Cycles``/``CycleDelta``. Addr→page
    arithmetic (``/ pageBytes``) is confined to ``sim/types.hh``
    (the geometry helpers) and ``mem/page_map``; anywhere else it
    needs a justified ``// lint: raw-unit`` annotation.

Usage
-----
    starnuma_hotpath.py [paths...]   # default: src (repo root)
    starnuma_hotpath.py --self-test  # run against scripts/lint_fixtures
    starnuma_hotpath.py --dump-reach # also list reachable functions

Exit status: 0 when clean, 1 on findings, 2 on usage errors.
"""

import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import starnuma_lint_core as core  # noqa: E402

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

RULES = ("D9", "D10", "D11")

HOT_ANNOTATION = "lint: hot-path"
COLD_ANNOTATION = "lint: cold-path"
RAW_READ_ANNOTATION = "lint: raw-read"
RAW_UNIT_ANNOTATION = "lint: raw-unit"

# --- D9 vocabulary --------------------------------------------------

ALLOC_FUNCS = frozenset((
    "malloc", "calloc", "realloc", "free", "strdup", "aligned_alloc",
    "posix_memalign",
))
# Growing std:: container methods. Flagged only when the callee name
# does NOT resolve to an indexed definition: FlatMap/FlatSet define
# try_emplace/insert/emplace/erase/reserve themselves, and those
# resolve and are traversed (their own bodies are checked) instead.
ALLOC_METHODS = frozenset((
    "push_back", "emplace_back", "resize", "reserve", "assign",
    "append", "insert", "emplace", "try_emplace", "insert_or_assign",
    "push", "emplace_front", "push_front", "shrink_to_fit", "rehash",
    "merge",
))
HASH_CONTAINERS = frozenset((
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset",
))
STRING_TOKENS = frozenset((
    "string", "wstring", "to_string", "stringstream",
    "ostringstream", "istringstream",
))
LOCK_TOKENS = frozenset((
    "Mutex", "MutexLock", "lock_guard", "unique_lock", "scoped_lock",
    "shared_lock", "mutex", "shared_mutex", "recursive_mutex",
    "pthread_mutex_lock", "CondVar", "condition_variable",
))
LOG_CALLS = frozenset((
    "inform", "warn", "vreport", "printf", "fprintf", "vfprintf",
    "puts", "fputs", "fwrite",
))
# [[noreturn]] invariant failures: allowed on the hot path, and the
# walk does not descend into them.
NORETURN_OK = frozenset((
    "sn_assert", "panic", "panicAssert", "fatal", "abort", "assert",
))

# --- D10 vocabulary -------------------------------------------------

D10_SCOPE_DIRS = ("src/trace/",)
D10_SCOPE_FILES = ("src/driver/trace_sim.cc",)
D10_NAME_HINTS = ("decode", "load", "read", "get", "parse")
D10_EXEMPT_QUALS = ("ByteReader",)
D10_RAW_CALLS = frozenset((
    "memcpy", "memmove", "fread", "fscanf", "fgets", "sscanf",
))
D10_PTR_DECL = re.compile(
    r"\b(?:uint8_t|byte|unsigned\s+char|char)\b\s*"
    r"(?:const\b\s*)?\*+\s*(?:const\b\s*)?([A-Za-z_]\w*)")

# --- D11 vocabulary -------------------------------------------------

D11_HEADER_DIRS = ("src/core/", "src/mem/")
D11_UINT_DECL = re.compile(
    r"(?:\bstd\s*::\s*)?\buint64_t\b\s+([A-Za-z_]\w*)\b(?!\s*\()")
D11_PAGEY = re.compile(
    r"^(?:page|pn|page_num|pagenum)$|_page$|[a-z0-9]Page$")
D11_CYCLEY = re.compile(
    r"^(?:cycle|cycles|latency)$|_cycles$|_latency$|[a-z0-9]Cycles$")
D11_PAGE_ARITH = re.compile(r"/\s*pageBytes\b")
D11_ARITH_ALLOWED = (
    "src/sim/types.hh", "src/mem/page_map.hh", "src/mem/page_map.cc",
)


# Parsed-tree plumbing and the name-based call graph now live in the
# shared core (starnuma_taint.py uses them too); keep local aliases
# for the rule code below.
SourceFile = core.SourceFile
load_tree = core.load_tree
line_annotated = core.line_annotated
func_annotated = core.func_annotated
CallGraph = core.CallGraph


# -------------------------------------------------------------------
# D9: interprocedural reachability.
# -------------------------------------------------------------------


def scan_hot_function(sf, f, graph, findings, seen_violations):
    """Scan one reachable function's body for D9 violations and
    return its outgoing call edges [(callee_def, line)]."""
    toks = sf.toks
    edges = []

    def violation(line, what):
        key = (f.qualname, sf.rel, line, what)
        if key in seen_violations:
            return
        if line_annotated(sf, line, COLD_ANNOTATION):
            return
        seen_violations.add(key)
        findings.append((sf.rel, line, what, f))

    j = f.body_start
    while j < f.body_end:
        t = toks[j].text
        line = toks[j].line
        nxt = toks[j + 1].text if j + 1 < f.body_end else ""
        prv = toks[j - 1].text if j > 0 else ""

        if t == "new":
            violation(line, "allocates ('new')")
        elif t == "throw":
            violation(line, "throws")
        elif t in HASH_CONTAINERS:
            violation(line, "uses allocating hash container "
                            "'%s'" % t)
        elif t in LOCK_TOKENS:
            violation(line, "takes a lock ('%s')" % t)
        elif t in STRING_TOKENS and prv == "::":
            violation(line, "constructs std::%s (allocates)" % t)
        elif core.is_ident(t) and nxt == "(":
            if t in NORETURN_OK:
                pass  # [[noreturn]] invariant failure: allowed
            elif t in LOG_CALLS:
                violation(line, "calls logging/stdio ('%s')" % t)
            elif t in ALLOC_FUNCS:
                violation(line, "allocates ('%s')" % t)
            else:
                qual = None
                if prv == "::" and j >= 2 and \
                        core.is_ident(toks[j - 2].text):
                    qual = toks[j - 2].text
                targets = graph.resolve(t, qual)
                if targets:
                    if not line_annotated(sf, line,
                                          COLD_ANNOTATION):
                        for tgt in targets:
                            edges.append((tgt, line))
                elif t in ALLOC_METHODS and prv in (".", "->"):
                    violation(line, "grows a std:: container "
                                    "('%s')" % t)
        elif core.is_ident(t) and nxt != "(" and \
                t in graph.ctor_classes:
            # A mention of an indexed class name constructs one
            # (local, member, or container element): follow its
            # constructor(s).
            if not line_annotated(sf, line, COLD_ANNOTATION):
                for tgt in graph.ctor_classes[t]:
                    edges.append((tgt, line))
        j += 1
    return edges


def check_d9(tree, findings, dump_reach=False):
    graph = CallGraph(tree)
    roots = []
    cold = set()
    for sf in tree.values():
        for f in sf.funcs:
            if func_annotated(sf, f, COLD_ANNOTATION):
                cold.add(id(f))
            elif func_annotated(sf, f, HOT_ANNOTATION):
                roots.append(f)

    parent = {}
    visited = {}
    raw = []
    seen_violations = set()
    work = []
    for r in sorted(roots, key=lambda f: (f.rel, f.name_line)):
        visited[id(r)] = r
        parent[id(r)] = None
        work.append(r)
    while work:
        f = work.pop(0)
        sf = tree[f.file_key]
        for tgt, line in scan_hot_function(sf, f, graph, raw,
                                           seen_violations):
            if id(tgt) in cold or id(tgt) in visited:
                continue
            visited[id(tgt)] = tgt
            parent[id(tgt)] = (id(f), f)
            work.append(tgt)

    for rel, line, what, f in raw:
        chain = []
        cur = parent.get(id(f))
        hop = f
        while cur is not None:
            hop = cur[1]
            chain.append(hop.qualname)
            cur = parent.get(id(hop))
        via = ""
        if chain:
            chain.reverse()
            via = " (hot via %s)" % " -> ".join(chain)
        findings.append(core.Finding(
            "D9", rel, line,
            "hot-path function '%s' %s%s; fix it, or annotate "
            "'// %s <reason>' on the line or the function"
            % (f.qualname, what, via, COLD_ANNOTATION)))

    if dump_reach:
        for f in sorted(visited.values(),
                        key=lambda f: (f.rel, f.name_line)):
            print("reach: %s (%s:%d)" % (f.qualname, f.rel,
                                         f.name_line))
    return len(roots), len(visited)


# -------------------------------------------------------------------
# D10: decoder bounds discipline.
# -------------------------------------------------------------------

def d10_in_scope(rel):
    return rel in D10_SCOPE_FILES or \
        any(rel.startswith(d) for d in D10_SCOPE_DIRS)


def check_d10(tree, findings):
    for rel in sorted(tree):
        if not d10_in_scope(rel):
            continue
        sf = tree[rel]
        for f in sf.funcs:
            lname = f.name.lower()
            if not any(h in lname for h in D10_NAME_HINTS):
                continue
            if any(f.qualname.startswith(q + "::") or
                   f.qualname == q for q in D10_EXEMPT_QUALS):
                continue
            # Byte-buffer pointer names declared in the signature or
            # body (the signature span carries the parameters).
            span = "\n".join(sf.code_lines[
                max(0, f.decl_line - 1):f.body_close_line])
            ptr_names = set(D10_PTR_DECL.findall(span))

            def flag(line, what):
                if line_annotated(sf, line, RAW_READ_ANNOTATION):
                    return
                findings.append(core.Finding(
                    "D10", rel, line,
                    "decode path '%s' %s; route reads through the "
                    "checked ByteReader helpers or annotate "
                    "'// %s <reason>'"
                    % (f.qualname, what, RAW_READ_ANNOTATION)))

            toks = sf.toks
            j = f.body_start
            while j < f.body_end:
                t = toks[j].text
                nxt = toks[j + 1].text if j + 1 < f.body_end else ""
                prv = toks[j - 1].text if j > 0 else ""
                if t in D10_RAW_CALLS and nxt == "(":
                    flag(toks[j].line,
                         "reads raw bytes via '%s'" % t)
                elif t == "reinterpret_cast":
                    flag(toks[j].line, "uses reinterpret_cast")
                elif t in ptr_names and (
                        nxt in ("[", "+", "-") or
                        prv in ("+", "-", "*")):
                    flag(toks[j].line,
                         "does raw pointer arithmetic on buffer "
                         "'%s'" % t)
                j += 1


# -------------------------------------------------------------------
# D11: strong-type boundaries.
# -------------------------------------------------------------------

def check_d11(tree, findings):
    for rel in sorted(tree):
        sf = tree[rel]
        is_header = rel.endswith((".hh", ".hpp")) and \
            any(rel.startswith(d) for d in D11_HEADER_DIRS)
        arith_applies = rel.startswith("src/") and \
            rel not in D11_ARITH_ALLOWED
        if not (is_header or arith_applies):
            continue
        for idx, code in enumerate(sf.code_lines):
            line = idx + 1
            if is_header:
                for m in D11_UINT_DECL.finditer(code):
                    name = m.group(1)
                    want = None
                    if D11_PAGEY.search(name):
                        want = "PageNum"
                    elif D11_CYCLEY.search(name):
                        want = "Cycles/CycleDelta"
                    if want and not line_annotated(
                            sf, line, RAW_UNIT_ANNOTATION):
                        findings.append(core.Finding(
                            "D11", rel, line,
                            "raw uint64_t '%s' in a public header "
                            "where %s exists; use the strong type "
                            "or annotate '// %s <reason>'"
                            % (name, want, RAW_UNIT_ANNOTATION)))
            if arith_applies and D11_PAGE_ARITH.search(code) and \
                    not line_annotated(sf, line,
                                       RAW_UNIT_ANNOTATION):
                findings.append(core.Finding(
                    "D11", rel, line,
                    "Addr->page arithmetic ('/ pageBytes') outside "
                    "sim/types.hh geometry helpers and "
                    "mem/page_map; use pageNumber()/pagesIn()/"
                    "pagesCovering()/pagesPerRegion() or annotate "
                    "'// %s <reason>'" % RAW_UNIT_ANNOTATION))


# -------------------------------------------------------------------


def analyze(paths, root, dump_reach=False):
    tree = load_tree(paths, root)
    findings = []
    nroots, nreach = check_d9(tree, findings, dump_reach)
    check_d10(tree, findings)
    check_d11(tree, findings)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings, nroots, nreach


def self_test():
    """Fixtures mark expected findings with `expect-lint: D<n>`;
    the analyzer must report exactly the expected (file, line, rule)
    set for its rules D9-D11 and nothing else."""
    fixture_dir = os.path.join(REPO_ROOT, "scripts", "lint_fixtures")
    expected = set()
    for path in core.iter_source_files([fixture_dir]):
        with open(path, encoding="utf-8") as fh:
            for idx, text in enumerate(fh):
                for rule in re.findall(r"expect-lint:\s*(D\d+)\b",
                                       text):
                    if rule in RULES:
                        expected.add(
                            (core.relpath(path, fixture_dir),
                             idx + 1, rule))
    findings, _, _ = analyze([fixture_dir], fixture_dir)
    got = {(f.path, f.line, f.rule) for f in findings}
    ok = True
    for miss in sorted(expected - got):
        print("hotpath self-test: MISSED expected finding "
              "%s:%d [%s]" % miss)
        ok = False
    for extra in sorted(got - expected):
        print("hotpath self-test: UNEXPECTED finding %s:%d [%s]"
              % extra)
        ok = False
    print("hotpath self-test: %d expected findings, %d reported, %s"
          % (len(expected), len(got), "OK" if ok else "FAIL"))
    return 0 if ok and expected else 1


def main(argv):
    if "--self-test" in argv:
        return self_test()
    dump_reach = "--dump-reach" in argv
    paths = [a for a in argv if not a.startswith("-")]
    if not paths:
        paths = [os.path.join(REPO_ROOT, "src")]
    bad = [p for p in paths if not os.path.exists(p)]
    if bad:
        print("starnuma-hotpath: no such path: %s" % ", ".join(bad),
              file=sys.stderr)
        return 2
    findings, nroots, nreach = analyze(paths, REPO_ROOT, dump_reach)
    for f in findings:
        print(f)
    print("starnuma-hotpath: D9 roots=%d reachable=%d" %
          (nroots, nreach))
    print("starnuma-hotpath: rule counts: " +
          " ".join("%s=%d" % (r, sum(1 for f in findings
                                     if f.rule == r))
                   for r in RULES))
    if nroots == 0:
        print("starnuma-hotpath: ERROR: no '// %s' roots found — "
              "the hot-path audit is vacuous (annotations deleted?)"
              % HOT_ANNOTATION, file=sys.stderr)
        return 1
    if findings:
        print("starnuma-hotpath: %d finding(s)" % len(findings))
        return 1
    print("starnuma-hotpath: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
