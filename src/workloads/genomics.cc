#include "workloads/genomics.hh"

#include <algorithm>
#include <numeric>

#include "sim/logging.hh"

namespace starnuma
{
namespace workloads
{

// --- FMI ---

Fmi::Fmi(std::uint64_t rng_seed, std::uint32_t text_size,
         int pattern_length)
    : seed(rng_seed), n(text_size), patternLength(pattern_length)
{
}

void
Fmi::setup(trace::CaptureContext &ctx, const SimScale &scale)
{
    int threads = scale.threads();
    threadRng.clear();
    for (int t = 0; t < threads; ++t)
        threadRng.emplace_back(seed + 31 + t);

    // Synthetic genome.
    Rng gen(seed);
    text.resize(n);
    for (auto &c : text)
        c = static_cast<std::uint8_t>(gen.range32(4));

    // Suffix array by direct comparison sort: random text means
    // comparisons terminate after ~log4(n) characters.
    std::vector<std::uint32_t> sa(n);
    std::iota(sa.begin(), sa.end(), 0);
    const std::uint8_t *txt = text.data();
    std::uint32_t len = n;
    std::sort(sa.begin(), sa.end(),
              [txt, len](std::uint32_t a, std::uint32_t b) {
                  // Compare cyclic rotations (BWT convention).
                  for (std::uint32_t i = 0; i < len; ++i) {
                      std::uint8_t ca = txt[(a + i) & (len - 1)];
                      std::uint8_t cb = txt[(b + i) & (len - 1)];
                      if (ca != cb)
                          return ca < cb;
                  }
                  return a < b;
              });

    // BWT and C table.
    bwt.resize(n);
    cTable.fill(0);
    for (std::uint32_t i = 0; i < n; ++i) {
        bwt[i] = text[(sa[i] + n - 1) & (n - 1)];
        ++cTable[bwt[i] + 1];
    }
    for (int c = 1; c <= 4; ++c)
        cTable[c] += cTable[c - 1];

    // Occurrence checkpoints every 64 BWT positions.
    checkpoints.assign(n / checkpointStride + 1, {});
    std::array<std::uint32_t, 4> running{};
    for (std::uint32_t i = 0; i < n; ++i) {
        if (i % checkpointStride == 0)
            checkpoints[i / checkpointStride] = running;
        ++running[bwt[i]];
    }
    checkpoints[n / checkpointStride] = running;

    bwtMem.allocate(ctx, n);
    occMem.allocate(ctx, checkpoints.size() * 16);
    queryMem.allocate(ctx,
                      static_cast<Addr>(threads) * pageBytes);
    // Per-thread read sets and result buffers: the bulk of a real
    // alignment pipeline's footprint, streamed through rarely. The
    // shared index stays a small, hot fraction of memory, as in
    // GenomicsBench (whose inputs dwarf the index).
    Addr reads_per_thread = 64 * pageBytes;
    readsMem.allocate(ctx,
                      static_cast<Addr>(threads) * reads_per_thread);

    // Partitioned index build: thread t first-touches its slice.
    for (int t = 0; t < threads; ++t) {
        Addr lo = static_cast<Addr>(n) * t / threads;
        Addr hi = static_cast<Addr>(n) * (t + 1) / threads;
        for (Addr a = lo; a < hi; a += pageBytes)
            ctx.store(t, bwtMem.base() + a);
        Addr olo = checkpoints.size() * 16 * t / threads;
        Addr ohi = checkpoints.size() * 16 * (t + 1) / threads;
        for (Addr a = olo; a < ohi; a += pageBytes)
            ctx.store(t, occMem.base() + a);
        ctx.store(t, queryMem.base() + t * pageBytes);
        for (Addr a = 0; a < 64 * pageBytes; a += pageBytes)
            ctx.store(t, readsMem.base() +
                             static_cast<Addr>(t) * 64 * pageBytes +
                             a);
    }
}

std::uint32_t
Fmi::occCount(int c, std::uint32_t pos) const
{
    std::uint32_t cp = pos / checkpointStride;
    std::uint32_t count = checkpoints[cp][c];
    for (std::uint32_t i = cp * checkpointStride; i < pos; ++i)
        count += (bwt[i] == c);
    return count;
}

std::uint32_t
Fmi::occCountTraced(trace::CaptureContext &ctx, ThreadId t, int c,
                    std::uint32_t pos)
{
    std::uint32_t cp = pos / checkpointStride;
    // One load for the checkpoint entry, one for the BWT line the
    // residual scan covers (64 chars fit one cache line).
    ctx.load(t, occMem.base() + static_cast<Addr>(cp) * 16);
    ctx.load(t, bwtMem.base() + static_cast<Addr>(cp) *
                                    checkpointStride);
    ctx.instr(t, 10);
    return occCount(c, pos);
}

std::uint64_t
Fmi::count(const std::string &pattern) const
{
    std::uint32_t lo = 0, hi = n;
    for (auto it = pattern.rbegin(); it != pattern.rend(); ++it) {
        int c = *it;
        lo = cTable[c] + occCount(c, lo);
        hi = cTable[c] + occCount(c, hi);
        if (lo >= hi)
            return 0;
    }
    return hi - lo;
}

void
Fmi::step(ThreadId t, trace::CaptureContext &ctx)
{
    Rng &rng = threadRng[t];
    // Fetch the next read from the thread's (cold, private) read
    // set, then backward-search it against the shared index.
    std::uint32_t start =
        rng.range32(n - static_cast<std::uint32_t>(patternLength));
    ctx.load(t, readsMem.base() +
                    static_cast<Addr>(t) * 64 * pageBytes +
                    (rng.next32() % (64 * pageBytes / blockBytes)) *
                        blockBytes);
    ctx.load(t, queryMem.base() +
                    static_cast<Addr>(t) * pageBytes);
    ctx.instr(t, 6);

    std::uint32_t lo = 0, hi = n;
    for (int i = patternLength - 1; i >= 0; --i) {
        int c = text[start + i];
        lo = cTable[c] + occCountTraced(ctx, t, c, lo);
        hi = cTable[c] + occCountTraced(ctx, t, c, hi);
        ctx.instr(t, 6);
        if (lo >= hi)
            break;
    }
    sn_assert(lo < hi, "planted pattern must match");
}

// --- POA ---

Poa::Poa(std::uint64_t rng_seed, int seq_length, int max_nodes)
    : seed(rng_seed), seqLength(seq_length), maxNodes(max_nodes)
{
}

std::int16_t &
Poa::cell(ThreadPoa &s, int node, int j)
{
    return s.matrix[static_cast<std::size_t>(node) *
                        (seqLength + 1) + j];
}

namespace
{

Addr
roundToPage(Addr bytes)
{
    // Per-thread arenas are aligned to the migration region size
    // (64 KB), like real per-thread heap arenas: no region ever
    // spans two threads' private data.
    constexpr Addr arena = 64 * 1024;
    return (bytes + arena - 1) / arena * arena;
}

} // anonymous namespace

Addr
Poa::cellAddr(ThreadId t, int node, int j) const
{
    // Per-thread slices are page aligned so no page is shared
    // between threads (POA's whole point is thread privacy).
    Addr per_thread = roundToPage(
        static_cast<Addr>(maxNodes) * (seqLength + 1) * 2);
    return matrixMem.base() + static_cast<Addr>(t) * per_thread +
           (static_cast<Addr>(node) * (seqLength + 1) + j) * 2;
}

Addr
Poa::dagAddr(ThreadId t, int node) const
{
    Addr per_thread = roundToPage(static_cast<Addr>(maxNodes) * 8);
    return dagMem.base() + static_cast<Addr>(t) * per_thread +
           static_cast<Addr>(node) * 8;
}

void
Poa::setup(trace::CaptureContext &ctx, const SimScale &scale)
{
    threads = scale.threads();
    state.assign(threads, ThreadPoa{});

    std::size_t cells_per_thread =
        static_cast<std::size_t>(maxNodes) * (seqLength + 1);
    Addr matrix_stride = roundToPage(
        static_cast<Addr>(maxNodes) * (seqLength + 1) * 2);
    Addr dag_stride = roundToPage(static_cast<Addr>(maxNodes) * 8);
    matrixMem.allocate(ctx,
                       static_cast<Addr>(threads) * matrix_stride);
    dagMem.allocate(ctx, static_cast<Addr>(threads) * dag_stride);

    for (ThreadId t = 0; t < threads; ++t) {
        ThreadPoa &s = state[t];
        s.rng = Rng(seed + 555 + t);
        s.matrix.assign(cells_per_thread, 0);
        // Thread-private first touch of matrix and DAG memory.
        for (Addr a = 0; a < matrix_stride; a += pageBytes)
            ctx.store(t, cellAddr(t, 0, 0) + a);
        for (Addr a = 0; a < dag_stride; a += pageBytes)
            ctx.store(t, dagAddr(t, 0) + a);
        // Seed the DAG with the first sequence (a linear chain).
        s.dagChar.clear();
        s.dagPred.clear();
        for (int i = 0; i < seqLength; ++i) {
            s.dagChar.push_back(
                static_cast<std::uint8_t>(s.rng.range32(4)));
            s.dagPred.push_back(i - 1);
        }
        newSequence(t, ctx, false);
    }
}

void
Poa::newSequence(ThreadId t, trace::CaptureContext &ctx, bool traced)
{
    ThreadPoa &s = state[t];
    // A mutated copy of the consensus so alignments are realistic.
    s.seq.clear();
    for (int i = 0; i < seqLength; ++i) {
        std::uint8_t c = i < static_cast<int>(s.dagChar.size())
                             ? s.dagChar[i]
                             : static_cast<std::uint8_t>(
                                   s.rng.range32(4));
        if (s.rng.chance(0.05))
            c = static_cast<std::uint8_t>(s.rng.range32(4));
        s.seq.push_back(c);
        if (traced)
            ctx.instr(t, 2);
    }
    s.phase = Phase::Fill;
    s.row = 0;
}

void
Poa::fillRow(ThreadId t, trace::CaptureContext &ctx)
{
    ThreadPoa &s = state[t];
    int node = s.row;
    int pred = s.dagPred[node];
    ctx.load(t, dagAddr(t, node));

    constexpr int lineCells = 32; // 64 B / int16
    for (int j = 1; j <= seqLength; ++j) {
        std::int16_t up =
            pred >= 0 ? cell(s, pred, j) : static_cast<std::int16_t>(
                                               -2 * j);
        std::int16_t left = cell(s, node, j - 1);
        std::int16_t diag =
            pred >= 0 ? cell(s, pred, j - 1)
                      : static_cast<std::int16_t>(-2 * (j - 1));
        bool match = s.dagChar[node] == s.seq[j - 1];
        std::int16_t best = std::max<std::int16_t>(
            std::max<std::int16_t>(
                static_cast<std::int16_t>(up - 2),
                static_cast<std::int16_t>(left - 2)),
            static_cast<std::int16_t>(diag + (match ? 2 : -1)));
        cell(s, node, j) = best;
        ctx.instr(t, 3);
        if (j % lineCells == 0) {
            if (pred >= 0)
                ctx.load(t, cellAddr(t, pred, j));
            ctx.store(t, cellAddr(t, node, j));
        }
    }
    ++s.row;
    if (s.row >= static_cast<int>(s.dagChar.size())) {
        s.phase = Phase::Traceback;
        s.tracebackRow = static_cast<int>(s.dagChar.size()) - 1;
    }
}

void
Poa::traceback(ThreadId t, trace::CaptureContext &ctx)
{
    ThreadPoa &s = state[t];
    // Walk back up the matrix, one row per node, reading scores and
    // appending mismatch nodes to the DAG.
    int j = seqLength;
    for (int node = s.tracebackRow; node >= 0 && j > 0; --node) {
        ctx.load(t, cellAddr(t, node, j));
        ctx.instr(t, 4);
        bool match = s.dagChar[node] == s.seq[j - 1];
        if (!match && s.rng.chance(0.25) &&
            static_cast<int>(s.dagChar.size()) < maxNodes) {
            // Insert the mismatching base as a new DAG node.
            s.dagChar.push_back(s.seq[j - 1]);
            s.dagPred.push_back(node > 0 ? node - 1 : -1);
            ctx.store(t, dagAddr(
                             t, static_cast<int>(s.dagChar.size()) -
                                    1));
        }
        --j;
    }
    ++s.done;
    if (static_cast<int>(s.dagChar.size()) >= maxNodes) {
        // Graph saturated: start a fresh consensus.
        s.dagChar.resize(seqLength);
        s.dagPred.resize(seqLength);
    }
    newSequence(t, ctx, true);
}

void
Poa::step(ThreadId t, trace::CaptureContext &ctx)
{
    ThreadPoa &s = state[t];
    if (s.phase == Phase::Fill)
        fillRow(t, ctx);
    else
        traceback(t, ctx);
}

std::uint64_t
Poa::alignmentsDone(ThreadId t) const
{
    return state[t].done;
}

} // namespace workloads
} // namespace starnuma
