/**
 * @file
 * Deterministic pseudo-random number generation (PCG32). Every source
 * of randomness in the repository draws from an explicitly seeded Rng
 * so that workload traces, placements, and migration tie-breaks are
 * exactly reproducible across runs and processes.
 */

#ifndef STARNUMA_SIM_RNG_HH
#define STARNUMA_SIM_RNG_HH

#include <cstdint>
#include <initializer_list>
#include <string_view>
#include <vector>

namespace starnuma
{

/**
 * Derive the seed of an independent per-task RNG stream from the
 * task's identity — e.g. {workload, config} plus a phase index —
 * instead of sharing one generator across tasks. Tasks seeded this
 * way draw identical sequences no matter which thread runs them or
 * in what order, which is what lets the parallel driver reproduce
 * serial results bit for bit. FNV-1a over the parts, mixed with a
 * splitmix64 finalizer.
 */
std::uint64_t taskSeed(std::initializer_list<std::string_view> parts,
                       std::uint64_t index = 0);

/**
 * PCG32 generator (O'Neill, 2014): 64-bit state, 32-bit output,
 * period 2^64, passes BigCrush at this size; tiny and fast.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t stream = 0xda3e39cb94b95bdbULL);

    /** Next raw 32-bit value. */
    std::uint32_t next32();

    /** Next raw 64-bit value (two draws). */
    std::uint64_t next64();

    /** Uniform integer in [0, bound), bias-free via rejection. */
    std::uint32_t range32(std::uint32_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range64(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + next64() % (hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double uniform();

    /** Bernoulli draw: true with probability @p p. */
    bool chance(double p) { return uniform() < p; }

    /**
     * Geometric-ish skewed pick in [0, n): index 0 most likely.
     * Used for Zipf-flavored popularity without a full Zipf table.
     */
    std::uint32_t skewed(std::uint32_t n, double theta);

    /**
     * Raw generator words, for checkpoint/resume serialization
     * (DESIGN.md §16). restoreRaw() with a previously captured pair
     * resumes the exact sequence.
     */
    std::uint64_t rawState() const { return state; }
    std::uint64_t rawInc() const { return inc; }
    void
    restoreRaw(std::uint64_t raw_state, std::uint64_t raw_inc)
    {
        state = raw_state;
        inc = raw_inc;
    }

    /** Fisher-Yates shuffle of @p v. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i)
            std::swap(v[i - 1], v[range32(static_cast<std::uint32_t>(i))]);
    }

  private:
    std::uint64_t state;
    std::uint64_t inc;
};

} // namespace starnuma

#endif // STARNUMA_SIM_RNG_HH
