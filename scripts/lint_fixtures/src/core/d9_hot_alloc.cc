// Fixture: D9 hot-path discipline — violations. The hot root is
// clean itself; the findings are in the callees the reachability
// walk descends into, and the messages carry the "hot via" chain.

namespace starnuma
{

// Reached from the hot root: its allocation is a finding.
int
fixtureAppendSample(int v)
{
    int *slot = new int(v); // expect-lint: D9
    int out = *slot;
    delete slot;
    return out;
}

// Also reached from the hot root: throwing is a finding.
void
fixtureFailHot(int v)
{
    if (v < 0)
        throw v; // expect-lint: D9
}

// lint: hot-path fixture root of the reachability walk
int
fixtureHotLoop(int v)
{
    fixtureFailHot(v);
    return fixtureAppendSample(v);
}

} // namespace starnuma
