file(REMOVE_RECURSE
  "CMakeFiles/bench_scale32.dir/bench_scale32.cc.o"
  "CMakeFiles/bench_scale32.dir/bench_scale32.cc.o.d"
  "CMakeFiles/bench_scale32.dir/bench_util.cc.o"
  "CMakeFiles/bench_scale32.dir/bench_util.cc.o.d"
  "bench_scale32"
  "bench_scale32.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scale32.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
