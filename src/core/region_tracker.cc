#include "core/region_tracker.hh"

#include <bit>

#include "sim/logging.hh"

namespace starnuma
{
namespace core
{

const TrackerEntry RegionTracker::zeroEntry{};

int
TrackerEntry::sharerCount() const
{
    return std::popcount(sharerMask);
}

RegionTracker::RegionTracker(int counter_bits, int n_sockets,
                             Addr region_bytes)
    : counterBits_(counter_bits), sockets(n_sockets),
      regionBytes_(region_bytes)
{
    sn_assert(counter_bits >= 0 && counter_bits <= 32,
              "tracker counter width %d out of range", counter_bits);
    sn_assert(sockets > 0 && sockets <= 64, "too many sockets");
    sn_assert(region_bytes >= pageBytes &&
                  region_bytes % pageBytes == 0,
              "region size must be a multiple of the page size");
    counterMax =
        counter_bits == 0
            ? 0
            : static_cast<std::uint32_t>((1ULL << counter_bits) - 1);
}

int
RegionTracker::pagesPerRegion() const
{
    return starnuma::pagesPerRegion(regionBytes_);
}

// lint: cold-path one-time setup before the replay loop
void
RegionTracker::preallocate(RegionId base, std::size_t regions)
{
    sn_assert(entries.empty() && flat.empty(),
              "preallocate before recording any access");
    if (regions == 0)
        return;
    flatBase = base;
    flat.assign(regions, TrackerEntry{});
    touchedOrder.reserve(regions);
}

const TrackerEntry &
RegionTracker::entry(RegionId region) const
{
    if (flat.empty()) {
        auto it = entries.find(region);
        return it == entries.end() ? zeroEntry : it->second;
    }
    std::uint64_t slot = region - flatBase;
    return slot < flat.size() ? flat[slot] : zeroEntry;
}

std::uint64_t
RegionTracker::entryBytes() const
{
    // Presence bits (one per socket) plus the i-bit counter,
    // rounded up to whole bytes.
    return (sockets + counterBits_ + 7) / 8;
}

std::uint64_t
RegionTracker::metadataBytes(std::uint64_t total_memory) const
{
    std::uint64_t regions =
        (total_memory + regionBytes_ - 1) / regionBytes_;
    return regions * entryBytes();
}

} // namespace core
} // namespace starnuma
