#include "trace/trace.hh"

#include <cstdio>
#include <cstdlib>
#include <sys/stat.h>

namespace starnuma
{
namespace trace
{

namespace
{

constexpr std::uint64_t magic = 0x5354415254524332ULL; // "STARTRC2"

bool
writeBytes(std::FILE *f, const void *p, std::size_t n)
{
    if (n == 0)
        return true; // empty vectors have a null data()
    return std::fwrite(p, 1, n, f) == n;
}

bool
readBytes(std::FILE *f, void *p, std::size_t n)
{
    if (n == 0)
        return true;
    return std::fread(p, 1, n, f) == n;
}

} // anonymous namespace

std::uint64_t
WorkloadTrace::totalRecords() const
{
    std::uint64_t total = 0;
    for (const auto &t : perThread)
        total += t.size();
    return total;
}

double
WorkloadTrace::recordsPerKiloInstruction() const
{
    std::uint64_t instr =
        instructionsPerThread * static_cast<std::uint64_t>(threads);
    return instr ? 1000.0 * static_cast<double>(totalRecords()) /
                       static_cast<double>(instr)
                 : 0.0;
}

bool
WorkloadTrace::save(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    bool ok = true;
    std::uint64_t name_len = workload.size();
    std::uint64_t nthreads = threads;
    std::uint64_t nft = firstTouches.size();
    ok = ok && writeBytes(f, &magic, 8);
    ok = ok && writeBytes(f, &name_len, 8);
    ok = ok && writeBytes(f, workload.data(), name_len);
    ok = ok && writeBytes(f, &nthreads, 8);
    ok = ok && writeBytes(f, &instructionsPerThread, 8);
    ok = ok && writeBytes(f, &footprintBytes, 8);
    ok = ok && writeBytes(f, &nft, 8);
    ok = ok && writeBytes(f, firstTouches.data(),
                          nft * sizeof(FirstTouch));
    std::uint64_t nwp = writtenPages.size();
    ok = ok && writeBytes(f, &nwp, 8);
    ok = ok && writeBytes(f, writtenPages.data(),
                          nwp * sizeof(PageNum));
    for (const auto &t : perThread) {
        std::uint64_t n = t.size();
        ok = ok && writeBytes(f, &n, 8);
        ok = ok && writeBytes(f, t.data(), n * sizeof(MemRecord));
    }
    std::fclose(f);
    return ok;
}

bool
WorkloadTrace::load(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    bool ok = true;
    std::uint64_t m = 0, name_len = 0, nthreads = 0, nft = 0;
    ok = ok && readBytes(f, &m, 8) && m == magic;
    ok = ok && readBytes(f, &name_len, 8) && name_len < 4096;
    if (ok) {
        workload.resize(name_len);
        ok = readBytes(f, workload.data(), name_len);
    }
    ok = ok && readBytes(f, &nthreads, 8);
    ok = ok && readBytes(f, &instructionsPerThread, 8);
    ok = ok && readBytes(f, &footprintBytes, 8);
    ok = ok && readBytes(f, &nft, 8);
    if (ok) {
        threads = static_cast<int>(nthreads);
        firstTouches.resize(nft);
        ok = readBytes(f, firstTouches.data(),
                       nft * sizeof(FirstTouch));
    }
    std::uint64_t nwp = 0;
    ok = ok && readBytes(f, &nwp, 8);
    if (ok) {
        writtenPages.resize(nwp);
        ok = readBytes(f, writtenPages.data(),
                       nwp * sizeof(PageNum));
    }
    if (ok) {
        perThread.assign(nthreads, {});
        for (auto &t : perThread) {
            std::uint64_t n = 0;
            ok = ok && readBytes(f, &n, 8);
            if (!ok)
                break;
            t.resize(n);
            ok = readBytes(f, t.data(), n * sizeof(MemRecord));
            if (!ok)
                break;
        }
    }
    std::fclose(f);
    return ok;
}

std::string
traceCacheDir()
{
    const char *env = std::getenv("STARNUMA_TRACE_DIR");
    std::string dir = env ? env : ".trace_cache";
    if (dir.empty() || dir == "0" || dir == "off")
        return "";
    ::mkdir(dir.c_str(), 0755);
    return dir;
}

} // namespace trace
} // namespace starnuma
