/**
 * @file
 * A command-line front end for the simulator — run any (workload,
 * system) pair at any scale and get the full metric set, like a
 * little gem5:
 *
 *   ./example_starnuma_cli --workload bfs --system starnuma \
 *       --phases 5 --instructions 400000 --region-kb 16
 *
 * Systems: baseline starnuma starnuma-t0 starnuma-switched
 *          baseline-iso-bw baseline-2x-bw starnuma-half-bw
 *          starnuma-small-pool baseline-static starnuma-static
 *          baseline-replication
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "driver/experiment.hh"
#include "workloads/workload.hh"
#include "sim/logging.hh"
#include "sim/table.hh"

using namespace starnuma;

namespace
{

driver::SystemSetup
setupByName(const std::string &name)
{
    using S = driver::SystemSetup;
    if (name == "baseline")
        return S::baseline();
    if (name == "starnuma")
        return S::starnuma();
    if (name == "starnuma-t0")
        return S::starnumaT0();
    if (name == "starnuma-switched")
        return S::starnumaSwitched();
    if (name == "baseline-iso-bw")
        return S::baselineIsoBW();
    if (name == "baseline-2x-bw")
        return S::baseline2xBW();
    if (name == "starnuma-half-bw")
        return S::starnumaHalfBW();
    if (name == "starnuma-small-pool")
        return S::starnumaSmallPool();
    if (name == "baseline-static")
        return S::baselineStatic();
    if (name == "starnuma-static")
        return S::starnumaStatic();
    if (name == "baseline-replication")
        return S::baselineReplication();
    fatal("unknown system '%s'", name.c_str());
}

void
usage()
{
    std::puts(
        "usage: example_starnuma_cli [--workload NAME] "
        "[--system NAME]\n"
        "  [--phases N] [--instructions N-per-thread-per-phase]\n"
        "  [--region-kb N] [--pool-fraction F]\n"
        "  [--compare]   (also run the baseline, print speedup)");
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string workload = "bfs";
    std::string system = "starnuma";
    SimScale scale = SimScale::sc1();
    Addr region_kb = 16;
    double pool_fraction = -1;
    bool compare = false;

    for (int i = 1; i < argc; ++i) {
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage();
                std::exit(1);
            }
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--workload"))
            workload = next();
        else if (!std::strcmp(argv[i], "--system"))
            system = next();
        else if (!std::strcmp(argv[i], "--phases"))
            scale.phases = std::atoi(next());
        else if (!std::strcmp(argv[i], "--instructions"))
            scale.phaseInstructions = std::atoll(next());
        else if (!std::strcmp(argv[i], "--region-kb"))
            region_kb = std::atoll(next());
        else if (!std::strcmp(argv[i], "--pool-fraction"))
            pool_fraction = std::atof(next());
        else if (!std::strcmp(argv[i], "--compare"))
            compare = true;
        else if (!std::strcmp(argv[i], "--list")) {
            std::puts("workloads:");
            for (const auto &w : workloads::workloadNames())
                std::printf("  %s\n", w.c_str());
            std::puts(
                "systems: baseline starnuma starnuma-t0 "
                "starnuma-switched baseline-iso-bw baseline-2x-bw "
                "starnuma-half-bw starnuma-small-pool "
                "baseline-static starnuma-static "
                "baseline-replication");
            return 0;
        }
        else {
            usage();
            return !!std::strcmp(argv[i], "--help");
        }
    }

    driver::SystemSetup setup = setupByName(system);
    setup.regionBytes = region_kb * 1024;
    if (pool_fraction > 0)
        setup.sys.poolCapacityFraction = pool_fraction;

    std::printf("workload=%s system=%s threads=%d phases=%d "
                "instr/phase=%llu\n",
                workload.c_str(), setup.name.c_str(),
                scale.threads(), scale.phases,
                static_cast<unsigned long long>(
                    scale.phaseInstructions));

    auto run = driver::runExperiment(workload, setup, scale);
    const auto &m = run.metrics;

    TextTable t({"metric", "value"});
    t.addRow({"per-core IPC (detailed socket)",
              TextTable::num(m.ipc, 3)});
    t.addRow({"AMAT", TextTable::num(m.amatNs(), 1) + " ns"});
    t.addRow({"  unloaded component",
              TextTable::num(m.unloadedAmatNs(), 1) + " ns"});
    t.addRow({"  contention delay",
              TextTable::num(m.contentionNs(), 1) + " ns"});
    t.addRow({"LLC MPKI", TextTable::num(m.llcMpki, 1)});
    for (int i = 0; i < driver::accessTypes; ++i)
        t.addRow({std::string("accesses: ") +
                      driver::accessTypeName(
                          static_cast<driver::AccessType>(i)),
                  TextTable::pct(m.mix[i], 1)});
    t.addRow({"mean UPI / NUMALink / CXL utilization",
              TextTable::pct(m.upiUtilization, 1) + " / " +
                  TextTable::pct(m.numalinkUtilization, 1) + " / " +
                  TextTable::pct(m.cxlUtilization, 1)});
    t.addRow({"migrated pages",
              std::to_string(run.placement.migratedPagesTotal)});
    t.addRow({"migrations to pool",
              TextTable::pct(
                  run.placement.poolMigrationFraction, 0)});
    t.addRow({"pages in pool",
              std::to_string(run.placement.pagesInPool) + " / " +
                  std::to_string(
                      run.placement.poolCapacityPages)});
    if (setup.replicateReadOnly)
        t.addRow({"replication capacity overhead",
                  TextTable::num(run.placement.replication
                                     .capacityOverhead,
                                 2) + "x"});
    std::printf("\n%s", t.str().c_str());

    if (compare) {
        auto base = driver::runExperiment(
            workload, driver::SystemSetup::baseline(), scale);
        std::printf("\nspeedup over baseline: %.2fx\n",
                    m.speedupOver(base.metrics));
    }
    return 0;
}
