#include "sim/parallel.hh"

#include <chrono>
#include <cstdlib>

#include "sim/obs/obs.hh"
#include "sim/obs/registry.hh"

namespace starnuma
{

namespace
{

/** Pool-worker index of this thread, -1 elsewhere. */
thread_local int tlsWorker = -1;

std::uint64_t
steadyNowNs()
{
    // lint: taint-ok host-profiling uptime channel only; these
    // wall-clock values feed stats gauges for operator dashboards
    // and never enter deterministic simulation artifacts
    auto now = std::chrono::steady_clock::now();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            now.time_since_epoch())
            .count());
}

} // anonymous namespace

ThreadPool::ThreadPool(int threads)
{
    if (threads <= 0)
        threads = defaultThreads();
    startNs = steadyNowNs();
    slots = std::make_unique<ProfileSlot[]>(
        static_cast<std::size_t>(threads) + 1);
    workers.reserve(threads);
    for (int i = 0; i < threads; ++i)
        workers.emplace_back([this, i] {
            tlsWorker = i;
            workerLoop();
        });
}

ThreadPool::~ThreadPool()
{
    {
        MutexLock lock(mu);
        stopping = true;
    }
    workCv.notify_all();
    for (std::thread &w : workers)
        w.join();
}

int
ThreadPool::defaultThreads()
{
    if (const char *v = std::getenv("STARNUMA_THREADS")) {
        int n = std::atoi(v);
        if (n >= 1)
            return n;
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw >= 1 ? static_cast<int>(hw) : 1;
}

namespace
{

Mutex globalPoolMu;
std::unique_ptr<ThreadPool> globalPool
    STARNUMA_GUARDED_BY(globalPoolMu);

} // anonymous namespace

ThreadPool &
ThreadPool::global()
{
    MutexLock lock(globalPoolMu);
    if (!globalPool)
        globalPool = std::make_unique<ThreadPool>();
    return *globalPool;
}

ThreadPool *
ThreadPool::globalIfCreated()
{
    MutexLock lock(globalPoolMu);
    return globalPool.get();
}

int
ThreadPool::currentWorker()
{
    return tlsWorker;
}

void
ThreadPool::setGlobalThreads(int threads)
{
    MutexLock lock(globalPoolMu);
    globalPool.reset(); // join the old workers first
    globalPool = std::make_unique<ThreadPool>(threads);
}

bool
ThreadPool::haveWork()
{
    while (!queue.empty() && queue.front()->next >= queue.front()->n)
        queue.pop_front();
    return !queue.empty();
}

void
ThreadPool::enqueue(const std::shared_ptr<Batch> &batch)
{
    {
        MutexLock lock(mu);
        queue.push_back(batch);
        ++enqueued;
        if (queue.size() > peakQueue)
            peakQueue = queue.size();
    }
    workCv.notify_all();
}

void
ThreadPool::runTask(const std::shared_ptr<Batch> &batch,
                    std::size_t i, ProfileSlot &slot)
{
    slot.tasks.fetch_add(1, std::memory_order_relaxed);
    if (!obs::hostProfilingEnabled()) {
        batch->fn(i);
        return;
    }
    std::uint64_t t0 = steadyNowNs();
    batch->fn(i);
    slot.busyNs.fetch_add(steadyNowNs() - t0,
                          std::memory_order_relaxed);
}

// sim/parallel.* is the one D8-exempt zone: the claim loops below
// interleave lock/unlock with task execution, which RAII guards
// cannot express. The hand-rolled locking is still checked — mu is
// a capability, so Clang's analysis verifies every path through
// these loops holds (and releases) the lock where required.
void
ThreadPool::workerLoop()
{
    ProfileSlot &slot = slots[static_cast<std::size_t>(tlsWorker) + 1];
    mu.lock();
    for (;;) {
        while (!stopping && !haveWork())
            workCv.wait(mu);
        if (!haveWork()) { // stopping, queue drained
            mu.unlock();
            return;
        }
        std::shared_ptr<Batch> batch = queue.front();
        std::size_t i = batch->next++;
        if (batch->next >= batch->n)
            queue.pop_front();

        mu.unlock();
        runTask(batch, i, slot);
        mu.lock();

        if (++batch->done == batch->n)
            doneCv.notify_all();
    }
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    // A worker claiming indices of a nested fan-out still bills its
    // own slot; any other caller bills the shared caller slot 0.
    ProfileSlot &slot = slots[static_cast<std::size_t>(tlsWorker) + 1];
    if (n == 1 || workers.empty()) {
        auto batch = std::make_shared<Batch>();
        batch->fn = fn;
        batch->n = n;
        for (std::size_t i = 0; i < n; ++i)
            runTask(batch, i, slot);
        return;
    }

    // The batch borrows the caller's fn: safe because this call
    // only returns once every index has finished.
    auto batch = std::make_shared<Batch>();
    batch->fn = fn;
    batch->n = n;
    enqueue(batch);

    // The caller claims indices alongside the workers, so a worker
    // blocked here inside a nested parallelFor still makes progress
    // on its own batch.
    mu.lock();
    for (;;) {
        if (batch->next < batch->n) {
            std::size_t i = batch->next++;
            mu.unlock();
            runTask(batch, i, slot);
            mu.lock();
            if (++batch->done == batch->n)
                doneCv.notify_all();
        } else if (batch->done < batch->n) {
            doneCv.wait(mu);
        } else {
            mu.unlock();
            return;
        }
    }
}

std::vector<ThreadPool::WorkerProfile>
ThreadPool::profile() const
{
    std::vector<WorkerProfile> out(workers.size() + 1);
    for (std::size_t s = 0; s < out.size(); ++s) {
        out[s].tasks = slots[s].tasks.load(std::memory_order_relaxed);
        out[s].busyNs =
            slots[s].busyNs.load(std::memory_order_relaxed);
    }
    return out;
}

std::uint64_t
ThreadPool::peakQueueDepth() const
{
    MutexLock lock(mu);
    return peakQueue;
}

std::uint64_t
ThreadPool::batchesEnqueued() const
{
    MutexLock lock(mu);
    return enqueued;
}

std::uint64_t
ThreadPool::upNs() const
{
    return steadyNowNs() - startNs;
}

// lint: cold-path stats export, once per run when observing
void
ThreadPool::registerStats(obs::Registry &r,
                          const std::string &prefix) const
{
    r.addGaugeFn(prefix + ".size",
                 [this] { return static_cast<double>(size()); });
    r.addCounterFn(prefix + ".batches",
                   [this] { return batchesEnqueued(); });
    r.addCounterFn(prefix + ".queueDepth.peak",
                   [this] { return peakQueueDepth(); });
    r.addCounterFn(prefix + ".upNs", [this] { return upNs(); });
    for (std::size_t s = 0; s < workers.size() + 1; ++s) {
        std::string who =
            s == 0 ? prefix + ".caller"
                   : prefix + ".worker" + std::to_string(s - 1);
        const ProfileSlot *slot = &slots[s];
        r.addCounterFn(who + ".tasks", [slot] {
            return slot->tasks.load(std::memory_order_relaxed);
        });
        r.addCounterFn(who + ".busyNs", [slot] {
            return slot->busyNs.load(std::memory_order_relaxed);
        });
        r.addGaugeFn(who + ".busyFraction", [this, slot] {
            double up = static_cast<double>(upNs());
            if (up <= 0)
                return 0.0;
            return static_cast<double>(slot->busyNs.load(
                       std::memory_order_relaxed)) /
                   up;
        });
    }
}

} // namespace starnuma
