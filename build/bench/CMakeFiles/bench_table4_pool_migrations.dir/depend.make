# Empty dependencies file for bench_table4_pool_migrations.
# This may be replaced when dependencies are built.
