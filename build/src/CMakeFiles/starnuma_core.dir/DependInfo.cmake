
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/migration.cc" "src/CMakeFiles/starnuma_core.dir/core/migration.cc.o" "gcc" "src/CMakeFiles/starnuma_core.dir/core/migration.cc.o.d"
  "/root/repo/src/core/oracle.cc" "src/CMakeFiles/starnuma_core.dir/core/oracle.cc.o" "gcc" "src/CMakeFiles/starnuma_core.dir/core/oracle.cc.o.d"
  "/root/repo/src/core/page_stats.cc" "src/CMakeFiles/starnuma_core.dir/core/page_stats.cc.o" "gcc" "src/CMakeFiles/starnuma_core.dir/core/page_stats.cc.o.d"
  "/root/repo/src/core/perfect_policy.cc" "src/CMakeFiles/starnuma_core.dir/core/perfect_policy.cc.o" "gcc" "src/CMakeFiles/starnuma_core.dir/core/perfect_policy.cc.o.d"
  "/root/repo/src/core/region_tracker.cc" "src/CMakeFiles/starnuma_core.dir/core/region_tracker.cc.o" "gcc" "src/CMakeFiles/starnuma_core.dir/core/region_tracker.cc.o.d"
  "/root/repo/src/core/replication.cc" "src/CMakeFiles/starnuma_core.dir/core/replication.cc.o" "gcc" "src/CMakeFiles/starnuma_core.dir/core/replication.cc.o.d"
  "/root/repo/src/core/tlb_annex.cc" "src/CMakeFiles/starnuma_core.dir/core/tlb_annex.cc.o" "gcc" "src/CMakeFiles/starnuma_core.dir/core/tlb_annex.cc.o.d"
  "/root/repo/src/core/tlb_directory.cc" "src/CMakeFiles/starnuma_core.dir/core/tlb_directory.cc.o" "gcc" "src/CMakeFiles/starnuma_core.dir/core/tlb_directory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/starnuma_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/starnuma_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/starnuma_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
