#include "sim/parallel.hh"

#include <cstdlib>

namespace starnuma
{

ThreadPool::ThreadPool(int threads)
{
    if (threads <= 0)
        threads = defaultThreads();
    workers.reserve(threads);
    for (int i = 0; i < threads; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu);
        stopping = true;
    }
    workCv.notify_all();
    for (std::thread &w : workers)
        w.join();
}

int
ThreadPool::defaultThreads()
{
    if (const char *v = std::getenv("STARNUMA_THREADS")) {
        int n = std::atoi(v);
        if (n >= 1)
            return n;
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw >= 1 ? static_cast<int>(hw) : 1;
}

namespace
{

std::unique_ptr<ThreadPool> globalPool;
std::mutex globalPoolMu;

} // anonymous namespace

ThreadPool &
ThreadPool::global()
{
    std::lock_guard<std::mutex> lock(globalPoolMu);
    if (!globalPool)
        globalPool = std::make_unique<ThreadPool>();
    return *globalPool;
}

void
ThreadPool::setGlobalThreads(int threads)
{
    std::lock_guard<std::mutex> lock(globalPoolMu);
    globalPool.reset(); // join the old workers first
    globalPool = std::make_unique<ThreadPool>(threads);
}

bool
ThreadPool::haveWork()
{
    while (!queue.empty() && queue.front()->next >= queue.front()->n)
        queue.pop_front();
    return !queue.empty();
}

void
ThreadPool::enqueue(const std::shared_ptr<Batch> &batch)
{
    {
        std::lock_guard<std::mutex> lock(mu);
        queue.push_back(batch);
    }
    workCv.notify_all();
}

void
ThreadPool::workerLoop()
{
    std::unique_lock<std::mutex> lock(mu);
    for (;;) {
        workCv.wait(lock, [this] { return stopping || haveWork(); });
        if (!haveWork()) {
            if (stopping)
                return;
            continue;
        }
        std::shared_ptr<Batch> batch = queue.front();
        std::size_t i = batch->next++;
        if (batch->next >= batch->n)
            queue.pop_front();

        lock.unlock();
        batch->fn(i);
        lock.lock();

        if (++batch->done == batch->n)
            doneCv.notify_all();
    }
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    if (n == 1 || workers.empty()) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    // The batch borrows the caller's fn: safe because this call
    // only returns once every index has finished.
    auto batch = std::make_shared<Batch>();
    batch->fn = fn;
    batch->n = n;
    enqueue(batch);

    // The caller claims indices alongside the workers, so a worker
    // blocked here inside a nested parallelFor still makes progress
    // on its own batch.
    std::unique_lock<std::mutex> lock(mu);
    for (;;) {
        if (batch->next < batch->n) {
            std::size_t i = batch->next++;
            lock.unlock();
            batch->fn(i);
            lock.lock();
            if (++batch->done == batch->n)
                doneCv.notify_all();
        } else if (batch->done < batch->n) {
            doneCv.wait(lock);
        } else {
            return;
        }
    }
}

} // namespace starnuma
