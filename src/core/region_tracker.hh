/**
 * @file
 * The in-memory metadata region of §III-D1: physical memory is
 * logically split into regions of several consecutive pages; each
 * region's tracker entry holds (i) one presence bit per socket and
 * (ii) an i-bit saturating access counter. A tracker design T_i is
 * parameterized by the counter width; T_0 tracks only which sockets
 * touched the region (enough to find widely shared regions), T_16
 * additionally ranks region hotness.
 */

#ifndef STARNUMA_CORE_REGION_TRACKER_HH
#define STARNUMA_CORE_REGION_TRACKER_HH

#include <cstdint>
#include <vector>

#include "sim/annotations.hh"
#include "sim/flat_map.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace starnuma
{
namespace core
{

/** Region number (region-granular index of an address). */
using RegionId = Addr;

/** One metadata-region entry (a T_i tracker entry). */
struct TrackerEntry
{
    std::uint64_t sharerMask = 0;
    std::uint32_t accesses = 0;

    int sharerCount() const;
};

/** The per-region access-metadata table. */
class RegionTracker
{
  public:
    /**
     * @param counter_bits i of the T_i design (0 disables counting).
     * @param sockets sockets whose presence bits are tracked.
     * @param region_bytes region size (paper default 512 KB;
     *        scaled-down runs use 64 KB).
     */
    RegionTracker(int counter_bits, int n_sockets, Addr region_bytes);

    int counterBits() const { return counterBits_; }
    Addr regionBytes() const { return regionBytes_; }
    int pagesPerRegion() const;

    /** Region containing @p addr. */
    RegionId
    regionOf(Addr addr) const
    {
        return addr / regionBytes_;
    }

    /** First page number of region @p region. */
    PageNum
    firstPage(RegionId region) const
    {
        return regionFirstPage(region, regionBytes_);
    }

    /**
     * Switch to flat-table storage over regions
     * [base, base + regions). Must be called while no region is
     * touched; every region recorded afterwards must fall in the
     * range. Iteration order (first-touch order) is unchanged.
     */
    void preallocate(RegionId base, std::size_t regions);

    /**
     * Fold @p count accesses by @p socket into the region holding
     * @p addr (the PTW adding a TLB annex value, §III-D1). The
     * counter saturates at 2^i - 1; with T_0 only the presence bit
     * is recorded.
     */
    // lint: hot-path (called once per TLB annex flush)
    void
    record(Addr addr, NodeId socket, std::uint32_t count = 1)
    {
        sn_assert(socket >= 0 && socket < sockets,
                  "record from unknown socket %d", socket);
        RegionId region = regionOf(addr);
        TrackerEntry *e;
        if (flat.empty()) {
            e = &entries[region];
        } else {
            std::uint64_t slot = region - flatBase;
            sn_assert(slot < flat.size(),
                      "region outside the preallocated range");
            e = &flat[slot];
            // Every record sets a presence bit, so an untouched
            // entry is exactly one with an empty sharer mask.
            if (e->sharerMask == 0)
                noteFirstTouch(region);
        }
        e->sharerMask |= 1ULL << socket;
        if (counterBits_ > 0) {
            std::uint64_t next =
                static_cast<std::uint64_t>(e->accesses) + count;
            e->accesses = next > counterMax
                              ? counterMax
                              : static_cast<std::uint32_t>(next);
        }
    }

    /** Entry for @p region (zero entry if never touched). */
    const TrackerEntry &entry(RegionId region) const;

    /** Regions with at least one recorded access this phase. */
    std::size_t
    touchedRegions() const
    {
        return flat.empty() ? entries.size() : touchedOrder.size();
    }

    /**
     * Size in bytes of the metadata region for @p total_memory
     * bytes of tracked memory (§III-D4's 128 MB check).
     */
    std::uint64_t metadataBytes(std::uint64_t total_memory) const;

    /** Per-entry metadata size in bytes for this T_i design. */
    std::uint64_t entryBytes() const;

    /**
     * End-of-phase scan: visit every touched region, then clear all
     * counters and presence bits (Algorithm 1 resets counters once
     * per phase).
     */
    template <typename Fn>
    void
    scanAndReset(Fn &&fn)
    {
        if (flat.empty()) {
            for (auto &[region, e] : entries)
                fn(region, e);
            entries.clear();
        } else {
            for (RegionId region : touchedOrder)
                fn(region, flat[region - flatBase]);
            reset();
        }
    }

    /** Clear without scanning. */
    void
    reset()
    {
        entries.clear();
        for (RegionId region : touchedOrder)
            flat[region - flatBase] = TrackerEntry{};
        touchedOrder.clear();
    }

  private:
    /**
     * Out-of-line first-touch append: keeps the vector's
     * reallocation machinery (and its operator new call) out of the
     * record() hot symbol, which scripts/check_hotpath_syms.sh
     * verifies at the binary level. Capacity is reserved in
     * preallocate(), so the push never actually reallocates.
     */
    // lint: cold-path capacity reserved in preallocate()
    STARNUMA_COLD_PATH void
    noteFirstTouch(RegionId region)
    {
        touchedOrder.push_back(region);
    }

    int counterBits_;
    int sockets;
    Addr regionBytes_;
    std::uint32_t counterMax;
    FlatMap<RegionId, TrackerEntry> entries;
    std::vector<TrackerEntry> flat; // flat mode: entry per slot
    std::vector<RegionId> touchedOrder;
    RegionId flatBase = 0;
    static const TrackerEntry zeroEntry;
};

} // namespace core
} // namespace starnuma

#endif // STARNUMA_CORE_REGION_TRACKER_HH
