/**
 * @file
 * Quickstart: run one workload through the full StarNUMA pipeline
 * (trace capture -> trace simulation -> timing simulation) on both
 * the baseline 16-socket system and StarNUMA, and print the
 * headline comparison.
 *
 *   ./example_quickstart [workload]   (default: bfs)
 *
 * Workloads: sssp bfs cc tc masstree tpcc fmi poa
 */

#include <cstdio>
#include <string>

#include "driver/experiment.hh"
#include "sim/table.hh"

using namespace starnuma;

int
main(int argc, char **argv)
{
    std::string workload = argc > 1 ? argv[1] : "bfs";

    SimScale scale = SimScale::sc1();
    scale.phases = 4; // one less phase than the benches: quicker

    std::printf("capturing '%s' (64 threads, %d phases)...\n",
                workload.c_str(), scale.phases);

    auto base = driver::runExperiment(
        workload, driver::SystemSetup::baseline(), scale);
    auto star = driver::runExperiment(
        workload, driver::SystemSetup::starnuma(), scale);

    TextTable t({"metric", "baseline", "starnuma"});
    t.addRow({"per-core IPC",
              TextTable::num(base.metrics.ipc, 3),
              TextTable::num(star.metrics.ipc, 3)});
    t.addRow({"AMAT (ns)",
              TextTable::num(base.metrics.amatNs(), 0),
              TextTable::num(star.metrics.amatNs(), 0)});
    t.addRow({"unloaded AMAT (ns)",
              TextTable::num(base.metrics.unloadedAmatNs(), 0),
              TextTable::num(star.metrics.unloadedAmatNs(), 0)});
    t.addRow({"2-hop access share",
              TextTable::pct(base.metrics.mix[2]),
              TextTable::pct(star.metrics.mix[2])});
    t.addRow({"pool access share",
              TextTable::pct(base.metrics.mix[3]),
              TextTable::pct(star.metrics.mix[3])});
    t.addRow({"migrations to pool", "-",
              TextTable::pct(
                  star.placement.poolMigrationFraction, 0)});
    std::printf("\n%s\n", t.str().c_str());

    std::printf("StarNUMA speedup over baseline: %.2fx\n",
                star.metrics.speedupOver(base.metrics));
    return 0;
}
