/**
 * @file
 * Determinism proof for the parallel experiment engine. The pool
 * executes independent tasks and merges results in canonical order,
 * so nothing observable may depend on the worker count: the same
 * sweep run with pool sizes 1, 4, and 8 must produce bitwise-
 * identical RunMetrics and identical TraceSimResult placements.
 * Also covers the ThreadPool primitive itself (full coverage of
 * indices, nested fan-out, futures) and the memoized trace cache
 * under concurrency (N simultaneous requests, exactly one capture).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "driver/experiment.hh"
#include "driver/sweep.hh"
#include "sim/parallel.hh"
#include "sim/rng.hh"

namespace starnuma
{
namespace
{

// --- ThreadPool primitive ---

TEST(ThreadPool, ParallelForCoversEveryIndexOnce)
{
    ThreadPool pool(4);
    constexpr std::size_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    pool.parallelFor(n, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock)
{
    // More outer tasks than workers, each fanning out again: the
    // caller-participation rule must keep everything moving.
    ThreadPool pool(2);
    std::atomic<int> total{0};
    pool.parallelFor(8, [&](std::size_t) {
        pool.parallelFor(16, [&](std::size_t) { ++total; });
    });
    EXPECT_EQ(total.load(), 8 * 16);
}

TEST(ThreadPool, SubmitDeliversResultThroughFuture)
{
    ThreadPool pool(2);
    auto f1 = pool.submit([] { return 6 * 7; });
    auto f2 = pool.submit([] { return std::string("starnuma"); });
    EXPECT_EQ(f1.get(), 42);
    EXPECT_EQ(f2.get(), "starnuma");
}

TEST(ThreadPool, ParallelMapKeepsCanonicalOrder)
{
    ThreadPool pool(4);
    auto out = pool.parallelMap<std::size_t>(
        257, [](std::size_t i) { return i * i; });
    ASSERT_EQ(out.size(), 257u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPool, DefaultThreadsHonorsEnvironment)
{
    // The env var is read at pool construction; exercise the parser
    // directly rather than mutating the test process environment.
    EXPECT_GE(ThreadPool::defaultThreads(), 1);
}

TEST(TaskSeed, DistinctTasksGetDistinctStreams)
{
    std::uint64_t a = taskSeed({"bfs", "baseline"}, 0);
    EXPECT_EQ(a, taskSeed({"bfs", "baseline"}, 0)); // reproducible
    EXPECT_NE(a, taskSeed({"bfs", "baseline"}, 1));
    EXPECT_NE(a, taskSeed({"bfs", "starnuma"}, 0));
    EXPECT_NE(a, taskSeed({"tc", "baseline"}, 0));
    // Part boundaries matter: {"ab","c"} != {"a","bc"}.
    EXPECT_NE(taskSeed({"ab", "c"}), taskSeed({"a", "bc"}));
}

// --- Determinism across pool sizes ---

/** Field-by-field exact comparison, plus the raw-bytes check that
 *  backs the "bitwise-identical" claim. */
void
expectMetricsBitwiseEqual(const driver::RunMetrics &a,
                          const driver::RunMetrics &b)
{
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.memAccesses, b.memAccesses);
    EXPECT_EQ(a.llcHits, b.llcHits);
    EXPECT_EQ(a.detailedMisses, b.detailedMisses);
    EXPECT_EQ(a.llcMpki, b.llcMpki);
    EXPECT_EQ(a.amatCycles, b.amatCycles);
    EXPECT_EQ(a.unloadedAmatCycles, b.unloadedAmatCycles);
    for (int i = 0; i < driver::accessTypes; ++i) {
        EXPECT_EQ(a.mix[i], b.mix[i]) << "mix[" << i << "]";
        EXPECT_EQ(a.typeLatency[i], b.typeLatency[i])
            << "typeLatency[" << i << "]";
    }
    EXPECT_EQ(a.migrationStallCycles, b.migrationStallCycles);
    EXPECT_EQ(a.upiUtilization, b.upiUtilization);
    EXPECT_EQ(a.numalinkUtilization, b.numalinkUtilization);
    EXPECT_EQ(a.cxlUtilization, b.cxlUtilization);
    EXPECT_EQ(a.maxLinkUtilization, b.maxLinkUtilization);
    EXPECT_EQ(a.meanLinkQueueNs, b.meanLinkQueueNs);
    EXPECT_EQ(a.meanDramQueueNs, b.meanDramQueueNs);
    EXPECT_EQ(a.migratedPages, b.migratedPages);
    EXPECT_EQ(a.poolMigrationFraction, b.poolMigrationFraction);
    EXPECT_EQ(a.coherenceTransactions, b.coherenceTransactions);
    EXPECT_EQ(a.blockTransfers, b.blockTransfers);
    EXPECT_EQ(a.shootdownPages, b.shootdownPages);
    EXPECT_EQ(
        std::memcmp(&a, &b, sizeof(driver::RunMetrics)), 0);
}

void
expectPlacementsEqual(const driver::TraceSimResult &a,
                      const driver::TraceSimResult &b)
{
    ASSERT_EQ(a.checkpoints.size(), b.checkpoints.size());
    for (std::size_t p = 0; p < a.checkpoints.size(); ++p) {
        const auto &ca = a.checkpoints[p];
        const auto &cb = b.checkpoints[p];
        EXPECT_EQ(ca.pageHome, cb.pageHome) << "phase " << p;
        ASSERT_EQ(ca.regionMigrations.size(),
                  cb.regionMigrations.size());
        for (std::size_t i = 0; i < ca.regionMigrations.size();
             ++i) {
            EXPECT_EQ(ca.regionMigrations[i].region,
                      cb.regionMigrations[i].region);
            EXPECT_EQ(ca.regionMigrations[i].from,
                      cb.regionMigrations[i].from);
            EXPECT_EQ(ca.regionMigrations[i].to,
                      cb.regionMigrations[i].to);
            EXPECT_EQ(ca.regionMigrations[i].victimEviction,
                      cb.regionMigrations[i].victimEviction);
        }
        ASSERT_EQ(ca.pageMigrations.size(),
                  cb.pageMigrations.size());
        for (std::size_t i = 0; i < ca.pageMigrations.size(); ++i) {
            EXPECT_EQ(ca.pageMigrations[i].page,
                      cb.pageMigrations[i].page);
            EXPECT_EQ(ca.pageMigrations[i].from,
                      cb.pageMigrations[i].from);
            EXPECT_EQ(ca.pageMigrations[i].to,
                      cb.pageMigrations[i].to);
        }
    }
    EXPECT_EQ(a.footprintPages, b.footprintPages);
    EXPECT_EQ(a.poolCapacityPages, b.poolCapacityPages);
    EXPECT_EQ(a.migratedRegions, b.migratedRegions);
    EXPECT_EQ(a.migratedPagesTotal, b.migratedPagesTotal);
    EXPECT_EQ(a.poolMigrationFraction, b.poolMigrationFraction);
    EXPECT_EQ(a.victimEvictions, b.victimEvictions);
    EXPECT_EQ(a.pingPongSuppressed, b.pingPongSuppressed);
    EXPECT_EQ(a.pagesInPool, b.pagesInPool);
    EXPECT_EQ(a.replication.replicated, b.replication.replicated);
    EXPECT_EQ(a.tlbShootdownsSent, b.tlbShootdownsSent);
    EXPECT_EQ(a.tlbShootdownsSaved, b.tlbShootdownsSaved);
}

TEST(ParallelDeterminism, PoolSizeNeverChangesExperimentOutput)
{
    SimScale s = SimScale::tiny();
    std::vector<driver::SweepJob> jobs = driver::crossJobs(
        {"bfs", "tpcc", "masstree"},
        {driver::SystemSetup::baseline(),
         driver::SystemSetup::starnuma()},
        s);

    // Pool size 1 is the serial reference; 4 and 8 must reproduce
    // it bit for bit, including with more workers than host cores.
    ThreadPool::setGlobalThreads(1);
    std::vector<driver::ExperimentResult> serial =
        driver::runSweep(jobs);

    for (int pool_size : {4, 8}) {
        ThreadPool::setGlobalThreads(pool_size);
        std::vector<driver::ExperimentResult> parallel =
            driver::runSweep(jobs);
        ASSERT_EQ(parallel.size(), serial.size());
        for (std::size_t i = 0; i < serial.size(); ++i) {
            SCOPED_TRACE("pool=" + std::to_string(pool_size) +
                         " job=" + jobs[i].workload + "/" +
                         jobs[i].setup.name);
            expectMetricsBitwiseEqual(serial[i].metrics,
                                      parallel[i].metrics);
            expectPlacementsEqual(serial[i].placement,
                                  parallel[i].placement);
        }
    }
    ThreadPool::setGlobalThreads(0); // restore the default pool
}

TEST(ParallelDeterminism, RepeatedRunsIdenticalAtFixedPoolSize)
{
    SimScale s = SimScale::tiny();
    ThreadPool::setGlobalThreads(4);
    auto a = driver::runExperiment(
        "bfs", driver::SystemSetup::starnuma(), s);
    auto b = driver::runExperiment(
        "bfs", driver::SystemSetup::starnuma(), s);
    expectMetricsBitwiseEqual(a.metrics, b.metrics);
    expectPlacementsEqual(a.placement, b.placement);
    ThreadPool::setGlobalThreads(0);
}

// --- Memoized trace cache under concurrency ---

TEST(TraceCache, ConcurrentRequestsRunExactlyOneCapture)
{
    // A (workload, scale) key no other test uses, so the capture
    // counter delta below is exactly this test's doing.
    SimScale s = SimScale::tiny();
    s.phaseInstructions = 41000;

    constexpr int n_threads = 8;
    std::vector<const trace::WorkloadTrace *> seen(n_threads,
                                                   nullptr);
    std::uint64_t captures_before =
        driver::workloadTraceCaptures();
    {
        std::vector<std::thread> threads;
        threads.reserve(n_threads);
        for (int t = 0; t < n_threads; ++t)
            threads.emplace_back([&seen, &s, t] {
                seen[t] = &driver::workloadTrace("tpcc", s);
            });
        for (auto &th : threads)
            th.join();
    }
    EXPECT_EQ(driver::workloadTraceCaptures() - captures_before,
              1u);
    for (int t = 1; t < n_threads; ++t)
        EXPECT_EQ(seen[t], seen[0]) << "thread " << t;
    ASSERT_NE(seen[0], nullptr);
    EXPECT_EQ(seen[0]->workload, "tpcc");

    // A later request is a hit on the very same object.
    EXPECT_EQ(&driver::workloadTrace("tpcc", s), seen[0]);
    EXPECT_EQ(driver::workloadTraceCaptures() - captures_before,
              1u);
}

} // anonymous namespace
} // namespace starnuma
