/**
 * @file
 * Tagged-integer strong types (DESIGN.md §8). A `Strong<Tag, Rep>`
 * wraps an integer so that values of different units can never be
 * mixed implicitly: construction from a raw integer is explicit,
 * additive arithmetic and comparison are same-tag only, and the only
 * cross-type operations are scaling by a dimensionless factor and
 * the same-tag ratio. `sim/types.hh` instantiates `Cycles`,
 * `CycleDelta`, and `PageNum` from this template; mixing any of them
 * with each other or with a raw `Addr` is a compile error.
 */

#ifndef STARNUMA_SIM_STRONG_HH
#define STARNUMA_SIM_STRONG_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>
#include <type_traits>

namespace starnuma
{

/**
 * A unit-tagged integer. @tparam Tag is an empty struct naming the
 * unit; @tparam Rep is the underlying representation.
 *
 * Allowed operations:
 *  - explicit construction from any arithmetic type (value-cast),
 *  - same-tag `+ - += -= % ++ --`, comparison, and hashing,
 *  - scaling by a dimensionless arithmetic factor (`* /`), which
 *    keeps the tag,
 *  - same-tag division, which drops the tag (a dimensionless ratio).
 *
 * Everything else — in particular `Strong + int` and any operation
 * mixing two different tags — does not compile.
 */
template <typename Tag, typename Rep>
class Strong
{
    static_assert(std::is_integral_v<Rep>,
                  "Strong<> wraps integral representations only");

  public:
    using rep = Rep;

    /** Zero-initialized by default. */
    constexpr Strong() = default;

    /** Explicit value construction (truncating cast from @p v). */
    template <typename T,
              typename = std::enable_if_t<std::is_arithmetic_v<T>>>
    constexpr explicit Strong(T v) : value_(static_cast<Rep>(v))
    {
    }

    /** The raw representation (escape hatch for I/O and casts). */
    constexpr Rep value() const { return value_; }

    static constexpr Strong
    max()
    {
        return Strong(std::numeric_limits<Rep>::max());
    }

    static constexpr Strong
    min()
    {
        return Strong(std::numeric_limits<Rep>::min());
    }

    // Same-tag additive arithmetic.
    friend constexpr Strong
    operator+(Strong a, Strong b)
    {
        return Strong(a.value_ + b.value_);
    }

    friend constexpr Strong
    operator-(Strong a, Strong b)
    {
        return Strong(a.value_ - b.value_);
    }

    friend constexpr Strong
    operator%(Strong a, Strong b)
    {
        return Strong(a.value_ % b.value_);
    }

    /** Same-tag ratio: the tags cancel, yielding a raw count. */
    friend constexpr Rep
    operator/(Strong a, Strong b)
    {
        return a.value_ / b.value_;
    }

    constexpr Strong &
    operator+=(Strong o)
    {
        value_ += o.value_;
        return *this;
    }

    constexpr Strong &
    operator-=(Strong o)
    {
        value_ -= o.value_;
        return *this;
    }

    constexpr Strong &
    operator++()
    {
        ++value_;
        return *this;
    }

    constexpr Strong
    operator++(int)
    {
        Strong old = *this;
        ++value_;
        return old;
    }

    constexpr Strong &
    operator--()
    {
        --value_;
        return *this;
    }

    constexpr Strong
    operator--(int)
    {
        Strong old = *this;
        --value_;
        return old;
    }

    // Scaling by a dimensionless factor keeps the unit.
    template <typename T,
              typename = std::enable_if_t<std::is_arithmetic_v<T>>>
    friend constexpr Strong
    operator*(Strong a, T k)
    {
        using Work = std::conditional_t<std::is_floating_point_v<T>,
                                        double, Rep>;
        return Strong(static_cast<Rep>(static_cast<Work>(a.value_) *
                                       static_cast<Work>(k)));
    }

    template <typename T,
              typename = std::enable_if_t<std::is_arithmetic_v<T>>>
    friend constexpr Strong
    operator*(T k, Strong a)
    {
        return a * k;
    }

    template <typename T,
              typename = std::enable_if_t<std::is_arithmetic_v<T>>>
    friend constexpr Strong
    operator/(Strong a, T k)
    {
        using Work = std::conditional_t<std::is_floating_point_v<T>,
                                        double, Rep>;
        return Strong(static_cast<Rep>(static_cast<Work>(a.value_) /
                                       static_cast<Work>(k)));
    }

    // Same-tag comparison only.
    friend constexpr bool
    operator==(Strong a, Strong b)
    {
        return a.value_ == b.value_;
    }

    friend constexpr bool
    operator!=(Strong a, Strong b)
    {
        return a.value_ != b.value_;
    }

    friend constexpr bool
    operator<(Strong a, Strong b)
    {
        return a.value_ < b.value_;
    }

    friend constexpr bool
    operator<=(Strong a, Strong b)
    {
        return a.value_ <= b.value_;
    }

    friend constexpr bool
    operator>(Strong a, Strong b)
    {
        return a.value_ > b.value_;
    }

    friend constexpr bool
    operator>=(Strong a, Strong b)
    {
        return a.value_ >= b.value_;
    }

    friend std::ostream &
    operator<<(std::ostream &os, Strong v)
    {
        return os << +v.value_;
    }

  private:
    Rep value_{};
};

} // namespace starnuma

namespace std
{

/** Strong types hash like their representation (map/set keys). */
template <typename Tag, typename Rep>
struct hash<starnuma::Strong<Tag, Rep>>
{
    size_t
    operator()(starnuma::Strong<Tag, Rep> v) const noexcept
    {
        return hash<Rep>()(v.value());
    }
};

} // namespace std

#endif // STARNUMA_SIM_STRONG_HH
