#!/usr/bin/env python3
"""Explain a StarNUMA run from its observability artifacts.

Joins the three deterministic artifacts one run writes --

  stats       flat sorted-key JSON snapshot (STARNUMA_STATS_OUT)
  timeseries  per-epoch metric streams     (STARNUMA_TIMESERIES_OUT)
  audit       Algorithm-1 decision log     (STARNUMA_AUDIT_OUT)

-- into one human-readable report per (workload, setup) run:
phase-by-phase attribution (instructions, cycles, IPC, link
utilization, DRAM traffic, pages migrated -- and, when the same
workload was also run on a baseline setup, the per-phase cycle
delta that says where StarNUMA won or lost), the Algorithm-1
decision-branch histogram with selection reasons, and the most
migrated pages.

Any subset of the three artifacts works; sections without input are
omitted. `--self-test` renders an embedded miniature run against a
golden report and is wired into ctest (starnuma_report_selftest).
"""

import argparse
import csv
import io
import json
import sys
from collections import defaultdict

MOVE_BRANCHES = ("toPool", "toSharer", "victimEviction")

BRANCH_REASONS = {
    "toPool": "sharers reached the pool threshold",
    "toSharer": "hot region placed at a random sharer",
    "alreadyPlaced": "current home already a sharer",
    "samePlacement": "chosen destination equals current home",
    "pingPongSuppressed":
        "migrations exceeded a quarter of the phase count",
    "noRoomBackoff": "no pool resident was cold enough to evict",
    "victimEviction": "lowest-numbered cold pool resident",
}


def split_run(key):
    """'bfs.star-t16.summary.ipc' -> ('bfs.star-t16', 'summary.ipc').

    Run prefixes are always '<workload>.<setup>'; neither component
    contains a dot.
    """
    parts = key.split(".", 2)
    if len(parts) < 3:
        return None, key
    return parts[0] + "." + parts[1], parts[2]


def load_stats(path):
    """-> {run: {metric: value}} from the flat stats snapshot."""
    with open(path) as fh:
        flat = json.load(fh)
    runs = defaultdict(dict)
    for key, value in flat.items():
        run, metric = split_run(key)
        if run is not None:
            runs[run][metric] = value
    return runs


def load_timeseries(path):
    """-> {run: {stream: (ts, vs)}} from the time-series export."""
    with open(path) as fh:
        if path.endswith(".csv"):
            streams = defaultdict(lambda: ([], []))
            for row in csv.DictReader(fh):
                ts, vs = streams[row["stream"]]
                ts.append(int(row["t"]))
                vs.append(float(row["value"]))
        else:
            streams = {
                k: (v["t"], v["v"])
                for k, v in json.load(fh).items()
            }
    runs = defaultdict(dict)
    for key, (ts, vs) in streams.items():
        run, stream = split_run(key)
        if run is not None:
            runs[run][stream] = (ts, vs)
    return runs


def load_audit(path):
    """-> {run: [record dicts]} from the audit CSV or JSON."""
    with open(path) as fh:
        if path.endswith(".json"):
            raw = json.load(fh)
            return {run: list(recs) for run, recs in raw.items()}
        runs = defaultdict(list)
        for row in csv.DictReader(fh):
            rec = dict(row)
            for field in ("phase", "region", "page", "sharers",
                          "accesses", "hiThreshold", "loThreshold",
                          "candidates", "from", "to"):
                rec[field] = int(rec[field])
            runs[row["run"]].append(rec)
        return dict(runs)


def fmt(value, width=10, force_float=False):
    if value is None:
        return " " * (width - 1) + "-"
    if isinstance(value, float) and \
            (force_float or value != int(value)):
        return "%*.3f" % (width, value)
    return "%*d" % (width, int(value))


def phase_rows(stats, series):
    """Per-phase metric dicts joined from both artifacts."""
    phases = set()
    for metric in stats:
        if metric.startswith("timing.phase"):
            phases.add(int(metric[len("timing.phase"):].split(".")[0]))
    for stream in series:
        if stream.startswith("timing.phase"):
            phases.add(int(stream[len("timing.phase"):].split(".")[0]))
        elif stream.startswith("traceSim."):
            ts, _ = series[stream]
            phases.update(t - 1 for t in ts)
    rows = []
    for phase in sorted(phases):
        tp = "timing.phase%02d." % phase
        row = {"phase": phase}
        row["instructions"] = stats.get(tp + "instructions")
        row["cycles"] = stats.get(tp + "cycles")
        if row["instructions"] and row["cycles"]:
            row["ipc"] = row["instructions"] / row["cycles"]
        else:
            row["ipc"] = None
        # Mean per-epoch link utilization over every link type the
        # phase sampled, and total DRAM requests.
        utils = []
        for stream, (_, vs) in series.items():
            if stream.startswith(tp + "linkUtil.") and vs:
                utils.append(sum(vs) / len(vs))
        row["linkUtil"] = (sum(utils) / len(utils)) if utils else None
        dram = series.get(tp + "dram.requests")
        row["dramReq"] = sum(dram[1]) if dram else None
        # Replay streams are stamped with the 1-based phase number.
        for stream, name in (("traceSim.migratedPages", "migrated"),
                             ("traceSim.poolPages", "poolPages"),
                             ("traceSim.tlbMissRate", "tlbMissRate")):
            entry = series.get(stream)
            row[name] = None
            if entry:
                ts, vs = entry
                if phase + 1 in ts:
                    row[name] = vs[ts.index(phase + 1)]
        rows.append(row)
    return rows


def pick_baseline(run, all_runs):
    """The baseline run to attribute against, if one was collected."""
    workload = run.split(".", 1)[0]
    setup = run.split(".", 1)[1]
    for candidate_setup in ("baseline", "base"):
        candidate = workload + "." + candidate_setup
        if candidate in all_runs and candidate != run:
            return candidate
    for other in sorted(all_runs):
        if other != run and other.startswith(workload + ".") and \
                "base" in other.split(".", 1)[1] and \
                "base" not in setup:
            return other
    return None


def report_run(out, run, stats, series, audit, baseline_stats,
               baseline_name, top_n):
    workload, setup = run.split(".", 1)
    out.write("=== %s / %s ===\n" % (workload, setup))

    summary = {m[len("summary."):]: v for m, v in stats.items()
               if m.startswith("summary.")}
    if summary:
        out.write("\nSummary:\n")
        for key in sorted(summary):
            out.write("  %-28s %s\n" % (key, fmt(summary[key], 12).strip()))

    rows = phase_rows(stats, series)
    if rows:
        out.write("\nPhases:\n")
        header = ("  phase     instr    cycles    ipc   linkUtil"
                  "    dramReq   migrated  poolPages tlbMissRate")
        if baseline_stats is not None:
            header += "   vs %s" % baseline_name
        out.write(header + "\n")
        for row in rows:
            line = "  %5d%s%s%s%s%s%s%s%s" % (
                row["phase"],
                fmt(row["instructions"]),
                fmt(row["cycles"]),
                fmt(row["ipc"], 7, force_float=True),
                fmt(row["linkUtil"], 11),
                fmt(row["dramReq"], 11),
                fmt(row["migrated"], 11),
                fmt(row["poolPages"], 11),
                fmt(row["tlbMissRate"], 12),
            )
            if baseline_stats is not None:
                base_cycles = baseline_stats.get(
                    "timing.phase%02d.cycles" % row["phase"])
                if base_cycles and row["cycles"]:
                    delta = (base_cycles - row["cycles"]) / base_cycles
                    line += "   %+6.1f%% %s" % (
                        delta * 100,
                        "won" if delta > 0 else
                        ("lost" if delta < 0 else "even"))
                else:
                    line += "         -"
            out.write(line + "\n")

    engine = {m[len("traceSim.engine.") :]: v for m, v in stats.items()
              if m.startswith("traceSim.engine.")}
    if engine:
        out.write("\nMigration engine:\n")
        for key in sorted(engine):
            out.write("  %-28s %s\n" % (key, fmt(engine[key], 12).strip()))

    if audit:
        out.write("\nDecision branches (%d Algorithm-1 decisions):\n"
                  % len(audit))
        counts = defaultdict(int)
        for rec in audit:
            counts[rec["branch"]] += 1
        for branch in sorted(counts, key=lambda b: (-counts[b], b)):
            out.write("  %-20s %6d   %s\n"
                      % (branch, counts[branch],
                         BRANCH_REASONS.get(branch, "")))

        moved = defaultdict(lambda: defaultdict(int))
        for rec in audit:
            if rec["branch"] in MOVE_BRANCHES:
                moved[rec["page"]][rec["branch"]] += 1
        if moved:
            out.write("\nTop migrated pages:\n")
            ranked = sorted(
                moved.items(),
                key=lambda kv: (-sum(kv[1].values()), kv[0]))
            for page, branches in ranked[:top_n]:
                detail = ", ".join(
                    "%s x%d" % (b, branches[b])
                    for b in sorted(branches))
                out.write("  page %-12d %3d moves  (%s)\n"
                          % (page, sum(branches.values()), detail))
    out.write("\n")


def report_cache(out, cache):
    """Artifact-cache tier attribution (DESIGN.md §16): hit/miss
    counts per tier, the differential-resume counters, store I/O and
    the wall-clock split between serving hits and computing misses.
    Rendered when a sweep ran with the cache enabled (runSweep
    publishes the counters under 'sweep.cache.*')."""
    out.write("=== artifact cache (sweep) ===\n\n")

    def tier(name, hits, misses):
        total = hits + misses
        rate = ("  (%3.0f%% hit rate)" % (100.0 * hits / total)) \
            if total else ""
        out.write("  %-12s %6d hit / %6d miss%s\n"
                  % (name, hits, misses, rate))

    tier("trace tier", int(cache.get("traceHits", 0)),
         int(cache.get("traceMisses", 0)))
    tier("result tier", int(cache.get("resultHits", 0)),
         int(cache.get("resultMisses", 0)))
    out.write("  %-12s %6d partial hit(s), %d phase(s) skipped by "
              "differential resume\n"
              % ("state tier", int(cache.get("partialHits", 0)),
                 int(cache.get("phasesSkipped", 0))))
    out.write("  %-12s %6d byte(s) read, %d byte(s) written\n"
              % ("store I/O", int(cache.get("bytesRead", 0)),
                 int(cache.get("bytesWritten", 0))))
    if "hitSeconds" in cache or "missSeconds" in cache:
        out.write("  %-12s %.3fs serving hits, %.3fs computing "
                  "misses\n"
                  % ("wall time", float(cache.get("hitSeconds", 0)),
                     float(cache.get("missSeconds", 0))))
    out.write("\n")


def render(stats_runs, series_runs, audit_runs, only_run, top_n):
    out = io.StringIO()
    # 'sweep.cache' is counter telemetry, not a (workload, setup)
    # run; it gets its own section after the per-run reports.
    cache = dict(stats_runs.get("sweep.cache", {}))
    runs = sorted((set(stats_runs) | set(series_runs) |
                   set(audit_runs)) - {"sweep.cache"})
    if only_run:
        runs = [r for r in runs if r == only_run]
        if not runs:
            raise SystemExit("starnuma-report: run '%s' not present "
                             "in any artifact" % only_run)
    for run in runs:
        stats = stats_runs.get(run, {})
        baseline = pick_baseline(run, stats_runs)
        report_run(out, run, stats, series_runs.get(run, {}),
                   audit_runs.get(run, []),
                   stats_runs.get(baseline) if baseline else None,
                   baseline.split(".", 1)[1] if baseline else None,
                   top_n)
    if cache and not only_run:
        report_cache(out, cache)
    return out.getvalue()


# --- self test -------------------------------------------------------

SELFTEST_STATS = {
    "bfs.star.summary.ipc": 1.25,
    "bfs.star.summary.speedup": 1.4,
    "bfs.star.timing.phase00.instructions": 1000,
    "bfs.star.timing.phase00.cycles": 800,
    "bfs.star.timing.phase01.instructions": 1000,
    "bfs.star.timing.phase01.cycles": 790,
    "bfs.star.traceSim.engine.migratedRegions": 3,
    "bfs.star.traceSim.engine.hiThreshold": 64,
    "bfs.baseline.timing.phase00.instructions": 1000,
    "bfs.baseline.timing.phase00.cycles": 1000,
    "bfs.baseline.timing.phase01.instructions": 1000,
    "bfs.baseline.timing.phase01.cycles": 700,
    "sweep.cache.traceHits": 6,
    "sweep.cache.traceMisses": 2,
    "sweep.cache.resultHits": 12,
    "sweep.cache.resultMisses": 4,
    "sweep.cache.partialHits": 1,
    "sweep.cache.phasesSkipped": 3,
    "sweep.cache.bytesRead": 4096,
    "sweep.cache.bytesWritten": 8192,
    "sweep.cache.hitSeconds": 0.002,
    "sweep.cache.missSeconds": 1.25,
}

SELFTEST_TIMESERIES = {
    "bfs.star.timing.phase00.linkUtil.upi":
        {"t": [20000, 40000], "v": [0.5, 0.7]},
    "bfs.star.timing.phase00.dram.requests":
        {"t": [20000, 40000], "v": [100, 140]},
    "bfs.star.traceSim.migratedPages": {"t": [1, 2], "v": [64, 0]},
    "bfs.star.traceSim.poolPages": {"t": [1, 2], "v": [64, 64]},
}

SELFTEST_AUDIT = {
    "bfs.star": [
        {"phase": 1, "branch": "toPool", "region": 2, "page": 128,
         "sharers": 8, "accesses": 200, "hiThreshold": 64,
         "loThreshold": 4, "candidates": 3, "from": 1, "to": 16,
         "reason": "sharers reached the pool threshold"},
        {"phase": 1, "branch": "toPool", "region": 3, "page": 192,
         "sharers": 9, "accesses": 150, "hiThreshold": 64,
         "loThreshold": 4, "candidates": 3, "from": 0, "to": 16,
         "reason": "sharers reached the pool threshold"},
        {"phase": 2, "branch": "pingPongSuppressed", "region": 2,
         "page": 128, "sharers": 8, "accesses": 180,
         "hiThreshold": 64, "loThreshold": 4, "candidates": 1,
         "from": 16, "to": 1,
         "reason":
             "migrations exceeded a quarter of the phase count"},
    ],
}

SELFTEST_GOLDEN = """\
=== bfs / baseline ===

Phases:
  phase     instr    cycles    ipc   linkUtil    dramReq   migrated  poolPages tlbMissRate
      0      1000      1000  1.000          -          -          -          -           -
      1      1000       700  1.429          -          -          -          -           -

=== bfs / star ===

Summary:
  ipc                          1.250
  speedup                      1.400

Phases:
  phase     instr    cycles    ipc   linkUtil    dramReq   migrated  poolPages tlbMissRate   vs baseline
      0      1000       800  1.250      0.600        240         64         64           -    +20.0% won
      1      1000       790  1.266          -          -          0         64           -    -12.9% lost

Migration engine:
  hiThreshold                  64
  migratedRegions              3

Decision branches (3 Algorithm-1 decisions):
  toPool                    2   sharers reached the pool threshold
  pingPongSuppressed        1   migrations exceeded a quarter of the phase count

Top migrated pages:
  page 128            1 moves  (toPool x1)
  page 192            1 moves  (toPool x1)

=== artifact cache (sweep) ===

  trace tier        6 hit /      2 miss  ( 75% hit rate)
  result tier      12 hit /      4 miss  ( 75% hit rate)
  state tier        1 partial hit(s), 3 phase(s) skipped by differential resume
  store I/O      4096 byte(s) read, 8192 byte(s) written
  wall time    0.002s serving hits, 1.250s computing misses

"""


def runs_from_flat(flat):
    runs = defaultdict(dict)
    for key, value in flat.items():
        run, metric = split_run(key)
        if run is not None:
            runs[run][metric] = value
    return runs


def self_test():
    series_runs = defaultdict(dict)
    for key, col in SELFTEST_TIMESERIES.items():
        run, stream = split_run(key)
        series_runs[run][stream] = (col["t"], col["v"])
    got = render(runs_from_flat(SELFTEST_STATS), series_runs,
                 SELFTEST_AUDIT, None, 10)
    if got != SELFTEST_GOLDEN:
        sys.stderr.write("report self-test: got\n%s" % got)
        import difflib
        for line in difflib.unified_diff(
                SELFTEST_GOLDEN.splitlines(True),
                got.splitlines(True), "golden", "got"):
            sys.stderr.write(line)
        return 1
    print("report self-test: golden report matches, OK")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(
        description="Join StarNUMA observability artifacts into a "
                    "run-explain report.")
    parser.add_argument("--stats", help="stats snapshot JSON")
    parser.add_argument("--timeseries",
                        help="time-series export (JSON or .csv)")
    parser.add_argument("--audit",
                        help="migration audit log (CSV or .json)")
    parser.add_argument("--run", dest="only_run",
                        help="report a single '<workload>.<setup>'")
    parser.add_argument("--top", type=int, default=10,
                        help="migrated pages to list (default 10)")
    parser.add_argument("-o", "--output",
                        help="write the report here (default stdout)")
    parser.add_argument("--self-test", action="store_true",
                        help="render the embedded miniature run "
                             "against its golden report")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()
    if not (args.stats or args.timeseries or args.audit):
        parser.error("need at least one of --stats/--timeseries/"
                     "--audit (or --self-test)")

    text = render(
        load_stats(args.stats) if args.stats else {},
        load_timeseries(args.timeseries) if args.timeseries else {},
        load_audit(args.audit) if args.audit else {},
        args.only_run, args.top)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
    else:
        sys.stdout.write(text)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
