/**
 * @file
 * The in-memory metadata region of §III-D1: physical memory is
 * logically split into regions of several consecutive pages; each
 * region's tracker entry holds (i) one presence bit per socket and
 * (ii) an i-bit saturating access counter. A tracker design T_i is
 * parameterized by the counter width; T_0 tracks only which sockets
 * touched the region (enough to find widely shared regions), T_16
 * additionally ranks region hotness.
 */

#ifndef STARNUMA_CORE_REGION_TRACKER_HH
#define STARNUMA_CORE_REGION_TRACKER_HH

#include <cstdint>
#include <unordered_map>

#include "sim/types.hh"

namespace starnuma
{
namespace core
{

/** Region number (region-granular index of an address). */
using RegionId = Addr;

/** One metadata-region entry (a T_i tracker entry). */
struct TrackerEntry
{
    std::uint64_t sharerMask = 0;
    std::uint32_t accesses = 0;

    int sharerCount() const;
};

/** The per-region access-metadata table. */
class RegionTracker
{
  public:
    /**
     * @param counter_bits i of the T_i design (0 disables counting).
     * @param sockets sockets whose presence bits are tracked.
     * @param region_bytes region size (paper default 512 KB;
     *        scaled-down runs use 64 KB).
     */
    RegionTracker(int counter_bits, int n_sockets, Addr region_bytes);

    int counterBits() const { return counterBits_; }
    Addr regionBytes() const { return regionBytes_; }
    int pagesPerRegion() const;

    /** Region containing @p addr. */
    RegionId
    regionOf(Addr addr) const
    {
        return addr / regionBytes_;
    }

    /** First page number of region @p region. */
    PageNum
    firstPage(RegionId region) const
    {
        return PageNum(region * regionBytes_ / pageBytes);
    }

    /**
     * Fold @p count accesses by @p socket into the region holding
     * @p addr (the PTW adding a TLB annex value, §III-D1). The
     * counter saturates at 2^i - 1; with T_0 only the presence bit
     * is recorded.
     */
    void record(Addr addr, NodeId socket, std::uint32_t count = 1);

    /** Entry for @p region (zero entry if never touched). */
    const TrackerEntry &entry(RegionId region) const;

    /** Regions with at least one recorded access this phase. */
    std::size_t touchedRegions() const { return entries.size(); }

    /**
     * Size in bytes of the metadata region for @p total_memory
     * bytes of tracked memory (§III-D4's 128 MB check).
     */
    std::uint64_t metadataBytes(std::uint64_t total_memory) const;

    /** Per-entry metadata size in bytes for this T_i design. */
    std::uint64_t entryBytes() const;

    /**
     * End-of-phase scan: visit every touched region, then clear all
     * counters and presence bits (Algorithm 1 resets counters once
     * per phase).
     */
    template <typename Fn>
    void
    scanAndReset(Fn &&fn)
    {
        // lint: order-independent — the migration engine sorts
        // the snapshot (heat/id) before any decision.
        for (auto &[region, e] : entries) // lint: order-independent
            fn(region, e);
        entries.clear();
    }

    /** Clear without scanning. */
    void reset() { entries.clear(); }

  private:
    int counterBits_;
    int sockets;
    Addr regionBytes_;
    std::uint32_t counterMax;
    std::unordered_map<RegionId, TrackerEntry> entries;
    static const TrackerEntry zeroEntry;
};

} // namespace core
} // namespace starnuma

#endif // STARNUMA_CORE_REGION_TRACKER_HH
