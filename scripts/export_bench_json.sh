#!/bin/sh
# Export the headline bench results (Fig. 8 speedups, Table III
# IPC/MPKI) as machine-readable JSON: runs both benches in
# STARNUMA_BENCH_FAST mode with --bench-json and merges the two
# parts into BENCH_results.json at the repository root.
set -e
cd "$(dirname "$0")/.."

if [ ! -d build ]; then
    cmake -B build -G Ninja
fi
cmake --build build --target bench_fig08_main_results \
    bench_table3_workloads

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

STARNUMA_BENCH_FAST=1 ./build/bench/bench_fig08_main_results \
    --bench-json="$tmp/fig08.json" >/dev/null
STARNUMA_BENCH_FAST=1 ./build/bench/bench_table3_workloads \
    --bench-json="$tmp/table3.json" >/dev/null

python3 - "$tmp/fig08.json" "$tmp/table3.json" <<'EOF'
import json
import sys

merged = {"schema": "starnuma-bench-v1", "fast_mode": True,
          "results": {}, "wall_time_s": 0.0}
for path in sys.argv[1:]:
    with open(path) as fh:
        part = json.load(fh)
    assert part["schema"] == "starnuma-bench-v1", part["schema"]
    merged["fast_mode"] = bool(part["fast_mode"])
    merged["results"].update(part["results"])
    merged["wall_time_s"] += part["wall_time_s"]
merged["results"] = dict(sorted(merged["results"].items()))
merged["wall_time_s"] = round(merged["wall_time_s"], 3)
with open("BENCH_results.json", "w") as fh:
    json.dump(merged, fh, indent=2)
    fh.write("\n")
print("BENCH_results.json: %d results" % len(merged["results"]))
EOF
