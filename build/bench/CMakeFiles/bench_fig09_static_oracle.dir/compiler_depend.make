# Empty compiler generated dependencies file for bench_fig09_static_oracle.
# This may be replaced when dependencies are built.
