# Empty dependencies file for bench_sec5f_replication.
# This may be replaced when dependencies are built.
