#!/bin/sh
# Regenerate every result in EXPERIMENTS.md: build, test, and run
# one bench binary per paper figure/table. Outputs land in
# test_output.txt and bench_output.txt at the repository root.
# Set STARNUMA_BENCH_FAST=1 for a quick smoke pass.
set -e
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt
for b in build/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] && "$b"
done 2>&1 | tee bench_output.txt
