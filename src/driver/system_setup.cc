#include "driver/system_setup.hh"

namespace starnuma
{
namespace driver
{

namespace
{

SystemSetup
make(const char *name, topology::SystemConfig sys, bool pool)
{
    SystemSetup s;
    s.name = name;
    s.sys = std::move(sys);
    s.migration.poolEnabled = pool;
    return s;
}

} // anonymous namespace

SystemSetup
SystemSetup::baseline()
{
    return make("baseline", topology::SystemConfig::baseline16(),
                false);
}

SystemSetup
SystemSetup::starnuma()
{
    return make("starnuma-t16", topology::SystemConfig::starnuma16(),
                true);
}

SystemSetup
SystemSetup::starnumaT0()
{
    SystemSetup s = make("starnuma-t0",
                         topology::SystemConfig::starnuma16(), true);
    s.migration.counterBits = 0;
    return s;
}

SystemSetup
SystemSetup::starnumaSwitched()
{
    return make("starnuma-switched",
                topology::SystemConfig::starnumaSwitched(), true);
}

SystemSetup
SystemSetup::baselineIsoBW()
{
    return make("baseline-iso-bw",
                topology::SystemConfig::baselineIsoBW(), false);
}

SystemSetup
SystemSetup::baseline2xBW()
{
    return make("baseline-2x-bw",
                topology::SystemConfig::baseline2xBW(), false);
}

SystemSetup
SystemSetup::starnumaHalfBW()
{
    return make("starnuma-half-bw",
                topology::SystemConfig::starnumaHalfBW(), true);
}

SystemSetup
SystemSetup::starnumaSmallPool()
{
    return make("starnuma-small-pool",
                topology::SystemConfig::starnumaSmallPool(), true);
}

SystemSetup
SystemSetup::baselineStatic()
{
    SystemSetup s = baseline();
    s.name = "baseline-static-oracle";
    s.placement = Placement::StaticOracle;
    return s;
}

SystemSetup
SystemSetup::starnumaStatic()
{
    SystemSetup s = starnuma();
    s.name = "starnuma-static-oracle";
    s.placement = Placement::StaticOracle;
    return s;
}

SystemSetup
SystemSetup::baselineReplication()
{
    SystemSetup s = baseline();
    s.name = "baseline-replication";
    s.replicateReadOnly = true;
    return s;
}

} // namespace driver
} // namespace starnuma
