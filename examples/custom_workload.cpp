/**
 * @file
 * Domain example: evaluating your own workload. Implements a small
 * custom kernel (a shared work queue feeding per-thread scratch
 * buffers — a thread-pool pattern) against the Workload interface,
 * captures it, and runs it through both systems. Demonstrates the
 * three integration points: setup() with partitioned first touch,
 * step() with traced loads/stores, and the experiment driver.
 */

#include <cstdio>

#include "driver/system_setup.hh"
#include "driver/timing_sim.hh"
#include "driver/trace_sim.hh"
#include "sim/table.hh"
#include "workloads/workload.hh"

using namespace starnuma;

namespace
{

/** A thread-pool-style kernel: shared queue, private scratch. */
class WorkQueueKernel : public workloads::Workload
{
  public:
    std::string name() const override { return "workqueue"; }

    void
    setup(trace::CaptureContext &ctx, const SimScale &scale) override
    {
        threads = scale.threads();
        rng = Rng(99);
        // Shared: a queue of work descriptors all threads poll.
        queue.allocate(ctx, 1 << 16);
        // Private: per-thread scratch buffers (page aligned).
        scratch.allocate(ctx, static_cast<Addr>(threads) * 64 *
                                  pageBytes);
        for (ThreadId t = 0; t < threads; ++t)
            for (Addr a = 0; a < 64 * pageBytes; a += pageBytes)
                ctx.store(t, scratch.base() +
                                 static_cast<Addr>(t) * 64 *
                                     pageBytes + a);
        // The queue is written by a middle "producer" thread.
        for (std::size_t i = 0; i < queue.size(); ++i)
            ctx.store(threads / 2, queue.addrOf(i));
    }

    void
    step(ThreadId t, trace::CaptureContext &ctx) override
    {
        // Poll the shared queue (read-write shared: vagabond).
        std::size_t slot = rng.range32(
            static_cast<std::uint32_t>(queue.size()));
        queue.read(ctx, t, slot);
        queue.write(ctx, t, slot, t);
        ctx.instr(t, 8);
        // Work on private scratch (local after first touch).
        Addr base = scratch.base() +
                    static_cast<Addr>(t) * 64 * pageBytes;
        for (int i = 0; i < 12; ++i) {
            ctx.load(t, base + (rng.next32() %
                                (64 * pageBytes / blockBytes)) *
                                   blockBytes);
            ctx.instr(t, 6);
        }
    }

  private:
    int threads = 0;
    Rng rng{99};
    trace::TracedArray<std::uint64_t> queue;
    trace::TracedArray<std::uint8_t> scratch;
};

} // anonymous namespace

int
main()
{
    SimScale scale = SimScale::sc1();
    scale.phases = 3;

    WorkQueueKernel kernel;
    std::printf("capturing custom kernel '%s'...\n",
                kernel.name().c_str());
    auto trace = kernel.capture(scale);
    std::printf("  %llu records, %.1f MB footprint\n",
                static_cast<unsigned long long>(
                    trace.totalRecords()),
                static_cast<double>(trace.footprintBytes) / 1048576.0);

    TextTable t({"system", "IPC", "AMAT ns", "pool share"});
    driver::RunMetrics base_m;
    for (auto mk : {&driver::SystemSetup::baseline,
                    &driver::SystemSetup::starnuma}) {
        driver::SystemSetup setup = mk();
        driver::TraceSim tsim(setup, scale);
        auto placement = tsim.run(trace);
        driver::TimingSim timing(setup, scale);
        auto m = timing.run(trace, placement);
        if (!setup.sys.hasPool)
            base_m = m;
        t.addRow({setup.name, TextTable::num(m.ipc, 3),
                  TextTable::num(m.amatNs(), 0),
                  TextTable::pct(m.mix[3])});
        if (setup.sys.hasPool)
            std::printf("\n%s\nspeedup: %.2fx\n", t.str().c_str(),
                        m.speedupOver(base_m));
    }
    return 0;
}
