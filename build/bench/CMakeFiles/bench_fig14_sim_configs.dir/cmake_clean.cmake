file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_sim_configs.dir/bench_fig14_sim_configs.cc.o"
  "CMakeFiles/bench_fig14_sim_configs.dir/bench_fig14_sim_configs.cc.o.d"
  "CMakeFiles/bench_fig14_sim_configs.dir/bench_util.cc.o"
  "CMakeFiles/bench_fig14_sim_configs.dir/bench_util.cc.o.d"
  "bench_fig14_sim_configs"
  "bench_fig14_sim_configs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_sim_configs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
