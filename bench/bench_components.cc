/**
 * @file
 * Microbenchmarks of the simulator's building blocks (classic
 * google-benchmark style): event queue throughput, cache and TLB
 * lookup rates, tracker updates, directory transactions, link and
 * DRAM fluid-queue operations, and Kronecker graph generation.
 * Also prints the Table I/II system-parameter summary.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"
#include "core/region_tracker.hh"
#include "core/tlb_annex.hh"
#include "mem/cache.hh"
#include "mem/directory.hh"
#include "mem/dram.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/table.hh"
#include "topology/topology.hh"
#include "workloads/graph.hh"

using namespace starnuma;

namespace
{

void
BM_EventQueue(benchmark::State &state)
{
    EventQueue q;
    std::uint64_t n = 0;
    for (auto _ : state) {
        q.scheduleAfter(Cycles(1), [&n] { ++n; });
        q.step();
    }
    benchmark::DoNotOptimize(n);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueue);

void
BM_CacheAccess(benchmark::State &state)
{
    mem::Cache cache({2 * 1024 * 1024, 16});
    Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            cache.access(rng.next32() & 0xffffff, false).hit);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void
BM_TlbAnnexAccess(benchmark::State &state)
{
    core::RegionTracker tracker(16, 16, 16 * 1024);
    core::TlbAnnex tlb({64, 4}, tracker, 0);
    Rng rng(2);
    for (auto _ : state)
        tlb.recordAccess(rng.next32() & 0xffffff);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TlbAnnexAccess);

void
BM_TrackerRecord(benchmark::State &state)
{
    core::RegionTracker tracker(16, 16, 16 * 1024);
    Rng rng(3);
    for (auto _ : state)
        tracker.record(rng.next32() & 0xffffff,
                       rng.next32() & 15);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TrackerRecord);

void
BM_DirectoryAccess(benchmark::State &state)
{
    mem::Directory dir(16);
    Rng rng(4);
    for (auto _ : state) {
        Addr block = (rng.next32() & 0xffff) * blockBytes;
        benchmark::DoNotOptimize(
            dir.access(block, rng.next32() & 15,
                       rng.chance(0.3), rng.next32() & 15));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DirectoryAccess);

void
BM_TopologySend(benchmark::State &state)
{
    topology::Topology topo(topology::SystemConfig::starnuma16());
    Rng rng(5);
    Cycles now;
    for (auto _ : state) {
        NodeId src = rng.next32() % 16;
        NodeId dst = rng.next32() % 17;
        now += Cycles(10);
        benchmark::DoNotOptimize(
            topo.send(src, dst, now, topology::dataBytes));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TopologySend);

void
BM_DramAccess(benchmark::State &state)
{
    mem::MemoryController mc(2, mem::DramConfig{});
    Rng rng(6);
    Cycles now;
    for (auto _ : state) {
        now += Cycles(5);
        benchmark::DoNotOptimize(
            mc.access(now, rng.next32() & 0xffffff));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DramAccess);

void
BM_KroneckerGeneration(benchmark::State &state)
{
    for (auto _ : state) {
        Rng rng(7);
        auto g = workloads::CsrGraph::kronecker(
            static_cast<int>(state.range(0)), 8, rng);
        benchmark::DoNotOptimize(g.directedEdges());
    }
}
BENCHMARK(BM_KroneckerGeneration)->Arg(10)->Arg(14);

} // anonymous namespace

int
main(int argc, char **argv)
{
    benchutil::initBench(&argc, argv);
    int rc = benchutil::runBenchmarks(argc, argv);

    auto cfg = topology::SystemConfig::starnuma16();
    topology::Topology topo(cfg);
    TextTable t({"parameter", "value"});
    t.addRow({"sockets / chassis",
              std::to_string(cfg.sockets) + " / " +
                  std::to_string(cfg.chassis())});
    t.addRow({"UPI links (intra-chassis + socket-ASIC)",
              std::to_string(topo.countLinks(
                  topology::LinkType::UPI))});
    t.addRow({"NUMALinks (ASIC pairs)",
              std::to_string(topo.countLinks(
                  topology::LinkType::NUMALink))});
    t.addRow({"CXL links (star to pool)",
              std::to_string(topo.countLinks(
                  topology::LinkType::CXL))});
    t.addRow({"UPI / NUMALink / CXL GB/s per direction (scaled)",
              TextTable::num(cfg.upiGbps, 1) + " / " +
                  TextTable::num(cfg.numalinkGbps, 1) + " / " +
                  TextTable::num(cfg.cxlGbps, 1)});
    t.addRow({"unloaded local / 1-hop / 2-hop / pool ns",
              TextTable::num(cfg.localNs(), 0) + " / " +
                  TextTable::num(cfg.oneHopNs(), 0) + " / " +
                  TextTable::num(cfg.twoHopNs(), 0) + " / " +
                  TextTable::num(cfg.poolNs(), 0)});
    t.addRow({"pool capacity fraction",
              TextTable::pct(cfg.poolCapacityFraction, 0)});
    benchutil::printSection(
        "Tables I/II: system parameters (scaled configuration)",
        t.str());
    return rc;
}
