/**
 * @file
 * Step-B replay throughput: simulated instructions per wall-clock
 * second through the trace simulator (driver/trace_sim.hh), for the
 * StarNUMA and baseline page-placement machineries. This is the
 * metric that caps how many scenarios a sweep can afford — the
 * recorded `replay.replay_instr_per_sec` aggregate feeds the CI
 * regression guard (scripts/run_ci.sh bench stage).
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>

#include "bench_util.hh"
#include "driver/trace_sim.hh"
#include "sim/table.hh"

using namespace starnuma;
using benchutil::benchScale;

namespace
{

/** One workload's measured replay rates (both system setups). */
struct ReplayRate
{
    std::string workload;
    double starInstrPerSec = 0;
    double baseInstrPerSec = 0;
};

/**
 * Replay @p trace through a fresh TraceSim and return simulated
 * instructions per second of wall time. Deterministic work, so one
 * timed pass suffices; the result is kept live via DoNotOptimize.
 */
double
timedReplay(const trace::WorkloadTrace &trace,
            const driver::SystemSetup &setup, const SimScale &scale)
{
    using clock = std::chrono::steady_clock;
    driver::TraceSim sim(setup, scale);
    auto t0 = clock::now();
    driver::TraceSimResult r = sim.run(trace);
    auto t1 = clock::now();
    benchmark::DoNotOptimize(r.checkpoints.size());
    double secs = std::chrono::duration<double>(t1 - t0).count();
    std::uint64_t instr =
        trace.instructionsPerThread *
        static_cast<std::uint64_t>(trace.threads);
    return static_cast<double>(instr) / std::max(secs, 1e-9);
}

std::vector<ReplayRate> measured;

void
BM_Replay(benchmark::State &state, const std::string &workload)
{
    SimScale scale = benchScale();
    const trace::WorkloadTrace &trace =
        driver::workloadTrace(workload, scale);
    ReplayRate rate;
    rate.workload = workload;
    for (auto _ : state) {
        rate.starInstrPerSec = timedReplay(
            trace, driver::SystemSetup::starnuma(), scale);
        rate.baseInstrPerSec = timedReplay(
            trace, driver::SystemSetup::baseline(), scale);
    }
    state.counters["star_instr_per_sec"] = rate.starInstrPerSec;
    state.counters["base_instr_per_sec"] = rate.baseInstrPerSec;
    measured.push_back(rate);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    benchutil::initBench(&argc, argv);
    SimScale scale = benchScale();

    // Capture every trace up front (memoized + disk cached) so the
    // timed region measures replay alone, not step A.
    for (const auto &w : benchutil::benchWorkloads())
        driver::workloadTrace(w, scale);

    for (const auto &w : benchutil::benchWorkloads())
        benchmark::RegisterBenchmark(("Replay/" + w).c_str(),
                                     BM_Replay, w)
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    int rc = benchutil::runBenchmarks(argc, argv);

    TextTable t({"workload", "starnuma Minstr/s",
                 "baseline Minstr/s"});
    double star_sum = 0, base_sum = 0;
    for (const ReplayRate &r : measured) {
        benchutil::recordResult(
            "replay.star_instr_per_sec." + r.workload,
            r.starInstrPerSec);
        benchutil::recordResult(
            "replay.base_instr_per_sec." + r.workload,
            r.baseInstrPerSec);
        star_sum += r.starInstrPerSec;
        base_sum += r.baseInstrPerSec;
        t.addRow({r.workload,
                  TextTable::num(r.starInstrPerSec / 1e6, 1),
                  TextTable::num(r.baseInstrPerSec / 1e6, 1)});
    }
    if (!measured.empty()) {
        // The headline number: mean over workloads and both system
        // setups, the rate a mixed sweep advances at.
        double n = static_cast<double>(measured.size());
        double mean = (star_sum + base_sum) / (2.0 * n);
        benchutil::recordResult("replay.replay_instr_per_sec",
                                mean);
        t.addRow({"mean", TextTable::num(star_sum / 1e6 / n, 1),
                  TextTable::num(base_sum / 1e6 / n, 1)});
    }
    benchutil::printSection(
        "Step-B replay throughput (simulated instructions per "
        "second)",
        t.str());
    return rc;
}
