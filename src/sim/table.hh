/**
 * @file
 * ASCII table formatting for benchmark/report output: the benches
 * print paper-style rows (Fig/Table reproductions) through this.
 */

#ifndef STARNUMA_SIM_TABLE_HH
#define STARNUMA_SIM_TABLE_HH

#include <string>
#include <vector>

namespace starnuma
{

/** Column-aligned text table with a header row. */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> header);

    /** Append one row; must match the header's column count. */
    void addRow(std::vector<std::string> row);

    /** Format a double with @p decimals places. */
    static std::string num(double v, int decimals = 2);

    /** Format a ratio as a percentage string ("42.0%"). */
    static std::string pct(double ratio, int decimals = 1);

    /** Render with column padding and a separator under the header. */
    std::string str() const;

  private:
    std::vector<std::vector<std::string>> rows;
};

} // namespace starnuma

#endif // STARNUMA_SIM_TABLE_HH
