#!/usr/bin/env bash
# Binary backstop for the D9 hot-path discipline (DESIGN.md §13).
#
# The source-level analyzer (scripts/starnuma_hotpath.py) reasons
# over names and can be fooled by calls through function pointers,
# operator call sites, or std:: methods it cannot see into. The
# disassembly cannot: this script objdump-disassembles the built
# test binary (which links every library) and verifies that no
# hot-path symbol's main body contains a direct call to the
# allocator, the exception machinery, or pthread mutex locking.
#
# Scope notes:
#   * GCC's `[clone .cold]` sections are excluded — they hold the
#     outlined sn_assert/panic paths, which are [[noreturn]]
#     invariant failures and allowed on the hot path (D9's
#     NORETURN_OK set).
#   * TraceSim::runDynamic/runStaticOracle and decodeColumnar are
#     covered by the analyzer but not checked here: their phase
#     setup, checkpoint snapshots, and output sizing are line-level
#     cold-path escapes that stay lexically inside the function, so
#     their bodies legitimately contain allocator calls.
#   * Indirect calls (`call *%rax`) carry no symbol and cannot be
#     checked; the analyzer's over-approximation covers those.
#
# Usage: scripts/check_hotpath_syms.sh [build-dir]   (default: build)
#
# Exit status: 0 clean, 1 on banned calls or a missing manifest
# symbol (a rename silently voiding the check must fail loudly).
set -uo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${1:-build}
BIN="${BUILD_DIR}/tests/starnuma_tests"

if [ ! -x "${BIN}" ]; then
    echo "check-hotpath-syms: ${BIN} missing; building it" >&2
    cmake -B "${BUILD_DIR}" -S . >/dev/null &&
        cmake --build "${BUILD_DIR}" -j "$(nproc)" \
              --target starnuma_tests >/dev/null || exit 1
fi

if ! command -v objdump >/dev/null 2>&1; then
    echo "check-hotpath-syms: objdump not installed; skipping" \
         "(binary backstop is advisory without binutils)" >&2
    exit 0
fi

# The disassembly goes through a file: the heredoc below owns
# python's stdin, so piping objdump into it would be silently lost.
DIS=$(mktemp) || exit 1
trap 'rm -f "${DIS}"' EXIT
objdump -d -C "${BIN}" > "${DIS}" || exit 1

python3 - "${BIN}" "${DIS}" <<'EOF'
import re
import sys

# Demangled-name regexes of the hot-path symbols to audit. Every
# entry must match at least one main-body symbol in the binary.
MANIFEST = [
    r"starnuma::driver::TraceSim::run\(",
    r"starnuma::core::TlbAnnex::recordAccess\(",
    r"starnuma::core::TlbAnnex::recordAccessRun\(",
    r"starnuma::core::TlbDirectory::evict\(",
    r"starnuma::core::TlbDirectory::shootdown\(",
    r"starnuma::core::RegionTracker::record\(",
    r"starnuma::core::PageAccessStats::record\(",
    r"starnuma::mem::PageMap::touch\(",
]

# A call target starting with any of these is a hot-path violation.
BANNED_PREFIXES = (
    "operator new",
    "__cxa_throw",
    "__cxa_rethrow",
    "__cxa_allocate_exception",
    "pthread_mutex_lock",
    "pthread_mutex_trylock",
    "malloc",
    "calloc",
    "realloc",
    "aligned_alloc",
    "strdup",
)

SYM_HEAD = re.compile(r"^[0-9a-f]+ <(.+)>:$")
CALL_TARGET = re.compile(r"\bcall\w*\s+[0-9a-f]+\s+<([^>]+)>")

bodies = {}
cur = None
for line in open(sys.argv[2]):
    m = SYM_HEAD.match(line)
    if m:
        cur = m.group(1)
        bodies.setdefault(cur, [])
        continue
    if cur is not None and line.strip():
        bodies[cur].append(line.rstrip("\n"))

fail = False
checked = 0
for pat in MANIFEST:
    rx = re.compile(pat)
    syms = [s for s in bodies
            if rx.search(s) and "[clone" not in s]
    if not syms:
        print("check-hotpath-syms: FAIL: no symbol matches /%s/ in "
              "%s (renamed? add the new name to the manifest)"
            % (pat, sys.argv[1]))
        fail = True
        continue
    for sym in sorted(syms):
        checked += 1
        for insn in bodies[sym]:
            m = CALL_TARGET.search(insn)
            if not m:
                continue
            target = m.group(1)
            for banned in BANNED_PREFIXES:
                if target.startswith(banned):
                    print("check-hotpath-syms: FAIL: hot symbol\n"
                          "    %s\n  calls banned target\n    %s"
                          % (sym, target))
                    fail = True
                    break

print("check-hotpath-syms: %d hot symbols audited across %d "
      "manifest entries: %s"
      % (checked, len(MANIFEST), "FAIL" if fail else "clean"))
sys.exit(1 if fail else 0)
EOF
