#include "sim/cas/hash.hh"

namespace starnuma
{
namespace cas
{
namespace
{

// FNV-1a 128-bit parameters (draft-eastlake-fnv). The Python twin in
// scripts/cas_tool.py must use the same constants bit for bit.
constexpr unsigned __int128
u128(std::uint64_t hi, std::uint64_t lo)
{
    return (static_cast<unsigned __int128>(hi) << 64) | lo;
}

constexpr unsigned __int128 FNV_OFFSET =
    u128(0x6c62272e07bb0142ULL, 0x62b821756295c58dULL);
constexpr unsigned __int128 FNV_PRIME =
    u128(0x0000000001000000ULL, 0x000000000000013bULL);

} // namespace

std::string
Hash128::hex() const
{
    static const char digits[] = "0123456789abcdef";
    std::string out(32, '0');
    for (int i = 0; i < 16; ++i) {
        std::uint64_t half = i < 8 ? hi : lo;
        int shift = 8 * (7 - (i % 8));
        std::uint8_t byte =
            static_cast<std::uint8_t>(half >> shift);
        out[2 * i] = digits[byte >> 4];
        out[2 * i + 1] = digits[byte & 0xf];
    }
    return out;
}

Hasher::Hasher() : state(FNV_OFFSET) {}

void
Hasher::update(const void *data, std::size_t size)
{
    const std::uint8_t *p = static_cast<const std::uint8_t *>(data);
    unsigned __int128 h = state;
    for (std::size_t i = 0; i < size; ++i) {
        h ^= p[i];
        h *= FNV_PRIME;
    }
    state = h;
}

void
Hasher::update(const std::string &s)
{
    update(s.data(), s.size());
}

void
Hasher::update(const std::vector<std::uint8_t> &bytes)
{
    update(bytes.data(), bytes.size());
}

Hash128
Hasher::digest() const
{
    Hash128 out;
    out.hi = static_cast<std::uint64_t>(state >> 64);
    out.lo = static_cast<std::uint64_t>(state);
    return out;
}

Hash128
hashBytes(const void *data, std::size_t size)
{
    Hasher h;
    h.update(data, size);
    return h.digest();
}

Hash128
hashBytes(const std::vector<std::uint8_t> &bytes)
{
    return hashBytes(bytes.data(), bytes.size());
}

Hash128
hashString(const std::string &s)
{
    return hashBytes(s.data(), s.size());
}

} // namespace cas
} // namespace starnuma
