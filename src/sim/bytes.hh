/**
 * @file
 * Byte-serialization primitives shared by every StarNUMA artifact
 * encoder: LEB128 varints, zigzag signed mapping, fixed-width
 * little-endian scalars, and the bounds-checked ByteReader cursor.
 *
 * Historically these lived in trace/columnar.hh; they moved down to
 * the sim layer so mem/ and core/ state serializers (the incremental
 * sweep engine's per-phase resume snapshots, DESIGN.md §16) can use
 * them without violating the D6 include DAG. trace/columnar.hh
 * re-exports them into namespace trace, so existing call sites
 * (`trace::putVarint`, `trace::ByteReader`, ...) are unchanged.
 *
 * Every decoder built on ByteReader is fully bounds-checked:
 * truncation, over-long varints and impossible counts all surface as
 * a false return — never undefined behaviour.
 */

#ifndef STARNUMA_SIM_BYTES_HH
#define STARNUMA_SIM_BYTES_HH

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace starnuma
{

/** LEB128 append of @p v to @p out (1-10 bytes). */
inline void
putVarint(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(v));
}

/** Map signed to unsigned so small magnitudes stay small. */
inline std::uint64_t
zigzag(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t
unzigzag(std::uint64_t v)
{
    return static_cast<std::int64_t>(v >> 1) ^
           -static_cast<std::int64_t>(v & 1);
}

/** Fixed-width little-endian u64 append (header fields). */
inline void
putU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

/** IEEE-754 bit pattern of @p v as a varint (scalar channels). */
inline void
putDouble(std::vector<std::uint8_t> &out, double v)
{
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    putVarint(out, bits);
}

/** Length-prefixed UTF-8 string append. */
inline void
putString(std::vector<std::uint8_t> &out, const std::string &s)
{
    putVarint(out, s.size());
    out.insert(out.end(), s.begin(), s.end());
}

/** Bounds-checked cursor over an encoded byte buffer. */
class ByteReader
{
  public:
    ByteReader(const std::uint8_t *data, std::size_t size)
        : p(data), end(data + size)
    {
    }

    std::size_t remaining() const
    {
        return static_cast<std::size_t>(end - p);
    }

    /** @return false on truncation or an over-long varint. */
    bool
    getVarint(std::uint64_t &v)
    {
        v = 0;
        for (int shift = 0; shift < 64; shift += 7) {
            if (p == end)
                return false;
            std::uint8_t byte = *p++;
            v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
            if (!(byte & 0x80))
                return true;
        }
        return false; // > 10 bytes: corrupt
    }

    /** Fixed-width little-endian u64 (the v1 trace and checkpoint
     *  headers use fixed fields). @return false on truncation. */
    bool
    getU64(std::uint64_t &v)
    {
        if (remaining() < 8)
            return false;
        v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
        p += 8;
        return true;
    }

    /** Varint-carried IEEE-754 bit pattern. */
    bool
    getDouble(double &v)
    {
        std::uint64_t bits = 0;
        if (!getVarint(bits))
            return false;
        std::memcpy(&v, &bits, sizeof v);
        return true;
    }

    /** Length-prefixed string with a sanity cap on the length. */
    bool
    getString(std::string &s, std::size_t maxLen = 1 << 20)
    {
        std::uint64_t n = 0;
        if (!getVarint(n) || n > maxLen || n > remaining())
            return false;
        s.assign(reinterpret_cast<const char *>(p),
                 static_cast<std::size_t>(n));
        p += n;
        return true;
    }

    bool
    getBytes(void *dst, std::size_t n)
    {
        if (remaining() < n)
            return false;
        std::uint8_t *out = static_cast<std::uint8_t *>(dst);
        for (std::size_t i = 0; i < n; ++i)
            out[i] = p[i];
        p += n;
        return true;
    }

  private:
    const std::uint8_t *p;
    const std::uint8_t *end;
};

} // namespace starnuma

#endif // STARNUMA_SIM_BYTES_HH
