// Fixture: D10 decoder bounds — violations. Decode-named functions
// in src/trace/ may not memcpy/fread from byte buffers, do raw
// pointer arithmetic on them, or reinterpret_cast.

#include <cstdint>
#include <cstring>

namespace starnuma
{
namespace trace
{

std::uint64_t
fixtureDecodeRawHeader(const std::uint8_t *buf, std::size_t n)
{
    std::uint64_t magic = 0;
    std::memcpy(&magic, buf, sizeof(magic)); // expect-lint: D10
    return magic + n;
}

std::uint32_t
fixtureParseRawCount(const std::uint8_t *buf)
{
    return *reinterpret_cast<const std::uint32_t *>(buf); // expect-lint: D10
}

} // namespace trace
} // namespace starnuma
