/**
 * @file
 * Columnar trace format v2 tests: encode→decode round-trip
 * equality on captures of all eight workloads plus hand-built edge
 * traces, file save/load, and a byte-fuzz robustness suite — every
 * truncation prefix, random corruption, over-long varints, bad
 * magic/version, and implausible counts must all make the decoder
 * return false (or decode to *something*) without ever invoking
 * undefined behaviour. scripts/run_ci.sh runs this under
 * ASan/UBSan, which is what turns "no UB" into a checked claim.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "sim/rng.hh"
#include "trace/columnar.hh"
#include "trace/trace.hh"
#include "workloads/gap.hh"
#include "workloads/genomics.hh"
#include "workloads/kvstore.hh"
#include "workloads/tpcc.hh"
#include "workloads/workload.hh"

namespace starnuma
{
namespace trace
{
namespace
{

/** Reduced-size workload instances (mirrors workload_test.cc). */
std::unique_ptr<workloads::Workload>
makeSmall(const std::string &name)
{
    using namespace workloads;
    if (name == "bfs")
        return std::make_unique<Bfs>(1, 12, 8);
    if (name == "cc")
        return std::make_unique<ConnectedComponents>(1, 12, 8);
    if (name == "sssp")
        return std::make_unique<Sssp>(1, 12, 8);
    if (name == "tc")
        return std::make_unique<TriangleCount>(1, 12, 8);
    if (name == "masstree")
        return std::make_unique<KvStore>(1, 1u << 14);
    if (name == "tpcc")
        return std::make_unique<Tpcc>(1, 8, 4, 60, 500);
    if (name == "fmi")
        return std::make_unique<Fmi>(1, 1u << 15);
    if (name == "poa")
        return std::make_unique<Poa>(1, 200, 400);
    return makeWorkload(name);
}

SimScale
captureScale()
{
    SimScale s;
    s.sockets = 4;
    s.socketsPerChassis = 2;
    s.coresPerSocket = 2;
    s.phases = 1;
    s.phaseInstructions = 30000;
    return s;
}

/** Field-by-field equality of everything the format stores. */
void
expectTracesEqual(const WorkloadTrace &a, const WorkloadTrace &b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.threads, b.threads);
    EXPECT_EQ(a.instructionsPerThread, b.instructionsPerThread);
    EXPECT_EQ(a.footprintBytes, b.footprintBytes);
    ASSERT_EQ(a.firstTouches.size(), b.firstTouches.size());
    for (std::size_t i = 0; i < a.firstTouches.size(); ++i) {
        EXPECT_EQ(a.firstTouches[i].page, b.firstTouches[i].page);
        EXPECT_EQ(a.firstTouches[i].thread,
                  b.firstTouches[i].thread);
    }
    EXPECT_EQ(a.writtenPages, b.writtenPages);
    ASSERT_EQ(a.perThread.size(), b.perThread.size());
    for (std::size_t t = 0; t < a.perThread.size(); ++t) {
        ASSERT_EQ(a.perThread[t].size(), b.perThread[t].size())
            << "record count differs for thread " << t;
        for (std::size_t i = 0; i < a.perThread[t].size(); ++i) {
            EXPECT_EQ(a.perThread[t][i].instr,
                      b.perThread[t][i].instr);
            EXPECT_EQ(a.perThread[t][i].packed,
                      b.perThread[t][i].packed);
        }
    }
}

class ColumnarRoundTrip
    : public ::testing::TestWithParam<std::string>
{
};

/**
 * Capture → encode → decode must reproduce every stored field for
 * each of the paper's eight workloads. The page span is *derived*
 * on decode (not stored), so it is checked for containment in the
 * capture-stamped allocator span rather than equality.
 */
TEST_P(ColumnarRoundTrip, AllWorkloadsSurviveEncodeDecode)
{
    WorkloadTrace t = makeSmall(GetParam())->capture(captureScale());
    ASSERT_GT(t.totalRecords(), 100u);
    ASSERT_NE(t.maxPage, PageNum(0)); // capture stamped the span

    std::vector<std::uint8_t> bytes = encodeColumnar(t);
    WorkloadTrace back;
    ASSERT_TRUE(decodeColumnar(bytes.data(), bytes.size(), back));
    expectTracesEqual(t, back);

    // Decode recomputes a (possibly tighter) span from content.
    EXPECT_GE(back.minPage, t.minPage);
    EXPECT_LE(back.maxPage, t.maxPage);
    EXPECT_LE(back.minPage, back.maxPage);

    // And the claimed size win over v1's 16 bytes/record is real.
    EXPECT_LT(bytes.size(), t.totalRecords() * 16);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, ColumnarRoundTrip,
    ::testing::ValuesIn(workloads::workloadNames()));

/** Adversarial hand-built trace: extreme deltas in both columns. */
TEST(ColumnarTrace, EdgeValueRoundTrip)
{
    WorkloadTrace t;
    t.workload = "edge";
    t.threads = 3;
    t.instructionsPerThread = ~std::uint64_t(0) / 2;
    t.footprintBytes = 1;
    t.firstTouches.push_back({PageNum(0), 0});
    t.firstTouches.push_back({PageNum(1ULL << 51), 2}); // jump up
    t.firstTouches.push_back({PageNum(7), 1});          // and down
    t.writtenPages = {PageNum(0), PageNum(123),
                      PageNum(1ULL << 50)};
    t.perThread.resize(3);
    // Thread 0: max-magnitude address swings, alternating writes.
    t.perThread[0].emplace_back(0, Addr(0), false);
    t.perThread[0].emplace_back(0, ~Addr(0) & ~MemRecord::writeBit,
                                true);
    t.perThread[0].emplace_back(5, Addr(64), true);
    // Thread 1: empty column set.
    // Thread 2: repeated identical records (zero deltas).
    for (int i = 0; i < 20; ++i)
        t.perThread[2].emplace_back(100, Addr(0x10000000), i % 2);

    std::vector<std::uint8_t> bytes = encodeColumnar(t);
    WorkloadTrace back;
    ASSERT_TRUE(decodeColumnar(bytes.data(), bytes.size(), back));
    expectTracesEqual(t, back);
}

TEST(ColumnarTrace, EmptyTraceRoundTrip)
{
    WorkloadTrace t;
    t.workload = "empty";
    t.threads = 2;
    t.perThread.resize(2);
    std::vector<std::uint8_t> bytes = encodeColumnar(t);
    WorkloadTrace back;
    ASSERT_TRUE(decodeColumnar(bytes.data(), bytes.size(), back));
    expectTracesEqual(t, back);
    // No content pages → span stays at the "unknown" sentinel.
    EXPECT_EQ(back.minPage, PageNum(0));
    EXPECT_EQ(back.maxPage, PageNum(0));
}

TEST(ColumnarTrace, FileSaveLoadRoundTrip)
{
    WorkloadTrace t =
        makeSmall("bfs")->capture(captureScale());
    std::string path = ::testing::TempDir() + "columnar_rt.bin";
    ASSERT_TRUE(saveColumnar(t, path));
    WorkloadTrace back;
    ASSERT_TRUE(loadColumnar(back, path));
    expectTracesEqual(t, back);
    std::remove(path.c_str());
}

// --- Decoder robustness (the fuzz half of the tentpole) ---

/** A small but fully populated encoding for the fuzz cases. */
std::vector<std::uint8_t>
smallEncoding()
{
    WorkloadTrace t;
    t.workload = "fuzz";
    t.threads = 2;
    t.instructionsPerThread = 5000;
    t.footprintBytes = 4 * pageBytes;
    t.firstTouches.push_back({PageNum(0x10000), 0});
    t.firstTouches.push_back({PageNum(0x10001), 1});
    t.writtenPages = {PageNum(0x10000)};
    t.perThread.resize(2);
    for (int i = 0; i < 40; ++i) {
        t.perThread[0].emplace_back(i * 3,
                                    0x10000000 + i * blockBytes,
                                    i % 4 == 0);
        t.perThread[1].emplace_back(i * 7,
                                    0x10002000 + i * pageBytes,
                                    false);
    }
    return encodeColumnar(t);
}

/**
 * Every strict prefix of a valid encoding is missing at least the
 * tail of some column, so decode must report failure on all of
 * them — and must never read past the buffer (ASan-checked).
 */
TEST(ColumnarFuzz, EveryTruncationPrefixFailsCleanly)
{
    std::vector<std::uint8_t> bytes = smallEncoding();
    ASSERT_GT(bytes.size(), 100u);
    WorkloadTrace out;
    for (std::size_t len = 0; len < bytes.size(); ++len)
        EXPECT_FALSE(decodeColumnar(bytes.data(), len, out))
            << "prefix of length " << len
            << " decoded successfully";
    EXPECT_TRUE(
        decodeColumnar(bytes.data(), bytes.size(), out));
}

/**
 * Random single/multi-byte corruption: the decoder may reject or
 * may produce *a* trace (a flipped address-delta bit is still a
 * well-formed stream), but it must never crash, hang, or trip the
 * sanitizers, and anything it accepts must respect its own bounds.
 */
TEST(ColumnarFuzz, RandomByteCorruptionNeverMisbehaves)
{
    const std::vector<std::uint8_t> pristine = smallEncoding();
    Rng rng(taskSeed({"columnar_fuzz"}));
    int accepted = 0, rejected = 0;
    for (int round = 0; round < 3000; ++round) {
        std::vector<std::uint8_t> bytes = pristine;
        int edits = 1 + static_cast<int>(rng.range32(4));
        for (int e = 0; e < edits; ++e) {
            std::size_t pos = static_cast<std::size_t>(
                rng.range64(0, bytes.size() - 1));
            bytes[pos] = static_cast<std::uint8_t>(rng.next32());
        }
        WorkloadTrace out;
        if (decodeColumnar(bytes.data(), bytes.size(), out)) {
            ++accepted;
            EXPECT_LE(out.threads, 1024);
            EXPECT_EQ(out.perThread.size(),
                      static_cast<std::size_t>(out.threads));
            for (const FirstTouch &ft : out.firstTouches)
                EXPECT_LT(ft.thread, out.threads);
        } else {
            ++rejected;
        }
    }
    // The header is small, so most corruption lands in column data
    // and decodes; both outcomes must actually occur.
    EXPECT_GT(accepted, 0);
    EXPECT_GT(rejected, 0);
}

TEST(ColumnarFuzz, GarbageBuffersRejected)
{
    WorkloadTrace out;
    EXPECT_FALSE(decodeColumnar(nullptr, 0, out));

    // An over-long varint (11 continuation bytes) is corrupt even
    // though every byte asks for more.
    std::vector<std::uint8_t> overlong(16, 0xff);
    EXPECT_FALSE(
        decodeColumnar(overlong.data(), overlong.size(), out));

    // Uniformly random buffers essentially never carry the magic.
    Rng rng(taskSeed({"columnar_garbage"}));
    for (int round = 0; round < 500; ++round) {
        std::vector<std::uint8_t> junk(
            1 + rng.range32(256));
        for (auto &b : junk)
            b = static_cast<std::uint8_t>(rng.next32());
        EXPECT_FALSE(
            decodeColumnar(junk.data(), junk.size(), out));
    }
}

TEST(ColumnarFuzz, BadMagicAndVersionRejected)
{
    std::vector<std::uint8_t> bytes = smallEncoding();
    WorkloadTrace out;

    // Flip one bit of the magic.
    std::vector<std::uint8_t> bad = bytes;
    bad[0] ^= 1;
    EXPECT_FALSE(decodeColumnar(bad.data(), bad.size(), out));

    // Re-encode with a future version number: same magic, version
    // bumped, rest untouched. Decoder must refuse, not guess.
    std::vector<std::uint8_t> header;
    putVarint(header, 0x53544152434f4c32ULL);
    std::size_t magic_len = header.size();
    putVarint(header, 3); // unknown version
    std::vector<std::uint8_t> future(header);
    // Old version byte is right after the magic; skip past it.
    std::size_t old_version_len = 1;
    future.insert(future.end(),
                  bytes.begin() + magic_len + old_version_len,
                  bytes.end());
    EXPECT_FALSE(
        decodeColumnar(future.data(), future.size(), out));
}

/**
 * Length fields larger than the remaining buffer must be rejected
 * before any allocation is attempted (no multi-GB resize on a
 * 50-byte file).
 */
TEST(ColumnarFuzz, ImplausibleCountsRejected)
{
    std::vector<std::uint8_t> bytes;
    putVarint(bytes, 0x53544152434f4c32ULL); // magic
    putVarint(bytes, 2);                     // version
    putVarint(bytes, ~std::uint64_t(0));     // name length: absurd
    WorkloadTrace out;
    EXPECT_FALSE(decodeColumnar(bytes.data(), bytes.size(), out));

    bytes.clear();
    putVarint(bytes, 0x53544152434f4c32ULL);
    putVarint(bytes, 2);
    putVarint(bytes, 0);          // empty name
    putVarint(bytes, 1);          // one thread
    putVarint(bytes, 1000);       // instructions
    putVarint(bytes, 4096);       // footprint
    putVarint(bytes, 1u << 30);   // firstTouch count: absurd
    EXPECT_FALSE(decodeColumnar(bytes.data(), bytes.size(), out));
}

} // anonymous namespace
} // namespace trace
} // namespace starnuma
