#include "trace/trace.hh"

#include <cstdio>
#include <cstdlib>
#include <sys/stat.h>

#include "trace/columnar.hh"

namespace starnuma
{
namespace trace
{

namespace
{

constexpr std::uint64_t magic = 0x5354415254524332ULL; // "STARTRC2"

bool
writeBytes(std::FILE *f, const void *p, std::size_t n)
{
    if (n == 0)
        return true; // empty vectors have a null data()
    return std::fwrite(p, 1, n, f) == n;
}

} // anonymous namespace

std::uint64_t
WorkloadTrace::totalRecords() const
{
    std::uint64_t total = 0;
    for (const auto &t : perThread)
        total += t.size();
    return total;
}

double
WorkloadTrace::recordsPerKiloInstruction() const
{
    std::uint64_t instr =
        instructionsPerThread * static_cast<std::uint64_t>(threads);
    return instr ? 1000.0 * static_cast<double>(totalRecords()) /
                       static_cast<double>(instr)
                 : 0.0;
}

// lint: artifact-root step_a_trace
bool
WorkloadTrace::save(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    bool ok = true;
    std::uint64_t name_len = workload.size();
    std::uint64_t nthreads = threads;
    std::uint64_t nft = firstTouches.size();
    ok = ok && writeBytes(f, &magic, 8);
    ok = ok && writeBytes(f, &name_len, 8);
    ok = ok && writeBytes(f, workload.data(), name_len);
    ok = ok && writeBytes(f, &nthreads, 8);
    ok = ok && writeBytes(f, &instructionsPerThread, 8);
    ok = ok && writeBytes(f, &footprintBytes, 8);
    ok = ok && writeBytes(f, &nft, 8);
    ok = ok && writeBytes(f, firstTouches.data(),
                          nft * sizeof(FirstTouch));
    std::uint64_t nwp = writtenPages.size();
    ok = ok && writeBytes(f, &nwp, 8);
    ok = ok && writeBytes(f, writtenPages.data(),
                          nwp * sizeof(PageNum));
    for (const auto &t : perThread) {
        std::uint64_t n = t.size();
        ok = ok && writeBytes(f, &n, 8);
        ok = ok && writeBytes(f, t.data(), n * sizeof(MemRecord));
    }
    std::fclose(f);
    return ok;
}

bool
WorkloadTrace::load(const std::string &path)
{
    // Whole-file slurp through the shared checked helper, then
    // parse with the ByteReader cursor (like decodeColumnar): every
    // count is bounded by the bytes actually present, so a corrupt
    // or truncated file can never drive an allocation past the
    // file size.
    std::vector<std::uint8_t> bytes;
    if (!readFileBytes(path, bytes))
        return false;

    ByteReader r(bytes.data(), bytes.size());
    std::uint64_t m = 0, name_len = 0, nthreads = 0;
    if (!r.getU64(m) || m != magic)
        return false;
    if (!r.getU64(name_len) || name_len > r.remaining())
        return false;
    workload.resize(static_cast<std::size_t>(name_len));
    if (!r.getBytes(workload.data(), workload.size()))
        return false;
    if (!r.getU64(nthreads) || nthreads > 1024)
        return false;
    if (!r.getU64(instructionsPerThread) ||
        !r.getU64(footprintBytes))
        return false;
    threads = static_cast<int>(nthreads);

    std::uint64_t nft = 0;
    if (!r.getU64(nft) || nft > r.remaining() / sizeof(FirstTouch))
        return false;
    firstTouches.resize(static_cast<std::size_t>(nft));
    if (!r.getBytes(firstTouches.data(),
                    firstTouches.size() * sizeof(FirstTouch)))
        return false;

    std::uint64_t nwp = 0;
    if (!r.getU64(nwp) || nwp > r.remaining() / sizeof(PageNum))
        return false;
    writtenPages.resize(static_cast<std::size_t>(nwp));
    if (!r.getBytes(writtenPages.data(),
                    writtenPages.size() * sizeof(PageNum)))
        return false;

    perThread.assign(static_cast<std::size_t>(nthreads), {});
    for (auto &t : perThread) {
        std::uint64_t n = 0;
        if (!r.getU64(n) || n > r.remaining() / sizeof(MemRecord))
            return false;
        t.resize(static_cast<std::size_t>(n));
        if (!r.getBytes(t.data(), t.size() * sizeof(MemRecord)))
            return false;
    }
    return true;
}

std::string
traceCacheDir()
{
    const char *env = std::getenv("STARNUMA_TRACE_DIR");
    std::string dir = env ? env : ".trace_cache";
    if (dir.empty() || dir == "0" || dir == "off")
        return "";
    ::mkdir(dir.c_str(), 0755);
    return dir;
}

} // namespace trace
} // namespace starnuma
