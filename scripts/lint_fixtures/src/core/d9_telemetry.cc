// Fixture: D9 telemetry sampling discipline. Mirrors the
// obs::TimeSeries contract — the per-epoch flush is cold-annotated
// (amortized off the per-access path) and passes; sampling inline
// from the hot loop allocates per record and is flagged.

namespace starnuma
{

struct FixtureSeries
{
    unsigned long last;
};

// lint: cold-path per-epoch flush, amortized off the per-access path
void
fixtureEpochFlush(FixtureSeries &s, unsigned long v)
{
    double *col = new double[4];
    col[0] = static_cast<double>(v);
    s.last = v;
    delete[] col;
}

// Reached from the hot root with no escape: a per-sample allocation
// in the replay loop is exactly what D9 exists to catch.
void
fixtureInlineSample(FixtureSeries &s, unsigned long v)
{
    double *rec = new double(static_cast<double>(v)); // expect-lint: D9
    s.last = v + static_cast<unsigned long>(*rec);
    delete rec;
}

// lint: hot-path fixture root modeling a replay loop that samples
int
fixtureReplayLoop(FixtureSeries &s, int n)
{
    for (int i = 0; i < n; ++i)
        fixtureInlineSample(s, static_cast<unsigned long>(i));
    fixtureEpochFlush(s, static_cast<unsigned long>(n));
    return static_cast<int>(s.last);
}

} // namespace starnuma
