#!/usr/bin/env bash
# Run every static check (DESIGN.md §8, §10) and exit nonzero on any
# finding:
#
#   1. scripts/starnuma_lint.py      determinism & style rules D1-D5
#                                    plus layering/lock-discipline
#                                    rules D6-D8 (and the fixture
#                                    self-test),
#   2. the STARNUMA_WERROR build     -Wshadow -Wconversion
#                                    -Wdouble-promotion as hard
#                                    errors (host compiler),
#   3. Clang thread-safety build     the same WERROR configuration
#      (if clang++ installed)        under clang++, which adds
#                                    -Wthread-safety
#                                    -Werror=thread-safety over the
#                                    sim/annotations.hh capability
#                                    annotations, and
#   4. clang-tidy (if installed)     bugprone-*/performance-*/
#                                    concurrency-* over the exported
#                                    compile_commands.json.
#
# Each stage reports its wall time, and the lint prints per-rule
# finding counts, so runtime regressions in the gate itself are
# visible from the log.
#
# Usage: scripts/run_lint.sh
set -euo pipefail

cd "$(dirname "$0")/.."

fail=0
stage_t0=0

stage_begin() {
    echo "=== $1 ==="
    stage_t0=$(date +%s)
}

stage_end() {
    local status=$1
    local dt=$(( $(date +%s) - stage_t0 ))
    echo "--- stage took ${dt}s ---"
    if [ "${status}" -ne 0 ]; then
        fail=1
    fi
}

stage_begin "starnuma_lint: rules D1-D8 (self-test + tree)"
status=0
python3 scripts/starnuma_lint.py --self-test || status=1
python3 scripts/starnuma_lint.py || status=1
stage_end "${status}"

stage_begin "STARNUMA_WERROR build"
status=0
cmake -B build-werror -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DSTARNUMA_WERROR=ON >/dev/null
cmake --build build-werror -j "$(nproc)" || status=1
stage_end "${status}"

if command -v clang++ >/dev/null 2>&1; then
    stage_begin "Clang thread-safety build (-Werror=thread-safety)"
    status=0
    cmake -B build-werror-clang -S . \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCMAKE_CXX_COMPILER=clang++ \
        -DSTARNUMA_WERROR=ON >/dev/null
    cmake --build build-werror-clang -j "$(nproc)" || status=1
    stage_end "${status}"
else
    echo "=== clang++ not installed; skipping thread-safety build" \
         "(gate is advisory on machines without LLVM) ==="
fi

if command -v clang-tidy >/dev/null 2>&1; then
    stage_begin "clang-tidy (bugprone-*, performance-*, concurrency-*)"
    status=0
    # The WERROR tree configured above exports the compilation
    # database; run over the library sources (tests inherit via
    # headers through HeaderFilterRegex).
    mapfile -t srcs < <(find src -name '*.cc' | sort)
    if command -v run-clang-tidy >/dev/null 2>&1; then
        run-clang-tidy -quiet -p build-werror "${srcs[@]}" || status=1
    else
        clang-tidy -quiet -p build-werror "${srcs[@]}" || status=1
    fi
    stage_end "${status}"
else
    echo "=== clang-tidy not installed; skipping (gate is" \
         "advisory on machines without LLVM) ==="
fi

if [ "${fail}" -ne 0 ]; then
    echo "=== lint FAILED ==="
    exit 1
fi
echo "=== all lint checks clean ==="
