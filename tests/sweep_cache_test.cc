/**
 * @file
 * Incremental sweep engine (DESIGN.md §16): cache-key stability
 * goldens (each declared input perturbs the key; nothing else
 * does), warm-equals-cold byte identity across worker-pool sizes,
 * differential re-simulation from the first divergent phase, and
 * the corruption contract at the experiment tier (a damaged stored
 * bundle demotes to recomputation with identical artifacts).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "driver/artifact_cache.hh"
#include "driver/artifact_key.hh"
#include "driver/experiment.hh"
#include "driver/trace_sim.hh"
#include "sim/cas/hash.hh"
#include "sim/obs/obs.hh"
#include "sim/parallel.hh"
#include "sim/scale.hh"

namespace starnuma
{
namespace
{

/** Fresh-store RAII: every test runs against its own emptied cache
 *  directory and leaves the process-global cache disabled. */
struct ScopedCache
{
    explicit ScopedCache(const std::string &name)
    {
        driver::ArtifactCache &c = driver::ArtifactCache::global();
        c.enable(testing::TempDir() + name);
        c.store()->trim(0);
        c.resetCounters();
    }
    ~ScopedCache()
    {
        driver::ArtifactCache::global().store()->trim(0);
        driver::ArtifactCache::global().disable();
    }
};

cas::Hash128
fakeContent()
{
    return cas::hashString("trace-content-fixture");
}

// --- cache-key stability -------------------------------------------

TEST(CacheKey, TraceKeyPerturbation)
{
    SimScale s = SimScale::tiny();
    std::string base = driver::traceKeyText("bfs", s);
    // Deterministic: same inputs, same key text.
    EXPECT_EQ(base, driver::traceKeyText("bfs", s));
    EXPECT_NE(base, driver::traceKeyText("tc", s));

    // Every scale knob folds into the "scale" fingerprint.
    SimScale s2 = s;
    s2.phaseInstructions += 1;
    EXPECT_NE(base, driver::traceKeyText("bfs", s2));
    SimScale s3 = s;
    s3.coresPerSocket *= 2;
    EXPECT_NE(base, driver::traceKeyText("bfs", s3));

    // The key is self-describing "field=value" text.
    EXPECT_NE(base.find("kind=step_a_trace\n"), std::string::npos);
    EXPECT_NE(base.find("workload.name=bfs\n"), std::string::npos);
    EXPECT_NE(base.find("code.epoch="), std::string::npos);
    EXPECT_NE(base.find("env.STARNUMA_THREADS=invariant\n"),
              std::string::npos);
}

TEST(CacheKey, ResultKeyPerturbation)
{
    SimScale s = SimScale::tiny();
    driver::SystemSetup setup = driver::SystemSetup::starnuma();
    std::string base = driver::resultKeyText("bfs", setup, s,
                                             fakeContent(), false);
    EXPECT_EQ(base, driver::resultKeyText("bfs", setup, s,
                                          fakeContent(), false));

    // Each declared input moves the key.
    EXPECT_NE(base, driver::resultKeyText("tc", setup, s,
                                          fakeContent(), false));
    EXPECT_NE(base, driver::resultKeyText(
                        "bfs", setup, s,
                        cas::hashString("other-trace"), false));
    EXPECT_NE(base, driver::resultKeyText("bfs", setup, s,
                                          fakeContent(), true));

    driver::SystemSetup pol = setup;
    pol.migration.hiThresholdStart += 1;
    EXPECT_NE(base, driver::resultKeyText("bfs", pol, s,
                                          fakeContent(), false));
    driver::SystemSetup topo = setup;
    topo.sys.cxlOneWayNs += 1.0;
    EXPECT_NE(base, driver::resultKeyText("bfs", topo, s,
                                          fakeContent(), false));
    driver::SystemSetup sched = setup;
    sched.phasePolicies.push_back({1, 0.5, 4});
    EXPECT_NE(base, driver::resultKeyText("bfs", sched, s,
                                          fakeContent(), false));
}

/**
 * The state key's policy fingerprint covers exactly the schedule
 * *prefix* applied before the snapshot phase — the property the
 * differential resume leans on: cells diverging at phase k share
 * every state object at phases <= k.
 */
TEST(CacheKey, StateKeyCoversOnlyThePolicyPrefix)
{
    SimScale s = SimScale::tiny();
    driver::SystemSetup shared = driver::SystemSetup::starnuma();
    driver::SystemSetup diverged = shared;
    diverged.phasePolicies.push_back({1, 0.10, 2});

    // Phase 1 precedes the divergence: identical keys.
    EXPECT_EQ(driver::stateKeyText("bfs", shared, s, fakeContent(),
                                   1),
              driver::stateKeyText("bfs", diverged, s,
                                   fakeContent(), 1));
    // A later phase sees the diverged prefix: different keys.
    EXPECT_NE(driver::stateKeyText("bfs", shared, s, fakeContent(),
                                   2),
              driver::stateKeyText("bfs", diverged, s,
                                   fakeContent(), 2));
    // Phases key separately.
    EXPECT_NE(driver::stateKeyText("bfs", shared, s, fakeContent(),
                                   1),
              driver::stateKeyText("bfs", shared, s, fakeContent(),
                                   2));
}

// --- experiment-tier behaviour -------------------------------------

std::vector<std::uint8_t>
placementBytes(const driver::ExperimentResult &r)
{
    return r.placement.serialize();
}

TEST(SweepCache, WarmResultHitIsByteIdentical)
{
    SimScale s = SimScale::tiny();
    driver::SystemSetup setup = driver::SystemSetup::starnuma();
    // Reference: the exact artifacts an uncached run produces.
    driver::ArtifactCache::global().disable();
    driver::ExperimentResult ref =
        driver::runExperiment("tc", setup, s);

    ScopedCache cache_dir("sweep_cache_hit");
    driver::ArtifactCache &cache = driver::ArtifactCache::global();

    driver::ExperimentResult cold =
        driver::runExperiment("tc", setup, s);
    EXPECT_EQ(cache.resultMisses(), 1u);
    EXPECT_EQ(cache.resultHits(), 0u);
    EXPECT_EQ(placementBytes(cold), placementBytes(ref));

    driver::ExperimentResult warm =
        driver::runExperiment("tc", setup, s);
    EXPECT_EQ(cache.resultHits(), 1u);
    EXPECT_EQ(placementBytes(warm), placementBytes(ref));
    EXPECT_EQ(driver::metricsSnapshot(warm.metrics).values(),
              driver::metricsSnapshot(ref.metrics).values());
}

TEST(SweepCache, WarmEqualsColdAcrossPoolSizes)
{
    SimScale s = SimScale::tiny();
    driver::SystemSetup setup = driver::SystemSetup::starnuma();
    ScopedCache cache_dir("sweep_cache_pools");

    ThreadPool::setGlobalThreads(1);
    driver::ExperimentResult cold =
        driver::runExperiment("bfs", setup, s);
    std::vector<std::uint8_t> cold_bytes = placementBytes(cold);
    auto cold_metrics =
        driver::metricsSnapshot(cold.metrics).values();
    EXPECT_FALSE(cold_bytes.empty());

    // The store is keyed by deterministic inputs only, so a pool
    // of any size replays the cold artifacts bit-for-bit.
    for (int pool_size : {4, 8}) {
        SCOPED_TRACE("pool=" + std::to_string(pool_size));
        ThreadPool::setGlobalThreads(pool_size);
        driver::ExperimentResult warm =
            driver::runExperiment("bfs", setup, s);
        EXPECT_EQ(placementBytes(warm), cold_bytes);
        EXPECT_EQ(driver::metricsSnapshot(warm.metrics).values(),
                  cold_metrics);
    }
    ThreadPool::setGlobalThreads(0);
    EXPECT_EQ(driver::ArtifactCache::global().resultHits(), 2u);
}

TEST(SweepCache, DivergentPolicyResumesFromSharedPhase)
{
    SimScale s = SimScale::tiny(); // 2 migration phases
    driver::SystemSetup shared = driver::SystemSetup::starnuma();
    // Same name (the replay RNG seeds from it — a differently
    // named setup is a genuinely different simulation), schedule
    // diverging at phase 1.
    driver::SystemSetup diverged = shared;
    diverged.phasePolicies.push_back({1, 0.10, 2});

    // Reference for the diverged cell, no cache anywhere.
    driver::ArtifactCache::global().disable();
    driver::ExperimentResult ref =
        driver::runExperiment("cc", diverged, s);

    ScopedCache cache_dir("sweep_cache_diverge");
    driver::ArtifactCache &cache = driver::ArtifactCache::global();

    // Cold pass of the shared-prefix cell persists its phase-1
    // state under the shared policy-prefix key.
    driver::runExperiment("cc", shared, s);
    EXPECT_EQ(cache.partialHits(), 0u);

    // The diverged cell misses at the result tier but finds the
    // phase-1 state: differential re-simulation from phase 1.
    driver::ExperimentResult out =
        driver::runExperiment("cc", diverged, s);
    EXPECT_EQ(cache.partialHits(), 1u);
    EXPECT_GE(cache.phasesSkipped(), 1u);
    EXPECT_EQ(out.placement.resumedFromPhase, 1);
    EXPECT_EQ(placementBytes(out), placementBytes(ref));
    EXPECT_EQ(driver::metricsSnapshot(out.metrics).values(),
              driver::metricsSnapshot(ref.metrics).values());
}

TEST(SweepCache, CorruptedBundleDemotesToRecompute)
{
    SimScale s = SimScale::tiny();
    driver::SystemSetup setup = driver::SystemSetup::starnuma();
    ScopedCache cache_dir("sweep_cache_corrupt");
    driver::ArtifactCache &cache = driver::ArtifactCache::global();
    std::shared_ptr<cas::Store> store = cache.store();

    driver::ExperimentResult cold =
        driver::runExperiment("fmi", setup, s);
    std::vector<std::uint8_t> cold_bytes = placementBytes(cold);

    // Flip one byte in the middle of every stored object.
    for (const std::string &rel : store->listObjects()) {
        std::string path = store->directory() + "/" + rel;
        std::FILE *f = std::fopen(path.c_str(), "r+b");
        ASSERT_NE(f, nullptr);
        std::fseek(f, 0, SEEK_END);
        long size = std::ftell(f);
        ASSERT_GT(size, 0);
        std::fseek(f, size / 2, SEEK_SET);
        int c = std::fgetc(f);
        std::fseek(f, size / 2, SEEK_SET);
        std::fputc(c ^ 0x55, f);
        std::fclose(f);
    }

    cache.resetCounters();
    driver::ExperimentResult redo =
        driver::runExperiment("fmi", setup, s);
    EXPECT_EQ(cache.resultHits(), 0u);
    EXPECT_EQ(cache.partialHits(), 0u);
    EXPECT_EQ(cache.resultMisses(), 1u);
    EXPECT_EQ(placementBytes(redo), cold_bytes);
}

TEST(SweepCache, TraceTierCountsCaptures)
{
    // The process-wide trace memo makes per-test trace-tier
    // assertions order-dependent, so assert only the monotone
    // contract: captures never decrease, and a memoized workload
    // is not re-captured by a second lookup.
    SimScale s = SimScale::tiny();
    std::uint64_t before = driver::workloadTraceCaptures();
    driver::workloadTrace("tc", s);
    std::uint64_t after = driver::workloadTraceCaptures();
    EXPECT_GE(after, before);
    driver::workloadTrace("tc", s);
    EXPECT_EQ(driver::workloadTraceCaptures(), after);
}

} // anonymous namespace
} // namespace starnuma
