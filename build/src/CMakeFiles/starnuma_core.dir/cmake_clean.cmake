file(REMOVE_RECURSE
  "CMakeFiles/starnuma_core.dir/core/migration.cc.o"
  "CMakeFiles/starnuma_core.dir/core/migration.cc.o.d"
  "CMakeFiles/starnuma_core.dir/core/oracle.cc.o"
  "CMakeFiles/starnuma_core.dir/core/oracle.cc.o.d"
  "CMakeFiles/starnuma_core.dir/core/page_stats.cc.o"
  "CMakeFiles/starnuma_core.dir/core/page_stats.cc.o.d"
  "CMakeFiles/starnuma_core.dir/core/perfect_policy.cc.o"
  "CMakeFiles/starnuma_core.dir/core/perfect_policy.cc.o.d"
  "CMakeFiles/starnuma_core.dir/core/region_tracker.cc.o"
  "CMakeFiles/starnuma_core.dir/core/region_tracker.cc.o.d"
  "CMakeFiles/starnuma_core.dir/core/replication.cc.o"
  "CMakeFiles/starnuma_core.dir/core/replication.cc.o.d"
  "CMakeFiles/starnuma_core.dir/core/tlb_annex.cc.o"
  "CMakeFiles/starnuma_core.dir/core/tlb_annex.cc.o.d"
  "CMakeFiles/starnuma_core.dir/core/tlb_directory.cc.o"
  "CMakeFiles/starnuma_core.dir/core/tlb_directory.cc.o.d"
  "libstarnuma_core.a"
  "libstarnuma_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starnuma_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
