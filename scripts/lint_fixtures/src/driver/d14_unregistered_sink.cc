// Fixture: D14 sink-registration discipline. A time-series emission
// in a function that is neither a cold-annotated root nor reachable
// from one is flagged; an emission reached from a cold root and a
// reviewed `// lint: sink-ok` line pass.
// Never compiled; consumed by starnuma_taint.py --self-test.

namespace starnuma
{

struct TimeSeries;

// No root anywhere above this: an unguarded emission that a hot
// loop could call freely.
void
d14HotEmit(TimeSeries &series, int stream, double v)
{
    series.sample(stream, 0, v); // expect-lint: D14
}

// Reachable only from the cold root below: fine.
void
d14ReachableEmit(TimeSeries &series, int stream, double v)
{
    series.sample(stream, 1, v);
}

// lint: cold-path fixture: registration root
void
d14ColdRoot(TimeSeries &series)
{
    d14ReachableEmit(series, 0, 0.5);
}

// Line-level escape for a reviewed emission site.
void
d14EscapedEmit(TimeSeries &series, int stream, double v)
{
    // lint: sink-ok fixture: reviewed emission
    series.sample(stream, 2, v);
}

} // namespace starnuma
