/**
 * @file
 * Per-page, per-socket access counting. This is the "zero-cost
 * per-socket knowledge of all accesses to every 4KB page" the paper
 * grants the baseline's migration policy (§IV-C), and the input to
 * the oracular static placement of §V-B. It is deliberately *not*
 * hardware-feasible — that is the point of the comparison with
 * StarNUMA's region-granular T_i trackers.
 *
 * This sits on the baseline's per-record hot path, so the counter
 * blocks live in arena-backed flat storage: one FlatMap probe finds
 * the page's block, and the per-socket counters are a contiguous
 * uint32_t array bump-allocated from a chained arena (one malloc'd
 * vector per page would dominate the replay profile).
 */

#ifndef STARNUMA_CORE_PAGE_STATS_HH
#define STARNUMA_CORE_PAGE_STATS_HH

#include <cstdint>
#include <vector>

#include "sim/annotations.hh"
#include "sim/arena.hh"
#include "sim/flat_map.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace starnuma
{
namespace core
{

/** Exact per-socket access counts for every touched page. */
class PageAccessStats
{
  public:
    explicit PageAccessStats(int sockets);

    /**
     * Switch to flat-table storage over page numbers
     * [base, base + pages). Must be called while no access is
     * recorded; every page recorded afterwards must fall in the
     * range. Iteration order (first-access order) is unchanged.
     */
    void preallocate(PageNum base, std::size_t pages);

    /** Count @p count accesses to page @p page by @p socket. */
    // lint: hot-path one count per replayed record batch (baseline)
    void
    record(PageNum page, NodeId socket, std::uint32_t count = 1)
    {
        std::uint32_t *block;
        if (flat.empty()) {
            auto [it, inserted] =
                pageCounts.try_emplace(page, nullptr);
            if (inserted)
                it->second = newBlock();
            block = it->second;
        } else {
            std::uint32_t *&slot = flat[flatSlot(page)];
            if (!slot) {
                slot = newBlock();
                noteFirstAccess(page);
            }
            block = slot;
        }
        block[socket] += count;
    }

    /** Total accesses to @p page across sockets. */
    std::uint64_t totalAccesses(PageNum page) const;

    /** Number of distinct sockets that accessed @p page. */
    int sharers(PageNum page) const;

    /** Socket with the most accesses to @p page (-1 if untouched). */
    NodeId majoritySocket(PageNum page) const;

    /** Pages with at least one access. */
    std::size_t
    touchedPages() const
    {
        return flat.empty() ? pageCounts.size() : order.size();
    }

    int sockets() const { return sockets_; }

    /**
     * Visit (page, per-socket counts) for every touched page, in
     * first-access order; @p counts points at sockets() entries.
     */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        if (flat.empty()) {
            for (const auto &[page, counts] : pageCounts)
                fn(page,
                   static_cast<const std::uint32_t *>(counts));
        } else {
            for (PageNum page : order)
                fn(page, static_cast<const std::uint32_t *>(
                             flat[page.value() -
                                  flatBase.value()]));
        }
    }

    /** Drop all counts; arena storage is reused for the next phase. */
    void reset();

  private:
    /** A zeroed sockets_-wide counter block from the arena chain. */
    std::uint32_t *newBlock();

    /**
     * Out-of-line first-access append: keeps the vector's
     * reallocation machinery (and its operator new call) out of the
     * record() hot symbol, which scripts/check_hotpath_syms.sh
     * verifies at the binary level. Capacity is reserved in
     * preallocate(), so the push never actually reallocates.
     */
    // lint: cold-path capacity reserved in preallocate()
    STARNUMA_COLD_PATH void
    noteFirstAccess(PageNum page)
    {
        order.push_back(page);
    }

    /** Block of @p page in either mode (null if untouched). */
    const std::uint32_t *findBlock(PageNum page) const;

    /** Flat-mode slot of @p page (panics when out of range). */
    std::size_t
    flatSlot(PageNum page) const
    {
        std::uint64_t slot = page.value() - flatBase.value();
        sn_assert(slot < flat.size(),
                  "page outside the preallocated range");
        return static_cast<std::size_t>(slot);
    }

    int sockets_;
    FlatMap<PageNum, std::uint32_t *> pageCounts;
    std::vector<std::uint32_t *> flat; // flat mode: block per slot
    std::vector<PageNum> order;        // flat mode: access order
    PageNum flatBase{0};
    std::vector<Arena> arenas;
};

} // namespace core
} // namespace starnuma

#endif // STARNUMA_CORE_PAGE_STATS_HH
