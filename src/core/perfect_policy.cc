#include "core/perfect_policy.hh"

#include <algorithm>

namespace starnuma
{
namespace core
{

PerfectPagePolicy::PerfectPagePolicy(
    int sockets, std::uint32_t migration_limit_pages,
    std::uint32_t min_accesses)
    : stats(sockets), limit(migration_limit_pages),
      minAccesses(min_accesses), migrated_(0)
{
}

// lint: cold-path end-of-phase decision, runs once per phase
std::vector<PageMigration>
PerfectPagePolicy::decidePhase(mem::PageMap &pages)
{
    struct Candidate
    {
        PageNum page;
        NodeId from;
        NodeId to;
        std::uint64_t heat;
    };

    std::vector<Candidate> candidates;
    stats.forEach([&](PageNum page, const std::uint32_t *counts) {
        std::uint64_t total = 0;
        NodeId best = 0;
        for (int s = 0; s < stats.sockets(); ++s) {
            total += counts[s];
            if (counts[s] > counts[best])
                best = s;
        }
        if (total < minAccesses)
            return;
        NodeId curr = pages.home(page);
        if (curr == mem::invalidNode || curr == best)
            return;
        candidates.push_back({page, curr, best, total});
    });

    // Perfect knowledge lets the baseline spend its budget on the
    // pages where it matters most.
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate &a, const Candidate &b) {
                  if (a.heat != b.heat)
                      return a.heat > b.heat;
                  return a.page < b.page;
              });
    if (candidates.size() > limit)
        candidates.resize(limit);

    std::vector<PageMigration> plan;
    plan.reserve(candidates.size());
    for (const Candidate &c : candidates) {
        pages.setHome(c.page, c.to);
        plan.push_back({c.page, c.from, c.to});
        ++migrated_;
    }
    stats.reset();
    return plan;
}

} // namespace core
} // namespace starnuma
