/**
 * @file
 * Content-addressed artifact store (sim/cas/, DESIGN.md §16): hash
 * goldens pinning the FNV-1a-128 twin shared with
 * scripts/cas_tool.py, object round-trips, and the corruption
 * contract — every truncation prefix and every single-byte flip of
 * a stored object must demote to a clean miss, never a wrong
 * payload or undefined behaviour (the suite runs under ASan in the
 * sanitizer CI stage).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/cas/hash.hh"
#include "sim/cas/store.hh"

namespace starnuma
{
namespace
{

std::vector<std::uint8_t>
bytes(const std::string &s)
{
    return std::vector<std::uint8_t>(s.begin(), s.end());
}

std::string
readFile(const std::string &path)
{
    std::string out;
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return out;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        out.append(buf, n);
    std::fclose(f);
    return out;
}

bool
writeFile(const std::string &path, const std::string &blob)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    std::size_t n = std::fwrite(blob.data(), 1, blob.size(), f);
    std::fclose(f);
    return n == blob.size();
}

/**
 * Golden digests, independently derivable with the Python twin
 * (scripts/gen_code_epoch.py fnv1a128): the empty input pins the
 * offset basis, the other two pin the byte-at-a-time mixing. A
 * mismatch here means the store and cas_tool.py no longer agree on
 * addresses and every cross-audit silently breaks.
 */
TEST(CasHash, PinnedGoldens)
{
    EXPECT_EQ(cas::hashString("").hex(),
              "6c62272e07bb014262b821756295c58d");
    EXPECT_EQ(cas::hashString("starnuma").hex(),
              "54b80c2dc2659bafa30a2f62ddd7e422");
    EXPECT_EQ(cas::hashString("starnumb").hex(),
              "54b80c2dc1659bafa30a2f62ddd7e2e7");
}

TEST(CasHash, StreamingMatchesOneShot)
{
    cas::Hasher h;
    h.update(std::string("star"));
    h.update(std::string("numa"));
    EXPECT_EQ(h.digest().hex(), cas::hashString("starnuma").hex());
    EXPECT_NE(cas::hashString("a").hex(),
              cas::hashString("b").hex());
}

TEST(CasStore, RoundTripAndProbes)
{
    cas::Store store(testing::TempDir() + "cas_rt_store");
    store.trim(0);

    std::string key = "kind=test\nname=roundtrip\n";
    std::vector<std::uint8_t> payload = bytes("payload bytes 123");
    EXPECT_FALSE(store.containsObject(key));
    std::vector<std::uint8_t> out;
    EXPECT_FALSE(store.fetchObject(key, out));

    EXPECT_TRUE(store.putObject(key, payload));
    EXPECT_TRUE(store.containsObject(key));
    EXPECT_TRUE(store.fetchObject(key, out));
    EXPECT_EQ(out, payload);
    EXPECT_TRUE(cas::Store::verifyObject(store.objectPath(key)));

    // Distinct keys address distinct objects; same payload is fine.
    std::string key2 = "kind=test\nname=roundtrip2\n";
    EXPECT_TRUE(store.putObject(key2, payload));
    EXPECT_NE(store.objectPath(key), store.objectPath(key2));
    EXPECT_EQ(store.listObjects().size(), 2u);

    // Overwrite with new content: fetch returns the newest.
    std::vector<std::uint8_t> payload2 = bytes("other");
    EXPECT_TRUE(store.putObject(key, payload2));
    EXPECT_TRUE(store.fetchObject(key, out));
    EXPECT_EQ(out, payload2);
    store.trim(0);
    EXPECT_TRUE(store.listObjects().empty());
}

TEST(CasStore, EmptyPayloadAndEmptyKey)
{
    cas::Store store(testing::TempDir() + "cas_empty_store");
    store.trim(0);
    std::vector<std::uint8_t> out;
    EXPECT_TRUE(store.putObject("", {}));
    EXPECT_TRUE(store.fetchObject("", out));
    EXPECT_TRUE(out.empty());
    store.trim(0);
}

/** Every truncation prefix of a valid object is a clean miss. */
TEST(CasStore, TruncationFuzzIsCleanMiss)
{
    cas::Store store(testing::TempDir() + "cas_trunc_store");
    store.trim(0);
    std::string key = "kind=test\nname=trunc\n";
    ASSERT_TRUE(store.putObject(key, bytes("0123456789abcdef")));
    std::string path = store.objectPath(key);
    std::string whole = readFile(path);
    ASSERT_GT(whole.size(), 48u);

    std::vector<std::uint8_t> out;
    for (std::size_t len = 0; len < whole.size(); ++len) {
        ASSERT_TRUE(writeFile(path, whole.substr(0, len)));
        out.assign(1, 0xAA); // poison: a miss must not leak it out
        EXPECT_FALSE(store.fetchObject(key, out))
            << "prefix length " << len;
        EXPECT_FALSE(cas::Store::verifyObject(path))
            << "prefix length " << len;
    }
    ASSERT_TRUE(writeFile(path, whole));
    EXPECT_TRUE(store.fetchObject(key, out));
    store.trim(0);
}

/** Every single-byte flip of a valid object is a clean miss — the
 *  header, the embedded key and the payload are all covered by a
 *  verified field. */
TEST(CasStore, BitFlipFuzzIsCleanMiss)
{
    cas::Store store(testing::TempDir() + "cas_flip_store");
    store.trim(0);
    std::string key = "kind=test\nname=flip\n";
    ASSERT_TRUE(store.putObject(key, bytes("payload-under-test")));
    std::string path = store.objectPath(key);
    std::string whole = readFile(path);

    std::vector<std::uint8_t> out;
    for (std::size_t i = 0; i < whole.size(); ++i) {
        std::string mutated = whole;
        mutated[i] = static_cast<char>(mutated[i] ^ 0x41);
        ASSERT_TRUE(writeFile(path, mutated));
        EXPECT_FALSE(store.fetchObject(key, out))
            << "flipped byte " << i;
    }
    ASSERT_TRUE(writeFile(path, whole));
    EXPECT_TRUE(store.fetchObject(key, out));
    store.trim(0);
}

TEST(CasStore, TrimEvictsDownToBudget)
{
    cas::Store store(testing::TempDir() + "cas_trim_store");
    store.trim(0);
    for (int i = 0; i < 8; ++i)
        ASSERT_TRUE(store.putObject(
            "kind=test\nname=trim" + std::to_string(i) + "\n",
            std::vector<std::uint8_t>(256, 0x5A)));
    ASSERT_EQ(store.listObjects().size(), 8u);

    // A generous budget keeps everything; zero empties the store.
    EXPECT_EQ(store.trim(1u << 30), 0u);
    EXPECT_EQ(store.listObjects().size(), 8u);
    EXPECT_GT(store.trim(600), 0u);
    EXPECT_LT(store.listObjects().size(), 8u);
    store.trim(0);
    EXPECT_TRUE(store.listObjects().empty());
}

} // anonymous namespace
} // namespace starnuma
