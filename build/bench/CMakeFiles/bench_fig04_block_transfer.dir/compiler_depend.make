# Empty compiler generated dependencies file for bench_fig04_block_transfer.
# This may be replaced when dependencies are built.
