file(REMOVE_RECURSE
  "CMakeFiles/example_starnuma_cli.dir/starnuma_cli.cpp.o"
  "CMakeFiles/example_starnuma_cli.dir/starnuma_cli.cpp.o.d"
  "example_starnuma_cli"
  "example_starnuma_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_starnuma_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
