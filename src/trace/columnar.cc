#include "trace/columnar.hh"

#include <algorithm>
#include <cstdio>

namespace starnuma
{
namespace trace
{

namespace
{

constexpr std::uint64_t columnarMagic =
    0x53544152434f4c32ULL; // "STARCOL2"
constexpr std::uint64_t columnarVersion = 2;

/** Upper bound accepted for any length field: a count larger than
 *  the remaining bytes cannot be real (every element costs at least
 *  one byte), so fuzzer-supplied counts never drive allocations. */
bool
plausibleCount(std::uint64_t n, const ByteReader &r)
{
    return n <= r.remaining();
}

} // anonymous namespace

// lint: artifact-root step_a_trace
std::vector<std::uint8_t>
encodeColumnar(const WorkloadTrace &t)
{
    std::vector<std::uint8_t> out;
    // Rough size guess: ~4 bytes per record after delta coding.
    out.reserve(64 + t.workload.size() +
                static_cast<std::size_t>(t.totalRecords()) * 4);

    putVarint(out, columnarMagic);
    putVarint(out, columnarVersion);
    putVarint(out, t.workload.size());
    out.insert(out.end(), t.workload.begin(), t.workload.end());
    putVarint(out, static_cast<std::uint64_t>(t.threads));
    putVarint(out, t.instructionsPerThread);
    putVarint(out, t.footprintBytes);

    // First touches: insertion-ordered page deltas + thread ids.
    putVarint(out, t.firstTouches.size());
    std::uint64_t prev_page = 0;
    for (const FirstTouch &ft : t.firstTouches) {
        std::uint64_t page = ft.page.value();
        putVarint(out, zigzag(static_cast<std::int64_t>(
                            page - prev_page)));
        putVarint(out, static_cast<std::uint64_t>(ft.thread));
        prev_page = page;
    }

    // Written pages (sorted by the capture, so deltas are small).
    putVarint(out, t.writtenPages.size());
    prev_page = 0;
    for (PageNum wp : t.writtenPages) {
        putVarint(out, zigzag(static_cast<std::int64_t>(
                            wp.value() - prev_page)));
        prev_page = wp.value();
    }

    // Per-thread SoA record columns.
    for (const auto &recs : t.perThread) {
        putVarint(out, recs.size());
        // Column 1: instruction-count deltas (nondecreasing, so
        // the wrapping unsigned delta is the value itself).
        std::uint64_t prev = 0;
        for (const MemRecord &r : recs) {
            putVarint(out, r.instr - prev);
            prev = r.instr;
        }
        // Column 2: zigzag address deltas.
        prev = 0;
        for (const MemRecord &r : recs) {
            putVarint(out, zigzag(static_cast<std::int64_t>(
                                r.vaddr() - prev)));
            prev = r.vaddr();
        }
        // Column 3: write flags, 8 per byte.
        std::uint8_t bits = 0;
        int filled = 0;
        for (const MemRecord &r : recs) {
            bits = static_cast<std::uint8_t>(
                bits |
                (static_cast<unsigned>(r.isWrite()) << filled));
            if (++filled == 8) {
                out.push_back(bits);
                bits = 0;
                filled = 0;
            }
        }
        if (filled)
            out.push_back(bits);
    }
    return out;
}

// lint: hot-path decode inner loops run once per trace record; the
// only allocations are the count-bounded up-front ones marked below.
bool
decodeColumnar(const std::uint8_t *data, std::size_t size,
               WorkloadTrace &out)
{
    ByteReader r(data, size);
    std::uint64_t magic = 0, version = 0, name_len = 0;
    if (!r.getVarint(magic) || magic != columnarMagic)
        return false;
    if (!r.getVarint(version) || version != columnarVersion)
        return false;
    if (!r.getVarint(name_len) || !plausibleCount(name_len, r))
        return false;
    // lint: cold-path one count-bounded allocation per decode
    out.workload.resize(static_cast<std::size_t>(name_len));
    if (!r.getBytes(out.workload.data(), out.workload.size()))
        return false;

    std::uint64_t threads = 0;
    if (!r.getVarint(threads) || threads > 1024)
        return false;
    out.threads = static_cast<int>(threads);
    if (!r.getVarint(out.instructionsPerThread))
        return false;
    if (!r.getVarint(out.footprintBytes))
        return false;

    // Recompute the page span (not stored in the format) from the
    // pages this decode pass visits anyway.
    std::uint64_t min_page = ~std::uint64_t(0);
    std::uint64_t max_page = 0;

    std::uint64_t n = 0;
    if (!r.getVarint(n) || !plausibleCount(n, r))
        return false;
    out.firstTouches.clear();
    // lint: cold-path one count-bounded allocation per decode
    out.firstTouches.reserve(static_cast<std::size_t>(n));
    std::uint64_t prev_page = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
        std::uint64_t dpage = 0, thread = 0;
        if (!r.getVarint(dpage) || !r.getVarint(thread) ||
            thread >= threads)
            return false;
        prev_page += static_cast<std::uint64_t>(unzigzag(dpage));
        min_page = std::min(min_page, prev_page);
        max_page = std::max(max_page, prev_page);
        // lint: cold-path capacity reserved above; never grows
        out.firstTouches.push_back(
            {PageNum(prev_page),
             static_cast<ThreadId>(thread)});
    }

    if (!r.getVarint(n) || !plausibleCount(n, r))
        return false;
    out.writtenPages.clear();
    // lint: cold-path one count-bounded allocation per decode
    out.writtenPages.reserve(static_cast<std::size_t>(n));
    prev_page = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
        std::uint64_t dpage = 0;
        if (!r.getVarint(dpage))
            return false;
        prev_page += static_cast<std::uint64_t>(unzigzag(dpage));
        // lint: cold-path capacity reserved above; never grows
        out.writtenPages.push_back(PageNum(prev_page));
    }

    // lint: cold-path one thread-count-bounded allocation per decode
    out.perThread.assign(static_cast<std::size_t>(threads), {});
    for (auto &recs : out.perThread) {
        if (!r.getVarint(n) || !plausibleCount(n, r))
            return false;
        // lint: cold-path one count-bounded allocation per thread
        recs.resize(static_cast<std::size_t>(n));
        std::uint64_t prev = 0;
        for (auto &rec : recs) {
            std::uint64_t d = 0;
            if (!r.getVarint(d))
                return false;
            prev += d;
            rec.instr = prev;
        }
        prev = 0;
        for (auto &rec : recs) {
            std::uint64_t d = 0;
            if (!r.getVarint(d))
                return false;
            prev += static_cast<std::uint64_t>(unzigzag(d));
            rec.packed = prev & ~MemRecord::writeBit;
            std::uint64_t page = pageNumber(rec.packed).value();
            min_page = std::min(min_page, page);
            max_page = std::max(max_page, page);
        }
        std::size_t bitmap_bytes =
            (recs.size() + 7) / 8;
        if (r.remaining() < bitmap_bytes)
            return false;
        for (std::size_t i = 0; i < recs.size(); i += 8) {
            std::uint8_t bits = 0;
            if (!r.getBytes(&bits, 1))
                return false;
            for (std::size_t b = 0;
                 b < 8 && i + b < recs.size(); ++b)
                if (bits & (1u << b))
                    recs[i + b].packed |= MemRecord::writeBit;
        }
    }
    if (min_page <= max_page) {
        out.minPage = PageNum(min_page);
        out.maxPage = PageNum(max_page);
    } else {
        out.minPage = PageNum(0);
        out.maxPage = PageNum(0);
    }
    return true;
}

// lint: artifact-root step_a_trace
bool
saveColumnar(const WorkloadTrace &t, const std::string &path)
{
    std::vector<std::uint8_t> bytes = encodeColumnar(t);
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    bool ok = bytes.empty() ||
              std::fwrite(bytes.data(), 1, bytes.size(), f) ==
                  bytes.size();
    std::fclose(f);
    return ok;
}

bool
readFileBytes(const std::string &path,
              std::vector<std::uint8_t> &out)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    std::fseek(f, 0, SEEK_END);
    long len = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    if (len < 0) {
        std::fclose(f);
        return false;
    }
    out.assign(static_cast<std::size_t>(len), 0);
    bool ok =
        out.empty() ||
        // lint: raw-read the one bulk transfer into the owned
        // buffer; every byte is then parsed through ByteReader.
        std::fread(out.data(), 1, out.size(), f) == out.size();
    std::fclose(f);
    return ok;
}

bool
loadColumnar(WorkloadTrace &t, const std::string &path)
{
    std::vector<std::uint8_t> bytes;
    return readFileBytes(path, bytes) &&
           decodeColumnar(bytes.data(), bytes.size(), t);
}

} // namespace trace
} // namespace starnuma
