#ifndef STARNUMA_CORE_D11_STRONG_TYPES_HH
#define STARNUMA_CORE_D11_STRONG_TYPES_HH

// Fixture: D11 strong-type boundaries — clean. Page/cycle-named
// fields use strong types; the one deliberate raw field carries a
// justified raw-unit annotation.

#include <cstdint>

namespace starnuma
{

// Stand-ins for the sim/types.hh strong types (fixtures are
// self-contained).
struct FixturePageNum
{
    std::uint64_t v;
};

struct FixtureCycles
{
    std::uint64_t v;
};

struct FixtureStrongRecord
{
    FixturePageNum next_page;
    FixtureCycles stall_cycles;
    // lint: raw-unit fixture: interop field mirrors an on-disk format
    std::uint64_t packed_page;
};

} // namespace starnuma

#endif // STARNUMA_CORE_D11_STRONG_TYPES_HH
