/**
 * @file
 * Tests for the closed-form latency analytics: the Fig 3 breakdown,
 * the §III-C block-transfer averages (333 ns / 200 ns), and the
 * §II-C worked AMAT example (160 ns -> 112 ns).
 */

#include <gtest/gtest.h>

#include "analytic/amat.hh"

namespace starnuma
{
namespace analytic
{
namespace
{

using topology::SystemConfig;
using topology::Topology;

TEST(CxlBreakdown, ComponentsSumToOverhead)
{
    SystemConfig cfg = SystemConfig::starnuma16();
    auto parts = cxlLatencyBreakdown(cfg);
    double sum = 0;
    for (const auto &p : parts)
        sum += p.ns;
    // Fig 3: ports 50 + retimer 20 + flight 10 + MHD 20 = 100 ns.
    EXPECT_DOUBLE_EQ(sum, 100.0);
    EXPECT_EQ(parts.size(), 4u);
}

TEST(CxlBreakdown, SwitchedConfigAddsSwitchComponent)
{
    SystemConfig cfg = SystemConfig::starnumaSwitched();
    auto parts = cxlLatencyBreakdown(cfg);
    double sum = 0;
    for (const auto &p : parts)
        sum += p.ns;
    EXPECT_DOUBLE_EQ(sum, 190.0);
    EXPECT_DOUBLE_EQ(parts.back().ns, 90.0); // the CXL switch
}

TEST(CxlBreakdown, EndToEndPoolLatency)
{
    EXPECT_DOUBLE_EQ(
        poolAccessLatencyNs(SystemConfig::starnuma16()), 180.0);
    EXPECT_DOUBLE_EQ(
        poolAccessLatencyNs(SystemConfig::starnumaSwitched()),
        270.0);
}

TEST(BlockTransfer, ThreeHopAverageMatchesPaper)
{
    // §III-C: "the average (unloaded) 3-hop cache block transfer
    // latency is 333ns, derived by averaging the cumulative latency
    // of the three traversed links for all possible R, H, O socket
    // combinations".
    Topology topo(SystemConfig::starnuma16());
    double avg = averageThreeHopNs(topo);
    EXPECT_NEAR(avg, 333.0, 20.0); // measured 315 ns: see EXPERIMENTS.md
}

TEST(BlockTransfer, FourHopViaPoolMatchesPaper)
{
    // §III-C: two roundtrips over two CXL links = 200 ns.
    Topology topo(SystemConfig::starnuma16());
    EXPECT_NEAR(fourHopViaPoolNs(topo), 200.0, 2.0);
}

TEST(BlockTransfer, PoolPathBeatsThreeHopOnAverage)
{
    // The counter-intuitive §III-C result: 4 hops through the pool
    // are faster than the 3-hop socket transfer on average.
    Topology topo(SystemConfig::starnuma16());
    EXPECT_LT(fourHopViaPoolNs(topo), averageThreeHopNs(topo));
}

TEST(FirstOrderAmat, PaperWorkedExample)
{
    // §II-C: 36% of accesses to fully shared pages, uniformly
    // spread -> AMAT 160 ns; placing them in the pool -> 112 ns.
    SystemConfig cfg = SystemConfig::starnuma16();
    EXPECT_NEAR(firstOrderAmatNs(cfg, 0.36, false), 160.0, 1.0);
    EXPECT_NEAR(firstOrderAmatNs(cfg, 0.36, true), 112.0, 1.0);
}

TEST(FirstOrderAmat, NoSharingMeansLocal)
{
    SystemConfig cfg = SystemConfig::starnuma16();
    EXPECT_DOUBLE_EQ(firstOrderAmatNs(cfg, 0.0, false), 80.0);
    EXPECT_DOUBLE_EQ(firstOrderAmatNs(cfg, 0.0, true), 80.0);
}

TEST(FirstOrderAmat, PoolAlwaysWinsForSharedAccesses)
{
    SystemConfig cfg = SystemConfig::starnuma16();
    for (double f : {0.1, 0.3, 0.5, 0.9})
        EXPECT_LT(firstOrderAmatNs(cfg, f, true),
                  firstOrderAmatNs(cfg, f, false))
            << "fraction " << f;
}

} // anonymous namespace
} // namespace analytic
} // namespace starnuma
