/**
 * @file
 * Tests for the three-step driver: trace simulation (checkpoints,
 * first touch, migration plumbing, oracle mode), the timing
 * simulation (latency sanity on synthetic traces, speedup
 * direction), and the experiment API. Uses small hand-built traces
 * so expectations are exact, plus one tiny end-to-end workload run.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "driver/experiment.hh"
#include "driver/system_setup.hh"
#include "driver/timing_sim.hh"
#include "driver/trace_sim.hh"
#include "workloads/gap.hh"

namespace starnuma
{
namespace driver
{
namespace
{

SimScale
tinyScale()
{
    SimScale s;
    s.phases = 2;
    s.phaseInstructions = 20000;
    s.detailFraction = 0.5;
    s.warmupFraction = 0.1;
    return s;
}

/**
 * Synthetic trace: @p shared_pages pages touched by every thread
 * plus one private page per thread; @p accesses records per thread
 * per phase, round-robin over the pages.
 */
trace::WorkloadTrace
syntheticTrace(const SimScale &scale, int shared_pages,
               int accesses_per_phase, bool writes = false)
{
    trace::WorkloadTrace t;
    t.threads = scale.threads();
    t.instructionsPerThread =
        static_cast<std::uint64_t>(scale.phases) *
        scale.phaseInstructions;
    t.perThread.resize(t.threads);

    Addr shared_base = 0x10000000;
    Addr private_base = shared_base +
                        static_cast<Addr>(shared_pages) * pageBytes;
    t.footprintBytes =
        (shared_pages + t.threads) * pageBytes;

    for (ThreadId th = 0; th < t.threads; ++th) {
        // Private page seeded by setup first touch.
        t.firstTouches.push_back(
            {pageNumber(private_base) + PageNum(th), th});
        for (int phase = 0; phase < scale.phases; ++phase) {
            std::uint64_t base =
                static_cast<std::uint64_t>(phase) *
                scale.phaseInstructions;
            std::uint64_t gap =
                scale.phaseInstructions / (accesses_per_phase + 1);
            for (int i = 0; i < accesses_per_phase; ++i) {
                bool to_shared = (i % 2 == 0);
                Addr addr =
                    to_shared
                        ? shared_base +
                              ((i / 2 + th) % shared_pages) *
                                  pageBytes +
                              (i % 64) * blockBytes
                        : private_base + th * pageBytes +
                              (i % 64) * blockBytes;
                t.perThread[th].emplace_back(base + (i + 1) * gap,
                                             addr,
                                             writes && i % 4 == 0);
            }
        }
    }
    for (int p = 0; p < shared_pages; ++p)
        if (writes)
            t.writtenPages.push_back(pageNumber(shared_base) +
                                     PageNum(p));
    return t;
}

TEST(TraceSim, CheckpointsPerPhase)
{
    SimScale s = tinyScale();
    auto trace = syntheticTrace(s, 8, 200);
    SystemSetup setup = SystemSetup::starnuma();
    TraceSim sim(setup, s);
    auto result = sim.run(trace);
    ASSERT_EQ(result.checkpoints.size(),
              static_cast<std::size_t>(s.phases));
    // First checkpoint's map holds only setup first touches.
    EXPECT_EQ(result.checkpoints[0].pageHome.size(),
              static_cast<std::size_t>(s.threads()));
    EXPECT_TRUE(result.checkpoints[0].regionMigrations.empty());
}

TEST(TraceSim, FirstTouchSeedsPrivatePagesLocally)
{
    SimScale s = tinyScale();
    auto trace = syntheticTrace(s, 4, 100);
    SystemSetup setup = SystemSetup::baseline();
    TraceSim sim(setup, s);
    auto result = sim.run(trace);
    PageNum private_page =
        pageNumber(0x10000000 + 4 * pageBytes); // thread 0's page
    auto it = result.checkpoints[0].pageHome.find(private_page);
    ASSERT_NE(it, result.checkpoints[0].pageHome.end());
    EXPECT_EQ(it->second, 0);
}

TEST(TraceSim, StarnumaMigratesSharedPagesToPool)
{
    SimScale s = tinyScale();
    auto trace = syntheticTrace(s, 8, 400);
    SystemSetup setup = SystemSetup::starnuma();
    TraceSim sim(setup, s);
    auto result = sim.run(trace);
    // Pages shared by all 16 sockets end up in the pool, and the
    // later checkpoint reflects that.
    EXPECT_GT(result.pagesInPool, 0u);
    EXPECT_GT(result.poolMigrationFraction, 0.9);
    bool any_pool = false;
    for (const auto &[page, home] :
         result.checkpoints[s.phases - 1].pageHome)
        any_pool |= (home == setup.sys.poolNode());
    EXPECT_TRUE(any_pool);
}

TEST(TraceSim, BaselineNeverUsesPool)
{
    SimScale s = tinyScale();
    auto trace = syntheticTrace(s, 8, 400);
    SystemSetup setup = SystemSetup::baseline();
    TraceSim sim(setup, s);
    auto result = sim.run(trace);
    EXPECT_EQ(result.pagesInPool, 0u);
    for (const auto &cp : result.checkpoints)
        for (const auto &[page, home] : cp.pageHome)
            EXPECT_LT(home, 16);
}

TEST(TraceSim, OracleModeHasNoMigrations)
{
    SimScale s = tinyScale();
    auto trace = syntheticTrace(s, 8, 400);
    SystemSetup setup = SystemSetup::starnumaStatic();
    TraceSim sim(setup, s);
    auto result = sim.run(trace);
    for (const auto &cp : result.checkpoints) {
        EXPECT_TRUE(cp.regionMigrations.empty());
        EXPECT_TRUE(cp.pageMigrations.empty());
    }
    EXPECT_GT(result.pagesInPool, 0u); // shared pages pre-placed
}

TEST(TraceSim, PoolCapacityFractionRespected)
{
    SimScale s = tinyScale();
    auto trace = syntheticTrace(s, 64, 400);
    SystemSetup setup = SystemSetup::starnuma();
    TraceSim sim(setup, s);
    auto result = sim.run(trace);
    EXPECT_LE(result.pagesInPool, result.poolCapacityPages);
    EXPECT_EQ(result.poolCapacityPages,
              static_cast<std::uint64_t>(
                  static_cast<double>(result.footprintPages) *
                  setup.sys.poolCapacityFraction));
}

TEST(TimingSim, AllLocalTraceRunsNearUnloadedLatency)
{
    SimScale s = tinyScale();
    // Only private pages: every access is socket-local.
    auto trace = syntheticTrace(s, 1, 0);
    for (ThreadId th = 0; th < s.threads(); ++th) {
        Addr base = 0x20000000 + th * 64 * pageBytes;
        trace.firstTouches.push_back({pageNumber(base), th});
        for (int i = 0; i < 100; ++i)
            trace.perThread[th].emplace_back(
                (i + 1) * 100, base + (i % 512) * blockBytes,
                false);
    }
    SystemSetup setup = SystemSetup::baseline();
    TraceSim tsim(setup, s);
    auto placement = tsim.run(trace);
    TimingSim timing(setup, s);
    auto m = timing.run(trace, placement);
    EXPECT_GT(m.mix[static_cast<int>(AccessType::Local)], 0.95);
    // Local unloaded is 80 ns; queueing on a near-idle system must
    // stay moderate (same-socket threads share one DRAM channel).
    EXPECT_LT(m.amatNs(), 220.0);
    EXPECT_GE(m.amatNs(), 79.0);
    EXPECT_GT(m.ipc, 0.1);
}

TEST(TimingSim, SharedTraceBenefitsFromPool)
{
    SimScale s = tinyScale();
    auto trace = syntheticTrace(s, 16, 600, /*writes=*/true);

    SystemSetup base = SystemSetup::baseline();
    TraceSim base_tsim(base, s);
    auto base_placement = base_tsim.run(trace);
    TimingSim base_timing(base, s);
    auto base_m = base_timing.run(trace, base_placement);

    SystemSetup star = SystemSetup::starnuma();
    TraceSim star_tsim(star, s);
    auto star_placement = star_tsim.run(trace);
    TimingSim star_timing(star, s);
    auto star_m = star_timing.run(trace, star_placement);

    // The widely shared pages move to the pool: pool accesses
    // appear and the unloaded AMAT component improves.
    EXPECT_GT(star_m.mix[static_cast<int>(AccessType::Pool)],
              0.02);
    EXPECT_LT(star_m.unloadedAmatCycles, base_m.unloadedAmatCycles);
    EXPECT_GE(star_m.speedupOver(base_m), 0.95);
}

TEST(TimingSim, SingleSocketLocalOptionIsFastest)
{
    SimScale s = tinyScale();
    auto trace = syntheticTrace(s, 16, 400);
    SystemSetup setup = SystemSetup::baseline();
    TraceSim tsim(setup, s);
    auto placement = tsim.run(trace);

    TimingSim multi(setup, s);
    auto multi_m = multi.run(trace, placement);

    TimingOptions opt;
    opt.singleSocketLocal = true;
    TimingSim single(setup, s, opt);
    auto single_m = single.run(trace, placement);

    EXPECT_GT(single_m.ipc, multi_m.ipc);
    EXPECT_GT(single_m.mix[static_cast<int>(AccessType::Local)],
              0.99);
}

TEST(TimingSim, MixFractionsSumToOne)
{
    SimScale s = tinyScale();
    auto trace = syntheticTrace(s, 8, 300, true);
    SystemSetup setup = SystemSetup::starnuma();
    TraceSim tsim(setup, s);
    auto placement = tsim.run(trace);
    TimingSim timing(setup, s);
    auto m = timing.run(trace, placement);
    double sum = 0;
    for (double f : m.mix)
        sum += f;
    EXPECT_NEAR(sum, 1.0, 1e-9);
    EXPECT_GT(m.memAccesses, 0u);
}

TEST(Metrics, AccessTypeTables)
{
    EXPECT_STREQ(accessTypeName(AccessType::Pool), "pool");
    EXPECT_STREQ(accessTypeName(AccessType::BtPool), "BT_Pool");
    EXPECT_DOUBLE_EQ(unloadedLatencyNs(AccessType::Local), 80.0);
    EXPECT_DOUBLE_EQ(unloadedLatencyNs(AccessType::TwoHop), 360.0);
    EXPECT_DOUBLE_EQ(unloadedLatencyNs(AccessType::BtSocket),
                     413.0);
    EXPECT_DOUBLE_EQ(unloadedLatencyNs(AccessType::BtPool), 280.0);
}

TEST(Metrics, SpeedupOver)
{
    RunMetrics a, b;
    a.ipc = 0.2;
    b.ipc = 0.1;
    EXPECT_DOUBLE_EQ(a.speedupOver(b), 2.0);
    EXPECT_DOUBLE_EQ(b.speedupOver(a), 0.5);
}

TEST(SystemSetups, NamedConfigurations)
{
    EXPECT_FALSE(SystemSetup::baseline().sys.hasPool);
    EXPECT_TRUE(SystemSetup::starnuma().sys.hasPool);
    EXPECT_EQ(SystemSetup::starnumaT0().migration.counterBits, 0);
    EXPECT_EQ(SystemSetup::baselineStatic().placement,
              Placement::StaticOracle);
    EXPECT_DOUBLE_EQ(
        SystemSetup::starnumaSwitched().sys.poolNs(), 270.0);
    EXPECT_DOUBLE_EQ(SystemSetup::starnumaHalfBW().sys.cxlGbps,
                     3.0);
}

TEST(Experiment, EndToEndTinyWorkload)
{
    // A real (small) BFS through the whole pipeline, both systems.
    SimScale s;
    s.phases = 3;
    s.phaseInstructions = 60000;
    workloads::Bfs bfs(3, /*scale=*/14, /*degree=*/8);
    auto trace = bfs.capture(s);

    SystemSetup base = SystemSetup::baseline();
    TraceSim base_tsim(base, s);
    auto base_p = base_tsim.run(trace);
    TimingSim base_t(base, s);
    auto base_m = base_t.run(trace, base_p);

    SystemSetup star = SystemSetup::starnuma();
    TraceSim star_tsim(star, s);
    auto star_p = star_tsim.run(trace);
    TimingSim star_t(star, s);
    auto star_m = star_t.run(trace, star_p);

    EXPECT_GT(base_m.ipc, 0.0);
    EXPECT_GT(star_m.ipc, 0.0);
    EXPECT_GT(star_m.mix[static_cast<int>(AccessType::Pool)], 0.0);
    EXPECT_GT(base_m.memAccesses, 300u);
    // BFS's shared pages migrate predominantly to the pool.
    EXPECT_GT(star_p.poolMigrationFraction, 0.3);
    EXPECT_GT(star_p.pagesInPool, 0u);
}

TEST(Checkpoints, SaveLoadRoundTrip)
{
    SimScale s = tinyScale();
    auto trace = syntheticTrace(s, 8, 300, true);
    SystemSetup setup = SystemSetup::starnuma();
    TraceSim sim(setup, s);
    auto result = sim.run(trace);

    std::string path = ::testing::TempDir() + "checkpoints.bin";
    ASSERT_TRUE(result.save(path));

    TraceSimResult loaded;
    ASSERT_TRUE(loaded.load(path));
    ASSERT_EQ(loaded.checkpoints.size(),
              result.checkpoints.size());
    EXPECT_EQ(loaded.footprintPages, result.footprintPages);
    EXPECT_EQ(loaded.poolCapacityPages, result.poolCapacityPages);
    EXPECT_DOUBLE_EQ(loaded.poolMigrationFraction,
                     result.poolMigrationFraction);
    for (std::size_t p = 0; p < result.checkpoints.size(); ++p) {
        EXPECT_EQ(loaded.checkpoints[p].pageHome,
                  result.checkpoints[p].pageHome);
        EXPECT_EQ(loaded.checkpoints[p].regionMigrations.size(),
                  result.checkpoints[p].regionMigrations.size());
    }

    // The loaded checkpoints drive an identical timing simulation.
    TimingSim a(setup, s), b(setup, s);
    auto ma = a.run(trace, result);
    auto mb = b.run(trace, loaded);
    EXPECT_DOUBLE_EQ(ma.ipc, mb.ipc);
    EXPECT_DOUBLE_EQ(ma.amatCycles, mb.amatCycles);
    std::remove(path.c_str());
}

TEST(Checkpoints, LoadRejectsGarbage)
{
    std::string path = ::testing::TempDir() + "bad_checkpoints.bin";
    std::FILE *f = std::fopen(path.c_str(), "wb");
    std::fputs("nonsense", f);
    std::fclose(f);
    TraceSimResult r;
    EXPECT_FALSE(r.load(path));
    std::remove(path.c_str());
}

TEST(TimingSim, IndependentPhasesAgreeQualitatively)
{
    SimScale s = tinyScale();
    auto trace = syntheticTrace(s, 16, 500, true);
    SystemSetup setup = SystemSetup::starnuma();
    TraceSim tsim(setup, s);
    auto placement = tsim.run(trace);

    TimingSim seq(setup, s);
    auto seq_m = seq.run(trace, placement);

    TimingOptions par_opt;
    par_opt.independentPhases = true;
    TimingSim par(setup, s, par_opt);
    auto par_m = par.run(trace, placement);

    // Different cache-warmth policy, same system: results agree in
    // structure (mix sums to 1, pool share present, IPC nonzero and
    // within a loose band of the sequential mode).
    double sum = 0;
    for (double f : par_m.mix)
        sum += f;
    EXPECT_NEAR(sum, 1.0, 1e-9);
    EXPECT_GT(par_m.ipc, 0.0);
    EXPECT_GT(par_m.ipc, seq_m.ipc * 0.3);
    EXPECT_LT(par_m.ipc, seq_m.ipc * 3.0);
}

TEST(TimingSim, IndependentPhasesDeterministic)
{
    SimScale s = tinyScale();
    auto trace = syntheticTrace(s, 8, 300);
    SystemSetup setup = SystemSetup::baseline();
    TraceSim tsim(setup, s);
    auto placement = tsim.run(trace);

    TimingOptions opt;
    opt.independentPhases = true;
    TimingSim a(setup, s, opt), b(setup, s, opt);
    auto ma = a.run(trace, placement);
    auto mb = b.run(trace, placement);
    EXPECT_DOUBLE_EQ(ma.ipc, mb.ipc);
    EXPECT_DOUBLE_EQ(ma.amatCycles, mb.amatCycles);
}

} // anonymous namespace
} // namespace driver
} // namespace starnuma
