# Empty dependencies file for starnuma_core.
# This may be replaced when dependencies are built.
