file(REMOVE_RECURSE
  "libstarnuma_driver.a"
)
