/**
 * @file
 * A complete evaluated configuration: the hardware (topology) plus
 * the placement/migration policy. Named factories cover every
 * configuration in §V: the baseline with perfect-knowledge dynamic
 * page migration, StarNUMA with T16 or T0 trackers, the bandwidth
 * and latency variants of Figs 10-11, the pool-capacity variant of
 * Fig 12, and the static-oracle placements of Fig 9.
 */

#ifndef STARNUMA_DRIVER_SYSTEM_SETUP_HH
#define STARNUMA_DRIVER_SYSTEM_SETUP_HH

#include <string>
#include <vector>

#include "core/migration.hh"
#include "core/replication.hh"
#include "topology/system_config.hh"

namespace starnuma
{
namespace driver
{

/** Initial placement / runtime migration strategy. */
enum class Placement
{
    /** First touch + per-phase dynamic migration (§IV-C). */
    FirstTouchDynamic,

    /** Oracular static placement, no runtime migration (§V-B). */
    StaticOracle
};

/**
 * A mid-run policy change (DESIGN.md §16): starting at migration
 * phase @c fromPhase, the listed migration knobs replace the
 * engine's current values. Entries are applied in vector order at
 * the top of each phase, so a sweep cell that diverges from another
 * only at phase k shares every artifact before k — the incremental
 * sweep engine resumes such cells from the first divergent phase.
 */
struct PhasePolicy
{
    int fromPhase = 0;
    double migrationLimitFraction = 0.25;
    int poolSharerThreshold = 8;
};

/** One evaluated configuration. */
struct SystemSetup
{
    std::string name;
    topology::SystemConfig sys;
    core::MigrationConfig migration;
    Placement placement = Placement::FirstTouchDynamic;

    /** Scheduled mid-run policy changes, sorted by fromPhase. */
    std::vector<PhasePolicy> phasePolicies;

    /** Region size used by the tracker/engine. The paper uses 512 KB
     *  at 16 TB of memory; 16 KB keeps a comparable region count at
     *  the scaled-down footprints. */
    Addr regionBytes = 16 * 1024;

    /** §V-F alternative: replicate read-only widely shared pages. */
    bool replicateReadOnly = false;
    core::ReplicationConfig replication;

    // --- §V configurations ---

    /** Baseline 16-socket, perfect-knowledge page migration. */
    static SystemSetup baseline();

    /** StarNUMA with the T16 tracker (the default, §V-A). */
    static SystemSetup starnuma();

    /** StarNUMA with the counter-less T0 tracker (Fig 8a). */
    static SystemSetup starnumaT0();

    /** Fig 10: pool behind a CXL switch (270 ns pool access). */
    static SystemSetup starnumaSwitched();

    /** Fig 11 variants. */
    static SystemSetup baselineIsoBW();
    static SystemSetup baseline2xBW();
    static SystemSetup starnumaHalfBW();

    /** Fig 12: single-socket-sized pool (1/17 of footprint). */
    static SystemSetup starnumaSmallPool();

    /** Fig 9: static oracular placement on either architecture. */
    static SystemSetup baselineStatic();
    static SystemSetup starnumaStatic();

    /** §V-F: baseline + idealized read-only page replication. */
    static SystemSetup baselineReplication();
};

} // namespace driver
} // namespace starnuma

#endif // STARNUMA_DRIVER_SYSTEM_SETUP_HH
