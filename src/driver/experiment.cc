#include "driver/experiment.hh"

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "driver/artifact_cache.hh"
#include "driver/artifact_key.hh"
#include "sim/annotations.hh"
#include "sim/bytes.hh"
#include "sim/cas/hash.hh"
#include "sim/logging.hh"
#include "sim/sync.hh"
#include "sim/obs/audit.hh"
#include "sim/obs/obs.hh"
#include "sim/obs/timeseries.hh"
#include "sim/obs/trace_session.hh"
#include "trace/columnar.hh"
#include "workloads/workload.hh"

namespace starnuma
{
namespace driver
{

namespace
{

/**
 * One memo slot. The once_flag serializes the capture itself while
 * leaving the memo lock free, so concurrent misses on *different*
 * keys capture in parallel and concurrent misses on the *same* key
 * run exactly one capture with everyone sharing the result.
 * The content hash (over the canonical columnar v2 encoding, the
 * byte image the artifact store holds) is computed lazily behind
 * its own once_flag: it is only needed when the artifact cache is
 * enabled, and step-B/result cache keys embed it as trace.content.
 */
struct TraceEntry
{
    std::once_flag once;
    trace::WorkloadTrace trace;
    std::once_flag hashOnce;
    cas::Hash128 content;
};

/**
 * Memoized trace.content. Callers must have passed the entry's
 * capture once_flag already (the trace is immutable by then).
 */
// lint: cold-path one encode per (workload, scale) per process
const cas::Hash128 &
traceContentHash(TraceEntry &e)
{
    std::call_once(e.hashOnce, [&e] {
        e.content =
            cas::hashBytes(trace::encodeColumnar(e.trace));
    });
    return e.content;
}

Mutex traceMemoMu;
std::map<std::pair<std::string, std::string>,
         std::shared_ptr<TraceEntry>> traceMemo
    STARNUMA_GUARDED_BY(traceMemoMu);
// Relaxed is load-bearing and sufficient: traceCaptures is a pure
// event counter — nothing is published through it, and the captured
// trace itself is handed to waiters by call_once's own
// synchronization. Readers (tests asserting one capture per key)
// observe it only after joining the work that incremented it, so a
// relaxed monotone count is exact by then.
std::atomic<std::uint64_t> traceCaptures{0};

/**
 * Memo lookup + capture-or-fetch. With the artifact store enabled
 * the capture tier becomes: fetch the columnar v2 bytes by cache
 * key (decode verifies on top of the store's content hash), and on
 * a miss capture as before and persist the encoding — so a warm
 * process never replays workload setup code at all.
 */
// lint: artifact-root step_a_trace
std::shared_ptr<TraceEntry>
traceEntryFor(const std::string &name, const SimScale &scale)
{
    std::string scale_key =
        std::to_string(scale.threads()) + ":" +
        std::to_string(scale.phases) + ":" +
        std::to_string(scale.phaseInstructions);

    std::shared_ptr<TraceEntry> entry;
    {
        MutexLock lock(traceMemoMu);
        auto &slot = traceMemo[{name, scale_key}];
        if (!slot)
            slot = std::make_shared<TraceEntry>();
        entry = slot; // entries are never evicted: references stay valid
    }
    std::call_once(entry->once, [&] {
        ArtifactCache &cache = ArtifactCache::global();
        std::shared_ptr<cas::Store> store = cache.store();
        std::string key;
        if (store) {
            key = traceKeyText(name, scale);
            std::vector<std::uint8_t> payload;
            std::uint64_t t0 = cacheNowNanos();
            if (store->fetchObject(key, payload) &&
                trace::decodeColumnar(payload.data(),
                                      payload.size(),
                                      entry->trace)) {
                cache.noteTraceHit();
                cache.noteBytesRead(payload.size());
                cache.noteHitNanos(cacheNowNanos() - t0);
                return;
            }
        }
        std::uint64_t t0 = cacheNowNanos();
        obs::TraceSpan span(
            "capture " + name, "capture",
            obs::TraceArgs().add("workload", name).str());
        entry->trace = workloads::captureWorkload(name, scale);
        traceCaptures.fetch_add(1, std::memory_order_relaxed);
        if (store) {
            std::vector<std::uint8_t> payload =
                trace::encodeColumnar(entry->trace);
            if (store->putObject(key, payload))
                cache.noteBytesWritten(payload.size());
            cache.noteTraceMiss();
            cache.noteMissNanos(cacheNowNanos() - t0);
        }
    });
    return entry;
}

} // anonymous namespace

const trace::WorkloadTrace &
workloadTrace(const std::string &name, const SimScale &scale)
{
    return traceEntryFor(name, scale)->trace;
}

std::uint64_t
workloadTraceCaptures()
{
    return traceCaptures.load(std::memory_order_relaxed);
}

namespace
{

// Experiment-result bundle format v1 ("STARRES1"): the run's
// metrics, the step-B artifact (checkpoint format v2, embedded via
// TraceSimResult::serialize), and the two registry snapshots the
// StatsSink would otherwise re-derive from live objects. Varint
// coded with sim/bytes.hh; doubles keep their exact IEEE bits, so a
// warm run's stats output is byte-identical to the cold run that
// wrote the bundle.
constexpr std::uint64_t resultBundleMagic = 0x5354415252455331ULL;

void
encodeSnapshot(std::vector<std::uint8_t> &buf,
               const obs::Snapshot &s)
{
    putVarint(buf, s.values().size());
    for (const auto &[path, value] : s.values()) {
        putString(buf, path);
        putString(buf, value);
    }
}

bool
decodeSnapshot(ByteReader &r, obs::Snapshot &s)
{
    std::uint64_t n = 0;
    if (!r.getVarint(n) || n > r.remaining())
        return false;
    for (std::uint64_t i = 0; i < n; ++i) {
        std::string path, value;
        if (!r.getString(path) || !r.getString(value))
            return false;
        // Stored pre-formatted: re-formatting restored values
        // would be a second rounding decision (registry.hh).
        s.setFormatted(path, value);
    }
    return true;
}

void
encodeMetrics(std::vector<std::uint8_t> &buf, const RunMetrics &m)
{
    putVarint(buf, m.instructions);
    putVarint(buf, m.cycles.value());
    putDouble(buf, m.ipc);
    putVarint(buf, m.memAccesses);
    putVarint(buf, m.llcHits);
    putVarint(buf, m.detailedMisses);
    putDouble(buf, m.llcMpki);
    putDouble(buf, m.amatCycles);
    putDouble(buf, m.unloadedAmatCycles);
    for (double v : m.mix)
        putDouble(buf, v);
    for (double v : m.typeLatency)
        putDouble(buf, v);
    putDouble(buf, m.migrationStallCycles);
    putDouble(buf, m.upiUtilization);
    putDouble(buf, m.numalinkUtilization);
    putDouble(buf, m.cxlUtilization);
    putDouble(buf, m.maxLinkUtilization);
    putDouble(buf, m.meanLinkQueueNs);
    putDouble(buf, m.meanDramQueueNs);
    putVarint(buf, m.migratedPages);
    putDouble(buf, m.poolMigrationFraction);
    putVarint(buf, m.coherenceTransactions);
    putVarint(buf, m.blockTransfers);
    putVarint(buf, m.shootdownPages);
}

bool
decodeMetrics(ByteReader &r, RunMetrics &m)
{
    std::uint64_t cycles = 0;
    bool ok = r.getVarint(m.instructions) && r.getVarint(cycles) &&
              r.getDouble(m.ipc) && r.getVarint(m.memAccesses) &&
              r.getVarint(m.llcHits) &&
              r.getVarint(m.detailedMisses) &&
              r.getDouble(m.llcMpki) && r.getDouble(m.amatCycles) &&
              r.getDouble(m.unloadedAmatCycles);
    if (!ok)
        return false;
    m.cycles = Cycles(cycles);
    for (double &v : m.mix)
        if (!r.getDouble(v))
            return false;
    for (double &v : m.typeLatency)
        if (!r.getDouble(v))
            return false;
    return r.getDouble(m.migrationStallCycles) &&
           r.getDouble(m.upiUtilization) &&
           r.getDouble(m.numalinkUtilization) &&
           r.getDouble(m.cxlUtilization) &&
           r.getDouble(m.maxLinkUtilization) &&
           r.getDouble(m.meanLinkQueueNs) &&
           r.getDouble(m.meanDramQueueNs) &&
           r.getVarint(m.migratedPages) &&
           r.getDouble(m.poolMigrationFraction) &&
           r.getVarint(m.coherenceTransactions) &&
           r.getVarint(m.blockTransfers) &&
           r.getVarint(m.shootdownPages);
}

// lint: cold-path once per experiment, cache-enabled runs only
// lint: artifact-root experiment_result
std::vector<std::uint8_t>
encodeResultBundle(const ExperimentResult &result,
                   const obs::Snapshot &timing_stats)
{
    std::vector<std::uint8_t> buf;
    putVarint(buf, resultBundleMagic);
    encodeMetrics(buf, result.metrics);
    std::vector<std::uint8_t> placement =
        result.placement.serialize();
    buf.insert(buf.end(), placement.begin(), placement.end());
    encodeSnapshot(buf, result.placement.stats);
    encodeSnapshot(buf, timing_stats);
    return buf;
}

// lint: cold-path once per experiment, cache-enabled runs only
bool
decodeResultBundle(const std::vector<std::uint8_t> &payload,
                   ExperimentResult &result,
                   obs::Snapshot &timing_stats)
{
    ByteReader r(payload.data(), payload.size());
    std::uint64_t magic = 0;
    return r.getVarint(magic) && magic == resultBundleMagic &&
           decodeMetrics(r, result.metrics) &&
           result.placement.deserialize(r) &&
           decodeSnapshot(r, result.placement.stats) &&
           decodeSnapshot(r, timing_stats) && r.remaining() == 0;
}

} // anonymous namespace

ExperimentResult
runExperiment(const std::string &workload, const SystemSetup &setup,
              const SimScale &scale)
{
    obs::TraceSpan exp_span(
        workload + " / " + setup.name, "experiment",
        obs::TraceArgs()
            .add("workload", workload)
            .add("setup", setup.name)
            .str());
    std::shared_ptr<TraceEntry> entry =
        traceEntryFor(workload, scale);
    const trace::WorkloadTrace &trace = entry->trace;

    ArtifactCache &cache = ArtifactCache::global();
    std::shared_ptr<cas::Store> store = cache.store();
    obs::StatsSink &sink = obs::StatsSink::global();
    obs::TimeSeriesSink &ts_sink = obs::TimeSeriesSink::global();
    obs::AuditSink &audit_sink = obs::AuditSink::global();
    // Result bundles deliberately exclude the TimeSeries and Audit
    // channels (unbounded diagnostic streams): while either sink
    // observes, the experiment tier runs uncached and the phase
    // hooks stay off (trace_sim enforces the same envelope).
    const bool use_cache = store != nullptr &&
                           !ts_sink.enabled() &&
                           !audit_sink.enabled();

    ExperimentResult result;
    std::string rkey;
    if (use_cache) {
        rkey = resultKeyText(workload, setup, scale,
                             traceContentHash(*entry),
                             sink.enabled());
        std::vector<std::uint8_t> payload;
        obs::Snapshot timing_stats;
        std::uint64_t t0 = cacheNowNanos();
        if (store->fetchObject(rkey, payload) &&
            decodeResultBundle(payload, result, timing_stats)) {
            cache.noteResultHit();
            cache.noteBytesRead(payload.size());
            cache.noteHitNanos(cacheNowNanos() - t0);
            if (sink.enabled()) {
                std::string prefix =
                    workload + "." + setup.name + ".";
                sink.add(prefix + "summary.",
                         metricsSnapshot(result.metrics));
                sink.add(prefix + "timing.", timing_stats);
                sink.add(prefix + "traceSim.",
                         result.placement.stats);
            }
            return result;
        }
        result = ExperimentResult();
    }
    std::uint64_t miss_t0 = cacheNowNanos();

    // Differential re-simulation (DESIGN.md §16): look for the
    // deepest stored phase state whose policy prefix matches, hand
    // it to TraceSim as the resume point, and persist the states
    // this run passes through for future divergent cells.
    PhaseStateHooks hooks;
    std::vector<std::uint8_t> resume_blob;
    const bool stateful =
        use_cache && setup.sys.hasPool &&
        setup.placement == Placement::FirstTouchDynamic;
    if (stateful) {
        const cas::Hash128 &content = traceContentHash(*entry);
        for (int k = scale.phases - 1; k >= 1; --k) {
            std::string skey =
                stateKeyText(workload, setup, scale, content, k);
            if (store->fetchObject(skey, resume_blob)) {
                hooks.resumePhase = k;
                hooks.resumeState = &resume_blob;
                cache.noteBytesRead(resume_blob.size());
                break;
            }
        }
        hooks.onPhaseState =
            [&](int phase,
                const std::vector<std::uint8_t> &state) {
                std::string skey = stateKeyText(
                    workload, setup, scale,
                    traceContentHash(*entry), phase);
                if (!store->containsObject(skey) &&
                    store->putObject(skey, state))
                    cache.noteBytesWritten(state.size());
            };
    }

    TraceSim trace_sim(setup, scale);
    {
        obs::TraceSpan span("trace-sim " + workload, "traceSim");
        result.placement =
            trace_sim.run(trace, stateful ? &hooks : nullptr);
    }
    if (result.placement.resumedFromPhase > 0)
        cache.notePartialHit(static_cast<std::uint64_t>(
            result.placement.resumedFromPhase));

    // §IV-A3 literally: one timing simulation per phase, fanned out
    // over the worker pool and merged in phase order.
    TimingOptions options;
    options.independentPhases = true;
    TimingSim timing(setup, scale, options);
    {
        obs::TraceSpan span("timing-sim " + workload, "timingSim");
        result.metrics = timing.run(trace, result.placement);
    }

    if (use_cache) {
        std::vector<std::uint8_t> payload =
            encodeResultBundle(result, timing.stats());
        if (store->putObject(rkey, payload))
            cache.noteBytesWritten(payload.size());
        cache.noteResultMiss();
        cache.noteMissNanos(cacheNowNanos() - miss_t0);
    }

    if (sink.enabled()) {
        std::string prefix = workload + "." + setup.name + ".";
        sink.add(prefix + "summary.",
                 metricsSnapshot(result.metrics));
        sink.add(prefix + "timing.", timing.stats());
        sink.add(prefix + "traceSim.", result.placement.stats);
    }
    if (ts_sink.enabled()) {
        std::string prefix = workload + "." + setup.name + ".";
        ts_sink.add(prefix + "timing.", timing.timeseries());
        ts_sink.add(prefix + "traceSim.",
                    result.placement.timeseries);
    }
    if (audit_sink.enabled())
        audit_sink.add(workload + "." + setup.name,
                       result.placement.audit);
    return result;
}

// Deliberately uncached beyond the shared step-A trace tier: the
// single-socket normalization run has no setup axis to sweep (one
// cell per workload), so a result bundle would only duplicate the
// trace cache's savings for extra key-schema surface.
RunMetrics
runSingleSocket(const std::string &workload, const SimScale &scale)
{
    obs::TraceSpan exp_span(
        workload + " / single-socket", "experiment",
        obs::TraceArgs().add("workload", workload).str());
    const trace::WorkloadTrace &trace = workloadTrace(workload, scale);

    SystemSetup setup = SystemSetup::baseline();
    TraceSim trace_sim(setup, scale);
    TraceSimResult placement = trace_sim.run(trace);

    TimingOptions options;
    options.singleSocketLocal = true;
    options.independentPhases = true;
    TimingSim timing(setup, scale, options);
    RunMetrics m = timing.run(trace, placement);

    obs::StatsSink &sink = obs::StatsSink::global();
    if (sink.enabled()) {
        std::string prefix = workload + ".single-socket.";
        sink.add(prefix + "summary.", metricsSnapshot(m));
        sink.add(prefix + "timing.", timing.stats());
    }
    obs::TimeSeriesSink &ts_sink = obs::TimeSeriesSink::global();
    if (ts_sink.enabled()) {
        std::string prefix = workload + ".single-socket.";
        ts_sink.add(prefix + "timing.", timing.timeseries());
        ts_sink.add(prefix + "traceSim.", placement.timeseries);
    }
    obs::AuditSink &audit_sink = obs::AuditSink::global();
    if (audit_sink.enabled())
        audit_sink.add(workload + ".single-socket",
                       placement.audit);
    return m;
}

} // namespace driver
} // namespace starnuma
