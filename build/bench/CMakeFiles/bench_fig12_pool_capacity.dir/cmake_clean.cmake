file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_pool_capacity.dir/bench_fig12_pool_capacity.cc.o"
  "CMakeFiles/bench_fig12_pool_capacity.dir/bench_fig12_pool_capacity.cc.o.d"
  "CMakeFiles/bench_fig12_pool_capacity.dir/bench_util.cc.o"
  "CMakeFiles/bench_fig12_pool_capacity.dir/bench_util.cc.o.d"
  "bench_fig12_pool_capacity"
  "bench_fig12_pool_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_pool_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
