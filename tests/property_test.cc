/**
 * @file
 * Property-based tests: invariants that must hold across swept
 * parameter spaces — event-queue ordering under random schedules,
 * cache inclusion/eviction algebra, tracker saturation, migration
 * engine conservation (no page lost, pool capacity never exceeded),
 * sharing-profile normalization, and trace determinism.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <numeric>
#include <vector>

#include "core/migration.hh"
#include "core/region_tracker.hh"
#include "core/tlb_annex.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "sim/arena.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "topology/topology.hh"
#include "trace/profile.hh"
#include "workloads/workload.hh"

namespace starnuma
{
namespace
{

// --- EventQueue: random schedules execute in nondecreasing time ---

class EventQueueOrder : public ::testing::TestWithParam<int>
{
};

TEST_P(EventQueueOrder, RandomScheduleExecutesInTimeOrder)
{
    Rng rng(GetParam());
    EventQueue q;
    std::vector<Cycles> seen;
    // Seed events; some events schedule more events.
    for (int i = 0; i < 200; ++i) {
        Cycles when(rng.range32(10000));
        q.schedule(when, [&q, &seen, &rng] {
            seen.push_back(q.now());
            if (rng.chance(0.3))
                q.scheduleAfter(Cycles(1 + rng.range32(100)),
                                [&q, &seen] {
                                    seen.push_back(q.now());
                                });
        });
    }
    q.run();
    EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
    EXPECT_GE(seen.size(), 200u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueOrder,
                         ::testing::Values(1, 7, 42, 1234));

// --- Cache: contains() agrees with access() history ---

class CacheAlgebra : public ::testing::TestWithParam<int>
{
};

TEST_P(CacheAlgebra, HitIffContained)
{
    Rng rng(GetParam());
    mem::Cache cache({8192, 4});
    for (int i = 0; i < 5000; ++i) {
        Addr addr = rng.range32(1 << 16) & ~7u;
        bool contained = cache.contains(addr);
        auto r = cache.access(addr, rng.chance(0.3));
        EXPECT_EQ(r.hit, contained);
        EXPECT_TRUE(cache.contains(addr));
        if (r.evicted) {
            EXPECT_FALSE(cache.contains(r.victim));
            EXPECT_NE(blockAddr(addr), r.victim);
        }
    }
    EXPECT_EQ(cache.hits() + cache.misses(), 5000u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheAlgebra,
                         ::testing::Values(3, 9, 27));

// --- RegionTracker: counters saturate, sharers monotone ---

class TrackerSaturation : public ::testing::TestWithParam<int>
{
};

TEST_P(TrackerSaturation, CounterNeverExceedsWidth)
{
    int bits = GetParam();
    core::RegionTracker t(bits, 16, 16 * 1024);
    Rng rng(5);
    std::uint32_t cap =
        bits == 0 ? 0
                  : static_cast<std::uint32_t>((1ULL << bits) - 1);
    for (int i = 0; i < 20000; ++i)
        t.record(rng.range32(1 << 20),
                 static_cast<NodeId>(rng.range32(16)),
                 1 + rng.range32(50));
    t.scanAndReset([&](core::RegionId, const core::TrackerEntry &e) {
        EXPECT_LE(e.accesses, cap);
        EXPECT_GE(e.sharerCount(), 1);
        EXPECT_LE(e.sharerCount(), 16);
    });
}

INSTANTIATE_TEST_SUITE_P(Widths, TrackerSaturation,
                         ::testing::Values(0, 1, 4, 8, 16, 24));

// --- MigrationEngine: conservation + capacity invariants ---

class MigrationInvariants : public ::testing::TestWithParam<int>
{
};

TEST_P(MigrationInvariants, PagesConservedAndPoolBounded)
{
    std::uint64_t seed = GetParam();
    constexpr Addr region = 16 * 1024;
    constexpr int ppr = region / pageBytes;
    core::RegionTracker tracker(16, 16, region);
    mem::PageMap pages(17);
    core::MigrationConfig cfg;
    cfg.migrationLimitPages = 64;
    core::MigrationEngine engine(cfg, 16, true, region, seed);

    Rng rng(seed);
    constexpr int n_regions = 64;
    // Map every region somewhere.
    for (core::RegionId r = 0; r < n_regions; ++r)
        for (int p = 0; p < ppr; ++p)
            pages.setHome(PageNum(r * ppr + p),
                          static_cast<NodeId>(rng.range32(16)));
    std::uint64_t total = pages.totalPages();
    std::uint64_t pool_cap = 10 * ppr;

    for (int phase = 1; phase <= 8; ++phase) {
        // Random heat.
        for (int i = 0; i < 2000; ++i)
            tracker.record(
                rng.range32(n_regions * static_cast<int>(region)),
                static_cast<NodeId>(rng.range32(16)),
                1 + rng.range32(20));
        auto plan =
            engine.decidePhase(tracker, pages, pool_cap, phase);
        // Conservation: no page appears or disappears.
        EXPECT_EQ(pages.totalPages(), total);
        std::uint64_t sum = 0;
        for (NodeId n = 0; n < 17; ++n)
            sum += pages.pagesAt(n);
        EXPECT_EQ(sum, total);
        // Pool capacity is never exceeded.
        EXPECT_LE(pages.pagesAt(16), pool_cap);
        // Per-phase page budget respected.
        EXPECT_LE(plan.size() * ppr,
                  cfg.migrationLimitPages + ppr);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MigrationInvariants,
                         ::testing::Values(1, 2, 3, 5, 8));

// --- TLB annex: flush conservation across geometries ---

class TlbGeometry
    : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(TlbGeometry, EveryAccessEventuallyCounted)
{
    auto [entries, ways] = GetParam();
    core::RegionTracker tracker(24, 16, 16 * 1024);
    core::TlbAnnex tlb({entries, ways}, tracker, 4);
    Rng rng(11);
    constexpr int accesses = 8000;
    for (int i = 0; i < accesses; ++i)
        tlb.recordAccess(rng.range32(1 << 22));
    tlb.flushAll();
    // Sum of all tracker counters equals the access count (24-bit
    // counters cannot saturate at this volume).
    std::uint64_t sum = 0;
    tracker.scanAndReset(
        [&](core::RegionId, const core::TrackerEntry &e) {
            sum += e.accesses;
        });
    EXPECT_EQ(sum, static_cast<std::uint64_t>(accesses));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, TlbGeometry,
    ::testing::Values(std::pair<int, int>{16, 1},
                      std::pair<int, int>{64, 4},
                      std::pair<int, int>{128, 8},
                      std::pair<int, int>{1024, 8}));

// --- DRAM: completion times are sane across bank counts ---

class DramBanks : public ::testing::TestWithParam<int>
{
};

TEST_P(DramBanks, CompletionNeverBeforeUnloaded)
{
    mem::DramConfig cfg;
    cfg.banks = GetParam();
    mem::DramChannel ch(cfg);
    Rng rng(13);
    Cycles now;
    for (int i = 0; i < 2000; ++i) {
        now += Cycles(rng.range32(20));
        Cycles done = ch.access(now, rng.range32(1 << 24));
        EXPECT_GE(done, now + ch.unloadedLatency());
    }
}

INSTANTIATE_TEST_SUITE_P(Banks, DramBanks,
                         ::testing::Values(1, 4, 16, 32, 64));

// --- Topology: unloaded latency is a metric-like quantity ---

TEST(TopologyProperty, TriangleInequalityOverSockets)
{
    // Socket-to-socket routes are minimal over the coherent
    // interconnect: no socket detour beats the direct route.
    topology::Topology t(topology::SystemConfig::starnuma16());
    Rng rng(17);
    for (int i = 0; i < 200; ++i) {
        NodeId a = rng.range32(16);
        NodeId b = rng.range32(16);
        NodeId c = rng.range32(16);
        EXPECT_LE(t.unloadedOneWay(a, b),
                  t.unloadedOneWay(a, c) + t.unloadedOneWay(c, b));
    }
}

TEST(TopologyProperty, PoolIsALatencyShortcutHardwareCannotTake)
{
    // The paper's §III-C observation in topological form: bouncing
    // through the pool (2 x 50 ns) is faster than a direct
    // inter-chassis crossing (140 ns) — but coherent socket-to-
    // socket routes never pass through the pool; only the 4-hop
    // coherence path exploits the shortcut.
    topology::Topology t(topology::SystemConfig::starnuma16());
    NodeId pool = t.poolNode();
    EXPECT_LT(t.unloadedOneWay(0, pool) +
                  t.unloadedOneWay(pool, 15),
              t.unloadedOneWay(0, 15));
    for (const auto &hop : t.route(0, 15).hops)
        EXPECT_NE(t.links()[hop.link].type(),
                  topology::LinkType::CXL);
}

TEST(TopologyProperty, ContendedNeverFasterThanUnloaded)
{
    topology::Topology t(topology::SystemConfig::starnuma16());
    Rng rng(19);
    Cycles now;
    for (int i = 0; i < 2000; ++i) {
        now += Cycles(rng.range32(5));
        NodeId src = rng.range32(16);
        NodeId dst = rng.range32(t.nodes());
        if (src == dst)
            continue;
        Cycles arrival =
            t.send(src, dst, now, topology::dataBytes);
        EXPECT_GE(arrival, now + t.unloadedOneWay(src, dst));
    }
}

// --- SharingProfile: normalization ---

TEST(ProfileProperty, FractionsSumToOne)
{
    SimScale s;
    s.sockets = 4;
    s.socketsPerChassis = 2;
    s.coresPerSocket = 2;
    s.phases = 1;
    s.phaseInstructions = 20000;
    auto t = workloads::makeWorkload("tpcc")->capture(s);
    trace::SharingProfile p(t, s.coresPerSocket, s.sockets);
    double pages = 0, accesses = 0;
    for (int d = 1; d <= s.sockets; ++d) {
        pages += p.pageFraction(d);
        accesses += p.accessFraction(d);
    }
    EXPECT_NEAR(pages, 1.0, 1e-9);
    EXPECT_NEAR(accesses, 1.0, 1e-9);
}

// --- Workload determinism: identical seeds, identical traces ---

class WorkloadDeterminism
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadDeterminism, SameSeedSameTrace)
{
    SimScale s;
    s.sockets = 4;
    s.socketsPerChassis = 2;
    s.coresPerSocket = 2;
    s.phases = 1;
    s.phaseInstructions = 15000;
    auto a = workloads::makeWorkload(GetParam(), 7)->capture(s);
    auto b = workloads::makeWorkload(GetParam(), 7)->capture(s);
    ASSERT_EQ(a.totalRecords(), b.totalRecords());
    for (int t = 0; t < a.threads; ++t) {
        ASSERT_EQ(a.perThread[t].size(), b.perThread[t].size());
        for (std::size_t i = 0; i < a.perThread[t].size(); ++i) {
            EXPECT_EQ(a.perThread[t][i].instr,
                      b.perThread[t][i].instr);
            EXPECT_EQ(a.perThread[t][i].vaddr(),
                      b.perThread[t][i].vaddr());
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadDeterminism,
                         ::testing::Values("bfs", "masstree",
                                           "tpcc", "poa"));

// --- Arena (sim/arena.hh): the lifetime rules of DESIGN.md §12 ---

class ArenaProperty : public ::testing::TestWithParam<int>
{
};

/**
 * Random allocation sequences: every returned pointer respects its
 * requested alignment, lies inside the buffer, and never overlaps a
 * previous live allocation (checked by filling each block with a
 * distinct byte and re-verifying all blocks at the end).
 */
TEST_P(ArenaProperty, AlignedDisjointInBoundsAllocations)
{
    Rng rng(GetParam());
    const std::size_t cap = 1 << 16;
    Arena arena(cap);
    struct Block
    {
        unsigned char *p;
        std::size_t bytes;
        unsigned char fill;
    };
    std::vector<Block> blocks;
    for (int i = 0; i < 400; ++i) {
        std::size_t bytes = rng.range32(300);
        std::size_t align = std::size_t(1) << rng.range32(7);
        auto *p = static_cast<unsigned char *>(
            arena.allocate(bytes, align));
        if (!p)
            break; // exhausted; covered below
        EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u);
        auto fill = static_cast<unsigned char>(i);
        std::memset(p, fill, bytes);
        blocks.push_back({p, bytes, fill});
        EXPECT_LE(arena.used(), arena.capacity());
        EXPECT_EQ(arena.remaining(),
                  arena.capacity() - arena.used());
    }
    // No allocation clobbered an earlier one.
    for (const Block &b : blocks)
        for (std::size_t i = 0; i < b.bytes; ++i)
            ASSERT_EQ(b.p[i], b.fill);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArenaProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

/** Exhaustion is reported via nullptr + a counter — never by
 *  writing past the buffer or wrapping the bump offset. */
TEST(ArenaProperty, ExhaustionReportedNotOverflowed)
{
    Arena arena(256);
    void *a = arena.allocate(200, 1);
    ASSERT_NE(a, nullptr);
    std::memset(a, 0xab, 200);
    std::size_t used_before = arena.used();

    EXPECT_EQ(arena.allocate(100, 1), nullptr);
    EXPECT_EQ(arena.exhaustions(), 1u);
    EXPECT_EQ(arena.used(), used_before); // failed alloc is a no-op

    // Pathological sizes must not wrap the offset arithmetic.
    EXPECT_EQ(arena.allocate(~std::size_t(0), 1), nullptr);
    EXPECT_EQ(arena.allocate(~std::size_t(0) - 64, 128), nullptr);
    EXPECT_EQ(arena.allocArray<std::uint64_t>(~std::size_t(0) / 4),
              nullptr);
    EXPECT_EQ(arena.exhaustions(), 4u);

    // The earlier allocation survived every refused request.
    for (int i = 0; i < 200; ++i)
        ASSERT_EQ(static_cast<unsigned char *>(a)[i], 0xab);

    // What still fits is still granted.
    EXPECT_NE(arena.allocate(arena.remaining(), 1), nullptr);
    EXPECT_EQ(arena.remaining(), 0u);
}

/** reset() restores the full capacity and reuses the same buffer. */
TEST(ArenaProperty, ResetRestoresFullCapacity)
{
    const std::size_t cap = 4096;
    Arena arena(cap);
    for (int cycle = 0; cycle < 10; ++cycle) {
        void *whole = arena.allocate(cap, 1);
        ASSERT_NE(whole, nullptr);
        EXPECT_EQ(arena.used(), cap);
        EXPECT_EQ(arena.allocate(1, 1), nullptr);
        arena.reset();
        EXPECT_EQ(arena.used(), 0u);
        EXPECT_EQ(arena.remaining(), cap);
    }
    // Exhaustion count is lifetime, not per-cycle.
    EXPECT_EQ(arena.exhaustions(), 10u);
}

/** allocArray zero-initializes even over recycled dirty memory. */
TEST(ArenaProperty, AllocArrayZeroesRecycledMemory)
{
    Arena arena(1 << 12);
    void *dirty = arena.allocate(1 << 12, 1);
    ASSERT_NE(dirty, nullptr);
    std::memset(dirty, 0xff, 1 << 12);
    arena.reset();

    auto *counters = arena.allocArray<std::uint32_t>(256);
    ASSERT_NE(counters, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(counters) %
                  alignof(std::uint32_t),
              0u);
    for (int i = 0; i < 256; ++i)
        ASSERT_EQ(counters[i], 0u);
}

} // anonymous namespace
} // namespace starnuma
