/**
 * @file
 * Selective page replication — the alternative to pooling §V-F
 * analyzes. Read-only pages shared by many sockets are replicated
 * into every sharer's local memory, making their accesses local at
 * the cost of memory capacity (and, for any page that later turns
 * out to be written, an invalidation of every replica).
 *
 * This is deliberately the technique's *best case*: replication
 * candidates are chosen with a-priori knowledge of the whole run's
 * read/write behaviour and replica maintenance is free. The paper's
 * argument is that even this ideal form loses to pooling when
 * shared pages are read-write (BFS) or when the read-only shared
 * set is a large fraction of memory (TC).
 */

#ifndef STARNUMA_CORE_REPLICATION_HH
#define STARNUMA_CORE_REPLICATION_HH

#include <cstdint>

#include "sim/flat_map.hh"

// lint: layer-exception — idealized replication (§V-F) is an
// *offline* analysis over a whole captured run: candidate selection
// needs the complete WorkloadTrace (per-page sharers and the
// written-page set), so core's replication planner legitimately
// consumes trace's container type. Mirrored in src/CMakeLists.txt
// (starnuma_core links starnuma_trace).
#include "trace/trace.hh"

namespace starnuma
{
namespace core
{

/** Configuration of the idealized replication policy. */
struct ReplicationConfig
{
    /** Replicate pages shared by at least this many sockets. */
    int sharerThreshold = 8;

    /**
     * Capacity budget: replica bytes may not exceed this multiple
     * of the workload footprint (replicas at every sharer are
     * expensive; unlimited replication is unrealistic).
     */
    double capacityBudget = 2.0;
};

/** Outcome of replication candidate selection. */
struct ReplicationPlan
{
    /** Pages replicated at every sharer (accesses become local). */
    FlatSet<PageNum> replicated;

    /** Replica bytes divided by footprint bytes. */
    double capacityOverhead = 0.0;

    /** Pages that qualified by sharing but were written (skipped). */
    std::uint64_t rejectedReadWrite = 0;

    /** Pages skipped because the capacity budget ran out. */
    std::uint64_t rejectedCapacity = 0;

    bool
    isReplicated(PageNum page) const
    {
        return replicated.contains(page);
    }
};

/**
 * Select replication candidates from a whole-run trace: read-only
 * pages with at least @p config.sharerThreshold sharers, most
 * shared first, until the capacity budget is exhausted.
 */
ReplicationPlan planReplication(const trace::WorkloadTrace &trace,
                                int cores_per_socket, int sockets,
                                const ReplicationConfig &config);

} // namespace core
} // namespace starnuma

#endif // STARNUMA_CORE_REPLICATION_HH
