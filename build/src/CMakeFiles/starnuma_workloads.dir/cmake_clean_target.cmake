file(REMOVE_RECURSE
  "libstarnuma_workloads.a"
)
