# Empty compiler generated dependencies file for starnuma_topology.
# This may be replaced when dependencies are built.
