file(REMOVE_RECURSE
  "CMakeFiles/starnuma_topology.dir/topology/link.cc.o"
  "CMakeFiles/starnuma_topology.dir/topology/link.cc.o.d"
  "CMakeFiles/starnuma_topology.dir/topology/system_config.cc.o"
  "CMakeFiles/starnuma_topology.dir/topology/system_config.cc.o.d"
  "CMakeFiles/starnuma_topology.dir/topology/topology.cc.o"
  "CMakeFiles/starnuma_topology.dir/topology/topology.cc.o.d"
  "libstarnuma_topology.a"
  "libstarnuma_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starnuma_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
