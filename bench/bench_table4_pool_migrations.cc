/**
 * @file
 * Table IV reproduction: the fraction of StarNUMA's migrations
 * whose destination is the memory pool, per workload. The paper
 * reports an (ex-POA) geometric mean of 83%, with several
 * workloads at 90%+ and POA at exactly zero.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"
#include "sim/stats.hh"
#include "sim/table.hh"

using namespace starnuma;
using benchutil::benchScale;
using benchutil::cachedRun;

namespace
{

void
BM_Table4_Workload(benchmark::State &state,
                   const std::string &workload)
{
    SimScale scale = benchScale();
    for (auto _ : state)
        benchmark::DoNotOptimize(
            cachedRun(workload, driver::SystemSetup::starnuma(),
                      scale)
                .placement.poolMigrationFraction);
    state.counters["pool_migration_fraction"] =
        cachedRun(workload, driver::SystemSetup::starnuma(), scale)
            .placement.poolMigrationFraction;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    benchutil::initBench(&argc, argv);
    for (const auto &w : benchutil::benchWorkloads())
        benchmark::RegisterBenchmark(("Table4/" + w).c_str(),
                                     BM_Table4_Workload, w)
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    int rc = benchutil::runBenchmarks(argc, argv);

    struct Ref
    {
        const char *w;
        const char *paper;
    };
    const Ref refs[] = {{"sssp", "80%"}, {"bfs", "100%"},
                        {"cc", "99%"},   {"tc", "80%"},
                        {"masstree", "100%"}, {"tpcc", "93%"},
                        {"fmi", "47%"},  {"poa", "0%"}};

    SimScale scale = benchScale();
    TextTable t({"workload", "migrations to pool", "pages in pool",
                 "victim evictions", "paper"});
    std::vector<double> nonzero;
    for (const auto &w : benchutil::benchWorkloads()) {
        const auto &p =
            cachedRun(w, driver::SystemSetup::starnuma(), scale)
                .placement;
        std::string paper = "-";
        for (const auto &r : refs)
            if (w == r.w)
                paper = r.paper;
        if (p.poolMigrationFraction > 0)
            nonzero.push_back(p.poolMigrationFraction);
        t.addRow({w, TextTable::pct(p.poolMigrationFraction, 0),
                  std::to_string(p.pagesInPool),
                  std::to_string(p.victimEvictions), paper});
    }
    if (!nonzero.empty())
        t.addRow({"geomean (ex zero rows)",
                  TextTable::pct(stats::geomean(nonzero), 0), "",
                  "", "83%"});
    benchutil::printSection(
        "Table IV: fraction of migrations to the pool", t.str());
    return rc;
}
