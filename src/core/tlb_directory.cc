#include "core/tlb_directory.hh"

#include <bit>

#include "sim/logging.hh"
#include "sim/obs/registry.hh"

namespace starnuma
{
namespace core
{

int
TlbHolderMask::count() const
{
    int n = 0;
    for (auto w : words)
        n += std::popcount(w);
    return n;
}

TlbDirectory::TlbDirectory(int n_cores) : cores(n_cores)
{
    sn_assert(cores > 0 && cores <= 256,
              "TLB directory bit-set supports up to 256 cores");
}

// lint: cold-path one-time setup before the replay loop
void
TlbDirectory::preallocate(PageNum base, std::size_t pages)
{
    sn_assert(map.empty() && flat.empty(),
              "preallocate before tracking any translation");
    if (pages == 0)
        return;
    flatBase = base;
    flat.assign(pages, TlbHolderMask{});
}

// lint: hot-path queried per migrated page during shootdowns
TlbHolderMask
TlbDirectory::holders(PageNum page) const
{
    if (flat.empty()) {
        auto it = map.find(page);
        return it == map.end() ? TlbHolderMask{} : it->second;
    }
    std::uint64_t slot = page.value() - flatBase.value();
    return slot < flat.size() ? flat[slot] : TlbHolderMask{};
}

int
TlbDirectory::holderCount(PageNum page) const
{
    return holders(page).count();
}

// lint: hot-path one shootdown per migrated page
int
TlbDirectory::shootdown(PageNum page)
{
    int targeted = holderCount(page);
    if (flat.empty()) {
        map.erase(page);
    } else if (targeted > 0) {
        flat[flatSlot(page)] = TlbHolderMask{};
        --flatTracked;
    }
    sent_ += targeted;
    saved_ += cores - targeted;
    return targeted;
}

double
TlbDirectory::savingsRatio()
const
{
    std::uint64_t total = sent_ + saved_;
    return total ? static_cast<double>(saved_) / static_cast<double>(total)
                 : 0.0;
}

// lint: cold-path stats export, once per run when observing
void
TlbDirectory::registerStats(obs::Registry &r,
                            const std::string &prefix) const
{
    r.addCounter(prefix + ".shootdownsSent", &sent_);
    r.addCounter(prefix + ".shootdownsSaved", &saved_);
    r.addGaugeFn(prefix + ".savingsRatio",
                 [this] { return savingsRatio(); });
    r.addCounterFn(prefix + ".trackedPages",
                   [this] { return trackedPages(); });
}

} // namespace core
} // namespace starnuma
