# Empty dependencies file for starnuma_workloads.
# This may be replaced when dependencies are built.
