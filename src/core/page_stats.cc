#include "core/page_stats.hh"

#include "sim/logging.hh"

namespace starnuma
{
namespace core
{

PageAccessStats::PageAccessStats(int sockets) : sockets_(sockets)
{
    sn_assert(sockets > 0, "need at least one socket");
}

void
PageAccessStats::record(PageNum page, NodeId socket)
{
    sn_assert(socket >= 0 && socket < sockets_,
              "access by unknown socket %d", socket);
    auto it = pageCounts.find(page);
    if (it == pageCounts.end())
        it = pageCounts.emplace(page,
                            std::vector<std::uint32_t>(sockets_, 0))
                 .first;
    ++it->second[socket];
}

std::uint64_t
PageAccessStats::totalAccesses(PageNum page) const
{
    auto it = pageCounts.find(page);
    if (it == pageCounts.end())
        return 0;
    std::uint64_t total = 0;
    for (auto c : it->second)
        total += c;
    return total;
}

int
PageAccessStats::sharers(PageNum page) const
{
    auto it = pageCounts.find(page);
    if (it == pageCounts.end())
        return 0;
    int n = 0;
    for (auto c : it->second)
        n += (c > 0);
    return n;
}

NodeId
PageAccessStats::majoritySocket(PageNum page) const
{
    auto it = pageCounts.find(page);
    if (it == pageCounts.end())
        return -1;
    NodeId best = 0;
    for (int s = 1; s < sockets_; ++s)
        if (it->second[s] > it->second[best])
            best = s;
    return it->second[best] > 0 ? best : -1;
}

} // namespace core
} // namespace starnuma
