#include "sim/obs/timeseries.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "sim/logging.hh"
#include "sim/obs/registry.hh"

namespace starnuma
{
namespace obs
{

namespace
{

bool
writeWholeFile(const std::string &path, const std::string &content)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    bool ok = std::fwrite(content.data(), 1, content.size(), f) ==
              content.size();
    return std::fclose(f) == 0 && ok;
}

bool
endsWith(const std::string &s, const char *suffix)
{
    std::string suf(suffix);
    return s.size() >= suf.size() &&
           s.compare(s.size() - suf.size(), suf.size(), suf) == 0;
}

/** Column pointers sorted by path: the one export order. */
template <typename Cols>
std::vector<const typename Cols::value_type *>
sortedColumns(const Cols &cols)
{
    std::vector<const typename Cols::value_type *> out;
    out.reserve(cols.size());
    for (const auto &c : cols)
        out.push_back(&c);
    std::sort(out.begin(), out.end(),
              [](const auto *a, const auto *b) {
                  return a->path < b->path;
              });
    return out;
}

} // anonymous namespace

TimeSeries::StreamId
TimeSeries::addStream(const std::string &path, std::size_t capacity)
{
    sn_assert(validStatPath(path),
              "invalid stream path '%s' (allowed: [A-Za-z0-9._/-])",
              path.c_str());
    sn_assert(find(path) == nullptr, "duplicate stream path '%s'",
              path.c_str());
    cols.push_back(Column{path, {}, {}});
    cols.back().ts.reserve(capacity);
    cols.back().vals.reserve(capacity);
    return static_cast<StreamId>(cols.size() - 1);
}

// lint: cold-path per-epoch sampling point; capacity reserved at
// registration, so the append is a store in the steady state
void
TimeSeries::sample(StreamId stream, std::uint64_t t, double value)
{
    sn_assert(stream < cols.size(), "unknown stream id %u", stream);
    cols[stream].ts.push_back(t);
    cols[stream].vals.push_back(value);
}

bool
TimeSeries::empty() const
{
    for (const Column &c : cols)
        if (!c.ts.empty())
            return false;
    return true;
}

std::size_t
TimeSeries::samples(StreamId stream) const
{
    sn_assert(stream < cols.size(), "unknown stream id %u", stream);
    return cols[stream].ts.size();
}

double
TimeSeries::lastValue(StreamId stream) const
{
    sn_assert(stream < cols.size(), "unknown stream id %u", stream);
    return cols[stream].vals.empty() ? 0.0
                                     : cols[stream].vals.back();
}

void
TimeSeries::merge(const std::string &prefix, const TimeSeries &other)
{
    for (const Column &c : other.cols) {
        std::string path = prefix + c.path;
        sn_assert(find(path) == nullptr,
                  "merge would duplicate stream path '%s'",
                  path.c_str());
        cols.push_back(Column{path, c.ts, c.vals});
    }
}

const TimeSeries::Column *
TimeSeries::find(const std::string &path) const
{
    for (const Column &c : cols)
        if (c.path == path)
            return &c;
    return nullptr;
}

std::string
TimeSeries::csv() const
{
    std::string out = "stream,t,value\n";
    for (const Column *c : sortedColumns(cols))
        for (std::size_t i = 0; i < c->ts.size(); ++i)
            out += c->path + "," + formatCount(c->ts[i]) + "," +
                   formatNumber(c->vals[i]) + "\n";
    return out;
}

std::string
TimeSeries::json() const
{
    std::string out = "{";
    bool first = true;
    for (const Column *c : sortedColumns(cols)) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "  \"" + jsonEscape(c->path) + "\": {\"t\": [";
        for (std::size_t i = 0; i < c->ts.size(); ++i) {
            if (i)
                out += ",";
            out += formatCount(c->ts[i]);
        }
        out += "], \"v\": [";
        for (std::size_t i = 0; i < c->vals.size(); ++i) {
            if (i)
                out += ",";
            out += formatNumber(c->vals[i]);
        }
        out += "]}";
    }
    out += first ? "}\n" : "\n}\n";
    return out;
}

TimeSeriesSink &
TimeSeriesSink::global()
{
    // Leaky singleton, same shutdown contract as StatsSink: the
    // atexit hook must be able to run before static destruction
    // would have torn the sink down.
    static TimeSeriesSink *sink = [] {
        auto *s = new TimeSeriesSink();
        if (const char *path =
                std::getenv("STARNUMA_TIMESERIES_OUT")) {
            if (path[0] != '\0') {
                s->start(path);
                std::atexit(
                    [] { TimeSeriesSink::global().write(); });
            }
        }
        return s;
    }();
    return *sink;
}

void
TimeSeriesSink::start(const std::string &path)
{
    MutexLock lock(mu);
    path_ = path;
    merged = TimeSeries();
    enabled_.store(true, std::memory_order_relaxed);
}

void
TimeSeriesSink::stop()
{
    MutexLock lock(mu);
    enabled_.store(false, std::memory_order_relaxed);
    path_.clear();
    merged = TimeSeries();
}

void
TimeSeriesSink::add(const std::string &prefix,
                    const TimeSeries &series)
{
    if (!enabled())
        return;
    MutexLock lock(mu);
    // Double-check under the lock (see StatsSink::add): a series
    // must never resurrect a sink a concurrent stop() cleared.
    if (!enabled_.load(std::memory_order_relaxed))
        return;
    merged.merge(prefix, series);
}

TimeSeries
TimeSeriesSink::collect() const
{
    MutexLock lock(mu);
    return merged;
}

bool
TimeSeriesSink::writeTo(const std::string &path) const
{
    TimeSeries s = collect();
    return writeWholeFile(path, endsWith(path, ".csv") ? s.csv()
                                                       : s.json());
}

bool
TimeSeriesSink::write() const
{
    std::string path;
    {
        MutexLock lock(mu);
        if (!enabled_.load(std::memory_order_relaxed) ||
            path_.empty())
            return true;
        path = path_;
    }
    return writeTo(path);
}

} // namespace obs
} // namespace starnuma
