/**
 * @file
 * Fig 10 reproduction: StarNUMA's sensitivity to the memory pool
 * access latency. Besides the default 100 ns overhead (180 ns end
 * to end), a 190 ns overhead (270 ns end to end) models an
 * intermediate CXL switch. The paper: average speedup drops from
 * 1.54x to 1.34x, with TC hit hardest (1.63x -> 1.11x) because its
 * gains are almost purely latency-driven.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"
#include "sim/stats.hh"
#include "sim/table.hh"

using namespace starnuma;
using benchutil::benchScale;

namespace
{

void
BM_Fig10_Workload(benchmark::State &state,
                  const std::string &workload)
{
    SimScale scale = benchScale();
    for (auto _ : state) {
        benchmark::DoNotOptimize(benchutil::speedupOverBaseline(
            workload, driver::SystemSetup::starnumaSwitched(),
            scale));
    }
    state.counters["speedup_100ns"] =
        benchutil::speedupOverBaseline(
            workload, driver::SystemSetup::starnuma(), scale);
    state.counters["speedup_190ns"] =
        benchutil::speedupOverBaseline(
            workload, driver::SystemSetup::starnumaSwitched(),
            scale);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    benchutil::initBench(&argc, argv);
    for (const auto &w : benchutil::benchWorkloads())
        benchmark::RegisterBenchmark(("Fig10/" + w).c_str(),
                                     BM_Fig10_Workload, w)
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    int rc = benchutil::runBenchmarks(argc, argv);

    SimScale scale = benchScale();
    TextTable t({"workload", "100 ns penalty (180 ns e2e)",
                 "190 ns penalty (270 ns e2e)"});
    std::vector<double> fast, slow;
    for (const auto &w : benchutil::benchWorkloads()) {
        double f = benchutil::speedupOverBaseline(
            w, driver::SystemSetup::starnuma(), scale);
        double s = benchutil::speedupOverBaseline(
            w, driver::SystemSetup::starnumaSwitched(), scale);
        fast.push_back(f);
        slow.push_back(s);
        t.addRow({w, TextTable::num(f, 2) + "x",
                  TextTable::num(s, 2) + "x"});
    }
    t.addRow({"geomean", TextTable::num(stats::geomean(fast), 2) +
                             "x",
              TextTable::num(stats::geomean(slow), 2) + "x"});
    benchutil::printSection(
        "Fig 10: speedup vs CXL pool latency (paper: 1.54x -> "
        "1.34x average)",
        t.str());
    return rc;
}
