/**
 * @file
 * Trace formats for step A of the methodology (§IV-A1). A workload
 * run produces one memory trace per logical thread; each record is
 * an access that missed the capture-time private-cache filter,
 * tagged with the thread's dynamic instruction count — exactly the
 * information the paper's Pin-based tracer records. Traces carry a
 * first-touch list from the workload's (untimed) setup, which seeds
 * the page map the way parallel initialization seeds first-touch
 * placement on a real machine.
 */

#ifndef STARNUMA_TRACE_TRACE_HH
#define STARNUMA_TRACE_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace starnuma
{
namespace trace
{

/** One filtered memory access. The write flag lives in bit 63. */
struct MemRecord
{
    std::uint64_t instr; ///< dynamic instruction count at the access
    std::uint64_t packed;

    static constexpr std::uint64_t writeBit = 1ULL << 63;

    MemRecord() : instr(0), packed(0) {}
    MemRecord(std::uint64_t instr_no, Addr vaddr, bool write)
        : instr(instr_no), packed(vaddr | (write ? writeBit : 0))
    {
    }

    Addr vaddr() const { return packed & ~writeBit; }
    bool isWrite() const { return packed & writeBit; }
};

/** First-touch seed: which thread first wrote each page in setup. */
struct FirstTouch
{
    PageNum page;
    ThreadId thread;
};

/** Complete capture of one workload run (all threads). */
struct WorkloadTrace
{
    std::string workload;
    int threads = 0;
    std::uint64_t instructionsPerThread = 0;
    Addr footprintBytes = 0;

    /** Per-thread filtered memory access streams. */
    std::vector<std::vector<MemRecord>> perThread;

    /** Setup-time first touches (page placement seed). */
    std::vector<FirstTouch> firstTouches;

    /**
     * Inclusive page span covering every record and first touch.
     * The capture bump allocator hands out one contiguous address
     * range, so replay can preallocate flat page tables over it.
     * Both zero means unknown (hand-built traces); replay then
     * derives the span with a linear scan.
     */
    PageNum minPage{0};
    PageNum maxPage{0};

    /**
     * Page numbers written at least once during the run (tracked
     * independently of the filter, so stores that hit the capture
     * filter still mark their page read-write).
     */
    std::vector<PageNum> writtenPages;

    /** Total records across threads. */
    std::uint64_t totalRecords() const;

    /** Records per kilo-instruction (the filter's output rate). */
    double recordsPerKiloInstruction() const;

    /** Serialize to @p path (binary). @return false on IO error. */
    bool save(const std::string &path) const;

    /** Deserialize from @p path. @return false on error/mismatch. */
    bool load(const std::string &path);
};

/** Resolve the trace cache directory (created on demand). */
std::string traceCacheDir();

// Columnar v2 cache files (trace/columnar.hh; declared here so the
// cached() template below needs no extra include).
bool saveColumnar(const WorkloadTrace &t, const std::string &path);
bool loadColumnar(WorkloadTrace &t, const std::string &path);

/**
 * Load @p trace from the cache directory if a file for @p key
 * exists, else invoke @p generate and save the result. The cache
 * directory comes from STARNUMA_TRACE_DIR (empty disables caching).
 * Cache files use the columnar v2 format (".ctrace"); stale v1
 * ".trace" files are simply never read again.
 */
template <typename Fn>
WorkloadTrace
cached(const std::string &key, Fn &&generate)
{
    std::string dir = traceCacheDir();
    if (dir.empty())
        return generate();
    std::string path = dir + "/" + key + ".ctrace";
    WorkloadTrace t;
    if (loadColumnar(t, path))
        return t;
    t = generate();
    saveColumnar(t, path);
    return t;
}

} // namespace trace
} // namespace starnuma

#endif // STARNUMA_TRACE_TRACE_HH
