/**
 * @file
 * Fundamental scalar types and unit helpers shared by every StarNUMA
 * module. The simulation's unit of time is one core clock cycle at
 * 2.4 GHz (Table I); helpers convert between nanoseconds and cycles.
 */

#ifndef STARNUMA_SIM_TYPES_HH
#define STARNUMA_SIM_TYPES_HH

#include <cstdint>

#include "sim/strong.hh"

namespace starnuma
{

/** Simulated physical or virtual byte address. */
using Addr = std::uint64_t;

/** Simulation time, in core clock cycles (2.4 GHz). */
using Cycles = Strong<struct CyclesTag, std::uint64_t>;

/** Signed cycle delta, for latency arithmetic that may go negative. */
using CycleDelta = Strong<struct CycleDeltaTag, std::int64_t>;

/** Page number (page-granular index of an address). */
using PageNum = Strong<struct PageNumTag, std::uint64_t>;

/** Signed difference @p a - @p b of two absolute cycle times. */
constexpr CycleDelta
cycleDelta(Cycles a, Cycles b)
{
    return CycleDelta(static_cast<std::int64_t>(a.value()) -
                      static_cast<std::int64_t>(b.value()));
}

/** Absolute time @p t displaced by a (possibly negative) @p d. */
constexpr Cycles
advance(Cycles t, CycleDelta d)
{
    return Cycles(static_cast<std::uint64_t>(
        static_cast<std::int64_t>(t.value()) + d.value()));
}

/** Identifier of a CPU socket (0..N-1); the pool gets its own id. */
using NodeId = std::int32_t;

/** Identifier of a logical hardware thread across the whole system. */
using ThreadId = std::int32_t;

/** Core clock frequency assumed throughout (Table I). */
constexpr double clockGHz = 2.4;

/** Cache block size in bytes. */
constexpr Addr blockBytes = 64;

/** Small (base) page size in bytes. */
constexpr Addr pageBytes = 4096;

/** Convert a latency in nanoseconds to core clock cycles (rounded). */
constexpr Cycles
nsToCycles(double ns)
{
    return Cycles(ns * clockGHz + 0.5);
}

/** Convert core clock cycles back to nanoseconds. */
constexpr double
cyclesToNs(Cycles cycles)
{
    return static_cast<double>(cycles.value()) / clockGHz;
}

/**
 * Convert a fractional cycle count (a mean or other derived value)
 * to nanoseconds. Before strong types, passing a double here bound
 * the integer overload and silently truncated the fraction.
 */
constexpr double
cyclesToNs(double cycles)
{
    return cycles / clockGHz;
}

/**
 * Cycles needed to serialize @p bytes over a link of @p gbps GB/s
 * (per direction). 1 GB/s == 1e9 bytes/s; at 2.4e9 cycles/s a byte
 * takes 2.4 / gbps cycles.
 */
constexpr Cycles
serializationCycles(Addr bytes, double gbps)
{
    return Cycles(static_cast<double>(bytes) * clockGHz / gbps + 0.5);
}

/** Address of the cache block containing @p addr. */
constexpr Addr
blockAddr(Addr addr)
{
    return addr & ~(blockBytes - 1);
}

/** Address of the page containing @p addr. */
constexpr Addr
pageAddr(Addr addr)
{
    return addr & ~(pageBytes - 1);
}

/** Page number (page-granular index) of @p addr. */
constexpr PageNum
pageNumber(Addr addr)
{
    return PageNum(addr / pageBytes);
}

/** Byte address of the first byte of page @p page. */
constexpr Addr
pageBase(PageNum page)
{
    return page.value() * pageBytes;
}

/** Whole pages contained in @p bytes (floor; exact when the size is
 *  page aligned, e.g. a trace footprint). */
constexpr std::uint64_t
pagesIn(Addr bytes)
{
    return bytes / pageBytes;
}

/** Pages needed to cover @p bytes (ceiling; allocation sizing). */
constexpr std::uint64_t
pagesCovering(Addr bytes)
{
    return (bytes + pageBytes - 1) / pageBytes;
}

/** Pages per migration region for a page-aligned region size. */
constexpr int
pagesPerRegion(Addr region_bytes)
{
    return static_cast<int>(region_bytes / pageBytes);
}

/** First page of region @p region (page-aligned region size). */
constexpr PageNum
regionFirstPage(std::uint64_t region, Addr region_bytes)
{
    return PageNum(region * (region_bytes / pageBytes));
}

} // namespace starnuma

#endif // STARNUMA_SIM_TYPES_HH
