file(REMOVE_RECURSE
  "CMakeFiles/starnuma_workloads.dir/workloads/gap.cc.o"
  "CMakeFiles/starnuma_workloads.dir/workloads/gap.cc.o.d"
  "CMakeFiles/starnuma_workloads.dir/workloads/genomics.cc.o"
  "CMakeFiles/starnuma_workloads.dir/workloads/genomics.cc.o.d"
  "CMakeFiles/starnuma_workloads.dir/workloads/graph.cc.o"
  "CMakeFiles/starnuma_workloads.dir/workloads/graph.cc.o.d"
  "CMakeFiles/starnuma_workloads.dir/workloads/kvstore.cc.o"
  "CMakeFiles/starnuma_workloads.dir/workloads/kvstore.cc.o.d"
  "CMakeFiles/starnuma_workloads.dir/workloads/tpcc.cc.o"
  "CMakeFiles/starnuma_workloads.dir/workloads/tpcc.cc.o.d"
  "CMakeFiles/starnuma_workloads.dir/workloads/workload.cc.o"
  "CMakeFiles/starnuma_workloads.dir/workloads/workload.cc.o.d"
  "libstarnuma_workloads.a"
  "libstarnuma_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starnuma_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
