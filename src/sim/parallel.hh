/**
 * @file
 * Fixed-size work-queue thread pool with deterministic fan-out
 * helpers. Experiments, per-phase timing simulations, and sweep
 * entries are independent tasks: parallelFor() hands indexed work
 * items to the pool and the calling thread, and parallelMap()
 * collects results in canonical index order, so the merged output
 * of a parallel run is bitwise-identical to a serial one. The
 * calling thread always participates in executing its own batch,
 * which makes nested fan-outs (a sweep entry that itself
 * parallelizes its phases) deadlock-free on a fixed-size pool.
 *
 * The process-wide pool size comes from STARNUMA_THREADS (default:
 * the hardware concurrency).
 */

#ifndef STARNUMA_SIM_PARALLEL_HH
#define STARNUMA_SIM_PARALLEL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace starnuma
{

/** Work-queue executor over a fixed set of worker threads. */
class ThreadPool
{
  public:
    /** @param threads worker count; 0 means defaultThreads(). */
    explicit ThreadPool(int threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads (callers add one more). */
    int size() const { return static_cast<int>(workers.size()); }

    /** STARNUMA_THREADS when set, else hardware concurrency. */
    static int defaultThreads();

    /** The process-wide shared pool. */
    static ThreadPool &global();

    /**
     * Replace the process-wide pool with one of @p threads workers
     * (0 restores the default size). Must only be called while no
     * tasks are in flight; intended for tests that compare pool
     * sizes.
     */
    static void setGlobalThreads(int threads);

    /**
     * Run fn(0) .. fn(n-1), each call exactly once, distributed
     * over the workers and the calling thread; returns when all n
     * calls have finished. Tasks must be independent of each other
     * (and of execution order); any determinism requirement is then
     * met by construction regardless of the pool size.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn);

    /**
     * Deterministic fan-out: out[i] = fn(i) with out in canonical
     * index order, however the calls were scheduled.
     */
    template <typename T, typename F>
    std::vector<T>
    parallelMap(std::size_t n, F &&fn)
    {
        std::vector<T> out(n);
        parallelFor(n, [&](std::size_t i) { out[i] = fn(i); });
        return out;
    }

    /** Enqueue a single task; the future carries its result. */
    template <typename F>
    auto
    submit(F &&f) -> std::future<std::invoke_result_t<std::decay_t<F>>>
    {
        using R = std::invoke_result_t<std::decay_t<F>>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(f));
        std::future<R> fut = task->get_future();
        auto batch = std::make_shared<Batch>();
        batch->fn = [task](std::size_t) { (*task)(); };
        batch->n = 1;
        enqueue(batch);
        return fut;
    }

  private:
    /** One indexed fan-out: claim next, run fn(next), count done. */
    struct Batch
    {
        std::function<void(std::size_t)> fn;
        std::size_t n = 0;
        std::size_t next = 0; ///< first unclaimed index (under mu)
        std::size_t done = 0; ///< finished calls (under mu)
    };

    void enqueue(const std::shared_ptr<Batch> &batch);
    void workerLoop();

    /** Drop fully-claimed batches off the queue front (under mu). */
    bool haveWork();

    std::mutex mu;
    std::condition_variable workCv; ///< workers: work available
    std::condition_variable doneCv; ///< waiters: some batch finished
    std::deque<std::shared_ptr<Batch>> queue;
    std::vector<std::thread> workers;
    bool stopping = false;
};

} // namespace starnuma

#endif // STARNUMA_SIM_PARALLEL_HH
