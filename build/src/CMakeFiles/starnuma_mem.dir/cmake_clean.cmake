file(REMOVE_RECURSE
  "CMakeFiles/starnuma_mem.dir/mem/cache.cc.o"
  "CMakeFiles/starnuma_mem.dir/mem/cache.cc.o.d"
  "CMakeFiles/starnuma_mem.dir/mem/directory.cc.o"
  "CMakeFiles/starnuma_mem.dir/mem/directory.cc.o.d"
  "CMakeFiles/starnuma_mem.dir/mem/dram.cc.o"
  "CMakeFiles/starnuma_mem.dir/mem/dram.cc.o.d"
  "CMakeFiles/starnuma_mem.dir/mem/page_map.cc.o"
  "CMakeFiles/starnuma_mem.dir/mem/page_map.cc.o.d"
  "libstarnuma_mem.a"
  "libstarnuma_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starnuma_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
