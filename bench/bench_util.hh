/**
 * @file
 * Shared helpers for the figure/table reproduction benches. Each
 * bench binary registers one google-benchmark entry per evaluated
 * configuration (Iterations(1) — the simulations are deterministic)
 * and prints a paper-style table after the benchmark report.
 * Experiment results are memoized per process; workload traces are
 * additionally cached on disk (STARNUMA_TRACE_DIR, default
 * .trace_cache) so the bench suite captures each workload once.
 */

#ifndef STARNUMA_BENCH_BENCH_UTIL_HH
#define STARNUMA_BENCH_BENCH_UTIL_HH

#include <string>
#include <vector>

#include "driver/experiment.hh"
#include "driver/sweep.hh"

namespace starnuma
{
namespace benchutil
{

/** Print a titled section containing a rendered table. */
void printSection(const std::string &title, const std::string &body);

/**
 * True when the STARNUMA_BENCH_FAST environment variable is set;
 * benches then shrink the simulated scale for quick smoke runs.
 */
bool fastMode();

/** The scale benches run at (SimScale::sc1, shrunk in fast mode). */
SimScale benchScale();

/**
 * Fan @p jobs out across the worker pool (driver::runSweep) and
 * memoize every result, so subsequent cachedRun/cachedSingleSocket
 * calls for the same configurations are hits. The sweep results are
 * bitwise-identical to running each entry serially; the bench binary
 * just reaches them as fast as the hardware allows.
 */
void prewarm(const std::vector<driver::SweepJob> &jobs);

/** Memoized full-pipeline run. */
const driver::ExperimentResult &cachedRun(
    const std::string &workload, const driver::SystemSetup &setup,
    const SimScale &scale);

/** Memoized single-socket reference run (Table III). */
const driver::RunMetrics &cachedSingleSocket(
    const std::string &workload, const SimScale &scale);

/** Speedup of @p setup over the baseline system. */
double speedupOverBaseline(const std::string &workload,
                           const driver::SystemSetup &setup,
                           const SimScale &scale);

/** The workloads evaluated by the paper-wide benches. */
std::vector<std::string> benchWorkloads();

/**
 * Record one scalar result under a dotted key (e.g.
 * "fig08.speedup_t16.bfs"). Results are written as sorted-key JSON
 * when a --bench-json=<path> flag (or STARNUMA_BENCH_JSON) is
 * active; no-op otherwise.
 */
void recordResult(const std::string &key, double value);

/**
 * Consume the observability flags and start the wall-time clock.
 * Call first thing in main(), before prewarm(), so stats/trace
 * capture the sweep itself. Idempotent; runBenchmarks() calls it as
 * a fallback. Flags handled (removed from argv):
 *
 *   --stats-out=<path>       write the deterministic stats artifact
 *                            (same as STARNUMA_STATS_OUT)
 *   --trace-out=<path>       write a Chrome trace of the run
 *                            (same as STARNUMA_TRACE_OUT)
 *   --timeseries-out=<path>  write the deterministic per-epoch
 *                            time series, JSON or .csv
 *                            (same as STARNUMA_TIMESERIES_OUT)
 *   --audit-out=<path>       write the migration audit log, CSV or
 *                            .json (same as STARNUMA_AUDIT_OUT)
 *   --bench-json=<path>      write recorded results + wall time as
 *                            JSON (same as STARNUMA_BENCH_JSON)
 */
void initBench(int *argc, char **argv);

/**
 * Register the standard `--benchmark_*` flags, run the registered
 * benchmarks, and return as main() would.
 */
int runBenchmarks(int argc, char **argv);

} // namespace benchutil
} // namespace starnuma

#endif // STARNUMA_BENCH_BENCH_UTIL_HH
