// Fixture: D6 clean — downward includes follow the layer DAG, and
// a justified `// lint: layer-exception` annotation silences a
// deliberate upward dependency. Nothing in this file may be
// flagged.

#ifndef STARNUMA_MEM_D6_CLEAN_INCLUDE_HH
#define STARNUMA_MEM_D6_CLEAN_INCLUDE_HH

#include "sim/types.hh"      // downward: fine
#include "topology/link.hh"  // same-tier dependency mem is allowed
// lint: layer-exception — fixture stand-in for a justified upward
// dependency (see core/replication.hh for the real-tree example).
#include "core/oracle.hh"

namespace fixture
{

struct CleanUser
{
    int placeholder = 0;
};

} // namespace fixture

#endif // STARNUMA_MEM_D6_CLEAN_INCLUDE_HH
