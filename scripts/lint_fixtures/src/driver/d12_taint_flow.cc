// Fixture: D12 nondeterminism taint. Values born at taint sources
// (wall clock, pointer-to-integer casts, unordered-container
// iteration) flow through assignments, returns and parameters into
// artifact sinks, and the analyzer reports the full chain. The
// functions are cold-annotated so only the flow rule fires (the
// registration discipline is d14_unregistered_sink.cc's job).
// Never compiled; consumed by starnuma_taint.py --self-test.

namespace starnuma
{

struct TimeSeries;
struct Checkpoint;
struct AuditLog;

// The wall-clock read that starts the interprocedural flow.
unsigned long
d12HostNow()
{
    return static_cast<unsigned long>(
        std::chrono::steady_clock::now().time_since_epoch().count());
}

// Taint passes through a parameter and back out the return value.
// lint: cold-path fixture scaffolding
double
d12Scale(unsigned long ns)
{
    return static_cast<double>(ns) / 1000.0;
}

// Source -> d12HostNow -> local -> d12Scale -> sink argument.
// lint: cold-path fixture scaffolding
void
d12EmitSample(TimeSeries &series, int stream)
{
    unsigned long ns = d12HostNow();
    double v = d12Scale(ns);
    series.sample(stream, 0, v); // expect-lint: D12
}

// A pointer value laundered into an integer becomes checkpoint
// bytes: ASLR makes it differ run to run.
// lint: cold-path fixture scaffolding
void
d12StampCheckpoint(Checkpoint &cp, const char *buf)
{
    auto tag = reinterpret_cast<std::uintptr_t>(buf);
    cp.header = tag; // expect-lint: D12
}

// Iteration order of an unordered container is
// implementation-defined; emitting per-element values in that
// order makes the audit artifact nondeterministic.
// lint: cold-path fixture scaffolding
void
d12AuditVisitOrder(AuditLog &audit)
{
    std::unordered_map<int, int> visits;
    for (const auto &kv : visits) // expect-lint: D1
        audit.append(kv.second); // expect-lint: D12
}

} // namespace starnuma
