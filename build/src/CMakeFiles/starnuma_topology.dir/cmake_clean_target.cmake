file(REMOVE_RECURSE
  "libstarnuma_topology.a"
)
