/**
 * @file
 * Fixed-size monotonic arena (DESIGN.md §12). Per-phase metadata
 * (per-page counter blocks, scratch tables) is carved out of one
 * contiguous buffer with a bump pointer: allocation is an add and
 * an alignment round-up, and the whole arena is released at once by
 * reset() when the phase ends.
 *
 * Lifetime rules: an arena never frees individual allocations;
 * pointers stay valid until reset() (or destruction). Exhaustion is
 * reported, not overflowed — allocate() returns nullptr when the
 * request does not fit, and the caller either chains a fresh arena
 * or fails loudly. The arena never grows behind the caller's back,
 * so pointers handed out are stable for its whole lifetime.
 */

#ifndef STARNUMA_SIM_ARENA_HH
#define STARNUMA_SIM_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>

#include "sim/logging.hh"

namespace starnuma
{

/** Monotonic bump allocator over one fixed buffer. */
class Arena
{
  public:
    explicit Arena(std::size_t capacity_bytes)
        : storage(new unsigned char[capacity_bytes]),
          capacity_(capacity_bytes)
    {
        sn_assert(capacity_bytes > 0, "arena needs capacity");
    }

    Arena(Arena &&) = default;
    Arena &operator=(Arena &&) = default;
    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /**
     * Allocate @p bytes aligned to @p align (a power of two).
     * @return nullptr when the arena is exhausted — the request is
     * counted but never overflows the buffer.
     */
    void *
    allocate(std::size_t bytes,
             std::size_t align = alignof(std::max_align_t))
    {
        sn_assert(align != 0 && (align & (align - 1)) == 0,
                  "arena alignment must be a power of two");
        // Align the actual address, not the offset: new[] only
        // guarantees max_align_t, so requests above that would
        // come back misaligned if the buffer base is unlucky.
        auto base =
            reinterpret_cast<std::uintptr_t>(storage.get());
        std::size_t aligned = static_cast<std::size_t>(
            ((base + offset + align - 1) & ~(align - 1)) - base);
        if (aligned > capacity_ || capacity_ - aligned < bytes) {
            ++exhaustions_;
            return nullptr;
        }
        offset = aligned + bytes;
        return storage.get() + aligned;
    }

    /**
     * Allocate a zero-initialized array of @p n trivially-copyable
     * @p T. @return nullptr on exhaustion.
     */
    template <typename T>
    T *
    allocArray(std::size_t n)
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "arena arrays skip constructors");
        if (n > capacity_ / sizeof(T)) {
            ++exhaustions_;
            return nullptr;
        }
        void *p = allocate(n * sizeof(T), alignof(T));
        if (p)
            std::memset(p, 0, n * sizeof(T));
        return static_cast<T *>(p);
    }

    /** Release everything at once; capacity is fully available. */
    void reset() { offset = 0; }

    std::size_t capacity() const { return capacity_; }
    std::size_t used() const { return offset; }
    std::size_t remaining() const { return capacity_ - offset; }

    /** Allocations refused for lack of space since construction. */
    std::uint64_t exhaustions() const { return exhaustions_; }

  private:
    std::unique_ptr<unsigned char[]> storage;
    std::size_t capacity_;
    std::size_t offset = 0;
    std::uint64_t exhaustions_ = 0;
};

} // namespace starnuma

#endif // STARNUMA_SIM_ARENA_HH
