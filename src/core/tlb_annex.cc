#include "core/tlb_annex.hh"

#include "sim/logging.hh"

namespace starnuma
{
namespace core
{

namespace
{

std::size_t
toPowerOfTwo(std::size_t v)
{
    std::size_t p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

} // anonymous namespace

// lint: cold-path construction is per-run setup
TlbAnnex::TlbAnnex(const TlbConfig &config,
                   RegionTracker &owning_tracker, NodeId socket_id)
    : tracker(owning_tracker), socket(socket_id),
      ways(config.ways),
      useClock(0), hits_(0), misses_(0), flushes_(0)
{
    sn_assert(config.entries >= config.ways && config.ways > 0,
              "bad TLB geometry");
    numSets = toPowerOfTwo(config.entries / config.ways);
    sets.assign(numSets * ways, Entry{});
    counterMax =
        tracker.counterBits() == 0
            ? 0
            : static_cast<std::uint32_t>(
                  (1ULL << tracker.counterBits()) - 1);
}

std::size_t
TlbAnnex::setOf(PageNum page) const
{
    return static_cast<std::size_t>(page.value()) & (numSets - 1);
}

void
TlbAnnex::flushEntry(Entry &e)
{
    if (!e.valid)
        return;
    // The PTW adds the annex value into the metadata region. With a
    // T_0 design there is no value to add: the presence bit alone is
    // recorded (the key saving of T_0, §III-D1).
    tracker.record(pageBase(e.page), socket,
                   counterMax == 0 ? 0 : e.counter);
    e.counter = 0;
    e.marker = false;
    ++flushes_;
}

// lint: hot-path one lookup per LLC-missing access
void
TlbAnnex::recordAccess(Addr vaddr)
{
    PageNum page = pageNumber(vaddr);
    Entry *set = &sets[setOf(page) * ways];
    ++useClock;

    Entry *lru = &set[0];
    for (int w = 0; w < ways; ++w) {
        Entry &e = set[w];
        if (e.valid && e.page == page) {
            ++hits_;
            e.lastUse = useClock;
            if (e.marker) {
                // Periodic marker hit: fold the running count into
                // memory so hot resident entries are not invisible.
                flushEntry(e);
            }
            if (counterMax > 0 && e.counter < counterMax)
                ++e.counter;
            else if (counterMax == 0)
                e.counter = 0;
            return;
        }
        if (!e.valid)
            lru = &e;
        else if (lru->valid && e.lastUse < lru->lastUse)
            lru = &e;
    }

    ++misses_;
    if (directory && lru->valid)
        directory->evict(lru->page, coreId);
    flushEntry(*lru); // PTW folds the victim's annex into memory
    if (directory)
        directory->fill(page, coreId);
    lru->valid = true;
    lru->page = page;
    lru->lastUse = useClock;
    lru->counter = counterMax > 0 ? 1 : 0;
    lru->marker = false;
    // The fill itself also records the toucher's presence bit: a
    // page walk reaches the metadata region anyway.
    if (counterMax == 0)
        tracker.record(vaddr, socket, 0);
}

// lint: hot-path one batched update per replayed record run
void
TlbAnnex::recordAccessRun(Addr vaddr, std::uint64_t count)
{
    recordAccess(vaddr);
    if (count <= 1)
        return;
    PageNum page = pageNumber(vaddr);
    Entry *set = &sets[setOf(page) * ways];
    Entry *e = nullptr;
    for (int w = 0; w < ways; ++w) {
        if (set[w].valid && set[w].page == page) {
            e = &set[w];
            break;
        }
    }
    sn_assert(e != nullptr, "just-accessed page must be resident");
    std::uint64_t extra = count - 1;
    useClock += extra;
    hits_ += extra;
    e->lastUse = useClock;
    if (counterMax > 0) {
        std::uint64_t next = e->counter + extra;
        e->counter = next > counterMax
                         ? counterMax
                         : static_cast<std::uint32_t>(next);
    }
}

void
TlbAnnex::setMarkers()
{
    for (Entry &e : sets)
        if (e.valid)
            e.marker = true;
}

void
TlbAnnex::flushAll()
{
    for (Entry &e : sets)
        if (e.valid && (e.counter > 0 || counterMax == 0))
            flushEntry(e);
}

void
TlbAnnex::saveState(std::vector<std::uint8_t> &out) const
{
    putVarint(out, sets.size());
    putVarint(out, useClock);
    putVarint(out, hits_);
    putVarint(out, misses_);
    putVarint(out, flushes_);
    std::uint64_t valid = 0;
    for (const Entry &e : sets)
        if (e.valid)
            ++valid;
    putVarint(out, valid);
    for (std::size_t slot = 0; slot < sets.size(); ++slot) {
        const Entry &e = sets[slot];
        if (!e.valid)
            continue;
        putVarint(out, slot);
        putVarint(out, e.page.value());
        putVarint(out, e.lastUse);
        putVarint(out, e.counter);
        putVarint(out, e.marker ? 1 : 0);
    }
}

bool
TlbAnnex::loadState(ByteReader &r)
{
    std::uint64_t n_slots = 0, clock = 0, hits = 0, misses = 0,
                  flushes = 0, valid = 0;
    if (!r.getVarint(n_slots) || n_slots != sets.size())
        return false;
    for (const Entry &e : sets)
        if (e.valid)
            return false;
    if (!r.getVarint(clock) || !r.getVarint(hits) ||
        !r.getVarint(misses) || !r.getVarint(flushes) ||
        !r.getVarint(valid) || valid > sets.size())
        return false;
    for (std::uint64_t i = 0; i < valid; ++i) {
        std::uint64_t slot = 0, page = 0, last = 0, counter = 0,
                      marker = 0;
        if (!r.getVarint(slot) || slot >= sets.size() ||
            !r.getVarint(page) || !r.getVarint(last) ||
            !r.getVarint(counter) || counter > counterMax ||
            !r.getVarint(marker) || marker > 1)
            return false;
        Entry &e = sets[slot];
        if (e.valid)
            return false;
        e.valid = true;
        e.page = PageNum(page);
        e.lastUse = last;
        e.counter = static_cast<std::uint32_t>(counter);
        e.marker = marker != 0;
    }
    useClock = clock;
    hits_ = hits;
    misses_ = misses;
    flushes_ = flushes;
    return true;
}

bool
TlbAnnex::shootdown(PageNum pn)
{
    Entry *set = &sets[setOf(pn) * ways];
    for (int w = 0; w < ways; ++w) {
        Entry &e = set[w];
        if (e.valid && e.page == pn) {
            flushEntry(e);
            e.valid = false;
            if (directory)
                directory->evict(pn, coreId);
            return true;
        }
    }
    return false;
}

} // namespace core
} // namespace starnuma
