/**
 * @file
 * Data-serving workload: a B+-tree keyed store standing in for
 * Masstree (§IV-E: uniform key popularity, 50/50 read/write). The
 * tree's upper levels are the widely shared hot set; uniform value
 * reads/writes spread read-write sharing across the whole leaf and
 * value space — the access structure behind Masstree's 100%
 * migrations-to-pool in Table IV.
 */

#ifndef STARNUMA_WORKLOADS_KVSTORE_HH
#define STARNUMA_WORKLOADS_KVSTORE_HH

#include <cstdint>
#include <vector>

#include "sim/rng.hh"
#include "workloads/workload.hh"

namespace starnuma
{
namespace workloads
{

/** Fixed-fanout B+-tree over uint64 keys with 64 B values. */
class KvStore : public Workload
{
  public:
    explicit KvStore(std::uint64_t rng_seed, std::uint32_t keys = 1u
                                                                 << 19,
                     double read_fraction = 0.5);

    std::string name() const override { return "masstree"; }
    void setup(trace::CaptureContext &ctx,
               const SimScale &scale) override;
    void step(ThreadId t, trace::CaptureContext &ctx) override;

    /** Untraced lookup, for correctness tests. */
    bool lookupValue(std::uint64_t key, std::uint64_t *out) const;

    int treeDepth() const { return depth; }

  private:
    static constexpr int fanout = 14; ///< keys per node

    struct Node
    {
        std::uint64_t keys[fanout];
        std::uint32_t child[fanout + 1]; ///< node id or value id
        int count = 0;
        bool leaf = true;
    };

    /** Traced root-to-leaf descent; returns the value id. */
    std::uint32_t descend(trace::CaptureContext &ctx, ThreadId t,
                          std::uint64_t key);

    std::uint64_t keyAt(std::uint32_t i) const;

    std::uint64_t seed;
    std::uint32_t numKeys;
    double readFraction;
    int depth = 0;
    std::uint32_t root = 0;

    std::vector<Node> nodes;
    trace::TracedArray<std::uint8_t> nodeMem;  ///< node storage
    trace::TracedArray<std::uint8_t> valueMem; ///< 64 B per value
    std::vector<std::uint64_t> values;
    std::vector<Rng> threadRng;
};

} // namespace workloads
} // namespace starnuma

#endif // STARNUMA_WORKLOADS_KVSTORE_HH
