#include "workloads/kvstore.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace starnuma
{
namespace workloads
{

namespace
{

/** Simulated bytes per tree node (three cache lines). */
constexpr Addr nodeBytes = 192;

/** Simulated bytes per value. */
constexpr Addr valueBytes = 64;

} // anonymous namespace

KvStore::KvStore(std::uint64_t rng_seed, std::uint32_t keys,
                 double read_fraction)
    : seed(rng_seed), numKeys(keys), readFraction(read_fraction)
{
}

std::uint64_t
KvStore::keyAt(std::uint32_t i) const
{
    return i; // dense key space; uniform popularity via index draw
}

void
KvStore::setup(trace::CaptureContext &ctx, const SimScale &scale)
{
    int threads = scale.threads();
    threadRng.clear();
    for (int t = 0; t < threads; ++t)
        threadRng.emplace_back(seed + 1000 + t);

    // Bulk-load, bottom up. Leaves map keys to value ids.
    nodes.clear();
    values.assign(numKeys, 0);
    std::vector<std::uint32_t> level;
    std::vector<std::uint64_t> level_min;
    for (std::uint32_t k = 0; k < numKeys; k += fanout) {
        Node n;
        n.leaf = true;
        n.count = static_cast<int>(
            std::min<std::uint32_t>(fanout, numKeys - k));
        for (int i = 0; i < n.count; ++i) {
            n.keys[i] = keyAt(k + i);
            n.child[i] = k + i; // value id
            values[k + i] = keyAt(k + i) * 3 + 1;
        }
        level.push_back(static_cast<std::uint32_t>(nodes.size()));
        level_min.push_back(n.keys[0]);
        nodes.push_back(n);
    }
    depth = 1;
    while (level.size() > 1) {
        std::vector<std::uint32_t> up;
        std::vector<std::uint64_t> up_min;
        for (std::size_t i = 0; i < level.size(); i += fanout + 1) {
            Node n;
            n.leaf = false;
            std::size_t kids = std::min<std::size_t>(
                fanout + 1, level.size() - i);
            n.count = static_cast<int>(kids) - 1;
            for (std::size_t j = 0; j < kids; ++j) {
                n.child[j] = level[i + j];
                if (j > 0)
                    n.keys[j - 1] = level_min[i + j];
            }
            up.push_back(static_cast<std::uint32_t>(nodes.size()));
            up_min.push_back(level_min[i]);
            nodes.push_back(n);
        }
        level.swap(up);
        level_min.swap(up_min);
        ++depth;
    }
    root = level.front();

    nodeMem.allocate(ctx, nodes.size() * nodeBytes);
    valueMem.allocate(ctx, static_cast<Addr>(numKeys) * valueBytes);

    // Partitioned load phase: thread t first-touches the values and
    // leaves of its key range; the top of the tree lands wherever
    // the finishing thread runs (here: thread 0).
    for (int t = 0; t < threads; ++t) {
        std::uint32_t lo = static_cast<std::uint32_t>(
            static_cast<std::uint64_t>(numKeys) * t / threads);
        std::uint32_t hi = static_cast<std::uint32_t>(
            static_cast<std::uint64_t>(numKeys) * (t + 1) / threads);
        for (std::uint32_t k = lo; k < hi; ++k)
            ctx.store(t, valueMem.base() + k * valueBytes);
        for (std::uint32_t leaf = lo / fanout;
             leaf <= (hi ? (hi - 1) / fanout : 0); ++leaf)
            ctx.store(t, nodeMem.base() + leaf * nodeBytes);
    }
    ThreadId finisher = threads / 2;
    for (std::size_t n = numKeys / fanout + 1; n < nodes.size(); ++n)
        ctx.store(finisher, nodeMem.base() + n * nodeBytes);
}

std::uint32_t
KvStore::descend(trace::CaptureContext &ctx, ThreadId t,
                 std::uint64_t key)
{
    std::uint32_t cur = root;
    for (;;) {
        const Node &n = nodes[cur];
        Addr base = nodeMem.base() + cur * nodeBytes;
        // A binary search over the node touches its key lines and
        // the child-pointer line.
        ctx.load(t, base);
        ctx.load(t, base + 2 * blockBytes);
        ctx.instr(t, 8);
        if (n.leaf) {
            const std::uint64_t *pos = std::lower_bound(
                n.keys, n.keys + n.count, key);
            sn_assert(pos != n.keys + n.count && *pos == key,
                      "kvstore descend lost key");
            return n.child[pos - n.keys];
        }
        const std::uint64_t *pos =
            std::upper_bound(n.keys, n.keys + n.count, key);
        cur = n.child[pos - n.keys];
    }
}

void
KvStore::step(ThreadId t, trace::CaptureContext &ctx)
{
    Rng &rng = threadRng[t];
    std::uint32_t idx = rng.range32(numKeys);
    std::uint64_t key = keyAt(idx);
    std::uint32_t vid = descend(ctx, t, key);
    Addr vaddr = valueMem.base() + static_cast<Addr>(vid) *
                                       valueBytes;
    if (rng.chance(readFraction)) {
        ctx.load(t, vaddr);
        ctx.instr(t, 12);
    } else {
        ctx.load(t, vaddr);
        values[vid] = key * 7 + rng.next32() % 16;
        ctx.store(t, vaddr);
        ctx.instr(t, 14);
    }
}

bool
KvStore::lookupValue(std::uint64_t key, std::uint64_t *out) const
{
    if (key >= numKeys)
        return false;
    std::uint32_t cur = root;
    for (;;) {
        const Node &n = nodes[cur];
        if (n.leaf) {
            const std::uint64_t *pos = std::lower_bound(
                n.keys, n.keys + n.count, key);
            if (pos == n.keys + n.count || *pos != key)
                return false;
            *out = values[n.child[pos - n.keys]];
            return true;
        }
        const std::uint64_t *pos =
            std::upper_bound(n.keys, n.keys + n.count, key);
        cur = n.child[pos - n.keys];
    }
}

} // namespace workloads
} // namespace starnuma
