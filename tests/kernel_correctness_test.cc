/**
 * @file
 * Algorithm-correctness certificates for the workload kernels.
 * The capture can stop a kernel mid-phase, so each test checks an
 * invariant that holds at *any* point of a correct execution:
 * BFS parent edges exist in the graph; CC labels stay within their
 * vertex's connected component (vs a union-find ground truth);
 * SSSP distances always have a valid relaxation certificate; FMI
 * counts equal a naive text scan; TC's count is monotone and
 * deterministic.
 */

#include <gtest/gtest.h>

#include <numeric>
#include <queue>
#include <vector>

#include "workloads/gap.hh"
#include "workloads/genomics.hh"

namespace starnuma
{
namespace workloads
{
namespace
{

SimScale
kernelScale()
{
    SimScale s;
    s.sockets = 4;
    s.socketsPerChassis = 2;
    s.coresPerSocket = 2;
    s.phases = 1;
    s.phaseInstructions = 60000;
    return s;
}

/** Plain union-find for component ground truth. */
struct UnionFind
{
    explicit UnionFind(std::size_t n) : parent(n)
    {
        std::iota(parent.begin(), parent.end(), 0);
    }

    std::uint32_t
    find(std::uint32_t v)
    {
        while (parent[v] != v) {
            parent[v] = parent[parent[v]];
            v = parent[v];
        }
        return v;
    }

    void
    unite(std::uint32_t a, std::uint32_t b)
    {
        parent[find(a)] = find(b);
    }

    std::vector<std::uint32_t> parent;
};

bool
hasEdge(const CsrGraph &g, std::uint32_t u, std::uint32_t v)
{
    return std::binary_search(g.neighbors.begin() + g.offsets[u],
                              g.neighbors.begin() + g.offsets[u + 1],
                              v);
}

TEST(KernelCorrectness, BfsParentEdgesExist)
{
    Bfs bfs(5, /*scale=*/11, /*degree=*/8);
    auto trace = bfs.capture(kernelScale());
    (void)trace;
    const CsrGraph &g = bfs.csr();
    std::uint32_t epoch = bfs.currentEpoch();
    int visited = 0;
    for (std::uint32_t v = 0; v < g.vertices; ++v) {
        std::uint64_t e = bfs.parentEntry(v);
        if ((e >> 32) != epoch)
            continue; // not reached in the current search
        ++visited;
        auto p = static_cast<std::uint32_t>(e);
        // The source is its own parent; every other tree edge must
        // be a real graph edge.
        if (p != v) {
            EXPECT_TRUE(hasEdge(g, p, v)) << p << "->" << v;
        }
    }
    EXPECT_GT(visited, 1);
}

TEST(KernelCorrectness, CcLabelsStayWithinComponents)
{
    ConnectedComponents cc(5, 11, 8);
    auto trace = cc.capture(kernelScale());
    (void)trace;
    const CsrGraph &g = cc.csr();
    UnionFind uf(g.vertices);
    for (std::uint32_t v = 0; v < g.vertices; ++v)
        for (std::uint64_t e = g.offsets[v]; e < g.offsets[v + 1];
             ++e)
            uf.unite(v, g.neighbors[e]);
    // A propagated label is always some vertex of v's component,
    // and never exceeds v's own id (labels only shrink).
    for (std::uint32_t v = 0; v < g.vertices; ++v) {
        std::uint32_t label = cc.labelOf(v);
        EXPECT_LE(label, v);
        EXPECT_EQ(uf.find(label), uf.find(v)) << "vertex " << v;
    }
}

TEST(KernelCorrectness, SsspRelaxationCertificate)
{
    Sssp sssp(5, 11, 8);
    auto trace = sssp.capture(kernelScale());
    (void)trace;
    const CsrGraph &g = sssp.csr();
    std::uint32_t source = sssp.sourceVertex();
    EXPECT_EQ(sssp.distanceOf(source), 0u);

    // Dijkstra ground truth. Every label the kernel ever writes is
    // the length of a real path from the source (relaxations only
    // chain real edges), so at any point of execution:
    //   true shortest distance <= label.
    std::vector<std::uint64_t> truth(g.vertices,
                                     ~std::uint64_t(0));
    truth[source] = 0;
    using Item = std::pair<std::uint64_t, std::uint32_t>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
    pq.emplace(0, source);
    while (!pq.empty()) {
        auto [d, u] = pq.top();
        pq.pop();
        if (d > truth[u])
            continue;
        for (std::uint64_t e = g.offsets[u]; e < g.offsets[u + 1];
             ++e) {
            std::uint32_t v = g.neighbors[e];
            std::uint64_t nd = d + sssp.weightOf(e);
            if (nd < truth[v]) {
                truth[v] = nd;
                pq.emplace(nd, v);
            }
        }
    }

    int reached = 0;
    for (std::uint32_t v = 0; v < g.vertices; ++v) {
        std::uint64_t dv = sssp.distanceOf(v);
        if (dv == ~std::uint64_t(0))
            continue;
        ++reached;
        EXPECT_GE(dv, truth[v]) << "vertex " << v;
        EXPECT_NE(truth[v], ~std::uint64_t(0)) << "vertex " << v;
    }
    EXPECT_GT(reached, 1);
}

TEST(KernelCorrectness, TcCountMonotoneAndDeterministic)
{
    TriangleCount a(5, 10, 8), b(5, 10, 8);
    SimScale s = kernelScale();
    auto ta = a.capture(s);
    auto tb = b.capture(s);
    (void)ta;
    (void)tb;
    EXPECT_GT(a.trianglesCounted(), 0u);
    EXPECT_EQ(a.trianglesCounted(), b.trianglesCounted());
}

TEST(KernelCorrectness, FmiCountsMatchNaiveScan)
{
    Fmi fmi(5, 1u << 12);
    SimScale s = kernelScale();
    trace::CaptureContext ctx(s.threads());
    ctx.beginSetup();
    fmi.setup(ctx, s);
    ctx.endSetup();

    // Rebuild the text the same way the index did.
    Rng gen(5);
    std::vector<std::uint8_t> text(1u << 12);
    for (auto &c : text)
        c = static_cast<std::uint8_t>(gen.range32(4));

    Rng pat(123);
    for (int q = 0; q < 30; ++q) {
        int len = 1 + static_cast<int>(pat.range32(6));
        std::string pattern;
        for (int i = 0; i < len; ++i)
            pattern.push_back(
                static_cast<char>(pat.range32(4)));
        // Naive count over cyclic rotations (BWT convention).
        std::uint64_t naive = 0;
        for (std::size_t i = 0; i < text.size(); ++i) {
            bool match = true;
            for (int j = 0; j < len && match; ++j)
                match = text[(i + j) & (text.size() - 1)] ==
                        static_cast<std::uint8_t>(pattern[j]);
            naive += match;
        }
        EXPECT_EQ(fmi.count(pattern), naive)
            << "pattern #" << q << " len " << len;
    }
}

} // anonymous namespace
} // namespace workloads
} // namespace starnuma
