#include "mem/page_map.hh"

#include "sim/logging.hh"

namespace starnuma
{
namespace mem
{

PageMap::PageMap(int nodes) : counts(nodes, 0), firstTouch(0)
{
    sn_assert(nodes > 0, "page map needs at least one node");
}

// lint: cold-path one-time setup before the replay loop
void
PageMap::preallocate(PageNum base, std::uint64_t pages)
{
    sn_assert(map.empty() && flat.empty(),
              "preallocate before mapping any page");
    if (pages == 0)
        return;
    flatBase = base;
    flat.assign(pages, invalidNode);
    order.reserve(pages);
}

NodeId
PageMap::touchMapped(PageNum page, NodeId toucher)
{
    auto [it, inserted] = map.try_emplace(page, toucher);
    if (inserted) {
        sn_assert(toucher >= 0 &&
                      static_cast<std::size_t>(toucher) < counts.size(),
                  "first-touch by unknown node %d", toucher);
        ++counts[toucher];
        ++firstTouch;
    }
    return it->second;
}

void
PageMap::setHome(PageNum page, NodeId node)
{
    sn_assert(node >= 0 &&
                  static_cast<std::size_t>(node) < counts.size(),
              "migrating page to unknown node %d", node);
    if (flat.empty()) {
        auto it = map.find(page);
        if (it == map.end()) {
            map.emplace(page, node);
        } else {
            --counts[it->second];
            it->second = node;
        }
    } else {
        NodeId &h = flat[flatSlot(page)];
        if (h == invalidNode)
            order.push_back(page);
        else
            --counts[h];
        h = node;
    }
    ++counts[node];
}

void
PageMap::saveState(std::vector<std::uint8_t> &out) const
{
    bool flat_mode = !flat.empty();
    putVarint(out, flat_mode ? 1 : 0);
    if (flat_mode) {
        putVarint(out, flatBase.value());
        putVarint(out, flat.size());
    }
    putVarint(out, firstTouch);
    putVarint(out, totalPages());
    std::int64_t prev = 0;
    forEach([&](PageNum page, NodeId node) {
        std::int64_t v = static_cast<std::int64_t>(page.value());
        putVarint(out, zigzag(v - prev));
        prev = v;
        putVarint(out, static_cast<std::uint64_t>(node));
    });
}

// lint: cold-path resume-state decode, once per resumed run
bool
PageMap::loadState(ByteReader &r)
{
    if (!map.empty() || !flat.empty())
        return false;
    std::uint64_t flat_mode = 0, ft = 0, n = 0;
    if (!r.getVarint(flat_mode) || flat_mode > 1)
        return false;
    if (flat_mode) {
        std::uint64_t base = 0, pages = 0;
        if (!r.getVarint(base) || !r.getVarint(pages))
            return false;
        preallocate(PageNum(base), pages);
    }
    if (!r.getVarint(ft) || !r.getVarint(n) || n > r.remaining())
        return false;
    std::int64_t prev = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
        std::uint64_t delta = 0, node = 0;
        if (!r.getVarint(delta) || !r.getVarint(node) ||
            node >= counts.size())
            return false;
        prev += unzigzag(delta);
        PageNum page(static_cast<std::uint64_t>(prev));
        if (flat_mode) {
            std::uint64_t slot = page.value() - flatBase.value();
            if (slot >= flat.size() || flat[slot] != invalidNode)
                return false;
            flat[slot] = static_cast<NodeId>(node);
            order.push_back(page);
        } else {
            auto [it, inserted] = map.try_emplace(
                page, static_cast<NodeId>(node));
            (void)it;
            if (!inserted)
                return false;
        }
        ++counts[node];
    }
    firstTouch = ft;
    return true;
}

std::uint64_t
PageMap::pagesAt(NodeId node) const
{
    sn_assert(node >= 0 &&
                  static_cast<std::size_t>(node) < counts.size(),
              "pagesAt of unknown node %d", node);
    return counts[node];
}

} // namespace mem
} // namespace starnuma
