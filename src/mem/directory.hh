/**
 * @file
 * Directory-based MESI coherence at cache-block granularity,
 * tracked per socket (i.e., per shared LLC), as §III-C prescribes:
 * directory information is distributed across sockets and the pool
 * aligned with the address space; accesses missing in their
 * originating socket are routed to the home node, which initiates
 * all subsequent coherence actions.
 *
 * The directory distinguishes the two block-transfer shapes of
 * Fig 4: a 3-hop cache-to-cache transfer when the home is a socket
 * (R -> H -> O -> R) and a 4-hop transfer through the pool when the
 * home is the pool (R -> H -> O -> H -> R).
 */

#ifndef STARNUMA_MEM_DIRECTORY_HH
#define STARNUMA_MEM_DIRECTORY_HH

#include <cstdint>
#include <string>

#include "sim/flat_map.hh"
#include "sim/types.hh"

namespace starnuma
{

namespace obs
{
class Registry;
} // namespace obs

namespace mem
{

/** What the directory decided for one LLC-missing access. */
struct CoherenceResult
{
    /** Data supplied by another socket's cache, not by memory. */
    bool blockTransfer = false;

    /** Supplier socket when blockTransfer is set. */
    NodeId owner = -1;

    /** True when the transfer is the 4-hop via-pool shape. */
    bool viaPool = false;

    /** Number of remote sharers invalidated (writes only). */
    int invalidations = 0;

    /** Bit mask of the sockets that were invalidated. */
    std::uint64_t invalidatedMask = 0;
};

/** Distributed full-map MESI directory (bit-vector of sockets). */
class Directory
{
  public:
    explicit Directory(int sockets);

    /**
     * Record an LLC miss for @p block by socket @p requester,
     * homed at @p home (a socket or the pool node id).
     *
     * @param write true for stores (requests ownership).
     * @return the coherence actions the protocol performs.
     */
    CoherenceResult access(Addr block, NodeId requester, bool write,
                           NodeId home);

    /**
     * Socket @p socket dropped @p block from its LLC (capacity
     * eviction or shootdown); clears its presence bit.
     */
    void evict(Addr block, NodeId socket);

    /** True if any socket caches @p block. */
    bool cached(Addr block) const;

    /** Number of sockets currently sharing @p block. */
    int sharers(Addr block) const;

    /** Dirty-owner socket of @p block, or -1. */
    NodeId dirtyOwner(Addr block) const;

    /** Blocks with at least one presence bit set. */
    std::size_t trackedBlocks() const { return entries.size(); }

    // Aggregate stats for §V-A's coherence-activity discussion.
    std::uint64_t transactions() const { return transactions_; }
    std::uint64_t blockTransfers() const { return blockTransfers_; }
    std::uint64_t poolTransfers() const { return poolTransfers_; }
    std::uint64_t invalidations() const { return invalidations_; }

    /** Register the aggregate coherence counters. */
    void registerStats(obs::Registry &r,
                       const std::string &prefix) const;

    void reset();

  private:
    struct Entry
    {
        std::uint64_t sharerMask = 0;
        NodeId owner = -1; ///< dirty owner, -1 when block is clean
    };

    int sockets;
    NodeId poolNode;
    FlatMap<Addr, Entry> entries;
    std::uint64_t transactions_;
    std::uint64_t blockTransfers_;
    std::uint64_t poolTransfers_;
    std::uint64_t invalidations_;
};

} // namespace mem
} // namespace starnuma

#endif // STARNUMA_MEM_DIRECTORY_HH
