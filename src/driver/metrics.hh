/**
 * @file
 * Result metrics of one (workload, system) simulation: IPC, the
 * AMAT decomposition of Fig 8b (measured latency vs analytically
 * derived unloaded latency), the memory-access-type breakdown of
 * Fig 8c, and migration/coherence statistics (Table IV, §V-A).
 */

#ifndef STARNUMA_DRIVER_METRICS_HH
#define STARNUMA_DRIVER_METRICS_HH

#include <array>
#include <cstdint>

#include "sim/obs/registry.hh"
#include "sim/types.hh"

namespace starnuma
{
namespace driver
{

/** Memory access categories of Fig 8c. */
enum class AccessType
{
    Local,    ///< 80 ns unloaded
    OneHop,   ///< 130 ns
    TwoHop,   ///< 360 ns
    Pool,     ///< 180 ns
    BtSocket, ///< 3-hop coherence transfer, 413 ns
    BtPool,   ///< 4-hop via-pool transfer, 280 ns
    Count
};

constexpr int accessTypes = static_cast<int>(AccessType::Count);

/** Printable name of an access type. */
const char *accessTypeName(AccessType t);

/** Unloaded end-to-end latency of an access type in ns (§V-A). */
double unloadedLatencyNs(AccessType t);

/** Aggregated results of one simulated configuration. */
struct RunMetrics
{
    // --- performance ---
    std::uint64_t instructions = 0; ///< detailed-socket instructions
    Cycles cycles;                  ///< detailed-socket core-cycles
    double ipc = 0.0;               ///< per-core IPC, detailed socket

    // --- memory behaviour ---
    std::uint64_t memAccesses = 0; ///< LLC misses (all sockets)
    std::uint64_t llcHits = 0;
    std::uint64_t detailedMisses = 0; ///< detailed socket only
    double llcMpki = 0.0; ///< detailed-socket misses per kilo-instr

    /** Measured mean memory access latency, cycles. */
    double amatCycles = 0.0;

    /** Analytic unloaded AMAT from the access mix, cycles. */
    double unloadedAmatCycles = 0.0;

    /** Access-type mix (fractions summing to ~1). */
    std::array<double, accessTypes> mix{};

    /** Mean measured latency per access type, cycles. */
    std::array<double, accessTypes> typeLatency{};

    /** Mean page-migration stall folded into AMAT, cycles. */
    double migrationStallCycles = 0.0;

    // --- interconnect / memory diagnostics ---
    double upiUtilization = 0.0;      ///< mean over directions
    double numalinkUtilization = 0.0;
    double cxlUtilization = 0.0;
    double maxLinkUtilization = 0.0;  ///< hottest direction
    double meanLinkQueueNs = 0.0;     ///< per traversal
    double meanDramQueueNs = 0.0;

    // --- migration / coherence ---
    std::uint64_t migratedPages = 0;
    double poolMigrationFraction = 0.0;
    std::uint64_t coherenceTransactions = 0;
    std::uint64_t blockTransfers = 0;
    std::uint64_t shootdownPages = 0;

    double amatNs() const { return cyclesToNs(amatCycles); }
    double unloadedAmatNs() const
    {
        return cyclesToNs(unloadedAmatCycles);
    }
    double
    contentionNs() const
    {
        return amatNs() - unloadedAmatNs();
    }

    /** Speedup of this run over @p baseline (IPC ratio). */
    double
    speedupOver(const RunMetrics &baseline) const
    {
        return baseline.ipc > 0 ? ipc / baseline.ipc : 0.0;
    }

};

/**
 * The scalar summary of @p m as a deterministic snapshot (the
 * "summary." subtree of a run's stats artifact).
 */
obs::Snapshot metricsSnapshot(const RunMetrics &m);

} // namespace driver
} // namespace starnuma

#endif // STARNUMA_DRIVER_METRICS_HH
