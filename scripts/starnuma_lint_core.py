"""Shared lexing and indexing machinery for the starnuma static
checkers (DESIGN.md §8, §13).

Two consumers:

* ``starnuma_lint.py``  — line/regex rules D1-D8 (determinism, style,
  layering, lock discipline),
* ``starnuma_hotpath.py`` — the interprocedural analyzer behind rules
  D9-D11 (hot-path discipline, decoder bounds, strong-type
  boundaries).

This module owns everything both need: comment/string masking,
annotation lookup, the ``Finding`` record, file walking — plus the
C++ tokenizer and the function indexer (definitions, body extents,
class-qualified names, call extraction) that make a call graph
possible without a clang dependency.

The tokenizer is deliberately an approximation: it never expands
the preprocessor and treats templates structurally, not
semantically. The indexer's contract is "good enough to build an
over-approximate name-based call graph" (see DESIGN.md §13 for the
documented limitations), not "a C++ front end".
"""

import os
import re


SOURCE_EXTS = (".cc", ".hh", ".cpp", ".hpp")


class Finding:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def __str__(self):
        return "%s:%d: [%s] %s" % (
            self.path,
            self.line,
            self.rule,
            self.message,
        )


def _is_raw_string_start(text, i):
    """True when the '\"' at @p i opens a raw string literal: it is
    preceded by an 'R' that begins the literal (possibly behind a
    u/U/L/u8 encoding prefix), not by an identifier that merely ends
    in R."""
    if i < 1 or text[i - 1] != "R":
        return False
    j = i - 2
    # Optional encoding prefix directly before the R.
    if j >= 0 and text[j] == "8" and j >= 1 and text[j - 1] == "u":
        j -= 2
    elif j >= 0 and text[j] in "uUL":
        j -= 1
    return j < 0 or not (text[j].isalnum() or text[j] == "_")


def _is_digit_separator(text, i):
    """True when the \"'\" at @p i is a C++14 digit separator: the
    token it sits in starts with a digit (so ``0xDEAD'BEEF`` and
    ``1'000'000`` pass while ``case'a'`` and ``L'x'`` do not)."""
    if i < 1 or i + 1 >= len(text):
        return False
    if text[i + 1] not in "0123456789abcdefABCDEF":
        return False
    j = i - 1
    while j >= 0 and (text[j].isalnum() or text[j] in "_.'"):
        j -= 1
    return j + 1 < i + 1 and text[j + 1].isdigit()


def _blank_span(seg):
    """@p seg with its interior blanked: the first and last chars
    (the quotes) survive, every interior char becomes a space, and
    newlines are preserved so a literal spanning physical lines (a
    backslash continuation, a raw string) cannot collapse the line
    structure."""
    if len(seg) < 2:
        return seg
    return seg[0] + "".join(
        ch if ch == "\n" else " " for ch in seg[1:-1]) + seg[-1]


def strip_comments_and_strings(text):
    """Blank out comments and string/char literals (including raw
    strings), preserving line structure, so token scans do not fire
    inside either. Digit separators (``1'000'000``) pass through
    untouched instead of being misread as char-literal quotes."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append(
                "".join(ch if ch == "\n" else " " for ch in text[i:j])
            )
            i = j
        elif c == '"' and _is_raw_string_start(text, i):
            # R"delim( ... )delim": no escapes; the terminator is the
            # exact )delim" sequence. Newlines inside are preserved.
            p = text.find("(", i + 1)
            if p < 0:
                out.append(c)
                i += 1
                continue
            delim = text[i + 1:p]
            term = ")" + delim + '"'
            j = text.find(term, p + 1)
            j = n if j < 0 else j + len(term)
            out.append(_blank_span(text[i:j]))
            i = j
        elif c == "'" and _is_digit_separator(text, i):
            out.append(c)
            i += 1
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(_blank_span(text[i:j]))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def strip_preprocessor(code):
    """Blank out preprocessor directives (including backslash
    continuations) from already comment-stripped @p code, preserving
    line structure. Keeps macro bodies (e.g. the multi-line
    ``sn_assert`` definition) from confusing the token-level
    indexer; regex rules that need ``#include`` lines read the raw
    text instead."""
    lines = code.split("\n")
    i = 0
    while i < len(lines):
        if lines[i].lstrip().startswith("#"):
            while True:
                cont = lines[i].rstrip().endswith("\\")
                lines[i] = ""
                if not cont or i + 1 >= len(lines):
                    break
                i += 1
        i += 1
    return "\n".join(lines)


def mask_nested_parens(s):
    """Blank out everything inside parentheses, so only top-level
    tokens of an expression remain visible."""
    out, depth = [], 0
    for ch in s:
        if ch == "(":
            depth += 1
            out.append("(")
        elif ch == ")":
            depth = max(0, depth - 1)
            out.append(")")
        else:
            out.append(" " if depth > 0 else ch)
    return "".join(out)


def has_annotation_above(raw_lines, idx, annotation):
    """True when @p annotation appears on line @p idx or in the
    contiguous comment block directly above it."""
    if annotation in raw_lines[idx]:
        return True
    j = idx - 1
    while j >= 0:
        stripped = raw_lines[j].strip()
        if not (stripped.startswith("//") or stripped.startswith("*")
                or stripped.startswith("/*") or stripped == ""):
            break
        if annotation in raw_lines[j]:
            return True
        j -= 1
    return False


def collect_decl_names(code, decl_re):
    """Identifiers declared (anywhere in @p code, comments stripped)
    with a type matching @p decl_re: variables, members, references,
    and functions returning one."""
    names = set()
    for m in decl_re.finditer(code):
        # Match the template argument list's angle brackets.
        i = m.end() - 1
        depth = 0
        while i < len(code):
            if code[i] == "<":
                depth += 1
            elif code[i] == ">":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        rest = code[i + 1:]
        dm = re.match(r"\s*&?\s*([A-Za-z_]\w*)", rest)
        if dm:
            names.add(dm.group(1))
    return names


INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"')


def file_includes(raw_lines):
    """[(line_index, include_path)] of every quoted include."""
    out = []
    for idx, line in enumerate(raw_lines):
        m = INCLUDE_RE.match(line)
        if m:
            out.append((idx, m.group(1)))
    return out


def relpath(path, root):
    return os.path.relpath(path, root).replace(os.sep, "/")


def iter_source_files(paths):
    """Deterministically-ordered C++ source files under @p paths
    (directories are walked recursively; bare files pass through)."""
    files = []
    for p in paths:
        if os.path.isdir(p):
            for root, _, names in sorted(os.walk(p)):
                for name in sorted(names):
                    if name.endswith(SOURCE_EXTS):
                        files.append(os.path.join(root, name))
        elif p.endswith(SOURCE_EXTS):
            files.append(p)
    return files


def read_source(path):
    with open(path, encoding="utf-8", errors="replace") as fh:
        return fh.read()


# ---------------------------------------------------------------
# Tokenizer + function indexer (the C++-aware half).
# ---------------------------------------------------------------

# Only '::' and '->' need to survive as units (qualification and
# member access feed name resolution); every other operator may fall
# apart into single characters without hurting the analysis. Digit
# separators ("'" between digits) stay inside the number token.
TOKEN_RE = re.compile(r"[A-Za-z_]\w*|\d(?:[\w.]|'\w)*|::|->|\S")


class Token:
    __slots__ = ("text", "line")

    def __init__(self, text, line):
        self.text = text
        self.line = line

    def __repr__(self):
        return "Token(%r, %d)" % (self.text, self.line)


def tokenize(code):
    """Token stream of comment/string/preprocessor-stripped C++
    @p code, each token tagged with its 1-based line."""
    toks = []
    line = 1
    pos = 0
    for m in TOKEN_RE.finditer(code):
        line += code.count("\n", pos, m.start())
        pos = m.start()
        toks.append(Token(m.group(0), line))
    return toks


def is_ident(text):
    return bool(text) and (text[0].isalpha() or text[0] == "_")


# Identifier-like tokens that can precede '(' without naming a
# callable, and never start a function definition.
NON_CALL_KEYWORDS = frozenset((
    "if", "for", "while", "switch", "return", "catch", "sizeof",
    "alignof", "alignas", "decltype", "noexcept", "case", "do",
    "else", "new", "delete", "throw", "static_cast", "dynamic_cast",
    "const_cast", "reinterpret_cast", "static_assert", "defined",
    "typeid", "co_return", "co_await", "co_yield", "requires",
    "this", "operator", "template", "typename", "using", "typedef",
    "void", "bool", "char", "short", "int", "long", "float",
    "double", "signed", "unsigned", "auto", "const", "constexpr",
    "explicit",
))

# Tokens that may sit between a definition's ')' and its body '{'.
POST_PAREN_QUALIFIERS = frozenset((
    "const", "noexcept", "override", "final", "mutable", "volatile",
    "&", "&&", "try",
))


class FunctionDef:
    """One function definition found in a translation unit."""

    __slots__ = ("name", "qualname", "rel", "decl_line", "name_line",
                 "body_open_line", "body_close_line", "body_start",
                 "body_end", "param_start", "param_end", "file_key")

    def __init__(self, name, qualname, rel, decl_line, name_line):
        self.name = name
        self.qualname = qualname
        self.rel = rel
        self.decl_line = decl_line
        self.name_line = name_line
        self.body_open_line = 0
        self.body_close_line = 0
        self.body_start = 0   # token index just inside '{'
        self.body_end = 0     # token index of the matching '}'
        self.param_start = 0  # token index just inside the decl '('
        self.param_end = 0    # token index of the matching ')'
        self.file_key = None  # set by the cross-file index

    def __repr__(self):
        return "FunctionDef(%s @ %s:%d)" % (
            self.qualname, self.rel, self.name_line)


def _match_paren(toks, i):
    """Index just past the ')' matching the '(' at @p i, or
    len(toks) when unbalanced."""
    depth = 0
    n = len(toks)
    while i < n:
        t = toks[i].text
        if t == "(":
            depth += 1
        elif t == ")":
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return n


def _match_brace(toks, i):
    """Index just past the '}' matching the '{' at @p i."""
    depth = 0
    n = len(toks)
    while i < n:
        t = toks[i].text
        if t == "{":
            depth += 1
        elif t == "}":
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return n


def _skip_template_args(toks, i):
    """Index just past the '<...>' starting at @p i (balanced angle
    count; '>>' arrives as two '>' tokens). Bails at '{'/';' so a
    stray comparison cannot eat the file."""
    depth = 0
    n = len(toks)
    while i < n:
        t = toks[i].text
        if t == "<":
            depth += 1
        elif t == ">":
            depth -= 1
            if depth == 0:
                return i + 1
        elif t in ("{", ";"):
            return i
        i += 1
    return n


def _operator_name(toks, i):
    """When the tokens before the '(' at @p i spell ``operator<op>``,
    return (name, index_of_operator_token); else (None, i)."""
    j = i - 1
    syms = []
    while j >= 0 and not is_ident(toks[j].text) and \
            toks[j].text not in "(){};,":
        syms.insert(0, toks[j].text)
        j -= 1
    if j >= 0 and toks[j].text == "operator" and syms:
        return "operator" + "".join(syms), j
    return None, i


def _decl_start(toks, name_idx):
    """Token index where the declaration containing @p name_idx
    starts (just after the previous ';', '{', '}', or access
    specifier)."""
    j = name_idx - 1
    while j >= 0:
        t = toks[j].text
        if t in (";", "{", "}"):
            return j + 1
        if t == ":" and j >= 1 and toks[j - 1].text in (
                "public", "private", "protected"):
            return j + 1
        j -= 1
    return 0


def _definition_body(toks, after_paren):
    """When the token stream after a parameter list denotes a
    function definition, return the index of its body '{';
    else None."""
    i = after_paren
    n = len(toks)
    while i < n:
        t = toks[i].text
        if t == "{":
            return i
        if t in POST_PAREN_QUALIFIERS:
            i += 1
            # noexcept(...) / attribute-macro(...) argument lists.
            if i < n and toks[i].text == "(":
                i = _match_paren(toks, i)
            continue
        if t == "->":
            # Trailing return type: consume up to the body or a
            # terminator, allowing nested parens/angles.
            i += 1
            while i < n and toks[i].text not in ("{", ";", "="):
                if toks[i].text == "(":
                    i = _match_paren(toks, i)
                else:
                    i += 1
            continue
        if t == ":":
            # Constructor initializer list: `member(args)` /
            # `member{args}` groups separated by ','. The first '{'
            # seen while *not* expecting a member's own init group
            # is the body.
            i += 1
            expect_member = True
            while i < n:
                t2 = toks[i].text
                if expect_member:
                    if not (is_ident(t2) or t2 == "::"):
                        return None
                    while i < n and (is_ident(toks[i].text) or
                                     toks[i].text == "::"):
                        i += 1
                    if i < n and toks[i].text == "<":
                        i = _skip_template_args(toks, i)
                    if i >= n:
                        return None
                    if toks[i].text == "(":
                        i = _match_paren(toks, i)
                    elif toks[i].text == "{":
                        i = _match_brace(toks, i)
                    else:
                        return None
                    expect_member = False
                elif t2 == ",":
                    i += 1
                    expect_member = True
                elif t2 == "{":
                    return i
                elif t2 == ".":
                    # Pack expansion `member(args)...` arrives as
                    # three '.' tokens.
                    i += 1
                else:
                    return None
            return None
        if t in (";", "=", ",", ")"):
            return None
        if is_ident(t) or t == "[" or t == "]":
            # __attribute__((...)) / [[attributes]] / macro names.
            i += 1
            if i < n and toks[i].text == "(":
                i = _match_paren(toks, i)
            continue
        return None
    return None


def index_functions(toks, rel):
    """Scan one file's token stream for function definitions.

    Returns (functions, tokens) where each FunctionDef carries its
    body extent as token indices into @p toks. The scanner tracks a
    scope stack (namespace / class / function / block) so that
    in-class method definitions pick up a ``Class::name`` qualified
    name and braces inside bodies never desynchronize the walk.
    """
    funcs = []
    # Stack entries: ('ns', name) | ('class', name) | ('fn', f) |
    # ('block', None)
    stack = []
    pending = {}  # body '{' token index -> FunctionDef
    i = 0
    n = len(toks)
    while i < n:
        t = toks[i].text
        top = stack[-1][0] if stack else "ns"
        at_decl_scope = top in ("ns", "class")

        if t == "template" and i + 1 < n and \
                toks[i + 1].text == "<":
            i = _skip_template_args(toks, i + 1)
            continue

        if at_decl_scope and t in ("using", "typedef",
                                   "static_assert"):
            while i < n and toks[i].text != ";":
                i += 1
            i += 1
            continue

        if at_decl_scope and t == "enum":
            # enum / enum class: skip to the closing brace or ';'.
            j = i + 1
            while j < n and toks[j].text not in ("{", ";"):
                j += 1
            if j < n and toks[j].text == "{":
                depth = 0
                while j < n:
                    if toks[j].text == "{":
                        depth += 1
                    elif toks[j].text == "}":
                        depth -= 1
                        if depth == 0:
                            break
                    j += 1
            i = j + 1
            continue

        if at_decl_scope and t == "namespace":
            j = i + 1
            name = ""
            while j < n and toks[j].text not in ("{", ";", "="):
                if is_ident(toks[j].text):
                    name = toks[j].text
                j += 1
            if j < n and toks[j].text == "{":
                stack.append(("ns", name))
                i = j + 1
            else:
                while j < n and toks[j].text != ";":
                    j += 1
                i = j + 1
            continue

        if at_decl_scope and t in ("class", "struct", "union"):
            j = i + 1
            head = []
            while j < n and toks[j].text not in ("{", ";"):
                head.append(toks[j].text)
                j += 1
            if j >= n or toks[j].text == ";":
                i = j + 1
                continue
            # Cut the base clause; '::' survives as its own token,
            # so a bare ':' is always the base-clause colon.
            if ":" in head:
                head = head[:head.index(":")]
            idents = [h for h in head
                      if is_ident(h) and h not in
                      ("final", "alignas")]
            stack.append(("class",
                          idents[-1] if idents else "<anonymous>"))
            i = j + 1
            continue

        if t == "(" and at_decl_scope and i > 0:
            name_tok = None
            name_idx = i - 1
            prev = toks[i - 1].text
            if is_ident(prev) and prev not in NON_CALL_KEYWORDS:
                name_tok = prev
                if i >= 2 and toks[i - 2].text == "~":
                    name_tok = "~" + name_tok
                    name_idx = i - 2
            else:
                op_name, op_idx = _operator_name(toks, i)
                if op_name:
                    name_tok, name_idx = op_name, op_idx
            if name_tok:
                after = _match_paren(toks, i)
                body = _definition_body(toks, after)
                if body is not None:
                    qual = None
                    if name_idx >= 2 and \
                            toks[name_idx - 1].text == "::" and \
                            is_ident(toks[name_idx - 2].text):
                        qual = toks[name_idx - 2].text
                    else:
                        for kind, sname in reversed(stack):
                            if kind == "class":
                                qual = sname
                                break
                    qualname = ("%s::%s" % (qual, name_tok)
                                if qual else name_tok)
                    decl_idx = _decl_start(toks, name_idx)
                    f = FunctionDef(
                        name_tok, qualname, rel,
                        toks[decl_idx].line if decl_idx < n
                        else toks[name_idx].line,
                        toks[name_idx].line)
                    f.param_start = i + 1
                    f.param_end = after - 1
                    f.body_open_line = toks[body].line
                    # First registration wins: a call expression in
                    # a default argument or the last member
                    # initializer of a constructor sits between the
                    # real definition's '(' and its body '{', and
                    # must not steal the body from the definition
                    # that already claimed it.
                    pending.setdefault(body, f)
            i += 1
            continue

        if t == "{":
            f = pending.pop(i, None)
            if f is not None:
                f.body_start = i + 1
                stack.append(("fn", f))
            else:
                stack.append(("block", None))
            i += 1
            continue

        if t == "}":
            if stack:
                kind, payload = stack.pop()
                if kind == "fn":
                    payload.body_end = i
                    payload.body_close_line = toks[i].line
                    funcs.append(payload)
            i += 1
            continue

        i += 1
    return funcs


# Tokens that never name a parameter (type keywords and qualifiers
# that can end a declarator).
_PARAM_NON_NAMES = frozenset((
    "const", "constexpr", "volatile", "unsigned", "signed", "void",
    "bool", "char", "short", "int", "long", "float", "double",
    "auto", "struct", "class", "enum", "typename", "mutable",
))


def param_names(toks, f):
    """Parameter names of a definition, in order; ``None`` for an
    unnamed parameter (positions are preserved so call arguments can
    be matched up). Default arguments and nested template/paren
    groups are skipped."""
    names = []
    depth = 0
    seg = []
    j = f.param_start
    while j <= f.param_end:
        at_end = j == f.param_end
        t = toks[j].text if not at_end else ","
        if t in ("(", "[", "{", "<"):
            depth += 1
        elif t in (")", "]", "}", ">"):
            depth = max(0, depth - 1)
        elif t == "," and depth == 0:
            if seg and not (len(seg) == 1 and seg[0] == "void"):
                cut = seg.index("=") if "=" in seg else len(seg)
                name = None
                for s in reversed(seg[:cut]):
                    if is_ident(s) and s not in _PARAM_NON_NAMES:
                        name = s
                        break
                names.append(name)
            seg = []
            j += 1
            continue
        if depth == 0:
            seg.append(t)
        j += 1
    return names


class SourceFile:
    """One parsed C++ file: raw lines for annotation lookup, masked
    code lines for regex rules, and the token/function index for the
    interprocedural analyzers."""

    __slots__ = ("rel", "raw_lines", "code_lines", "toks", "funcs")

    def __init__(self, rel, raw):
        self.rel = rel
        self.raw_lines = raw.splitlines()
        code = strip_comments_and_strings(raw)
        self.code_lines = code.split("\n")
        self.toks = tokenize(strip_preprocessor(code))
        self.funcs = index_functions(self.toks, rel)
        for f in self.funcs:
            f.file_key = rel


def load_tree(paths, root):
    """rel -> SourceFile for every C++ file under @p paths."""
    tree = {}
    for path in iter_source_files(paths):
        rel = relpath(path, root)
        tree[rel] = SourceFile(rel, read_source(path))
    return tree


def line_annotated(sf, line, annotation):
    """Annotation on 1-based @p line or the comment block above."""
    if line < 1 or line > len(sf.raw_lines):
        return False
    return has_annotation_above(sf.raw_lines, line - 1, annotation)


def func_annotated(sf, f, annotation):
    """Annotation anywhere on the declaration span (first decl line
    through the body-opening line) or in the comment block above."""
    lo = max(0, f.decl_line - 1)
    hi = min(f.body_open_line, len(sf.raw_lines))
    for j in range(lo, hi):
        if annotation in sf.raw_lines[j]:
            return True
    return has_annotation_above(sf.raw_lines, lo, annotation)


class CallGraph:
    """Name-based over-approximate call resolution: a simple name
    resolves to every indexed definition of that name; a qualified
    call ``X::f`` prefers definitions of class X; ``std::f`` with no
    indexed definition resolves to nothing."""

    def __init__(self, tree):
        self.tree = tree
        self.by_name = {}
        self.ctor_classes = {}
        for sf in tree.values():
            for f in sf.funcs:
                self.by_name.setdefault(f.name, []).append(f)
                qual = f.qualname.split("::")[0]
                if f.name == qual and "::" in f.qualname:
                    self.ctor_classes.setdefault(qual, []).append(f)

    def resolve(self, name, qual):
        cands = self.by_name.get(name, [])
        if qual:
            exact = [f for f in cands
                     if f.qualname == "%s::%s" % (qual, name)]
            if exact:
                return exact
            if qual == "std":
                return []
        return cands
