#include "driver/experiment.hh"

#include <map>
#include <utility>

#include "sim/logging.hh"
#include "workloads/workload.hh"

namespace starnuma
{
namespace driver
{

const trace::WorkloadTrace &
workloadTrace(const std::string &name, const SimScale &scale)
{
    using Key = std::pair<std::string, std::string>;
    static std::map<Key, trace::WorkloadTrace> memo;

    std::string scale_key =
        std::to_string(scale.threads()) + ":" +
        std::to_string(scale.phases) + ":" +
        std::to_string(scale.phaseInstructions);
    Key key{name, scale_key};
    auto it = memo.find(key);
    if (it == memo.end()) {
        it = memo.emplace(key,
                          workloads::captureWorkload(name, scale))
                 .first;
    }
    return it->second;
}

ExperimentResult
runExperiment(const std::string &workload, const SystemSetup &setup,
              const SimScale &scale)
{
    const trace::WorkloadTrace &trace = workloadTrace(workload, scale);

    TraceSim trace_sim(setup, scale);
    ExperimentResult result;
    result.placement = trace_sim.run(trace);

    TimingSim timing(setup, scale);
    result.metrics = timing.run(trace, result.placement);
    return result;
}

RunMetrics
runSingleSocket(const std::string &workload, const SimScale &scale)
{
    const trace::WorkloadTrace &trace = workloadTrace(workload, scale);

    SystemSetup setup = SystemSetup::baseline();
    TraceSim trace_sim(setup, scale);
    TraceSimResult placement = trace_sim.run(trace);

    TimingOptions options;
    options.singleSocketLocal = true;
    TimingSim timing(setup, scale, options);
    return timing.run(trace, placement);
}

} // namespace driver
} // namespace starnuma
