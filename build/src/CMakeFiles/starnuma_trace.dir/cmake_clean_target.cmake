file(REMOVE_RECURSE
  "libstarnuma_trace.a"
)
