/**
 * @file
 * Lightweight statistics primitives: scalar counters, running means,
 * and fixed-bin histograms. Components own their stats directly (no
 * global registry); report code pulls values and formats them.
 */

#ifndef STARNUMA_SIM_STATS_HH
#define STARNUMA_SIM_STATS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace starnuma
{
namespace stats
{

/** Running mean/min/max over double samples. */
class Mean
{
  public:
    Mean() : sum_(0), count_(0), min_(0), max_(0) {}

    void
    sample(double v)
    {
        if (count_ == 0) {
            min_ = max_ = v;
        } else {
            if (v < min_) min_ = v;
            if (v > max_) max_ = v;
        }
        sum_ += v;
        ++count_;
    }

    void
    reset()
    {
        sum_ = 0;
        count_ = 0;
        min_ = max_ = 0;
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double
    mean() const
    {
        return count_ ? sum_ / static_cast<double>(count_) : 0.0;
    }
    double min() const { return min_; }
    double max() const { return max_; }

  private:
    double sum_;
    std::uint64_t count_;
    double min_;
    double max_;
};

/**
 * Histogram over [0, buckets*width) with an overflow bucket; used
 * for latency distributions and sharing-degree counts.
 */
class Histogram
{
  public:
    Histogram(std::size_t buckets, double width);

    void sample(double v, std::uint64_t weight = 1);
    void reset();

    std::uint64_t total() const { return total_; }
    std::uint64_t bucket(std::size_t i) const { return counts.at(i); }
    std::size_t buckets() const { return counts.size(); }
    double bucketWidth() const { return width; }
    std::uint64_t overflow() const { return overflow_; }

    /** Fraction of samples in bucket @p i. */
    double fraction(std::size_t i) const;

    /** Smallest value v such that >= @p q of the mass is <= v. */
    double quantile(double q) const;

  private:
    std::vector<std::uint64_t> counts;
    double width;
    std::uint64_t total_;
    std::uint64_t overflow_;
};

/** Geometric mean of a sequence of positive values. */
double geomean(const std::vector<double> &values);

} // namespace stats
} // namespace starnuma

#endif // STARNUMA_SIM_STATS_HH
