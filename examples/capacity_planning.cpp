/**
 * @file
 * Domain example: capacity planning for a StarNUMA deployment.
 * Sweeps the memory pool's capacity fraction and CXL latency for a
 * chosen workload and prints the speedup surface — the kind of
 * study a system architect would run before provisioning an MHD
 * (combines the paper's Fig 10 and Fig 12 axes).
 *
 *   ./example_capacity_planning [workload]   (default: masstree)
 */

#include <cstdio>
#include <string>
#include <vector>

#include "driver/experiment.hh"
#include "sim/table.hh"

using namespace starnuma;

int
main(int argc, char **argv)
{
    std::string workload = argc > 1 ? argv[1] : "masstree";

    SimScale scale = SimScale::sc1();
    scale.phases = 4; // one less phase than the benches: quicker

    auto base = driver::runExperiment(
        workload, driver::SystemSetup::baseline(), scale);
    std::printf("workload '%s': baseline IPC %.3f\n\n",
                workload.c_str(), base.metrics.ipc);

    const std::vector<double> capacities{1.0 / 17, 0.10, 0.20,
                                         0.35};
    const std::vector<double> cxl_one_way_ns{50.0, 72.5, 95.0};

    std::vector<std::string> header{"pool capacity \\ CXL e2e"};
    for (double ns : cxl_one_way_ns)
        header.push_back(TextTable::num(80 + 2 * ns, 0) + " ns");
    TextTable t(header);

    for (double cap : capacities) {
        std::vector<std::string> row{
            TextTable::pct(cap, 1) + " of footprint"};
        for (double ns : cxl_one_way_ns) {
            driver::SystemSetup setup =
                driver::SystemSetup::starnuma();
            setup.name = "starnuma-c" + std::to_string(cap) + "-l" +
                         std::to_string(ns);
            setup.sys.poolCapacityFraction = cap;
            setup.sys.cxlOneWayNs = ns;
            auto run =
                driver::runExperiment(workload, setup, scale);
            row.push_back(
                TextTable::num(
                    run.metrics.speedupOver(base.metrics), 2) +
                "x");
        }
        t.addRow(row);
    }

    std::printf("speedup over baseline:\n%s\n", t.str().c_str());
    std::printf(
        "Read along a row for latency sensitivity (Fig 10);\n"
        "read down a column for capacity sensitivity (Fig 12).\n");
    return 0;
}
