/**
 * @file
 * Top-level experiment API: runs the full three-step pipeline
 * (capture -> trace simulation -> timing simulation) for one
 * (workload, system) pair and returns the aggregated metrics.
 * Traces are memoized per process (and optionally on disk via
 * STARNUMA_TRACE_DIR), so sweeping system configurations over the
 * same workload only captures once — mirroring how the paper reuses
 * step-A traces across all evaluated systems. The memo is thread
 * safe: concurrent requests for the same (workload, scale) run
 * exactly one capture and share the resulting trace, so sweep
 * entries can fan out across the worker pool (driver/sweep.hh).
 *
 * Step C runs the paper's literal "N parallel timing simulations"
 * (§IV-A3): each phase simulates on its own machine state,
 * distributed over sim/parallel.hh's pool, and the per-phase
 * metrics merge in phase order — so the result is bitwise-identical
 * for every pool size, including 1.
 */

#ifndef STARNUMA_DRIVER_EXPERIMENT_HH
#define STARNUMA_DRIVER_EXPERIMENT_HH

#include <cstdint>
#include <string>

#include "driver/metrics.hh"
#include "driver/system_setup.hh"
#include "driver/timing_sim.hh"
#include "driver/trace_sim.hh"
#include "sim/scale.hh"
#include "trace/trace.hh"

namespace starnuma
{
namespace driver
{

/** Metrics plus the placement decisions that produced them. */
struct ExperimentResult
{
    RunMetrics metrics;
    TraceSimResult placement;
};

/** Memoized step-A capture for (workload, scale). Thread safe. */
const trace::WorkloadTrace &workloadTrace(const std::string &name,
                                          const SimScale &scale);

/**
 * Number of actual trace captures the memo has performed so far
 * (cache misses). Lets tests prove that N concurrent requests for
 * one (workload, scale) run exactly one capture.
 */
std::uint64_t workloadTraceCaptures();

/** Run the full pipeline for one configuration. */
ExperimentResult runExperiment(const std::string &workload,
                               const SystemSetup &setup,
                               const SimScale &scale =
                                   SimScale::sc1());

/**
 * The Table III reference point: the workload's detailed socket
 * executing with all pages in local memory.
 */
RunMetrics runSingleSocket(const std::string &workload,
                           const SimScale &scale = SimScale::sc1());

} // namespace driver
} // namespace starnuma

#endif // STARNUMA_DRIVER_EXPERIMENT_HH
