#include "sim/obs/obs.hh"

#include <cstdio>
#include <cstdlib>

#include "sim/obs/trace_session.hh"

namespace starnuma
{
namespace obs
{

namespace
{

bool
writeWholeFile(const std::string &path, const std::string &content)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    bool ok = std::fwrite(content.data(), 1, content.size(), f) ==
              content.size();
    return std::fclose(f) == 0 && ok;
}

bool
endsWith(const std::string &s, const char *suffix)
{
    std::string suf(suffix);
    return s.size() >= suf.size() &&
           s.compare(s.size() - suf.size(), suf.size(), suf) == 0;
}

} // anonymous namespace

StatsSink &
StatsSink::global()
{
    // Leaky singleton: the atexit hook below must be able to run
    // before static destruction would have torn the sink down.
    static StatsSink *sink = [] {
        auto *s = new StatsSink();
        if (const char *path = std::getenv("STARNUMA_STATS_OUT")) {
            if (path[0] != '\0') {
                s->start(path);
                std::atexit([] { StatsSink::global().write(); });
            }
        }
        return s;
    }();
    return *sink;
}

void
StatsSink::start(const std::string &path)
{
    MutexLock lock(mu);
    path_ = path;
    merged = Snapshot();
    enabled_.store(true, std::memory_order_relaxed);
}

void
StatsSink::stop()
{
    MutexLock lock(mu);
    enabled_.store(false, std::memory_order_relaxed);
    path_.clear();
    merged = Snapshot();
}

void
StatsSink::add(const std::string &prefix, const Snapshot &s)
{
    if (!enabled())
        return;
    MutexLock lock(mu);
    // Double-check under the lock: a concurrent stop() may have
    // cleared the sink between the relaxed gate above and here, and
    // a snapshot must never resurrect a stopped sink.
    if (!enabled_.load(std::memory_order_relaxed))
        return;
    merged.merge(prefix, s);
}

Snapshot
StatsSink::collect() const
{
    MutexLock lock(mu);
    return merged;
}

std::string
StatsSink::collectJson() const
{
    return collect().json();
}

bool
StatsSink::writeTo(const std::string &path) const
{
    Snapshot s = collect();
    return writeWholeFile(path,
                          endsWith(path, ".csv") ? s.csv()
                                                 : s.json());
}

bool
StatsSink::write() const
{
    std::string path;
    {
        MutexLock lock(mu);
        if (!enabled_.load(std::memory_order_relaxed) ||
            path_.empty())
            return true;
        path = path_;
    }
    return writeTo(path);
}

bool
hostProfilingEnabled()
{
    return StatsSink::global().enabled() ||
           TraceSession::global().enabled();
}

} // namespace obs
} // namespace starnuma
