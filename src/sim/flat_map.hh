/**
 * @file
 * Open-addressing flat hash containers for the simulator's hot
 * paths (DESIGN.md §12). FlatMap/FlatSet replace std::unordered_map
 * and std::unordered_set wherever page/region metadata is touched
 * per trace record: entries live contiguously in insertion order (a
 * dense vector), and a separate power-of-two bucket index with
 * linear probing resolves keys — one predictable probe sequence
 * instead of a pointer chase per lookup.
 *
 * Iteration visits live entries in insertion order, which is a
 * deterministic function of the operation sequence alone. That is a
 * stronger contract than the standard containers offer and is why
 * lint rule D1 treats FlatMap/FlatSet loops as order-deterministic
 * without an annotation.
 *
 * Invariants (tested differentially in tests/flat_map_test.cc):
 *  - the bucket index references live dense entries only; erase
 *    removes the bucket with backward-shift deletion so probe
 *    chains never contain holes;
 *  - erased dense slots become tombstones; compaction (which drops
 *    tombstones and preserves insertion order of survivors) happens
 *    only on insert paths, so erase(iterator) stays valid;
 *  - the bucket count is a power of two and the live load factor
 *    never exceeds 3/4.
 */

#ifndef STARNUMA_SIM_FLAT_MAP_HH
#define STARNUMA_SIM_FLAT_MAP_HH

#include <cstdint>
#include <functional>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/annotations.hh"
#include "sim/logging.hh"

namespace starnuma
{

namespace detail
{

/**
 * Fibonacci (golden-ratio multiply) mixer applied on top of
 * std::hash. libstdc++'s integer hash is the identity, so the
 * product's HIGH bits are what callers must keep (FlatMap shifts
 * them down to the bucket index). For the simulator's dominant key
 * pattern — densely allocated page numbers — consecutive keys then
 * land maximally far apart (the three-distance theorem), giving
 * ~1.0 probes per lookup where a bit-masked or avalanched hash
 * clusters. One multiply; this runs once per replayed trace record.
 */
inline std::uint64_t
mixHash(std::uint64_t x)
{
    return x * 0x9e3779b97f4a7c15ULL;
}

/** Mapped type of FlatSet's underlying FlatMap. */
struct Unit
{
};

} // namespace detail

/** Insertion-ordered open-addressing hash map. */
template <typename Key, typename T, typename Hash = std::hash<Key>>
class FlatMap
{
  public:
    using value_type = std::pair<Key, T>;

    template <bool Const>
    class basic_iterator
    {
        using MapPtr = std::conditional_t<Const, const FlatMap *,
                                          FlatMap *>;

      public:
        using reference = std::conditional_t<Const,
                                             const value_type &,
                                             value_type &>;
        using pointer =
            std::conditional_t<Const, const value_type *,
                               value_type *>;
        using difference_type = std::ptrdiff_t;
        using iterator_category = std::forward_iterator_tag;

        basic_iterator() = default;

        /** Non-const converts to const. */
        template <bool C = Const,
                  typename = std::enable_if_t<C>>
        basic_iterator(const basic_iterator<false> &other)
            : m(other.m), pos(other.pos)
        {
        }

        reference operator*() const { return m->dense_[pos]; }
        pointer operator->() const { return &m->dense_[pos]; }

        basic_iterator &
        operator++()
        {
            ++pos;
            skipDead();
            return *this;
        }

        basic_iterator
        operator++(int)
        {
            basic_iterator old = *this;
            ++*this;
            return old;
        }

        bool
        operator==(const basic_iterator &o) const
        {
            return pos == o.pos;
        }
        bool
        operator!=(const basic_iterator &o) const
        {
            return pos != o.pos;
        }

      private:
        friend class FlatMap;
        template <bool>
        friend class basic_iterator;

        basic_iterator(MapPtr map, std::size_t position)
            : m(map), pos(position)
        {
        }

        void
        skipDead()
        {
            while (pos < m->dense_.size() && m->dead_[pos])
                ++pos;
        }

        MapPtr m = nullptr;
        std::size_t pos = 0;
    };

    using iterator = basic_iterator<false>;
    using const_iterator = basic_iterator<true>;

    FlatMap() = default;

    std::size_t size() const { return live_; }
    bool empty() const { return live_ == 0; }

    iterator
    begin()
    {
        iterator it(this, 0);
        it.skipDead();
        return it;
    }
    iterator end() { return iterator(this, dense_.size()); }
    const_iterator
    begin() const
    {
        const_iterator it(this, 0);
        it.skipDead();
        return it;
    }
    const_iterator
    end() const
    {
        return const_iterator(this, dense_.size());
    }

    /** Prepare for @p n live entries without rehashing on the way. */
    // lint: cold-path up-front sizing, called before the replay loop
    void
    reserve(std::size_t n)
    {
        dense_.reserve(n);
        dead_.reserve(n);
        std::size_t want = bucketsFor(n);
        if (want > index_.size())
            rebuild(want);
    }

    void
    clear()
    {
        dense_.clear();
        dead_.clear();
        // lint: cold-path same-size assign reuses the existing
        // index storage; nothing grows.
        index_.assign(index_.size(), 0);
        live_ = 0;
        tombstones_ = 0;
    }

    // lint: hot-path one probe per replayed trace record
    iterator
    find(const Key &key)
    {
        std::size_t slot = findSlot(key);
        return slot == npos ? end()
                            : iterator(this, index_[slot] - 1);
    }

    const_iterator
    find(const Key &key) const
    {
        std::size_t slot = findSlot(key);
        return slot == npos
                   ? end()
                   : const_iterator(this, index_[slot] - 1);
    }

    // lint: hot-path one probe per replayed trace record
    bool contains(const Key &key) const
    {
        return findSlot(key) != npos;
    }
    std::size_t count(const Key &key) const
    {
        return contains(key) ? 1 : 0;
    }

    // lint: hot-path one probe per replayed trace record
    T &
    at(const Key &key)
    {
        std::size_t slot = findSlot(key);
        sn_assert(slot != npos, "FlatMap::at: key not found");
        return dense_[index_[slot] - 1].second;
    }

    const T &
    at(const Key &key) const
    {
        std::size_t slot = findSlot(key);
        sn_assert(slot != npos, "FlatMap::at: key not found");
        return dense_[index_[slot] - 1].second;
    }

    // lint: hot-path one probe per replayed trace record
    T &operator[](const Key &key)
    {
        return try_emplace(key).first->second;
    }

    // lint: hot-path the dominant per-record probe-or-insert; all
    // growth is outlined into the cold growForInsert/rebuild pair.
    template <typename... Args>
    std::pair<iterator, bool>
    try_emplace(const Key &key, Args &&...args)
    {
        // Probe before any growth check: the dominant call pattern
        // (one lookup per replayed trace record) finds the key and
        // must not pay for insert bookkeeping.
        std::size_t b = 0;
        if (!index_.empty()) {
            b = bucketOf(key);
            while (index_[b] != 0) {
                if (dense_[index_[b] - 1].first == key)
                    return {iterator(this, index_[b] - 1), false};
                b = (b + 1) & mask_;
            }
        }
        if (index_.empty() ||
            (live_ + 1) * 4 > index_.size() * 3 ||
            (tombstones_ > live_ && tombstones_ > 16)) {
            growForInsert();
            b = bucketOf(key);
            while (index_[b] != 0)
                b = (b + 1) & mask_;
        }
        // lint: cold-path amortized dense growth; reserve() backs
        // the replay-loop uses, so these never reallocate there.
        dense_.emplace_back(
            std::piecewise_construct, std::forward_as_tuple(key),
            std::forward_as_tuple(std::forward<Args>(args)...));
        // lint: cold-path amortized, same as the dense vector above
        dead_.push_back(0);
        index_[b] = static_cast<std::uint32_t>(dense_.size());
        ++live_;
        return {iterator(this, dense_.size() - 1), true};
    }

    template <typename... Args>
    std::pair<iterator, bool>
    emplace(Args &&...args)
    {
        return insert(value_type(std::forward<Args>(args)...));
    }

    std::pair<iterator, bool>
    insert(const value_type &v)
    {
        return try_emplace(v.first, v.second);
    }

    std::pair<iterator, bool>
    insert(value_type &&v)
    {
        return try_emplace(v.first, std::move(v.second));
    }

    // lint: hot-path pool-resident bookkeeping erases per record
    std::size_t
    erase(const Key &key)
    {
        std::size_t slot = findSlot(key);
        if (slot == npos)
            return 0;
        eraseAtSlot(slot);
        return 1;
    }

    /** Same key/value pairs, irrespective of insertion order. */
    bool
    operator==(const FlatMap &o) const
    {
        if (size() != o.size())
            return false;
        for (const auto &kv : *this) {
            auto it = o.find(kv.first);
            if (it == o.end() || !(it->second == kv.second))
                return false;
        }
        return true;
    }

    bool operator!=(const FlatMap &o) const { return !(*this == o); }

    /** Erase the entry at @p it; @return the next live entry. */
    iterator
    erase(iterator it)
    {
        std::size_t slot = findSlot(dense_[it.pos].first);
        sn_assert(slot != npos && index_[slot] - 1 == it.pos,
                  "FlatMap::erase of invalid iterator");
        eraseAtSlot(slot);
        it.skipDead();
        return it;
    }

  private:
    static constexpr std::size_t npos = ~std::size_t(0);

    std::size_t
    bucketOf(const Key &key) const
    {
        // High bits of the Fibonacci product (shift_ encodes the
        // bucket count); only valid while index_ is non-empty.
        return static_cast<std::size_t>(
            detail::mixHash(Hash{}(key)) >> shift_);
    }

    /** Bucket count for @p n live entries at load factor <= 3/4. */
    static std::size_t
    bucketsFor(std::size_t n)
    {
        std::size_t want = 16;
        while (want * 3 < n * 4)
            want <<= 1;
        return want;
    }

    /** Index slot of @p key, or npos. */
    std::size_t
    findSlot(const Key &key) const
    {
        if (index_.empty())
            return npos;
        std::size_t b = bucketOf(key);
        while (index_[b] != 0) {
            if (dense_[index_[b] - 1].first == key)
                return b;
            b = (b + 1) & mask_;
        }
        return npos;
    }

    void
    eraseAtSlot(std::size_t slot)
    {
        dead_[index_[slot] - 1] = 1;
        --live_;
        ++tombstones_;
        removeFromIndex(slot);
    }

    /**
     * Backward-shift deletion: empty @p hole, then walk the probe
     * chain after it, pulling back any entry whose ideal bucket
     * lies at or before the hole — probe sequences never cross an
     * empty slot, so lookups stay correct without tombstone marks
     * in the index.
     */
    void
    removeFromIndex(std::size_t hole)
    {
        std::size_t j = hole;
        index_[hole] = 0;
        for (;;) {
            j = (j + 1) & mask_;
            if (index_[j] == 0)
                return;
            std::size_t ideal =
                bucketOf(dense_[index_[j] - 1].first);
            if (((j - ideal) & mask_) >= ((j - hole) & mask_)) {
                index_[hole] = index_[j];
                index_[j] = 0;
                hole = j;
            }
        }
    }

    /** Make room for one more entry: grow or drop tombstones. */
    // lint: cold-path amortized growth, outlined so the hot insert
    // symbol carries no allocation (see check_hotpath_syms.sh)
    STARNUMA_COLD_PATH void
    growForInsert()
    {
        if (index_.empty() || (live_ + 1) * 4 > index_.size() * 3)
            rebuild(bucketsFor(live_ + 1));
        else if (tombstones_ > live_ && tombstones_ > 16)
            rebuild(index_.size());
    }

    /**
     * Rebuild with @p buckets buckets, dropping tombstones while
     * preserving the insertion order of live entries. Invalidates
     * iterators; called from insert paths only.
     */
    // lint: cold-path rehash, amortized over many inserts
    STARNUMA_COLD_PATH void
    rebuild(std::size_t buckets)
    {
        if (tombstones_ != 0) {
            std::vector<value_type> survivors;
            survivors.reserve(live_);
            for (std::size_t i = 0; i < dense_.size(); ++i)
                if (!dead_[i])
                    survivors.push_back(std::move(dense_[i]));
            dense_ = std::move(survivors);
            dead_.assign(dense_.size(), 0);
            tombstones_ = 0;
        }
        index_.assign(buckets, 0);
        mask_ = buckets - 1;
        shift_ = 64;
        for (std::size_t b = buckets; b > 1; b >>= 1)
            --shift_;
        for (std::size_t i = 0; i < dense_.size(); ++i) {
            std::size_t b = bucketOf(dense_[i].first);
            while (index_[b] != 0)
                b = (b + 1) & mask_;
            index_[b] = static_cast<std::uint32_t>(i + 1);
        }
    }

    std::vector<value_type> dense_;
    std::vector<std::uint8_t> dead_;
    std::vector<std::uint32_t> index_; ///< dense index + 1; 0 empty
    std::size_t mask_ = 0;
    int shift_ = 64; ///< 64 - log2(buckets); see bucketOf
    std::size_t live_ = 0;
    std::size_t tombstones_ = 0;
};

/** Insertion-ordered open-addressing hash set. */
template <typename Key, typename Hash = std::hash<Key>>
class FlatSet
{
    using Impl = FlatMap<Key, detail::Unit, Hash>;

  public:
    class const_iterator
    {
      public:
        using reference = const Key &;
        using pointer = const Key *;
        using value_type = Key;
        using difference_type = std::ptrdiff_t;
        using iterator_category = std::forward_iterator_tag;

        const_iterator() = default;

        reference operator*() const { return it->first; }
        pointer operator->() const { return &it->first; }

        const_iterator &
        operator++()
        {
            ++it;
            return *this;
        }

        const_iterator
        operator++(int)
        {
            const_iterator old = *this;
            ++it;
            return old;
        }

        bool
        operator==(const const_iterator &o) const
        {
            return it == o.it;
        }
        bool
        operator!=(const const_iterator &o) const
        {
            return it != o.it;
        }

      private:
        friend class FlatSet;
        explicit const_iterator(typename Impl::const_iterator i)
            : it(i)
        {
        }

        typename Impl::const_iterator it;
    };

    using iterator = const_iterator;

    FlatSet() = default;

    std::size_t size() const { return m.size(); }
    bool empty() const { return m.empty(); }
    void clear() { m.clear(); }
    void reserve(std::size_t n) { m.reserve(n); }

    const_iterator
    begin() const
    {
        return const_iterator(m.begin());
    }
    const_iterator
    end() const
    {
        return const_iterator(m.end());
    }

    // lint: hot-path one probe-or-insert per replayed trace record
    std::pair<const_iterator, bool>
    insert(const Key &key)
    {
        auto [it, inserted] = m.try_emplace(key);
        return {const_iterator(typename Impl::const_iterator(it)),
                inserted};
    }

    // lint: hot-path pool-resident bookkeeping erases per record
    std::size_t erase(const Key &key) { return m.erase(key); }

    const_iterator
    find(const Key &key) const
    {
        return const_iterator(m.find(key));
    }

    // lint: hot-path one probe per replayed trace record
    bool contains(const Key &key) const { return m.contains(key); }
    std::size_t count(const Key &key) const { return m.count(key); }

    /** Same keys, irrespective of insertion order. */
    bool
    operator==(const FlatSet &o) const
    {
        if (size() != o.size())
            return false;
        for (const Key &key : *this)
            if (!o.contains(key))
                return false;
        return true;
    }

    bool operator!=(const FlatSet &o) const { return !(*this == o); }

  private:
    Impl m;
};

} // namespace starnuma

#endif // STARNUMA_SIM_FLAT_MAP_HH
