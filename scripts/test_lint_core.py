#!/usr/bin/env python3
"""Unit tests for the lexing layer shared by the starnuma lint
family (starnuma_lint_core.py): comment/string stripping with raw
strings and digit separators, preprocessor continuations, the
tokenizer, the function indexer on gnarly declaration shapes, and
parameter-name recovery.

Run directly (``python3 scripts/test_lint_core.py``) or via ctest
(``starnuma_lint_core_test``). No fixtures on disk: every input is
an inline snippet, so a failure pinpoints the lexer feature that
regressed.
"""

import os
import sys
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import starnuma_lint_core as core


def lex(src):
    """The SourceFile pipeline up to tokens, for inline snippets."""
    code = core.strip_preprocessor(core.strip_comments_and_strings(src))
    return core.tokenize(code)


def index(src):
    return core.index_functions(lex(src), "test.cc")


class StripTest(unittest.TestCase):
    def test_raw_string_blanked(self):
        out = core.strip_comments_and_strings(
            'auto s = R"(rand() // "quoted" comment)";')
        self.assertNotIn("rand", out)
        self.assertNotIn("comment", out)
        self.assertIn("auto s =", out)

    def test_raw_string_custom_delimiter(self):
        out = core.strip_comments_and_strings(
            'auto s = R"xy(getenv(")xy"; int keep = 1;')
        self.assertNotIn("getenv", out)
        self.assertIn("int keep = 1;", out)

    def test_raw_string_encoding_prefix(self):
        out = core.strip_comments_and_strings(
            'auto s = u8R"(secret)"; auto t = LR"(hidden)";')
        self.assertNotIn("secret", out)
        self.assertNotIn("hidden", out)

    def test_identifier_ending_in_r_is_not_raw(self):
        # ``FOOBAR"..."`` is a macro call-ish juxtaposition, not a
        # raw string: the quote must parse as an ordinary literal.
        out = core.strip_comments_and_strings('FOOBAR"text" x;')
        self.assertIn("FOOBAR", out)
        self.assertNotIn("text", out)

    def test_raw_string_preserves_line_structure(self):
        src = 'a = R"(line1\nline2\nline3)";\nint after;'
        out = core.strip_comments_and_strings(src)
        self.assertEqual(out.count("\n"), src.count("\n"))
        self.assertNotIn("line2", out)
        self.assertIn("int after;", out)

    def test_digit_separators_survive(self):
        src = "std::uint64_t n = 1'000'000 + 0xDEAD'BEEF;"
        out = core.strip_comments_and_strings(src)
        self.assertEqual(out, src)

    def test_char_literal_still_blanked(self):
        out = core.strip_comments_and_strings(
            "case 'a': c = '\\n'; wide = L'x';")
        self.assertNotIn("a", out.split("case", 1)[1].split(":", 1)[0])
        self.assertNotIn("\\n", out)

    def test_digit_separator_then_char_literal(self):
        # A separator must not open a char literal that swallows the
        # rest of the line.
        out = core.strip_comments_and_strings("n = 1'000; f('q');")
        self.assertIn("1'000", out)
        self.assertNotIn("q", out)

    def test_block_comment_preserves_newlines(self):
        src = "int a; /* rand()\n more */ int b;"
        out = core.strip_comments_and_strings(src)
        self.assertEqual(out.count("\n"), 1)
        self.assertNotIn("rand", out)
        self.assertIn("int b;", out)

    def test_preprocessor_continuation_blanked(self):
        src = ("#define EMIT(x) \\\n"
               "    series.sample(x)\n"
               "int live;")
        out = core.strip_preprocessor(
            core.strip_comments_and_strings(src))
        self.assertNotIn("sample", out)
        self.assertIn("int live;", out)
        self.assertEqual(out.count("\n"), src.count("\n"))


class TokenizeTest(unittest.TestCase):
    def test_line_numbers(self):
        toks = lex("int a;\nint b;\n\nint c;")
        lines = {t.text: t.line for t in toks if t.text in "abc"}
        self.assertEqual(lines, {"a": 1, "b": 2, "c": 4})

    def test_compound_tokens(self):
        texts = [t.text for t in lex("a::b->c")]
        self.assertEqual(texts, ["a", "::", "b", "->", "c"])

    def test_separated_number_is_one_token(self):
        texts = [t.text for t in lex("x = 0xFF'00 + 1'234;")]
        self.assertIn("0xFF'00", texts)
        self.assertIn("1'234", texts)


class IndexTest(unittest.TestCase):
    def test_nested_template_return_and_params(self):
        funcs = index(
            "std::map<int, std::vector<int>>\n"
            "frob(std::pair<int, int> p,\n"
            "     std::function<void(int)> cb)\n"
            "{\n"
            "    cb(p.first);\n"
            "}\n")
        self.assertEqual([f.qualname for f in funcs], ["frob"])
        toks = lex(
            "std::map<int, std::vector<int>>\n"
            "frob(std::pair<int, int> p,\n"
            "     std::function<void(int)> cb)\n"
            "{\n"
            "    cb(p.first);\n"
            "}\n")
        self.assertEqual(core.param_names(toks, funcs[0]), ["p", "cb"])

    def test_class_scope_qualname(self):
        funcs = index(
            "struct Pool {\n"
            "    int grab() { return 1; }\n"
            "};\n"
            "int free_fn() { return 2; }\n")
        names = sorted(f.qualname for f in funcs)
        self.assertEqual(names, ["Pool::grab", "free_fn"])

    def test_ctor_init_list_call_does_not_steal_body(self):
        # The last member initializer is a call expression directly
        # before the body '{'; the indexer must keep the body on the
        # constructor, not on a phantom function named after the
        # member (regression: PhaseSim's 'lightCpi' phantom).
        funcs = index(
            "Pool::Pool(int n)\n"
            "    : size(n), cap(grow(n * 2))\n"
            "{\n"
            "    touch();\n"
            "}\n")
        byname = {f.qualname: f for f in funcs}
        self.assertIn("Pool::Pool", byname)
        ctor = byname["Pool::Pool"]
        self.assertGreater(ctor.body_end, ctor.body_start)
        self.assertEqual(ctor.body_open_line, 3)

    def test_control_keywords_not_indexed(self):
        funcs = index(
            "void f()\n"
            "{\n"
            "    if (x) { a(); }\n"
            "    while (y) { b(); }\n"
            "    for (;;) { break; }\n"
            "}\n")
        self.assertEqual([f.qualname for f in funcs], ["f"])

    def test_body_spans_multiline_raw_string(self):
        funcs = index(
            "void g()\n"
            "{\n"
            '    auto s = R"(\n'
            "        } not a real close\n"
            '    )";\n'
            "    tail();\n"
            "}\n")
        self.assertEqual(len(funcs), 1)
        self.assertEqual(funcs[0].body_close_line, 7)


class ParamNamesTest(unittest.TestCase):
    def params_of(self, src):
        toks = lex(src)
        funcs = core.index_functions(toks, "test.cc")
        self.assertEqual(len(funcs), 1)
        return core.param_names(toks, funcs[0])

    def test_defaults_cut(self):
        self.assertEqual(
            self.params_of("void f(int a = compute(1, 2), int b = 3)"
                           " {}"),
            ["a", "b"])

    def test_unnamed_keeps_position(self):
        self.assertEqual(
            self.params_of("void f(int, double x, const char *) {}"),
            [None, "x", None])

    def test_void_list_empty(self):
        self.assertEqual(self.params_of("void f(void) {}"), [])
        self.assertEqual(self.params_of("void g() {}"), [])

    def test_template_groups_skipped(self):
        self.assertEqual(
            self.params_of(
                "void f(std::map<int, std::vector<double>> m,\n"
                "       std::array<int, 4> a) {}"),
            ["m", "a"])


class AnnotationTest(unittest.TestCase):
    def test_contiguous_comment_block(self):
        raw = ["// lint: taint-ok reviewed",
               "auto now = clock();"]
        self.assertTrue(
            core.has_annotation_above(raw, 1, "lint: taint-ok"))

    def test_blank_line_keeps_block(self):
        raw = ["// lint: taint-ok reviewed",
               "",
               "auto now = clock();"]
        self.assertTrue(
            core.has_annotation_above(raw, 2, "lint: taint-ok"))

    def test_code_line_breaks_block(self):
        raw = ["// lint: taint-ok reviewed",
               "int unrelated;",
               "auto now = clock();"]
        self.assertFalse(
            core.has_annotation_above(raw, 2, "lint: taint-ok"))


if __name__ == "__main__":
    unittest.main()
