/**
 * @file
 * The instrumentation context workloads run against — our stand-in
 * for the paper's Pin-based tracer (§IV-A1). Workload kernels
 * allocate simulated memory from a flat virtual address space and
 * report their loads, stores, and compute instructions per logical
 * thread. Each thread's accesses pass through a private cache
 * filter sized like an L1+L2 (so recorded accesses approximate the
 * LLC-bound stream, as the paper's distributions do); survivors are
 * appended to the thread's memory trace with the current dynamic
 * instruction count.
 *
 * During setup (between beginSetup/endSetup) accesses are untimed
 * and unfiltered: they only record which thread first touched each
 * page, seeding first-touch placement the way parallel
 * initialization does on a real system.
 */

#ifndef STARNUMA_TRACE_CAPTURE_HH
#define STARNUMA_TRACE_CAPTURE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "mem/cache.hh"
#include "sim/flat_map.hh"
#include "sim/types.hh"
#include "trace/trace.hh"

namespace starnuma
{
namespace trace
{

/** Capture-side instrumentation for one workload run. */
class CaptureContext
{
  public:
    /**
     * @param threads logical threads of the run.
     * @param filter geometry of the per-thread capture filter
     *        (default: a 256 KB, 8-way L2 proxy).
     */
    explicit CaptureContext(int threads,
                            mem::CacheConfig filter = {256 * 1024,
                                                       8});

    int threads() const { return static_cast<int>(state.size()); }

    // --- Simulated address space ---

    /**
     * Allocate @p bytes of simulated memory (page aligned).
     * @return the region's base virtual address.
     */
    Addr alloc(Addr bytes);

    /** Bytes allocated so far (the workload footprint). */
    Addr footprint() const { return nextAddr - baseAddr; }

    // --- Setup (untimed first-touch) mode ---

    void beginSetup() { inSetup = true; }
    void endSetup() { inSetup = false; }

    // --- Per-thread instrumentation ---

    /** Account @p n non-memory instructions to thread @p t. */
    void
    instr(ThreadId t, std::uint64_t n = 1)
    {
        state[t].instructions += n;
    }

    /** A load by thread @p t from @p vaddr. */
    void load(ThreadId t, Addr vaddr) { access(t, vaddr, false); }

    /** A store by thread @p t to @p vaddr. */
    void store(ThreadId t, Addr vaddr) { access(t, vaddr, true); }

    /** Thread @p t's dynamic instruction count. */
    std::uint64_t
    instructions(ThreadId t) const
    {
        return state[t].instructions;
    }

    /** Smallest instruction count across threads. */
    std::uint64_t minInstructions() const;

    /** Move the capture out as a WorkloadTrace. */
    WorkloadTrace take(const std::string &workload,
                       std::uint64_t instructions_per_thread);

  private:
    void access(ThreadId t, Addr vaddr, bool write);

    struct ThreadState
    {
        explicit ThreadState(const mem::CacheConfig &cfg)
            : filter(cfg), instructions(0)
        {
        }

        mem::Cache filter;
        std::uint64_t instructions;
        std::vector<MemRecord> records;
    };

    static constexpr Addr baseAddr = 0x10000000;

    std::vector<ThreadState> state;
    FlatSet<PageNum> written;
    FlatMap<PageNum, ThreadId> touched;
    std::vector<FirstTouch> firstTouches;
    Addr nextAddr;
    bool inSetup;
};

/**
 * A typed view over a simulated allocation: indexes translate to
 * traced loads/stores while the actual values live in a real
 * std::vector owned by the workload.
 */
template <typename T>
class TracedArray
{
  public:
    TracedArray() : base_(0) {}

    /** Allocate backing simulated memory for @p n elements. */
    void
    allocate(CaptureContext &ctx, std::size_t n)
    {
        data_.assign(n, T{});
        base_ = ctx.alloc(n * sizeof(T));
    }

    std::size_t size() const { return data_.size(); }
    Addr base() const { return base_; }

    /** Simulated address of element @p i. */
    Addr
    addrOf(std::size_t i) const
    {
        return base_ + i * sizeof(T);
    }

    /** Traced read of element @p i by thread @p t. */
    const T &
    read(CaptureContext &ctx, ThreadId t, std::size_t i)
    {
        ctx.load(t, addrOf(i));
        return data_[i];
    }

    /** Traced write of element @p i by thread @p t. */
    void
    write(CaptureContext &ctx, ThreadId t, std::size_t i, T value)
    {
        ctx.store(t, addrOf(i));
        data_[i] = value;
    }

    /** Untraced access (setup-time or bookkeeping). */
    T &operator[](std::size_t i) { return data_[i]; }
    const T &operator[](std::size_t i) const { return data_[i]; }

  private:
    std::vector<T> data_;
    Addr base_;
};

} // namespace trace
} // namespace starnuma

#endif // STARNUMA_TRACE_CAPTURE_HH
