/**
 * @file
 * 128-bit content hashing for the content-addressed artifact store
 * (DESIGN.md §16). FNV-1a widened to 128 bits: not cryptographic,
 * but collision-safe at sweep-matrix scale (thousands of objects),
 * byte-order independent of the host, and cheap to reimplement —
 * scripts/cas_tool.py carries a bit-exact Python twin so the store
 * can be audited without the C++ toolchain.
 */

#ifndef STARNUMA_SIM_CAS_HASH_HH
#define STARNUMA_SIM_CAS_HASH_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace starnuma
{
namespace cas
{

/** A 128-bit digest, stored as two little-endian u64 halves. */
struct Hash128 {
    std::uint64_t hi = 0;
    std::uint64_t lo = 0;

    bool operator==(const Hash128 &o) const
    {
        return hi == o.hi && lo == o.lo;
    }
    bool operator!=(const Hash128 &o) const { return !(*this == o); }

    /** 32 lowercase hex digits, hi half first. */
    std::string hex() const;
};

/** Streaming FNV-1a-128. Feed bytes, then digest(). */
class Hasher
{
  public:
    Hasher();

    void update(const void *data, std::size_t size);
    void update(const std::string &s);
    void update(const std::vector<std::uint8_t> &bytes);

    Hash128 digest() const;

  private:
    unsigned __int128 state;
};

/** One-shot convenience over a whole buffer. */
Hash128 hashBytes(const void *data, std::size_t size);
Hash128 hashBytes(const std::vector<std::uint8_t> &bytes);
Hash128 hashString(const std::string &s);

} // namespace cas
} // namespace starnuma

#endif // STARNUMA_SIM_CAS_HASH_HH
