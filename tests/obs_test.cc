/**
 * @file
 * Observability subsystem tests: deterministic number formatting,
 * snapshot JSON/CSV goldens, registry registration/expansion and
 * duplicate-path panics, the StatsSink byte-stability guarantee
 * (identical artifact for pool sizes 1/4/8), a trace smoke test
 * (events well-formed, file structure valid), and the thread-pool
 * self-profiling registry.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "driver/experiment.hh"
#include "sim/obs/obs.hh"
#include "sim/obs/registry.hh"
#include "sim/obs/trace_session.hh"
#include "sim/parallel.hh"
#include "sim/stats.hh"

namespace starnuma
{
namespace
{

// --- formatting ---

TEST(ObsFormat, WholeNumbersPrintWithoutFraction)
{
    EXPECT_EQ(obs::formatNumber(0.0), "0");
    EXPECT_EQ(obs::formatNumber(42.0), "42");
    EXPECT_EQ(obs::formatNumber(-3.0), "-3");
    EXPECT_EQ(obs::formatCount(0), "0");
    EXPECT_EQ(obs::formatCount(12345678901234ULL),
              "12345678901234");
}

TEST(ObsFormat, FractionsRoundTripExactly)
{
    for (double v : {0.1, 1.0 / 3.0, 2.5e-7, 123456.789, -0.625}) {
        std::string s = obs::formatNumber(v);
        EXPECT_EQ(std::strtod(s.c_str(), nullptr), v) << s;
    }
}

TEST(ObsFormat, JsonEscape)
{
    EXPECT_EQ(obs::jsonEscape("plain"), "plain");
    EXPECT_EQ(obs::jsonEscape("a\"b\\c"), "a\\\"b\\\\c");
    EXPECT_EQ(obs::jsonEscape("tab\there"), "tab\\there");
}

// --- snapshot goldens ---

TEST(ObsSnapshot, JsonGoldenSortedAndStable)
{
    obs::Snapshot s;
    s.setCount("b.count", 3);
    s.set("a.ratio", 0.5);
    s.set("c.mean", 12.0);
    EXPECT_EQ(s.json(),
              "{\n"
              "  \"a.ratio\": 0.5,\n"
              "  \"b.count\": 3,\n"
              "  \"c.mean\": 12\n"
              "}\n");
}

TEST(ObsSnapshot, CsvGoldenSortedAndStable)
{
    obs::Snapshot s;
    s.setCount("z.hits", 9);
    s.set("a.util", 0.25);
    EXPECT_EQ(s.csv(),
              "stat,value\n"
              "a.util,0.25\n"
              "z.hits,9\n");
}

TEST(ObsSnapshot, MergePrefixesAndGet)
{
    obs::Snapshot inner;
    inner.setCount("hits", 4);
    obs::Snapshot outer;
    outer.merge("cache.", inner);
    EXPECT_EQ(outer.get("cache.hits"), "4");
    EXPECT_EQ(outer.get("absent"), "");
    EXPECT_EQ(outer.size(), 1u);
}

// --- registry ---

TEST(ObsRegistry, RegistersAndExpandsAllKinds)
{
    std::uint64_t hits = 7;
    double util = 0.25;
    stats::Mean m;
    m.sample(2.0);
    m.sample(4.0);
    stats::Histogram h(4, 10.0);
    h.sample(5.0);
    h.sample(35.0);
    h.sample(99.0); // overflow

    obs::Registry r;
    r.addCounter("cache.hits", &hits);
    r.addGauge("link.util", &util);
    r.addCounterFn("twice.hits", [&hits] { return hits * 2; });
    r.addGaugeFn("half.util", [&util] { return util / 2; });
    r.addMean("queue.delay", &m);
    r.addHistogram("lat", &h);
    EXPECT_EQ(r.size(), 6u);

    obs::Snapshot s = r.snapshot();
    EXPECT_EQ(s.get("cache.hits"), "7");
    EXPECT_EQ(s.get("link.util"), "0.25");
    EXPECT_EQ(s.get("twice.hits"), "14");
    EXPECT_EQ(s.get("half.util"), "0.125");
    EXPECT_EQ(s.get("queue.delay.count"), "2");
    EXPECT_EQ(s.get("queue.delay.sum"), "6");
    EXPECT_EQ(s.get("queue.delay.mean"), "3");
    EXPECT_EQ(s.get("queue.delay.min"), "2");
    EXPECT_EQ(s.get("queue.delay.max"), "4");
    EXPECT_EQ(s.get("lat.total"), "3");
    EXPECT_EQ(s.get("lat.overflow"), "1");
    EXPECT_EQ(s.get("lat.bucket00"), "1");
    EXPECT_EQ(s.get("lat.bucket03"), "1");
    EXPECT_NE(s.get("lat.p50"), "");
    EXPECT_NE(s.get("lat.p99"), "");

    // Live references: bumping the owner changes the next snapshot.
    hits = 8;
    EXPECT_EQ(r.snapshot().get("cache.hits"), "8");
}

TEST(ObsRegistryDeathTest, DuplicatePathPanics)
{
    obs::Registry r;
    std::uint64_t v = 0;
    r.addCounter("a.b", &v);
    EXPECT_DEATH(r.addCounter("a.b", &v), "assertion");
}

TEST(ObsRegistryDeathTest, MalformedPathPanics)
{
    obs::Registry r;
    std::uint64_t v = 0;
    EXPECT_DEATH(r.addCounter("bad path", &v), "assertion");
}

// --- StatsSink determinism across pool sizes ---

TEST(ObsSink, DisabledByDefaultAndDropsWhenStopped)
{
    obs::StatsSink &sink = obs::StatsSink::global();
    ASSERT_FALSE(sink.enabled());

    obs::Snapshot s;
    s.setCount("x", 1);
    sink.add("pre.", s); // disabled: no-op
    EXPECT_TRUE(sink.collect().empty());

    sink.start("");
    sink.add("on.", s);
    EXPECT_EQ(sink.collect().get("on.x"), "1");
    sink.stop();
    EXPECT_FALSE(sink.enabled());
    EXPECT_TRUE(sink.collect().empty());
}

TEST(ObsSink, StatsArtifactByteIdenticalAcrossPoolSizes)
{
    SimScale s = SimScale::tiny();
    obs::StatsSink &sink = obs::StatsSink::global();

    auto run_collect = [&](int pool_size) {
        ThreadPool::setGlobalThreads(pool_size);
        sink.start("");
        driver::runExperiment(
            "bfs", driver::SystemSetup::starnuma(), s);
        std::string json = sink.collectJson();
        sink.stop();
        return json;
    };

    std::string serial = run_collect(1);
    EXPECT_GT(serial.size(), 2u);
    for (int pool_size : {4, 8}) {
        SCOPED_TRACE("pool=" + std::to_string(pool_size));
        EXPECT_EQ(run_collect(pool_size), serial);
    }
    ThreadPool::setGlobalThreads(0);
}

TEST(ObsSink, CsvExportMatchesJsonContent)
{
    obs::StatsSink &sink = obs::StatsSink::global();
    sink.start("");
    obs::Snapshot s;
    s.setCount("hits", 2);
    sink.add("t.", s);

    std::string csv_path =
        testing::TempDir() + "/starnuma_obs_test.csv";
    ASSERT_TRUE(sink.writeTo(csv_path));
    sink.stop();

    std::ifstream in(csv_path);
    std::stringstream buf;
    buf << in.rdbuf();
    EXPECT_EQ(buf.str(), "stat,value\nt.hits,2\n");
    std::remove(csv_path.c_str());
}

// --- trace smoke test ---

TEST(ObsTrace, SmokeFileWellFormed)
{
    obs::TraceSession &trace = obs::TraceSession::global();
    ASSERT_FALSE(trace.enabled());
    trace.start("");

    {
        obs::TraceSpan span(
            "unit span", "test",
            obs::TraceArgs().add("k", 1).str());
    }
    trace.instantNow("unit instant", "test");
    trace.counterEvent(
        "unit counter", 1.0, obs::tracePidSim, 0,
        obs::TraceArgs().add("v", 0.5).str());

    SimScale s = SimScale::tiny();
    driver::runExperiment("bfs", driver::SystemSetup::starnuma(),
                          s);
    EXPECT_GT(trace.eventCount(), 4u);

    std::string path =
        testing::TempDir() + "/starnuma_obs_test_trace.json";
    ASSERT_TRUE(trace.writeTo(path));
    trace.stop();
    ASSERT_FALSE(trace.enabled());

    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    std::string text = buf.str();
    std::remove(path.c_str());

    // File structure: one traceEvents array, ms display unit.
    EXPECT_EQ(text.rfind("{\"traceEvents\":[", 0), 0u);
    EXPECT_NE(text.find("\"displayTimeUnit\":\"ms\"}"),
              std::string::npos);

    // Every event line carries well-formed ph/pid fields and
    // balanced braces (events are one per line between [ and ]).
    std::istringstream lines(text);
    std::string line;
    std::size_t events = 0;
    bool saw_x = false, saw_meta = false;
    while (std::getline(lines, line)) {
        if (line.rfind("{\"name\":", 0) != 0)
            continue;
        ++events;
        EXPECT_NE(line.find("\"ph\":\""), std::string::npos)
            << line;
        EXPECT_NE(line.find("\"pid\":"), std::string::npos)
            << line;
        int depth = 0;
        bool in_str = false;
        for (std::size_t i = 0; i < line.size(); ++i) {
            char c = line[i];
            if (in_str) {
                if (c == '\\')
                    ++i;
                else if (c == '"')
                    in_str = false;
            } else if (c == '"') {
                in_str = true;
            } else if (c == '{') {
                ++depth;
            } else if (c == '}') {
                --depth;
            }
        }
        EXPECT_EQ(depth, 0) << line;
        if (line.find("\"ph\":\"X\"") != std::string::npos)
            saw_x = true;
        if (line.find("\"ph\":\"M\"") != std::string::npos)
            saw_meta = true;
    }
    EXPECT_GT(events, 4u);
    EXPECT_TRUE(saw_x) << "no duration events in trace";
    EXPECT_TRUE(saw_meta) << "no metadata events in trace";
}

// --- thread-pool self-profiling ---

TEST(ObsPoolProfile, RegistersTaskCountsAndBusyFractions)
{
    ThreadPool pool(2);
    pool.parallelFor(100, [](std::size_t) {});

    obs::Registry r;
    pool.registerStats(r, "pool");
    obs::Snapshot s = r.snapshot();

    EXPECT_EQ(s.get("pool.size"), "2");
    EXPECT_NE(s.get("pool.batches"), "0");
    EXPECT_NE(s.get("pool.upNs"), "");

    // Every task lands in exactly one slot: caller + 2 workers.
    std::uint64_t tasks =
        std::strtoull(s.get("pool.caller.tasks").c_str(), nullptr,
                      10) +
        std::strtoull(s.get("pool.worker0.tasks").c_str(), nullptr,
                      10) +
        std::strtoull(s.get("pool.worker1.tasks").c_str(), nullptr,
                      10);
    EXPECT_EQ(tasks, 100u);

    // Busy fractions exist for every slot (0 unless host profiling
    // was enabled while the tasks ran).
    EXPECT_NE(s.get("pool.caller.busyFraction"), "");
    EXPECT_NE(s.get("pool.worker0.busyFraction"), "");
    EXPECT_NE(s.get("pool.worker1.busyFraction"), "");
}

} // namespace
} // namespace starnuma
