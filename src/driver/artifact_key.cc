#include "driver/artifact_key.hh"

#include <bit>
#include <concepts>
#include <cstdint>

#include "sim/cas/code_epoch.hh"
#include "sim/rng.hh"

namespace starnuma
{
namespace driver
{

namespace
{

/**
 * Doubles are keyed by their exact IEEE-754 bit pattern (16 hex
 * digits): any textual rounding would be a second representation
 * decision and a source of spurious key collisions or splits.
 */
std::string
hexBits(double v)
{
    std::uint64_t bits = std::bit_cast<std::uint64_t>(v);
    static const char digits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] =
            digits[bits & 0xF];
        bits >>= 4;
    }
    return out;
}

void
field(std::string &out, const std::string &name,
      const std::string &value)
{
    out += name;
    out += '=';
    out += value;
    out += '\n';
}

template <typename T>
    requires std::integral<T>
void
field(std::string &out, const std::string &name, T v)
{
    field(out, name, std::to_string(v));
}

void
field(std::string &out, const std::string &name, double v)
{
    field(out, name, hexBits(v));
}

/** Fingerprint of a canonical field text (32 hex digits). */
std::string
fingerprint(const std::string &text)
{
    return cas::hashString(text).hex();
}

/**
 * Every SimScale field. One opaque "scale" fingerprint keeps the
 * key vocabulary stable while staying conservative: any scale knob
 * change invalidates, matching the trace memo's behaviour.
 */
std::string
scaleFingerprint(const SimScale &scale)
{
    std::string t;
    field(t, "sockets", static_cast<std::uint64_t>(scale.sockets));
    field(t, "socketsPerChassis",
          static_cast<std::uint64_t>(scale.socketsPerChassis));
    field(t, "coresPerSocket",
          static_cast<std::uint64_t>(scale.coresPerSocket));
    field(t, "phases", static_cast<std::uint64_t>(scale.phases));
    field(t, "phaseInstructions", scale.phaseInstructions);
    field(t, "detailFraction", scale.detailFraction);
    field(t, "warmupFraction", scale.warmupFraction);
    return fingerprint(t);
}

/** Every topology::SystemConfig field (hardware identity). */
std::string
topologyFingerprint(const topology::SystemConfig &sys)
{
    std::string t;
    field(t, "sockets", static_cast<std::uint64_t>(sys.sockets));
    field(t, "socketsPerChassis",
          static_cast<std::uint64_t>(sys.socketsPerChassis));
    field(t, "hasPool",
          static_cast<std::uint64_t>(sys.hasPool ? 1 : 0));
    field(t, "upiGbps", sys.upiGbps);
    field(t, "numalinkGbps", sys.numalinkGbps);
    field(t, "cxlGbps", sys.cxlGbps);
    field(t, "upiNs", sys.upiNs);
    field(t, "flexAsicNs", sys.flexAsicNs);
    field(t, "numalinkNs", sys.numalinkNs);
    field(t, "cxlOneWayNs", sys.cxlOneWayNs);
    field(t, "onChipNs", sys.onChipNs);
    field(t, "dramNs", sys.dramNs);
    field(t, "channelsPerSocket",
          static_cast<std::uint64_t>(sys.channelsPerSocket));
    field(t, "poolChannels",
          static_cast<std::uint64_t>(sys.poolChannels));
    field(t, "channelGbps", sys.channelGbps);
    field(t, "banksPerChannel",
          static_cast<std::uint64_t>(sys.banksPerChannel));
    field(t, "poolCapacityFraction", sys.poolCapacityFraction);
    return fingerprint(t);
}

/**
 * Placement/migration policy identity: every core::MigrationConfig
 * knob plus the setup-level region size, placement mode and
 * replication policy. The deliberately excluded field is the
 * setup's display *name* — identical configurations under
 * different names share artifacts.
 */
std::string
policyFingerprint(const SystemSetup &setup)
{
    const core::MigrationConfig &m = setup.migration;
    std::string t;
    field(t, "counterBits",
          static_cast<std::uint64_t>(m.counterBits));
    field(t, "hiThresholdStart", m.hiThresholdStart);
    field(t, "hiThresholdMin", m.hiThresholdMin);
    field(t, "hiThresholdMax", m.hiThresholdMax);
    field(t, "loThresholdStart", m.loThresholdStart);
    field(t, "loThresholdMax", m.loThresholdMax);
    field(t, "migrationLimitPages", m.migrationLimitPages);
    field(t, "migrationLimitFraction", m.migrationLimitFraction);
    field(t, "scaleLimitToFootprint",
          static_cast<std::uint64_t>(
              m.scaleLimitToFootprint ? 1 : 0));
    field(t, "poolSharerThreshold",
          static_cast<std::uint64_t>(m.poolSharerThreshold));
    field(t, "poolEnabled",
          static_cast<std::uint64_t>(m.poolEnabled ? 1 : 0));
    field(t, "randomSharerReshuffle",
          static_cast<std::uint64_t>(
              m.randomSharerReshuffle ? 1 : 0));
    field(t, "regionBytes", setup.regionBytes);
    field(t, "placement",
          static_cast<std::uint64_t>(setup.placement));
    field(t, "replicateReadOnly",
          static_cast<std::uint64_t>(
              setup.replicateReadOnly ? 1 : 0));
    field(t, "replicationSharerThreshold",
          static_cast<std::uint64_t>(
              setup.replication.sharerThreshold));
    field(t, "replicationCapacityBudget",
          setup.replication.capacityBudget);
    return fingerprint(t);
}

/**
 * Fingerprint of the phase-policy schedule entries with
 * fromPhase < @p before_phase, in vector order (application
 * order). before_phase < 0 fingerprints the whole schedule.
 */
std::string
scheduleFingerprint(const SystemSetup &setup, int before_phase)
{
    std::string t;
    for (const PhasePolicy &pp : setup.phasePolicies) {
        if (before_phase >= 0 && pp.fromPhase >= before_phase)
            continue;
        field(t, "fromPhase",
              static_cast<std::uint64_t>(pp.fromPhase));
        field(t, "migrationLimitFraction",
              pp.migrationLimitFraction);
        field(t, "poolSharerThreshold",
              static_cast<std::uint64_t>(pp.poolSharerThreshold));
    }
    return fingerprint(t);
}

/**
 * Declared environment gates (the manifest's declared_env list).
 * Both are byte-invariant by the determinism contract — the worker
 * pool size and the step-A disk cache location cannot change any
 * artifact byte — so they key as the literal "invariant" and warm
 * hits survive pool-size changes (Golden.WarmEqualsCold sweeps
 * STARNUMA_THREADS over {1,4,8} against one store).
 */
void
envFields(std::string &out)
{
    field(out, "env.STARNUMA_CACHE_DIR", std::string("invariant"));
    field(out, "env.STARNUMA_THREADS", std::string("invariant"));
    field(out, "env.STARNUMA_TRACE_DIR", std::string("invariant"));
}

} // anonymous namespace

// lint: artifact-root cache_key
std::string
traceKeyText(const std::string &workload, const SimScale &scale)
{
    std::string k;
    field(k, "kind", std::string("step_a_trace"));
    field(k, "workload.name", workload);
    field(k, "workload.parameters", std::string("builtin"));
    field(k, "scale", scaleFingerprint(scale));
    field(k, "trace.format_version",
          static_cast<std::uint64_t>(2));
    field(k, "code.epoch", cas::codeEpoch("step_a_trace"));
    envFields(k);
    return k;
}

// lint: artifact-root cache_key
std::string
stateKeyText(const std::string &workload,
             const SystemSetup &setup, const SimScale &scale,
             const cas::Hash128 &trace_content, int phase)
{
    std::string k;
    field(k, "kind", std::string("step_b_state"));
    field(k, "phase", static_cast<std::uint64_t>(phase));
    field(k, "workload.name", workload);
    field(k, "trace.content", trace_content.hex());
    field(k, "setup.topology", topologyFingerprint(setup.sys));
    field(k, "setup.policy", policyFingerprint(setup));
    field(k, "policy.prefix", scheduleFingerprint(setup, phase));
    field(k, "scale", scaleFingerprint(scale));
    field(k, "rng.seed", taskSeed({workload, setup.name}));
    field(k, "checkpoint.format_version",
          static_cast<std::uint64_t>(2));
    field(k, "code.epoch", cas::codeEpoch("step_b_checkpoint"));
    envFields(k);
    return k;
}

// lint: artifact-root cache_key
std::string
resultKeyText(const std::string &workload,
              const SystemSetup &setup, const SimScale &scale,
              const cas::Hash128 &trace_content,
              bool stats_enabled)
{
    std::string k;
    field(k, "kind", std::string("experiment_result"));
    field(k, "workload.name", workload);
    field(k, "trace.content", trace_content.hex());
    field(k, "setup.topology", topologyFingerprint(setup.sys));
    field(k, "setup.policy", policyFingerprint(setup));
    field(k, "policy.schedule", scheduleFingerprint(setup, -1));
    field(k, "scale", scaleFingerprint(scale));
    field(k, "rng.seed", taskSeed({workload, setup.name}));
    field(k, "obs.stats",
          std::string(stats_enabled ? "on" : "off"));
    field(k, "checkpoint.format_version",
          static_cast<std::uint64_t>(2));
    field(k, "result.format_version",
          static_cast<std::uint64_t>(1));
    field(k, "code.epoch", cas::codeEpoch("pipeline"));
    envFields(k);
    return k;
}

} // namespace driver
} // namespace starnuma
