/**
 * @file
 * Fig 14 reproduction: methodology robustness. StarNUMA's speedup
 * for BFS, TC, and FMI under three simulation configurations —
 * SC1 (the default), SC2 (3x more detailed instructions per
 * phase), and SC3 (doubled system scale: 8 cores per socket, 128
 * threads, freshly captured traces). Paper: results are not
 * quantitatively identical but qualitatively in full agreement
 * (within ~5% for TC/FMI; BFS improves further).
 */

#include <benchmark/benchmark.h>

#include <map>

#include "bench_util.hh"
#include "sim/table.hh"

using namespace starnuma;

namespace
{

const std::vector<std::pair<std::string, SimScale>> &
simConfigs()
{
    static std::vector<std::pair<std::string, SimScale>> v = [] {
        std::vector<std::pair<std::string, SimScale>> c;
        c.emplace_back("SC1", benchutil::benchScale());
        SimScale sc2 = benchutil::benchScale();
        sc2.detailFraction *= 3;
        c.emplace_back("SC2 (3x detail)", sc2);
        SimScale sc3 = benchutil::benchScale();
        sc3.coresPerSocket *= 2;
        c.emplace_back("SC3 (2x scale)", sc3);
        return c;
    }();
    return v;
}

std::vector<std::string>
fig14Workloads()
{
    if (benchutil::fastMode())
        return {"tc"};
    return {"bfs", "tc", "fmi"};
}

void
BM_Fig14(benchmark::State &state, const std::string &workload,
         const SimScale &scale, const std::string &label)
{
    double speedup = 0;
    for (auto _ : state) {
        speedup = benchutil::speedupOverBaseline(
            workload, driver::SystemSetup::starnuma(), scale);
        benchmark::DoNotOptimize(speedup);
    }
    state.counters["speedup"] = speedup;
    (void)label;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    benchutil::initBench(&argc, argv);
    // Every (workload, system, simulation-config) pipeline is
    // independent — sweep them all across the pool up front.
    std::vector<driver::SweepJob> jobs;
    for (const auto &[label, scale] : simConfigs())
        for (auto &job : driver::crossJobs(
                 fig14Workloads(),
                 {driver::SystemSetup::baseline(),
                  driver::SystemSetup::starnuma()},
                 scale))
            jobs.push_back(std::move(job));
    benchutil::prewarm(jobs);

    for (const auto &w : fig14Workloads())
        for (const auto &[label, scale] : simConfigs())
            benchmark::RegisterBenchmark(
                ("Fig14/" + w + "/" + label).c_str(), BM_Fig14, w,
                scale, label)
                ->Iterations(1)
                ->Unit(benchmark::kMillisecond);
    int rc = benchutil::runBenchmarks(argc, argv);

    std::vector<std::string> header{"workload"};
    for (const auto &[label, scale] : simConfigs())
        header.push_back(label);
    TextTable t(header);
    for (const auto &w : fig14Workloads()) {
        std::vector<std::string> row{w};
        for (const auto &[label, scale] : simConfigs())
            row.push_back(
                TextTable::num(benchutil::speedupOverBaseline(
                                   w,
                                   driver::SystemSetup::starnuma(),
                                   scale),
                               2) + "x");
        t.addRow(row);
    }
    benchutil::printSection(
        "Fig 14: StarNUMA speedup under alternative simulation "
        "configurations (paper: qualitative agreement, TC/FMI "
        "within ~5%)",
        t.str());
    return rc;
}
