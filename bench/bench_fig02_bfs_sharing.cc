/**
 * @file
 * Fig 2 reproduction: page sharing-degree distribution and the
 * distribution of overall accesses across sharing degrees for the
 * BFS workload on the 16-socket system, including the read-write
 * classification and §II-B's derived quantities (fraction of pages
 * with <= 4 sharers, accesses concentrated on > 8-sharer pages,
 * inter-chassis share of fully shared accesses).
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"
#include "sim/table.hh"
#include "trace/profile.hh"
#include "workloads/workload.hh"

using namespace starnuma;

namespace
{

const trace::SharingProfile &
profile()
{
    static SimScale scale = benchutil::benchScale();
    static trace::WorkloadTrace trace =
        workloads::captureWorkload("bfs", scale);
    static trace::SharingProfile p(trace, scale.coresPerSocket,
                                   scale.sockets);
    return p;
}

void
BM_Fig2_BfsSharingProfile(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(profile().totalPages());
    const auto &p = profile();
    state.counters["pages_le4_sharers"] = p.pagesWithAtMost(4);
    state.counters["accesses_gt8_sharers"] = p.accessesAbove(8);
    state.counters["accesses_deg16"] = p.accessFraction(16);
}
BENCHMARK(BM_Fig2_BfsSharingProfile)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

} // anonymous namespace

int
main(int argc, char **argv)
{
    benchutil::initBench(&argc, argv);
    int rc = benchutil::runBenchmarks(argc, argv);
    const auto &p = profile();

    TextTable t({"sharers", "pages", "accesses", "RW accesses"});
    for (int d = 1; d <= p.sockets(); ++d) {
        if (p.pageFraction(d) < 0.001 && p.accessFraction(d) < 0.001)
            continue;
        t.addRow({std::to_string(d), TextTable::pct(p.pageFraction(d)),
                  TextTable::pct(p.accessFraction(d)),
                  TextTable::pct(p.readWriteAccessFraction(d))});
    }
    benchutil::printSection(
        "Fig 2: BFS page sharing degree and access distributions",
        t.str());

    TextTable s({"quantity", "measured", "paper"});
    s.addRow({"pages with <= 4 sharers",
              TextTable::pct(p.pagesWithAtMost(4)), "78%"});
    s.addRow({"pages with > 8 sharers",
              TextTable::pct(1.0 - p.pagesWithAtMost(8)), "7%"});
    s.addRow({"accesses to > 8-sharer pages",
              TextTable::pct(p.accessesAbove(8)), "68%"});
    s.addRow({"accesses to 16-sharer pages",
              TextTable::pct(p.accessFraction(16)), "36%"});
    s.addRow({"inter-chassis share (uniform, Sec II-B)",
              TextTable::pct(
                  trace::SharingProfile::interChassisFraction(16, 4)),
              "75%"});
    benchutil::printSection("Fig 2 summary vs paper", s.str());
    return rc;
}
