file(REMOVE_RECURSE
  "CMakeFiles/starnuma_tests.dir/analytic_test.cc.o"
  "CMakeFiles/starnuma_tests.dir/analytic_test.cc.o.d"
  "CMakeFiles/starnuma_tests.dir/core_test.cc.o"
  "CMakeFiles/starnuma_tests.dir/core_test.cc.o.d"
  "CMakeFiles/starnuma_tests.dir/coverage_test.cc.o"
  "CMakeFiles/starnuma_tests.dir/coverage_test.cc.o.d"
  "CMakeFiles/starnuma_tests.dir/driver_test.cc.o"
  "CMakeFiles/starnuma_tests.dir/driver_test.cc.o.d"
  "CMakeFiles/starnuma_tests.dir/kernel_correctness_test.cc.o"
  "CMakeFiles/starnuma_tests.dir/kernel_correctness_test.cc.o.d"
  "CMakeFiles/starnuma_tests.dir/mem_test.cc.o"
  "CMakeFiles/starnuma_tests.dir/mem_test.cc.o.d"
  "CMakeFiles/starnuma_tests.dir/property_test.cc.o"
  "CMakeFiles/starnuma_tests.dir/property_test.cc.o.d"
  "CMakeFiles/starnuma_tests.dir/replication_test.cc.o"
  "CMakeFiles/starnuma_tests.dir/replication_test.cc.o.d"
  "CMakeFiles/starnuma_tests.dir/sim_test.cc.o"
  "CMakeFiles/starnuma_tests.dir/sim_test.cc.o.d"
  "CMakeFiles/starnuma_tests.dir/system_sweep_test.cc.o"
  "CMakeFiles/starnuma_tests.dir/system_sweep_test.cc.o.d"
  "CMakeFiles/starnuma_tests.dir/topology_test.cc.o"
  "CMakeFiles/starnuma_tests.dir/topology_test.cc.o.d"
  "CMakeFiles/starnuma_tests.dir/trace_test.cc.o"
  "CMakeFiles/starnuma_tests.dir/trace_test.cc.o.d"
  "CMakeFiles/starnuma_tests.dir/workload_test.cc.o"
  "CMakeFiles/starnuma_tests.dir/workload_test.cc.o.d"
  "starnuma_tests"
  "starnuma_tests.pdb"
  "starnuma_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starnuma_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
