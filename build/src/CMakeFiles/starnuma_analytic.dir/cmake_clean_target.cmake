file(REMOVE_RECURSE
  "libstarnuma_analytic.a"
)
