// Fixture: a correctly guarded header produces no D4 finding.

#ifndef STARNUMA_CORE_D4_GOOD_GUARD_HH
#define STARNUMA_CORE_D4_GOOD_GUARD_HH

namespace fixture
{
}

#endif // STARNUMA_CORE_D4_GOOD_GUARD_HH
