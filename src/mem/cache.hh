/**
 * @file
 * Set-associative write-back cache with LRU replacement. Used in
 * three roles: the per-thread L1+L2 filter applied at trace-capture
 * time (§IV-A1), the per-socket shared LLC of the detailed socket,
 * and the "LLC-sized cache" each light socket keeps to filter
 * accesses and support coherence modeling (§IV-B).
 */

#ifndef STARNUMA_MEM_CACHE_HH
#define STARNUMA_MEM_CACHE_HH

#include <cstdint>
#include <vector>

#include <string>

#include "sim/types.hh"

namespace starnuma
{

namespace obs
{
class Registry;
} // namespace obs

namespace mem
{

/** Geometry of a cache. */
struct CacheConfig
{
    Addr sizeBytes;
    int ways;
};

/** Outcome of a cache access, including any evicted victim. */
struct CacheAccess
{
    bool hit = false;
    bool evicted = false;      ///< a valid victim block was replaced
    Addr victim = 0;           ///< block address of the victim
    bool victimDirty = false;  ///< victim needs writeback
};

/** Tag-only set-associative cache model (no data storage). */
class Cache
{
  public:
    explicit Cache(const CacheConfig &config);

    /**
     * Look up the block containing @p addr, allocating on miss.
     * @param write marks the block dirty.
     */
    CacheAccess access(Addr addr, bool write);

    /** True if the block containing @p addr is present. */
    bool contains(Addr addr) const;

    /**
     * Remove the block containing @p addr (coherence invalidation
     * or page-migration shootdown).
     * @return true if the block was present.
     */
    bool invalidate(Addr addr);

    /** Invalidate every block of the page containing @p addr. */
    int invalidatePage(Addr addr);

    /** Drop all contents and zero the stats. */
    void reset();

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t evictions() const { return evictions_; }

    /** Fraction of accesses that hit. */
    double
    hitRate() const
    {
        std::uint64_t total = hits_ + misses_;
        return total ? static_cast<double>(hits_) /
                           static_cast<double>(total)
                     : 0.0;
    }

    std::size_t sets() const { return sets_.size() / ways; }
    int associativity() const { return ways; }

    /** Register hit/miss/eviction counters and the hit rate. */
    void registerStats(obs::Registry &r,
                       const std::string &prefix) const;

  private:
    struct Line
    {
        Addr tag = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
        bool dirty = false;
    };

    std::size_t setIndex(Addr block) const;

    // Lines stored set-major: set s occupies [s*ways, (s+1)*ways).
    std::vector<Line> sets_;
    int ways;
    std::size_t numSets;
    std::uint64_t useClock;
    std::uint64_t hits_;
    std::uint64_t misses_;
    std::uint64_t evictions_;
};

} // namespace mem
} // namespace starnuma

#endif // STARNUMA_MEM_CACHE_HH
