/**
 * @file
 * Coverage for the long-tail APIs: link statistics, event-queue
 * accessors, trace caching, traced-array plumbing, and the
 * panic-on-misuse paths (death tests).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>

#include "mem/cache.hh"
#include "sim/event_queue.hh"
#include "sim/table.hh"
#include "topology/link.hh"
#include "topology/topology.hh"
#include "trace/capture.hh"
#include "trace/trace.hh"

namespace starnuma
{
namespace
{

using topology::Dir;
using topology::Link;
using topology::LinkType;

TEST(LinkStats, BytesBusyAndQueueAccounting)
{
    Link link(LinkType::UPI, 3.0, nsToCycles(25), "test-link");
    EXPECT_DOUBLE_EQ(link.bandwidthGbps(), 3.0);
    EXPECT_EQ(link.name(), "test-link");

    Cycles a1 = link.transfer(Dir::Forward, Cycles(0), 72);
    Cycles a2 = link.transfer(Dir::Forward, Cycles(0), 72);
    EXPECT_GT(a2, a1);
    EXPECT_EQ(link.bytesMoved(Dir::Forward), 144u);
    EXPECT_EQ(link.bytesMoved(Dir::Backward), 0u);
    EXPECT_EQ(link.busyCycles(Dir::Forward),
              2 * serializationCycles(72, 3.0));
    // The second message queued for one serialization slot.
    EXPECT_DOUBLE_EQ(
        link.meanQueueDelay(Dir::Forward),
        static_cast<double>(serializationCycles(72, 3.0).value()) /
            2.0);
    EXPECT_GT(link.utilization(Dir::Forward, Cycles(1000)), 0.0);
    EXPECT_DOUBLE_EQ(link.utilization(Dir::Forward, Cycles(0)),
                     0.0);
}

TEST(LinkStats, UnloadedArrivalDoesNotMutate)
{
    Link link(LinkType::CXL, 6.0, nsToCycles(50), "cxl");
    Cycles probe = link.unloadedArrival(Cycles(100), 72);
    EXPECT_EQ(probe, Cycles(100) + serializationCycles(72, 6.0) +
                         nsToCycles(50));
    EXPECT_EQ(link.bytesMoved(Dir::Forward), 0u);
    // A real transfer now still starts from an idle link.
    EXPECT_EQ(link.transfer(Dir::Forward, Cycles(100), 72), probe);
}

TEST(EventQueueAccessors, PendingAndEmpty)
{
    EventQueue q;
    EXPECT_TRUE(q.empty());
    q.schedule(Cycles(5), [] {});
    q.schedule(Cycles(9), [] {});
    EXPECT_EQ(q.pending(), 2u);
    EXPECT_FALSE(q.empty());
    q.run();
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.now(), Cycles(9));
}

TEST(TraceCache, CachedGeneratesOnceThenLoads)
{
    std::string dir = ::testing::TempDir() + "trace_cache_test";
    setenv("STARNUMA_TRACE_DIR", dir.c_str(), 1);
    // TempDir persists across test runs: start from a clean slate.
    std::remove((dir + "/coverage-key.ctrace").c_str());
    int generated = 0;
    auto gen = [&] {
        ++generated;
        trace::WorkloadTrace t;
        t.workload = "gen";
        t.threads = 1;
        t.instructionsPerThread = 10;
        t.perThread.resize(1);
        t.perThread[0].emplace_back(1, 0x1000, false);
        return t;
    };
    auto a = trace::cached("coverage-key", gen);
    auto b = trace::cached("coverage-key", gen);
    EXPECT_EQ(generated, 1);
    EXPECT_EQ(a.totalRecords(), b.totalRecords());
    EXPECT_EQ(b.workload, "gen");
    setenv("STARNUMA_TRACE_DIR", "off", 1);
    auto c = trace::cached("coverage-key", gen);
    EXPECT_EQ(generated, 2); // caching disabled
    (void)c;
    unsetenv("STARNUMA_TRACE_DIR");
}

TEST(TracedArrayApi, ReadWriteAndAddressing)
{
    trace::CaptureContext ctx(1);
    trace::TracedArray<std::uint32_t> arr;
    arr.allocate(ctx, 100);
    EXPECT_EQ(arr.size(), 100u);
    EXPECT_EQ(arr.addrOf(3), arr.base() + 12);
    arr.write(ctx, 0, 7, 42);
    EXPECT_EQ(arr.read(ctx, 0, 7), 42u);
    EXPECT_EQ(arr[7], 42u);
    EXPECT_EQ(ctx.instructions(0), 2u); // one store + one load
}

TEST(CaptureAccessors, MinInstructions)
{
    trace::CaptureContext ctx(3);
    ctx.instr(0, 10);
    ctx.instr(1, 5);
    ctx.instr(2, 20);
    EXPECT_EQ(ctx.minInstructions(), 5u);
}

// --- panic-on-misuse (death tests) ---

using CoverageDeathTest = ::testing::Test;

TEST(CoverageDeathTest, TableRowWidthMismatchPanics)
{
    TextTable t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "assertion");
}

TEST(CoverageDeathTest, EventQueueSchedulingIntoPastPanics)
{
    EventQueue q;
    q.schedule(Cycles(100), [] {});
    q.run();
    EXPECT_DEATH(q.schedule(Cycles(50), [] {}), "assertion");
}

TEST(CoverageDeathTest, RouteOutOfRangePanics)
{
    topology::Topology t(topology::SystemConfig::baseline16());
    EXPECT_DEATH(t.route(0, 99), "assertion");
}

TEST(CoverageDeathTest, BadCacheGeometryPanics)
{
    EXPECT_DEATH(mem::Cache({0, 4}), "assertion");
    EXPECT_DEATH(mem::Cache({4096, 0}), "assertion");
}

} // anonymous namespace
} // namespace starnuma
