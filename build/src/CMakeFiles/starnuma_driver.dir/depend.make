# Empty dependencies file for starnuma_driver.
# This may be replaced when dependencies are built.
