/**
 * @file
 * Step B of the methodology (§IV-A2): replay the captured memory
 * traces (no timing), drive the page-placement machinery — first
 * touch, the T_i tracker + TLB annexes + Algorithm 1 for StarNUMA,
 * the zero-cost perfect-knowledge page policy for the baseline, or
 * the §V-B static oracle — and emit one checkpoint per phase: the
 * page-to-node map at the phase's start plus the migrations to be
 * modeled during that phase by the timing simulation (step C).
 */

#ifndef STARNUMA_DRIVER_TRACE_SIM_HH
#define STARNUMA_DRIVER_TRACE_SIM_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/migration.hh"
#include "core/perfect_policy.hh"
#include "core/replication.hh"
#include "driver/system_setup.hh"
#include "sim/bytes.hh"
#include "sim/flat_map.hh"
#include "sim/obs/audit.hh"
#include "sim/obs/registry.hh"
#include "sim/obs/timeseries.hh"
#include "sim/scale.hh"
#include "trace/trace.hh"

namespace starnuma
{
namespace driver
{

/** Inputs of one phase's timing simulation. */
struct Checkpoint
{
    /** Page -> home node at the start of the phase. */
    FlatMap<PageNum, NodeId> pageHome;

    /** Region migrations occurring during this phase (StarNUMA). */
    std::vector<core::RegionMigration> regionMigrations;

    /** Page migrations occurring during this phase (baseline). */
    std::vector<core::PageMigration> pageMigrations;

    /** Pages moved by this phase's migrations. */
    std::uint64_t migratedPages(int pages_per_region) const;
};

/** Output of step B. */
struct TraceSimResult
{
    std::vector<Checkpoint> checkpoints;
    std::uint64_t poolCapacityPages = 0;
    std::uint64_t footprintPages = 0;

    // Migration statistics (Table IV).
    std::uint64_t migratedRegions = 0;
    std::uint64_t migratedPagesTotal = 0;
    double poolMigrationFraction = 0.0;
    std::uint64_t victimEvictions = 0;
    std::uint64_t pingPongSuppressed = 0;

    /** Pages resident in the pool at the end of the run. */
    std::uint64_t pagesInPool = 0;

    /** §V-F replication plan (empty unless enabled in the setup). */
    core::ReplicationPlan replication;

    // DiDi shared-TLB-directory statistics (§III-D3): targeted
    // shootdown messages sent vs per-core IPIs avoided.
    std::uint64_t tlbShootdownsSent = 0;
    std::uint64_t tlbShootdownsSaved = 0;

    /**
     * Migration phase this run actually resumed from via
     * PhaseStateHooks (0 = ran cold, including after a failed
     * restore). Runtime diagnostic for the cache's partial-hit
     * accounting; not serialized by save()/load().
     */
    int resumedFromPhase = 0;

    /**
     * Migration-engine / TLB-directory registry snapshot, taken at
     * the end of the run while the obs::StatsSink is enabled; empty
     * otherwise. Not serialized by save()/load().
     */
    obs::Snapshot stats;

    /**
     * Per-phase replay telemetry (DESIGN.md §14), sampled once per
     * migration phase with the phase number as timestamp: pool
     * occupancy, TLB miss count and rate, pages migrated, targeted
     * shootdown messages. Populated only while the
     * obs::TimeSeriesSink is enabled; empty otherwise. Not
     * serialized by save()/load().
     */
    obs::TimeSeries timeseries;

    /**
     * The migration engine's structured Algorithm-1 decision log
     * (DESIGN.md §14). Populated only while the obs::AuditSink is
     * enabled; empty otherwise. Not serialized by save()/load().
     */
    obs::AuditLog audit;

    /**
     * Serialize the checkpoints (step B's output artifact, §IV-A2)
     * so timing simulations can run later or elsewhere. Format v2:
     * varint/delta coded (trace/columnar.hh primitives), written in
     * sorted page order so artifacts are byte-identical across
     * runs. @return false on IO error.
     */
    bool save(const std::string &path) const;

    /** Load checkpoints previously written by save(). */
    bool load(const std::string &path);

    /** The exact byte image save() writes (format v2), for callers
     *  that store the artifact elsewhere (the content-addressed
     *  artifact store, DESIGN.md §16). */
    std::vector<std::uint8_t> serialize() const;

    /**
     * Decode a serialize() image from @p r, leaving the reader
     * positioned after it (embeddable in larger records).
     * @return false on malformed input.
     */
    bool deserialize(ByteReader &r);
};

/**
 * Incremental sweep hooks (DESIGN.md §16): lets the artifact cache
 * observe and restore the replay's full mutable state at phase
 * boundaries so a sweep cell whose policy diverges only at phase k
 * resumes from the last shared phase instead of replaying from
 * scratch.
 *
 * The hooks are honored only on dynamic-placement runs of a pooled
 * (StarNUMA) setup with the TimeSeriesSink and AuditSink disabled:
 * the state image carries neither telemetry deltas nor the audit
 * log, and the baseline's perfect-knowledge policy is deliberately
 * not serialized. Outside that envelope TraceSim silently ignores
 * the hooks and runs cold — never a wrong artifact.
 */
struct PhaseStateHooks
{
    /**
     * Called at the top of each migration phase @c phase >= 1 (and
     * > resumePhase when resuming) with the serialized replay state
     * as of that boundary, BEFORE any PhasePolicy entry with
     * fromPhase == phase is applied — the state depends only on the
     * policy prefix fromPhase < phase, which is what the artifact
     * cache keys it by.
     */
    std::function<void(int phase,
                       const std::vector<std::uint8_t> &state)>
        onPhaseState;

    /** Resume from this phase (0 = cold run from the start). */
    int resumePhase = 0;

    /** State image for resumePhase (from a prior onPhaseState). */
    const std::vector<std::uint8_t> *resumeState = nullptr;
};

/** The memory-trace simulator. */
class TraceSim
{
  public:
    TraceSim(const SystemSetup &system_setup,
             const SimScale &sim_scale);

    /**
     * Run all phases over @p trace. @p hooks (optional) enables the
     * incremental sweep engine's per-phase state capture/resume; a
     * resume image that fails validation falls back to a clean cold
     * run with identical results.
     */
    TraceSimResult run(const trace::WorkloadTrace &trace,
                       const PhaseStateHooks *hooks = nullptr);

  private:
    TraceSimResult runDynamic(const trace::WorkloadTrace &trace,
                              const PhaseStateHooks *hooks);
    bool runDynamicImpl(const trace::WorkloadTrace &trace,
                        const PhaseStateHooks *hooks,
                        TraceSimResult &result);
    TraceSimResult runStaticOracle(const trace::WorkloadTrace &trace);

    NodeId socketOf(ThreadId t) const;

    const SystemSetup &setup;
    SimScale scale;
};

} // namespace driver
} // namespace starnuma

#endif // STARNUMA_DRIVER_TRACE_SIM_HH
