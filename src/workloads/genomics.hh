/**
 * @file
 * The two GenomicsBench stand-ins (§IV-E). FMI builds a real
 * FM-index (suffix array -> BWT -> sampled occurrence table) over a
 * synthetic genome and serves backward-search count queries: random
 * reads into a large shared read-only index. POA performs partial-
 * order alignment of per-thread sequence sets against per-thread
 * graphs: large streaming DP matrices that are entirely thread-
 * private — the paper's NUMA-insensitive control workload (all
 * accesses local, no migrations, Table IV: 0%).
 */

#ifndef STARNUMA_WORKLOADS_GENOMICS_HH
#define STARNUMA_WORKLOADS_GENOMICS_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/rng.hh"
#include "workloads/workload.hh"

namespace starnuma
{
namespace workloads
{

/** FM-index (Full-text Minute-space Index) backward search. */
class Fmi : public Workload
{
  public:
    explicit Fmi(std::uint64_t rng_seed, std::uint32_t text_size = 1u
                                                               << 21,
                 int pattern_length = 16);

    std::string name() const override { return "fmi"; }
    void setup(trace::CaptureContext &ctx,
               const SimScale &scale) override;
    void step(ThreadId t, trace::CaptureContext &ctx) override;

    /** Untraced count query (correctness checks). */
    std::uint64_t count(const std::string &pattern) const;

    std::uint32_t textSize() const { return n; }

  private:
    static constexpr int checkpointStride = 64;

    std::uint8_t occAt(int c, std::uint32_t pos) const;
    std::uint32_t occCount(int c, std::uint32_t pos) const;
    std::uint32_t occCountTraced(trace::CaptureContext &ctx,
                                 ThreadId t, int c,
                                 std::uint32_t pos);

    std::uint64_t seed;
    std::uint32_t n;
    int patternLength;

    std::vector<std::uint8_t> text; ///< 0..3 = ACGT
    std::vector<std::uint8_t> bwt;
    std::array<std::uint32_t, 5> cTable{}; ///< cumulative counts
    std::vector<std::array<std::uint32_t, 4>> checkpoints;

    trace::TracedArray<std::uint8_t> bwtMem;
    trace::TracedArray<std::uint8_t> occMem;
    trace::TracedArray<std::uint8_t> queryMem; ///< per-thread slots
    trace::TracedArray<std::uint8_t> readsMem; ///< cold read sets

    std::vector<Rng> threadRng;
};

/** Partial-Order Alignment over per-thread sequence graphs. */
class Poa : public Workload
{
  public:
    explicit Poa(std::uint64_t rng_seed, int seq_length = 400,
                 int max_nodes = 800);

    std::string name() const override { return "poa"; }
    void setup(trace::CaptureContext &ctx,
               const SimScale &scale) override;
    void step(ThreadId t, trace::CaptureContext &ctx) override;

    /** Alignments completed by thread @p t (progress check). */
    std::uint64_t alignmentsDone(ThreadId t) const;

  private:
    enum class Phase { Fill, Traceback };

    struct ThreadPoa
    {
        std::vector<std::uint8_t> dagChar;
        std::vector<std::int32_t> dagPred;
        std::vector<std::uint8_t> seq;
        std::vector<std::int16_t> matrix; ///< (nodes x (L+1)) DP
        Phase phase = Phase::Fill;
        int row = 0;       ///< next DP row (DAG node) to fill
        int tracebackRow = 0;
        std::uint64_t done = 0;
        Rng rng{0};
    };

    void newSequence(ThreadId t, trace::CaptureContext &ctx,
                     bool traced);
    void fillRow(ThreadId t, trace::CaptureContext &ctx);
    void traceback(ThreadId t, trace::CaptureContext &ctx);

    std::int16_t &cell(ThreadPoa &s, int node, int j);
    Addr cellAddr(ThreadId t, int node, int j) const;
    Addr dagAddr(ThreadId t, int node) const;

    std::uint64_t seed;
    int seqLength;
    int maxNodes;
    int threads = 0;

    std::vector<ThreadPoa> state;
    trace::TracedArray<std::uint8_t> matrixMem; ///< all threads
    trace::TracedArray<std::uint8_t> dagMem;
};

} // namespace workloads
} // namespace starnuma

#endif // STARNUMA_WORKLOADS_GENOMICS_HH
