// Fixture: D7 — unguarded mutable state next to a mutex. The class
// declares a std::mutex member, so every other mutable member must
// be STARNUMA_GUARDED_BY-annotated, internally synchronized, or
// carry a justified `// lint: lock-free`; the marked members are
// none of those and must be flagged.

#ifndef STARNUMA_CORE_D7_UNGUARDED_MEMBER_HH
#define STARNUMA_CORE_D7_UNGUARDED_MEMBER_HH

#include <mutex>
#include <string>
#include <vector>

namespace fixture
{

class BadLockBox
{
  public:
    void add(int v);
    int total() const;

  private:
    mutable std::mutex mu;
    int counter = 0;           // expect-lint: D7
    std::vector<int> values;   // expect-lint: D7
};

} // namespace fixture

#endif // STARNUMA_CORE_D7_UNGUARDED_MEMBER_HH
