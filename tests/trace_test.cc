/**
 * @file
 * Tests for the trace substrate: record packing, capture filtering,
 * setup-mode first touch, binary save/load round trips, and the
 * sharing-profile analysis behind Figs 2 and 13.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "trace/capture.hh"
#include "trace/profile.hh"
#include "trace/trace.hh"

namespace starnuma
{
namespace trace
{
namespace
{

TEST(MemRecord, PacksAddressAndWriteFlag)
{
    MemRecord r(123, 0xdeadbeef, true);
    EXPECT_EQ(r.instr, 123u);
    EXPECT_EQ(r.vaddr(), 0xdeadbeefu);
    EXPECT_TRUE(r.isWrite());
    MemRecord ro(7, 0x1000, false);
    EXPECT_FALSE(ro.isWrite());
    EXPECT_EQ(ro.vaddr(), 0x1000u);
}

TEST(Capture, AllocIsPageAlignedAndDisjoint)
{
    CaptureContext ctx(2);
    Addr a = ctx.alloc(100);
    Addr b = ctx.alloc(5000);
    EXPECT_EQ(a % pageBytes, 0u);
    EXPECT_EQ(b % pageBytes, 0u);
    EXPECT_GE(b, a + pageBytes);
    EXPECT_EQ(ctx.footprint(), 3 * pageBytes);
}

TEST(Capture, FilterSuppressesHits)
{
    CaptureContext ctx(1, {1024, 4});
    Addr a = ctx.alloc(pageBytes);
    ctx.load(0, a);
    ctx.load(0, a);      // filter hit: no record
    ctx.load(0, a + 8);  // same block: no record
    ctx.load(0, a + 64); // new block: record
    auto t = ctx.take("x", 4);
    ASSERT_EQ(t.perThread[0].size(), 2u);
    EXPECT_EQ(t.perThread[0][0].vaddr(), a);
    EXPECT_EQ(t.perThread[0][1].vaddr(), a + 64);
}

TEST(Capture, MemoryOpsCountAsInstructions)
{
    CaptureContext ctx(1);
    Addr a = ctx.alloc(pageBytes);
    ctx.instr(0, 10);
    ctx.load(0, a);
    ctx.store(0, a);
    EXPECT_EQ(ctx.instructions(0), 12u);
}

TEST(Capture, SetupModeRecordsFirstTouchOnly)
{
    CaptureContext ctx(4);
    Addr a = ctx.alloc(4 * pageBytes);
    ctx.beginSetup();
    ctx.store(1, a);              // thread 1 touches page 0
    ctx.store(2, a + pageBytes);  // thread 2 touches page 1
    ctx.store(3, a);              // page 0 already touched
    ctx.load(3, a + 2 * pageBytes); // reads do not claim pages
    ctx.endSetup();
    EXPECT_EQ(ctx.instructions(1), 0u);
    auto t = ctx.take("x", 0);
    ASSERT_EQ(t.firstTouches.size(), 2u);
    EXPECT_EQ(t.firstTouches[0].page, pageNumber(a));
    EXPECT_EQ(t.firstTouches[0].thread, 1);
    EXPECT_EQ(t.firstTouches[1].thread, 2);
    EXPECT_EQ(t.totalRecords(), 0u);
}

TEST(Capture, PerThreadStreamsIndependent)
{
    CaptureContext ctx(2);
    Addr a = ctx.alloc(pageBytes);
    ctx.load(0, a);
    ctx.load(1, a); // both threads miss their own filter
    auto t = ctx.take("x", 1);
    EXPECT_EQ(t.perThread[0].size(), 1u);
    EXPECT_EQ(t.perThread[1].size(), 1u);
}

TEST(Trace, SaveLoadRoundTrip)
{
    WorkloadTrace t;
    t.workload = "demo";
    t.threads = 2;
    t.instructionsPerThread = 1000;
    t.footprintBytes = 8192;
    t.perThread.resize(2);
    t.perThread[0].emplace_back(10, 0x1000, false);
    t.perThread[0].emplace_back(20, 0x2040, true);
    t.perThread[1].emplace_back(5, 0x3000, false);
    t.firstTouches.push_back({PageNum(1), 0});
    t.firstTouches.push_back({PageNum(2), 1});

    std::string path = ::testing::TempDir() + "roundtrip.trace";
    ASSERT_TRUE(t.save(path));

    WorkloadTrace u;
    ASSERT_TRUE(u.load(path));
    EXPECT_EQ(u.workload, "demo");
    EXPECT_EQ(u.threads, 2);
    EXPECT_EQ(u.instructionsPerThread, 1000u);
    EXPECT_EQ(u.footprintBytes, 8192u);
    ASSERT_EQ(u.perThread[0].size(), 2u);
    EXPECT_EQ(u.perThread[0][1].vaddr(), 0x2040u);
    EXPECT_TRUE(u.perThread[0][1].isWrite());
    ASSERT_EQ(u.firstTouches.size(), 2u);
    EXPECT_EQ(u.firstTouches[1].thread, 1);
    std::remove(path.c_str());
}

TEST(Trace, LoadRejectsGarbage)
{
    std::string path = ::testing::TempDir() + "garbage.trace";
    std::FILE *f = std::fopen(path.c_str(), "wb");
    std::fputs("not a trace", f);
    std::fclose(f);
    WorkloadTrace t;
    EXPECT_FALSE(t.load(path));
    std::remove(path.c_str());
}

TEST(Trace, LoadMissingFileFails)
{
    WorkloadTrace t;
    EXPECT_FALSE(t.load("/nonexistent/path.trace"));
}

TEST(Trace, RecordsPerKiloInstruction)
{
    WorkloadTrace t;
    t.threads = 2;
    t.instructionsPerThread = 1000;
    t.perThread.resize(2);
    for (int i = 0; i < 10; ++i)
        t.perThread[0].emplace_back(i, 0x1000 + i * 64, false);
    EXPECT_DOUBLE_EQ(t.recordsPerKiloInstruction(), 5.0);
}

// --- SharingProfile ---

WorkloadTrace
syntheticTrace()
{
    // 8 threads = 4 sockets x 2 cores. Page 0: private to socket 0.
    // Page 1: shared by all 4 sockets, heavily accessed, written.
    // Page 2: shared by 2 sockets, read-only.
    WorkloadTrace t;
    t.threads = 8;
    t.instructionsPerThread = 100;
    t.perThread.resize(8);
    auto at = [](int page, int off) {
        return static_cast<Addr>(page) * pageBytes + off;
    };
    t.perThread[0].emplace_back(1, at(0, 0), false);
    for (int th = 0; th < 8; ++th)
        for (int i = 0; i < 10; ++i)
            t.perThread[th].emplace_back(2 + i, at(1, th * 64 + i),
                                         th == 3);
    t.perThread[0].emplace_back(50, at(2, 0), false);
    t.perThread[2].emplace_back(50, at(2, 8), false);
    return t;
}

TEST(SharingProfile, DegreeDistribution)
{
    auto t = syntheticTrace();
    SharingProfile p(t, 2, 4);
    EXPECT_EQ(p.totalPages(), 3u);
    EXPECT_DOUBLE_EQ(p.pageFraction(1), 1.0 / 3);
    EXPECT_DOUBLE_EQ(p.pageFraction(2), 1.0 / 3);
    EXPECT_DOUBLE_EQ(p.pageFraction(4), 1.0 / 3);
    EXPECT_DOUBLE_EQ(p.pageFraction(3), 0.0);
}

TEST(SharingProfile, AccessConcentration)
{
    auto t = syntheticTrace();
    SharingProfile p(t, 2, 4);
    // 80 of 83 accesses hit the 4-sharer page.
    EXPECT_NEAR(p.accessFraction(4), 80.0 / 83, 1e-9);
    EXPECT_NEAR(p.accessesAbove(2), 80.0 / 83, 1e-9);
    EXPECT_DOUBLE_EQ(p.pagesWithAtMost(2), 2.0 / 3);
}

TEST(SharingProfile, ReadWriteClassification)
{
    auto t = syntheticTrace();
    SharingProfile p(t, 2, 4);
    EXPECT_DOUBLE_EQ(p.readWriteAccessFraction(4), 1.0);
    EXPECT_DOUBLE_EQ(p.readWritePageFraction(2), 0.0);
}

TEST(SharingProfile, InterChassisEstimate)
{
    // §II-B: accesses to fully shared pages distribute uniformly;
    // with 4 chassis of 4 sockets, 75% land on a remote chassis.
    EXPECT_DOUBLE_EQ(SharingProfile::interChassisFraction(16, 4),
                     0.75);
}

} // anonymous namespace
} // namespace trace
} // namespace starnuma
