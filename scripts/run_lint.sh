#!/usr/bin/env bash
# Run the static checks (DESIGN.md §8, §10, §13) and exit nonzero on
# any finding:
#
#   python     scripts/starnuma_lint.py   determinism & style rules
#                                         D1-D5 plus layering/lock-
#                                         discipline rules D6-D8,
#              scripts/starnuma_hotpath.py  interprocedural hot-path
#                                         discipline D9-D11 (both
#                                         with their fixture
#                                         self-tests),
#   taint      scripts/starnuma_taint.py  determinism-taint D12,
#                                         cache-key purity D13, sink
#                                         registration D14, plus the
#                                         artifact_inputs.json
#                                         manifest check and the
#                                         lexer unit tests,
#   werror     the STARNUMA_WERROR build  -Wshadow -Wconversion
#                                         -Wdouble-promotion as hard
#                                         errors (host compiler),
#   clang-tsa  Clang thread-safety build  the same WERROR config
#                                         under clang++, adding
#                                         -Wthread-safety
#                                         -Werror=thread-safety over
#                                         the sim/annotations.hh
#                                         capability annotations,
#   clang-tidy clang-tidy                 bugprone-*/performance-*/
#                                         concurrency-* over the
#                                         exported
#                                         compile_commands.json.
#
# Each stage reports its wall time, and the linters print per-rule
# finding counts, so runtime regressions in the gate itself are
# visible from the log.
#
# Usage: scripts/run_lint.sh [stage ...]
#   stages: python taint werror clang-tsa clang-tidy
#   (default: all five; the clang stages print a skip notice when
#    LLVM is not installed)
#
# Exit status: 0 clean, 1 on findings/build errors, 2 on usage
# errors, 3 when every *requested* stage was skipped for a missing
# tool (scripts/run_ci.sh maps that to an explicit SKIP row).
set -uo pipefail

cd "$(dirname "$0")/.."

stages=("$@")
if [ ${#stages[@]} -eq 0 ]; then
    stages=(python taint werror clang-tsa clang-tidy)
fi

fail=0
ran=0
stage_t0=0

stage_begin() {
    echo "=== $1 ==="
    stage_t0=$(date +%s)
}

stage_end() {
    local status=$1
    local dt=$(( $(date +%s) - stage_t0 ))
    echo "--- stage took ${dt}s ---"
    ran=1
    if [ "${status}" -ne 0 ]; then
        fail=1
    fi
}

# All python-analyzer stages share one runner: a title plus a list
# of commands, each of which must exit 0. Adding a checker is one
# line in the relevant stage's list.
run_checkers() {
    local title=$1
    shift
    stage_begin "${title}"
    local status=0 cmd
    for cmd in "$@"; do
        ${cmd} || status=1
    done
    stage_end "${status}"
}

stage_python() {
    run_checkers "starnuma_lint + starnuma_hotpath: rules D1-D11" \
        "python3 scripts/starnuma_lint.py --self-test" \
        "python3 scripts/starnuma_lint.py" \
        "python3 scripts/starnuma_hotpath.py"
}

stage_taint() {
    run_checkers "starnuma_taint: rules D12-D14 + artifact manifest" \
        "python3 scripts/test_lint_core.py" \
        "python3 scripts/starnuma_taint.py --self-test" \
        "python3 scripts/starnuma_taint.py" \
        "python3 scripts/starnuma_taint.py --check-manifest"
}

stage_werror() {
    stage_begin "STARNUMA_WERROR build"
    local status=0
    cmake -B build-werror -S . \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DSTARNUMA_WERROR=ON >/dev/null || status=1
    if [ "${status}" -eq 0 ]; then
        cmake --build build-werror -j "$(nproc)" || status=1
    fi
    stage_end "${status}"
}

stage_clang_tsa() {
    if ! command -v clang++ >/dev/null 2>&1; then
        echo "=== clang++ not installed; skipping thread-safety" \
             "build (gate is advisory on machines without LLVM) ==="
        return 3
    fi
    stage_begin "Clang thread-safety build (-Werror=thread-safety)"
    local status=0
    cmake -B build-werror-clang -S . \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCMAKE_CXX_COMPILER=clang++ \
        -DSTARNUMA_WERROR=ON >/dev/null || status=1
    if [ "${status}" -eq 0 ]; then
        cmake --build build-werror-clang -j "$(nproc)" || status=1
    fi
    stage_end "${status}"
}

stage_clang_tidy() {
    if ! command -v clang-tidy >/dev/null 2>&1; then
        echo "=== clang-tidy not installed; skipping (gate is" \
             "advisory on machines without LLVM) ==="
        return 3
    fi
    stage_begin "clang-tidy (bugprone-*, performance-*, concurrency-*)"
    local status=0
    # The WERROR tree exports the compilation database; configure it
    # if the werror stage did not run first. Run over the library
    # sources (tests inherit via headers through HeaderFilterRegex).
    if [ ! -f build-werror/compile_commands.json ]; then
        cmake -B build-werror -S . \
            -DCMAKE_BUILD_TYPE=RelWithDebInfo \
            -DSTARNUMA_WERROR=ON >/dev/null || status=1
    fi
    if [ "${status}" -eq 0 ]; then
        mapfile -t srcs < <(find src -name '*.cc' | sort)
        if command -v run-clang-tidy >/dev/null 2>&1; then
            run-clang-tidy -quiet -p build-werror "${srcs[@]}" ||
                status=1
        else
            clang-tidy -quiet -p build-werror "${srcs[@]}" ||
                status=1
        fi
    fi
    stage_end "${status}"
}

for stage in "${stages[@]}"; do
    case "${stage}" in
      python)     stage_python ;;
      taint)      stage_taint ;;
      werror)     stage_werror ;;
      clang-tsa)  stage_clang_tsa || true ;;
      clang-tidy) stage_clang_tidy || true ;;
      *)
        echo "run_lint.sh: unknown stage '${stage}'" \
             "(expected python|taint|werror|clang-tsa|clang-tidy)" >&2
        exit 2
        ;;
    esac
done

if [ "${fail}" -ne 0 ]; then
    echo "=== lint FAILED ==="
    exit 1
fi
if [ "${ran}" -eq 0 ]; then
    # Everything requested was skipped for a missing tool.
    echo "=== all requested lint stages skipped ==="
    exit 3
fi
echo "=== all lint checks clean ==="
