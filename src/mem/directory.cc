#include "mem/directory.hh"

#include <bit>

#include "sim/logging.hh"
#include "sim/obs/registry.hh"

namespace starnuma
{
namespace mem
{

Directory::Directory(int n_sockets)
    : sockets(n_sockets), poolNode(n_sockets), transactions_(0),
      blockTransfers_(0), poolTransfers_(0), invalidations_(0)
{
    sn_assert(n_sockets > 0 && n_sockets <= 64,
              "directory bit-vector supports up to 64 sockets");
}

CoherenceResult
Directory::access(Addr block, NodeId requester, bool write,
                  NodeId home)
{
    sn_assert(requester >= 0 && requester < sockets,
              "requester %d out of range", requester);
    ++transactions_;

    CoherenceResult result;
    Entry &e = entries[block];
    std::uint64_t req_bit = 1ULL << requester;

    // A dirty copy in another socket's cache supplies the data.
    if (e.owner >= 0 && e.owner != requester) {
        result.blockTransfer = true;
        result.owner = e.owner;
        result.viaPool = (home == poolNode);
        ++blockTransfers_;
        if (result.viaPool)
            ++poolTransfers_;
    }

    if (write) {
        // Invalidate every other sharer; requester becomes the
        // exclusive dirty owner.
        std::uint64_t others = e.sharerMask & ~req_bit;
        result.invalidations = std::popcount(others);
        result.invalidatedMask = others;
        invalidations_ += result.invalidations;
        e.sharerMask = req_bit;
        e.owner = requester;
    } else {
        // The previous dirty owner (if any) downgrades to shared;
        // memory is now up to date.
        e.sharerMask |= req_bit;
        e.owner = -1;
    }
    return result;
}

void
Directory::evict(Addr block, NodeId socket)
{
    auto it = entries.find(block);
    if (it == entries.end())
        return;
    Entry &e = it->second;
    e.sharerMask &= ~(1ULL << socket);
    if (e.owner == socket)
        e.owner = -1;
    if (e.sharerMask == 0)
        entries.erase(it);
}

bool
Directory::cached(Addr block) const
{
    return entries.find(block) != entries.end();
}

int
Directory::sharers(Addr block) const
{
    auto it = entries.find(block);
    return it == entries.end()
               ? 0
               : std::popcount(it->second.sharerMask);
}

NodeId
Directory::dirtyOwner(Addr block) const
{
    auto it = entries.find(block);
    return it == entries.end() ? -1 : it->second.owner;
}

void
Directory::reset()
{
    entries.clear();
    transactions_ = 0;
    blockTransfers_ = 0;
    poolTransfers_ = 0;
    invalidations_ = 0;
}

// lint: cold-path stats export, once per run when observing
void
Directory::registerStats(obs::Registry &r,
                         const std::string &prefix) const
{
    r.addCounter(prefix + ".transactions", &transactions_);
    r.addCounter(prefix + ".blockTransfers", &blockTransfers_);
    r.addCounter(prefix + ".poolTransfers", &poolTransfers_);
    r.addCounter(prefix + ".invalidations", &invalidations_);
    r.addCounterFn(prefix + ".trackedBlocks",
                   [this] { return trackedBlocks(); });
}

} // namespace mem
} // namespace starnuma
