#!/usr/bin/env bash
# Single CI entry point: run the tier-1 test suite, the full static
# gate (scripts/run_lint.sh: starnuma-lint D1-D8, WERROR builds,
# thread-safety analysis and clang-tidy when LLVM is present), and
# the sanitizer matrix (scripts/run_sanitizers.sh: TSan and
# ASan+UBSan over ctest), then print a per-stage pass/fail summary.
# Exit status is nonzero when any stage fails, so this script is the
# one thing a CI job needs to invoke.
#
# Usage: scripts/run_ci.sh [stage ...]
#   stages: tier1 lint sanitizers   (default: all three, in order)
set -uo pipefail

cd "$(dirname "$0")/.."

stages=("$@")
if [ ${#stages[@]} -eq 0 ]; then
    stages=(tier1 lint sanitizers)
fi

names=()
results=()
times=()

run_stage() {
    local name=$1
    shift
    echo
    echo "========================================================"
    echo "=== CI stage: ${name}"
    echo "========================================================"
    local t0
    t0=$(date +%s)
    if "$@"; then
        results+=("PASS")
    else
        results+=("FAIL")
    fi
    names+=("${name}")
    times+=("$(( $(date +%s) - t0 ))")
}

tier1() {
    cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo &&
        cmake --build build -j "$(nproc)" &&
        ctest --test-dir build --output-on-failure -j "$(nproc)"
}

for stage in "${stages[@]}"; do
    case "${stage}" in
      tier1)      run_stage "tier1 ctest" tier1 ;;
      lint)       run_stage "lint (D1-D8 + WERROR + TSA)" \
                            scripts/run_lint.sh ;;
      sanitizers) run_stage "sanitizers (TSan, ASan+UBSan)" \
                            scripts/run_sanitizers.sh ;;
      *)
        echo "run_ci.sh: unknown stage '${stage}'" \
             "(expected tier1|lint|sanitizers)" >&2
        exit 2
        ;;
    esac
done

echo
echo "=== CI summary ==="
fail=0
for i in "${!names[@]}"; do
    printf '  %-32s %s  (%ss)\n' "${names[$i]}" "${results[$i]}" \
           "${times[$i]}"
    if [ "${results[$i]}" != "PASS" ]; then
        fail=1
    fi
done
if [ "${fail}" -ne 0 ]; then
    echo "=== CI FAILED ==="
    exit 1
fi
echo "=== CI clean ==="
