#include "sim/table.hh"

#include <cstdio>
#include <sstream>

#include "sim/logging.hh"

namespace starnuma
{

TextTable::TextTable(std::vector<std::string> header)
{
    rows.push_back(std::move(header));
}

void
TextTable::addRow(std::vector<std::string> row)
{
    sn_assert(row.size() == rows.front().size(),
              "row width %zu != header width %zu",
              row.size(), rows.front().size());
    rows.push_back(std::move(row));
}

std::string
TextTable::num(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

std::string
TextTable::pct(double ratio, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, ratio * 100.0);
    return buf;
}

std::string
TextTable::str() const
{
    std::vector<std::size_t> widths(rows.front().size(), 0);
    for (const auto &row : rows)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream out;
    for (std::size_t r = 0; r < rows.size(); ++r) {
        for (std::size_t c = 0; c < rows[r].size(); ++c) {
            out << rows[r][c];
            if (c + 1 < rows[r].size())
                out << std::string(widths[c] - rows[r][c].size() + 2,
                                   ' ');
        }
        out << '\n';
        if (r == 0) {
            std::size_t line = 0;
            for (std::size_t c = 0; c < widths.size(); ++c)
                line += widths[c] + (c + 1 < widths.size() ? 2 : 0);
            out << std::string(line, '-') << '\n';
        }
    }
    return out.str();
}

} // namespace starnuma
