/**
 * @file
 * Synthetic Kronecker (R-MAT) graph generation and the CSR
 * representation shared by the four GAP kernels (§IV-E uses a
 * Kronecker graph with average degree 32; we scale the vertex count
 * down, which preserves the sharing-degree structure the paper's
 * distributions depend on).
 */

#ifndef STARNUMA_WORKLOADS_GRAPH_HH
#define STARNUMA_WORKLOADS_GRAPH_HH

#include <cstdint>
#include <vector>

#include "sim/rng.hh"

namespace starnuma
{
namespace workloads
{

/** Undirected graph in CSR form with sorted adjacency lists. */
struct CsrGraph
{
    std::uint32_t vertices = 0;
    std::vector<std::uint64_t> offsets;   ///< size vertices + 1
    std::vector<std::uint32_t> neighbors; ///< size 2 * edges

    std::uint64_t
    degree(std::uint32_t v) const
    {
        return offsets[v + 1] - offsets[v];
    }

    std::uint64_t directedEdges() const { return neighbors.size(); }

    /**
     * R-MAT generator (a=0.57, b=0.19, c=0.19, d=0.05 — the
     * Graph500/GAP Kronecker parameters). Self-loops are dropped;
     * duplicate edges are kept, as in GAP's generator.
     *
     * @param scale log2 of the vertex count.
     * @param avg_degree average undirected degree.
     */
    static CsrGraph kronecker(int scale, int avg_degree, Rng &rng);
};

} // namespace workloads
} // namespace starnuma

#endif // STARNUMA_WORKLOADS_GRAPH_HH
