#!/usr/bin/env python3
"""Diff two starnuma-bench-v1 JSONs with regression thresholds.

Usage: bench_history.py BASELINE.json CURRENT.json [options]

Compares every metric present in both files (missing keys are
reported but never fail -- coverage can grow between commits).
Direction is inferred per metric: keys containing "mpki", "cycles",
"latency" or "stall" are lower-is-better, everything else (speedups,
IPC, throughput) is higher-is-better. A metric fails when it
regresses by more than its threshold:

  --limit         default fractional tolerance       (default 0.10)
  --replay-limit  tolerance for wall-clock-sensitive (default 0.20)
                  "replay.*" and "sweep.*" metrics (throughput,
                  cells/sec, warm-pass speedup)

Exits 1 when any shared metric regressed past its threshold; the
`bench` stage of scripts/run_ci.sh drives it against the committed
BENCH_results.json. `--self-test` checks the comparison logic on
embedded fixtures.
"""

import argparse
import json
import sys

LOWER_BETTER_TOKENS = ("mpki", "cycles", "latency", "stall",
                       "wall_time")


def lower_is_better(key):
    low = key.lower()
    return any(tok in low for tok in LOWER_BETTER_TOKENS)


def compare(baseline, current, limit, replay_limit):
    """-> (report lines, regression lines)."""
    lines = []
    regressions = []
    shared = sorted(set(baseline) & set(current))
    for key in shared:
        base, curr = float(baseline[key]), float(current[key])
        threshold = replay_limit \
            if key.startswith(("replay.", "sweep.")) else limit
        if base == 0.0:
            lines.append("  %-44s %12g -> %-12g (no baseline)"
                         % (key, base, curr))
            continue
        change = (curr - base) / abs(base)
        improvement = -change if lower_is_better(key) else change
        marker = ""
        if -improvement > threshold:
            marker = "  REGRESSED (limit %.0f%%)" % (threshold * 100)
            regressions.append(key)
        lines.append("  %-44s %12g -> %-12g %+6.1f%%%s"
                     % (key, base, curr, change * 100, marker))
    for key in sorted(set(baseline) - set(current)):
        lines.append("  %-44s dropped (was %g)"
                     % (key, float(baseline[key])))
    for key in sorted(set(current) - set(baseline)):
        lines.append("  %-44s new (%g)" % (key, float(current[key])))
    return lines, regressions


def load_results(path):
    with open(path) as fh:
        data = json.load(fh)
    if data.get("schema") != "starnuma-bench-v1":
        raise SystemExit("%s: not a starnuma-bench-v1 file (schema "
                         "%r)" % (path, data.get("schema")))
    return data["results"]


def self_test():
    baseline = {"fig08.speedup_t16.bfs": 1.5,
                "table3.llc_mpki.bfs": 2.0,
                "replay.replay_instr_per_sec": 1e8,
                "old.metric": 1.0}
    # speedup -2.7% (ok), mpki +25% worse (fail at 10%), replay
    # -15% (ok at 20%), one dropped + one new key (never fail).
    current = {"fig08.speedup_t16.bfs": 1.46,
               "table3.llc_mpki.bfs": 2.5,
               "replay.replay_instr_per_sec": 0.85e8,
               "new.metric": 2.0}
    _, regressions = compare(baseline, current, 0.10, 0.20)
    assert regressions == ["table3.llc_mpki.bfs"], regressions
    # Tighten the replay limit below 15%: now replay fails too.
    _, regressions = compare(baseline, current, 0.10, 0.10)
    assert regressions == ["replay.replay_instr_per_sec",
                           "table3.llc_mpki.bfs"], regressions
    # Direction check: a *drop* in MPKI is an improvement.
    _, regressions = compare({"a.llc_mpki": 2.0}, {"a.llc_mpki": 1.0},
                             0.10, 0.20)
    assert regressions == [], regressions
    # sweep.* metrics are higher-is-better and wall-clock class:
    # a 15% speedup drop passes at the 20% replay-class limit, a
    # hit-rate collapse fails even there.
    sweep_base = {"sweep.warm_speedup": 100.0,
                  "sweep.cache_hit_rate": 1.0}
    _, regressions = compare(sweep_base,
                             {"sweep.warm_speedup": 85.0,
                              "sweep.cache_hit_rate": 1.0},
                             0.10, 0.20)
    assert regressions == [], regressions
    _, regressions = compare(sweep_base,
                             {"sweep.warm_speedup": 100.0,
                              "sweep.cache_hit_rate": 0.5},
                             0.10, 0.20)
    assert regressions == ["sweep.cache_hit_rate"], regressions
    print("bench-history self-test: 5 comparisons, OK")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(
        description="Diff two starnuma-bench-v1 result files with "
                    "per-metric regression thresholds.")
    parser.add_argument("baseline", nargs="?",
                        help="committed baseline JSON")
    parser.add_argument("current", nargs="?",
                        help="freshly measured JSON")
    parser.add_argument("--limit", type=float, default=0.10,
                        help="default tolerated fractional "
                             "regression (default 0.10)")
    parser.add_argument("--replay-limit", type=float, default=0.20,
                        help="tolerance for replay.* wall-clock "
                             "metrics (default 0.20)")
    parser.add_argument("--self-test", action="store_true",
                        help="check the comparison logic on "
                             "embedded fixtures")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()
    if not args.baseline or not args.current:
        parser.error("need BASELINE.json and CURRENT.json "
                     "(or --self-test)")

    lines, regressions = compare(load_results(args.baseline),
                                 load_results(args.current),
                                 args.limit, args.replay_limit)
    print("bench-history: %s -> %s" % (args.baseline, args.current))
    for line in lines:
        print(line)
    if regressions:
        print("bench-history: %d metric(s) regressed: %s"
              % (len(regressions), ", ".join(regressions)))
        return 1
    print("bench-history: no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
