/**
 * @file
 * Page-to-home-node mapping with first-touch initial placement
 * (§IV-C) and migration support. Pages are keyed by page number.
 * The map also tracks per-node page counts so capacity policies
 * (pool limit, victim selection) can query occupancy cheaply.
 *
 * Two storage modes share one interface. By default pages live in a
 * FlatMap (any key pattern). Traces captured against the simulator's
 * bump allocator cover one contiguous page range, so replay can call
 * preallocate() to switch to a flat page table — a plain array
 * indexed by (page - base) — which turns every hot-path touch() into
 * a bounds-checked load. Observable behavior, including the
 * insertion-order forEach(), is identical in both modes.
 */

#ifndef STARNUMA_MEM_PAGE_MAP_HH
#define STARNUMA_MEM_PAGE_MAP_HH

#include <cstdint>
#include <vector>

#include "sim/annotations.hh"
#include "sim/bytes.hh"
#include "sim/flat_map.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace starnuma
{
namespace mem
{

/** Home node returned for pages that were never touched. */
constexpr NodeId invalidNode = -1;

/** Page table mapping page numbers to home nodes. */
class PageMap
{
  public:
    /** @param nodes addressable home nodes (sockets + pool). */
    explicit PageMap(int nodes);

    /**
     * Switch to flat-table storage over page numbers
     * [base, base + pages). Must be called before the first page is
     * mapped; every page touched afterwards must fall in the range.
     */
    void preallocate(PageNum base, std::uint64_t pages);

    /** Home of page @p page, or invalidNode if unmapped. */
    // lint: hot-path one lookup per modeled access
    NodeId
    home(PageNum page) const
    {
        if (flat.empty()) {
            auto it = map.find(page);
            return it == map.end() ? invalidNode : it->second;
        }
        std::uint64_t slot = page.value() - flatBase.value();
        return slot < flat.size() ? flat[slot] : invalidNode;
    }

    /**
     * First-touch lookup: maps the page to @p toucher's socket on
     * first access, then sticks.
     * @return the (possibly just-assigned) home node.
     */
    // lint: hot-path one touch per replayed record batch
    NodeId
    touch(PageNum page, NodeId toucher)
    {
        if (flat.empty())
            return touchMapped(page, toucher);
        NodeId &h = flat[flatSlot(page)];
        if (h == invalidNode) {
            sn_assert(toucher >= 0 && static_cast<std::size_t>(
                                          toucher) < counts.size(),
                      "first-touch by unknown node %d", toucher);
            h = toucher;
            ++counts[toucher];
            ++firstTouch;
            noteFirstTouch(page);
        }
        return h;
    }

    /** Force page @p page to live on node @p node (migration). */
    void setHome(PageNum page, NodeId node);

    /** Number of mapped pages homed at @p node. */
    std::uint64_t pagesAt(NodeId node) const;

    /** Total mapped pages. */
    std::uint64_t
    totalPages() const
    {
        return flat.empty() ? map.size() : order.size();
    }

    /** Pages whose initial placement came from first touch. */
    std::uint64_t firstTouchPages() const { return firstTouch; }

    /**
     * Append the full mapping state (mode, entries in insertion
     * order, first-touch counter) to @p out for the per-phase
     * resume snapshots of the incremental sweep engine
     * (DESIGN.md §16).
     */
    void saveState(std::vector<std::uint8_t> &out) const;

    /**
     * Restore a saveState() image into this freshly-constructed
     * map (same node count, nothing mapped yet).
     * @return false on malformed input (the map is then unusable).
     */
    bool loadState(ByteReader &r);

    /** Visit every (page, home) entry, in insertion order. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        if (flat.empty()) {
            for (const auto &[page, node] : map)
                fn(page, node);
        } else {
            for (PageNum page : order)
                fn(page, flat[page.value() - flatBase.value()]);
        }
    }

  private:
    NodeId touchMapped(PageNum page, NodeId toucher);

    /**
     * Out-of-line first-touch append: keeps the vector's
     * reallocation machinery (and its operator new call) out of the
     * touch() hot symbol, which scripts/check_hotpath_syms.sh
     * verifies at the binary level. Capacity is reserved in
     * preallocate(), so the push never actually reallocates.
     */
    // lint: cold-path capacity reserved in preallocate()
    STARNUMA_COLD_PATH void
    noteFirstTouch(PageNum page)
    {
        order.push_back(page);
    }

    /** Flat-mode slot of @p page (panics when out of range). */
    std::uint64_t
    flatSlot(PageNum page) const
    {
        std::uint64_t slot = page.value() - flatBase.value();
        sn_assert(slot < flat.size(),
                  "page outside the preallocated range");
        return slot;
    }

    FlatMap<PageNum, NodeId> map;
    std::vector<NodeId> flat;    // flat mode: home per slot
    std::vector<PageNum> order;  // flat mode: insertion order
    PageNum flatBase{0};
    std::vector<std::uint64_t> counts;
    std::uint64_t firstTouch;
};

} // namespace mem
} // namespace starnuma

#endif // STARNUMA_MEM_PAGE_MAP_HH
