# Empty compiler generated dependencies file for starnuma_sim.
# This may be replaced when dependencies are built.
