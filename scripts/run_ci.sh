#!/usr/bin/env bash
# Single CI entry point: run the tier-1 test suite, the static gate
# (scripts/run_lint.sh: starnuma-lint D1-D8, the D9-D11 hot-path
# analyzer, the D12-D14 taint/purity analyzer with its artifact
# input manifest, WERROR builds, thread-safety analysis and
# clang-tidy),
# the analyze backstop (scripts/check_hotpath_syms.sh over the
# release disassembly), and the sanitizer matrix
# (scripts/run_sanitizers.sh: TSan and ASan+UBSan over ctest), then
# print a per-stage pass/fail/skip summary with wall times. Stages
# whose toolchain is absent on this machine (the clang ones on a
# GCC-only box) report SKIP, not PASS — the summary states what was
# actually checked. Exit status is nonzero when any stage fails, so
# this script is the one thing a CI job needs to invoke.
#
# Usage: scripts/run_ci.sh [stage ...]
#   stages: tier1 lint taint clang-tsa clang-tidy analyze sanitizers
#           obs sweep bench
#   (default: tier1 lint taint clang-tsa clang-tidy analyze
#    sanitizers obs sweep, in order; `obs` smoke-tests the observability
#    pipeline — stats, Chrome trace, time series, audit log and the
#    run-explain report (scripts/run_observability.sh). `sweep`
#    smoke-tests the incremental sweep engine: a cold pass against a
#    fresh artifact store, a warm pass against the persisted objects,
#    asserting full result-tier hit rate and cold/warm byte identity,
#    then a scripts/cas_tool.py integrity audit of every stored
#    object. `bench` is opt-in — it re-measures step-B replay
#    throughput and diffs against the committed BENCH_results.json
#    with scripts/bench_history.py (20% tolerance on the wall-clock
#    replay.* and sweep.* metrics), so only run it on quiet machines)
set -uo pipefail

cd "$(dirname "$0")/.."

stages=("$@")
if [ ${#stages[@]} -eq 0 ]; then
    stages=(tier1 lint taint clang-tsa clang-tidy analyze sanitizers
            obs sweep)
fi

names=()
results=()
times=()

# A stage exits 0 for PASS, 3 for SKIP (required tool not
# installed), anything else for FAIL.
run_stage() {
    local name=$1
    shift
    echo
    echo "========================================================"
    echo "=== CI stage: ${name}"
    echo "========================================================"
    local t0
    t0=$(date +%s)
    "$@"
    case "$?" in
      0) results+=("PASS") ;;
      3) results+=("SKIP") ;;
      *) results+=("FAIL") ;;
    esac
    names+=("${name}")
    times+=("$(( $(date +%s) - t0 ))")
}

tier1() {
    cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo &&
        cmake --build build -j "$(nproc)" &&
        ctest --test-dir build --output-on-failure -j "$(nproc)"
}

analyze() {
    # Source-level interprocedural discipline, then the binary
    # backstop over the tier-1 build's disassembly.
    python3 scripts/starnuma_hotpath.py &&
        scripts/check_hotpath_syms.sh build
}

sweep_guard() {
    # Cold pass against a fresh store, warm pass against the same
    # store: the bench records the warm hit rate, the warm/cold
    # speedup and a byte-identity bit; this stage turns those into
    # hard assertions and then audits every persisted object with
    # the Python store twin (scripts/cas_tool.py).
    cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo &&
        cmake --build build -j "$(nproc)" \
              --target bench_sweep_incremental || return 1
    local tmp
    tmp=$(mktemp -d) || return 1
    # shellcheck disable=SC2064
    trap "rm -rf '${tmp}'" RETURN
    STARNUMA_CACHE_DIR="${tmp}/store" STARNUMA_BENCH_FAST=1 \
        ./build/bench/bench_sweep_incremental \
        --bench-json="${tmp}/sweep.json" || return 1
    python3 - "${tmp}/sweep.json" <<'EOF' || return 1
import json
import sys

with open(sys.argv[1]) as fh:
    r = json.load(fh)["results"]
failures = []
if r.get("sweep.warm_equals_cold") != 1.0:
    failures.append("warm artifacts are not byte-identical to cold")
if r.get("sweep.cache_hit_rate", 0.0) < 1.0:
    failures.append("warm hit rate %.2f < 1.00"
                    % r.get("sweep.cache_hit_rate", 0.0))
if r.get("sweep.warm_speedup", 0.0) < 5.0:
    failures.append("warm speedup %.1fx < 5x"
                    % r.get("sweep.warm_speedup", 0.0))
for f in failures:
    print("sweep stage: %s" % f)
print("sweep stage: speedup %.1fx, hit rate %.2f, byte-identical %s"
      % (r.get("sweep.warm_speedup", 0.0),
         r.get("sweep.cache_hit_rate", 0.0),
         "yes" if r.get("sweep.warm_equals_cold") == 1.0 else "NO"))
sys.exit(1 if failures else 0)
EOF
    python3 scripts/cas_tool.py verify "${tmp}/store"
}

bench_guard() {
    if [ ! -f BENCH_results.json ]; then
        echo "bench: no committed BENCH_results.json to compare" \
             "against; run scripts/export_bench_json.sh first" >&2
        return 1
    fi
    cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo &&
        cmake --build build -j "$(nproc)" \
              --target bench_replay_throughput || return 1
    local tmp
    tmp=$(mktemp -d) || return 1
    # shellcheck disable=SC2064
    trap "rm -rf '${tmp}'" RETURN
    # Best-of-3: wall-clock throughput on a shared machine is
    # noisy in one direction only (interference makes it slower,
    # never faster), so the max over repeats is the honest value.
    local i
    for i in 1 2 3; do
        STARNUMA_BENCH_FAST=1 \
            ./build/bench/bench_replay_throughput \
            --bench-json="${tmp}/replay${i}.json" >/dev/null ||
            return 1
    done
    # Fold best-of-3 into one measurement file, then let the
    # history differ apply its per-metric thresholds (replay.* keys
    # get the 20% wall-clock tolerance).
    python3 - "${tmp}"/replay[123].json \
        "${tmp}/current.json" <<'EOF' || return 1
import json
import sys

best = {"schema": "starnuma-bench-v1", "results": {}}
for path in sys.argv[1:-1]:
    with open(path) as fh:
        for key, val in json.load(fh)["results"].items():
            prev = best["results"].get(key)
            best["results"][key] = val if prev is None \
                else max(val, prev)
with open(sys.argv[-1], "w") as fh:
    json.dump(best, fh)
EOF
    python3 scripts/bench_history.py BENCH_results.json \
        "${tmp}/current.json"
}

for stage in "${stages[@]}"; do
    case "${stage}" in
      tier1)      run_stage "tier1 ctest" tier1 ;;
      lint)       run_stage "lint (D1-D11 + WERROR)" \
                            scripts/run_lint.sh python werror ;;
      taint)      run_stage "taint (D12-D14 + artifact manifest)" \
                            scripts/run_lint.sh taint ;;
      clang-tsa)  run_stage "clang thread-safety build" \
                            scripts/run_lint.sh clang-tsa ;;
      clang-tidy) run_stage "clang-tidy" \
                            scripts/run_lint.sh clang-tidy ;;
      analyze)    run_stage "analyze (hot-path + syms backstop)" \
                            analyze ;;
      sanitizers) run_stage "sanitizers (TSan, ASan+UBSan)" \
                            scripts/run_sanitizers.sh ;;
      obs)        run_stage "obs (telemetry + report smoke)" \
                            scripts/run_observability.sh ;;
      sweep)      run_stage "sweep (cold/warm cache smoke)" \
                            sweep_guard ;;
      bench)      run_stage "bench (replay regression guard)" \
                            bench_guard ;;
      *)
        echo "run_ci.sh: unknown stage '${stage}' (expected" \
             "tier1|lint|taint|clang-tsa|clang-tidy|analyze|" \
             "sanitizers|obs|sweep|bench)" >&2
        exit 2
        ;;
    esac
done

echo
echo "=== CI summary ==="
fail=0
for i in "${!names[@]}"; do
    printf '  %-36s %s  (%ss)\n' "${names[$i]}" "${results[$i]}" \
           "${times[$i]}"
    if [ "${results[$i]}" = "FAIL" ]; then
        fail=1
    fi
done
if [ "${fail}" -ne 0 ]; then
    echo "=== CI FAILED ==="
    exit 1
fi
echo "=== CI clean ==="
