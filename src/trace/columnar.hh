/**
 * @file
 * Columnar binary trace format v2 (DESIGN.md §12). Step-A captures
 * are stored SoA: per thread, three parallel columns — delta-
 * encoded varint instruction counts, zigzag-delta varint addresses,
 * and a packed write-flag bitmap — instead of v1's array of 16-byte
 * records. Deltas between consecutive accesses of one thread are
 * small (instruction counts are nondecreasing, addresses exhibit
 * spatial locality), so the varints land in one or two bytes and
 * the cache files shrink several-fold.
 *
 * The decoder is fully bounds-checked: truncated files, corrupt
 * varints, impossible counts, and unknown versions all return
 * failure — never undefined behaviour (fuzzed in
 * tests/columnar_trace_test.cc under ASan).
 *
 * The varint/ByteReader primitives live in sim/bytes.hh (the step-B
 * checkpoint serialization and the mem/core resume-state encoders
 * share them from below this layer); they are re-exported here so
 * trace-side call sites keep their historical names.
 */

#ifndef STARNUMA_TRACE_COLUMNAR_HH
#define STARNUMA_TRACE_COLUMNAR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/bytes.hh"
#include "trace/trace.hh"

namespace starnuma
{
namespace trace
{

using starnuma::ByteReader;
using starnuma::putVarint;
using starnuma::unzigzag;
using starnuma::zigzag;

/** Serialize @p t into the columnar v2 byte layout. */
std::vector<std::uint8_t> encodeColumnar(const WorkloadTrace &t);

/**
 * Decode a columnar v2 buffer into @p out.
 * @return false on any structural error (and @p out is unspecified).
 */
bool decodeColumnar(const std::uint8_t *data, std::size_t size,
                    WorkloadTrace &out);

/** encodeColumnar to a file. @return false on IO error. */
bool saveColumnar(const WorkloadTrace &t, const std::string &path);

/**
 * Slurp a whole file into @p out. The single raw-read site shared
 * by every decode path: one bulk transfer into an owned buffer,
 * after which all parsing goes through the ByteReader cursor.
 * @return false on IO error (and @p out is unspecified).
 */
bool readFileBytes(const std::string &path,
                   std::vector<std::uint8_t> &out);

/** Read + decodeColumnar a file. @return false on error. */
bool loadColumnar(WorkloadTrace &t, const std::string &path);

} // namespace trace
} // namespace starnuma

#endif // STARNUMA_TRACE_COLUMNAR_HH
