file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_block_transfer.dir/bench_fig04_block_transfer.cc.o"
  "CMakeFiles/bench_fig04_block_transfer.dir/bench_fig04_block_transfer.cc.o.d"
  "CMakeFiles/bench_fig04_block_transfer.dir/bench_util.cc.o"
  "CMakeFiles/bench_fig04_block_transfer.dir/bench_util.cc.o.d"
  "bench_fig04_block_transfer"
  "bench_fig04_block_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_block_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
