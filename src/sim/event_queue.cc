#include "sim/event_queue.hh"

#include "sim/logging.hh"

namespace starnuma
{

void
EventQueue::schedule(Cycles when, Callback cb)
{
    sn_assert(when >= now_, "scheduling into the past (%llu < %llu)",
              static_cast<unsigned long long>(when.value()),
              static_cast<unsigned long long>(now_.value()));
    events.push(Event{when, nextSeq++, std::move(cb)});
}

std::uint64_t
EventQueue::run(Cycles limit)
{
    std::uint64_t count = 0;
    while (!events.empty() && events.top().when <= limit) {
        // Move the callback out before popping so that the callback
        // may itself schedule new events.
        Event ev = std::move(const_cast<Event &>(events.top()));
        events.pop();
        now_ = ev.when;
        ev.cb();
        ++executed_;
        ++count;
    }
    // With an explicit finite limit, time advances to the limit even
    // if the queue drains first (so fixed-horizon windows line up).
    if (events.empty() && limit != Cycles::max() && now_ < limit)
        now_ = limit;
    return count;
}

bool
EventQueue::step()
{
    if (events.empty())
        return false;
    Event ev = std::move(const_cast<Event &>(events.top()));
    events.pop();
    now_ = ev.when;
    ev.cb();
    ++executed_;
    return true;
}

} // namespace starnuma
