/**
 * @file
 * Structured migration-decision audit log (DESIGN.md §14). Every
 * Algorithm-1 evaluation that reaches a decision branch in
 * core/migration.cc appends one AuditRecord: which phase, which
 * region (and its first page), how its access count compared to the
 * HI threshold, how large the candidate set was, which branch fired
 * and — for victim evictions — why that victim was selected. The
 * record order is the engine's deterministic decision order, so the
 * serialized log is byte-identical for any STARNUMA_THREADS.
 *
 * Mitosis-style attribution (PAPERS.md): joining this log with the
 * time series and the stats snapshot is what lets
 * scripts/starnuma_report.py explain *why* each page moved, not
 * just how many did.
 *
 * The process-wide aggregation point is AuditSink (analogue of
 * StatsSink): each experiment's log lands under its
 * "<workload>.<setup>" run key, activated by
 * STARNUMA_AUDIT_OUT=<path> (bench flag: --audit-out).
 */

#ifndef STARNUMA_SIM_OBS_AUDIT_HH
#define STARNUMA_SIM_OBS_AUDIT_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/annotations.hh"
#include "sim/sync.hh"

namespace starnuma
{
namespace obs
{

/** Which Algorithm-1 arm decided a region's fate this phase. */
enum class AuditBranch : std::uint8_t
{
    ToPool,             ///< hot + widely shared -> pooled memory
    ToSharer,           ///< hot -> a random sharing socket
    AlreadyPlaced,      ///< resident at a sharer: no move
    SamePlacement,      ///< chosen destination equals current home
    PingPongSuppressed, ///< migrated too often: suppressed
    NoRoomBackoff,      ///< pool full, no cold victim: backed off
    VictimEviction,     ///< evicted from the pool to make room
};

/** Stable lowerCamel name of @p b (trace/report vocabulary). */
const char *auditBranchName(AuditBranch b);

/** Human-readable selection reason of @p b's decision. */
const char *auditBranchReason(AuditBranch b);

/** One Algorithm-1 decision (field semantics in DESIGN.md §14). */
struct AuditRecord
{
    std::uint32_t phase = 0;
    AuditBranch branch = AuditBranch::ToSharer;
    std::uint64_t region = 0;
    std::uint64_t page = 0; ///< first page of the region
    std::uint32_t sharers = 0;
    std::uint64_t accesses = 0;
    std::uint64_t hiThreshold = 0;
    std::uint64_t loThreshold = 0;
    std::uint32_t candidates = 0; ///< candidate-set size this phase
    std::int32_t from = -1;
    std::int32_t to = -1;
};

/**
 * An append-only record list owned by one migration engine.
 * Single-threaded per owner; cross-experiment aggregation goes
 * through AuditSink.
 */
class AuditLog
{
  public:
    /** Append one decision record. */
    // lint: cold-path per-decision bookkeeping inside the
    // once-per-phase Algorithm 1 pass
    STARNUMA_COLD_PATH void append(const AuditRecord &r);

    void reserve(std::size_t n) { recs.reserve(n); }
    bool empty() const { return recs.empty(); }
    std::size_t size() const { return recs.size(); }

    const std::vector<AuditRecord> &
    records() const
    {
        return recs;
    }

    /**
     * CSV rows of this log (no header), each prefixed with
     * @p run and a per-run sequence number. Column order is
     * auditCsvHeader().
     */
    std::string csvRows(const std::string &run) const;

    /** JSON array of record objects (fields in CSV column order). */
    std::string jsonArray() const;

  private:
    std::vector<AuditRecord> recs;
};

/** Header row matching AuditLog::csvRows. */
const char *auditCsvHeader();

/**
 * Aggregates audit logs across every experiment of the process,
 * keyed by run ("<workload>.<setup>"). Thread safe; exports sort by
 * run key and keep each run's deterministic record order, so the
 * written artifact is independent of completion order.
 */
class AuditSink
{
  public:
    /** The process-wide sink. First use auto-starts it when
     *  STARNUMA_AUDIT_OUT is set (an atexit hook then writes the
     *  file on shutdown). */
    static AuditSink &global();

    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Enable collection; write() targets @p path ("" = explicit
     *  writeTo only). */
    void start(const std::string &path);

    /** Disable and drop everything collected so far. */
    void stop();

    /** Take @p log in under run key @p run (no-op when disabled). */
    void add(const std::string &run, const AuditLog &log);

    /** Records collected so far, over all runs. */
    std::size_t size() const;

    /** The collected logs as CSV (header + rows, runs sorted). */
    std::string collectCsv() const;

    /** The collected logs as a JSON object keyed by run. */
    std::string collectJson() const;

    /**
     * Write the collected logs to @p path: CSV, or JSON when the
     * path ends in ".json". @return false on IO error.
     */
    bool writeTo(const std::string &path) const;

    /** writeTo the configured path; true when nothing to do. */
    bool write() const;

  private:
    AuditSink() = default;

    mutable Mutex mu;
    // Same contract as StatsSink::enabled_ (see sim/obs/obs.hh).
    std::atomic<bool> enabled_{false};
    std::string path_ STARNUMA_GUARDED_BY(mu);
    std::map<std::string, AuditLog> byRun STARNUMA_GUARDED_BY(mu);
};

} // namespace obs
} // namespace starnuma

#endif // STARNUMA_SIM_OBS_AUDIT_HH
