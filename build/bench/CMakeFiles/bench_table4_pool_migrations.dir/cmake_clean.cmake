file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_pool_migrations.dir/bench_table4_pool_migrations.cc.o"
  "CMakeFiles/bench_table4_pool_migrations.dir/bench_table4_pool_migrations.cc.o.d"
  "CMakeFiles/bench_table4_pool_migrations.dir/bench_util.cc.o"
  "CMakeFiles/bench_table4_pool_migrations.dir/bench_util.cc.o.d"
  "bench_table4_pool_migrations"
  "bench_table4_pool_migrations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_pool_migrations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
