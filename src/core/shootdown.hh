/**
 * @file
 * TLB shootdown cost model (§III-D3). StarNUMA adopts DiDi-style
 * hardware support [64]: a shared TLB directory sends shootdowns
 * only to cores actually caching the migrating page's translation,
 * and victim cores handle the invalidation entirely in hardware.
 * The migration-initiating core still pays ~3k cycles per page to
 * initiate shootdowns and await completion. A conventional
 * software (IPI + kernel handler on every core) cost model is also
 * provided for the ablation comparison that motivates the hardware
 * support.
 */

#ifndef STARNUMA_CORE_SHOOTDOWN_HH
#define STARNUMA_CORE_SHOOTDOWN_HH

#include <cstdint>

#include "sim/types.hh"

namespace starnuma
{
namespace core
{

/** Cost parameters for page-migration TLB shootdowns. */
struct ShootdownModel
{
    /** Initiator cost per migrated page with hardware support. */
    Cycles initiatorCostPerPage{3000};

    /**
     * Per-core cost of a software shootdown (enter kernel, run the
     * handler) — "several thousand cycles" [64]; used only by the
     * software-cost comparison.
     */
    Cycles softwareCostPerCore{4000};

    /** Cost charged to the initiating core for @p pages pages. */
    Cycles
    hardwareCost(std::uint64_t pages) const
    {
        return initiatorCostPerPage * pages;
    }

    /**
     * Cost of conventional software shootdowns: every one of
     * @p cores takes an IPI for every page.
     */
    Cycles
    softwareCost(std::uint64_t pages, int cores) const
    {
        return softwareCostPerCore * pages *
               static_cast<std::uint64_t>(cores);
    }
};

} // namespace core
} // namespace starnuma

#endif // STARNUMA_CORE_SHOOTDOWN_HH
