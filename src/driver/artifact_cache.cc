#include "driver/artifact_cache.hh"

#include <chrono>
#include <cstdlib>

#include "sim/obs/registry.hh"

namespace starnuma
{
namespace driver
{

ArtifactCache &
ArtifactCache::global()
{
    static ArtifactCache cache;
    return cache;
}

// lint: cold-path once-per-tier store lookup (a mutex-guarded
// shared_ptr copy), never per replay record
std::shared_ptr<cas::Store>
ArtifactCache::store()
{
    MutexLock lock(mu);
    if (!initialized) {
        initialized = true;
        // Same gate idiom as the step-A trace cache
        // (STARNUMA_TRACE_DIR), but default *off*: persisting every
        // sweep artifact is an opt-in. The code-epoch stub value
        // "unknown" (no Python at configure time) also keeps the
        // cache off — without a real file-closure hash, stale
        // objects could outlive the code that wrote them.
        const char *env = std::getenv("STARNUMA_CACHE_DIR");
        if (env != nullptr) {
            std::string dir = env;
            if (!dir.empty() && dir != "0" && dir != "off")
                store_ = std::make_shared<cas::Store>(dir);
        }
    }
    return store_;
}

void
ArtifactCache::enable(const std::string &dir)
{
    MutexLock lock(mu);
    initialized = true;
    store_ = std::make_shared<cas::Store>(dir);
}

void
ArtifactCache::disable()
{
    MutexLock lock(mu);
    initialized = true;
    store_.reset();
}

void
ArtifactCache::resetCounters()
{
    traceHits_.store(0, std::memory_order_relaxed);
    traceMisses_.store(0, std::memory_order_relaxed);
    resultHits_.store(0, std::memory_order_relaxed);
    resultMisses_.store(0, std::memory_order_relaxed);
    partialHits_.store(0, std::memory_order_relaxed);
    phasesSkipped_.store(0, std::memory_order_relaxed);
    bytesRead_.store(0, std::memory_order_relaxed);
    bytesWritten_.store(0, std::memory_order_relaxed);
    hitNanos_.store(0, std::memory_order_relaxed);
    missNanos_.store(0, std::memory_order_relaxed);
}

// lint: cold-path stats registration, once per sweep report
void
ArtifactCache::registerStats(obs::Registry &r,
                             const std::string &prefix) const
{
    auto count = [this, &r,
                  &prefix](const char *name,
                           const std::atomic<std::uint64_t> *c) {
        r.addCounterFn(prefix + name, [c] { return get(*c); });
    };
    count("traceHits", &traceHits_);
    count("traceMisses", &traceMisses_);
    count("resultHits", &resultHits_);
    count("resultMisses", &resultMisses_);
    count("partialHits", &partialHits_);
    count("phasesSkipped", &phasesSkipped_);
    count("bytesRead", &bytesRead_);
    count("bytesWritten", &bytesWritten_);
    // Host-profiling tier times (operator dashboards; never part of
    // deterministic artifacts — see noteHitNanos).
    r.addGaugeFn(prefix + "hitSeconds", [this] {
        return static_cast<double>(get(hitNanos_)) * 1e-9;
    });
    r.addGaugeFn(prefix + "missSeconds", [this] {
        return static_cast<double>(get(missNanos_)) * 1e-9;
    });
}

std::uint64_t
cacheNowNanos()
{
    // lint: taint-ok host-profiling cache-tier time attribution
    // only; these wall-clock values feed the hit/miss second gauges
    // for operator reports and never enter deterministic
    // simulation artifacts
    auto now = std::chrono::steady_clock::now();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            now.time_since_epoch())
            .count());
}

obs::Snapshot
sweepCacheSnapshot()
{
    obs::Registry reg;
    ArtifactCache::global().registerStats(reg, "");
    return reg.snapshot();
}

} // namespace driver
} // namespace starnuma
