// Fixture: D9 escape hatches — clean. A function-level cold-path
// annotation stops the walk at the callee; a line-level one exempts
// exactly that line. Neither produces a finding.

namespace starnuma
{

// lint: cold-path fixture setup, runs once per run
void
fixtureColdSetup()
{
    int *scratch = new int[8];
    delete[] scratch;
}

// lint: hot-path fixture root exercising both escape forms
int
fixtureHotEscaped(int v)
{
    fixtureColdSetup();
    // lint: cold-path amortized growth, capacity reserved up front
    int *grown = new int(v);
    int out = *grown;
    delete grown;
    return out;
}

} // namespace starnuma
