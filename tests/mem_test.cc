/**
 * @file
 * Tests for the memory substrate: set-associative cache, DRAM
 * channel/controller queuing, page map with first touch, and the
 * MESI directory's 3-hop/4-hop block-transfer classification.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"
#include "mem/directory.hh"
#include "mem/dram.hh"
#include "mem/page_map.hh"

namespace starnuma
{
namespace mem
{
namespace
{

// --- Cache ---

TEST(Cache, MissThenHit)
{
    Cache c({4096, 4});
    EXPECT_FALSE(c.access(0x100, false).hit);
    EXPECT_TRUE(c.access(0x100, false).hit);
    EXPECT_TRUE(c.access(0x13f, false).hit); // same block
    EXPECT_FALSE(c.access(0x140, false).hit); // next block
    EXPECT_EQ(c.hits(), 2u);
    EXPECT_EQ(c.misses(), 2u);
}

TEST(Cache, LruEviction)
{
    // Direct-mapped-by-sets: 2 sets x 2 ways, 64B blocks = 256B.
    Cache c({256, 2});
    // Three distinct blocks mapping to set 0 (stride = 2 blocks).
    c.access(0 * 128, false);
    c.access(1 * 128 * 2, false);
    c.access(2 * 128 * 2, false); // evicts the LRU (block 0)
    EXPECT_FALSE(c.contains(0));
    EXPECT_TRUE(c.contains(256));
    EXPECT_TRUE(c.contains(512));
}

TEST(Cache, LruRespectsRecency)
{
    Cache c({256, 2}); // 2 sets, 2 ways
    c.access(0, false);    // set 0
    c.access(256, false);  // set 0
    c.access(0, false);    // touch block 0 again
    auto r = c.access(512, false); // evicts 256, not 0
    EXPECT_TRUE(r.evicted);
    EXPECT_EQ(r.victim, 256u);
    EXPECT_TRUE(c.contains(0));
}

TEST(Cache, DirtyVictimReported)
{
    Cache c({256, 2});
    c.access(0, true); // store
    c.access(256, false);
    auto r = c.access(512, false);
    EXPECT_TRUE(r.evicted);
    EXPECT_EQ(r.victim, 0u);
    EXPECT_TRUE(r.victimDirty);
}

TEST(Cache, InvalidateRemovesBlock)
{
    Cache c({4096, 4});
    c.access(0x1000, false);
    EXPECT_TRUE(c.invalidate(0x1000));
    EXPECT_FALSE(c.contains(0x1000));
    EXPECT_FALSE(c.invalidate(0x1000));
}

TEST(Cache, InvalidatePageDropsAllBlocks)
{
    Cache c({1 << 20, 16});
    for (Addr a = 0x4000; a < 0x5000; a += blockBytes)
        c.access(a, false);
    c.access(0x8000, false);
    EXPECT_EQ(c.invalidatePage(0x4123), 64);
    EXPECT_TRUE(c.contains(0x8000));
}

TEST(Cache, ResetClearsEverything)
{
    Cache c({4096, 4});
    c.access(0x40, true);
    c.reset();
    EXPECT_FALSE(c.contains(0x40));
    EXPECT_EQ(c.hits() + c.misses(), 0u);
}

TEST(Cache, HitRateTracksAccesses)
{
    Cache c({1 << 16, 8});
    for (int rep = 0; rep < 4; ++rep)
        for (Addr a = 0; a < 64 * 16; a += 64)
            c.access(a, false);
    // 16 misses, 48 hits.
    EXPECT_DOUBLE_EQ(c.hitRate(), 0.75);
}

class CacheGeometry
    : public ::testing::TestWithParam<std::pair<Addr, int>>
{
};

TEST_P(CacheGeometry, WorkingSetSmallerThanCacheAlwaysHitsOnReuse)
{
    auto [size, ways] = GetParam();
    Cache c({size, ways});
    Addr working_set = size / 2;
    for (Addr a = 0; a < working_set; a += blockBytes)
        c.access(a, false);
    for (Addr a = 0; a < working_set; a += blockBytes)
        EXPECT_TRUE(c.access(a, false).hit) << "addr " << a;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CacheGeometry,
    ::testing::Values(std::pair<Addr, int>{4096, 1},
                      std::pair<Addr, int>{32768, 8},
                      std::pair<Addr, int>{1 << 20, 16},
                      std::pair<Addr, int>{8 << 20, 16}));

// --- DRAM ---

TEST(Dram, UnloadedLatencyMatchesConfig)
{
    DramChannel ch(DramConfig{});
    EXPECT_EQ(ch.unloadedLatency(), nsToCycles(50.0));
    EXPECT_EQ(ch.access(Cycles(0), 0x0), nsToCycles(50.0));
}

TEST(Dram, SameBankAccessesSerialize)
{
    DramConfig cfg;
    DramChannel ch(cfg);
    Cycles a1 = ch.access(Cycles(0), 0x0);
    Cycles a2 = ch.access(Cycles(0), 0x0); // same bank
    EXPECT_GE(a2 - a1, nsToCycles(cfg.bankBusyNs) - Cycles(1));
}

TEST(Dram, DifferentBanksOverlap)
{
    DramConfig cfg;
    DramChannel ch(cfg);
    Cycles a1 = ch.access(Cycles(0), 0 * blockBytes);
    Cycles a2 = ch.access(Cycles(0), 1 * blockBytes); // adjacent bank
    // Only the shared data bus separates them.
    EXPECT_EQ(a2 - a1, serializationCycles(blockBytes, cfg.busGbps));
}

TEST(Dram, ControllerInterleavesChannels)
{
    MemoryController mc(2, DramConfig{});
    Cycles a1 = mc.access(Cycles(0), 0 * blockBytes);
    Cycles a2 = mc.access(Cycles(0), 1 * blockBytes); // other channel
    EXPECT_EQ(a1, a2);
    EXPECT_EQ(mc.requests(), 2u);
}

TEST(Dram, ResetContentionRestoresUnloaded)
{
    MemoryController mc(1, DramConfig{});
    for (int i = 0; i < 100; ++i)
        mc.access(Cycles(0), 0);
    mc.resetContention();
    EXPECT_EQ(mc.access(Cycles(0), 0), mc.unloadedLatency());
}

TEST(Dram, SameRowHammerPipelinesThroughRowBuffer)
{
    DramConfig cfg;
    DramChannel ch(cfg);
    Cycles last;
    for (int i = 0; i < 64; ++i)
        last = ch.access(Cycles(0), 0); // same block: row hits after #1
    EXPECT_GE(last, 63 * nsToCycles(cfg.rowHitNs));
    EXPECT_LT(last, 63 * nsToCycles(cfg.bankBusyNs));
    EXPECT_EQ(ch.rowHits(), 63u);
    EXPECT_GT(ch.meanQueueDelay(), 0.0);
}

TEST(Dram, RowConflictsPayFullRowCycle)
{
    DramConfig cfg;
    DramChannel ch(cfg);
    // Alternate between two rows of the same bank: every access is
    // a row miss and serializes at the full row-cycle time.
    Addr stride = cfg.rowBytes * cfg.banks;
    Cycles last;
    for (int i = 0; i < 32; ++i)
        last = ch.access(Cycles(0), (i % 2) * stride);
    EXPECT_EQ(ch.rowHits(), 0u);
    EXPECT_GE(last, 31 * nsToCycles(cfg.bankBusyNs));
}

// --- PageMap ---

TEST(PageMap, FirstTouchSticks)
{
    PageMap pm(17);
    EXPECT_EQ(pm.home(PageNum(5)), invalidNode);
    EXPECT_EQ(pm.touch(PageNum(5), 3), 3);
    EXPECT_EQ(pm.touch(PageNum(5), 9), 3); // later toucher does not move it
    EXPECT_EQ(pm.home(PageNum(5)), 3);
    EXPECT_EQ(pm.pagesAt(3), 1u);
    EXPECT_EQ(pm.firstTouchPages(), 1u);
}

TEST(PageMap, SetHomeMovesCounts)
{
    PageMap pm(17);
    pm.touch(PageNum(1), 0);
    pm.touch(PageNum(2), 0);
    pm.setHome(PageNum(1), 16); // migrate to pool
    EXPECT_EQ(pm.pagesAt(0), 1u);
    EXPECT_EQ(pm.pagesAt(16), 1u);
    EXPECT_EQ(pm.home(PageNum(1)), 16);
    EXPECT_EQ(pm.totalPages(), 2u);
}

TEST(PageMap, SetHomeOnUnmappedPageMaps)
{
    PageMap pm(4);
    pm.setHome(PageNum(7), 2);
    EXPECT_EQ(pm.home(PageNum(7)), 2);
    EXPECT_EQ(pm.pagesAt(2), 1u);
}

TEST(PageMap, ForEachVisitsAll)
{
    PageMap pm(4);
    pm.touch(PageNum(1), 0);
    pm.touch(PageNum(2), 1);
    pm.touch(PageNum(3), 2);
    int visits = 0;
    pm.forEach([&](PageNum, NodeId) { ++visits; });
    EXPECT_EQ(visits, 3);
}

// --- Directory ---

TEST(Directory, CleanReadIsNotBlockTransfer)
{
    Directory dir(16);
    auto r = dir.access(0x1000, 0, false, 5);
    EXPECT_FALSE(r.blockTransfer);
    EXPECT_EQ(dir.sharers(0x1000), 1);
}

TEST(Directory, DirtyReadTriggersBlockTransfer)
{
    Directory dir(16);
    dir.access(0x1000, 2, true, 5); // socket 2 owns dirty
    auto r = dir.access(0x1000, 7, false, 5);
    EXPECT_TRUE(r.blockTransfer);
    EXPECT_EQ(r.owner, 2);
    EXPECT_FALSE(r.viaPool); // home is a socket: 3-hop shape
    EXPECT_EQ(dir.dirtyOwner(0x1000), -1); // downgraded
    EXPECT_EQ(dir.sharers(0x1000), 2);
}

TEST(Directory, PoolHomedTransferIsViaPool)
{
    Directory dir(16);
    dir.access(0x2000, 1, true, 16); // home = pool node
    auto r = dir.access(0x2000, 9, false, 16);
    EXPECT_TRUE(r.blockTransfer);
    EXPECT_TRUE(r.viaPool); // 4-hop R->H->O->H->R shape
    EXPECT_EQ(dir.poolTransfers(), 1u);
}

TEST(Directory, WriteInvalidatesSharers)
{
    Directory dir(16);
    for (NodeId s = 0; s < 4; ++s)
        dir.access(0x3000, s, false, 0);
    auto r = dir.access(0x3000, 0, true, 0);
    EXPECT_EQ(r.invalidations, 3);
    EXPECT_EQ(dir.sharers(0x3000), 1);
    EXPECT_EQ(dir.dirtyOwner(0x3000), 0);
}

TEST(Directory, WriteByOwnerNoTransfer)
{
    Directory dir(16);
    dir.access(0x4000, 3, true, 1);
    auto r = dir.access(0x4000, 3, true, 1);
    EXPECT_FALSE(r.blockTransfer);
    EXPECT_EQ(r.invalidations, 0);
}

TEST(Directory, EvictionErasesEmptyEntries)
{
    Directory dir(16);
    dir.access(0x5000, 4, false, 0);
    EXPECT_TRUE(dir.cached(0x5000));
    dir.evict(0x5000, 4);
    EXPECT_FALSE(dir.cached(0x5000));
    EXPECT_EQ(dir.trackedBlocks(), 0u);
}

TEST(Directory, EvictDirtyOwnerClearsOwnership)
{
    Directory dir(16);
    dir.access(0x6000, 4, true, 0);
    dir.access(0x6000, 5, false, 0); // 5 shares too
    dir.evict(0x6000, 4);
    EXPECT_EQ(dir.dirtyOwner(0x6000), -1);
    EXPECT_EQ(dir.sharers(0x6000), 1);
}

TEST(Directory, TransactionCountsAccumulate)
{
    Directory dir(16);
    dir.access(0x10, 0, true, 1);
    dir.access(0x10, 1, false, 1); // BT
    dir.access(0x10, 2, true, 1);  // invalidations
    EXPECT_EQ(dir.transactions(), 3u);
    EXPECT_EQ(dir.blockTransfers(), 1u);
    EXPECT_GE(dir.invalidations(), 2u);
    dir.reset();
    EXPECT_EQ(dir.transactions(), 0u);
    EXPECT_FALSE(dir.cached(0x10));
}

class DirectorySharing : public ::testing::TestWithParam<int>
{
};

TEST_P(DirectorySharing, SharerCountMatchesReaders)
{
    int readers = GetParam();
    Directory dir(16);
    for (NodeId s = 0; s < readers; ++s)
        dir.access(0xbeef00, s, false, 15);
    EXPECT_EQ(dir.sharers(0xbeef00), readers);
}

INSTANTIATE_TEST_SUITE_P(UpToAllSockets, DirectorySharing,
                         ::testing::Values(1, 2, 4, 8, 16));

} // anonymous namespace
} // namespace mem
} // namespace starnuma
