/**
 * @file
 * Workload interface and registry. Each workload implements the
 * real algorithm of its paper counterpart (§IV-E) against the
 * traced simulated address space: setup() builds the dataset with
 * parallel, partitioned initialization (seeding first-touch
 * placement), and step() executes a small unit of one logical
 * thread's work. capture() cooperatively round-robins threads in
 * ~2k-instruction quanta until every thread reaches the scale's
 * instruction target, yielding the per-thread memory traces of
 * step A.
 */

#ifndef STARNUMA_WORKLOADS_WORKLOAD_HH
#define STARNUMA_WORKLOADS_WORKLOAD_HH

#include <memory>
#include <string>
#include <vector>

#include "sim/scale.hh"
#include "sim/types.hh"
#include "trace/capture.hh"
#include "trace/trace.hh"

namespace starnuma
{
namespace workloads
{

/** Base class for all traced workload kernels. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Short name ("bfs", "tpcc", ...). */
    virtual std::string name() const = 0;

    /** Build datasets; runs inside the capture's setup mode. */
    virtual void setup(trace::CaptureContext &ctx,
                       const SimScale &scale) = 0;

    /**
     * Execute a small unit of work for thread @p t. Must advance
     * @p t's instruction count by at least one.
     */
    virtual void step(ThreadId t, trace::CaptureContext &ctx) = 0;

    /** Run setup + cooperative stepping; produce the trace. */
    trace::WorkloadTrace capture(const SimScale &scale);
};

/** Names of all registered workloads, in the paper's Fig 8 order. */
std::vector<std::string> workloadNames();

/** Instantiate a workload by name (fatal on unknown name). */
std::unique_ptr<Workload> makeWorkload(const std::string &name,
                                       std::uint64_t seed = 1);

/**
 * Capture a workload's trace, via the on-disk trace cache when
 * enabled (key includes the scale so SC3 gets its own traces).
 */
trace::WorkloadTrace captureWorkload(const std::string &name,
                                     const SimScale &scale,
                                     std::uint64_t seed = 1);

} // namespace workloads
} // namespace starnuma

#endif // STARNUMA_WORKLOADS_WORKLOAD_HH
