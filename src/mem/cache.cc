#include "mem/cache.hh"

#include "sim/logging.hh"
#include "sim/obs/registry.hh"

namespace starnuma
{
namespace mem
{

namespace
{

std::size_t
toPowerOfTwo(std::size_t v)
{
    std::size_t p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

} // anonymous namespace

Cache::Cache(const CacheConfig &config)
    : ways(config.ways), useClock(0), hits_(0), misses_(0),
      evictions_(0)
{
    sn_assert(config.ways > 0 && config.sizeBytes >= blockBytes,
              "bad cache geometry");
    numSets = toPowerOfTwo(
        config.sizeBytes / (blockBytes * config.ways));
    if (numSets == 0)
        numSets = 1;
    sets_.assign(numSets * ways, Line{});
}

std::size_t
Cache::setIndex(Addr block) const
{
    return (block / blockBytes) & (numSets - 1);
}

CacheAccess
Cache::access(Addr addr, bool write)
{
    Addr block = blockAddr(addr);
    Line *set = &sets_[setIndex(block) * ways];
    ++useClock;

    CacheAccess result;
    Line *lru = &set[0];
    for (int w = 0; w < ways; ++w) {
        Line &line = set[w];
        if (line.valid && line.tag == block) {
            line.lastUse = useClock;
            line.dirty |= write;
            ++hits_;
            result.hit = true;
            return result;
        }
        if (!line.valid) {
            lru = &line;
        } else if (lru->valid && line.lastUse < lru->lastUse) {
            lru = &line;
        }
    }

    ++misses_;
    if (lru->valid) {
        ++evictions_;
        result.evicted = true;
        result.victim = lru->tag;
        result.victimDirty = lru->dirty;
    }
    lru->valid = true;
    lru->tag = block;
    lru->dirty = write;
    lru->lastUse = useClock;
    return result;
}

bool
Cache::contains(Addr addr) const
{
    Addr block = blockAddr(addr);
    const Line *set = &sets_[setIndex(block) * ways];
    for (int w = 0; w < ways; ++w)
        if (set[w].valid && set[w].tag == block)
            return true;
    return false;
}

bool
Cache::invalidate(Addr addr)
{
    Addr block = blockAddr(addr);
    Line *set = &sets_[setIndex(block) * ways];
    for (int w = 0; w < ways; ++w) {
        if (set[w].valid && set[w].tag == block) {
            set[w].valid = false;
            set[w].dirty = false;
            return true;
        }
    }
    return false;
}

int
Cache::invalidatePage(Addr addr)
{
    int dropped = 0;
    Addr page = pageAddr(addr);
    for (Addr block = page; block < page + pageBytes;
         block += blockBytes)
        dropped += invalidate(block);
    return dropped;
}

void
Cache::reset()
{
    for (Line &line : sets_)
        line = Line{};
    useClock = 0;
    hits_ = 0;
    misses_ = 0;
    evictions_ = 0;
}

// lint: cold-path stats export, once per run when observing
void
Cache::registerStats(obs::Registry &r,
                     const std::string &prefix) const
{
    r.addCounter(prefix + ".hits", &hits_);
    r.addCounter(prefix + ".misses", &misses_);
    r.addCounter(prefix + ".evictions", &evictions_);
    r.addGaugeFn(prefix + ".hitRate",
                 [this] { return hitRate(); });
}

} // namespace mem
} // namespace starnuma
