#include "sim/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace starnuma
{

namespace
{

void
vreport(const char *level, const char *fmt, va_list args)
{
    std::fprintf(stderr, "%s: ", level);
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n");
}

} // anonymous namespace

void
inform(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("info", fmt, args);
    va_end(args);
}

void
warn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("warn", fmt, args);
    va_end(args);
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("fatal", fmt, args);
    va_end(args);
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("panic", fmt, args);
    va_end(args);
    std::abort();
}

void
panicAssert(const char *cond, const char *fmt, ...)
{
    std::fprintf(stderr, "panic: assertion '%s' failed: ", cond);
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
    std::abort();
}

} // namespace starnuma
