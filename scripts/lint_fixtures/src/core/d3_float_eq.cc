// Fixture: D3 — floating-point equality. Marked lines must be
// flagged; epsilon comparisons and literals nested inside calls
// must not be.

#include <cmath>

#define EXPECT_EQ(a, b) ((void)((a) == (b)))
#define EXPECT_DOUBLE_EQ(a, b) ((void)((a) - (b)))

namespace fixture
{

double scale(double v) { return v * 2.0; }

bool
compare(double a, double b)
{
    bool bad = a == 0.5;  // expect-lint: D3
    bool bad2 = 1.25 != b; // expect-lint: D3
    EXPECT_EQ(a, 0.125);   // expect-lint: D3
    EXPECT_EQ(scale(0.5), b); // nested literal: no finding
    EXPECT_DOUBLE_EQ(a, 0.25); // tolerant macro: no finding
    bool good = std::abs(a - b) < 1e-9;
    return bad || bad2 || good;
}

} // namespace fixture
