#include "topology/system_config.hh"

namespace starnuma
{
namespace topology
{

SystemConfig
SystemConfig::baseline16()
{
    SystemConfig c;
    c.name = "baseline-16";
    return c;
}

SystemConfig
SystemConfig::starnuma16()
{
    SystemConfig c;
    c.name = "starnuma-16";
    c.hasPool = true;
    return c;
}

SystemConfig
SystemConfig::baselineIsoBW()
{
    // Pro-rate the pool's aggregate effective bandwidth onto the
    // coherent links: 20.8 -> 26.4 GB/s UPI and 13 -> 17 GB/s
    // NUMALink at full scale (§V-D), i.e., x1.269 and x1.308.
    SystemConfig c = baseline16();
    c.name = "baseline-iso-bw";
    c.upiGbps *= 26.4 / 20.8;
    c.numalinkGbps *= 17.0 / 13.0;
    return c;
}

SystemConfig
SystemConfig::baseline2xBW()
{
    SystemConfig c = baseline16();
    c.name = "baseline-2x-bw";
    c.upiGbps *= 2.0;
    c.numalinkGbps *= 2.0;
    return c;
}

SystemConfig
SystemConfig::starnumaHalfBW()
{
    SystemConfig c = starnuma16();
    c.name = "starnuma-half-bw";
    c.cxlGbps /= 2.0;
    return c;
}

SystemConfig
SystemConfig::starnumaSwitched()
{
    // An intermediate CXL switch adds ~90 ns roundtrip (§III-B),
    // raising the pool latency penalty from 100 ns to 190 ns and the
    // end-to-end unloaded pool access to 270 ns (Fig 10).
    SystemConfig c = starnuma16();
    c.name = "starnuma-switched";
    c.cxlOneWayNs = 95.0;
    return c;
}

SystemConfig
SystemConfig::starnumaSmallPool()
{
    SystemConfig c = starnuma16();
    c.name = "starnuma-small-pool";
    c.poolCapacityFraction = 1.0 / 17.0;
    return c;
}

SystemConfig
SystemConfig::starnuma32()
{
    SystemConfig c = starnuma16();
    c.name = "starnuma-32";
    c.sockets = 32;
    c.cxlOneWayNs = 95.0; // switch required at this scale
    return c;
}

SystemConfig
SystemConfig::baseline32()
{
    SystemConfig c = baseline16();
    c.name = "baseline-32";
    c.sockets = 32;
    return c;
}

} // namespace topology
} // namespace starnuma
