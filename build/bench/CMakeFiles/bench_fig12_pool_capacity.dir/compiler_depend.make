# Empty compiler generated dependencies file for bench_fig12_pool_capacity.
# This may be replaced when dependencies are built.
