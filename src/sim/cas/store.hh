/**
 * @file
 * Persistent content-addressed artifact store (DESIGN.md §16).
 *
 * Objects are addressed by the FNV-1a-128 hash of their *key text* —
 * a canonical multi-line "field=value" description of the artifact's
 * declared cache-key inputs (driver/artifact_key.cc derives it from
 * the scripts/artifact_inputs.json schema). The payload's own
 * content hash is stored alongside and re-verified on every fetch,
 * so corruption, truncation or a key-hash collision all demote to a
 * clean miss — never a wrong artifact, never undefined behaviour.
 *
 * On-disk layout (all integers little-endian, Python-parseable by
 * scripts/cas_tool.py):
 *
 *     <dir>/objects/<kk>/<keyhash128hex>.cas
 *       magic   8 bytes  "STARCAS1"
 *       u64     format version (1)
 *       u64     key text length in bytes
 *       u64     payload length in bytes
 *       u64     payload content hash, high half
 *       u64     payload content hash, low half
 *       key text bytes (UTF-8, embedded for audit + collision check)
 *       payload bytes
 *
 * Writes go to a ".tmp" sibling and rename into place, so readers
 * never observe a half-written object. Method names are deliberately
 * store-specific (putObject/fetchObject/...) so the D9/D12 analyzers
 * never conflate them with hot-path container traffic.
 */

#ifndef STARNUMA_SIM_CAS_STORE_HH
#define STARNUMA_SIM_CAS_STORE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/cas/hash.hh"

namespace starnuma
{
namespace cas
{

class Store
{
  public:
    /** Open (creating if needed) the store rooted at @p dir. */
    explicit Store(std::string dir);

    const std::string &directory() const { return dir_; }

    /**
     * Write @p payload under @p keyText (atomic tmp+rename).
     * @return false on any IO failure.
     */
    bool putObject(const std::string &keyText,
                   const std::vector<std::uint8_t> &payload);

    /**
     * Load the object stored under @p keyText into @p payload.
     * Verifies magic, version, embedded key text, sizes and the
     * payload content hash; any mismatch is a clean miss.
     * @return true only when the payload is verified intact.
     */
    bool fetchObject(const std::string &keyText,
                     std::vector<std::uint8_t> &payload);

    /** Cheap existence probe (no payload verification). */
    bool containsObject(const std::string &keyText) const;

    /** Sorted relative paths of every *.cas object in the store. */
    std::vector<std::string> listObjects() const;

    /**
     * Garbage-collect towards @p maxBytes total payload+header
     * size, evicting oldest-modification-time objects first
     * (trim(0) empties the store).
     * @return bytes removed.
     */
    std::uint64_t trim(std::uint64_t maxBytes);

    /** Absolute object path for @p keyText (exists or not). */
    std::string objectPath(const std::string &keyText) const;

    /**
     * Standalone integrity check of one object file: header,
     * embedded key, payload hash.
     * @return false when the file is missing, truncated or corrupt.
     */
    static bool verifyObject(const std::string &path);

  private:
    std::string dir_;
};

} // namespace cas
} // namespace starnuma

#endif // STARNUMA_SIM_CAS_STORE_HH
