// Fixture: D7 clean — every mutable member next to the mutex is
// either STARNUMA_GUARDED_BY-annotated, internally synchronized
// (atomic, condition variable), const, or carries a justified
// `// lint: lock-free` annotation. Nothing here may be flagged.

#ifndef STARNUMA_CORE_D7_GUARDED_CLEAN_HH
#define STARNUMA_CORE_D7_GUARDED_CLEAN_HH

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <string>
#include <vector>

#include "sim/annotations.hh"

namespace fixture
{

class GoodLockBox
{
  public:
    void add(int v);
    int total() const;

  private:
    mutable std::mutex mu;
    int counter STARNUMA_GUARDED_BY(mu) = 0;
    std::string label STARNUMA_GUARDED_BY(mu);
    std::atomic<bool> open{true};
    std::condition_variable drained;
    // lint: lock-free — filled once before any thread can see the
    // object, read-only afterwards.
    std::vector<int> warm;
    const int limit = 8;
};

} // namespace fixture

#endif // STARNUMA_CORE_D7_GUARDED_CLEAN_HH
