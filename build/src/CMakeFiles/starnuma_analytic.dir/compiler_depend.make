# Empty compiler generated dependencies file for starnuma_analytic.
# This may be replaced when dependencies are built.
