#include "workloads/workload.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "workloads/gap.hh"
#include "workloads/genomics.hh"
#include "workloads/kvstore.hh"
#include "workloads/tpcc.hh"

namespace starnuma
{
namespace workloads
{

// lint: artifact-root step_a_trace
trace::WorkloadTrace
Workload::capture(const SimScale &scale)
{
    trace::CaptureContext ctx(scale.threads());
    ctx.beginSetup();
    setup(ctx, scale);
    ctx.endSetup();

    std::uint64_t target = static_cast<std::uint64_t>(scale.phases) *
                           scale.phaseInstructions;
    constexpr std::uint64_t quantum = 2000;

    for (std::uint64_t q = quantum;; q += quantum) {
        bool all_done = true;
        std::uint64_t goal = std::min(q, target);
        for (ThreadId t = 0; t < scale.threads(); ++t) {
            while (ctx.instructions(t) < goal) {
                std::uint64_t before = ctx.instructions(t);
                step(t, ctx);
                sn_assert(ctx.instructions(t) > before,
                          "workload %s made no progress on thread "
                          "%d", name().c_str(), t);
            }
            all_done &= ctx.instructions(t) >= target;
        }
        if (all_done)
            break;
    }
    return ctx.take(name(), target);
}

std::vector<std::string>
workloadNames()
{
    return {"sssp", "bfs", "cc", "tc", "masstree", "tpcc", "fmi",
            "poa"};
}

std::unique_ptr<Workload>
makeWorkload(const std::string &name, std::uint64_t seed)
{
    if (name == "bfs")
        return std::make_unique<Bfs>(seed);
    if (name == "cc")
        return std::make_unique<ConnectedComponents>(seed);
    if (name == "sssp")
        return std::make_unique<Sssp>(seed);
    if (name == "tc")
        return std::make_unique<TriangleCount>(seed);
    if (name == "masstree")
        return std::make_unique<KvStore>(seed);
    if (name == "tpcc")
        return std::make_unique<Tpcc>(seed);
    if (name == "fmi")
        return std::make_unique<Fmi>(seed);
    if (name == "poa")
        return std::make_unique<Poa>(seed);
    fatal("unknown workload '%s'", name.c_str());
}

trace::WorkloadTrace
captureWorkload(const std::string &name, const SimScale &scale,
                std::uint64_t seed)
{
    std::string key =
        name + "-t" + std::to_string(scale.threads()) + "-p" +
        std::to_string(scale.phases) + "-i" +
        std::to_string(scale.phaseInstructions) + "-s" +
        std::to_string(seed);
    return trace::cached(key, [&] {
        return makeWorkload(name, seed)->capture(scale);
    });
}

} // namespace workloads
} // namespace starnuma
