/**
 * @file
 * Tests for the interconnect model. The headline latency points of
 * the paper (80/130/360/180 ns unloaded memory access; 68 coherent
 * links; 28 NUMALinks) are asserted exactly.
 */

#include <gtest/gtest.h>

#include "topology/topology.hh"

namespace starnuma
{
namespace topology
{
namespace
{

TEST(SystemConfig, PaperLatencyPoints)
{
    SystemConfig c = SystemConfig::starnuma16();
    EXPECT_DOUBLE_EQ(c.localNs(), 80.0);
    EXPECT_DOUBLE_EQ(c.oneHopNs(), 130.0);
    EXPECT_DOUBLE_EQ(c.twoHopNs(), 360.0);
    EXPECT_DOUBLE_EQ(c.poolNs(), 180.0);
}

TEST(SystemConfig, SwitchedPoolLatency)
{
    // Fig 10: +90 ns roundtrip -> 270 ns end-to-end pool access.
    EXPECT_DOUBLE_EQ(SystemConfig::starnumaSwitched().poolNs(), 270.0);
}

TEST(SystemConfig, NamedVariants)
{
    EXPECT_FALSE(SystemConfig::baseline16().hasPool);
    EXPECT_TRUE(SystemConfig::starnuma16().hasPool);
    EXPECT_NEAR(SystemConfig::baselineIsoBW().upiGbps,
                3.0 * 26.4 / 20.8, 1e-9);
    EXPECT_NEAR(SystemConfig::baselineIsoBW().numalinkGbps,
                3.0 * 17.0 / 13.0, 1e-9);
    EXPECT_DOUBLE_EQ(SystemConfig::baseline2xBW().upiGbps, 6.0);
    EXPECT_DOUBLE_EQ(SystemConfig::starnumaHalfBW().cxlGbps, 3.0);
    EXPECT_NEAR(SystemConfig::starnumaSmallPool().poolCapacityFraction,
                1.0 / 17.0, 1e-9);
}

TEST(Topology, LinkInventoryMatchesPaper)
{
    // §V-D: "The 16-socket system features a total of 68 coherent
    // links (28 inter-chassis and 40 intra-chassis)".
    Topology base(SystemConfig::baseline16());
    EXPECT_EQ(base.countLinks(LinkType::UPI), 40);
    EXPECT_EQ(base.countLinks(LinkType::NUMALink), 28);
    EXPECT_EQ(base.countLinks(LinkType::CXL), 0);

    Topology star(SystemConfig::starnuma16());
    EXPECT_EQ(star.countLinks(LinkType::CXL), 16);
    EXPECT_EQ(star.nodes(), 17);
}

TEST(Topology, UnloadedMemoryLatencies)
{
    Topology t(SystemConfig::starnuma16());
    // Local: 80 ns.
    EXPECT_EQ(t.unloadedMemoryAccess(0, 0), nsToCycles(80));
    // Intra-chassis (sockets 0 and 3): 130 ns.
    EXPECT_EQ(t.unloadedMemoryAccess(0, 3), nsToCycles(130));
    // Inter-chassis (sockets 0 and 15): 360 ns.
    EXPECT_EQ(t.unloadedMemoryAccess(0, 15), nsToCycles(360));
    // Pool: 180 ns.
    EXPECT_EQ(t.unloadedMemoryAccess(0, t.poolNode()), nsToCycles(180));
}

TEST(Topology, UnloadedLatenciesSymmetric)
{
    Topology t(SystemConfig::starnuma16());
    for (NodeId a = 0; a < t.nodes(); ++a)
        for (NodeId b = 0; b < t.nodes(); ++b)
            EXPECT_EQ(t.unloadedOneWay(a, b), t.unloadedOneWay(b, a));
}

TEST(Topology, RouteHopCounts)
{
    Topology t(SystemConfig::starnuma16());
    EXPECT_EQ(t.route(0, 0).hops.size(), 0u);
    EXPECT_EQ(t.route(0, 2).hops.size(), 1u);   // same chassis
    EXPECT_EQ(t.route(0, 7).hops.size(), 3u);   // UPI-NUMALink-UPI
    EXPECT_EQ(t.route(0, t.poolNode()).hops.size(), 1u);
    EXPECT_EQ(t.route(t.poolNode(), 9).hops.size(), 1u);
}

TEST(Topology, ClassifyAccesses)
{
    Topology t(SystemConfig::starnuma16());
    EXPECT_EQ(t.classify(0, 0), AccessClass::Local);
    EXPECT_EQ(t.classify(0, 1), AccessClass::OneHop);
    EXPECT_EQ(t.classify(0, 4), AccessClass::TwoHop);
    EXPECT_EQ(t.classify(5, t.poolNode()), AccessClass::Pool);
    EXPECT_EQ(t.classify(12, 15), AccessClass::OneHop);
}

TEST(Topology, ChassisMapping)
{
    Topology t(SystemConfig::baseline16());
    EXPECT_EQ(t.chassisOf(0), 0);
    EXPECT_EQ(t.chassisOf(3), 0);
    EXPECT_EQ(t.chassisOf(4), 1);
    EXPECT_EQ(t.chassisOf(15), 3);
}

TEST(Topology, SendMatchesUnloadedWhenIdle)
{
    Topology t(SystemConfig::starnuma16());
    Cycles arrival = t.send(0, 15, Cycles(1000), ctrlBytes);
    Cycles expect = Cycles(1000) + t.unloadedOneWay(0, 15) +
                    3 * serializationCycles(ctrlBytes, 3.0);
    EXPECT_EQ(arrival, expect);
}

TEST(Topology, ContentionQueuesMessages)
{
    Topology t(SystemConfig::baseline16());
    // Two back-to-back data messages on the same single-link route:
    // the second must wait for the first's serialization slot.
    Cycles a1 = t.send(0, 1, Cycles(0), dataBytes);
    Cycles a2 = t.send(0, 1, Cycles(0), dataBytes);
    EXPECT_EQ(a2 - a1, serializationCycles(dataBytes, 3.0));
}

TEST(Topology, OppositeDirectionsDoNotContend)
{
    Topology t(SystemConfig::baseline16());
    Cycles a1 = t.send(0, 1, Cycles(0), dataBytes);
    Cycles a2 = t.send(1, 0, Cycles(0), dataBytes);
    EXPECT_EQ(a1, a2);
}

TEST(Topology, ResetContentionClearsQueues)
{
    Topology t(SystemConfig::baseline16());
    t.send(0, 1, Cycles(0), dataBytes);
    t.resetContention();
    Cycles a = t.send(0, 1, Cycles(0), dataBytes);
    EXPECT_EQ(a, serializationCycles(dataBytes, 3.0) +
                     t.unloadedOneWay(0, 1));
    EXPECT_EQ(t.bytesByType(LinkType::UPI), dataBytes);
}

TEST(Topology, BytesAccounting)
{
    Topology t(SystemConfig::starnuma16());
    t.send(0, t.poolNode(), Cycles(0), dataBytes);
    t.send(0, 15, Cycles(0), ctrlBytes);
    EXPECT_EQ(t.bytesByType(LinkType::CXL), dataBytes);
    EXPECT_EQ(t.bytesByType(LinkType::UPI), 2 * ctrlBytes);
    EXPECT_EQ(t.bytesByType(LinkType::NUMALink), ctrlBytes);
}

TEST(Topology, ThirtyTwoSocketVariant)
{
    Topology t(SystemConfig::starnuma32());
    EXPECT_EQ(t.sockets(), 32);
    EXPECT_EQ(t.nodes(), 33);
    EXPECT_EQ(t.countLinks(LinkType::CXL), 32);
    // 8 chassis -> 16 ASICs -> 16C2 = 120 NUMALinks.
    EXPECT_EQ(t.countLinks(LinkType::NUMALink), 120);
    // Pool behind a switch: 270 ns end-to-end.
    EXPECT_EQ(t.unloadedMemoryAccess(0, t.poolNode()),
              nsToCycles(270));
    // Inter-chassis latency unchanged by scale.
    EXPECT_EQ(t.unloadedMemoryAccess(0, 31), nsToCycles(360));
}

class AllPairsLatency : public ::testing::TestWithParam<int>
{
};

TEST_P(AllPairsLatency, EveryPairMatchesItsClass)
{
    Topology t(SystemConfig::starnuma16());
    NodeId src = GetParam();
    for (NodeId dst = 0; dst < t.nodes(); ++dst) {
        double expect_ns = 0;
        switch (t.classify(src, dst)) {
          case AccessClass::Local:  expect_ns = 80; break;
          case AccessClass::OneHop: expect_ns = 130; break;
          case AccessClass::TwoHop: expect_ns = 360; break;
          case AccessClass::Pool:   expect_ns = 180; break;
        }
        EXPECT_EQ(t.unloadedMemoryAccess(src, dst),
                  nsToCycles(expect_ns))
            << "src=" << src << " dst=" << dst;
    }
}

INSTANTIATE_TEST_SUITE_P(AllSockets, AllPairsLatency,
                         ::testing::Range(0, 16));

} // anonymous namespace
} // namespace topology
} // namespace starnuma
