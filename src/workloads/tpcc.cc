#include "workloads/tpcc.hh"

#include "sim/logging.hh"

namespace starnuma
{
namespace workloads
{

Tpcc::Tpcc(std::uint64_t rng_seed, int n_warehouses,
           int districts_per_wh, int customers_per_district,
           int n_items)
    : seed(rng_seed), warehouses(n_warehouses),
      districts(districts_per_wh),
      customers(customers_per_district), items(n_items)
{
}

int
Tpcc::homeWarehouse(ThreadId t) const
{
    return static_cast<int>(t) % warehouses;
}

void
Tpcc::setup(trace::CaptureContext &ctx, const SimScale &scale)
{
    threads = scale.threads();
    threadRng.clear();
    for (int t = 0; t < threads; ++t)
        threadRng.emplace_back(seed + 77 + t);

    std::size_t n_dist =
        static_cast<std::size_t>(warehouses) * districts;
    std::size_t n_cust = n_dist * customers;
    std::size_t n_stock =
        static_cast<std::size_t>(warehouses) * items;

    whTable.allocate(ctx, static_cast<Addr>(warehouses) * pageBytes);
    distTable.allocate(ctx,
                       static_cast<Addr>(warehouses) * pageBytes);
    custTable.allocate(ctx, n_cust * custRowBytes);
    stockTable.allocate(ctx, n_stock * rowBytes);
    itemTable.allocate(ctx, items * rowBytes);
    orderLines.allocate(ctx, n_dist * olRingPerDistrict * rowBytes);

    whYtd.assign(warehouses, 0.0);
    distNextOrder.assign(n_dist, 1);
    custBalance.assign(n_cust, -10.0);
    stockQty.assign(n_stock, 100);
    olCursor.assign(n_dist, 0);

    // Partitioned load: each thread populates its home warehouse's
    // rows (the standard NUMA-friendly loading pattern). Warehouse
    // and district rows are padded onto per-warehouse pages, like
    // Silo's per-partition heaps — without this every warehouse row
    // shares one page and the partitioned tables degrade into
    // artificial vagabonds. The read-only item catalog is loaded
    // once, by a middle thread.
    for (int t = 0; t < threads; ++t) {
        int wh = homeWarehouse(t);
        if (t >= warehouses)
            continue; // one loader per warehouse
        ctx.store(t, whTable.base() + wh * pageBytes);
        for (int d = 0; d < districts; ++d) {
            std::size_t did =
                static_cast<std::size_t>(wh) * districts + d;
            ctx.store(t, distTable.base() + wh * pageBytes +
                             d * rowBytes);
            for (int c = 0; c < customers; ++c)
                ctx.store(t, custTable.base() +
                                 (did * customers + c) *
                                     custRowBytes);
            for (std::size_t ol = 0; ol < olRingPerDistrict; ++ol)
                ctx.store(t, orderLines.base() +
                                 (did * olRingPerDistrict + ol) *
                                     rowBytes);
        }
        for (int i = 0; i < items; ++i)
            ctx.store(t, stockTable.base() +
                             (static_cast<std::size_t>(wh) * items +
                              i) * rowBytes);
    }
    ThreadId loader = threads / 2;
    for (int i = 0; i < items; ++i)
        ctx.store(loader, itemTable.base() + i * rowBytes);
}

void
Tpcc::newOrder(ThreadId t, trace::CaptureContext &ctx)
{
    Rng &rng = threadRng[t];
    int wh = homeWarehouse(t);
    int d = static_cast<int>(rng.range32(districts));
    std::size_t did = static_cast<std::size_t>(wh) * districts + d;

    // Read warehouse tax, read+write district next-order id.
    ctx.load(t, whTable.base() + wh * pageBytes);
    Addr dist_row = distTable.base() + wh * pageBytes + d * rowBytes;
    ctx.load(t, dist_row);
    std::uint32_t o_id = distNextOrder[did]++;
    ctx.store(t, dist_row);

    // Read the ordering customer.
    std::size_t cid = did * customers + rng.range32(customers);
    ctx.load(t, custTable.base() + cid * custRowBytes);
    ctx.instr(t, 24);

    int lines = 5 + static_cast<int>(rng.range32(11)); // 5..15
    for (int l = 0; l < lines; ++l) {
        // Popular-item skew: a small fraction of the catalog takes
        // most order lines (NURand-flavored).
        std::uint32_t item = rng.skewed(items, 2.0);
        ctx.load(t, itemTable.base() + item * rowBytes);

        // TPC-C: 1% of order lines come from a remote warehouse.
        int supply_wh = wh;
        if (warehouses > 1 && rng.chance(0.01)) {
            supply_wh = static_cast<int>(rng.range32(warehouses - 1));
            if (supply_wh >= wh)
                ++supply_wh;
        }
        std::size_t sid =
            static_cast<std::size_t>(supply_wh) * items + item;
        ctx.load(t, stockTable.base() + sid * rowBytes);
        stockQty[sid] -= 1 + static_cast<int>(rng.range32(10));
        if (stockQty[sid] < 10)
            stockQty[sid] += 91;
        ctx.store(t, stockTable.base() + sid * rowBytes);

        // Append the order line into the district's ring.
        std::size_t slot = did * olRingPerDistrict +
                           (olCursor[did]++ % olRingPerDistrict);
        ctx.store(t, orderLines.base() + slot * rowBytes);
        ctx.instr(t, 18);
    }
    (void)o_id;
    ++newOrders;
}

void
Tpcc::payment(ThreadId t, trace::CaptureContext &ctx)
{
    Rng &rng = threadRng[t];
    int wh = homeWarehouse(t);

    // TPC-C: 15% of payments are for a remote warehouse customer.
    int cust_wh = wh;
    if (warehouses > 1 && rng.chance(0.15)) {
        cust_wh = static_cast<int>(rng.range32(warehouses - 1));
        if (cust_wh >= wh)
            ++cust_wh;
    }
    int d = static_cast<int>(rng.range32(districts));
    std::size_t home_did =
        static_cast<std::size_t>(wh) * districts + d;
    std::size_t cust_did =
        static_cast<std::size_t>(cust_wh) * districts + d;
    std::size_t cid = cust_did * customers + rng.range32(customers);

    double amount = 1.0 + rng.uniform() * 4999.0;

    // Update home warehouse and district YTD (hot per-warehouse
    // rows), then the customer's balance (possibly remote).
    ctx.load(t, whTable.base() + wh * rowBytes);
    whYtd[wh] += amount;
    ctx.store(t, whTable.base() + wh * pageBytes);
    ctx.load(t, distTable.base() + home_did * rowBytes);
    ctx.store(t, distTable.base() + home_did * rowBytes);
    ctx.load(t, custTable.base() + cid * custRowBytes);
    custBalance[cid] -= amount;
    ctx.store(t, custTable.base() + cid * custRowBytes);
    ctx.instr(t, 30);
    ++payments;
}

void
Tpcc::step(ThreadId t, trace::CaptureContext &ctx)
{
    if (threadRng[t].chance(0.5))
        newOrder(t, ctx);
    else
        payment(t, ctx);
}

} // namespace workloads
} // namespace starnuma
