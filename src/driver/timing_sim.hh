/**
 * @file
 * Step C of the methodology (§IV-A3, §IV-B): per-phase, event-
 * driven timing simulation of the scaled-down 16-socket system.
 * Socket 0 is the "detailed" socket: its cores replay their traces
 * through a ROB-window core model whose execution rate responds to
 * memory latency. The remaining sockets are "light": their cores
 * inject their own traces at a rate regulated by the detailed
 * socket's measured IPC. Every socket has a shared LLC and a
 * detailed memory controller; an interconnect module applies
 * per-link fluid-queue contention; a distributed MESI directory
 * triggers 3-hop and 4-hop block transfers; in-flight page
 * migrations stall accesses to their pages and move page data over
 * the links (§IV-C).
 */

#ifndef STARNUMA_DRIVER_TIMING_SIM_HH
#define STARNUMA_DRIVER_TIMING_SIM_HH

#include "driver/metrics.hh"
#include "driver/system_setup.hh"
#include "driver/trace_sim.hh"
#include "sim/obs/timeseries.hh"
#include "sim/scale.hh"
#include "trace/trace.hh"

namespace starnuma
{
namespace driver
{

/** Variations of the timing run. */
struct TimingOptions
{
    /**
     * Simulate only the detailed socket's threads with every page
     * homed locally: the "single-socket execution with local
     * memory" reference of Table III.
     */
    bool singleSocketLocal = false;

    /**
     * Ablation of §III-D3: model conventional software TLB
     * shootdowns (an IPI + kernel handler on every core per
     * migrated page) instead of the DiDi-style hardware support.
     */
    bool softwareShootdowns = false;

    /**
     * Run each phase on its own machine state, concurrently when
     * the host has spare cores — the paper's literal "N parallel
     * timing simulations" (§IV-A3). Caches start cold each phase
     * (only the warmup window heats them); the default sequential
     * mode instead carries cache/directory state across phases.
     */
    bool independentPhases = false;
};

/** Core-model parameters (Table I, scaled per Table II). */
struct CoreModel
{
    /** Base CPI of non-stalled instructions (4-wide, with L1/L2
     *  effects folded in since the trace is filter-missing). */
    double baseCpi = 0.5;

    /** Reorder-buffer reach in instructions. */
    int robEntries = 256;

    /** Maximum outstanding LLC misses per core. */
    int mshrs = 8;

    /** Socket-LLC hit latency (30 cycles, Table I). */
    Cycles llcHitLatency{30};

    /**
     * LLC capacity per core. Table I specifies 2 MB/core; the
     * scaled-down timing windows are far too short to ever fill
     * that, so the default scales the LLC with the window the same
     * way Table II scales bandwidth with the core count.
     */
    Addr llcBytesPerCore = 512 * 1024;
};

/** The per-phase mixed-modality timing simulator. */
class TimingSim
{
  public:
    TimingSim(const SystemSetup &system_setup,
              const SimScale &sim_scale,
              TimingOptions options = {});

    /**
     * Simulate the detail window of every checkpoint phase and
     * aggregate (§IV-A3: statistics are aggregated across the
     * simulation of all checkpoints).
     */
    RunMetrics run(const trace::WorkloadTrace &trace,
                   const TraceSimResult &placement);

    /**
     * Detailed per-phase/per-component statistics (obs registry
     * snapshots taken during the last run()). Populated only while
     * the StatsSink is enabled; empty otherwise. Kept out of
     * RunMetrics so that stays trivially copyable (tests compare
     * runs by memcmp).
     */
    const obs::Snapshot &stats() const { return stats_; }

    /**
     * Per-epoch telemetry of the last run(): each phase's link
     * utilization and DRAM request-rate streams merged under a
     * "phaseNN." prefix in canonical phase order. Populated only
     * while the obs::TimeSeriesSink is enabled; empty otherwise.
     * Kept out of RunMetrics for the same reason as stats().
     */
    const obs::TimeSeries &timeseries() const { return timeseries_; }

  private:
    const SystemSetup &setup;
    SimScale scale;
    TimingOptions options;
    CoreModel core;
    obs::Snapshot stats_;
    obs::TimeSeries timeseries_;
};

} // namespace driver
} // namespace starnuma

#endif // STARNUMA_DRIVER_TIMING_SIM_HH
