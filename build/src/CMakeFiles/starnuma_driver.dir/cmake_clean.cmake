file(REMOVE_RECURSE
  "CMakeFiles/starnuma_driver.dir/driver/experiment.cc.o"
  "CMakeFiles/starnuma_driver.dir/driver/experiment.cc.o.d"
  "CMakeFiles/starnuma_driver.dir/driver/metrics.cc.o"
  "CMakeFiles/starnuma_driver.dir/driver/metrics.cc.o.d"
  "CMakeFiles/starnuma_driver.dir/driver/system_setup.cc.o"
  "CMakeFiles/starnuma_driver.dir/driver/system_setup.cc.o.d"
  "CMakeFiles/starnuma_driver.dir/driver/timing_sim.cc.o"
  "CMakeFiles/starnuma_driver.dir/driver/timing_sim.cc.o.d"
  "CMakeFiles/starnuma_driver.dir/driver/trace_sim.cc.o"
  "CMakeFiles/starnuma_driver.dir/driver/trace_sim.cc.o.d"
  "libstarnuma_driver.a"
  "libstarnuma_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starnuma_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
