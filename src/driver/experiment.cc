#include "driver/experiment.hh"

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

#include "sim/annotations.hh"
#include "sim/logging.hh"
#include "sim/sync.hh"
#include "sim/obs/audit.hh"
#include "sim/obs/obs.hh"
#include "sim/obs/timeseries.hh"
#include "sim/obs/trace_session.hh"
#include "workloads/workload.hh"

namespace starnuma
{
namespace driver
{

namespace
{

/**
 * One memo slot. The once_flag serializes the capture itself while
 * leaving the memo lock free, so concurrent misses on *different*
 * keys capture in parallel and concurrent misses on the *same* key
 * run exactly one capture with everyone sharing the result.
 */
struct TraceEntry
{
    std::once_flag once;
    trace::WorkloadTrace trace;
};

Mutex traceMemoMu;
std::map<std::pair<std::string, std::string>,
         std::shared_ptr<TraceEntry>> traceMemo
    STARNUMA_GUARDED_BY(traceMemoMu);
// Relaxed is load-bearing and sufficient: traceCaptures is a pure
// event counter — nothing is published through it, and the captured
// trace itself is handed to waiters by call_once's own
// synchronization. Readers (tests asserting one capture per key)
// observe it only after joining the work that incremented it, so a
// relaxed monotone count is exact by then.
std::atomic<std::uint64_t> traceCaptures{0};

} // anonymous namespace

// lint: artifact-root step_a_trace
const trace::WorkloadTrace &
workloadTrace(const std::string &name, const SimScale &scale)
{
    std::string scale_key =
        std::to_string(scale.threads()) + ":" +
        std::to_string(scale.phases) + ":" +
        std::to_string(scale.phaseInstructions);

    std::shared_ptr<TraceEntry> entry;
    {
        MutexLock lock(traceMemoMu);
        auto &slot = traceMemo[{name, scale_key}];
        if (!slot)
            slot = std::make_shared<TraceEntry>();
        entry = slot; // entries are never evicted: references stay valid
    }
    std::call_once(entry->once, [&] {
        obs::TraceSpan span(
            "capture " + name, "capture",
            obs::TraceArgs().add("workload", name).str());
        entry->trace = workloads::captureWorkload(name, scale);
        traceCaptures.fetch_add(1, std::memory_order_relaxed);
    });
    return entry->trace;
}

std::uint64_t
workloadTraceCaptures()
{
    return traceCaptures.load(std::memory_order_relaxed);
}

ExperimentResult
runExperiment(const std::string &workload, const SystemSetup &setup,
              const SimScale &scale)
{
    obs::TraceSpan exp_span(
        workload + " / " + setup.name, "experiment",
        obs::TraceArgs()
            .add("workload", workload)
            .add("setup", setup.name)
            .str());
    const trace::WorkloadTrace &trace = workloadTrace(workload, scale);

    TraceSim trace_sim(setup, scale);
    ExperimentResult result;
    {
        obs::TraceSpan span("trace-sim " + workload, "traceSim");
        result.placement = trace_sim.run(trace);
    }

    // §IV-A3 literally: one timing simulation per phase, fanned out
    // over the worker pool and merged in phase order.
    TimingOptions options;
    options.independentPhases = true;
    TimingSim timing(setup, scale, options);
    {
        obs::TraceSpan span("timing-sim " + workload, "timingSim");
        result.metrics = timing.run(trace, result.placement);
    }

    obs::StatsSink &sink = obs::StatsSink::global();
    if (sink.enabled()) {
        std::string prefix = workload + "." + setup.name + ".";
        sink.add(prefix + "summary.",
                 metricsSnapshot(result.metrics));
        sink.add(prefix + "timing.", timing.stats());
        sink.add(prefix + "traceSim.", result.placement.stats);
    }
    obs::TimeSeriesSink &ts_sink = obs::TimeSeriesSink::global();
    if (ts_sink.enabled()) {
        std::string prefix = workload + "." + setup.name + ".";
        ts_sink.add(prefix + "timing.", timing.timeseries());
        ts_sink.add(prefix + "traceSim.",
                    result.placement.timeseries);
    }
    obs::AuditSink &audit_sink = obs::AuditSink::global();
    if (audit_sink.enabled())
        audit_sink.add(workload + "." + setup.name,
                       result.placement.audit);
    return result;
}

RunMetrics
runSingleSocket(const std::string &workload, const SimScale &scale)
{
    obs::TraceSpan exp_span(
        workload + " / single-socket", "experiment",
        obs::TraceArgs().add("workload", workload).str());
    const trace::WorkloadTrace &trace = workloadTrace(workload, scale);

    SystemSetup setup = SystemSetup::baseline();
    TraceSim trace_sim(setup, scale);
    TraceSimResult placement = trace_sim.run(trace);

    TimingOptions options;
    options.singleSocketLocal = true;
    options.independentPhases = true;
    TimingSim timing(setup, scale, options);
    RunMetrics m = timing.run(trace, placement);

    obs::StatsSink &sink = obs::StatsSink::global();
    if (sink.enabled()) {
        std::string prefix = workload + ".single-socket.";
        sink.add(prefix + "summary.", metricsSnapshot(m));
        sink.add(prefix + "timing.", timing.stats());
    }
    obs::TimeSeriesSink &ts_sink = obs::TimeSeriesSink::global();
    if (ts_sink.enabled()) {
        std::string prefix = workload + ".single-socket.";
        ts_sink.add(prefix + "timing.", timing.timeseries());
        ts_sink.add(prefix + "traceSim.", placement.timeseries);
    }
    obs::AuditSink &audit_sink = obs::AuditSink::global();
    if (audit_sink.enabled())
        audit_sink.add(workload + ".single-socket",
                       placement.audit);
    return m;
}

} // namespace driver
} // namespace starnuma
