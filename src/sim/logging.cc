#include "sim/logging.hh"

#include <cstdio>
#include <cstdlib>

#include "sim/parallel.hh"

namespace starnuma
{

namespace
{

/**
 * Format the whole report into one buffer and hand it to stderr as
 * a single fprintf: interleaved level/message/newline writes from
 * concurrent pool workers would otherwise shred each other's lines.
 * Off-main-thread reports carry a [wN] worker prefix so a warning
 * printed mid-sweep can be attributed to its task.
 *
 * Deliberately lock-free (DESIGN.md §10): a mutex here would order
 * log lines by lock-acquisition schedule — nondeterministic and
 * able to deadlock from a panic inside a locked region. The
 * single-write design needs no guarded state, so there is nothing
 * for D7 to check; atomicity comes from POSIX stderr stream
 * locking on the one fputs call.
 */
void
vreport(const char *level, const char *fmt, va_list args)
{
    char msg[4096];
    std::vsnprintf(msg, sizeof(msg), fmt, args);
    char line[4352];
    int worker = ThreadPool::currentWorker();
    if (worker >= 0)
        std::snprintf(line, sizeof(line), "%s: [w%d] %s\n", level,
                      worker, msg);
    else
        std::snprintf(line, sizeof(line), "%s: %s\n", level, msg);
    std::fputs(line, stderr);
}

} // anonymous namespace

void
inform(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("info", fmt, args);
    va_end(args);
}

void
warn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("warn", fmt, args);
    va_end(args);
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("fatal", fmt, args);
    va_end(args);
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("panic", fmt, args);
    va_end(args);
    std::abort();
}

void
panicAssert(const char *cond, const char *fmt, ...)
{
    char msg[4096];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(msg, sizeof(msg), fmt, args);
    va_end(args);
    char line[4608];
    std::snprintf(line, sizeof(line),
                  "panic: assertion '%s' failed: %s\n", cond, msg);
    std::fputs(line, stderr);
    std::abort();
}

} // namespace starnuma
