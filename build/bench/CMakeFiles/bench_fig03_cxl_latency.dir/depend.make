# Empty dependencies file for bench_fig03_cxl_latency.
# This may be replaced when dependencies are built.
