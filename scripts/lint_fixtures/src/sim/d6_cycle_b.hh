// Fixture: D6 — the other half of the include cycle with
// d6_cycle_a.hh. The cycle is reported once, anchored at
// d6_cycle_a.hh, so no finding is expected in this file.

#ifndef STARNUMA_SIM_D6_CYCLE_B_HH
#define STARNUMA_SIM_D6_CYCLE_B_HH

#include "sim/d6_cycle_a.hh"

namespace fixture
{

struct CycleB
{
    int placeholder = 0;
};

} // namespace fixture

#endif // STARNUMA_SIM_D6_CYCLE_B_HH
