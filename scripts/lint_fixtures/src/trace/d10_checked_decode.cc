// Fixture: D10 decoder bounds — clean. All cursor movement goes
// through a ByteReader (whose own internals are the exempt trusted
// kernel); the one raw access is annotated with a reason.

#include <cstdint>

namespace starnuma
{
namespace trace
{

class ByteReader
{
  public:
    ByteReader(const std::uint8_t *data, std::size_t n)
        : cur(data), end(data + n)
    {
    }

    // lint: raw-read fixture: ByteReader internals are the trusted kernel
    bool
    getU8(std::uint8_t &out)
    {
        if (cur == end)
            return false;
        out = *cur;
        ++cur;
        return true;
    }

  private:
    const std::uint8_t *cur;
    const std::uint8_t *end;
};

bool
fixtureDecodeChecked(ByteReader &r, std::uint8_t &out)
{
    return r.getU8(out);
}

std::uint64_t
fixtureReadAnnotatedTotal(const std::uint8_t *buf, std::size_t n)
{
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < n; ++i)
        // lint: raw-read fixture: summing an owned buffer in place
        total += buf[i];
    return total;
}

} // namespace trace
} // namespace starnuma
