# Empty dependencies file for bench_scale32.
# This may be replaced when dependencies are built.
