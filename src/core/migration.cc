#include "core/migration.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/obs/audit.hh"
#include "sim/obs/registry.hh"
#include "sim/obs/trace_session.hh"

namespace starnuma
{
namespace core
{

MigrationEngine::MigrationEngine(const MigrationConfig &config,
                                 int n_sockets, bool has_pool,
                                 Addr region_bytes,
                                 std::uint64_t seed)
    : cfg(config), sockets(n_sockets), hasPool(has_pool),
      poolNode(n_sockets), regionBytes(region_bytes),
      pagesPerRegion(starnuma::pagesPerRegion(region_bytes)),
      rng(seed), hi(config.hiThresholdStart),
      lo(config.loThresholdStart), migrated_(0), toPool_(0),
      victims_(0), suppressed_(0)
{
    sn_assert(region_bytes % pageBytes == 0,
              "region size must be page aligned");
}

NodeId
MigrationEngine::currentLocation(RegionId region,
                                 const mem::PageMap &pages) const
{
    PageNum first = regionFirstPage(region, regionBytes);
    for (int p = 0; p < pagesPerRegion; ++p) {
        NodeId home = pages.home(first + PageNum(p));
        if (home != mem::invalidNode)
            return home;
    }
    return mem::invalidNode;
}

void
MigrationEngine::moveRegion(RegionId region, NodeId to,
                            mem::PageMap &pages)
{
    PageNum first = regionFirstPage(region, regionBytes);
    for (int p = 0; p < pagesPerRegion; ++p)
        if (pages.home(first + PageNum(p)) != mem::invalidNode)
            pages.setHome(first + PageNum(p), to);
}

NodeId
MigrationEngine::randomSharer(const TrackerEntry &e)
{
    int n = e.sharerCount();
    if (n == 0)
        return static_cast<NodeId>(rng.range32(sockets));
    int pick = static_cast<int>(rng.range32(n));
    for (NodeId s = 0; s < sockets; ++s) {
        if (e.sharerMask & (1ULL << s)) {
            if (pick == 0)
                return s;
            --pick;
        }
    }
    panic("sharer mask/popcount mismatch");
}

bool
MigrationEngine::pingPonging(RegionId region, int phase) const
{
    // "A region is ping-ponging if it has migrated more than a
    // quarter of the current phase number" (Algorithm 1 footnote).
    auto it = migrationCounts.find(region);
    if (it == migrationCounts.end())
        return false;
    return it->second * 4 > phase;
}

// lint: cold-path Algorithm 1 runs once per migration phase
std::vector<RegionMigration>
MigrationEngine::decidePhase(RegionTracker &tracker,
                             mem::PageMap &pages,
                             std::uint64_t pool_capacity_pages,
                             int phase)
{
    sn_assert(tracker.regionBytes() == regionBytes,
              "tracker/engine region size mismatch");

    // Snapshot the touched regions. Algorithm 1 performs a single
    // unsorted pass and relies on the adaptive HI threshold (over
    // many phases) to keep the candidate set near the migration
    // limit. Our scaled runs have few phases, so for T_i (i > 0) we
    // take candidates hottest-first, which the threshold adaptation
    // would converge to; T_0 has no counts and keeps id order.
    std::vector<std::pair<RegionId, TrackerEntry>> touched_sorted;
    touched_sorted.reserve(tracker.touchedRegions());
    tracker.scanAndReset([&](RegionId r, const TrackerEntry &e) {
        touched_sorted.emplace_back(r, e);
    });
    if (cfg.counterBits > 0) {
        std::sort(touched_sorted.begin(), touched_sorted.end(),
                  [](const auto &a, const auto &b) {
                      if (a.second.accesses != b.second.accesses)
                          return a.second.accesses >
                                 b.second.accesses;
                      return a.first < b.first;
                  });
    } else {
        std::sort(touched_sorted.begin(), touched_sorted.end(),
                  [](const auto &a, const auto &b) {
                      return a.first < b.first;
                  });
    }

    // Phase snapshot for victim lookups (the live tracker was just
    // reset; untouched regions read as zero -> always cold).
    FlatMap<RegionId, TrackerEntry> snapshot;
    snapshot.reserve(touched_sorted.size());
    for (const auto &[r, e] : touched_sorted)
        snapshot.emplace(r, e);
    auto phaseEntry = [&](RegionId r) -> TrackerEntry {
        auto it = snapshot.find(r);
        return it == snapshot.end() ? TrackerEntry{} : it->second;
    };

    auto isCandidate = [&](const TrackerEntry &e) {
        if (cfg.counterBits == 0) {
            // T0: fixed criterion — touched by all sockets.
            return e.sharerCount() >= sockets;
        }
        return e.accesses >= hi;
    };

    std::size_t candidates = 0;
    for (const auto &[r, e] : touched_sorted)
        candidates += isCandidate(e);

    std::vector<RegionMigration> plan;
    std::uint64_t moved_pages = 0;

    // One record per Algorithm-1 decision, fanned into the two
    // observability channels: an instant trace event (wall-clock
    // channel, the original five branches) and a structured
    // obs::AuditRecord (deterministic channel, every branch).
    // Guarded so an unobserved run pays two relaxed loads per
    // phase.
    obs::TraceSession &trace = obs::TraceSession::global();
    const bool tracing = trace.enabled();
    const bool auditing = obs::AuditSink::global().enabled();
    auto record = [&](obs::AuditBranch branch, RegionId region,
                      const TrackerEntry &e, NodeId from,
                      NodeId to, bool traced) {
        if (tracing && traced) {
            trace.instantNow(
                "migration", "migration",
                obs::TraceArgs()
                    .add("branch",
                         std::string(obs::auditBranchName(branch)))
                    .add("region",
                         static_cast<std::uint64_t>(region))
                    .add("page",
                         regionFirstPage(region, regionBytes)
                             .value())
                    .add("sharers", e.sharerCount())
                    .add("accesses",
                         static_cast<std::uint64_t>(e.accesses))
                    .add("from", static_cast<int>(from))
                    .add("to", static_cast<int>(to))
                    .add("phase", phase)
                    .str());
        }
        if (!auditing)
            return;
        obs::AuditRecord r;
        r.phase = static_cast<std::uint32_t>(phase);
        r.branch = branch;
        r.region = region;
        r.page = regionFirstPage(region, regionBytes).value();
        r.sharers =
            static_cast<std::uint32_t>(e.sharerCount());
        r.accesses = e.accesses;
        r.hiThreshold = hi;
        r.loThreshold = lo;
        r.candidates = static_cast<std::uint32_t>(candidates);
        r.from = static_cast<std::int32_t>(from);
        r.to = static_cast<std::int32_t>(to);
        audit_.append(r);
    };

    for (const auto &[region, e] : touched_sorted) {
        if (moved_pages >= cfg.migrationLimitPages)
            break;
        if (!isCandidate(e))
            continue;

        NodeId curr = currentLocation(region, pages);
        if (curr == mem::invalidNode)
            continue;

        NodeId best;
        if (hasPool && cfg.poolEnabled &&
            e.sharerCount() >= cfg.poolSharerThreshold) {
            best = poolNode;
        } else if (!cfg.randomSharerReshuffle && curr != poolNode &&
                   curr < 64 && (e.sharerMask & (1ULL << curr))) {
            // Already placed at a sharer: no socket-to-socket move.
            record(obs::AuditBranch::AlreadyPlaced, region, e, curr,
                   curr, false);
            continue;
        } else {
            best = randomSharer(e);
        }
        if (best == curr) {
            record(obs::AuditBranch::SamePlacement, region, e, curr,
                   best, false);
            continue;
        }
        if (pingPonging(region, phase)) {
            ++suppressed_;
            record(obs::AuditBranch::PingPongSuppressed, region, e,
                   curr, best, true);
            continue;
        }

        if (best == poolNode) {
            // Evict cold pool regions until the incoming region
            // fits (regions can have fewer mapped pages than their
            // nominal size, so one-in-one-out is not enough).
            bool room = true;
            while (pages.pagesAt(poolNode) + pagesPerRegion >
                   pool_capacity_pages) {
                // Victim choice: the lowest-numbered cold resident
                // (a commutative min-reduction, so it would be
                // order-safe even without FlatSet's deterministic
                // iteration order).
                RegionId victim = 0;
                bool found = false;
                for (RegionId pr : poolResidents) {
                    if (phaseEntry(pr).accesses <= lo &&
                        (!found || pr < victim)) {
                        victim = pr;
                        found = true;
                    }
                }
                if (!found) {
                    // No cold victim: back off and raise LO so the
                    // next phase can find one.
                    lo = std::min(lo * 2, cfg.loThresholdMax);
                    room = false;
                    record(obs::AuditBranch::NoRoomBackoff, region,
                           e, curr, poolNode, true);
                    break;
                }
                NodeId victim_dest = randomSharer(phaseEntry(victim));
                moveRegion(victim, victim_dest, pages);
                poolResidents.erase(victim);
                ++migrationCounts[victim];
                ++victims_;
                plan.push_back(
                    {victim, poolNode, victim_dest, true});
                moved_pages += pagesPerRegion;
                record(obs::AuditBranch::VictimEviction, victim,
                       phaseEntry(victim), poolNode, victim_dest,
                       true);
            }
            if (!room)
                continue;
        }

        moveRegion(region, best, pages);
        if (best == poolNode) {
            poolResidents.insert(region);
            ++toPool_;
        } else {
            poolResidents.erase(region);
        }
        ++migrationCounts[region];
        ++migrated_;
        plan.push_back({region, curr, best, false});
        moved_pages += pagesPerRegion;
        record(best == poolNode ? obs::AuditBranch::ToPool
                                : obs::AuditBranch::ToSharer,
               region, e, curr, best, true);
    }

    // Adapt the HI threshold to keep the candidate count near the
    // migration limit (T16 only; T0 uses its fixed criterion).
    if (cfg.counterBits > 0) {
        std::uint64_t limit_regions = std::max<std::uint64_t>(
            1, cfg.migrationLimitPages / pagesPerRegion);
        if (candidates > 2 * limit_regions)
            hi = std::min(hi * 2, cfg.hiThresholdMax);
        else if (candidates < limit_regions / 2)
            hi = std::max(hi / 2, cfg.hiThresholdMin);
    }

    return plan;
}

void
MigrationEngine::saveState(std::vector<std::uint8_t> &out) const
{
    putVarint(out, hi);
    putVarint(out, lo);
    putVarint(out, rng.rawState());
    putVarint(out, rng.rawInc());
    putVarint(out, migrated_);
    putVarint(out, toPool_);
    putVarint(out, victims_);
    putVarint(out, suppressed_);
    putVarint(out, migrationCounts.size());
    for (const auto &[region, count] : migrationCounts) {
        putVarint(out, region);
        putVarint(out, static_cast<std::uint64_t>(count));
    }
    putVarint(out, poolResidents.size());
    for (RegionId region : poolResidents)
        putVarint(out, region);
}

bool
MigrationEngine::loadState(ByteReader &r)
{
    if (!migrationCounts.empty() || !poolResidents.empty() ||
        migrated_ != 0)
        return false;
    std::uint64_t v_hi = 0, v_lo = 0, rng_state = 0, rng_inc = 0;
    if (!r.getVarint(v_hi) || !r.getVarint(v_lo) ||
        !r.getVarint(rng_state) || !r.getVarint(rng_inc) ||
        !r.getVarint(migrated_) || !r.getVarint(toPool_) ||
        !r.getVarint(victims_) || !r.getVarint(suppressed_))
        return false;
    std::uint64_t n = 0;
    if (!r.getVarint(n) || n > r.remaining())
        return false;
    for (std::uint64_t i = 0; i < n; ++i) {
        std::uint64_t region = 0, count = 0;
        if (!r.getVarint(region) || !r.getVarint(count))
            return false;
        if (!migrationCounts
                 .try_emplace(static_cast<RegionId>(region),
                              static_cast<int>(count))
                 .second)
            return false;
    }
    if (!r.getVarint(n) || n > r.remaining())
        return false;
    for (std::uint64_t i = 0; i < n; ++i) {
        std::uint64_t region = 0;
        if (!r.getVarint(region))
            return false;
        if (!poolResidents.insert(static_cast<RegionId>(region))
                 .second)
            return false;
    }
    hi = static_cast<std::uint32_t>(v_hi);
    lo = static_cast<std::uint32_t>(v_lo);
    rng.restoreRaw(rng_state, rng_inc);
    return true;
}

double
MigrationEngine::poolMigrationFraction() const
{
    return migrated_ ? static_cast<double>(toPool_) / static_cast<double>(migrated_)
                     : 0.0;
}

// lint: cold-path stats export, once per run when observing
void
MigrationEngine::registerStats(obs::Registry &r,
                               const std::string &prefix) const
{
    r.addCounter(prefix + ".migratedRegions", &migrated_);
    r.addCounter(prefix + ".migratedToPool", &toPool_);
    r.addCounter(prefix + ".victimEvictions", &victims_);
    r.addCounter(prefix + ".pingPongSuppressed", &suppressed_);
    r.addGaugeFn(prefix + ".poolMigrationFraction",
                 [this] { return poolMigrationFraction(); });
    r.addCounterFn(prefix + ".poolRegions",
                   [this] { return poolRegions(); });
    r.addCounterFn(prefix + ".hiThreshold",
                   [this] { return std::uint64_t(hi); });
    r.addCounterFn(prefix + ".loThreshold",
                   [this] { return std::uint64_t(lo); });
}

} // namespace core
} // namespace starnuma
