#include "trace/capture.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace starnuma
{
namespace trace
{

CaptureContext::CaptureContext(int threads, mem::CacheConfig filter)
    : nextAddr(baseAddr), inSetup(false)
{
    sn_assert(threads > 0, "capture needs at least one thread");
    state.reserve(threads);
    for (int t = 0; t < threads; ++t)
        state.emplace_back(filter);
}

Addr
CaptureContext::alloc(Addr bytes)
{
    Addr base = nextAddr;
    nextAddr += pagesCovering(bytes) * pageBytes;
    return base;
}

void
CaptureContext::access(ThreadId t, Addr vaddr, bool write)
{
    sn_assert(t >= 0 && static_cast<std::size_t>(t) < state.size(),
              "access by unknown thread %d", t);
    PageNum page = pageNumber(vaddr);
    if (inSetup) {
        // Setup accesses are untimed; writes seed first touch.
        if (write && touched.try_emplace(page, t).second)
            firstTouches.push_back({page, t});
        return;
    }
    ThreadState &ts = state[t];
    ++ts.instructions; // the memory op is an instruction too
    if (write)
        written.insert(page);
    if (!ts.filter.access(vaddr, write).hit)
        ts.records.emplace_back(ts.instructions, vaddr, write);
}

std::uint64_t
CaptureContext::minInstructions() const
{
    std::uint64_t lo = ~std::uint64_t(0);
    for (const auto &ts : state)
        lo = std::min(lo, ts.instructions);
    return lo;
}

WorkloadTrace
CaptureContext::take(const std::string &workload,
                     std::uint64_t instructions_per_thread)
{
    WorkloadTrace t;
    t.workload = workload;
    t.threads = threads();
    t.instructionsPerThread = instructions_per_thread;
    t.footprintBytes = footprint();
    if (nextAddr > baseAddr) {
        // The bump allocator spans one contiguous page range;
        // every access and first touch falls inside it.
        t.minPage = pageNumber(baseAddr);
        t.maxPage = pageNumber(nextAddr - 1);
    }
    t.firstTouches = std::move(firstTouches);
    // Sorted so captured traces are byte-identical across runs
    // (the set's hash order is not).
    t.writtenPages.assign(written.begin(), written.end());
    std::sort(t.writtenPages.begin(), t.writtenPages.end());
    t.perThread.reserve(state.size());
    for (auto &ts : state)
        t.perThread.push_back(std::move(ts.records));
    return t;
}

} // namespace trace
} // namespace starnuma
