#!/bin/sh
# Smoke-test the observability pipeline end to end: build, run one
# traced fast-mode experiment sweep (the Fig. 8 bench), and assert
# that every artifact exists and parses —
#   stats.json       deterministic stats snapshot
#                    (STARNUMA_STATS_OUT)
#   trace.json       Chrome trace with phase duration events,
#                    migration instants, and link-utilization
#                    counters (STARNUMA_TRACE_OUT)
#   timeseries.json  deterministic per-epoch metric streams
#                    (STARNUMA_TIMESERIES_OUT)
#   audit.csv        Algorithm-1 migration decision log
#                    (STARNUMA_AUDIT_OUT)
#   report.txt       the joined run-explain report
#                    (scripts/starnuma_report.py)
# Artifacts land in ${STARNUMA_OBS_DIR:-obs_out}/.
set -e
cd "$(dirname "$0")/.."

if [ ! -d build ]; then
    cmake -B build -G Ninja
fi
cmake --build build --target bench_fig08_main_results

out=${STARNUMA_OBS_DIR:-obs_out}
mkdir -p "$out"

STARNUMA_BENCH_FAST=1 \
STARNUMA_STATS_OUT="$out/stats.json" \
STARNUMA_TRACE_OUT="$out/trace.json" \
STARNUMA_TIMESERIES_OUT="$out/timeseries.json" \
STARNUMA_AUDIT_OUT="$out/audit.csv" \
    ./build/bench/bench_fig08_main_results >/dev/null

python3 - "$out/stats.json" "$out/trace.json" \
    "$out/timeseries.json" "$out/audit.csv" <<'EOF'
import csv
import json
import sys

stats_path, trace_path, ts_path, audit_path = sys.argv[1:5]
stats = json.load(open(stats_path))
assert stats, "stats snapshot is empty"

trace = json.load(open(trace_path))["traceEvents"]
for e in trace:
    assert "ph" in e and "pid" in e and "name" in e, e
phases = {e["ph"] for e in trace}
assert "X" in phases, "no duration events"
migrations = [e for e in trace
              if e["ph"] == "i" and e["name"] == "migration"]
assert migrations, "no migration instant events"
link = [e for e in trace
        if e["ph"] == "C" and e["name"].endswith(".linkUtil")]
assert link, "no link-utilization counters"

series = json.load(open(ts_path))
assert series, "time series export is empty"
for key, col in series.items():
    assert set(col) == {"t", "v"}, (key, col.keys())
    assert len(col["t"]) == len(col["v"]), key
timing = [k for k in series if ".timing.phase" in k]
replay = [k for k in series if ".traceSim." in k]
assert timing, "no timing-side (per-epoch) streams"
assert replay, "no replay-side (per-phase) streams"

with open(audit_path) as fh:
    audit = list(csv.DictReader(fh))
assert audit, "audit log is empty"
branches = {r["branch"] for r in audit}
for r in audit:
    assert r["run"] and r["reason"], r
assert branches & {"toPool", "toSharer"}, branches

print("observability OK: %d stats, %d trace events "
      "(%d migration instants, %d link-util samples), "
      "%d streams, %d audit records (%d branches)"
      % (len(stats), len(trace), len(migrations), len(link),
         len(series), len(audit), len(branches)))
EOF

python3 scripts/starnuma_report.py \
    --stats "$out/stats.json" \
    --timeseries "$out/timeseries.json" \
    --audit "$out/audit.csv" \
    -o "$out/report.txt"
python3 - "$out/report.txt" <<'EOF'
import sys

report = open(sys.argv[1]).read()
assert "Phases:" in report, "report lacks a phase table"
assert "Decision branches" in report, "report lacks decisions"
assert "Top migrated pages" in report, "report lacks page ranking"
assert "vs base" in report, "report lacks baseline attribution"
print("report OK: %d lines" % len(report.splitlines()))
EOF
echo "artifacts in $out/"
