/**
 * @file
 * Fig 12 reproduction: memory pool capacity sensitivity. The
 * default pool holds one chassis' worth of memory (1/5 of the
 * footprint); the variant holds a single socket's (1/17). Paper: a
 * 4x capacity cut barely moves the average (1.54x -> 1.48x) — a
 * high fraction of remote accesses targets a small set of hot
 * pages that still fit — with FMI the most affected workload.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"
#include "sim/stats.hh"
#include "sim/table.hh"

using namespace starnuma;
using benchutil::benchScale;
using benchutil::cachedRun;

namespace
{

void
BM_Fig12_Workload(benchmark::State &state,
                  const std::string &workload)
{
    SimScale scale = benchScale();
    for (auto _ : state)
        benchmark::DoNotOptimize(benchutil::speedupOverBaseline(
            workload, driver::SystemSetup::starnumaSmallPool(),
            scale));
    state.counters["pool_1_5"] = benchutil::speedupOverBaseline(
        workload, driver::SystemSetup::starnuma(), scale);
    state.counters["pool_1_17"] = benchutil::speedupOverBaseline(
        workload, driver::SystemSetup::starnumaSmallPool(), scale);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    benchutil::initBench(&argc, argv);
    for (const auto &w : benchutil::benchWorkloads())
        benchmark::RegisterBenchmark(("Fig12/" + w).c_str(),
                                     BM_Fig12_Workload, w)
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    int rc = benchutil::runBenchmarks(argc, argv);

    SimScale scale = benchScale();
    TextTable t({"workload", "pool = 1/5 footprint",
                 "pool = 1/17 footprint", "pool pages (1/17)"});
    std::vector<double> big, small;
    for (const auto &w : benchutil::benchWorkloads()) {
        double b = benchutil::speedupOverBaseline(
            w, driver::SystemSetup::starnuma(), scale);
        double s = benchutil::speedupOverBaseline(
            w, driver::SystemSetup::starnumaSmallPool(), scale);
        big.push_back(b);
        small.push_back(s);
        const auto &p =
            cachedRun(w, driver::SystemSetup::starnumaSmallPool(),
                      scale)
                .placement;
        t.addRow({w, TextTable::num(b, 2) + "x",
                  TextTable::num(s, 2) + "x",
                  std::to_string(p.pagesInPool) + "/" +
                      std::to_string(p.poolCapacityPages)});
    }
    t.addRow({"geomean", TextTable::num(stats::geomean(big), 2) +
                             "x",
              TextTable::num(stats::geomean(small), 2) + "x", ""});
    benchutil::printSection(
        "Fig 12: speedup vs pool capacity (paper: 1.54x -> 1.48x)",
        t.str());
    return rc;
}
