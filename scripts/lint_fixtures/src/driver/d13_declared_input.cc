// Fixture: D13 clean artifact path. The artifact-root functions
// read only declared inputs: a reviewed env read carries the
// `// lint: declared-input` escape, and the STARNUMA_* gate line is
// recorded in the artifact input manifest rather than flagged.
// Must stay clean. Never compiled; consumed by starnuma_taint.py
// --self-test.

namespace starnuma
{

int
d13FixtureLimit()
{
    // lint: declared-input fixture: documented replay knob
    const char *v = getenv("FIXTURE_REPLAY_LIMIT");
    return v != nullptr ? 2 : 8;
}

int
d13GateDir()
{
    const char *v = getenv("STARNUMA_FIXTURE_DIR");
    return v != nullptr ? 1 : 0;
}

// lint: artifact-root fixture_clean_blob
// lint: cold-path fixture scaffolding
void
d13WriteCleanBlob()
{
    int limit = d13FixtureLimit();
    int dir = d13GateDir();
    (void)limit;
    (void)dir;
}

} // namespace starnuma
