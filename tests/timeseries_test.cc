/**
 * @file
 * Time-series telemetry and migration audit log tests (DESIGN.md
 * §14): columnar TimeSeries storage and lastValue single-sourcing,
 * CSV/JSON export goldens, duplicate/malformed stream-path panics,
 * AuditLog serialization (branch vocabulary, CSV/JSON framing), and
 * the sink byte-stability guarantee — both deterministic artifacts
 * are byte-identical for thread-pool sizes 1/4/8.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "driver/experiment.hh"
#include "sim/obs/audit.hh"
#include "sim/obs/timeseries.hh"
#include "sim/parallel.hh"

namespace starnuma
{
namespace
{

// --- TimeSeries storage ---

TEST(TimeSeries, SampleAndLastValue)
{
    obs::TimeSeries ts;
    EXPECT_TRUE(ts.empty());
    obs::TimeSeries::StreamId a = ts.addStream("link.util", 4);
    obs::TimeSeries::StreamId b = ts.addStream("dram.requests");
    EXPECT_EQ(ts.streams(), 2u);
    EXPECT_DOUBLE_EQ(ts.lastValue(a), 0.0);

    ts.sample(a, 2000, 0.25);
    ts.sample(a, 22000, 0.5);
    ts.sample(b, 2000, 17.0);
    EXPECT_FALSE(ts.empty());
    EXPECT_EQ(ts.samples(a), 2u);
    EXPECT_EQ(ts.samples(b), 1u);
    // lastValue is the single source the trace counters re-emit
    // from (satellite: trace and export can never drift).
    EXPECT_DOUBLE_EQ(ts.lastValue(a), 0.5);
    EXPECT_DOUBLE_EQ(ts.lastValue(b), 17.0);

    // Sampling past the reserved capacity regrows, never drops.
    for (std::uint64_t i = 0; i < 64; ++i)
        ts.sample(a, 42000 + i, 1.0);
    EXPECT_EQ(ts.samples(a), 66u);
}

TEST(TimeSeries, CsvGoldenSortedByPath)
{
    obs::TimeSeries ts;
    obs::TimeSeries::StreamId z = ts.addStream("z.late");
    obs::TimeSeries::StreamId a = ts.addStream("a.early");
    ts.sample(z, 1, 2.0);
    ts.sample(a, 1, 0.5);
    ts.sample(a, 2, 3.0);
    // Streams sort lexicographically regardless of registration
    // order; whole numbers print without a fraction.
    EXPECT_EQ(ts.csv(),
              "stream,t,value\n"
              "a.early,1,0.5\n"
              "a.early,2,3\n"
              "z.late,1,2\n");
}

TEST(TimeSeries, JsonGoldenColumnArrays)
{
    obs::TimeSeries ts;
    EXPECT_EQ(ts.json(), "{}\n");
    obs::TimeSeries::StreamId a = ts.addStream("a.b");
    ts.sample(a, 2000, 0.25);
    ts.sample(a, 22000, 4.0);
    EXPECT_EQ(ts.json(),
              "{\n"
              "  \"a.b\": {\"t\": [2000,22000], "
              "\"v\": [0.25,4]}\n"
              "}\n");
}

TEST(TimeSeries, MergePrefixesStreams)
{
    obs::TimeSeries inner;
    obs::TimeSeries::StreamId s = inner.addStream("dram.requests");
    inner.sample(s, 2000, 9.0);

    obs::TimeSeries outer;
    outer.merge("bfs.starnuma.timing.", inner);
    EXPECT_EQ(outer.streams(), 1u);
    EXPECT_EQ(outer.csv(),
              "stream,t,value\n"
              "bfs.starnuma.timing.dram.requests,2000,9\n");
}

TEST(TimeSeriesDeathTest, DuplicateStreamPathPanics)
{
    obs::TimeSeries ts;
    ts.addStream("a.b");
    EXPECT_DEATH(ts.addStream("a.b"), "assertion");
}

TEST(TimeSeriesDeathTest, MalformedStreamPathPanics)
{
    obs::TimeSeries ts;
    EXPECT_DEATH(ts.addStream("bad path"), "assertion");
}

// --- AuditLog serialization ---

TEST(AuditLog, BranchVocabularyMatchesTraceNames)
{
    // The names are shared vocabulary with the Chrome-trace
    // migration instants and scripts/starnuma_report.py; renaming
    // one breaks the report's branch histograms.
    EXPECT_STREQ(obs::auditBranchName(obs::AuditBranch::ToPool),
                 "toPool");
    EXPECT_STREQ(obs::auditBranchName(obs::AuditBranch::ToSharer),
                 "toSharer");
    EXPECT_STREQ(
        obs::auditBranchName(obs::AuditBranch::VictimEviction),
        "victimEviction");
    EXPECT_STREQ(
        obs::auditBranchName(obs::AuditBranch::PingPongSuppressed),
        "pingPongSuppressed");
    EXPECT_STREQ(
        obs::auditBranchName(obs::AuditBranch::NoRoomBackoff),
        "noRoomBackoff");
    EXPECT_STREQ(
        obs::auditBranchName(obs::AuditBranch::AlreadyPlaced),
        "alreadyPlaced");
    EXPECT_STREQ(
        obs::auditBranchName(obs::AuditBranch::SamePlacement),
        "samePlacement");
    EXPECT_STRNE(
        obs::auditBranchReason(obs::AuditBranch::VictimEviction),
        "");
}

TEST(AuditLog, CsvRowsGolden)
{
    obs::AuditRecord r;
    r.phase = 3;
    r.branch = obs::AuditBranch::ToPool;
    r.region = 7;
    r.page = 448;
    r.sharers = 4;
    r.accesses = 90;
    r.hiThreshold = 64;
    r.loThreshold = 8;
    r.candidates = 12;
    r.from = 1;
    r.to = 4;

    obs::AuditLog log;
    EXPECT_TRUE(log.empty());
    log.append(r);
    EXPECT_EQ(log.size(), 1u);
    EXPECT_EQ(log.csvRows("bfs.starnuma"),
              "bfs.starnuma,0,3,toPool,7,448,4,90,64,8,12,1,4,"
              "\"sharers reached the pool threshold\"\n");
    std::string json = log.jsonArray();
    EXPECT_NE(json.find("\"branch\": \"toPool\""),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("\"candidates\": 12"), std::string::npos)
        << json;
}

// --- sink byte-stability across pool sizes ---

TEST(TimeSeriesSink, DisabledByDefaultAndDropsWhenStopped)
{
    obs::TimeSeriesSink &sink = obs::TimeSeriesSink::global();
    ASSERT_FALSE(sink.enabled());

    obs::TimeSeries ts;
    obs::TimeSeries::StreamId s = ts.addStream("a.b");
    ts.sample(s, 1, 1.0);
    sink.add("pre.", ts); // disabled: no-op
    EXPECT_TRUE(sink.collect().empty());

    sink.start("");
    sink.add("on.", ts);
    EXPECT_EQ(sink.collect().streams(), 1u);
    sink.stop();
    EXPECT_FALSE(sink.enabled());
    EXPECT_TRUE(sink.collect().empty());
}

TEST(TimeSeriesSink, ArtifactsByteIdenticalAcrossPoolSizes)
{
    SimScale s = SimScale::tiny();
    obs::TimeSeriesSink &ts_sink = obs::TimeSeriesSink::global();
    obs::AuditSink &audit_sink = obs::AuditSink::global();

    struct Artifacts
    {
        std::string series;
        std::string audit;
    };
    auto run_collect = [&](int pool_size) {
        ThreadPool::setGlobalThreads(pool_size);
        ts_sink.start("");
        audit_sink.start("");
        driver::runExperiment(
            "bfs", driver::SystemSetup::starnuma(), s);
        Artifacts a{ts_sink.collect().json(),
                    audit_sink.collectCsv()};
        ts_sink.stop();
        audit_sink.stop();
        return a;
    };

    Artifacts serial = run_collect(1);
    EXPECT_GT(serial.series.size(), 3u);
    EXPECT_NE(serial.audit.find("toPool"), std::string::npos);
    for (int pool_size : {4, 8}) {
        SCOPED_TRACE("pool=" + std::to_string(pool_size));
        Artifacts a = run_collect(pool_size);
        EXPECT_EQ(a.series, serial.series);
        EXPECT_EQ(a.audit, serial.audit);
    }
    ThreadPool::setGlobalThreads(0);
}

} // namespace
} // namespace starnuma
