/**
 * @file
 * Hardware parameters of a (baseline or StarNUMA) multi-socket
 * system: socket/chassis counts, link latencies and bandwidths, and
 * memory parameters. Latency constants reproduce the paper's 80 /
 * 130 / 360 / 180 ns unloaded memory access points (§II-A, §III-B);
 * bandwidths are the scaled-down values of Table II. Named factory
 * functions construct every configuration evaluated in §V.
 */

#ifndef STARNUMA_TOPOLOGY_SYSTEM_CONFIG_HH
#define STARNUMA_TOPOLOGY_SYSTEM_CONFIG_HH

#include <string>

#include "sim/types.hh"

namespace starnuma
{
namespace topology
{

/** Size of a control (request/ack) message on a coherent link. */
constexpr Addr ctrlBytes = 16;

/** Size of a cache-block data message (block + header). */
constexpr Addr dataBytes = blockBytes + 8;

/** Full parameterization of one simulated system configuration. */
struct SystemConfig
{
    std::string name = "baseline-16";

    int sockets = 16;
    int socketsPerChassis = 4;

    /** True when the system features the CXL memory pool. */
    bool hasPool = false;

    // Per-direction link bandwidths in GB/s (Table II scaled values).
    double upiGbps = 3.0;
    double numalinkGbps = 3.0;
    double cxlGbps = 6.0;

    // One-way latency contributions in nanoseconds, chosen so the
    // end-to-end unloaded sums match the paper (DESIGN.md §5).
    double upiNs = 25.0;
    double flexAsicNs = 20.0;
    double numalinkNs = 50.0;
    double cxlOneWayNs = 50.0;

    /** On-socket path: LLC miss handling to memory controller. */
    double onChipNs = 30.0;

    /** Unloaded DRAM device access (row activation + CAS + data). */
    double dramNs = 50.0;

    // Memory channels (Table II: one per socket, two on the pool).
    int channelsPerSocket = 1;
    int poolChannels = 2;

    /** Per-channel DDR5-4800 bandwidth, GB/s. */
    double channelGbps = 38.4;

    /** DRAM banks per channel (bank-level parallelism). */
    int banksPerChannel = 16;

    /** Pool capacity as a fraction of the workload footprint. */
    double poolCapacityFraction = 0.20;

    int chassis() const { return sockets / socketsPerChassis; }

    /** NodeId used for the memory pool (one past the last socket). */
    NodeId poolNode() const { return sockets; }

    // Derived unloaded end-to-end memory latencies (ns). These are
    // the paper's headline latency points and are unit-tested.
    double localNs() const { return onChipNs + dramNs; }
    double oneHopNs() const { return localNs() + 2 * upiNs; }
    double
    twoHopNs() const
    {
        return localNs() +
               2 * (2 * upiNs + 2 * flexAsicNs + numalinkNs);
    }
    double poolNs() const { return localNs() + 2 * cxlOneWayNs; }

    // --- Named configurations evaluated in the paper (§V) ---

    /** Conventional 16-socket system (Fig 1 without the pool). */
    static SystemConfig baseline16();

    /** Baseline + CXL memory pool (default StarNUMA, §III). */
    static SystemConfig starnuma16();

    /** Fig 11: coherent links augmented to match pool bandwidth. */
    static SystemConfig baselineIsoBW();

    /** Fig 11: every coherent link's bandwidth doubled. */
    static SystemConfig baseline2xBW();

    /** Fig 11: StarNUMA with x4 (half-bandwidth) CXL links. */
    static SystemConfig starnumaHalfBW();

    /** Fig 10: pool behind a CXL switch (+90 ns roundtrip). */
    static SystemConfig starnumaSwitched();

    /** Fig 12: pool capacity of one socket (1/17 of footprint). */
    static SystemConfig starnumaSmallPool();

    /** §III-B scaling discussion: 32-socket StarNUMA variant. */
    static SystemConfig starnuma32();

    /** 32-socket baseline to pair with starnuma32(). */
    static SystemConfig baseline32();
};

} // namespace topology
} // namespace starnuma

#endif // STARNUMA_TOPOLOGY_SYSTEM_CONFIG_HH
