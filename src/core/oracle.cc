#include "core/oracle.hh"

#include <algorithm>
#include <vector>

namespace starnuma
{
namespace core
{

// lint: cold-path runs once per experiment, before replay
std::uint64_t
OraclePlacement::place(mem::PageMap &pages, bool use_pool,
                       std::uint64_t pool_capacity_pages,
                       int pool_sharer_threshold)
{
    NodeId pool = stats.sockets();

    struct PoolCandidate
    {
        PageNum page;
        std::uint64_t heat;
        NodeId majority;
    };
    std::vector<PoolCandidate> pool_candidates;

    stats.forEach([&](PageNum page, const std::uint32_t *counts) {
        std::uint64_t total = 0;
        int sharers = 0;
        NodeId best = 0;
        for (int s = 0; s < stats.sockets(); ++s) {
            total += counts[s];
            sharers += (counts[s] > 0);
            if (counts[s] > counts[best])
                best = s;
        }
        if (use_pool && sharers >= pool_sharer_threshold) {
            pool_candidates.push_back({page, total, best});
        } else {
            pages.setHome(page, best);
        }
    });

    // Hottest widely shared pages fill the pool first; overflow
    // falls back to the majority socket.
    std::sort(pool_candidates.begin(), pool_candidates.end(),
              [](const PoolCandidate &a, const PoolCandidate &b) {
                  if (a.heat != b.heat)
                      return a.heat > b.heat;
                  return a.page < b.page;
              });

    std::uint64_t placed = 0;
    for (const PoolCandidate &c : pool_candidates) {
        if (placed < pool_capacity_pages) {
            pages.setHome(c.page, pool);
            ++placed;
        } else {
            pages.setHome(c.page, c.majority);
        }
    }
    return placed;
}

} // namespace core
} // namespace starnuma
