
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/gap.cc" "src/CMakeFiles/starnuma_workloads.dir/workloads/gap.cc.o" "gcc" "src/CMakeFiles/starnuma_workloads.dir/workloads/gap.cc.o.d"
  "/root/repo/src/workloads/genomics.cc" "src/CMakeFiles/starnuma_workloads.dir/workloads/genomics.cc.o" "gcc" "src/CMakeFiles/starnuma_workloads.dir/workloads/genomics.cc.o.d"
  "/root/repo/src/workloads/graph.cc" "src/CMakeFiles/starnuma_workloads.dir/workloads/graph.cc.o" "gcc" "src/CMakeFiles/starnuma_workloads.dir/workloads/graph.cc.o.d"
  "/root/repo/src/workloads/kvstore.cc" "src/CMakeFiles/starnuma_workloads.dir/workloads/kvstore.cc.o" "gcc" "src/CMakeFiles/starnuma_workloads.dir/workloads/kvstore.cc.o.d"
  "/root/repo/src/workloads/tpcc.cc" "src/CMakeFiles/starnuma_workloads.dir/workloads/tpcc.cc.o" "gcc" "src/CMakeFiles/starnuma_workloads.dir/workloads/tpcc.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/CMakeFiles/starnuma_workloads.dir/workloads/workload.cc.o" "gcc" "src/CMakeFiles/starnuma_workloads.dir/workloads/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/starnuma_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/starnuma_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/starnuma_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/starnuma_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
