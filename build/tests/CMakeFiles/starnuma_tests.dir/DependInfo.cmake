
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analytic_test.cc" "tests/CMakeFiles/starnuma_tests.dir/analytic_test.cc.o" "gcc" "tests/CMakeFiles/starnuma_tests.dir/analytic_test.cc.o.d"
  "/root/repo/tests/core_test.cc" "tests/CMakeFiles/starnuma_tests.dir/core_test.cc.o" "gcc" "tests/CMakeFiles/starnuma_tests.dir/core_test.cc.o.d"
  "/root/repo/tests/coverage_test.cc" "tests/CMakeFiles/starnuma_tests.dir/coverage_test.cc.o" "gcc" "tests/CMakeFiles/starnuma_tests.dir/coverage_test.cc.o.d"
  "/root/repo/tests/driver_test.cc" "tests/CMakeFiles/starnuma_tests.dir/driver_test.cc.o" "gcc" "tests/CMakeFiles/starnuma_tests.dir/driver_test.cc.o.d"
  "/root/repo/tests/kernel_correctness_test.cc" "tests/CMakeFiles/starnuma_tests.dir/kernel_correctness_test.cc.o" "gcc" "tests/CMakeFiles/starnuma_tests.dir/kernel_correctness_test.cc.o.d"
  "/root/repo/tests/mem_test.cc" "tests/CMakeFiles/starnuma_tests.dir/mem_test.cc.o" "gcc" "tests/CMakeFiles/starnuma_tests.dir/mem_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/starnuma_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/starnuma_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/replication_test.cc" "tests/CMakeFiles/starnuma_tests.dir/replication_test.cc.o" "gcc" "tests/CMakeFiles/starnuma_tests.dir/replication_test.cc.o.d"
  "/root/repo/tests/sim_test.cc" "tests/CMakeFiles/starnuma_tests.dir/sim_test.cc.o" "gcc" "tests/CMakeFiles/starnuma_tests.dir/sim_test.cc.o.d"
  "/root/repo/tests/system_sweep_test.cc" "tests/CMakeFiles/starnuma_tests.dir/system_sweep_test.cc.o" "gcc" "tests/CMakeFiles/starnuma_tests.dir/system_sweep_test.cc.o.d"
  "/root/repo/tests/topology_test.cc" "tests/CMakeFiles/starnuma_tests.dir/topology_test.cc.o" "gcc" "tests/CMakeFiles/starnuma_tests.dir/topology_test.cc.o.d"
  "/root/repo/tests/trace_test.cc" "tests/CMakeFiles/starnuma_tests.dir/trace_test.cc.o" "gcc" "tests/CMakeFiles/starnuma_tests.dir/trace_test.cc.o.d"
  "/root/repo/tests/workload_test.cc" "tests/CMakeFiles/starnuma_tests.dir/workload_test.cc.o" "gcc" "tests/CMakeFiles/starnuma_tests.dir/workload_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/starnuma_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/starnuma_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/starnuma_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/starnuma_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/starnuma_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/starnuma_analytic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/starnuma_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/starnuma_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
