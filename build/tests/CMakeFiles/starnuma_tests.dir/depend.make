# Empty dependencies file for starnuma_tests.
# This may be replaced when dependencies are built.
